// Top-level benchmark harness: one testing.B entry point per table and
// figure of the paper's evaluation (§6). Each benchmark regenerates its
// experiment's rows and prints them, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Set PPQ_BENCH_SCALE=full for the larger
// recorded configuration (minutes); the default keeps every benchmark in
// the seconds range.
package ppqtraj

import (
	"fmt"
	"io"
	"os"
	"testing"

	"ppqtraj/internal/bench"
)

func benchScale() bench.Scale {
	if os.Getenv("PPQ_BENCH_SCALE") == "full" {
		return bench.Full
	}
	return bench.Small
}

// runPrinted executes one experiment per iteration, printing its table on
// the first iteration only (b.N > 1 reruns measure time without
// re-printing).
func runPrinted(b *testing.B, fn func(s bench.Scale, w io.Writer)) {
	b.Helper()
	s := benchScale()
	for i := 0; i < b.N; i++ {
		var w io.Writer = io.Discard
		if i == 0 {
			w = os.Stdout
		}
		fn(s, w)
	}
}

// BenchmarkTable2_STRQQuality regenerates Table 2: quality of summaries
// (MAE) and approximate STRQ precision/recall for all nine methods on
// both datasets.
func BenchmarkTable2_STRQQuality(b *testing.B) {
	runPrinted(b, func(s bench.Scale, w io.Writer) { bench.Table2(s, w) })
}

// BenchmarkTable3_TPQ regenerates Table 3: TPQ MAE against path lengths
// 10–50.
func BenchmarkTable3_TPQ(b *testing.B) {
	runPrinted(b, func(s bench.Scale, w io.Writer) { bench.Table3(s, w) })
}

// BenchmarkTable4_ExactFilter regenerates Table 4: the average ratio of
// trajectories visited for exact queries, and MAE, against codebook sizes
// of 5–9 bits.
func BenchmarkTable4_ExactFilter(b *testing.B) {
	runPrinted(b, func(s bench.Scale, w io.Writer) {
		s.Queries /= 2 // 8 methods × 5 bit-levels × 2 datasets of builds
		bench.Table4(s, w)
	})
}

// BenchmarkTable5_BuildTime and BenchmarkTable6_Codewords share one
// sweep: error-bounded builds across spatial deviations 200–1000 m.
func BenchmarkTable5_BuildTime(b *testing.B) {
	runPrinted(b, func(s bench.Scale, w io.Writer) { bench.Table56(s, w) })
}

// BenchmarkTable6_Codewords re-reports the Table 5 sweep's codeword
// counts (the paper derives Tables 5 and 6 from the same runs).
func BenchmarkTable6_Codewords(b *testing.B) {
	runPrinted(b, func(s bench.Scale, w io.Writer) {
		rows := bench.Table56(s, nil)
		if w != nil {
			fmt.Fprintln(w, "== Table 6: #codewords against spatial deviation ==")
			for _, r := range rows {
				fmt.Fprintf(w, "  %-10s %-24s dev %5.0fm: %d codewords\n",
					r.Dataset, r.Method, r.DevMeters, r.Codewords)
			}
		}
	})
}

// BenchmarkTable7_TPIEpsilonC regenerates Table 7: TPI size, build time,
// periods, and insertions across ε_c.
func BenchmarkTable7_TPIEpsilonC(b *testing.B) {
	runPrinted(b, func(s bench.Scale, w io.Writer) { bench.Table7(s, w) })
}

// BenchmarkTable8_TPIEpsilonD regenerates Table 8: the same statistics
// across ε_d.
func BenchmarkTable8_TPIEpsilonD(b *testing.B) {
	runPrinted(b, func(s bench.Scale, w io.Writer) { bench.Table8(s, w) })
}

// BenchmarkTable9_Disk regenerates Table 9: disk-based TPI vs per-tick PI
// vs TrajStore — index size, I/Os, response time, build time.
func BenchmarkTable9_Disk(b *testing.B) {
	runPrinted(b, func(s bench.Scale, w io.Writer) { bench.Table9(s, w) })
}

// BenchmarkFigure7_PartitionTime regenerates Figure 7: incremental
// temporal partitioning time against ε_p for PPQ-A and PPQ-S.
func BenchmarkFigure7_PartitionTime(b *testing.B) {
	runPrinted(b, func(s bench.Scale, w io.Writer) { bench.Figure7(s, w) })
}

// BenchmarkFigure8_PartitionCount regenerates Figure 8: the evolution of
// the partition count q over time per ε_p.
func BenchmarkFigure8_PartitionCount(b *testing.B) {
	runPrinted(b, func(s bench.Scale, w io.Writer) { bench.Figure8(s, w) })
}

// BenchmarkFigure9_Compression regenerates Figure 9: compression ratio
// against spatial deviation on Porto, GeoLife and sub-Porto (with REST).
func BenchmarkFigure9_Compression(b *testing.B) {
	runPrinted(b, func(s bench.Scale, w io.Writer) {
		t56 := bench.Table56(s, nil)
		bench.Figure9(s, w, t56)
	})
}

// BenchmarkAblations quantifies the design choices DESIGN.md calls out:
// prediction, partitioning, CQC, incremental partitioning, and posting
// compression.
func BenchmarkAblations(b *testing.B) {
	runPrinted(b, func(s bench.Scale, w io.Writer) { bench.Ablations(s, w) })
}
