package wal

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestInjectedFsyncFailureLatches drives the fail-stop contract through
// the FS seam: the first failing fsync latches the log, every later
// Append and Commit returns the latched error (matching ErrFailStopped),
// and no subsequent "healthy" fsync un-latches it.
func TestInjectedFsyncFailureLatches(t *testing.T) {
	ffs := NewFaultFS()
	l, _ := openCollect(t, Options{Dir: t.TempDir(), Policy: SyncAlways, FS: ffs})
	defer l.Close() //nolint:errcheck // latched error expected

	lsn, err := l.Append(testRecord(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatalf("healthy commit failed: %v", err)
	}

	diskErr := errors.New("device reset mid-writeback")
	ffs.SetSyncErr(diskErr)
	lsn, err = l.Append(testRecord(2, 3))
	if err != nil {
		t.Fatal(err) // the append itself writes fine; the barrier fails
	}
	err = l.Commit(lsn)
	if err == nil {
		t.Fatal("commit with a failing fsync succeeded")
	}
	if !errors.Is(err, ErrFailStopped) || !errors.Is(err, diskErr) {
		t.Fatalf("commit error %v does not match ErrFailStopped and the root cause", err)
	}

	// Heal the disk: the latch must hold anyway — the kernel may have
	// dropped the dirty pages, so the durable prefix is unknowable.
	ffs.SetSyncErr(nil)
	if _, err := l.Append(testRecord(3, 3)); !errors.Is(err, ErrFailStopped) {
		t.Fatalf("append after latch = %v, want ErrFailStopped", err)
	}
	if err := l.Commit(lsn); !errors.Is(err, ErrFailStopped) {
		t.Fatalf("commit after latch = %v, want ErrFailStopped", err)
	}
	if l.Failed() == nil || l.Stats().Failed == "" {
		t.Fatal("latched failure not surfaced by Failed()/Stats")
	}
}

// TestInjectedTornWriteLeavesTruncatableTail arms a mid-record write
// failure, proving (a) the append fails and latches, and (b) reopening
// the directory truncates the torn bytes and replays exactly the records
// acknowledged before the fault — the on-disk shape a crash mid-append
// leaves behind, produced deterministically.
func TestInjectedTornWriteLeavesTruncatableTail(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	l, _ := openCollect(t, Options{Dir: dir, Policy: SyncAlways, FS: ffs})

	var want []Record
	for tick := 1; tick <= 3; tick++ {
		rec := testRecord(tick, 4)
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}

	// The next record tears 10 bytes in: header written, payload cut.
	ffs.FailWriteAfter(10, errors.New("injected torn write"))
	if _, err := l.Append(testRecord(4, 4)); err == nil {
		t.Fatal("torn append succeeded")
	}
	if !errors.Is(l.Failed(), ErrFailStopped) {
		t.Fatal("torn write did not latch the log")
	}
	l.Close() //nolint:errcheck // the log is latched; Close may surface it

	// Recovery: the torn tail must truncate away, the acked prefix must
	// replay bit for bit.
	l2, got := openCollect(t, Options{Dir: dir, Policy: SyncAlways})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !sameRecord(got[i], want[i]) {
			t.Fatalf("record %d diverged after torn-tail recovery", i)
		}
	}
	// And the healed log must accept appends again.
	if _, err := l2.Append(testRecord(4, 4)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestSlowFsyncDoesNotBlockAppends stalls fsyncs and proves Append (the
// call the serving layer makes under its hot-tail lock, which every
// query contends with) completes while a commit is stuck in the disk:
// the fsync runs under syncMu only, never under mu.
func TestSlowFsyncDoesNotBlockAppends(t *testing.T) {
	ffs := NewFaultFS()
	l, _ := openCollect(t, Options{Dir: t.TempDir(), Policy: SyncAlways, FS: ffs})
	defer l.Close()

	lsn, err := l.Append(testRecord(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	const stall = 300 * time.Millisecond
	ffs.SetSyncDelay(stall)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.Commit(lsn) //nolint:errcheck // only the stall matters here
	}()

	// Wait until the committer is inside the slow fsync, then append: it
	// must return long before the stall elapses.
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	if _, err := l.Append(testRecord(2, 2)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > stall/2 {
		t.Fatalf("append stalled %v behind a slow fsync", d)
	}
	ffs.SetSyncDelay(0)
	wg.Wait()
}

// TestGroupCommitBatchesConcurrentWriters runs many concurrent
// append+commit pairs under SyncAlways with a batching window and checks
// (a) every commit succeeds, (b) one fsync covered many commits — the
// group-commit invariant the ingest path's throughput rests on.
func TestGroupCommitBatchesConcurrentWriters(t *testing.T) {
	ffs := NewFaultFS()
	l, _ := openCollect(t, Options{
		Dir:             t.TempDir(),
		Policy:          SyncAlways,
		GroupCommitWait: 2 * time.Millisecond,
		FS:              ffs,
	})
	defer l.Close()

	const writers, rounds = 8, 25
	var mu sync.Mutex
	var wg sync.WaitGroup
	for wkr := 0; wkr < writers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				mu.Lock() // serialize appends like the hot-tail lock does
				lsn, err := l.Append(testRecord(1000*wkr+i, 2))
				mu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.Commit(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	st := l.Stats()
	if st.Commits != writers*rounds {
		t.Fatalf("%d commits recorded, want %d", st.Commits, writers*rounds)
	}
	if st.Syncs >= st.Commits {
		t.Fatalf("no batching: %d fsyncs for %d commits", st.Syncs, st.Commits)
	}
	t.Logf("group commit: %d commits over %d fsyncs (%.1f batches/fsync)",
		st.Commits, st.Syncs, float64(st.Commits)/float64(st.Syncs))
}

// TestGroupCommitLoneWriterDoesNotWait times a sequential writer with a
// large batching window: the window must never open for a lone
// committer, so per-commit latency stays at fsync cost, not window cost.
func TestGroupCommitLoneWriterDoesNotWait(t *testing.T) {
	l, _ := openCollect(t, Options{
		Dir:             t.TempDir(),
		Policy:          SyncAlways,
		GroupCommitWait: 250 * time.Millisecond, // absurd on purpose
	})
	defer l.Close()

	start := time.Now()
	const n = 5
	for i := 1; i <= n; i++ {
		lsn, err := l.Append(testRecord(i, 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > n*250*time.Millisecond/2 {
		t.Fatalf("lone writer paid the batching window: %d commits took %v", n, d)
	}
}
