package wal

import (
	"context"
	"errors"
	"syscall"
	"testing"
	"time"
)

// collectFrames decodes a frame blob, failing the test on any error.
func collectFrames(t *testing.T, frames []byte) []Record {
	t.Helper()
	var recs []Record
	if _, err := DecodeFrames(frames, func(rec Record) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatalf("DecodeFrames: %v", err)
	}
	return recs
}

// TestOrdinalsStableAcrossReopenAndReclaim is the property replication
// leans on: a record's ordinal never changes — not across restart, not
// after every earlier file is reclaimed — so a follower's resume
// position stays meaningful forever.
func TestOrdinalsStableAcrossReopenAndReclaim(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256}
	l, _ := openCollect(t, opts)
	for tick := 0; tick < 30; tick++ {
		if _, err := l.Append(testRecord(tick, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.NextRec(); got != 30 {
		t.Fatalf("NextRec = %d, want 30", got)
	}
	// Reclaim everything: only a fresh empty active file survives, and
	// its header must still carry ordinal 30.
	if err := l.TruncateThrough(29); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments != 1 || st.OldestRec != 30 || st.NextRec != 30 {
		t.Fatalf("after full reclaim: %+v, want oldest=next=30 in one segment", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openCollect(t, opts)
	if len(got) != 0 {
		t.Fatalf("replayed %d records after full reclaim", len(got))
	}
	if n := l2.NextRec(); n != 30 {
		t.Fatalf("NextRec after reopen = %d, want 30 (ordinal regressed)", n)
	}
	// New appends continue the ordinal space.
	if _, err := l2.Append(testRecord(100, 2)); err != nil {
		t.Fatal(err)
	}
	if n := l2.NextRec(); n != 31 {
		t.Fatalf("NextRec after append = %d, want 31", n)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, _ := openCollect(t, opts)
	defer l3.Close()
	if n := l3.NextRec(); n != 31 {
		t.Fatalf("NextRec after second reopen = %d, want 31", n)
	}
}

// TestReadFramesRoundTrip tails the log across rotations and checks the
// frames decode to exactly the appended records, in order, and that the
// resume cursor semantics (next ordinal) hold batch to batch.
func TestReadFramesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 512}
	l, _ := openCollect(t, opts)
	defer l.Close()
	var want []Record
	for tick := 0; tick < 40; tick++ {
		rec := testRecord(tick, 1+tick%5)
		want = append(want, rec)
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	var got []Record
	next := int64(0)
	for {
		frames, n, err := l.ReadFrames(next, 300) // tiny budget: force many batches
		if err != nil {
			t.Fatal(err)
		}
		if n == next {
			break
		}
		batch := collectFrames(t, frames)
		if int64(len(batch)) != n-next {
			t.Fatalf("batch of %d records advanced cursor by %d", len(batch), n-next)
		}
		got = append(got, batch...)
		next = n
	}
	if len(got) != len(want) {
		t.Fatalf("tailed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !sameRecord(got[i], want[i]) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestReadFramesDurabilityBound: records not yet fsynced are invisible
// to the tailing reader — the shipper can never serve a follower data
// the primary has not acked as durable.
func TestReadFramesDurabilityBound(t *testing.T) {
	l, _ := openCollect(t, Options{Dir: t.TempDir(), Policy: SyncNever})
	defer l.Close()
	if _, err := l.Append(testRecord(1, 2)); err != nil {
		t.Fatal(err)
	}
	frames, next, err := l.ReadFrames(0, 0)
	if err != nil || next != 0 || len(frames) != 0 {
		t.Fatalf("unsynced record visible: frames=%d next=%d err=%v", len(frames), next, err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	frames, next, err = l.ReadFrames(0, 0)
	if err != nil || next != 1 {
		t.Fatalf("after Sync: next=%d err=%v, want 1 visible record", next, err)
	}
	if recs := collectFrames(t, frames); len(recs) != 1 || recs[0].Tick != 1 {
		t.Fatalf("decoded %v, want the tick-1 record", recs)
	}
}

// TestReadFramesGone: asking for reclaimed ordinals must fail loudly
// with ErrGone — replication refuses to paper over a gap.
func TestReadFramesGone(t *testing.T) {
	l, _ := openCollect(t, Options{Dir: t.TempDir(), Policy: SyncNever, SegmentBytes: 256})
	defer l.Close()
	for tick := 0; tick < 30; tick++ {
		if _, err := l.Append(testRecord(tick, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateThrough(14); err != nil {
		t.Fatal(err)
	}
	oldest := l.OldestRec()
	if oldest == 0 {
		t.Fatal("test needs reclamation to have happened")
	}
	if _, _, err := l.ReadFrames(0, 0); !errors.Is(err, ErrGone) {
		t.Fatalf("reading reclaimed ordinal 0: err = %v, want ErrGone", err)
	}
	// Reading beyond the end is an error too, not an empty batch.
	if _, _, err := l.ReadFrames(l.NextRec()+1, 0); !errors.Is(err, ErrFuture) {
		t.Fatalf("reading past the end of the log: err = %v, want ErrFuture", err)
	}
}

// TestWaitDurableWakesOnCommit: the long-poll primitive must wake when
// the durable watermark passes the requested ordinal, and respect
// context cancellation while nothing arrives.
func TestWaitDurableWakesOnCommit(t *testing.T) {
	l, _ := openCollect(t, Options{Dir: t.TempDir(), Policy: SyncAlways})
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := l.WaitDurable(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitDurable on empty log: err = %v, want deadline exceeded", err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- l.WaitDurable(ctx, 0)
	}()
	time.Sleep(10 * time.Millisecond)
	lsn, err := l.Append(testRecord(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("WaitDurable after commit: %v", err)
	}
}

// TestPinBlocksReclamation: a retention pin at a follower's resume
// position must keep every file holding records at or past it, and
// release must let the next truncation reclaim them.
func TestPinBlocksReclamation(t *testing.T) {
	l, _ := openCollect(t, Options{Dir: t.TempDir(), Policy: SyncNever, SegmentBytes: 256})
	defer l.Close()
	for tick := 0; tick < 30; tick++ {
		if _, err := l.Append(testRecord(tick, 4)); err != nil {
			t.Fatal(err)
		}
	}
	release := l.Pin(0)
	if err := l.TruncateThrough(29); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Reclaimed != 0 || st.OldestRec != 0 {
		t.Fatalf("pinned log reclaimed: %+v", st)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// The pinned tail must still be fully readable — the whole point.
	frames, next, err := l.ReadFrames(0, 1<<20)
	if err != nil || next != 30 {
		t.Fatalf("reading pinned tail: next=%d err=%v", next, err)
	}
	if recs := collectFrames(t, frames); len(recs) != 30 {
		t.Fatalf("pinned tail decoded %d records, want 30", len(recs))
	}
	release()
	release() // idempotent
	if err := l.TruncateThrough(29); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Reclaimed == 0 || st.OldestRec != 30 {
		t.Fatalf("release did not unblock reclamation: %+v", st)
	}
}

// TestRetainSegmentsFloor: the -wal-retain-segments floor keeps the
// newest N files even when fully sealed and unpinned.
func TestRetainSegmentsFloor(t *testing.T) {
	l, _ := openCollect(t, Options{Dir: t.TempDir(), Policy: SyncNever, SegmentBytes: 256, RetainSegments: 3})
	defer l.Close()
	for tick := 0; tick < 30; tick++ {
		if _, err := l.Append(testRecord(tick, 4)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats()
	if before.Segments < 4 {
		t.Fatalf("test needs ≥ 4 segments, got %d", before.Segments)
	}
	if err := l.TruncateThrough(29); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Segments < 3 {
		t.Fatalf("floor of 3 violated: %d segments survive", after.Segments)
	}
	if after.Reclaimed == 0 {
		t.Fatal("floor blocked all reclamation; only the newest 3 should survive")
	}
	// The retained tail stays readable for a late follower.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	oldest := l.OldestRec()
	_, next, err := l.ReadFrames(oldest, 1<<20)
	if err != nil || next != 30 {
		t.Fatalf("reading retained tail from %d: next=%d err=%v", oldest, next, err)
	}
}

// TestENOSPCLatchesFailStop: a full disk rejects the append cleanly (no
// torn bytes), the log latches fail-stopped, and recovery after the
// operator frees space replays exactly the acked prefix.
func TestENOSPCLatchesFailStop(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	opts := Options{Dir: dir, Policy: SyncAlways, FS: ffs}
	l, _ := openCollect(t, opts)
	for tick := 0; tick < 3; tick++ {
		lsn, err := l.Append(testRecord(tick, 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	ffs.SetWriteErr(syscall.ENOSPC)
	if _, err := l.Append(testRecord(3, 2)); !errors.Is(err, ErrFailStopped) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on full disk: err = %v, want fail-stop wrapping ENOSPC", err)
	}
	if _, err := l.Append(testRecord(4, 2)); !errors.Is(err, ErrFailStopped) {
		t.Fatalf("latch did not hold: %v", err)
	}
	if st := l.Stats(); st.Failed == "" {
		t.Fatal("ENOSPC latch not surfaced in Stats")
	}
	l.Close() //nolint:errcheck // the log is already latched

	// Disk freed: reopen must replay the three acked records, nothing torn.
	ffs.SetWriteErr(nil)
	l2, got := openCollect(t, opts)
	defer l2.Close()
	if len(got) != 3 {
		t.Fatalf("replayed %d records after ENOSPC crash, want the 3 acked", len(got))
	}
	if _, err := l2.Append(testRecord(3, 2)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}
