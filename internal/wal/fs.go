package wal

import (
	"io"
	"os"
)

// FS is the log's filesystem seam. Production code uses OSFS; tests
// inject FaultFS to exercise disk failures (failed fsyncs, torn writes,
// slow syncs) deterministically — the fail-stop latch, degraded-mode
// surfacing, and torn-tail recovery are all behaviors that only a lying
// or dying disk can trigger, and real disks do not lie on cue.
type FS interface {
	MkdirAll(dir string, perm os.FileMode) error
	ReadDir(dir string) ([]os.DirEntry, error)
	// OpenFile opens a log segment with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only (replay).
	Open(name string) (File, error)
	Truncate(name string, size int64) error
	Remove(name string) error
	// SyncDir fsyncs a directory, making renames/creations/removals in it
	// durable.
	SyncDir(dir string) error
}

// File is the subset of *os.File the log touches.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string, perm os.FileMode) error    { return os.MkdirAll(dir, perm) }
func (OSFS) ReadDir(dir string) ([]os.DirEntry, error)      { return os.ReadDir(dir) }
func (OSFS) Truncate(name string, size int64) error         { return os.Truncate(name, size) }
func (OSFS) Remove(name string) error                       { return os.Remove(name) }
func (OSFS) Open(name string) (File, error)                 { return os.Open(name) }
func (OSFS) SyncDir(dir string) error                       { return SyncDir(dir) }
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
