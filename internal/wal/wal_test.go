package wal

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// testRecord builds a deterministic record for tick t with n points.
func testRecord(t, n int) Record {
	rec := Record{Tick: t}
	for i := 0; i < n; i++ {
		rec.IDs = append(rec.IDs, traj.ID(1000*t+i))
		rec.Points = append(rec.Points, geo.Pt(float64(t)+float64(i)/100, -float64(i)))
	}
	return rec
}

func sameRecord(a, b Record) bool {
	if a.Tick != b.Tick || len(a.IDs) != len(b.IDs) {
		return false
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] || a.Points[i] != b.Points[i] {
			return false
		}
	}
	return true
}

func openCollect(t *testing.T, opts Options) (*Log, []Record) {
	t.Helper()
	var got []Record
	l, err := Open(opts, func(rec Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, got
}

// TestAppendReplayRoundTrip appends across several rotations and checks
// the replay returns every record, in order, bit for bit.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncNever, SegmentBytes: 512}
	l, got := openCollect(t, opts)
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	var want []Record
	for tick := 0; tick < 40; tick++ {
		rec := testRecord(tick, 1+tick%7)
		want = append(want, rec)
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation with %d-byte segments, got %d segment(s)", opts.SegmentBytes, st.Segments)
	}
	if st.Appends != 40 {
		t.Fatalf("appends = %d, want 40", st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := openCollect(t, opts)
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !sameRecord(got[i], want[i]) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], want[i])
		}
	}
	if st := l2.Stats(); st.ReplayedRecords != int64(len(want)) {
		t.Fatalf("ReplayedRecords = %d, want %d", st.ReplayedRecords, len(want))
	}
}

// TestTornTailTruncated simulates a crash mid-append: garbage after the
// last good record must be truncated away on reopen, the good prefix
// preserved, and the log appendable afterwards.
func TestTornTailTruncated(t *testing.T) {
	for _, tear := range []string{"partial-header", "partial-payload", "bad-crc"} {
		t.Run(tear, func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Dir: dir, Policy: SyncAlways}
			l, _ := openCollect(t, opts)
			for tick := 0; tick < 5; tick++ {
				if _, err := l.Append(testRecord(tick, 3)); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, segName(1))
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			switch tear {
			case "partial-header":
				blob = append(blob, 0x55, 0x66, 0x77)
			case "partial-payload":
				// A plausible header promising more bytes than exist.
				blob = append(blob, 40, 0, 0, 0, 1, 2, 3, 4, 0xAA)
			case "bad-crc":
				// Flip a byte inside the final record's payload.
				blob[len(blob)-1] ^= 0xFF
			}
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatal(err)
			}

			l2, got := openCollect(t, opts)
			wantRecs := 5
			if tear == "bad-crc" {
				wantRecs = 4 // the corrupted final record is gone too
			}
			if len(got) != wantRecs {
				t.Fatalf("replayed %d records after torn tail, want %d", len(got), wantRecs)
			}
			// The log must keep working where it left off.
			if _, err := l2.Append(testRecord(99, 2)); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			l3, got := openCollect(t, opts)
			defer l3.Close()
			if len(got) != wantRecs+1 || got[len(got)-1].Tick != 99 {
				t.Fatalf("post-recovery append not replayed: %d records", len(got))
			}
		})
	}
}

// TestCorruptionInSealedSegmentIsFatal: a checksum failure anywhere but
// the last file means acknowledged history is damaged — Open must refuse
// rather than silently drop data.
func TestCorruptionInSealedSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256}
	l, _ := openCollect(t, opts)
	for tick := 0; tick < 30; tick++ {
		if _, err := l.Append(testRecord(tick, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 2 {
		t.Fatal("test needs at least two segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, segName(1)), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(opts, func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("Open on mid-log corruption: err = %v, want checksum error", err)
	}
}

// TestTruncateThroughReclaims checks that segments fully covered by the
// sealed watermark are deleted — including the active one, via rotation —
// and that replay after reclamation returns exactly the surviving suffix.
func TestTruncateThroughReclaims(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256}
	l, _ := openCollect(t, opts)
	for tick := 0; tick < 30; tick++ {
		if _, err := l.Append(testRecord(tick, 4)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats()
	if before.Segments < 3 {
		t.Fatalf("test needs ≥ 3 segments, got %d", before.Segments)
	}
	if err := l.TruncateThrough(14); err != nil {
		t.Fatal(err)
	}
	mid := l.Stats()
	if mid.Reclaimed == 0 || mid.Segments >= before.Segments {
		t.Fatalf("no reclamation: before %d segments, after %d (reclaimed %d)",
			before.Segments, mid.Segments, mid.Reclaimed)
	}
	// Everything sealed: every record tick ≤ 29, so only the fresh active
	// file may survive, and it must be empty.
	if err := l.TruncateThrough(29); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments != 1 || st.Bytes != 0 {
		t.Fatalf("after full truncation: %d segments, %d bytes; want 1 empty segment", st.Segments, st.Bytes)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openCollect(t, opts)
	defer l2.Close()
	if len(got) != 0 {
		t.Fatalf("replay after full truncation returned %d records", len(got))
	}
}

// TestReplaySurvivesPartialTruncation: records below the watermark in a
// surviving segment are still replayed (the consumer filters by tick);
// reclamation only ever drops whole files whose every tick is sealed.
func TestReplaySurvivesPartialTruncation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncNever, SegmentBytes: 1 << 20}
	l, _ := openCollect(t, opts)
	for tick := 0; tick < 10; tick++ {
		if _, err := l.Append(testRecord(tick, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Watermark in the middle of the single segment: nothing reclaimable.
	if err := l.TruncateThrough(4); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Reclaimed != 0 {
		t.Fatalf("reclaimed %d segments holding live ticks", st.Reclaimed)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got := openCollect(t, opts)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want all 10", len(got))
	}
}

// TestSyncPolicies exercises the three policies' observable behavior.
func TestSyncPolicies(t *testing.T) {
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
	t.Run("always", func(t *testing.T) {
		l, _ := openCollect(t, Options{Dir: t.TempDir(), Policy: SyncAlways})
		defer l.Close()
		lsn, err := l.Append(testRecord(1, 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.Syncs == 0 {
			t.Fatal("SyncAlways commit did not fsync")
		}
		// A second commit of the same LSN is already covered: no new sync.
		n := l.Stats().Syncs
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.Syncs != n {
			t.Fatalf("covered commit fsynced again (%d → %d)", n, st.Syncs)
		}
	})
	t.Run("interval", func(t *testing.T) {
		l, _ := openCollect(t, Options{Dir: t.TempDir(), Policy: SyncEvery, Interval: 5 * time.Millisecond})
		defer l.Close()
		lsn, err := l.Append(testRecord(1, 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil { // no-op under interval
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for l.Stats().Syncs == 0 {
			if time.Now().After(deadline) {
				t.Fatal("background interval sync never fired")
			}
			time.Sleep(time.Millisecond)
		}
	})
	t.Run("never", func(t *testing.T) {
		l, _ := openCollect(t, Options{Dir: t.TempDir(), Policy: SyncNever})
		lsn, err := l.Append(testRecord(1, 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.Syncs != 0 {
			t.Fatalf("SyncNever fsynced %d times before close", st.Syncs)
		}
		if err := l.Close(); err != nil { // close still syncs
			t.Fatal(err)
		}
	})
}

// TestOversizedRecordRejected: a batch whose payload replay would refuse
// must be rejected at append time — acknowledging it and then discarding
// it as a torn tail on restart would be silent loss.
func TestOversizedRecordRejected(t *testing.T) {
	l, _ := openCollect(t, Options{Dir: t.TempDir(), Policy: SyncNever})
	defer l.Close()
	n := maxRecordSize/20 + 1 // payload = 12 + 20n > maxRecordSize
	rec := Record{Tick: 1, IDs: make([]traj.ID, n), Points: make([]geo.Point, n)}
	if _, err := l.Append(rec); err == nil || !strings.Contains(err.Error(), "record cap") {
		t.Fatalf("oversized append: err = %v, want record-cap rejection", err)
	}
	// The log is still usable for sane batches.
	if _, err := l.Append(testRecord(1, 3)); err != nil {
		t.Fatal(err)
	}
}

// TestFailStopLatch: after a disk failure (simulated by closing the
// active file under the log), every Append and Commit must return the
// latched error instead of acknowledging writes that may never land.
func TestFailStopLatch(t *testing.T) {
	l, _ := openCollect(t, Options{Dir: t.TempDir(), Policy: SyncAlways})
	if _, err := l.Append(testRecord(1, 2)); err != nil {
		t.Fatal(err)
	}
	l.f.Close() // simulate the device failing out from under the log
	lsn, err := l.Append(testRecord(2, 2))
	if err == nil {
		err = l.Commit(lsn)
	}
	if err == nil {
		t.Fatal("append+commit on a dead file succeeded")
	}
	if _, err := l.Append(testRecord(3, 2)); err == nil {
		t.Fatal("append after latched failure succeeded")
	}
	if err := l.Commit(0); err == nil {
		t.Fatal("commit after latched failure succeeded (SyncAlways)")
	}
	if st := l.Stats(); st.Failed == "" {
		t.Fatal("latched failure not surfaced in Stats")
	}
}

// TestEmptyRecordAndExtremes round-trips edge-case payloads.
func TestEmptyRecordAndExtremes(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncNever}
	l, _ := openCollect(t, opts)
	recs := []Record{
		{Tick: -3},
		{Tick: math.MaxInt32, IDs: []traj.ID{math.MaxUint32}, Points: []geo.Point{geo.Pt(-180, 90)}},
		testRecord(7, 1),
	}
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openCollect(t, opts)
	defer l2.Close()
	if len(got) != len(recs) {
		t.Fatalf("replayed %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !sameRecord(got[i], recs[i]) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], recs[i])
		}
	}
}
