package wal

import (
	"bytes"
	"testing"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// payloadOf strips the length+crc header from a fully encoded record,
// leaving exactly what replaySegment hands to decodeRecord.
func payloadOf(rec Record) []byte {
	l := &Log{}
	b := l.encodeRecord(rec)
	return append([]byte(nil), b[recHeaderLen:]...)
}

// FuzzWALRecordDecode feeds arbitrary payloads to decodeRecord.
// Replay verifies the CRC before decoding, so decodeRecord sees
// checksum-clean bytes in production — but a torn header can still
// yield an arbitrary length, so the decoder must reject anything
// malformed without panicking, and anything it accepts must survive a
// re-encode byte-for-byte.
func FuzzWALRecordDecode(f *testing.F) {
	f.Add(payloadOf(Record{Tick: 0}))
	f.Add(payloadOf(Record{
		Tick:   7,
		IDs:    []traj.ID{1, 2, 3},
		Points: []geo.Point{{X: 1.5, Y: -2.5}, {X: 0, Y: 0}, {X: -180, Y: 90}},
	}))
	f.Add(payloadOf(Record{
		Tick:   -1,
		IDs:    []traj.ID{0xFFFFFFFF},
		Points: []geo.Point{{X: 1e308, Y: -1e308}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecord(payload)
		if err != nil {
			return
		}
		if len(rec.IDs) != len(rec.Points) {
			t.Fatalf("decoded %d IDs but %d points", len(rec.IDs), len(rec.Points))
		}
		// Accepted payloads must round-trip exactly: replay and append
		// disagree about bytes only if one of them is wrong.
		again := payloadOf(rec)
		if !bytes.Equal(again, payload) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", payload, again)
		}
	})
}
