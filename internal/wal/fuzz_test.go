package wal

import (
	"bytes"
	"testing"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// payloadOf strips the length+crc header from a fully encoded record,
// leaving exactly what replaySegment hands to decodeRecord.
func payloadOf(rec Record) []byte {
	b := EncodeFrame(nil, rec)
	return append([]byte(nil), b[recHeaderLen:]...)
}

// FuzzWALRecordDecode feeds arbitrary payloads to decodeRecord.
// Replay verifies the CRC before decoding, so decodeRecord sees
// checksum-clean bytes in production — but a torn header can still
// yield an arbitrary length, so the decoder must reject anything
// malformed without panicking, and anything it accepts must survive a
// re-encode byte-for-byte.
func FuzzWALRecordDecode(f *testing.F) {
	f.Add(payloadOf(Record{Tick: 0}))
	f.Add(payloadOf(Record{
		Tick:   7,
		IDs:    []traj.ID{1, 2, 3},
		Points: []geo.Point{{X: 1.5, Y: -2.5}, {X: 0, Y: 0}, {X: -180, Y: 90}},
	}))
	f.Add(payloadOf(Record{
		Tick:   -1,
		IDs:    []traj.ID{0xFFFFFFFF},
		Points: []geo.Point{{X: 1e308, Y: -1e308}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecord(payload)
		if err != nil {
			return
		}
		if len(rec.IDs) != len(rec.Points) {
			t.Fatalf("decoded %d IDs but %d points", len(rec.IDs), len(rec.Points))
		}
		// Accepted payloads must round-trip exactly: replay and append
		// disagree about bytes only if one of them is wrong.
		again := payloadOf(rec)
		if !bytes.Equal(again, payload) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", payload, again)
		}
	})
}

// FuzzDecodeFrames feeds arbitrary byte streams to the replication frame
// decoder. Unlike replay, DecodeFrames faces bytes that crossed a
// network, so it must never panic, must consume only checksum-valid
// whole frames, and must round-trip whatever it accepts.
func FuzzDecodeFrames(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame(nil, Record{Tick: 3, IDs: []traj.ID{9}, Points: []geo.Point{{X: 1, Y: 2}}}))
	two := EncodeFrame(nil, Record{Tick: 0})
	two = EncodeFrame(two, Record{Tick: 1, IDs: []traj.ID{1, 2}, Points: []geo.Point{{X: 0, Y: 0}, {X: 4, Y: 4}}})
	f.Add(two)
	f.Add(two[:len(two)-3]) // torn tail
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, stream []byte) {
		var recs []Record
		n, err := DecodeFrames(stream, func(rec Record) error {
			recs = append(recs, rec)
			return nil
		})
		if n != len(recs) {
			t.Fatalf("DecodeFrames reported %d records but delivered %d", n, len(recs))
		}
		// Whatever was accepted must re-encode to a prefix of the input.
		var again []byte
		for _, rec := range recs {
			again = EncodeFrame(again, rec)
		}
		if !bytes.Equal(again, stream[:len(again)]) {
			t.Fatalf("accepted frames are not a byte-identical prefix:\n in  %x\n out %x", stream[:len(again)], again)
		}
		if err == nil && len(again) != len(stream) {
			t.Fatalf("nil error but %d of %d bytes consumed", len(again), len(stream))
		}
	})
}
