package wal

import (
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// FaultFS wraps another FS (OSFS by default) and injects disk failures on
// command. It is the deterministic stand-in for the three ways real disks
// die mid-flight:
//
//   - SetSyncErr makes every subsequent fsync (file or directory) fail —
//     the "disk lies about durability" case that must latch the log
//     fail-stopped.
//   - SetSyncDelay stalls fsyncs — the "disk is dying slowly" case, used
//     to prove appends and queries do not serialize behind a slow commit.
//   - FailWriteAfter arms a byte budget after which a write is cut short
//     mid-record and fails — the torn-write case recovery must truncate.
//
// All knobs are safe to flip concurrently with log traffic (that is the
// point: faults land mid-burst, not between requests).
type FaultFS struct {
	// Base is the wrapped filesystem; nil means OSFS.
	Base FS

	mu        sync.Mutex
	syncErr   error
	syncDelay time.Duration

	writeBudget atomic.Int64 // bytes until writes start failing; <0 = disarmed
	writeErr    error        // under mu
	writeStuck  error        // under mu; sticky full-stop write failure (ENOSPC)

	syncs  atomic.Int64 // fsyncs that went through (file + dir)
	writes atomic.Int64 // writes that went through
}

// NewFaultFS returns a FaultFS over the real filesystem with no faults
// armed.
func NewFaultFS() *FaultFS {
	f := &FaultFS{Base: OSFS{}}
	f.writeBudget.Store(-1)
	return f
}

// SetSyncErr arms (or, with nil, disarms) fsync failure: every File.Sync
// and SyncDir returns err after the data reaches the wrapped FS — the
// write-back happened, the durability barrier lied.
func (f *FaultFS) SetSyncErr(err error) {
	f.mu.Lock()
	f.syncErr = err
	f.mu.Unlock()
}

// SetSyncDelay stalls every subsequent fsync by d.
func (f *FaultFS) SetSyncDelay(d time.Duration) {
	f.mu.Lock()
	f.syncDelay = d
	f.mu.Unlock()
}

// FailWriteAfter arms torn writes: the next n bytes write through, after
// which each write stores its prefix (if any budget remains) and fails
// with err — exactly the shape a power cut mid-append leaves on disk.
func (f *FaultFS) FailWriteAfter(n int64, err error) {
	if err == nil {
		err = errors.New("faultfs: injected write failure")
	}
	f.mu.Lock()
	f.writeErr = err
	f.mu.Unlock()
	f.writeBudget.Store(n)
}

// SetWriteErr arms (or, with nil, disarms) a sticky full-stop write
// failure: every subsequent write fails with err before a single byte
// reaches the wrapped FS. This is the disk-full shape — ENOSPC rejects
// the write cleanly rather than tearing it — used to prove a full disk
// latches the log fail-stopped with no torn acked state.
func (f *FaultFS) SetWriteErr(err error) {
	f.mu.Lock()
	f.writeStuck = err
	f.mu.Unlock()
}

// Syncs returns how many fsyncs reached the wrapped FS.
func (f *FaultFS) Syncs() int64 { return f.syncs.Load() }

func (f *FaultFS) base() FS {
	if f.Base == nil {
		return OSFS{}
	}
	return f.Base
}

func (f *FaultFS) syncGate() error {
	f.mu.Lock()
	err, delay := f.syncErr, f.syncDelay
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error { return f.base().MkdirAll(dir, perm) }
func (f *FaultFS) ReadDir(dir string) ([]os.DirEntry, error)   { return f.base().ReadDir(dir) }
func (f *FaultFS) Truncate(name string, size int64) error      { return f.base().Truncate(name, size) }
func (f *FaultFS) Remove(name string) error                    { return f.base().Remove(name) }
func (f *FaultFS) Open(name string) (File, error)              { return f.base().Open(name) }

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.syncGate(); err != nil {
		return err
	}
	if err := f.base().SyncDir(dir); err != nil {
		return err
	}
	f.syncs.Add(1)
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.base().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, File: file}, nil
}

// faultFile routes a segment file's writes and syncs through the fault
// knobs.
type faultFile struct {
	fs *FaultFS
	File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	stuck := ff.fs.writeStuck
	ff.fs.mu.Unlock()
	if stuck != nil {
		return 0, stuck
	}
	budget := ff.fs.writeBudget.Load()
	if budget < 0 {
		ff.fs.writes.Add(1)
		return ff.File.Write(p)
	}
	ff.fs.mu.Lock()
	werr := ff.fs.writeErr
	ff.fs.mu.Unlock()
	if budget == 0 {
		return 0, werr
	}
	n := len(p)
	if int64(n) > budget {
		n = int(budget)
	}
	ff.fs.writeBudget.Store(budget - int64(n))
	wrote, err := ff.File.Write(p[:n])
	if err != nil {
		return wrote, err
	}
	if wrote < len(p) {
		// The record is now torn on disk — the injected crash shape.
		return wrote, werr
	}
	ff.fs.writes.Add(1)
	return wrote, nil
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.syncGate(); err != nil {
		return err
	}
	if err := ff.File.Sync(); err != nil {
		return err
	}
	ff.fs.syncs.Add(1)
	return nil
}
