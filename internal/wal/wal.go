// Package wal is the repository's durable hot tail: a segmented,
// checksummed, append-only write-ahead log of ingested tick batches. The
// serving layer appends every validated ingest before mutating its
// in-memory hot tail, so a crash loses no acknowledged write: on restart
// the log is replayed above the manifest's sealed watermark to rebuild the
// hot tail exactly, and segments whose records are all covered by sealed
// repository segments are reclaimed after compaction.
//
// Format (v2): the log is a sequence of files wal-<seq>.log (seq
// ascending, records in append order across files). Each file starts with
// a 16-byte header — magic "PPQW", u32 format version, u64 base record
// ordinal (how many records precede this file over the log's whole
// lifetime, reclaimed files included). The header is what makes record
// ordinals stable across restarts and reclamation, which replication
// uses as its LSN: a follower can resume from an ordinal even after the
// primary reclaimed every earlier file. After the header, each record is
//
//	[u32 payload length][u32 CRC32-C of payload][payload]
//
// with the payload encoding one ingested tick batch: i64 tick, u32 count,
// count × u32 trajectory ID, count × (f64 x, f64 y), all little-endian.
// A torn write (crash mid-append) leaves a short or checksum-failing
// record at the very end of the last file; Open truncates it away and the
// log continues from the last good record. A torn header (crash
// mid-rotation) can only ever afflict the last file, before any record
// was acked into it; Open rebuilds it from the previous segment's header.
// Corruption anywhere else is a hard error — that data was acknowledged
// and cannot be silently dropped.
//
// Durability is governed by the sync policy: SyncAlways fsyncs before an
// append commits (no acknowledged write is ever lost, even to a power
// failure), SyncEvery fsyncs on a background interval (a crash loses at
// most one interval of acknowledged writes), SyncNever leaves flushing to
// the OS (a process crash loses nothing — records are written straight to
// the file, unbuffered — but a machine crash can lose whatever the kernel
// had not written back).
package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/traj"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy string

const (
	// SyncAlways fsyncs before every append is acknowledged.
	SyncAlways SyncPolicy = "always"
	// SyncEvery fsyncs on a background interval (Options.Interval).
	SyncEvery SyncPolicy = "interval"
	// SyncNever never fsyncs explicitly (rotation and Close still do).
	SyncNever SyncPolicy = "never"
)

// ParsePolicy converts a flag string into a SyncPolicy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncEvery, SyncNever:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("wal: unknown sync policy %q (want always, interval, or never)", s)
}

// Options configures a Log.
type Options struct {
	// Dir holds the log's segment files; created if absent.
	Dir string
	// Policy is the sync policy (default SyncEvery).
	Policy SyncPolicy
	// Interval is the background fsync period under SyncEvery
	// (default 100ms).
	Interval time.Duration
	// SegmentBytes caps one log file's size before rotation
	// (default 16 MiB). Smaller segments reclaim space sooner after
	// compaction; each rotation costs one fsync and one file creation.
	SegmentBytes int64
	// GroupCommitWait, under SyncAlways, is how long a committing leader
	// holds its fsync window open for concurrent appends to pile in, so
	// one fsync acknowledges many batches. A lone committer never waits —
	// the window only opens when other commits are already in flight — so
	// this caps added latency under concurrency without taxing sequential
	// writers. 0 disables batching windows (every commit races straight
	// to the fsync, batching only with syncs already in flight).
	GroupCommitWait time.Duration
	// RetainSegments, when positive, keeps at least that many of the
	// newest segment files out of TruncateThrough's reach even when their
	// ticks are fully sealed. It is the replication floor: a follower that
	// reconnects after a pause can still be served from the retained tail
	// without a gap, at the cost of that much extra disk.
	RetainSegments int
	// FS is the filesystem seam (default OSFS). Tests inject FaultFS to
	// exercise disk failures deterministically.
	FS FS
	// Metrics, when set, registers the log's latency histograms
	// (ppq_wal_fsync_seconds, ppq_wal_commit_batch_count) there. Counter-style
	// stats stay in the log's own atomics — the serving layer bridges
	// them into snapshots via a registry source.
	Metrics *obs.Registry
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, errors.New("wal: Dir must be set")
	}
	if o.Policy == "" {
		o.Policy = SyncEvery
	}
	if _, err := ParsePolicy(string(o.Policy)); err != nil {
		return o, err
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.RetainSegments < 0 {
		o.RetainSegments = 0
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	return o, nil
}

// ErrFailStopped marks every error returned by a log that has latched a
// disk failure: once an fsync or write fails, the durable prefix is
// unknowable and the log rejects all further appends and commits. The
// serving layer matches this sentinel (errors.Is) to surface degraded
// mode as 503s instead of generic failures.
var ErrFailStopped = errors.New("wal: log is fail-stopped after a disk error")

// ErrGone reports that a reader asked for record ordinals that were
// already reclaimed by TruncateThrough: the data exists only in sealed
// repository segments now, not in the log. Replication surfaces it as
// 410 Gone — the honest answer, never a silent full resync.
var ErrGone = errors.New("wal: requested records were reclaimed")

// ErrFuture reports that a reader asked for record ordinals past the end
// of the log — a follower that is somehow ahead of its primary. That is
// never a transient state (ordinals only grow), so replication surfaces
// it as 416 and refuses to serve rather than waiting for history to
// rewrite itself.
var ErrFuture = errors.New("wal: requested records are beyond the end of the log")

// failStopError carries the original disk error while matching
// ErrFailStopped, so callers keep the root cause in the message and a
// stable sentinel for control flow.
type failStopError struct{ err error }

func (e *failStopError) Error() string   { return e.err.Error() }
func (e *failStopError) Unwrap() []error { return []error{ErrFailStopped, e.err} }

// Record is one logged ingest batch: the points of one tick. IDs and
// Points are parallel slices, exactly as handed to Repository.Ingest.
type Record struct {
	Tick   int
	IDs    []traj.ID
	Points []geo.Point
}

// Stats is a point-in-time snapshot of the log (the /v1/stats wal
// section).
type Stats struct {
	Segments        int   `json:"segments"`
	Bytes           int64 `json:"bytes"`
	Syncs           int64 `json:"syncs"`
	Appends         int64 `json:"appended_records"`
	// Commits counts successful SyncAlways commits; Commits/Syncs is the
	// group-commit batching factor (acked batches per fsync).
	Commits int64 `json:"commits"`
	ReplayedRecords int64 `json:"replayed_records"`
	ReplayedPoints  int64 `json:"replayed_points"`
	Reclaimed       int64 `json:"reclaimed_segments"`
	// Record ordinals (the replication LSN space): OldestRec is the first
	// ordinal still present in a log file, NextRec the ordinal the next
	// append gets, DurableRec the watermark below which every record is
	// known fsynced (what the shipper may serve).
	OldestRec  int64 `json:"oldest_rec"`
	NextRec    int64 `json:"next_rec"`
	DurableRec int64 `json:"durable_rec"`
	// PinnedHolds counts live retention pins (one per follower position
	// the shipper is protecting from reclamation).
	PinnedHolds int `json:"pinned_holds,omitempty"`
	// Failed carries the latched disk-failure error, if any: once set the
	// log is fail-stopped and rejects every further append and commit.
	Failed string `json:"failed,omitempty"`
}

// segment is one log file's in-memory metadata. maxTick drives
// reclamation: once every record's tick is at or below the repository's
// sealed watermark, the file's contents are fully covered by sealed
// segments and the file can go.
type segment struct {
	seq     uint64
	path    string
	bytes   int64 // record bytes (the 16-byte file header is not counted)
	records int64
	maxTick int
	// baseRec is the ordinal of the file's first record, read from (or
	// destined for) its header; hasHeader is false only for a file whose
	// header has not been written yet (fresh create, or a torn header
	// truncated away during Open).
	baseRec   int64
	hasHeader bool
}

// Log is the write-ahead log. Append/Commit/TruncateThrough/Stats are
// safe for concurrent use.
type Log struct {
	opts Options
	fs   FS

	mu     sync.Mutex // guards file ops, rotation, and the segment list
	f      File       // active segment, open for append
	segs   []*segment // ascending seq; last is the active one
	closed bool
	failed error // first fsync/write failure; latched, poisons the log

	written int64 // LSN: total bytes appended over the log's lifetime
	synced  int64 // highest LSN known durable

	// Record-ordinal space (the replication LSN): recs is the ordinal the
	// next append gets, syncedRecs the durable watermark readers may see.
	// recsCh is closed and replaced whenever syncedRecs advances (or the
	// log closes or fail-stops), waking WaitDurable long-pollers.
	recs       int64
	syncedRecs int64
	recsCh     chan struct{}

	// pins are retention holds: ordinal → refcount. A segment whose
	// records reach at or past the smallest pinned ordinal survives
	// TruncateThrough, so a lagging follower never finds a gap.
	pins map[int64]int

	// Single-entry tail-read cursor: when a reader resumes exactly where
	// the previous ReadFrames left off (the steady replication state), the
	// prefix skip is a byte discard at a known offset instead of a parse.
	readPath string
	readOrd  int64
	readOff  int64

	// syncMu serializes fsyncs; it is held across the Sync call itself so
	// mu (which Append needs, inside the serving layer's hot-tail lock)
	// never is. Lock order: syncMu before mu, never the reverse.
	syncMu sync.Mutex

	// Group-commit leadership (SyncAlways + GroupCommitWait): one
	// committer at a time leads a batching window, the rest wait for the
	// round to finish and usually find their LSN already durable.
	gcMu        sync.Mutex
	gcCond      *sync.Cond
	gcLeader    bool
	gcRound     uint64
	gcPending   atomic.Int64 // commits currently inside groupCommit
	gcLastBatch atomic.Int64 // commits the previous round's fsync covered

	syncs        atomic.Int64
	commits      atomic.Int64
	appends      atomic.Int64
	reclaimed    atomic.Int64
	replayedRecs atomic.Int64
	replayedPts  atomic.Int64

	// fsyncHist observes every fsync's duration; batchHist observes how
	// many commits each group-commit fsync covered. Both nil without
	// Options.Metrics.
	fsyncHist *obs.Histogram
	batchHist *obs.Histogram

	stopSync chan struct{} // closes the SyncEvery ticker goroutine
	syncWG   sync.WaitGroup

	scratch []byte // append encode buffer, reused under mu
}

const (
	recHeaderLen  = 8  // u32 length + u32 crc
	segHeaderLen  = 16 // magic + u32 version + u64 base record ordinal
	segMagic      = "PPQW"
	segVersion    = 2
	segPrefix     = "wal-"
	segSuffix     = ".log"
	maxRecordSize = 64 << 20 // sanity bound when reading lengths back
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segHeader builds the 16-byte file header for a segment whose first
// record has ordinal baseRec.
func segHeader(baseRec int64) [segHeaderLen]byte {
	var b [segHeaderLen]byte
	copy(b[0:4], segMagic)
	binary.LittleEndian.PutUint32(b[4:8], segVersion)
	binary.LittleEndian.PutUint64(b[8:16], uint64(baseRec))
	return b
}

// parseSegHeader validates a header read back from disk.
func parseSegHeader(b []byte) (baseRec int64, err error) {
	if string(b[0:4]) != segMagic {
		return 0, fmt.Errorf("wal: bad segment magic %q", b[0:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != segVersion {
		return 0, fmt.Errorf("wal: unsupported segment format version %d (want %d)", v, segVersion)
	}
	return int64(binary.LittleEndian.Uint64(b[8:16])), nil
}

// segName is the canonical file name of segment seq.
func segName(seq uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

// parseSegName extracts the sequence number from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open scans dir for log segments, replays every intact record through
// replay in append order, truncates a torn tail left by a crash, and
// returns the log positioned for appending. A replay error aborts the
// open — the caller's state would otherwise silently diverge from the
// acknowledged history.
func Open(opts Options, replay func(Record) error) (*Log, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{opts: opts, fs: opts.FS, stopSync: make(chan struct{}),
		recsCh: make(chan struct{}), pins: make(map[int64]int)}
	l.gcCond = sync.NewCond(&l.gcMu)
	if opts.Metrics != nil {
		l.fsyncHist = opts.Metrics.Histogram("ppq_wal_fsync_seconds",
			"Duration of WAL fsync calls.", obs.LatencyBuckets)
		l.batchHist = opts.Metrics.Histogram("ppq_wal_commit_batch_count",
			"Commits acknowledged per group-commit fsync (batching factor).", obs.CountBuckets)
	}

	entries, err := l.fs.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegName(e.Name()); ok {
			l.segs = append(l.segs, &segment{seq: seq, path: filepath.Join(opts.Dir, e.Name()), maxTick: math.MinInt})
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].seq < l.segs[j].seq })

	for i, s := range l.segs {
		last := i == len(l.segs)-1
		if err := l.replaySegment(s, last, replay); err != nil {
			return nil, err
		}
		l.written += s.bytes
	}
	l.synced = l.written // everything read back from disk is durable

	// Validate header contiguity and fix up a torn header (which
	// replaySegment only permits on the last file, and only from a crash
	// inside a rotation — so the previous segment's header is intact and
	// pins the ordinal). This is what keeps record ordinals stable across
	// restarts even after earlier files were reclaimed.
	next := int64(-1)
	for _, s := range l.segs {
		if !s.hasHeader {
			if next < 0 {
				next = 0
			}
			s.baseRec = next
		} else if next >= 0 && s.baseRec != next {
			return nil, fmt.Errorf("wal: %s: header base ordinal %d, want %d (record ordinals discontiguous)",
				s.path, s.baseRec, next)
		}
		next = s.baseRec + s.records
	}
	if next < 0 {
		next = 0
	}
	l.recs = next
	l.syncedRecs = next

	// Open (or create) the active segment for append.
	var active *segment
	if n := len(l.segs); n > 0 {
		active = l.segs[n-1]
	} else {
		active = &segment{seq: 1, path: filepath.Join(opts.Dir, segName(1)), maxTick: math.MinInt}
		l.segs = append(l.segs, active)
	}
	f, err := l.fs.OpenFile(active.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	if !active.hasHeader {
		// Fresh file (or torn header truncated away): write the header and
		// make it durable before any record can be acknowledged into it.
		hdr := segHeader(active.baseRec)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: writing segment header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing segment header: %w", err)
		}
		active.hasHeader = true
	}
	if len(l.segs) == 1 && active.bytes == 0 {
		// First-ever segment: make its directory entry durable too, so a
		// crash right after Open cannot resurrect an empty directory.
		if err := l.fs.SyncDir(opts.Dir); err != nil {
			f.Close()
			return nil, err
		}
	}

	if l.opts.Policy == SyncEvery {
		l.syncWG.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// replaySegment streams one file's records through replay. Only the last
// segment may end in a torn record (rotation fsyncs a file before moving
// on), which is truncated away; corruption anywhere else is fatal. A
// torn file header — possible only in the last file, from a crash inside
// the rotation that was creating it — truncates the file to empty; Open
// rewrites the header from the previous segment's ordinals.
func (l *Log) replaySegment(s *segment, last bool, replay func(Record) error) error {
	f, err := l.fs.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	var seghdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, seghdr[:]); err != nil {
		if (err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF)) && last {
			// Crash mid-rotation: no record was ever acked into this file.
			if terr := l.fs.Truncate(s.path, 0); terr != nil {
				return fmt.Errorf("wal: truncating torn header of %s: %w", s.path, terr)
			}
			s.bytes, s.hasHeader = 0, false
			return nil
		}
		return fmt.Errorf("wal: %s: reading segment header: %w", s.path, err)
	}
	base, err := parseSegHeader(seghdr[:])
	if err != nil {
		return fmt.Errorf("wal: %s: %w", s.path, err)
	}
	s.baseRec, s.hasHeader = base, true
	var (
		hdr    [recHeaderLen]byte
		buf    []byte
		offset int64 = segHeaderLen
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				break // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) && last {
				return l.truncateTorn(s, offset, "short record header")
			}
			return fmt.Errorf("wal: %s: reading record header at offset %d: %w", s.path, offset, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordSize {
			if last {
				return l.truncateTorn(s, offset, "implausible record length")
			}
			return fmt.Errorf("wal: %s: implausible record length %d at offset %d", s.path, length, offset)
		}
		if int(length) > cap(buf) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(f, buf); err != nil {
			if last && (err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF)) {
				return l.truncateTorn(s, offset, "short record payload")
			}
			return fmt.Errorf("wal: %s: reading record payload at offset %d: %w", s.path, offset, err)
		}
		if crc32.Checksum(buf, castagnoli) != sum {
			if last {
				return l.truncateTorn(s, offset, "checksum mismatch")
			}
			return fmt.Errorf("wal: %s: checksum mismatch at offset %d", s.path, offset)
		}
		rec, err := decodeRecord(buf)
		if err != nil {
			if last {
				return l.truncateTorn(s, offset, err.Error())
			}
			return fmt.Errorf("wal: %s: offset %d: %w", s.path, offset, err)
		}
		if err := replay(rec); err != nil {
			return fmt.Errorf("wal: replaying %s record at offset %d (tick %d): %w", s.path, offset, rec.Tick, err)
		}
		offset += recHeaderLen + int64(length)
		s.records++
		if rec.Tick > s.maxTick {
			s.maxTick = rec.Tick
		}
		l.replayedRecs.Add(1)
		l.replayedPts.Add(int64(len(rec.IDs)))
	}
	s.bytes = offset - segHeaderLen
	return nil
}

// truncateTorn cuts the (last) segment back to the end of its final good
// record: the bytes beyond it are a half-written append from the crash —
// never acknowledged, so dropping them is correct, and keeping them would
// poison every future read of the file. offset is a file offset (header
// included).
func (l *Log) truncateTorn(s *segment, offset int64, why string) error {
	if err := l.fs.Truncate(s.path, offset); err != nil {
		return fmt.Errorf("wal: truncating torn tail of %s (%s): %w", s.path, why, err)
	}
	s.bytes = offset - segHeaderLen
	return nil
}

// decodeRecord parses one checksum-verified payload.
func decodeRecord(buf []byte) (Record, error) {
	if len(buf) < 12 {
		return Record{}, fmt.Errorf("wal: record payload of %d bytes is too short", len(buf))
	}
	tick := int(int64(binary.LittleEndian.Uint64(buf[0:8])))
	n := int(binary.LittleEndian.Uint32(buf[8:12]))
	want := 12 + n*4 + n*16
	if n < 0 || len(buf) != want {
		return Record{}, fmt.Errorf("wal: record payload of %d bytes does not match %d points", len(buf), n)
	}
	rec := Record{Tick: tick, IDs: make([]traj.ID, n), Points: make([]geo.Point, n)}
	off := 12
	for i := 0; i < n; i++ {
		rec.IDs[i] = traj.ID(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	for i := 0; i < n; i++ {
		rec.Points[i].X = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		rec.Points[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
		off += 16
	}
	return rec, nil
}

// EncodeFrame appends rec's framed encoding — [len][crc][payload], bit
// for bit the on-disk format — to dst and returns the extended slice.
// Exported because replication ships the same frames over the wire: the
// storage checksum doubles as end-to-end corruption detection.
func EncodeFrame(dst []byte, rec Record) []byte {
	n := len(rec.IDs)
	payload := 12 + n*4 + n*16
	total := recHeaderLen + payload
	start := len(dst)
	if cap(dst)-start < total {
		grown := make([]byte, start, start+total)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:start+total]
	b := dst[start:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(payload))
	binary.LittleEndian.PutUint64(b[8:16], uint64(int64(rec.Tick)))
	binary.LittleEndian.PutUint32(b[16:20], uint32(n))
	off := 20
	for _, id := range rec.IDs {
		binary.LittleEndian.PutUint32(b[off:], uint32(id))
		off += 4
	}
	for _, p := range rec.Points {
		binary.LittleEndian.PutUint64(b[off:], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(b[off+8:], math.Float64bits(p.Y))
		off += 16
	}
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(b[recHeaderLen:], castagnoli))
	return dst
}

// DecodeFrames walks b as a sequence of frames, calling fn for each
// record that passes its checksum, in order. It returns how many records
// were consumed and a nil error only if b was exactly a whole number of
// valid frames; a torn or corrupt remainder returns the count of the good
// prefix and a descriptive error, so a replication applier can keep the
// intact records and refetch the rest. An error from fn stops the walk.
func DecodeFrames(b []byte, fn func(Record) error) (int, error) {
	n, off := 0, 0
	for off < len(b) {
		if len(b)-off < recHeaderLen {
			return n, fmt.Errorf("wal: torn frame header at offset %d", off)
		}
		length := binary.LittleEndian.Uint32(b[off : off+4])
		sum := binary.LittleEndian.Uint32(b[off+4 : off+8])
		if length > maxRecordSize {
			return n, fmt.Errorf("wal: implausible frame length %d at offset %d", length, off)
		}
		if int64(len(b)-off-recHeaderLen) < int64(length) {
			return n, fmt.Errorf("wal: torn frame payload at offset %d", off)
		}
		payload := b[off+recHeaderLen : off+recHeaderLen+int(length)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return n, fmt.Errorf("wal: frame checksum mismatch at offset %d", off)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return n, err
		}
		if err := fn(rec); err != nil {
			return n, err
		}
		n++
		off += recHeaderLen + int(length)
	}
	return n, nil
}

// Append writes one record to the active segment (rotating first when it
// is full) and returns the record's LSN. The write lands in the OS
// immediately — Append never buffers in user space, so a process crash
// cannot lose it — but it is only durable against machine crashes once
// Commit(lsn) returns (SyncAlways) or the next background/rotation sync
// covers it. Callers that serialize Appends (the repository appends under
// its hot-tail lock) get log order identical to application order, which
// is what makes replay reproduce the exact pre-crash state.
func (l *Log) Append(rec Record) (lsn int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: append on closed log")
	}
	if l.failed != nil {
		return 0, l.failed
	}
	if payload := 12 + len(rec.IDs)*20; payload > maxRecordSize {
		// Replay rejects payloads above the bound, so writing one would
		// acknowledge a batch that recovery then discards as a torn tail.
		return 0, fmt.Errorf("wal: record of %d points (%d bytes) exceeds the %d-byte record cap",
			len(rec.IDs), payload, maxRecordSize)
	}
	active := l.segs[len(l.segs)-1]
	if active.bytes >= l.opts.SegmentBytes && active.records > 0 {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
		active = l.segs[len(l.segs)-1]
	}
	l.scratch = EncodeFrame(l.scratch[:0], rec)
	b := l.scratch
	if _, err := l.f.Write(b); err != nil {
		// A short write leaves a torn record in the file; nothing after
		// it could be replayed, so the log must fail-stop.
		return 0, l.fail(fmt.Errorf("wal: append: %w", err))
	}
	active.bytes += int64(len(b))
	active.records++
	if rec.Tick > active.maxTick {
		active.maxTick = rec.Tick
	}
	l.written += int64(len(b))
	l.recs++
	l.appends.Add(1)
	return l.written, nil
}

// Commit makes the record at lsn durable under the log's policy: under
// SyncAlways it fsyncs (batching with any concurrent commits that the
// same sync happens to cover, plus — with GroupCommitWait — whole
// batching windows of them); under SyncEvery/SyncNever it only
// reports a latched disk failure — the caller accepted the policy's
// loss window, but not a log that is known to be losing writes.
func (l *Log) Commit(lsn int64) error {
	if l.opts.Policy != SyncAlways {
		l.mu.Lock()
		err := l.failed
		l.mu.Unlock()
		return err
	}
	var err error
	if l.opts.GroupCommitWait > 0 {
		err = l.groupCommit(lsn)
	} else {
		err = l.syncTo(lsn)
	}
	if err == nil {
		l.commits.Add(1)
	}
	return err
}

// groupCommit is Commit's batching path: committers elect a leader; the
// leader — when other commits are already in flight — holds the window
// open for GroupCommitWait so concurrent appends pile into one fsync,
// then syncs everything written and wakes the round's followers, who
// find their LSNs durable without ever touching the disk. A lone
// committer (no one else pending) skips the window entirely, so
// sequential writers pay exactly the old one-fsync-per-commit cost.
func (l *Log) groupCommit(lsn int64) error {
	l.gcPending.Add(1)
	defer l.gcPending.Add(-1)
	for {
		l.mu.Lock()
		failed := l.failed
		done := l.synced >= lsn || l.closed
		l.mu.Unlock()
		if failed != nil {
			return failed
		}
		if done {
			return nil
		}

		l.gcMu.Lock()
		if l.gcLeader {
			// Follower: wait the current round out, then re-check the
			// durable watermark (the leader's fsync almost always covers
			// us — our append completed before its sync read `written`).
			round := l.gcRound
			for l.gcLeader && l.gcRound == round {
				l.gcCond.Wait()
			}
			l.gcMu.Unlock()
			continue
		}
		l.gcLeader = true
		l.gcMu.Unlock()

		// Hold the window open only while company keeps arriving: sleep
		// in slices and sync as soon as the pending population stops
		// growing, so the window never costs throughput where fsyncs are
		// cheap. The previous round's batch size decides whether a
		// momentarily-alone leader waits at all — right after a crowded
		// round the other committers are mid-ack and about to re-append,
		// and syncing immediately would burn a one-commit fsync on them;
		// a truly sequential writer's rounds all cover one commit, so it
		// keeps the zero-wait fast path.
		if l.gcPending.Load() > 1 || l.gcLastBatch.Load() > 1 {
			slice := l.opts.GroupCommitWait / 16
			if slice < 50*time.Microsecond {
				slice = 50 * time.Microsecond
			}
			deadline := time.Now().Add(l.opts.GroupCommitWait)
			prev := l.gcPending.Load()
			stagnant := 0
			for time.Now().Before(deadline) {
				time.Sleep(slice)
				cur := l.gcPending.Load()
				if cur <= prev {
					// One quiet slice can just mean a straggler is mid-ack
					// or mid-append; two in a row means the batch is in.
					if stagnant++; stagnant >= 2 {
						break
					}
				} else {
					stagnant = 0
				}
				prev = cur
			}
		}
		batch := l.gcPending.Load()
		l.gcLastBatch.Store(batch)
		if l.batchHist != nil {
			l.batchHist.Observe(float64(batch))
		}
		err := l.Sync()

		l.gcMu.Lock()
		l.gcLeader = false
		l.gcRound++
		l.gcCond.Broadcast()
		l.gcMu.Unlock()
		if err != nil {
			return err
		}
		// Loop: the sync covered everything appended before it ran, our
		// own record included; the re-check returns nil.
	}
}

// fail latches the first disk failure. Once an fsync or write has
// failed, the durable prefix of the log is unknowable — the kernel may
// have dropped the dirty pages and cleared the error state, so a later
// "successful" fsync proves nothing about earlier bytes. The only safe
// behavior is fail-stop: every subsequent Append/Commit/Sync returns the
// latched error instead of acknowledging writes that may never land.
// Called with mu held. The stored error matches ErrFailStopped, so the
// serving layer can map it to degraded mode without string matching.
func (l *Log) fail(err error) error {
	if l.failed == nil {
		l.failed = &failStopError{err: err}
		l.bumpDurableRecsLocked(l.syncedRecs) // wake waiters to see the latch
	}
	return l.failed
}

// Failed returns the latched disk error, or nil while the log is
// healthy. The serving layer polls it to expose degraded mode in stats.
func (l *Log) Failed() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Sync forces an fsync of everything appended so far, regardless of
// policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	lsn := l.written
	l.mu.Unlock()
	return l.syncTo(lsn)
}

// syncTo fsyncs until the durable watermark covers lsn. Rotation fsyncs
// a file before switching, so the active file always holds every byte
// past the watermark.
//
// The fsync itself runs with mu RELEASED: Append runs under the serving
// layer's hot-tail write lock, so holding mu through a multi-millisecond
// fsync would stall every hot-tail query behind the disk. Only syncMu is
// held across the fsync, which both serializes the syncers and gives
// group commit its batching point — a committer that waited here
// re-checks the watermark and usually finds its LSN already covered.
func (l *Log) syncTo(lsn int64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.failed != nil {
		l.mu.Unlock()
		return l.failed
	}
	if l.synced >= lsn || l.closed {
		l.mu.Unlock()
		return nil
	}
	cur := l.written
	curRecs := l.recs // captured with cur: the fsync covers both watermarks
	f := l.f
	l.mu.Unlock()

	t0 := time.Now()
	err := f.Sync()
	if l.fsyncHist != nil {
		l.fsyncHist.ObserveSince(t0)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		// A rotation or Close may have synced past our LSN and closed the
		// file under us (os.File makes the race safe, the Sync just loses);
		// that is success, not a disk failure.
		if l.synced >= lsn {
			return nil
		}
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	l.syncs.Add(1)
	if cur > l.synced {
		l.synced = cur
	}
	l.bumpDurableRecsLocked(curRecs)
	return nil
}

// bumpDurableRecsLocked advances the durable record watermark and wakes
// long-poll waiters. Called with mu held; also used (with an unchanged
// watermark) to wake waiters on close and fail-stop so they can observe
// the terminal state.
func (l *Log) bumpDurableRecsLocked(n int64) {
	if n > l.syncedRecs {
		l.syncedRecs = n
	}
	close(l.recsCh)
	l.recsCh = make(chan struct{})
}

// rotateLocked seals the active segment (fsync + close) and starts the
// next one. Called with mu held.
//
//ppqvet:allow lockorder rotation must seal the old file before the segment
// list swaps to the new one, and both have to happen atomically under mu —
// a rotation is rare (once per SegmentBytes) and bounded, unlike the
// per-commit sync path the fsync-outside-mu rule exists for.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: rotate fsync: %w", err))
	}
	l.syncs.Add(1)
	if l.synced < l.written {
		l.synced = l.written
	}
	l.bumpDurableRecsLocked(l.recs) // the sealed file held every record so far
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	next := &segment{
		seq:       l.segs[len(l.segs)-1].seq + 1,
		maxTick:   math.MinInt,
		baseRec:   l.recs,
		hasHeader: true,
	}
	next.path = filepath.Join(l.opts.Dir, segName(next.seq))
	f, err := l.fs.OpenFile(next.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate create: %w", err)
	}
	l.f = f
	l.segs = append(l.segs, next)
	// Write the new file's header and fsync it before anything else can
	// run: once this returns, TruncateThrough may reclaim every earlier
	// file, and the header is then the only surviving carrier of the
	// record ordinal. A failure past the swap must latch (see below).
	hdr := segHeader(next.baseRec)
	if _, err := f.Write(hdr[:]); err != nil {
		return l.fail(fmt.Errorf("wal: rotate header write: %w", err))
	}
	if err := f.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: rotate header fsync: %w", err))
	}
	// The new file's directory entry must be durable before records in it
	// are acknowledged; one directory sync at rotation covers them all. A
	// failure must latch: the swap to the new file already happened, so
	// without the latch later appends would be acknowledged into a file a
	// machine crash can unlink entirely.
	if err := l.fs.SyncDir(l.opts.Dir); err != nil {
		return l.fail(err)
	}
	return nil
}

// TruncateThrough reclaims segments made redundant by compaction: every
// file whose records all have tick ≤ sealedTick is deleted (those points
// are now served by published sealed segments, and replay skips them
// anyway). An active segment that qualifies and holds records is rotated
// first so its file can go too — this is what keeps the log's disk
// footprint proportional to the hot tail instead of the full history.
//
// Two things veto reclamation of an otherwise-sealed file: a retention
// pin at or below the file's last record ordinal (a replication follower
// still needs those records), and the Options.RetainSegments floor
// (the newest N files always survive). Reclamation is how replication
// could otherwise race GC into a gap; the pins make the race a held-back
// file instead.
func (l *Log) TruncateThrough(sealedTick int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	minPin, pinned := l.minPinLocked()
	pinOK := func(s *segment) bool { return !pinned || s.baseRec+s.records <= minPin }
	active := l.segs[len(l.segs)-1]
	if active.records > 0 && active.maxTick <= sealedTick && pinOK(active) && l.opts.RetainSegments <= 1 {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	kept := l.segs[:0]
	removed := false
	n := len(l.segs)
	for i, s := range l.segs {
		last := i == n-1
		floored := n-i <= l.opts.RetainSegments
		if !last && !floored && s.records > 0 && s.maxTick <= sealedTick && pinOK(s) {
			if err := l.fs.Remove(s.path); err != nil {
				return fmt.Errorf("wal: reclaiming %s: %w", s.path, err)
			}
			l.reclaimed.Add(1)
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	if removed {
		return l.fs.SyncDir(l.opts.Dir)
	}
	return nil
}

// Pin places a retention hold at ordinal from: TruncateThrough will not
// reclaim any file holding records at or past it. The returned release is
// idempotent. The replication shipper pins each follower's resume
// position so a slow follower never comes back to a gap.
func (l *Log) Pin(from int64) (release func()) {
	l.mu.Lock()
	l.pins[from]++
	l.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			if l.pins[from]--; l.pins[from] <= 0 {
				delete(l.pins, from)
			}
			l.mu.Unlock()
		})
	}
}

// minPinLocked returns the smallest pinned ordinal. Called with mu held.
func (l *Log) minPinLocked() (int64, bool) {
	min, ok := int64(0), false
	for p := range l.pins {
		if !ok || p < min {
			min, ok = p, true
		}
	}
	return min, ok
}

// syncLoop is the SyncEvery background fsync.
func (l *Log) syncLoop() {
	defer l.syncWG.Done()
	ticker := time.NewTicker(l.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-ticker.C:
			// An error here latches via fail(), so it is not lost: every
			// subsequent Commit (any policy) and Append returns it.
			l.Sync() //nolint:errcheck // latched; surfaced by the next Commit/Append
		}
	}
}

// Close fsyncs and closes the active segment and stops the background
// sync. The log must not be used afterwards.
//
// The closing fsync follows the same discipline as syncTo: syncMu is
// taken first (serializing against any in-flight Commit/Sync, so the
// file cannot be closed under a racing fsync), mu is released across
// the disk wait, and the final close happens back under mu. ppqvet's
// lockorder analyzer enforces exactly this shape.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	close(l.stopSync)
	l.syncWG.Wait()

	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.closed { // lost a Close race while waiting on syncMu
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	f := l.f
	written := l.written
	recs := l.recs
	l.mu.Unlock()

	err := f.Sync()

	l.mu.Lock()
	defer l.mu.Unlock()
	if err == nil {
		l.syncs.Add(1)
		l.synced = written
		l.bumpDurableRecsLocked(recs)
	} else {
		l.bumpDurableRecsLocked(l.syncedRecs) // wake waiters to observe closed
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// NextRec returns the ordinal the next appended record will get — the
// exclusive upper bound of the log's record space.
func (l *Log) NextRec() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs
}

// DurableRec returns the durable record watermark: every record with a
// smaller ordinal is known fsynced. This is the bound the replication
// shipper serves up to — a follower can never see a record the primary
// has not made stable.
func (l *Log) DurableRec() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncedRecs
}

// OldestRec returns the smallest record ordinal still present in a log
// file; ordinals below it were reclaimed by TruncateThrough.
func (l *Log) OldestRec() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].baseRec
}

// WaitDurable blocks until the durable record watermark passes from
// (that is, record ordinal from exists and is durable), the context is
// done, or the log closes or fail-stops. It is the long-poll primitive
// under the replication stream endpoint.
func (l *Log) WaitDurable(ctx context.Context, from int64) error {
	for {
		l.mu.Lock()
		if l.failed != nil {
			err := l.failed
			l.mu.Unlock()
			return err
		}
		if l.closed {
			l.mu.Unlock()
			return errors.New("wal: wait on closed log")
		}
		if l.syncedRecs > from {
			l.mu.Unlock()
			return nil
		}
		ch := l.recsCh
		l.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// ReadFrames reads durable records starting at ordinal from, returning
// their raw frames (ready to ship: the wire format is the disk format,
// checksums included) and the next ordinal to resume at. It stops after
// roughly maxBytes of frames — always returning at least one record when
// any is available — or at the durable watermark, whichever is first;
// next == from with a nil error means nothing is durable past from yet.
// Asking for reclaimed ordinals fails with ErrGone; a checksum failure
// on re-read is fatal (acknowledged history is damaged), matching
// replay's stance.
//
// The read is sequential from the owning file's start (the FS seam has
// no seek), but a single-entry cursor makes the resume-where-you-left
// pattern — the steady state of a tailing follower — skip the prefix
// with a byte discard instead of a parse.
func (l *Log) ReadFrames(from int64, maxBytes int64) (frames []byte, next int64, err error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	next = from
	for int64(len(frames)) < maxBytes {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return frames, next, errors.New("wal: read on closed log")
		}
		durable := l.syncedRecs
		if oldest := l.segs[0].baseRec; next < oldest {
			l.mu.Unlock()
			return frames, next, fmt.Errorf("%w: ordinal %d requested, oldest retained is %d", ErrGone, next, oldest)
		}
		if next > l.recs {
			l.mu.Unlock()
			return frames, next, fmt.Errorf("%w: ordinal %d requested, log ends at %d", ErrFuture, next, l.recs)
		}
		if next >= durable {
			l.mu.Unlock()
			return frames, next, nil
		}
		var seg *segment
		for _, s := range l.segs {
			if next < s.baseRec+s.records {
				seg = s
				break
			}
		}
		path := seg.path
		want := seg.baseRec + seg.records - next
		if end := durable - next; end < want {
			want = end
		}
		skipRecs := next - seg.baseRec
		var skipOff int64
		if l.readPath == path && l.readOrd == next && l.readOff > 0 {
			skipOff, skipRecs = l.readOff, 0
		}
		l.mu.Unlock()

		chunk, got, endOff, rerr := l.readSegFrames(path, skipOff, skipRecs, want, maxBytes-int64(len(frames)))
		if rerr != nil {
			return frames, next, rerr
		}
		if got == 0 {
			break // budget exhausted before one record fit
		}
		frames = append(frames, chunk...)
		next += got

		l.mu.Lock()
		l.readPath, l.readOrd, l.readOff = path, next, endOff
		l.mu.Unlock()
	}
	return frames, next, nil
}

// readSegFrames reads up to want records from one segment file, skipping
// skipOff bytes (a cursor resume, header included) or else skipRecs
// records past the header. It returns the frames, how many records they
// hold, and the file offset just past them. At least one record is
// returned regardless of budget so a reader always makes progress.
func (l *Log) readSegFrames(path string, skipOff, skipRecs, want, budget int64) (data []byte, n, endOff int64, err error) {
	f, err := l.fs.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	if skipOff > 0 {
		if _, err := io.CopyN(io.Discard, f, skipOff); err != nil {
			return nil, 0, 0, fmt.Errorf("wal: %s: seeking to cursor offset %d: %w", path, skipOff, err)
		}
		endOff = skipOff
	} else {
		var seghdr [segHeaderLen]byte
		if _, err := io.ReadFull(f, seghdr[:]); err != nil {
			return nil, 0, 0, fmt.Errorf("wal: %s: reading segment header: %w", path, err)
		}
		if _, err := parseSegHeader(seghdr[:]); err != nil {
			return nil, 0, 0, fmt.Errorf("wal: %s: %w", path, err)
		}
		endOff = segHeaderLen
	}
	var hdr [recHeaderLen]byte
	for n < want {
		if skipRecs == 0 && n > 0 && int64(len(data)) >= budget {
			break
		}
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil, 0, 0, fmt.Errorf("wal: %s: reading frame header at offset %d: %w", path, endOff, err)
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if length > maxRecordSize {
			return nil, 0, 0, fmt.Errorf("wal: %s: implausible frame length %d at offset %d", path, length, endOff)
		}
		if skipRecs > 0 {
			if _, err := io.CopyN(io.Discard, f, length); err != nil {
				return nil, 0, 0, fmt.Errorf("wal: %s: skipping frame at offset %d: %w", path, endOff, err)
			}
			skipRecs--
			endOff += recHeaderLen + length
			continue
		}
		start := len(data)
		data = append(data, hdr[:]...)
		data = append(data, make([]byte, length)...)
		if _, err := io.ReadFull(f, data[start+recHeaderLen:]); err != nil {
			return nil, 0, 0, fmt.Errorf("wal: %s: reading frame payload at offset %d: %w", path, endOff, err)
		}
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if crc32.Checksum(data[start+recHeaderLen:], castagnoli) != sum {
			// Durable, acknowledged history failing its checksum on re-read
			// is bitrot, not a torn tail: fatal, same as replay.
			return nil, 0, 0, fmt.Errorf("wal: %s: frame checksum mismatch at offset %d", path, endOff)
		}
		n++
		endOff += recHeaderLen + length
	}
	return data, n, endOff, nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.Lock()
	st := Stats{
		Segments:    len(l.segs),
		OldestRec:   l.segs[0].baseRec,
		NextRec:     l.recs,
		DurableRec:  l.syncedRecs,
		PinnedHolds: len(l.pins),
	}
	for _, s := range l.segs {
		st.Bytes += s.bytes
	}
	if l.failed != nil {
		st.Failed = l.failed.Error()
	}
	l.mu.Unlock()
	st.Syncs = l.syncs.Load()
	st.Commits = l.commits.Load()
	st.Appends = l.appends.Load()
	st.ReplayedRecords = l.replayedRecs.Load()
	st.ReplayedPoints = l.replayedPts.Load()
	st.Reclaimed = l.reclaimed.Load()
	return st
}

// SyncDir fsyncs a directory, making renames, creations, and removals in
// it durable. Exported because the serving layer needs the same barrier
// around its manifest and segment rename-swaps.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: fsync dir %s: %w", dir, err)
	}
	return nil
}
