// Package wal is the repository's durable hot tail: a segmented,
// checksummed, append-only write-ahead log of ingested tick batches. The
// serving layer appends every validated ingest before mutating its
// in-memory hot tail, so a crash loses no acknowledged write: on restart
// the log is replayed above the manifest's sealed watermark to rebuild the
// hot tail exactly, and segments whose records are all covered by sealed
// repository segments are reclaimed after compaction.
//
// Format: the log is a sequence of files wal-<seq>.log (seq ascending,
// records in append order across files). Each record is
//
//	[u32 payload length][u32 CRC32-C of payload][payload]
//
// with the payload encoding one ingested tick batch: i64 tick, u32 count,
// count × u32 trajectory ID, count × (f64 x, f64 y), all little-endian.
// A torn write (crash mid-append) leaves a short or checksum-failing
// record at the very end of the last file; Open truncates it away and the
// log continues from the last good record. Corruption anywhere else is a
// hard error — that data was acknowledged and cannot be silently dropped.
//
// Durability is governed by the sync policy: SyncAlways fsyncs before an
// append commits (no acknowledged write is ever lost, even to a power
// failure), SyncEvery fsyncs on a background interval (a crash loses at
// most one interval of acknowledged writes), SyncNever leaves flushing to
// the OS (a process crash loses nothing — records are written straight to
// the file, unbuffered — but a machine crash can lose whatever the kernel
// had not written back).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy string

const (
	// SyncAlways fsyncs before every append is acknowledged.
	SyncAlways SyncPolicy = "always"
	// SyncEvery fsyncs on a background interval (Options.Interval).
	SyncEvery SyncPolicy = "interval"
	// SyncNever never fsyncs explicitly (rotation and Close still do).
	SyncNever SyncPolicy = "never"
)

// ParsePolicy converts a flag string into a SyncPolicy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncEvery, SyncNever:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("wal: unknown sync policy %q (want always, interval, or never)", s)
}

// Options configures a Log.
type Options struct {
	// Dir holds the log's segment files; created if absent.
	Dir string
	// Policy is the sync policy (default SyncEvery).
	Policy SyncPolicy
	// Interval is the background fsync period under SyncEvery
	// (default 100ms).
	Interval time.Duration
	// SegmentBytes caps one log file's size before rotation
	// (default 16 MiB). Smaller segments reclaim space sooner after
	// compaction; each rotation costs one fsync and one file creation.
	SegmentBytes int64
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, errors.New("wal: Dir must be set")
	}
	if o.Policy == "" {
		o.Policy = SyncEvery
	}
	if _, err := ParsePolicy(string(o.Policy)); err != nil {
		return o, err
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	return o, nil
}

// Record is one logged ingest batch: the points of one tick. IDs and
// Points are parallel slices, exactly as handed to Repository.Ingest.
type Record struct {
	Tick   int
	IDs    []traj.ID
	Points []geo.Point
}

// Stats is a point-in-time snapshot of the log (the /v1/stats wal
// section).
type Stats struct {
	Segments        int   `json:"segments"`
	Bytes           int64 `json:"bytes"`
	Syncs           int64 `json:"syncs"`
	Appends         int64 `json:"appended_records"`
	ReplayedRecords int64 `json:"replayed_records"`
	ReplayedPoints  int64 `json:"replayed_points"`
	Reclaimed       int64 `json:"reclaimed_segments"`
	// Failed carries the latched disk-failure error, if any: once set the
	// log is fail-stopped and rejects every further append and commit.
	Failed string `json:"failed,omitempty"`
}

// segment is one log file's in-memory metadata. maxTick drives
// reclamation: once every record's tick is at or below the repository's
// sealed watermark, the file's contents are fully covered by sealed
// segments and the file can go.
type segment struct {
	seq     uint64
	path    string
	bytes   int64
	records int64
	maxTick int
}

// Log is the write-ahead log. Append/Commit/TruncateThrough/Stats are
// safe for concurrent use.
type Log struct {
	opts Options

	mu     sync.Mutex // guards file ops, rotation, and the segment list
	f      *os.File   // active segment, open for append
	segs   []*segment // ascending seq; last is the active one
	closed bool
	failed error // first fsync/write failure; latched, poisons the log

	written int64 // LSN: total bytes appended over the log's lifetime
	synced  int64 // highest LSN known durable

	// syncMu serializes fsyncs; it is held across the Sync call itself so
	// mu (which Append needs, inside the serving layer's hot-tail lock)
	// never is. Lock order: syncMu before mu, never the reverse.
	syncMu sync.Mutex

	syncs        atomic.Int64
	appends      atomic.Int64
	reclaimed    atomic.Int64
	replayedRecs atomic.Int64
	replayedPts  atomic.Int64

	stopSync chan struct{} // closes the SyncEvery ticker goroutine
	syncWG   sync.WaitGroup

	scratch []byte // append encode buffer, reused under mu
}

const (
	recHeaderLen  = 8 // u32 length + u32 crc
	segPrefix     = "wal-"
	segSuffix     = ".log"
	maxRecordSize = 64 << 20 // sanity bound when reading lengths back
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segName is the canonical file name of segment seq.
func segName(seq uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

// parseSegName extracts the sequence number from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open scans dir for log segments, replays every intact record through
// replay in append order, truncates a torn tail left by a crash, and
// returns the log positioned for appending. A replay error aborts the
// open — the caller's state would otherwise silently diverge from the
// acknowledged history.
func Open(opts Options, replay func(Record) error) (*Log, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{opts: opts, stopSync: make(chan struct{})}

	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegName(e.Name()); ok {
			l.segs = append(l.segs, &segment{seq: seq, path: filepath.Join(opts.Dir, e.Name()), maxTick: math.MinInt})
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].seq < l.segs[j].seq })

	for i, s := range l.segs {
		last := i == len(l.segs)-1
		if err := l.replaySegment(s, last, replay); err != nil {
			return nil, err
		}
		l.written += s.bytes
	}
	l.synced = l.written // everything read back from disk is durable

	// Open (or create) the active segment for append.
	var active *segment
	if n := len(l.segs); n > 0 {
		active = l.segs[n-1]
	} else {
		active = &segment{seq: 1, path: filepath.Join(opts.Dir, segName(1)), maxTick: math.MinInt}
		l.segs = append(l.segs, active)
	}
	f, err := os.OpenFile(active.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	if len(l.segs) == 1 && active.bytes == 0 {
		// First-ever segment: make its directory entry durable too, so a
		// crash right after Open cannot resurrect an empty directory.
		if err := SyncDir(opts.Dir); err != nil {
			f.Close()
			return nil, err
		}
	}

	if l.opts.Policy == SyncEvery {
		l.syncWG.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// replaySegment streams one file's records through replay. Only the last
// segment may end in a torn record (rotation fsyncs a file before moving
// on), which is truncated away; corruption anywhere else is fatal.
func (l *Log) replaySegment(s *segment, last bool, replay func(Record) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	var (
		hdr    [recHeaderLen]byte
		buf    []byte
		offset int64
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				break // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) && last {
				return l.truncateTorn(s, offset, "short record header")
			}
			return fmt.Errorf("wal: %s: reading record header at offset %d: %w", s.path, offset, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordSize {
			if last {
				return l.truncateTorn(s, offset, "implausible record length")
			}
			return fmt.Errorf("wal: %s: implausible record length %d at offset %d", s.path, length, offset)
		}
		if int(length) > cap(buf) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(f, buf); err != nil {
			if last && (err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF)) {
				return l.truncateTorn(s, offset, "short record payload")
			}
			return fmt.Errorf("wal: %s: reading record payload at offset %d: %w", s.path, offset, err)
		}
		if crc32.Checksum(buf, castagnoli) != sum {
			if last {
				return l.truncateTorn(s, offset, "checksum mismatch")
			}
			return fmt.Errorf("wal: %s: checksum mismatch at offset %d", s.path, offset)
		}
		rec, err := decodeRecord(buf)
		if err != nil {
			if last {
				return l.truncateTorn(s, offset, err.Error())
			}
			return fmt.Errorf("wal: %s: offset %d: %w", s.path, offset, err)
		}
		if err := replay(rec); err != nil {
			return fmt.Errorf("wal: replaying %s record at offset %d (tick %d): %w", s.path, offset, rec.Tick, err)
		}
		offset += recHeaderLen + int64(length)
		s.records++
		if rec.Tick > s.maxTick {
			s.maxTick = rec.Tick
		}
		l.replayedRecs.Add(1)
		l.replayedPts.Add(int64(len(rec.IDs)))
	}
	s.bytes = offset
	return nil
}

// truncateTorn cuts the (last) segment back to the end of its final good
// record: the bytes beyond it are a half-written append from the crash —
// never acknowledged, so dropping them is correct, and keeping them would
// poison every future read of the file.
func (l *Log) truncateTorn(s *segment, offset int64, why string) error {
	if err := os.Truncate(s.path, offset); err != nil {
		return fmt.Errorf("wal: truncating torn tail of %s (%s): %w", s.path, why, err)
	}
	s.bytes = offset
	return nil
}

// decodeRecord parses one checksum-verified payload.
func decodeRecord(buf []byte) (Record, error) {
	if len(buf) < 12 {
		return Record{}, fmt.Errorf("wal: record payload of %d bytes is too short", len(buf))
	}
	tick := int(int64(binary.LittleEndian.Uint64(buf[0:8])))
	n := int(binary.LittleEndian.Uint32(buf[8:12]))
	want := 12 + n*4 + n*16
	if n < 0 || len(buf) != want {
		return Record{}, fmt.Errorf("wal: record payload of %d bytes does not match %d points", len(buf), n)
	}
	rec := Record{Tick: tick, IDs: make([]traj.ID, n), Points: make([]geo.Point, n)}
	off := 12
	for i := 0; i < n; i++ {
		rec.IDs[i] = traj.ID(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	for i := 0; i < n; i++ {
		rec.Points[i].X = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		rec.Points[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
		off += 16
	}
	return rec, nil
}

// encodeRecord encodes rec into l.scratch (header included).
func (l *Log) encodeRecord(rec Record) []byte {
	n := len(rec.IDs)
	payload := 12 + n*4 + n*16
	total := recHeaderLen + payload
	if cap(l.scratch) < total {
		l.scratch = make([]byte, total)
	}
	b := l.scratch[:total]
	binary.LittleEndian.PutUint32(b[0:4], uint32(payload))
	binary.LittleEndian.PutUint64(b[8:16], uint64(int64(rec.Tick)))
	binary.LittleEndian.PutUint32(b[16:20], uint32(n))
	off := 20
	for _, id := range rec.IDs {
		binary.LittleEndian.PutUint32(b[off:], uint32(id))
		off += 4
	}
	for _, p := range rec.Points {
		binary.LittleEndian.PutUint64(b[off:], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(b[off+8:], math.Float64bits(p.Y))
		off += 16
	}
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(b[recHeaderLen:], castagnoli))
	return b
}

// Append writes one record to the active segment (rotating first when it
// is full) and returns the record's LSN. The write lands in the OS
// immediately — Append never buffers in user space, so a process crash
// cannot lose it — but it is only durable against machine crashes once
// Commit(lsn) returns (SyncAlways) or the next background/rotation sync
// covers it. Callers that serialize Appends (the repository appends under
// its hot-tail lock) get log order identical to application order, which
// is what makes replay reproduce the exact pre-crash state.
func (l *Log) Append(rec Record) (lsn int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: append on closed log")
	}
	if l.failed != nil {
		return 0, l.failed
	}
	if payload := 12 + len(rec.IDs)*20; payload > maxRecordSize {
		// Replay rejects payloads above the bound, so writing one would
		// acknowledge a batch that recovery then discards as a torn tail.
		return 0, fmt.Errorf("wal: record of %d points (%d bytes) exceeds the %d-byte record cap",
			len(rec.IDs), payload, maxRecordSize)
	}
	active := l.segs[len(l.segs)-1]
	if active.bytes >= l.opts.SegmentBytes && active.records > 0 {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
		active = l.segs[len(l.segs)-1]
	}
	b := l.encodeRecord(rec)
	if _, err := l.f.Write(b); err != nil {
		// A short write leaves a torn record in the file; nothing after
		// it could be replayed, so the log must fail-stop.
		return 0, l.fail(fmt.Errorf("wal: append: %w", err))
	}
	active.bytes += int64(len(b))
	active.records++
	if rec.Tick > active.maxTick {
		active.maxTick = rec.Tick
	}
	l.written += int64(len(b))
	l.appends.Add(1)
	return l.written, nil
}

// Commit makes the record at lsn durable under the log's policy: under
// SyncAlways it fsyncs (batching with any concurrent commits that the
// same sync happens to cover); under SyncEvery/SyncNever it only
// reports a latched disk failure — the caller accepted the policy's
// loss window, but not a log that is known to be losing writes.
func (l *Log) Commit(lsn int64) error {
	if l.opts.Policy != SyncAlways {
		l.mu.Lock()
		err := l.failed
		l.mu.Unlock()
		return err
	}
	return l.syncTo(lsn)
}

// fail latches the first disk failure. Once an fsync or write has
// failed, the durable prefix of the log is unknowable — the kernel may
// have dropped the dirty pages and cleared the error state, so a later
// "successful" fsync proves nothing about earlier bytes. The only safe
// behavior is fail-stop: every subsequent Append/Commit/Sync returns the
// latched error instead of acknowledging writes that may never land.
// Called with mu held.
func (l *Log) fail(err error) error {
	if l.failed == nil {
		l.failed = err
	}
	return err
}

// Sync forces an fsync of everything appended so far, regardless of
// policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	lsn := l.written
	l.mu.Unlock()
	return l.syncTo(lsn)
}

// syncTo fsyncs until the durable watermark covers lsn. Rotation fsyncs
// a file before switching, so the active file always holds every byte
// past the watermark.
//
// The fsync itself runs with mu RELEASED: Append runs under the serving
// layer's hot-tail write lock, so holding mu through a multi-millisecond
// fsync would stall every hot-tail query behind the disk. Only syncMu is
// held across the fsync, which both serializes the syncers and gives
// group commit its batching point — a committer that waited here
// re-checks the watermark and usually finds its LSN already covered.
func (l *Log) syncTo(lsn int64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.failed != nil {
		l.mu.Unlock()
		return l.failed
	}
	if l.synced >= lsn || l.closed {
		l.mu.Unlock()
		return nil
	}
	cur := l.written
	f := l.f
	l.mu.Unlock()

	err := f.Sync()

	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		// A rotation or Close may have synced past our LSN and closed the
		// file under us (os.File makes the race safe, the Sync just loses);
		// that is success, not a disk failure.
		if l.synced >= lsn {
			return nil
		}
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	l.syncs.Add(1)
	if cur > l.synced {
		l.synced = cur
	}
	return nil
}

// rotateLocked seals the active segment (fsync + close) and starts the
// next one. Called with mu held.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: rotate fsync: %w", err))
	}
	l.syncs.Add(1)
	if l.synced < l.written {
		l.synced = l.written
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	next := &segment{
		seq:     l.segs[len(l.segs)-1].seq + 1,
		maxTick: math.MinInt,
	}
	next.path = filepath.Join(l.opts.Dir, segName(next.seq))
	f, err := os.OpenFile(next.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate create: %w", err)
	}
	l.f = f
	l.segs = append(l.segs, next)
	// The new file's directory entry must be durable before records in it
	// are acknowledged; one directory sync at rotation covers them all. A
	// failure must latch: the swap to the new file already happened, so
	// without the latch later appends would be acknowledged into a file a
	// machine crash can unlink entirely.
	if err := SyncDir(l.opts.Dir); err != nil {
		return l.fail(err)
	}
	return nil
}

// TruncateThrough reclaims segments made redundant by compaction: every
// file whose records all have tick ≤ sealedTick is deleted (those points
// are now served by published sealed segments, and replay skips them
// anyway). An active segment that qualifies and holds records is rotated
// first so its file can go too — this is what keeps the log's disk
// footprint proportional to the hot tail instead of the full history.
func (l *Log) TruncateThrough(sealedTick int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	active := l.segs[len(l.segs)-1]
	if active.records > 0 && active.maxTick <= sealedTick {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	kept := l.segs[:0]
	removed := false
	for i, s := range l.segs {
		last := i == len(l.segs)-1
		if !last && s.records > 0 && s.maxTick <= sealedTick {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: reclaiming %s: %w", s.path, err)
			}
			l.reclaimed.Add(1)
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	if removed {
		return SyncDir(l.opts.Dir)
	}
	return nil
}

// syncLoop is the SyncEvery background fsync.
func (l *Log) syncLoop() {
	defer l.syncWG.Done()
	ticker := time.NewTicker(l.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-ticker.C:
			// An error here latches via fail(), so it is not lost: every
			// subsequent Commit (any policy) and Append returns it.
			l.Sync() //nolint:errcheck // latched; surfaced by the next Commit/Append
		}
	}
}

// Close fsyncs and closes the active segment and stops the background
// sync. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	close(l.stopSync)
	l.syncWG.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	err := l.f.Sync()
	if err == nil {
		l.syncs.Add(1)
		l.synced = l.written
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.Lock()
	st := Stats{Segments: len(l.segs)}
	for _, s := range l.segs {
		st.Bytes += s.bytes
	}
	if l.failed != nil {
		st.Failed = l.failed.Error()
	}
	l.mu.Unlock()
	st.Syncs = l.syncs.Load()
	st.Appends = l.appends.Load()
	st.ReplayedRecords = l.replayedRecs.Load()
	st.ReplayedPoints = l.replayedPts.Load()
	st.Reclaimed = l.reclaimed.Load()
	return st
}

// SyncDir fsyncs a directory, making renames, creations, and removals in
// it durable. Exported because the serving layer needs the same barrier
// around its manifest and segment rename-swaps.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: fsync dir %s: %w", dir, err)
	}
	return nil
}
