// Package query implements spatio-temporal query processing over the
// quantized summary (§5.2): STRQ (Definition 5.2) and TPQ
// (Definition 5.3), the CQC-driven local-search strategy that makes
// recall 1, and the exact mode that verifies candidates against raw
// trajectories to drive precision to 1 (the "ratio of trajectories
// visited" measure of Table 4).
package query

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/store"
	"ppqtraj/internal/traj"
)

// ErrNoRaw is returned by exact-mode queries on an engine that has no raw
// dataset attached: exact verification is impossible, so the caller must
// either fall back to approximate mode or attach raw storage.
var ErrNoRaw = errors.New("query: exact STRQ requires raw dataset access")

// Source is the summary-side contract the engine queries against. It is
// satisfied by core.Summary (PPQ/E-PQ/Q-trajectory) and by
// baseline.FlatSummary (Product/Residual Quantization, TrajStore), so the
// paper's "we extended these methods with our indexing approach" fairness
// rule falls out naturally.
type Source interface {
	// ReconstructedPoint returns the reconstruction of trajectory id at
	// the given tick.
	ReconstructedPoint(id traj.ID, tick int) (geo.Point, bool)
	// ReconstructPath returns the reconstructions for ticks [from, from+l),
	// clipped to the trajectory's range.
	ReconstructPath(id traj.ID, from, l int) []geo.Point
	// SortedTicks lists every tick with data, ascending.
	SortedTicks() []int
	// TrajIDs lists all trajectory IDs, ascending.
	TrajIDs() []traj.ID
	// StreamColumns feeds every reconstructed column to fn in ascending
	// tick order, IDs ascending within a column, in O(points) — the
	// engine-construction fast path (probing ReconstructedPoint for every
	// (tick, id) pair would cost O(ticks × trajectories) even for absent
	// trajectories). The slices passed to fn are only valid during the
	// call; fn must copy anything it retains. A non-nil error from fn
	// aborts the stream and is returned.
	StreamColumns(fn func(tick int, ids []traj.ID, pts []geo.Point) error) error
	// MaxDeviation bounds ‖original − reconstruction‖ — the local-search
	// margin (Lemma 3's (√2/2)·g_s for CQC summaries, ε₁ otherwise).
	MaxDeviation() float64
}

// Engine answers queries from a summary plus its TPI. Raw is optional: it
// is only consulted in exact mode, and every consultation is counted —
// this is the second-step access cost the paper measures.
//
// Once built (and its fields no longer reassigned), an Engine is safe for
// concurrent readers: STRQ/TPQ/PathMAE only read the sealed index and the
// summary, and the access counter is atomic. Seal/Append on the underlying
// TPI must not run concurrently with queries.
type Engine struct {
	Sum Source
	Idx *index.TPI
	Raw *traj.Dataset

	// MarginCap, when > 0, bounds the local-search radius. Summaries with
	// unbounded deviation (e.g. fixed-budget baselines on wide-span data)
	// would otherwise force the probe to scan enormous cell ranges; with a
	// cap, such methods trade recall for feasibility — exactly the regime
	// the paper marks "×" in Table 2.
	MarginCap float64

	// RawAccesses counts trajectories fetched from raw storage for exact
	// verification (cumulative across queries, atomic).
	RawAccesses atomic.Int64

	// scratch pools the per-probe search buffers (candidate and kept ID
	// slices) and the range scan's column/pair buffers: a query-serving
	// loop fires thousands of probes per second, and re-allocating the
	// same transient slices per call dominated the allocation profile.
	scratch sync.Pool
}

// searchScratch is one pooled set of probe buffers. The slices never
// escape a call: results handed to the caller are always freshly sized
// copies, so returning the scratch to the pool is unconditionally safe.
type searchScratch struct {
	cand []traj.ID
	kept []traj.ID
	rng  *rangeScratch // lazily created by STRQRange
}

// getScratch fetches (or creates) a scratch set.
func (e *Engine) getScratch() *searchScratch {
	if sc, ok := e.scratch.Get().(*searchScratch); ok {
		return sc
	}
	return &searchScratch{}
}

// BuildEngine indexes the summary's reconstructed points into a fresh TPI
// (the paper indexes T̂ or T̂′ interchangeably; we index the CQC-refined
// reconstructions when available) and returns an Engine. Columns stream
// straight from the summary into TPI.Append — O(points) end to end.
func BuildEngine(sum Source, opts index.Options, raw *traj.Dataset) (*Engine, error) {
	tpi := index.NewTPI(opts)
	err := sum.StreamColumns(func(tick int, ids []traj.ID, pts []geo.Point) error {
		tpi.Append(ids, pts, tick)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := tpi.Seal(); err != nil {
		return nil, err
	}
	return &Engine{Sum: sum, Idx: tpi, Raw: raw}, nil
}

// Margin returns the local-search radius — the summary's deviation bound,
// clipped to MarginCap when set.
func (e *Engine) Margin() float64 {
	m := e.Sum.MaxDeviation()
	if e.MarginCap > 0 && m > e.MarginCap {
		return e.MarginCap
	}
	return m
}

// STRQResult reports one STRQ evaluation.
type STRQResult struct {
	// IDs is the answer: in approximate mode the filtered candidate list,
	// in exact mode the verified list (precision 1).
	IDs []traj.ID
	// Candidates is the candidate-list size after local search, before
	// verification.
	Candidates int
	// Cell is the g_c cell the query point mapped to.
	Cell geo.Rect
	// Covered is false when the query point lies outside every indexed
	// region (the result is then empty).
	Covered bool
	// Visited counts raw trajectories accessed by this query (exact mode).
	Visited int
}

// distToRect is the Euclidean distance from p to the closed rectangle r
// (zero when p is inside). Alias of geo.Point.DistToRect, shared with
// the iterator executor's margin filter so the two paths cannot drift.
func distToRect(p geo.Point, r geo.Rect) float64 { return p.DistToRect(r) }

// STRQ answers "which trajectories were in the g_c cell of p at tick t".
// With exact=false it returns the local-search candidate list filtered by
// reconstructed positions (recall 1 by Lemma 3; precision < 1 possible).
// With exact=true each candidate's raw trajectory is consulted and the
// result has precision and recall 1; the accesses are counted in Visited.
// rt, when non-nil, charges page I/Os for the index probes (Table 9).
// Exact mode on an engine without raw access returns ErrNoRaw. ctx bounds
// the work: a cancelled or expired context aborts the search and returns
// ctx.Err() (use context.Background() when no bound is wanted).
func (e *Engine) STRQ(ctx context.Context, p geo.Point, tick int, exact bool, rt *store.ReadTracker) (*STRQResult, error) {
	cell, ok := e.Idx.CellRect(p, tick)
	if !ok {
		return &STRQResult{}, nil
	}
	return e.searchRect(ctx, cell, tick, exact, rt)
}

// STRQRect answers the rectangle-anchored STRQ variant: which trajectories
// were inside rect at tick t. Unlike STRQ, the query region is supplied by
// the caller instead of being derived from the engine's own region/cell
// layout, so two engines built over different shardings of the same data
// agree on the exact-mode answer — the contract the serving layer's
// segment fan-out relies on. Covered is false when the tick falls outside
// every indexed period. ctx bounds the work as in STRQ.
func (e *Engine) STRQRect(ctx context.Context, rect geo.Rect, tick int, exact bool, rt *store.ReadTracker) (*STRQResult, error) {
	if e.Idx.PeriodOf(tick) == nil {
		return &STRQResult{}, nil
	}
	return e.searchRect(ctx, rect, tick, exact, rt)
}

// ctxCheckEvery is how many exact-mode raw verifications run between
// context checks: frequent enough that a cancelled query stops within
// microseconds, rare enough that the check never shows in a profile.
const ctxCheckEvery = 64

// searchRect is the shared local-search + filter + (optional) verification
// pipeline of STRQ and STRQRect over an explicit query rectangle.
func (e *Engine) searchRect(ctx context.Context, cell geo.Rect, tick int, exact bool, rt *store.ReadTracker) (*STRQResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &STRQResult{Covered: true, Cell: cell}
	m := e.Margin()
	// Local search (§5.2): scan every cell within the Lemma 3 margin of
	// the query cell, so a true-resident whose reconstruction drifted into
	// a neighboring cell is still found. The candidate and kept buffers
	// come from the engine's scratch pool; the result handed back to the
	// caller is a right-sized copy, so the scratch is safe to reuse on the
	// next probe.
	area := cell.Expand(m)
	sc := e.getScratch()
	defer e.scratch.Put(sc)
	cand := e.Idx.AppendLookupArea(sc.cand[:0], area, tick, rt)
	sc.cand = cand
	kept := sc.kept[:0]
	for i, id := range cand {
		// The candidate list can span a whole region's population on wide
		// rects; without a periodic check a blown deadline could not
		// interrupt an approximate-mode scan at all.
		if i%ctxCheckEvery == ctxCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				sc.kept = kept
				return nil, err
			}
		}
		rp, ok := e.Sum.ReconstructedPoint(id, tick)
		if !ok {
			continue
		}
		if distToRect(rp, cell) <= m+1e-12 {
			kept = append(kept, id)
		}
	}
	sc.kept = kept
	res.Candidates = len(kept)
	if !exact {
		res.IDs = append(make([]traj.ID, 0, len(kept)), kept...)
		return res, nil
	}
	if e.Raw == nil {
		return nil, ErrNoRaw
	}
	for i, id := range kept {
		if i%ctxCheckEvery == ctxCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res.Visited++
		e.RawAccesses.Add(1)
		tr, ok := e.Raw.Lookup(id)
		if !ok {
			// The raw store does not cover this trajectory (e.g. it was
			// ingested after the store was attached) — a configuration
			// gap, not a crash: surface it as the ErrNoRaw class.
			return nil, fmt.Errorf("query: trajectory %d absent from raw dataset: %w", id, ErrNoRaw)
		}
		if tp, ok := tr.At(tick); ok && cell.Contains(tp) {
			res.IDs = append(res.IDs, id)
		}
	}
	return res, nil
}

// TPQResult is one trajectory-path-query answer: the reconstructed
// sub-trajectories over [t, t+l) for every STRQ match.
type TPQResult struct {
	STRQ  *STRQResult
	Paths map[traj.ID][]geo.Point
}

// TPQ answers Definition 5.3: run STRQ at (p, tick), then reproduce the
// next l positions of every matched trajectory directly from the indexed
// summary — no raw access, no full reconstruction. ctx bounds the work as
// in STRQ; a context error can surface after the range step, mid-way
// through path reproduction.
func (e *Engine) TPQ(ctx context.Context, p geo.Point, tick, l int, exact bool, rt *store.ReadTracker) (*TPQResult, error) {
	s, err := e.STRQ(ctx, p, tick, exact, rt)
	if err != nil {
		return nil, err
	}
	out := &TPQResult{STRQ: s, Paths: make(map[traj.ID][]geo.Point, len(s.IDs))}
	for i, id := range s.IDs {
		if i%ctxCheckEvery == ctxCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		out.Paths[id] = e.Sum.ReconstructPath(id, tick, l)
	}
	return out, nil
}

// PathMAE returns the mean absolute deviation between a trajectory's
// reconstructed path over [tick, tick+l) and its raw points — the Table 3
// measure. ok is false when the trajectory has no points in the range.
func (e *Engine) PathMAE(id traj.ID, tick, l int) (float64, bool) {
	if e.Raw == nil {
		return 0, false
	}
	rec := e.Sum.ReconstructPath(id, tick, l)
	if len(rec) == 0 {
		return 0, false
	}
	tr, ok := e.Raw.Lookup(id)
	if !ok {
		return 0, false
	}
	lo := tick
	if lo < tr.Start {
		lo = tr.Start
	}
	var sum float64
	n := 0
	for i, rp := range rec {
		if op, ok := tr.At(lo + i); ok {
			sum += rp.Dist(op)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// GroundTruth returns the trajectories whose *raw* position at tick lies
// in the given cell — the oracle for precision/recall measurement.
func GroundTruth(d *traj.Dataset, cell geo.Rect, tick int) []traj.ID {
	var out []traj.ID
	for _, tr := range d.All() {
		if p, ok := tr.At(tick); ok && cell.Contains(p) {
			out = append(out, tr.ID)
		}
	}
	return out
}

// PrecisionRecall compares got against want (both ID sets).
func PrecisionRecall(got, want []traj.ID) (precision, recall float64) {
	if len(got) == 0 && len(want) == 0 {
		return 1, 1
	}
	wantSet := make(map[traj.ID]bool, len(want))
	for _, id := range want {
		wantSet[id] = true
	}
	hit := 0
	for _, id := range got {
		if wantSet[id] {
			hit++
		}
	}
	if len(got) > 0 {
		precision = float64(hit) / float64(len(got))
	} else {
		precision = 1
	}
	if len(want) > 0 {
		recall = float64(hit) / float64(len(want))
	} else {
		recall = 1
	}
	return precision, recall
}
