package query

import (
	"cmp"
	"context"
	"fmt"
	"slices"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/traj"
)

// This file implements the engine's multi-tick range scan: STRQRange
// answers a whole tick span against one query rectangle in a single index
// walk. A window served by per-tick STRQRect pays the candidate-cell
// resolution, the posting decode (or cache round trip), and a
// reconstruction-distance check per candidate at every tick; STRQRange
// resolves cells once via index.ScanRange, decodes each tick chunk once,
// classifies each candidate cell against the local-search margin once for
// the whole span, and batches exact verification per trajectory. The
// answers are point-for-point identical to per-tick STRQRect — the
// equivalence suite asserts it.

// RangeColumn is one tick's answer inside a range scan. Only ticks with
// at least one matching trajectory appear; IDs are ascending.
type RangeColumn struct {
	Tick int
	IDs  []traj.ID
}

// RangeResult reports one STRQRange evaluation.
type RangeResult struct {
	// Cols holds the non-empty per-tick answers, ascending by tick.
	Cols []RangeColumn
	// CoveredTicks counts the ticks of the span that fall inside an
	// indexed period — what a per-tick loop would have seen Covered.
	CoveredTicks int
	// Candidates is the total candidate count across ticks after the
	// margin filter, before exact verification.
	Candidates int
	// Visited counts raw trajectories fetched for exact verification.
	// The fetch is batched per trajectory across the whole span, so this
	// is a distinct-trajectory count — lower than the per-tick path's
	// per-(tick, candidate) figure for the same answer.
	Visited int
	// Scan carries the index-level zone-map counters: cells walked and
	// cells pruned (tick-range miss or margin full-reject).
	Scan index.ScanStats
}

// cellClass is the once-per-cell margin classification of the range scan.
type cellClass uint8

const (
	// cellCheck: the cell straddles the margin boundary; every resident
	// needs the per-trajectory reconstruction-distance check.
	cellCheck cellClass = iota
	// cellAll: the cell lies entirely within the margin of the query
	// rect, so every resident passes the filter without a reconstruction
	// lookup (the reconstruction is, by construction, inside the cell).
	cellAll
)

// idTick is one (trajectory, tick) verification unit of the exact batch.
type idTick struct {
	id   traj.ID
	tick int32
}

// rangeScratch pools the span-sized buffers of one STRQRange call.
type rangeScratch struct {
	sure  [][]traj.ID // per-tick IDs from full-accept cells
	maybe [][]traj.ID // per-tick IDs from boundary cells (need the check)
	pairs []idTick    // exact-verification batch
	ids   []traj.ID   // flat backing for merged per-tick candidate lists
}

// STRQRange answers the rectangle STRQ for every tick of [from, to] in
// one index walk: which trajectories were inside rect at each tick. The
// per-tick answers (and error behavior) are identical to calling STRQRect
// for every tick; only the Visited accounting differs (raw trajectories
// are fetched once per trajectory for the whole span, not once per tick).
// With exact=true every candidate is verified against raw storage
// (ErrNoRaw without it); ctx bounds the work as in STRQ.
func (e *Engine) STRQRange(ctx context.Context, rect geo.Rect, from, to int, exact bool) (*RangeResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &RangeResult{CoveredTicks: e.Idx.CoveredTicks(from, to)}
	if res.CoveredTicks == 0 || to < from {
		return res, nil
	}
	if exact && e.Raw == nil {
		return nil, ErrNoRaw
	}
	m := e.Margin()
	area := rect.Expand(m)
	span := to - from + 1

	rs := e.getScratch()
	defer e.scratch.Put(rs)
	sc := rs.rangeScratch(span)

	// Single walk: every candidate cell is classified against the margin
	// once (full-reject cells are skipped before any decode, full-accept
	// cells bypass the per-trajectory reconstruction check for the whole
	// span) and its postings stream into per-tick buckets.
	var (
		class   cellClass
		ctxTick int
		ctxErr  error
	)
	visit := func(cell geo.Rect) bool {
		if ctxErr != nil {
			return false
		}
		if cell.MinDist(rect) > m+1e-12 {
			// No reconstruction inside this cell can pass the margin
			// filter: LookupArea's expanded area over-approximates the
			// Euclidean margin at the corners.
			return false
		}
		if cell.MaxDist(rect) <= m {
			class = cellAll
		} else {
			class = cellCheck
		}
		return true
	}
	emit := func(tick int, ids []traj.ID) bool {
		if ctxTick++; ctxTick%ctxCheckEvery == 0 {
			if ctxErr = ctx.Err(); ctxErr != nil {
				return false
			}
		}
		i := tick - from
		if class == cellAll {
			sc.sure[i] = append(sc.sure[i], ids...)
		} else {
			sc.maybe[i] = append(sc.maybe[i], ids...)
		}
		return true
	}
	e.Idx.ScanRange(area, from, to, &res.Scan, visit, emit)
	if ctxErr != nil {
		return nil, ctxErr
	}

	// Per-tick filter: boundary-cell candidates take the same
	// reconstruction-distance check as the per-tick path; full-accept
	// candidates join unchecked. A trajectory occupies exactly one cell
	// per tick, so the union needs only a sort, no dedup pass — but keep
	// the dedup for defense in depth (it is O(kept) on sorted input).
	checked := 0
	for i := 0; i < span; i++ {
		if len(sc.sure[i]) == 0 && len(sc.maybe[i]) == 0 {
			continue
		}
		tick := from + i
		st := len(sc.ids)
		sc.ids = append(sc.ids, sc.sure[i]...)
		for _, id := range sc.maybe[i] {
			if checked++; checked%ctxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			rp, ok := e.Sum.ReconstructedPoint(id, tick)
			if !ok {
				continue
			}
			if distToRect(rp, rect) <= m+1e-12 {
				sc.ids = append(sc.ids, id)
			}
		}
		kept := sc.ids[st:]
		slices.Sort(kept)
		kept = traj.DedupSorted(kept)
		sc.ids = sc.ids[:st+len(kept)]
		if len(kept) == 0 {
			continue
		}
		res.Candidates += len(kept)
		if exact {
			for _, id := range kept {
				sc.pairs = append(sc.pairs, idTick{id: id, tick: int32(tick)})
			}
			continue
		}
		res.Cols = append(res.Cols, RangeColumn{Tick: tick, IDs: append(make([]traj.ID, 0, len(kept)), kept...)})
	}
	if !exact {
		return res, nil
	}

	// Exact verification, batched per trajectory: one raw fetch covers
	// every tick the trajectory is a candidate at. Grouping by (id, tick)
	// and scattering back id-major keeps each output column ascending.
	slices.SortFunc(sc.pairs, func(a, b idTick) int {
		if a.id != b.id {
			return cmp.Compare(a.id, b.id)
		}
		return cmp.Compare(a.tick, b.tick)
	})
	cols := make([][]traj.ID, span)
	for i := 0; i < len(sc.pairs); {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		id := sc.pairs[i].id
		res.Visited++
		e.RawAccesses.Add(1)
		tr, ok := e.Raw.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("query: trajectory %d absent from raw dataset: %w", id, ErrNoRaw)
		}
		for ; i < len(sc.pairs) && sc.pairs[i].id == id; i++ {
			t := int(sc.pairs[i].tick)
			if tp, ok := tr.At(t); ok && rect.Contains(tp) {
				cols[t-from] = append(cols[t-from], id)
			}
		}
	}
	for i, ids := range cols {
		if len(ids) > 0 {
			res.Cols = append(res.Cols, RangeColumn{Tick: from + i, IDs: ids})
		}
	}
	return res, nil
}

// rangeScratch reinterprets the pooled search scratch for a range call,
// sizing the per-tick buckets to span. The bucket arrays are kept on the
// searchScratch so the pool serves both probe shapes.
func (s *searchScratch) rangeScratch(span int) *rangeScratch {
	if s.rng == nil {
		s.rng = &rangeScratch{}
	}
	rs := s.rng
	if cap(rs.sure) < span {
		rs.sure = make([][]traj.ID, span)
		rs.maybe = make([][]traj.ID, span)
	}
	rs.sure = rs.sure[:span]
	rs.maybe = rs.maybe[:span]
	for i := 0; i < span; i++ {
		rs.sure[i] = rs.sure[i][:0]
		rs.maybe[i] = rs.maybe[i][:0]
	}
	rs.pairs = rs.pairs[:0]
	rs.ids = rs.ids[:0]
	return rs
}
