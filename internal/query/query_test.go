package query

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"ppqtraj/internal/core"
	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/store"
	"ppqtraj/internal/traj"
)

// testEngine builds a small end-to-end engine over synthetic Porto data.
func testEngine(t testing.TB, useCQC bool) (*Engine, *traj.Dataset) {
	t.Helper()
	d := gen.Porto(gen.Config{NumTrajectories: 40, MinLen: 40, MaxLen: 70, Seed: 5})
	opts := core.DefaultOptions(partition.Spatial, 0.1)
	opts.UseCQC = useCQC
	sum := core.Build(d, opts)
	eng, err := BuildEngine(sum, index.Options{
		EpsS: 0.1,
		GC:   geo.MetersToDegrees(100),
		EpsC: 0.5,
		EpsD: 0.5,
		Seed: 6,
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestSTRQRecallIsOne(t *testing.T) {
	// The local-search guarantee (§5.2): every trajectory truly in the
	// query cell appears in the candidate list.
	eng, d := testEngine(t, true)
	rng := rand.New(rand.NewSource(1))
	queries := 0
	for queries < 300 {
		tr := d.Get(traj.ID(rng.Intn(d.Len())))
		tick := tr.Start + rng.Intn(tr.Len())
		qp, _ := tr.At(tick)
		res, _ := eng.STRQ(context.Background(), qp, tick, false, nil)
		if !res.Covered {
			continue
		}
		queries++
		want := GroundTruth(d, res.Cell, tick)
		_, recall := PrecisionRecall(res.IDs, want)
		if recall < 1 {
			t.Fatalf("recall %v < 1 at tick %d cell %v", recall, tick, res.Cell)
		}
	}
}

func TestSTRQExactPrecisionAndRecallOne(t *testing.T) {
	eng, d := testEngine(t, true)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 200; q++ {
		tr := d.Get(traj.ID(rng.Intn(d.Len())))
		tick := tr.Start + rng.Intn(tr.Len())
		qp, _ := tr.At(tick)
		res, _ := eng.STRQ(context.Background(), qp, tick, true, nil)
		if !res.Covered {
			continue
		}
		want := GroundTruth(d, res.Cell, tick)
		p, r := PrecisionRecall(res.IDs, want)
		if p != 1 || r != 1 {
			t.Fatalf("exact mode: precision %v recall %v", p, r)
		}
		if res.Visited != res.Candidates {
			t.Fatalf("exact mode should visit every candidate: %d vs %d",
				res.Visited, res.Candidates)
		}
	}
	if eng.RawAccesses.Load() == 0 {
		t.Fatal("exact queries must access raw data")
	}
}

func TestSTRQCandidateListSmall(t *testing.T) {
	// The point of the index: candidates ≪ active trajectories.
	eng, d := testEngine(t, true)
	rng := rand.New(rand.NewSource(3))
	var cands, active int
	for q := 0; q < 100; q++ {
		tr := d.Get(traj.ID(rng.Intn(d.Len())))
		tick := tr.Start + rng.Intn(tr.Len())
		qp, _ := tr.At(tick)
		res, _ := eng.STRQ(context.Background(), qp, tick, false, nil)
		if !res.Covered {
			continue
		}
		cands += res.Candidates
		active += len(d.SortedIDs(tick))
	}
	if active == 0 {
		t.Fatal("no queries landed")
	}
	ratio := float64(cands) / float64(active)
	if ratio > 0.5 {
		t.Fatalf("candidate ratio %v too large — index not pruning", ratio)
	}
}

func TestSTRQUncoveredPoint(t *testing.T) {
	eng, _ := testEngine(t, true)
	res, _ := eng.STRQ(context.Background(), geo.Pt(0, 0), 10, false, nil) // far outside Porto
	if res.Covered || len(res.IDs) != 0 {
		t.Fatalf("uncovered query should be empty: %+v", res)
	}
}

func TestSTRQExactWithoutRawReturnsError(t *testing.T) {
	eng, d := testEngine(t, true)
	eng.Raw = nil
	tr := d.Get(0)
	qp, _ := tr.At(tr.Start)
	if _, err := eng.STRQ(context.Background(), qp, tr.Start, true, nil); !errors.Is(err, ErrNoRaw) {
		t.Fatalf("want ErrNoRaw, got %v", err)
	}
	if _, err := eng.TPQ(context.Background(), qp, tr.Start, 5, true, nil); !errors.Is(err, ErrNoRaw) {
		t.Fatalf("TPQ: want ErrNoRaw, got %v", err)
	}
}

func TestMarginSelection(t *testing.T) {
	withCQC, _ := testEngine(t, true)
	noCQC, _ := testEngine(t, false)
	// CQC margin is the Lemma 3 bound, far tighter than ε₁.
	if withCQC.Margin() >= noCQC.Margin() {
		t.Fatalf("CQC margin %v should be tighter than ε₁ margin %v",
			withCQC.Margin(), noCQC.Margin())
	}
	if noCQC.Margin() != 0.001 {
		t.Fatalf("non-CQC margin should be ε₁, got %v", noCQC.Margin())
	}
}

func TestTPQPathsBoundedDeviation(t *testing.T) {
	eng, d := testEngine(t, true)
	rng := rand.New(rand.NewSource(4))
	bound := eng.Sum.MaxDeviation() + 1e-12
	found := 0
	for q := 0; q < 100 && found < 30; q++ {
		tr := d.Get(traj.ID(rng.Intn(d.Len())))
		tick := tr.Start + rng.Intn(tr.Len()/2)
		qp, _ := tr.At(tick)
		res, _ := eng.TPQ(context.Background(), qp, tick, 10, false, nil)
		for id, path := range res.Paths {
			found++
			rtr := d.Get(id)
			lo := tick
			if lo < rtr.Start {
				lo = rtr.Start
			}
			for i, rp := range path {
				if op, ok := rtr.At(lo + i); ok {
					if rp.Dist(op) > bound {
						t.Fatalf("TPQ path deviation %v > bound", rp.Dist(op))
					}
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no TPQ paths returned")
	}
}

func TestPathMAEMonotoneInLength(t *testing.T) {
	// Longer TPQ paths accumulate at-least-equal error on average
	// (Table 3's rising rows). Weak monotonicity checked on aggregate.
	eng, d := testEngine(t, false) // no CQC: visible error growth
	rng := rand.New(rand.NewSource(5))
	maeAt := func(l int) float64 {
		var sum float64
		n := 0
		for q := 0; q < 200; q++ {
			id := traj.ID(rng.Intn(d.Len()))
			tr := d.Get(id)
			if tr.Len() < l+5 {
				continue
			}
			tick := tr.Start + rng.Intn(tr.Len()-l-1)
			if mae, ok := eng.PathMAE(id, tick, l); ok {
				sum += mae
				n++
			}
		}
		if n == 0 {
			t.Fatal("no paths sampled")
		}
		return sum / float64(n)
	}
	short, long := maeAt(5), maeAt(40)
	if long < short*0.5 {
		t.Fatalf("long-path MAE %v should not be far below short-path %v", long, short)
	}
}

func TestPathMAEUnknownRange(t *testing.T) {
	eng, d := testEngine(t, true)
	tr := d.Get(0)
	if _, ok := eng.PathMAE(0, tr.End()+100, 10); ok {
		t.Fatal("out-of-range path should report !ok")
	}
}

func TestPrecisionRecallEdgeCases(t *testing.T) {
	p, r := PrecisionRecall(nil, nil)
	if p != 1 || r != 1 {
		t.Fatalf("empty/empty should be 1/1, got %v/%v", p, r)
	}
	p, r = PrecisionRecall([]traj.ID{1}, nil)
	if p != 0 || r != 1 {
		t.Fatalf("spurious-only: %v/%v", p, r)
	}
	p, r = PrecisionRecall(nil, []traj.ID{1})
	if p != 1 || r != 0 {
		t.Fatalf("missed-only: %v/%v", p, r)
	}
	p, r = PrecisionRecall([]traj.ID{1, 2}, []traj.ID{2, 3})
	if p != 0.5 || r != 0.5 {
		t.Fatalf("half/half: %v/%v", p, r)
	}
}

func TestGroundTruth(t *testing.T) {
	d := traj.NewDataset([]*traj.Trajectory{
		{Start: 0, Points: []geo.Point{geo.Pt(0.5, 0.5)}},
		{Start: 0, Points: []geo.Point{geo.Pt(5, 5)}},
		{Start: 1, Points: []geo.Point{geo.Pt(0.5, 0.5)}},
	})
	got := GroundTruth(d, geo.NewRect(0, 0, 1, 1), 0)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("GroundTruth = %v", got)
	}
}

func TestDiskModeChargesIOs(t *testing.T) {
	eng, d := testEngine(t, true)
	ps := store.New(4096)
	eng.Idx.AssignPages(ps)
	ps.ResetCounters()
	rng := rand.New(rand.NewSource(7))
	asked := 0
	for q := 0; q < 50; q++ {
		tr := d.Get(traj.ID(rng.Intn(d.Len())))
		tick := tr.Start + rng.Intn(tr.Len())
		qp, _ := tr.At(tick)
		rt := ps.BeginRead()
		res, _ := eng.STRQ(context.Background(), qp, tick, false, rt)
		if res.Covered {
			asked++
			if rt.PagesTouched() == 0 {
				t.Fatal("covered disk query should touch pages")
			}
		}
	}
	if asked == 0 {
		t.Fatal("no covered queries")
	}
	if ps.Reads() == 0 {
		t.Fatal("no reads recorded")
	}
}

func TestDistToRect(t *testing.T) {
	r := geo.NewRect(0, 0, 1, 1)
	if d := distToRect(geo.Pt(0.5, 0.5), r); d != 0 {
		t.Fatalf("inside dist = %v", d)
	}
	if d := distToRect(geo.Pt(2, 0.5), r); d != 1 {
		t.Fatalf("side dist = %v", d)
	}
	if d := distToRect(geo.Pt(4, 5), r); d != 5 {
		t.Fatalf("corner dist = %v", d)
	}
}

func TestEngineConcurrentSTRQTPQ(t *testing.T) {
	// The engine contract: safe for concurrent readers (run with -race).
	// Eight goroutines mix approximate STRQ, exact STRQ, and TPQ against
	// one shared engine and cross-check recall on the fly.
	eng, d := testEngine(t, true)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for wk := 0; wk < 8; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(40 + wk)))
			for q := 0; q < 150; q++ {
				tr := d.Get(traj.ID(rng.Intn(d.Len())))
				tick := tr.Start + rng.Intn(tr.Len())
				qp, _ := tr.At(tick)
				switch q % 3 {
				case 0:
					res, err := eng.STRQ(context.Background(), qp, tick, false, nil)
					if err != nil {
						errCh <- err
						return
					}
					if res.Covered {
						want := GroundTruth(d, res.Cell, tick)
						if _, recall := PrecisionRecall(res.IDs, want); recall < 1 {
							errCh <- fmt.Errorf("worker %d: recall %v < 1", wk, recall)
							return
						}
					}
				case 1:
					res, err := eng.STRQ(context.Background(), qp, tick, true, nil)
					if err != nil {
						errCh <- err
						return
					}
					if res.Covered {
						want := GroundTruth(d, res.Cell, tick)
						if p, r := PrecisionRecall(res.IDs, want); p != 1 || r != 1 {
							errCh <- fmt.Errorf("worker %d: exact %v/%v", wk, p, r)
							return
						}
					}
				default:
					if _, err := eng.TPQ(context.Background(), qp, tick, 8, false, nil); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(wk)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if eng.RawAccesses.Load() == 0 {
		t.Fatal("exact workers should have accessed raw data")
	}
}

func TestSTRQRectMatchesGroundTruthExact(t *testing.T) {
	// STRQRect is the engine-independent query primitive the serving
	// layer shards over: exact answers must equal ground truth for any
	// caller-supplied rectangle.
	eng, d := testEngine(t, true)
	rng := rand.New(rand.NewSource(17))
	gc := geo.MetersToDegrees(100)
	checked := 0
	for q := 0; q < 200; q++ {
		tr := d.Get(traj.ID(rng.Intn(d.Len())))
		tick := tr.Start + rng.Intn(tr.Len())
		qp, _ := tr.At(tick)
		rect := geo.Rect{
			MinX: math.Floor(qp.X/gc) * gc, MinY: math.Floor(qp.Y/gc) * gc,
			MaxX: math.Floor(qp.X/gc)*gc + gc, MaxY: math.Floor(qp.Y/gc)*gc + gc,
		}
		res, err := eng.STRQRect(context.Background(), rect, tick, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Covered {
			continue
		}
		checked++
		want := GroundTruth(d, rect, tick)
		if p, r := PrecisionRecall(res.IDs, want); p != 1 || r != 1 {
			t.Fatalf("rect %v tick %d: precision %v recall %v", rect, tick, p, r)
		}
	}
	if checked == 0 {
		t.Fatal("no covered rect queries")
	}
}

// TestQueryContextCancellation checks the engine primitives observe their
// context: a cancelled context aborts STRQ/STRQRect/TPQ with the context
// error, and context.Background() answers normally.
func TestQueryContextCancellation(t *testing.T) {
	eng, d := testEngine(t, true)
	tr := d.Get(0)
	qp, _ := tr.At(tr.Start)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.STRQ(ctx, qp, tr.Start, false, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("STRQ on cancelled ctx: want context.Canceled, got %v", err)
	}
	if _, err := eng.STRQRect(ctx, geo.NewRect(qp.X-0.01, qp.Y-0.01, qp.X+0.01, qp.Y+0.01), tr.Start, true, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("STRQRect on cancelled ctx: want context.Canceled, got %v", err)
	}
	if _, err := eng.TPQ(ctx, qp, tr.Start, 5, false, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("TPQ on cancelled ctx: want context.Canceled, got %v", err)
	}
	res, err := eng.STRQ(context.Background(), qp, tr.Start, false, nil)
	if err != nil || !res.Covered {
		t.Fatalf("background ctx should answer: %+v, %v", res, err)
	}
}
