package query

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"ppqtraj/internal/cache"
	"ppqtraj/internal/core"
	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/traj"
)

// rangeTestEngine builds an engine over a staggered synthetic workload
// whose ticks span several index periods and cache chunks.
func rangeTestEngine(t testing.TB, withCache bool) (*Engine, *traj.Dataset) {
	t.Helper()
	d := gen.Porto(gen.Config{NumTrajectories: 70, MinLen: 30, MaxLen: 60, Horizon: 40, Seed: 5})
	opts := core.DefaultOptions(partition.Spatial, 0.1)
	opts.Seed = 3
	sum := core.Build(d, opts)
	e, err := BuildEngine(sum, index.Options{
		EpsS: 0.1, GC: geo.MetersToDegrees(100), EpsC: 0.5, EpsD: 0.5, Seed: 3,
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	if withCache {
		e.Idx.SetCache(cache.New(8<<20), 1)
	}
	return e, d
}

// perTickIDs answers [from, to] with per-tick STRQRect probes — the
// reference the range scan must match point for point.
func perTickIDs(t *testing.T, e *Engine, rect geo.Rect, from, to int, exact bool) map[int][]traj.ID {
	t.Helper()
	out := make(map[int][]traj.ID)
	for tick := from; tick <= to; tick++ {
		res, err := e.STRQRect(context.Background(), rect, tick, exact, nil)
		if err != nil {
			t.Fatalf("STRQRect tick %d: %v", tick, err)
		}
		if len(res.IDs) > 0 {
			out[tick] = res.IDs
		}
	}
	return out
}

func rangeIDs(res *RangeResult) map[int][]traj.ID {
	out := make(map[int][]traj.ID)
	for _, col := range res.Cols {
		if len(col.IDs) > 0 {
			out[col.Tick] = col.IDs
		}
	}
	return out
}

func TestSTRQRangeMatchesPerTick(t *testing.T) {
	for _, withCache := range []bool{false, true} {
		e, d := rangeTestEngine(t, withCache)
		rng := rand.New(rand.NewSource(99))
		gc := geo.MetersToDegrees(100)
		ticks := e.Sum.SortedTicks()
		for trial := 0; trial < 40; trial++ {
			// Rects anchored on data positions so probes hit populated
			// cells; size sweeps from sub-cell to several cells.
			tr := d.Get(traj.ID(rng.Intn(d.Len())))
			p := tr.Points[rng.Intn(len(tr.Points))]
			w := gc * (0.5 + 3*rng.Float64())
			rect := geo.Rect{MinX: p.X - w/2, MinY: p.Y - w/2, MaxX: p.X + w/2, MaxY: p.Y + w/2}
			from := ticks[rng.Intn(len(ticks))] - 3 + rng.Intn(6)
			to := from + rng.Intn(40)
			for _, exact := range []bool{false, true} {
				res, err := e.STRQRange(context.Background(), rect, from, to, exact)
				if err != nil {
					t.Fatalf("STRQRange(%v, %d..%d, exact=%v): %v", rect, from, to, exact, err)
				}
				want := perTickIDs(t, e, rect, from, to, exact)
				if got := rangeIDs(res); !reflect.DeepEqual(got, want) {
					t.Fatalf("cache=%v exact=%v rect %v span %d..%d:\nrange   %v\npertick %v",
						withCache, exact, rect, from, to, got, want)
				}
				if exact {
					// Exact answers are also ground truth.
					for tick := from; tick <= to; tick++ {
						truth := GroundTruth(d, rect, tick)
						got := rangeIDs(res)[tick]
						if len(truth) == 0 && len(got) == 0 {
							continue
						}
						if !reflect.DeepEqual(got, truth) {
							t.Fatalf("tick %d: exact range %v vs ground truth %v", tick, got, truth)
						}
					}
				}
			}
		}
	}
}

func TestSTRQRangeCoveredTicksAndEmptySpans(t *testing.T) {
	e, _ := rangeTestEngine(t, false)
	ticks := e.Sum.SortedTicks()
	last := ticks[len(ticks)-1]
	// A span entirely past the data: nothing covered, nothing found.
	res, err := e.STRQRange(context.Background(), geo.Rect{MinX: -9, MinY: 41, MaxX: -8, MaxY: 42}, last+10, last+20, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredTicks != 0 || len(res.Cols) != 0 {
		t.Fatalf("past-the-end span: covered %d cols %d", res.CoveredTicks, len(res.Cols))
	}
	// Covered ticks agree with per-tick Covered flags.
	from, to := ticks[0]-5, last+5
	res, err = e.STRQRange(context.Background(), geo.Rect{MinX: -9, MinY: 41, MaxX: -8, MaxY: 42}, from, to, false)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for tick := from; tick <= to; tick++ {
		r, err := e.STRQRect(context.Background(), geo.Rect{MinX: -9, MinY: 41, MaxX: -8, MaxY: 42}, tick, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Covered {
			covered++
		}
	}
	if res.CoveredTicks != covered {
		t.Fatalf("CoveredTicks %d, per-tick Covered count %d", res.CoveredTicks, covered)
	}
	// An inverted span is a no-op.
	res, err = e.STRQRange(context.Background(), geo.Rect{MinX: -9, MinY: 41, MaxX: -8, MaxY: 42}, 10, 5, false)
	if err != nil || len(res.Cols) != 0 {
		t.Fatalf("inverted span: %v %v", res, err)
	}
}

func TestSTRQRangeNoRaw(t *testing.T) {
	e, _ := rangeTestEngine(t, false)
	e.Raw = nil
	ticks := e.Sum.SortedTicks()
	if _, err := e.STRQRange(context.Background(), geo.Rect{MinX: -9, MinY: 41, MaxX: -8, MaxY: 42}, ticks[0], ticks[0]+5, true); err != ErrNoRaw {
		t.Fatalf("exact without raw: err = %v, want ErrNoRaw", err)
	}
	// A span with no covered ticks never needs raw access.
	last := ticks[len(ticks)-1]
	if _, err := e.STRQRange(context.Background(), geo.Rect{MinX: -9, MinY: 41, MaxX: -8, MaxY: 42}, last+5, last+9, true); err != nil {
		t.Fatalf("uncovered exact span without raw: %v", err)
	}
}

func TestSTRQRangeCancellation(t *testing.T) {
	e, _ := rangeTestEngine(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ticks := e.Sum.SortedTicks()
	if _, err := e.STRQRange(ctx, geo.Rect{MinX: -9, MinY: 41, MaxX: -8, MaxY: 42}, ticks[0], ticks[0]+30, false); err != context.Canceled {
		t.Fatalf("cancelled range scan: err = %v, want context.Canceled", err)
	}
}

// BenchmarkSearchRectAllocs tracks the per-probe allocation count of the
// shared STRQ pipeline — the scratch pool keeps the steady state at the
// result copy plus the result struct instead of fresh candidate/kept
// slices per call.
func BenchmarkSearchRectAllocs(b *testing.B) {
	e, d := rangeTestEngine(b, false)
	tr := d.Get(0)
	p := tr.Points[0]
	tick := tr.Start
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.STRQ(ctx, p, tick, false, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTRQRangeVsPerTick compares one 64-tick span answered by the
// range scan against the same span probed per tick.
func BenchmarkSTRQRangeVsPerTick(b *testing.B) {
	e, d := rangeTestEngine(b, true)
	tr := d.Get(0)
	p := tr.Points[len(tr.Points)/2]
	gc := geo.MetersToDegrees(100)
	rect := geo.Rect{MinX: p.X - gc, MinY: p.Y - gc, MaxX: p.X + gc, MaxY: p.Y + gc}
	from := tr.Start
	to := from + 63
	ctx := context.Background()
	b.Run("range", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.STRQRange(ctx, rect, from, to, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pertick", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for tick := from; tick <= to; tick++ {
				if _, err := e.STRQRect(ctx, rect, tick, false, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
