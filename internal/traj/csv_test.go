package traj

import (
	"bytes"
	"strings"
	"testing"

	"ppqtraj/internal/geo"
)

func TestReadCSVBasic(t *testing.T) {
	in := `traj_id,tick,x,y
a,0,1.5,2.5
a,1,1.6,2.6
b,5,9.0,9.0
`
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	tr := d.Get(0)
	if tr.Start != 0 || tr.Len() != 2 || tr.Points[1] != geo.Pt(1.6, 2.6) {
		t.Fatalf("traj 0 = %+v", tr)
	}
	if d.Get(1).Start != 5 {
		t.Fatalf("traj 1 start = %d", d.Get(1).Start)
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	d, err := ReadCSV(strings.NewReader("7,0,1,2\n7,1,3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Get(0).Len() != 2 {
		t.Fatalf("dataset = %+v", d)
	}
}

func TestReadCSVOutOfOrderRows(t *testing.T) {
	d, err := ReadCSV(strings.NewReader("a,1,2,2\na,0,1,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Get(0).Points[0] != geo.Pt(1, 1) {
		t.Fatal("rows not sorted by tick")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		// Line 1 with a non-numeric tick is treated as a header, so the
		// bad tick sits on line 2 here.
		"bad tick":  "a,0,1,2\na,zz,1,2\n",
		"bad x":     "a,0,oops,2\n",
		"bad y":     "a,0,1,oops\n",
		"tick gap":  "a,0,1,1\na,2,2,2\n",
		"bad field": "a,0,1\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := NewDataset([]*Trajectory{
		{Start: 3, Points: []geo.Point{geo.Pt(-8.61, 41.15), geo.Pt(-8.62, 41.16)}},
		{Start: 0, Points: []geo.Point{geo.Pt(1, 2)}},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.NumPoints() != d.NumPoints() {
		t.Fatalf("round trip lost data: %d/%d", got.Len(), got.NumPoints())
	}
	for i := 0; i < d.Len(); i++ {
		a, b := d.Get(ID(i)), got.Get(ID(i))
		if a.Start != b.Start || a.Len() != b.Len() {
			t.Fatalf("traj %d shape mismatch", i)
		}
		for j := range a.Points {
			if a.Points[j] != b.Points[j] {
				t.Fatalf("traj %d point %d mismatch", i, j)
			}
		}
	}
}
