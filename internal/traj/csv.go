package traj

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ppqtraj/internal/geo"
)

// ReadCSV parses a trajectory dataset from CSV rows of the form
//
//	traj_id,tick,x,y
//
// (header row optional). Rows may arrive in any order; each trajectory's
// ticks must form a contiguous range. Returns the dataset with IDs
// renumbered densely in first-appearance order of traj_id.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	type sample struct {
		tick int
		p    geo.Point
	}
	byKey := map[string][]sample{}
	var order []string
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("traj: csv line %d: %w", line+1, err)
		}
		line++
		if line == 1 {
			// Tolerate a header row.
			if _, err := strconv.Atoi(rec[1]); err != nil {
				continue
			}
		}
		tick, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("traj: csv line %d: bad tick %q", line, rec[1])
		}
		x, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("traj: csv line %d: bad x %q", line, rec[2])
		}
		y, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("traj: csv line %d: bad y %q", line, rec[3])
		}
		key := rec[0]
		if _, ok := byKey[key]; !ok {
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], sample{tick: tick, p: geo.Pt(x, y)})
	}
	var trajs []*Trajectory
	for _, key := range order {
		ss := byKey[key]
		sort.Slice(ss, func(i, j int) bool { return ss[i].tick < ss[j].tick })
		pts := make([]geo.Point, len(ss))
		for i, s := range ss {
			if i > 0 && s.tick != ss[i-1].tick+1 {
				return nil, fmt.Errorf("traj: trajectory %q has a tick gap %d→%d",
					key, ss[i-1].tick, s.tick)
			}
			pts[i] = s.p
		}
		trajs = append(trajs, &Trajectory{Start: ss[0].tick, Points: pts})
	}
	return NewDataset(trajs), nil
}

// WriteCSV emits the dataset in ReadCSV's format, with a header.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"traj_id", "tick", "x", "y"}); err != nil {
		return err
	}
	for _, tr := range d.All() {
		for i, p := range tr.Points {
			rec := []string{
				strconv.FormatUint(uint64(tr.ID), 10),
				strconv.Itoa(tr.Start + i),
				strconv.FormatFloat(p.X, 'f', -1, 64),
				strconv.FormatFloat(p.Y, 'f', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
