package traj

import (
	"testing"

	"ppqtraj/internal/geo"
)

func mkTraj(start int, pts ...geo.Point) *Trajectory {
	return &Trajectory{Start: start, Points: pts}
}

func TestTrajectoryBasics(t *testing.T) {
	tr := mkTraj(5, geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(1, 1))
	if tr.Len() != 3 || tr.End() != 8 {
		t.Fatalf("Len=%d End=%d", tr.Len(), tr.End())
	}
	if !tr.ActiveAt(5) || !tr.ActiveAt(7) || tr.ActiveAt(4) || tr.ActiveAt(8) {
		t.Fatal("ActiveAt wrong")
	}
	if p, ok := tr.At(6); !ok || p != geo.Pt(1, 0) {
		t.Fatalf("At(6) = %v %v", p, ok)
	}
	if _, ok := tr.At(100); ok {
		t.Fatal("At out of range should fail")
	}
}

func TestTrajectorySlice(t *testing.T) {
	tr := mkTraj(10, geo.Pt(0, 0), geo.Pt(1, 1), geo.Pt(2, 2), geo.Pt(3, 3))
	got := tr.Slice(11, 13)
	if len(got) != 2 || got[0] != geo.Pt(1, 1) || got[1] != geo.Pt(2, 2) {
		t.Fatalf("Slice = %v", got)
	}
	// Clipping on both sides.
	if got := tr.Slice(0, 100); len(got) != 4 {
		t.Fatalf("clipped slice len = %d", len(got))
	}
	if got := tr.Slice(20, 30); got != nil {
		t.Fatalf("out-of-range slice = %v", got)
	}
	if got := tr.Slice(12, 11); got != nil {
		t.Fatal("inverted range should be nil")
	}
}

func TestTrajectoryPathAndBounds(t *testing.T) {
	tr := mkTraj(0, geo.Pt(0, 0), geo.Pt(3, 4), geo.Pt(3, 0))
	if d := tr.PathLength(); d != 9 {
		t.Fatalf("PathLength = %v, want 9", d)
	}
	r := tr.BoundingRect()
	if r.MinX != 0 || r.MinY != 0 || r.MaxX != 3 || r.MaxY != 4 {
		t.Fatalf("BoundingRect = %v", r)
	}
}

func TestDatasetIDsAndAccess(t *testing.T) {
	d := NewDataset([]*Trajectory{
		mkTraj(0, geo.Pt(0, 0), geo.Pt(1, 1)),
		mkTraj(1, geo.Pt(5, 5)),
	})
	if d.Len() != 2 || d.MaxTick() != 2 {
		t.Fatalf("Len=%d MaxTick=%d", d.Len(), d.MaxTick())
	}
	if d.Get(0).ID != 0 || d.Get(1).ID != 1 {
		t.Fatal("IDs not assigned in input order")
	}
	if d.NumPoints() != 3 {
		t.Fatalf("NumPoints = %d", d.NumPoints())
	}
	if d.RawBytes() != 48 {
		t.Fatalf("RawBytes = %d, want 48", d.RawBytes())
	}
}

func TestDatasetGetPanicsOnBadID(t *testing.T) {
	d := NewDataset(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Get(3)
}

func TestColumnAt(t *testing.T) {
	d := NewDataset([]*Trajectory{
		mkTraj(0, geo.Pt(0, 0), geo.Pt(0, 1), geo.Pt(0, 2)),
		mkTraj(1, geo.Pt(9, 9), geo.Pt(8, 8)),
		mkTraj(5, geo.Pt(4, 4)),
	})
	col := d.ColumnAt(1)
	if col.Len() != 2 {
		t.Fatalf("column len = %d", col.Len())
	}
	if col.IDs[0] != 0 || col.Points[0] != geo.Pt(0, 1) {
		t.Fatalf("col[0] = %d %v", col.IDs[0], col.Points[0])
	}
	if col.IDs[1] != 1 || col.Points[1] != geo.Pt(9, 9) {
		t.Fatalf("col[1] = %d %v", col.IDs[1], col.Points[1])
	}
	if d.ColumnAt(4).Len() != 0 {
		t.Fatal("tick 4 should be empty")
	}
	if d.ColumnAt(5).Len() != 1 {
		t.Fatal("tick 5 should have the late trajectory")
	}
}

func TestStreamVisitsAllPointsInOrder(t *testing.T) {
	d := NewDataset([]*Trajectory{
		mkTraj(0, geo.Pt(0, 0), geo.Pt(0, 1)),
		mkTraj(3, geo.Pt(1, 0)),
	})
	var ticks []int
	var total int
	err := d.Stream(func(col *Column) error {
		ticks = append(ticks, col.Tick)
		total += col.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != d.NumPoints() {
		t.Fatalf("streamed %d points, want %d", total, d.NumPoints())
	}
	// Ticks strictly increasing, empty ticks skipped (tick 2 empty).
	want := []int{0, 1, 3}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestHistory(t *testing.T) {
	d := NewDataset([]*Trajectory{
		mkTraj(0, geo.Pt(0, 0), geo.Pt(1, 1), geo.Pt(2, 2), geo.Pt(3, 3)),
	})
	h := d.History(0, 3, 2)
	if len(h) != 2 || h[0] != geo.Pt(1, 1) || h[1] != geo.Pt(2, 2) {
		t.Fatalf("History = %v", h)
	}
	// Near the start fewer points come back.
	if h := d.History(0, 1, 5); len(h) != 1 || h[0] != geo.Pt(0, 0) {
		t.Fatalf("History near start = %v", h)
	}
	if h := d.History(0, 0, 3); len(h) != 0 {
		t.Fatalf("History before start = %v", h)
	}
}

func TestSortedIDs(t *testing.T) {
	d := NewDataset([]*Trajectory{
		mkTraj(0, geo.Pt(0, 0)),
		mkTraj(0, geo.Pt(1, 1), geo.Pt(2, 2)),
		mkTraj(1, geo.Pt(3, 3)),
	})
	ids := d.SortedIDs(0)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("SortedIDs(0) = %v", ids)
	}
	ids = d.SortedIDs(1)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("SortedIDs(1) = %v", ids)
	}
}

func TestDatasetBoundingRect(t *testing.T) {
	d := NewDataset([]*Trajectory{
		mkTraj(0, geo.Pt(-1, -1)),
		mkTraj(0, geo.Pt(2, 3)),
	})
	r := d.BoundingRect()
	if r.MinX != -1 || r.MinY != -1 || r.MaxX != 2 || r.MaxY != 3 {
		t.Fatalf("BoundingRect = %v", r)
	}
}
