// Package traj defines the trajectory data model shared by every component
// of ppqtraj: time-stamped position sequences (Definition 3.1), datasets of
// such sequences, and the per-timestamp "column" view {T_i^t} the online
// quantizer consumes (Algorithm 1 processes all live trajectories one
// timestamp at a time).
//
// Time is modeled as discrete ticks t = 0, 1, 2, … matching the paper's
// per-timestamp processing; each trajectory occupies the contiguous tick
// range [Start, Start+len(Points)).
package traj

import (
	"fmt"
	"sort"

	"ppqtraj/internal/geo"
)

// ID identifies a trajectory within a Dataset.
type ID = uint32

// DedupSorted removes adjacent duplicates of an ascending ID slice in
// place and returns the shortened slice — the shared tail of every
// sorted-merge in the query stack.
func DedupSorted(ids []ID) []ID {
	if len(ids) < 2 {
		return ids
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// Trajectory is a finite sequence of positions sampled at consecutive
// ticks starting at Start (Definition 3.1). Points[i] is the position at
// tick Start+i.
type Trajectory struct {
	ID     ID
	Start  int
	Points []geo.Point
}

// Len returns the number of samples.
func (t *Trajectory) Len() int { return len(t.Points) }

// End returns the first tick after the trajectory (exclusive bound).
func (t *Trajectory) End() int { return t.Start + len(t.Points) }

// ActiveAt reports whether the trajectory has a sample at tick k.
func (t *Trajectory) ActiveAt(k int) bool { return k >= t.Start && k < t.End() }

// At returns the position at tick k; ok is false when the trajectory is
// not active at k.
func (t *Trajectory) At(k int) (geo.Point, bool) {
	if !t.ActiveAt(k) {
		return geo.Point{}, false
	}
	return t.Points[k-t.Start], true
}

// Slice returns the sub-trajectory covering ticks [from, to) clipped to
// the trajectory's own range. The returned slice aliases the original
// points.
func (t *Trajectory) Slice(from, to int) []geo.Point {
	if from < t.Start {
		from = t.Start
	}
	if to > t.End() {
		to = t.End()
	}
	if from >= to {
		return nil
	}
	return t.Points[from-t.Start : to-t.Start]
}

// BoundingRect returns the minimum rectangle covering the trajectory.
func (t *Trajectory) BoundingRect() geo.Rect { return geo.BoundingRect(t.Points, 0) }

// PathLength returns the total travelled distance.
func (t *Trajectory) PathLength() float64 {
	var d float64
	for i := 1; i < len(t.Points); i++ {
		d += t.Points[i].Dist(t.Points[i-1])
	}
	return d
}

// Dataset is an immutable collection of trajectories indexed by ID, with
// fast per-timestamp access.
type Dataset struct {
	trajs  []*Trajectory // position = ID
	maxEnd int
}

// NewDataset builds a dataset, assigning IDs 0..n−1 in input order.
// Trajectories passed in keep their slice but their ID field is rewritten
// to their dataset position.
func NewDataset(trajs []*Trajectory) *Dataset {
	d := &Dataset{trajs: trajs}
	for i, tr := range trajs {
		tr.ID = ID(i)
		if tr.End() > d.maxEnd {
			d.maxEnd = tr.End()
		}
	}
	return d
}

// Len returns the number of trajectories.
func (d *Dataset) Len() int { return len(d.trajs) }

// MaxTick returns the first tick with no data (the stream length).
func (d *Dataset) MaxTick() int { return d.maxEnd }

// Lookup returns the trajectory with the given ID; ok is false when the
// dataset holds no such trajectory (Get panics instead).
func (d *Dataset) Lookup(id ID) (*Trajectory, bool) {
	if int(id) >= len(d.trajs) {
		return nil, false
	}
	return d.trajs[int(id)], true
}

// Get returns the trajectory with the given ID.
func (d *Dataset) Get(id ID) *Trajectory {
	if int(id) >= len(d.trajs) {
		panic(fmt.Sprintf("traj: id %d out of range (%d trajectories)", id, len(d.trajs)))
	}
	return d.trajs[int(id)]
}

// All returns the underlying trajectory slice (shared, do not mutate).
func (d *Dataset) All() []*Trajectory { return d.trajs }

// NumPoints returns the total number of samples across all trajectories.
func (d *Dataset) NumPoints() int {
	n := 0
	for _, tr := range d.trajs {
		n += tr.Len()
	}
	return n
}

// RawBytes returns the raw storage size of the dataset as the paper's
// compression-ratio baseline counts it: two float64 coordinates per point.
// (Timestamps are implicit under the fixed sampling interval.)
func (d *Dataset) RawBytes() int { return d.NumPoints() * 16 }

// BoundingRect returns the minimum rectangle covering every point.
// (Computed directly from the points: a single-point trajectory's bounding
// rect is degenerate and would be dropped by Rect.Union.)
func (d *Dataset) BoundingRect() geo.Rect {
	var all []geo.Point
	for _, tr := range d.trajs {
		all = append(all, tr.Points...)
	}
	return geo.BoundingRect(all, 0)
}

// Column is the set of trajectory points at a single tick: parallel ID and
// position slices, ordered by ID. It is the {T_i^t} of the paper.
type Column struct {
	Tick   int
	IDs    []ID
	Points []geo.Point
}

// Len returns the number of live trajectories in the column.
func (c *Column) Len() int { return len(c.IDs) }

// ColumnAt materializes the column for tick k.
func (d *Dataset) ColumnAt(k int) *Column {
	col := &Column{Tick: k}
	for _, tr := range d.trajs {
		if p, ok := tr.At(k); ok {
			col.IDs = append(col.IDs, tr.ID)
			col.Points = append(col.Points, p)
		}
	}
	return col
}

// Stream calls fn for every tick from 0 to MaxTick()−1 with that tick's
// column, skipping empty columns. It is the online ingestion loop:
// components consume columns strictly in time order, never the future.
func (d *Dataset) Stream(fn func(col *Column) error) error {
	for k := 0; k < d.maxEnd; k++ {
		col := d.ColumnAt(k)
		if col.Len() == 0 {
			continue
		}
		if err := fn(col); err != nil {
			return err
		}
	}
	return nil
}

// History returns the most recent n positions of trajectory id strictly
// before tick k, oldest first. Fewer than n are returned near the start.
func (d *Dataset) History(id ID, k, n int) []geo.Point {
	tr := d.Get(id)
	from := k - n
	return tr.Slice(from, k)
}

// SortedIDs returns all IDs active at tick k in ascending order (helper
// for the brute-force query oracles in tests).
func (d *Dataset) SortedIDs(k int) []ID {
	var ids []ID
	for _, tr := range d.trajs {
		if tr.ActiveAt(k) {
			ids = append(ids, tr.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
