package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"ppqtraj/internal/repl"
	"ppqtraj/internal/traj"
	"ppqtraj/internal/wal"
)

// swapHandler routes requests to whatever handler is currently loaded —
// the stable "address" of a primary that crashes and comes back as a new
// Repository instance.
type swapHandler struct{ h atomic.Value }

type handlerBox struct{ h http.Handler }

func newSwapHandler(h http.Handler) *swapHandler {
	s := &swapHandler{}
	s.h.Store(handlerBox{h})
	return s
}

func (s *swapHandler) swap(h http.Handler) { s.h.Store(handlerBox{h}) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.h.Load().(handlerBox).h.ServeHTTP(w, req)
}

var downHandler = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
	http.Error(w, "primary is down", http.StatusServiceUnavailable)
})

// followerOptions derives a follower's options from the primary's test
// options: its own dirs and WAL, streaming from base, fast reconnects.
func followerOptions(t *testing.T, primary Options, base string) Options {
	t.Helper()
	opts := primary
	opts.Dir = t.TempDir()
	opts.WALDir = filepath.Join(opts.Dir, "wal")
	opts.WALFS = nil
	opts.ReplicateFrom = base
	opts.ReplBackoff = 2 * time.Millisecond
	opts.MaxReplicaLagTicks = 1 << 30 // staleness gating has its own test
	return opts
}

// waitCaughtUp blocks until the follower's stream cursor reaches the
// primary's WAL end and its applied watermark is no older.
func waitCaughtUp(t *testing.T, primary, follower *Repository, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		want := primary.wal.NextRec()
		st := follower.applier.Stats()
		if st.NextLSN >= want && follower.appliedTick.Load() >= primary.appliedTick.Load() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stalled: next_lsn=%d want %d, applied_tick=%d want %d (reconnects=%d)",
				st.NextLSN, want, follower.appliedTick.Load(), primary.appliedTick.Load(), st.Reconnects)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicationConvergence streams a full workload from a compacting
// primary to a compacting follower over real HTTP and requires the
// follower's exact answers to match the brute-force oracle — sealing
// happens independently on each side, and exact mode must not care.
// Run with -race.
func TestReplicationConvergence(t *testing.T) {
	d, cols := testData(t)
	rng := rand.New(rand.NewSource(41))

	opts := durableOptions(t, d)
	opts.HotTicks = 8
	opts.KeepHotTicks = 2
	opts.CompactInterval = time.Millisecond
	primary, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	srv := httptest.NewServer(primary.Handler())
	defer srv.Close()

	cfOpts := followerOptions(t, opts, srv.URL)
	// Short long-poll wait so the empty-log keepalive comes back fast and
	// the bootstrap check below doesn't sit out a full 20s poll.
	cfOpts.ReplTransport = &repl.HTTPTransport{Base: srv.URL, Follower: "conv", Wait: 50 * time.Millisecond}
	follower, err := Open(cfOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	// Let the follower's first fetch land (placing its retention pin)
	// before write load starts, as a real bootstrap would: otherwise a
	// fast compactor can reclaim the log's head before anyone needs it.
	deadline := time.Now().Add(10 * time.Second)
	for !follower.applier.Stats().Connected {
		if time.Now().After(deadline) {
			t.Fatal("follower never reached the primary")
		}
		time.Sleep(time.Millisecond)
	}

	for i, col := range cols {
		if err := primary.IngestColumn(col); err != nil {
			t.Fatalf("ingest column %d: %v", i, err)
		}
	}
	waitCaughtUp(t, primary, follower, 30*time.Second)

	// The follower's answers must match ground truth exactly, however its
	// own compactor happened to shard the stream.
	verifyAgainstTruth(t, follower, cols, rng, 40)

	// Freshness surfaces: the follower's window answers carry the applied
	// watermark, and both roles report coherent stats.
	lastTick := cols[len(cols)-1].Tick
	res, err := follower.Window(context.Background(), follower.QueryCell(cols[0].Points[0]), cols[0].Tick, cols[0].Tick, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.AsOfTick != int64(lastTick) {
		t.Fatalf("as_of_tick = %d, want %d", res.AsOfTick, lastTick)
	}
	fs := follower.Stats()
	if fs.Repl == nil || fs.Repl.Role != "follower" || !fs.Repl.Connected || fs.Repl.AppliedRecords != int64(len(cols)) {
		t.Fatalf("follower repl stats: %+v", fs.Repl)
	}
	ps := primary.Stats()
	if ps.Repl == nil || ps.Repl.Role != "primary" || ps.Repl.ShippedRecords < int64(len(cols)) || ps.Repl.FollowerHolds != 1 {
		t.Fatalf("primary repl stats: %+v", ps.Repl)
	}

	// A caught-up follower is ready; direct writes to it are not.
	fsrv := httptest.NewServer(follower.Handler())
	defer fsrv.Close()
	resp, err := http.Get(fsrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("caught-up follower /readyz = %d, want 200", resp.StatusCode)
	}
	if err := follower.Ingest(9999, []traj.ID{1}, cols[0].Points[:1]); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("follower Ingest: err = %v, want ErrNotLeader", err)
	}
}

// TestReplicationCrashTorture kills primary, follower, or both at
// randomized stream positions (sometimes tearing the dying side's WAL
// tail), restarts them against the same address, and requires the
// follower to converge to point-for-point STRQ/Window/Path equality with
// a never-crashed primary. Compaction is disabled on every node so all
// three serve raw hot data — any divergence is then replication's fault
// alone, down to the bit. Run with -race.
func TestReplicationCrashTorture(t *testing.T) {
	d, cols := testData(t)
	rng := rand.New(rand.NewSource(53))

	opts := durableOptions(t, d)
	opts.HotTicks = 1 << 30
	opts.CompactInterval = time.Hour

	// Never-crashed reference, memory-only (it is the semantic oracle).
	refOpts := testOptions(d)
	refOpts.HotTicks = 1 << 30
	refOpts.CompactInterval = time.Hour
	ref, err := Open(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	primary, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	front := newSwapHandler(primary.Handler())
	srv := httptest.NewServer(front)
	defer srv.Close()

	fOpts := followerOptions(t, opts, srv.URL)
	follower, err := Open(fOpts)
	if err != nil {
		t.Fatal(err)
	}

	crashAt := make(map[int]int) // column index → 0 primary, 1 follower, 2 both
	for len(crashAt) < 6 {
		crashAt[1+rng.Intn(len(cols)-1)] = rng.Intn(3)
	}
	for i, col := range cols {
		if who, ok := crashAt[i]; ok {
			if who == 0 || who == 2 {
				front.swap(downHandler)
				stopWithoutFlush(t, primary)
				if rng.Intn(2) == 0 {
					tearWALTail(t, opts.WALDir)
				}
				if primary, err = Open(opts); err != nil {
					t.Fatalf("primary reopen at column %d: %v", i, err)
				}
				front.swap(primary.Handler())
			}
			if who == 1 || who == 2 {
				stopWithoutFlush(t, follower)
				if rng.Intn(2) == 0 {
					tearWALTail(t, fOpts.WALDir)
				}
				if follower, err = Open(fOpts); err != nil {
					t.Fatalf("follower reopen at column %d: %v", i, err)
				}
			}
		}
		if err := primary.IngestColumn(col); err != nil {
			t.Fatalf("ingest column %d: %v", i, err)
		}
		if err := ref.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	defer follower.Close()
	defer func() { primary.Close() }() //nolint:errcheck // closure: primary is reassigned above
	waitCaughtUp(t, primary, follower, 30*time.Second)

	// Acked-on-primary ⇒ applied-on-follower, exactly once each: the
	// follower's own WAL ends exactly where the primary's does.
	if got, want := follower.wal.NextRec(), primary.wal.NextRec(); got != want {
		t.Fatalf("follower WAL holds %d records, primary %d", got, want)
	}
	if got, want := follower.Stats().HotPoints, ref.Stats().HotPoints; got != want {
		t.Fatalf("follower holds %d hot points, reference %d (lost or doubled records)", got, want)
	}

	// Point-for-point equality with the never-crashed run: STRQ (both
	// modes), Window, and Path all serve raw hot data on every node.
	ctx := context.Background()
	for i := 0; i < 60; i++ {
		col := cols[rng.Intn(len(cols))]
		req := STRQRequest{P: col.Points[rng.Intn(col.Len())], Tick: col.Tick, Exact: i%2 == 0}
		got, err := follower.STRQ(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.STRQ(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortedIDs(got.IDs), sortedIDs(want.IDs)) || got.Covered != want.Covered {
			t.Fatalf("STRQ(tick %d) diverged: got %v want %v", col.Tick, sortedIDs(got.IDs), sortedIDs(want.IDs))
		}
	}
	for i := 0; i < 20; i++ {
		col := cols[rng.Intn(len(cols))]
		rect := follower.QueryCell(col.Points[rng.Intn(col.Len())])
		from, to := col.Tick-rng.Intn(10), col.Tick+rng.Intn(10)
		got, err := follower.Window(ctx, rect, from, to, i%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Window(ctx, rect, from, to, i%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.IDs, want.IDs) {
			t.Fatalf("Window([%d,%d]) diverged: got %v want %v", from, to, got.IDs, want.IDs)
		}
	}
	for _, tr := range d.All() {
		got := follower.Path(ctx, tr.ID, tr.Start-1, tr.Len()+2)
		want := ref.Path(ctx, tr.ID, tr.Start-1, tr.Len()+2)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Path(%d) diverged:\n got %+v\nwant %+v", tr.ID, got, want)
		}
	}
}

// stubTransport scripts the stream by function — the seam for testing
// the staleness gate without racing a real primary.
type stubTransport struct {
	fetch atomic.Value // func(context.Context, int64) (repl.Batch, error)
}

func (s *stubTransport) Fetch(ctx context.Context, from int64) (repl.Batch, error) {
	return s.fetch.Load().(func(context.Context, int64) (repl.Batch, error))(ctx, from)
}

// TestFollowerStalenessGate pins the two 503 cases of a follower's
// /readyz — lag unknown (no primary contact yet) and lag beyond the
// bound — and proves reads keep answering with an honest as_of_tick
// throughout, while direct writes bounce with leader_unavailable.
func TestFollowerStalenessGate(t *testing.T) {
	d, _ := testData(t)
	opts := testOptions(d)
	opts.Dir = t.TempDir()
	opts.MaxReplicaLagTicks = 64

	stub := &stubTransport{}
	unreachable := func(context.Context, int64) (repl.Batch, error) {
		return repl.Batch{}, errors.New("connection refused")
	}
	stub.fetch.Store(unreachable)
	opts.ReplTransport = stub
	opts.ReplBackoff = time.Millisecond
	follower, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	srv := httptest.NewServer(follower.Handler())
	defer srv.Close()

	readyz := func() (int, string) {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Never heard from the primary: lag is unknowable, not zero.
	if code, body := readyz(); code != http.StatusServiceUnavailable || !strings.Contains(body, "lag unknown") {
		t.Fatalf("pre-contact /readyz = %d %q, want 503 lag unknown", code, body)
	}

	// The primary reports a watermark far ahead of anything applied here:
	// the gate must trip on the bound.
	stub.fetch.Store(func(context.Context, int64) (repl.Batch, error) {
		return repl.Batch{PrimaryTick: 5000}, nil
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, known := follower.ReplLag(); known {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never learned the primary's watermark")
		}
		time.Sleep(time.Millisecond)
	}
	if code, body := readyz(); code != http.StatusServiceUnavailable || !strings.Contains(body, "exceeds") {
		t.Fatalf("lagging /readyz = %d %q, want 503 lag bound", code, body)
	}
	if lag, _ := follower.ReplLag(); lag != 5001 { // 5000 - (-1)
		t.Fatalf("lag = %d, want 5001", lag)
	}

	// Reads still answer — bounded-stale, never erroring — with the
	// honest as_of_tick of an empty replica.
	res, err := follower.Window(context.Background(), follower.QueryCell(d.All()[0].Points[0]), 0, 10, false)
	if err != nil {
		t.Fatalf("stale follower read: %v", err)
	}
	if res.AsOfTick != -1 {
		t.Fatalf("empty follower as_of_tick = %d, want -1", res.AsOfTick)
	}

	// Writes bounce with the machine-readable reason.
	resp, err := http.Post(srv.URL+"/v1/ingest", "application/json",
		strings.NewReader(`{"ticks":[{"tick":1,"points":[{"id":1,"x":0,"y":0}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rej struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || rej.Reason != "leader_unavailable" {
		t.Fatalf("follower ingest = %d reason %q, want 503 leader_unavailable", resp.StatusCode, rej.Reason)
	}
}

// TestSlowFollowerNoGap is the WAL GC race: a follower stalls mid-catch-up
// while the primary rotates, seals, and reclaims log segments. The
// shipper's standing pin must keep the follower's resume position on
// disk — reclamation proceeds below it, never across it — so the
// follower finishes with zero gaps when it wakes.
func TestSlowFollowerNoGap(t *testing.T) {
	d, cols := testData(t)
	rng := rand.New(rand.NewSource(67))

	opts := durableOptions(t, d)
	opts.WALSegmentBytes = 4 << 10 // many rotations
	opts.HotTicks = 1 << 30        // compaction only on explicit Flush
	opts.CompactInterval = time.Hour
	primary, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	srv := httptest.NewServer(primary.Handler())
	defer srv.Close()

	half := len(cols) / 2
	for _, col := range cols[:half] {
		if err := primary.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}

	fOpts := followerOptions(t, opts, srv.URL)
	ft := &repl.FaultTransport{Base: &repl.HTTPTransport{
		Base: srv.URL, Follower: "slow", Wait: 50 * time.Millisecond,
	}}
	fOpts.ReplTransport = ft
	follower, err := Open(fOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitCaughtUp(t, primary, follower, 30*time.Second)

	// Stall the follower, then run the primary far ahead and seal+reclaim.
	ft.DropNext(1 << 30, nil)
	for _, col := range cols[half:] {
		if err := primary.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Flush(); err != nil {
		t.Fatal(err)
	}
	st := primary.Stats()
	if st.WAL.Reclaimed == 0 {
		t.Fatal("test needs the primary to have reclaimed WAL segments under the stalled follower")
	}
	resume := follower.applier.Stats().NextLSN
	if oldest := primary.wal.OldestRec(); oldest > resume {
		t.Fatalf("GC ran past the stalled follower: oldest retained %d, follower resumes at %d", oldest, resume)
	}

	// Wake the follower: it must catch up through the retained tail with
	// zero gaps and match ground truth.
	ft.DropNext(0, nil)
	waitCaughtUp(t, primary, follower, 30*time.Second)
	if got := follower.applier.Stats().NextLSN; got != primary.wal.NextRec() {
		t.Fatalf("follower resumed to %d, want %d", got, primary.wal.NextRec())
	}
	verifyAgainstTruth(t, follower, cols, rng, 30)
}

// TestReplicationENOSPC fills the disk under both roles' WALs. Each must
// latch fail-stop cleanly — 503 + degraded:true, reads still serving, no
// torn acked state — and the follower must resume incremental catch-up
// after a restart with space freed.
func TestReplicationENOSPC(t *testing.T) {
	d, cols := testData(t)
	rng := rand.New(rand.NewSource(79))

	opts := durableOptions(t, d)
	opts.HotTicks = 1 << 30
	opts.CompactInterval = time.Hour
	pfs := wal.NewFaultFS()
	opts.WALFS = pfs
	primary, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	srv := httptest.NewServer(primary.Handler())
	defer srv.Close()

	fOpts := followerOptions(t, opts, srv.URL)
	ffs := wal.NewFaultFS()
	fOpts.WALFS = ffs
	follower, err := Open(fOpts)
	if err != nil {
		t.Fatal(err)
	}

	half := len(cols) / 2
	for _, col := range cols[:half] {
		if err := primary.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, primary, follower, 30*time.Second)

	// Follower disk full: the apply path latches its WAL fail-stopped.
	ffs.SetWriteErr(syscall.ENOSPC)
	for _, col := range cols[half:] {
		if err := primary.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for follower.Degraded() == nil {
		if time.Now().After(deadline) {
			t.Fatal("follower never latched ENOSPC from the apply path")
		}
		time.Sleep(time.Millisecond)
	}
	fs := follower.Stats()
	if !fs.Degraded {
		t.Fatal("follower stats hide degraded state")
	}
	// Reads keep serving the applied prefix exactly.
	verifyAgainstTruth(t, follower, cols[:half], rng, 15)

	// "Restart with space freed": the WAL replays only acked records —
	// nothing torn — and catch-up resumes from the follower's own
	// position, never from zero.
	stopWithoutFlush(t, follower)
	ffs.SetWriteErr(nil)
	follower, err = Open(fOpts)
	if err != nil {
		t.Fatalf("follower reopen after ENOSPC: %v", err)
	}
	defer follower.Close()
	if from := follower.applier.Stats().NextLSN; from == 0 || from > int64(half)+1 {
		t.Fatalf("follower resumed at %d, want its own durable position near %d", from, half)
	}
	waitCaughtUp(t, primary, follower, 30*time.Second)
	verifyAgainstTruth(t, follower, cols, rng, 20)

	// Primary disk full: ingest 503s with degraded:true while queries and
	// the stream keep serving what is already durable.
	pfs.SetWriteErr(syscall.ENOSPC)
	// A fresh trajectory ID sidesteps contiguity validation, so the write
	// reaches the WAL and trips ENOSPC there.
	nextTick := cols[len(cols)-1].Tick + 1
	if err := primary.Ingest(nextTick, []traj.ID{1 << 20}, cols[0].Points[:1]); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("primary ingest on full disk: err = %v, want ENOSPC", err)
	}
	// The failure latches: every later write fail-stops without touching disk.
	if err := primary.Ingest(nextTick, []traj.ID{1 << 20}, cols[0].Points[:1]); !errors.Is(err, wal.ErrFailStopped) {
		t.Fatalf("primary ingest after latch: err = %v, want fail-stop", err)
	}
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded primary /readyz = %d, want 503", resp.StatusCode)
	}
	if ps := primary.Stats(); !ps.Degraded {
		t.Fatal("primary stats hide degraded state")
	}
	verifyAgainstTruth(t, primary, cols, rng, 15)
}

// TestMemoryOnlyHasNoStream: a repository without a WAL has nothing to
// ship — the endpoint says so instead of pretending.
func TestMemoryOnlyHasNoStream(t *testing.T) {
	d, _ := testData(t)
	repo, err := Open(testOptions(d))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/repl/stream?from_lsn=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("memory-only stream = %d, want 501", resp.StatusCode)
	}
	if st := repo.Stats(); st.Repl != nil {
		t.Fatalf("memory-only repl stats = %+v, want absent", st.Repl)
	}
}
