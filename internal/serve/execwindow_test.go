package serve

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppqtraj/internal/traj"
)

// openWindowRepo builds the equivalence-suite repository: several sealed
// segments plus a live hot tail, compaction only via explicit Flush.
func openWindowRepo(t *testing.T) (*Repository, lastTickCols) {
	t.Helper()
	d, cols := testData(t)
	opts := testOptions(d)
	opts.CompactInterval = time.Hour
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	lastTick := cols[len(cols)-1].Tick
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
		if col.Tick == lastTick-10 {
			if err := repo.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if repo.Stats().Segments < 2 {
		t.Fatalf("want ≥ 2 sealed segments, got %d", repo.Stats().Segments)
	}
	if repo.Stats().HotPoints == 0 {
		t.Fatal("want a non-empty hot tail")
	}
	return repo, lastTickCols{cols: cols, lastTick: lastTick}
}

type lastTickCols struct {
	cols     []*traj.Column
	lastTick int
}

// TestExecutorEquivalenceSuite is the iterator executor's acceptance
// suite: on every span shape of the range-scan matrix (segment-boundary
// straddles, the sealed/hot frontier, the epoch, empty future ticks),
// the iterator and fused executors must agree point for point with each
// other — and, in exact mode, with brute-force ground truth. Run with
// -race.
func TestExecutorEquivalenceSuite(t *testing.T) {
	repo, w := openWindowRepo(t)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(17))
	lastTick := w.lastTick
	spans := [][2]int{
		{0, lastTick},                 // whole history: every segment + hot
		{lastTick - 12, lastTick + 5}, // straddles sealed/hot and runs past the data
		{-10, 3},                      // straddles the epoch
		{lastTick + 3, lastTick + 30}, // hot-only plus empty future ticks
	}
	for i := 0; i < 8; i++ {
		lo := rng.Intn(lastTick + 1)
		spans = append(spans, [2]int{lo, lo + rng.Intn(lastTick-lo+4)})
	}
	for _, rect := range windowRects(w.cols, 6, 29) {
		for _, sp := range spans {
			for _, exact := range []bool{false, true} {
				if err := repo.SetExecutor(ExecutorIter); err != nil {
					t.Fatal(err)
				}
				iter, err := repo.Window(ctx, rect, sp[0], sp[1], exact)
				if err != nil {
					t.Fatalf("iter Window(%v, %d..%d, exact=%v): %v", rect, sp[0], sp[1], exact, err)
				}
				if err := repo.SetExecutor(ExecutorFused); err != nil {
					t.Fatal(err)
				}
				fused, err := repo.Window(ctx, rect, sp[0], sp[1], exact)
				if err != nil {
					t.Fatalf("fused Window(%v, %d..%d, exact=%v): %v", rect, sp[0], sp[1], exact, err)
				}
				if !sameIDs(iter.IDs, fused.IDs) {
					t.Fatalf("rect %v span %d..%d exact=%v:\niter  %v\nfused %v",
						rect, sp[0], sp[1], exact, iter.IDs, fused.IDs)
				}
				if iter.Ticks != fused.Ticks || iter.Sources != fused.Sources ||
					iter.SegmentsSkipped != fused.SegmentsSkipped {
					t.Fatalf("rect %v span %d..%d exact=%v: ticks %d/%d sources %d/%d skipped %d/%d",
						rect, sp[0], sp[1], exact, iter.Ticks, fused.Ticks,
						iter.Sources, fused.Sources, iter.SegmentsSkipped, fused.SegmentsSkipped)
				}
				if exact {
					truth := bruteWindow(w.cols, rect, sp[0], sp[1])
					if !sameIDs(iter.IDs, truth) {
						t.Fatalf("rect %v span %d..%d: iter exact %v vs ground truth %v",
							rect, sp[0], sp[1], iter.IDs, truth)
					}
				}
			}
		}
	}
}

// TestExecutorRacingCompaction runs exact iterator-executor windows
// concurrently with live ingestion and compaction, while another
// goroutine flips the live executor back and forth: every answer over
// the fully ingested prefix must equal brute-force ground truth no
// matter where the sealed watermark lands mid-request (the mid-plan
// watermark re-plan) or which executor a request starts under. Run with
// -race.
func TestExecutorRacingCompaction(t *testing.T) {
	d, cols := testData(t)
	opts := testOptions(d)
	repo, err := Open(opts) // fast CompactInterval: compactor races for real
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	rects := windowRects(cols, 4, 61)
	var ingested atomic.Int64
	ingested.Store(-1)
	var done atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 5)
	// The flipper: SetExecutor must be safe under concurrent queries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !done.Load(); i++ {
			name := ExecutorIter
			if i%2 == 1 {
				name = ExecutorFused
			}
			if err := repo.SetExecutor(name); err != nil {
				errCh <- err
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for wk := 0; wk < 4; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(90 + wk)))
			for !done.Load() {
				hi := ingested.Load()
				if hi < 1 {
					continue
				}
				to := cols[rng.Intn(int(hi))].Tick
				from := to - rng.Intn(20)
				rect := rects[rng.Intn(len(rects))]
				res, err := repo.Window(context.Background(), rect, from, to, true)
				if err != nil {
					errCh <- err
					return
				}
				if want := bruteWindow(cols, rect, from, to); !sameIDs(res.IDs, want) {
					errCh <- errMismatch(rect, from, to, res.IDs, want)
					return
				}
			}
		}(wk)
	}
	for i, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
		ingested.Store(int64(i))
		if i%7 == 0 {
			time.Sleep(time.Millisecond) // let the compactor overlap queries
		}
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestExecutorPlanTelemetry checks the iterator executor's plan
// accounting: zone-pruned segments are counted once per plan, Plans and
// Operators land in the stats window section, and the fused executor
// records none of it.
func TestExecutorPlanTelemetry(t *testing.T) {
	repo, w := openWindowRepo(t)
	ctx := context.Background()
	offData := windowRects(w.cols, 0, 1)[0] // only the far-away rect

	if err := repo.SetExecutor(ExecutorFused); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Window(ctx, offData, 0, w.lastTick, false); err != nil {
		t.Fatal(err)
	}
	st := repo.Stats().Window
	if st.Plans != 0 || st.Operators != 0 {
		t.Fatalf("fused executor recorded exec telemetry: %+v", st)
	}
	if st.SegmentsSkipped == 0 {
		t.Fatalf("far-away rect not zone-pruned under fused: %+v", st)
	}

	if err := repo.SetExecutor(ExecutorIter); err != nil {
		t.Fatal(err)
	}
	before := repo.Stats().Window
	res, err := repo.Window(ctx, offData, 0, w.lastTick, false)
	if err != nil {
		t.Fatal(err)
	}
	after := repo.Stats().Window
	if got := after.Plans - before.Plans; got != 1 {
		t.Fatalf("one window = one plan, got %d", got)
	}
	if after.Operators <= before.Operators {
		t.Fatalf("plan recorded no operators: %+v -> %+v", before, after)
	}
	// Every overlapping segment is pruned or scanned exactly once per
	// plan: the per-request skip count must equal the counter delta.
	if got := after.SegmentsSkipped - before.SegmentsSkipped; got != int64(res.SegmentsSkipped) {
		t.Fatalf("skip counter moved %d for one plan reporting %d skips", got, res.SegmentsSkipped)
	}
	if scanned := after.SegmentsScanned - before.SegmentsScanned; scanned+int64(res.SegmentsSkipped) > int64(res.Sources) {
		t.Fatalf("segments counted more than once per plan: scanned %d + skipped %d > sources %d",
			scanned, res.SegmentsSkipped, res.Sources)
	}
}

// TestExecutorCancellation checks a cancelled context aborts an
// iterator-executor window with the context error, same as fused.
func TestExecutorCancellation(t *testing.T) {
	repo, w := openWindowRepo(t)
	for _, name := range []string{ExecutorIter, ExecutorFused} {
		if err := repo.SetExecutor(name); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := repo.Window(ctx, windowRects(w.cols, 1, 5)[0], 0, w.lastTick, false); err == nil {
			t.Fatalf("%s: cancelled window returned no error", name)
		}
	}
}

// TestExecutorOptionValidation covers the Options/SetExecutor contract:
// empty defaults to iter, junk is rejected, and the live setting is
// reported back.
func TestExecutorOptionValidation(t *testing.T) {
	d, _ := testData(t)
	opts := testOptions(d)
	opts.Executor = "vectorized"
	if _, err := Open(opts); err == nil {
		t.Fatal("unknown executor accepted at Open")
	}
	opts.Executor = ExecutorFused
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if got := repo.Executor(); got != ExecutorFused {
		t.Fatalf("Executor() = %q, want fused", got)
	}
	if err := repo.SetExecutor("vectorized"); err == nil {
		t.Fatal("unknown executor accepted at SetExecutor")
	}
	if err := repo.SetExecutor(ExecutorIter); err != nil {
		t.Fatal(err)
	}
	if got := repo.Executor(); got != ExecutorIter {
		t.Fatalf("Executor() = %q, want iter", got)
	}
}

// BenchmarkWindowExecutors times both executors on one warmed
// repository, for profiling the iterator layer against the fused floor.
func BenchmarkWindowExecutors(b *testing.B) {
	d, cols := testData(b)
	opts := testOptions(d)
	opts.CompactInterval = time.Hour
	repo, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			b.Fatal(err)
		}
	}
	if err := repo.Flush(); err != nil {
		b.Fatal(err)
	}
	lastTick := cols[len(cols)-1].Tick
	rects := windowRects(cols, 8, 13)
	ctx := context.Background()
	for _, name := range []string{ExecutorFused, ExecutorIter} {
		b.Run(name, func(b *testing.B) {
			if err := repo.SetExecutor(name); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rect := rects[i%len(rects)]
				if _, err := repo.Window(ctx, rect, 0, lastTick, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
