package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ppqtraj/internal/admit"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/traj"
	"ppqtraj/internal/wal"
)

// HTTP/JSON API of the repository server:
//
//	POST /v1/query   {"queries":[{"p":{"X":-8.61,"Y":41.15},"tick":42,"exact":false,"path_len":10}]}
//	                 → {"answers":[{"tick":42,"cell":{...},"covered":true,"ids":[...],...}]}
//	POST /v1/window  {"rect":{"MinX":...,"MinY":...,"MaxX":...,"MaxY":...},"from":10,"to":40,"exact":false}
//	                 → {"from":10,"to":40,"ids":[...],"ticks_probed":31,"sources":2}
//	POST /v1/ingest  {"ticks":[{"tick":99,"points":[{"id":7,"x":-8.61,"y":41.15}]}]}
//	                 → {"accepted_points":1}
//	POST /v1/flush   → compacts the whole hot tail synchronously
//	GET  /v1/stats   → Stats JSON (includes the "wal" section: segments,
//	                   bytes, syncs, appended/replayed records — all-zero
//	                   on a memory-only repository)
//	GET  /metrics    → Prometheus text exposition of the same registry
//	                   /v1/stats renders (text/plain; version=0.0.4)
//	GET  /healthz    → 200 "ok" (liveness: the process is serving)
//	GET  /readyz     → 200 "ready", or 503 while the WAL is fail-stopped
//	                   or the server is draining (readiness: route here?)
//
// Batch sizes are capped so one request cannot monopolize the server.
//
// Tracing: every admitted work request is carved into named stages
// (admission, read_body, validate, execute/wal_append/fsync_wait, write)
// whose durations feed the ppq_*_stage_seconds histograms. ?trace=1 on
// /v1/query, /v1/window, or /v1/ingest returns the same breakdown inline
// in the response's "trace" field, and any request slower than
// Options.SlowQuery emits it as one structured JSON log line.
//
// Deadlines: /v1/query and /v1/window accept a ?timeout= query parameter
// (a Go duration, e.g. ?timeout=250ms) that bounds the request; without
// it, Options.DefaultQueryTimeout applies when set. A request that blows
// its deadline returns 504 with the context error; a request whose client
// went away returns 499 (the nginx convention). Request bodies are parsed
// strictly: unknown fields and trailing data are 400s, so a misspelled
// field can never silently zero-value into a different query than the
// caller meant. A body that overflows the transport cap is 413.
//
// Overload: every work endpoint passes admission control before its body
// is even read — in-flight caps per class (ingest vs query), a bounded
// wait queue, and per-client token buckets (keyed X-Client-ID, falling
// back to remote host). A shed request gets 429 with a Retry-After
// header; the server's answer to overload is to reject fast, never to
// queue without bound. /v1/stats and /healthz bypass admission, so
// probes can always see a struggling server's state.
//
// Degraded mode: once the write-ahead log latches a disk failure, every
// ingest returns 503 with the latched error and /v1/stats reports
// degraded:true; queries keep serving the data already resident.

// maxBodyBytes caps a request body on the wire; bodies beyond it get a
// 413. A variable (not const) only so tests can shrink it — building a
// 64 MiB overflow per test run is pure waste.
var maxBodyBytes int64 = 64 << 20

const (
	maxBatchQueries = 4096
	maxIngestPoints = 1 << 20

	// maxQueryTimeout caps client-supplied ?timeout= values when the
	// operator configured no default deadline; with a configured default,
	// that default is the cap instead — a deadline is a protection for
	// the server, so a client may shorten it but never extend it.
	maxQueryTimeout = 10 * time.Minute

	// statusClientClosedRequest is the de-facto standard (nginx) status
	// for "the client cancelled the request"; net/http has no name for it.
	statusClientClosedRequest = 499
)

// IngestPoint is one trajectory position in an ingest payload.
type IngestPoint struct {
	ID traj.ID `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// IngestTick is one tick's batch in an ingest payload.
type IngestTick struct {
	Tick   int           `json:"tick"`
	Points []IngestPoint `json:"points"`
}

// IngestRequest is the /v1/ingest body.
type IngestRequest struct {
	Ticks []IngestTick `json:"ticks"`
}

// IngestResponse reports how many points were accepted. Trace carries
// the request's stage breakdown when the client asked with ?trace=1.
type IngestResponse struct {
	AcceptedPoints int              `json:"accepted_points"`
	Trace          *obs.TraceReport `json:"trace,omitempty"`
}

// QueryRequest is the /v1/query body.
type QueryRequest struct {
	Queries []STRQRequest `json:"queries"`
}

// QueryResponse is the /v1/query reply. Trace carries the request's
// stage breakdown when the client asked for it with ?trace=1.
type QueryResponse struct {
	Answers []STRQAnswer     `json:"answers"`
	Trace   *obs.TraceReport `json:"trace,omitempty"`
}

// windowResponse wraps the repository-level WindowResult with the
// optional inline trace, keeping the trace a transport concern.
type windowResponse struct {
	*WindowResult
	Trace *obs.TraceReport `json:"trace,omitempty"`
}

// WindowRequest is the /v1/window body.
type WindowRequest struct {
	Rect  geo.Rect `json:"rect"`
	From  int      `json:"from"`
	To    int      `json:"to"`
	Exact bool     `json:"exact"`
}

// Handler returns the repository's HTTP mux.
func (r *Repository) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", r.handleQuery)
	mux.HandleFunc("POST /v1/window", r.handleWindow)
	mux.HandleFunc("POST /v1/ingest", r.handleIngest)
	mux.HandleFunc("POST /v1/flush", r.handleFlush)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	// The replication stream bypasses admission like /metrics: it is the
	// replica fleet's lifeline, long-polls would pin query slots for
	// seconds, and the shipper already bounds its own batch sizes.
	mux.HandleFunc("GET /v1/repl/stream", r.handleReplStream)
	// Liveness vs readiness: /healthz answers "is the process serving?"
	// (always yes if this handler runs) so orchestrators do not restart a
	// degraded-but-serving server; /readyz answers "should traffic route
	// here?" and turns 503 while the WAL is fail-stopped or shutdown is
	// draining. Both bypass admission, like /v1/stats.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", r.handleReady)
	return mux
}

// handleMetrics serves the registry in Prometheus text exposition format.
// It bypasses admission so scrapes keep working on an overloaded server.
func (r *Repository) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.met.reg.Snapshot().WritePrometheus(w)
}

func (r *Repository) handleReady(w http.ResponseWriter, _ *http.Request) {
	if err := r.Degraded(); err != nil {
		http.Error(w, "not ready: degraded: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	if r.draining.Load() {
		http.Error(w, "not ready: draining", http.StatusServiceUnavailable)
		return
	}
	if r.follower {
		// The staleness bound gates routing only: a follower past it (or
		// one that has never reached its primary) answers reads fine, with
		// an honest as_of_tick, but load balancers should prefer replicas
		// inside the bound.
		lag, known := r.ReplLag()
		switch {
		case !known:
			http.Error(w, "not ready: replica lag unknown (no primary contact since start)",
				http.StatusServiceUnavailable)
			return
		case lag > int64(r.opts.MaxReplicaLagTicks):
			http.Error(w, fmt.Sprintf("not ready: replica lag %d ticks exceeds the %d-tick bound",
				lag, r.opts.MaxReplicaLagTicks), http.StatusServiceUnavailable)
			return
		}
	}
	w.Write([]byte("ready\n"))
}

// handleReplStream hands the request to the shipper (a memory-only
// repository has no WAL and nothing to ship).
func (r *Repository) handleReplStream(w http.ResponseWriter, req *http.Request) {
	if r.shipper == nil {
		writeJSON(w, http.StatusNotImplemented,
			httpError{Error: "replication requires a persistent repository (no WAL to ship)"})
		return
	}
	r.shipper.ServeHTTP(w, req)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type httpError struct {
	Error string `json:"error"`
}

// readBody decodes the request body strictly: unknown fields are
// rejected (a misspelled "tick" would otherwise zero-value silently and,
// say, ingest at tick 0), and so is trailing data after the JSON value
// (a second concatenated document is a malformed request, not ignorable
// noise).
func readBody(w http.ResponseWriter, req *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		// A body that overflows the transport cap is a size problem, not a
		// syntax problem: 413 tells the client to shrink the batch, where
		// a 400 would send it hunting for a JSON bug that is not there.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				httpError{Error: fmt.Sprintf("request body exceeds the %d-byte cap", tooBig.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad request body: trailing data after JSON value"})
		return false
	}
	return true
}

// admitHTTP runs admission control for one request. On rejection it
// writes the 429 itself — Retry-After header included, so well-behaved
// clients spread their retries — and returns ok=false. On success the
// caller must invoke release exactly once when the request's work is
// done (including the response write: the slot covers the whole
// request, or the cap would not actually bound concurrent work).
func (r *Repository) admitHTTP(w http.ResponseWriter, req *http.Request, class admit.Class) (release func(), ok bool) {
	release, rej, ok := r.admit.Admit(req.Context(), class, admit.ClientKey(req.Header.Get, req.RemoteAddr))
	if ok {
		return release, true
	}
	secs := int(rej.RetryAfter / time.Second)
	if rej.RetryAfter%time.Second != 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, struct {
		httpError
		RetryAfterSeconds int    `json:"retry_after_seconds"`
		Reason            string `json:"reason"`
	}{
		httpError{Error: fmt.Sprintf("overloaded: request shed (%s); retry after %ds", rej.Reason, secs)},
		secs, rej.Reason,
	})
	return nil, false
}

// queryContext derives the request's working context: the client's
// ?timeout= wins, clamped to the operator's configured default (or to
// maxQueryTimeout when no default is set — a client can shorten the
// server's deadline, never extend it); either way the context also dies
// with the client connection.
func (r *Repository) queryContext(w http.ResponseWriter, req *http.Request) (context.Context, context.CancelFunc, bool) {
	timeout := r.opts.DefaultQueryTimeout
	if raw := req.URL.Query().Get("timeout"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest,
				httpError{Error: fmt.Sprintf("bad timeout %q: want a positive Go duration like 250ms", raw)})
			return nil, nil, false
		}
		limit := r.opts.DefaultQueryTimeout
		if limit <= 0 {
			limit = maxQueryTimeout
		}
		if d > limit {
			d = limit
		}
		timeout = d
	}
	if timeout <= 0 {
		return req.Context(), func() {}, true
	}
	ctx, cancel := context.WithTimeout(req.Context(), timeout)
	return ctx, cancel, true
}

// writeQueryError maps a failed query to its transport status: deadline
// blown → 504, client gone → 499, anything else → 422 (the request was
// well-formed but the repository could not answer it).
func writeQueryError(w http.ResponseWriter, req *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, httpError{Error: err.Error()})
	case errors.Is(err, context.Canceled):
		// The client is usually gone; the status is for logs and proxies.
		if req.Context().Err() != nil {
			writeJSON(w, statusClientClosedRequest, httpError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusGatewayTimeout, httpError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusUnprocessableEntity, httpError{Error: err.Error()})
	}
}

func (r *Repository) handleQuery(w http.ResponseWriter, req *http.Request) {
	ro, release, ok := r.beginRequest(w, req, "query", admit.Query)
	if !ok {
		return
	}
	defer release()
	defer ro.finish()
	var in QueryRequest
	if !readBody(w, req, &in) {
		return
	}
	ro.tr.Lap("read_body")
	if len(in.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "no queries"})
		return
	}
	if len(in.Queries) > maxBatchQueries {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			httpError{Error: fmt.Sprintf("batch of %d exceeds the %d-query cap", len(in.Queries), maxBatchQueries)})
		return
	}
	// Validate up front and as a unit: a malformed probe deep in the batch
	// must 400 the request, not surface as a per-answer engine artifact.
	for i, q := range in.Queries {
		if err := q.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("query %d: %v", i, err)})
			return
		}
	}
	ro.tr.Lap("validate")
	ctx, cancel, ok := r.queryContext(w, req)
	if !ok {
		return
	}
	defer cancel()
	answers := r.Batch(obs.WithTrace(ctx, ro.tr), in.Queries)
	ro.tr.Lap("execute")
	if err := ctx.Err(); err != nil && batchLostAnswers(answers, err) {
		// The deadline actually cost answers → the whole request fails
		// with the transport mapping. A batch that completed just before
		// the deadline fired returns its answers; per-answer failures ride
		// in the answers' error fields either way.
		writeQueryError(w, req, err)
		return
	}
	resp := QueryResponse{Answers: answers}
	if ro.wantTrace {
		// The inline report necessarily precedes the write stage it is
		// part of; the write lap still lands in histograms and slow logs.
		resp.Trace = ro.tr.Report()
	}
	writeJSON(w, http.StatusOK, resp)
	ro.tr.Lap("write")
}

// batchLostAnswers reports whether any answer of the batch was lost to
// the given (context) error, i.e. carries it in its error field.
func batchLostAnswers(answers []STRQAnswer, err error) bool {
	msg := err.Error()
	for i := range answers {
		if answers[i].Err != "" && strings.Contains(answers[i].Err, msg) {
			return true
		}
	}
	return false
}

func (r *Repository) handleWindow(w http.ResponseWriter, req *http.Request) {
	ro, release, ok := r.beginRequest(w, req, "window", admit.Query)
	if !ok {
		return
	}
	defer release()
	defer ro.finish()
	var in WindowRequest
	if !readBody(w, req, &in) {
		return
	}
	ro.tr.Lap("read_body")
	if err := validateWindow(in.Rect, in.From, in.To); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	ro.tr.Lap("validate")
	ctx, cancel, ok := r.queryContext(w, req)
	if !ok {
		return
	}
	defer cancel()
	// The window executor laps its own plan / segment_scan / hot_scan /
	// merge stages off the trace it finds on the context, so "execute"
	// here only mops up time the executor did not attribute.
	res, err := r.Window(obs.WithTrace(ctx, ro.tr), in.Rect, in.From, in.To, in.Exact)
	ro.tr.Lap("execute")
	if err != nil {
		writeQueryError(w, req, err)
		return
	}
	resp := windowResponse{WindowResult: res}
	if ro.wantTrace {
		resp.Trace = ro.tr.Report()
	}
	writeJSON(w, http.StatusOK, resp)
	ro.tr.Lap("write")
}

func (r *Repository) handleIngest(w http.ResponseWriter, req *http.Request) {
	if r.follower {
		// Before admission: a follower rejects every write outright, and
		// burning an ingest slot to say so would let misdirected writers
		// starve the replication stream's own admission budget.
		writeJSON(w, http.StatusServiceUnavailable, struct {
			httpError
			Reason string `json:"reason"`
		}{httpError{Error: ErrNotLeader.Error()}, "leader_unavailable"})
		return
	}
	ro, release, ok := r.beginRequest(w, req, "ingest", admit.Ingest)
	if !ok {
		return
	}
	defer release()
	defer ro.finish()
	var in IngestRequest
	if !readBody(w, req, &in) {
		return
	}
	ro.tr.Lap("read_body")
	total := 0
	for _, t := range in.Ticks {
		total += len(t.Points)
	}
	if total > maxIngestPoints {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			httpError{Error: fmt.Sprintf("ingest of %d points exceeds the %d-point cap", total, maxIngestPoints)})
		return
	}
	accepted := 0
	for _, t := range in.Ticks {
		ids := make([]traj.ID, len(t.Points))
		pts := make([]geo.Point, len(t.Points))
		for i, p := range t.Points {
			ids[i] = p.ID
			pts[i] = geo.Point{X: p.X, Y: p.Y}
		}
		// ingestTick laps validate / wal_append / apply / fsync_wait onto
		// the trace, accumulating across the request's ticks.
		if err := r.ingestTick(ro.tr, t.Tick, ids, pts); err != nil {
			// A fail-stopped WAL is the server's problem, not the
			// request's: 503 with the latched error, so clients and
			// probes can tell "fix your payload" from "the disk died".
			status := http.StatusUnprocessableEntity
			if errors.Is(err, wal.ErrFailStopped) {
				status = http.StatusServiceUnavailable
			}
			// Ingest is transactional per tick: report what landed plus
			// the first failure.
			writeJSON(w, status, struct {
				IngestResponse
				httpError
			}{IngestResponse{AcceptedPoints: accepted}, httpError{Error: err.Error()}})
			return
		}
		accepted += len(t.Points)
	}
	resp := IngestResponse{AcceptedPoints: accepted}
	if ro.wantTrace {
		resp.Trace = ro.tr.Report()
	}
	writeJSON(w, http.StatusOK, resp)
	ro.tr.Lap("write")
}

func (r *Repository) handleFlush(w http.ResponseWriter, req *http.Request) {
	// Flush drives the compactor — mutating, heavyweight work — so it
	// shares the ingest class's budget.
	ro, release, ok := r.beginRequest(w, req, "flush", admit.Ingest)
	if !ok {
		return
	}
	defer release()
	defer ro.finish()
	err := r.Flush()
	ro.tr.Lap("execute")
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, wal.ErrFailStopped) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, r.Stats())
	ro.tr.Lap("write")
}

func (r *Repository) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, r.Stats())
}
