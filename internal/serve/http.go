package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// HTTP/JSON API of the repository server:
//
//	POST /v1/query   {"queries":[{"p":{"X":-8.61,"Y":41.15},"tick":42,"exact":false,"path_len":10}]}
//	                 → {"answers":[{"tick":42,"cell":{...},"covered":true,"ids":[...],...}]}
//	POST /v1/window  {"rect":{"MinX":...,"MinY":...,"MaxX":...,"MaxY":...},"from":10,"to":40,"exact":false}
//	                 → {"from":10,"to":40,"ids":[...],"ticks_probed":31,"sources":2}
//	POST /v1/ingest  {"ticks":[{"tick":99,"points":[{"id":7,"x":-8.61,"y":41.15}]}]}
//	                 → {"accepted_points":1}
//	POST /v1/flush   → compacts the whole hot tail synchronously
//	GET  /v1/stats   → Stats JSON
//	GET  /healthz    → 200 "ok"
//
// Batch sizes are capped so one request cannot monopolize the server.

const (
	maxBatchQueries = 4096
	maxIngestPoints = 1 << 20
	maxBodyBytes    = 64 << 20
)

// IngestPoint is one trajectory position in an ingest payload.
type IngestPoint struct {
	ID traj.ID `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// IngestTick is one tick's batch in an ingest payload.
type IngestTick struct {
	Tick   int           `json:"tick"`
	Points []IngestPoint `json:"points"`
}

// IngestRequest is the /v1/ingest body.
type IngestRequest struct {
	Ticks []IngestTick `json:"ticks"`
}

// IngestResponse reports how many points were accepted.
type IngestResponse struct {
	AcceptedPoints int `json:"accepted_points"`
}

// QueryRequest is the /v1/query body.
type QueryRequest struct {
	Queries []STRQRequest `json:"queries"`
}

// QueryResponse is the /v1/query reply.
type QueryResponse struct {
	Answers []STRQAnswer `json:"answers"`
}

// WindowRequest is the /v1/window body.
type WindowRequest struct {
	Rect  geo.Rect `json:"rect"`
	From  int      `json:"from"`
	To    int      `json:"to"`
	Exact bool     `json:"exact"`
}

// Handler returns the repository's HTTP mux.
func (r *Repository) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", r.handleQuery)
	mux.HandleFunc("POST /v1/window", r.handleWindow)
	mux.HandleFunc("POST /v1/ingest", r.handleIngest)
	mux.HandleFunc("POST /v1/flush", r.handleFlush)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type httpError struct {
	Error string `json:"error"`
}

func readBody(w http.ResponseWriter, req *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

func (r *Repository) handleQuery(w http.ResponseWriter, req *http.Request) {
	var in QueryRequest
	if !readBody(w, req, &in) {
		return
	}
	if len(in.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "no queries"})
		return
	}
	if len(in.Queries) > maxBatchQueries {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			httpError{Error: fmt.Sprintf("batch of %d exceeds the %d-query cap", len(in.Queries), maxBatchQueries)})
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{Answers: r.Batch(in.Queries)})
}

func (r *Repository) handleWindow(w http.ResponseWriter, req *http.Request) {
	var in WindowRequest
	if !readBody(w, req, &in) {
		return
	}
	res, err := r.Window(in.Rect, in.From, in.To, in.Exact)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (r *Repository) handleIngest(w http.ResponseWriter, req *http.Request) {
	var in IngestRequest
	if !readBody(w, req, &in) {
		return
	}
	total := 0
	for _, t := range in.Ticks {
		total += len(t.Points)
	}
	if total > maxIngestPoints {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			httpError{Error: fmt.Sprintf("ingest of %d points exceeds the %d-point cap", total, maxIngestPoints)})
		return
	}
	accepted := 0
	for _, t := range in.Ticks {
		ids := make([]traj.ID, len(t.Points))
		pts := make([]geo.Point, len(t.Points))
		for i, p := range t.Points {
			ids[i] = p.ID
			pts[i] = geo.Point{X: p.X, Y: p.Y}
		}
		if err := r.Ingest(t.Tick, ids, pts); err != nil {
			// Ingest is transactional per tick: report what landed plus
			// the first failure.
			writeJSON(w, http.StatusUnprocessableEntity, struct {
				IngestResponse
				httpError
			}{IngestResponse{AcceptedPoints: accepted}, httpError{Error: err.Error()}})
			return
		}
		accepted += len(t.Points)
	}
	writeJSON(w, http.StatusOK, IngestResponse{AcceptedPoints: accepted})
}

func (r *Repository) handleFlush(w http.ResponseWriter, _ *http.Request) {
	if err := r.Flush(); err != nil {
		writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, r.Stats())
}

func (r *Repository) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, r.Stats())
}
