package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppqtraj/internal/admit"
	"ppqtraj/internal/cache"
	"ppqtraj/internal/core"
	"ppqtraj/internal/exec"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/par"
	"ppqtraj/internal/repl"
	"ppqtraj/internal/traj"
	"ppqtraj/internal/wal"
)

// Options configures a Repository.
type Options struct {
	// Build is the quantizer configuration every sealed segment is built
	// with (core.DefaultOptions is a good start).
	Build core.Options
	// Index is the TPI configuration of every segment's engine. Index.GC
	// also fixes the repository's query grid: STRQ cells are g_c cells of
	// a global grid anchored at the origin, so answers do not depend on
	// how the data happens to be sharded.
	Index index.Options
	// Dir, when non-empty, persists sealed segments and the manifest
	// there; Open reloads them. Empty means memory-only.
	Dir string
	// HotTicks is the hot-tail span (in ticks) that triggers background
	// compaction (default 64).
	HotTicks int
	// KeepHotTicks is how many of the freshest ticks a regular compaction
	// leaves hot (default HotTicks/4). Flush compacts everything.
	KeepHotTicks int
	// MaxSegmentTicks caps the tick span of one sealed segment (default
	// 4 × HotTicks). A compaction draining a long backlog publishes a
	// chain of segments of at most this span instead of one giant shard,
	// keeping per-segment build latency and query fan-out granularity
	// bounded.
	MaxSegmentTicks int
	// CompactInterval is the compactor's idle wake-up period (default 1s);
	// ingest pressure wakes it immediately.
	CompactInterval time.Duration
	// Raw, when non-nil, attaches raw trajectory storage to every segment
	// engine so exact-mode queries verify against ground truth. It must
	// cover every ingested trajectory ID. Without it, exact queries on
	// compacted ticks return query.ErrNoRaw (hot-tail ticks are raw by
	// nature and always answer exactly).
	Raw *traj.Dataset
	// Workers bounds batch-query fan-out (0 = GOMAXPROCS).
	Workers int
	// CacheBytes budgets the shared decoded-cell cache sitting in front
	// of every sealed segment's compressed postings: repeated STRQ/window
	// probes of hot cells reuse decoded ID lists instead of re-running the
	// Huffman decode. 0 means the 64 MiB default; negative disables the
	// cache entirely.
	CacheBytes int64
	// DefaultQueryTimeout bounds every HTTP query request. A client's
	// ?timeout= parameter is clamped to it — a request can shorten the
	// server's deadline, never extend it. 0 means no default deadline
	// (client values are then capped at 10 minutes).
	DefaultQueryTimeout time.Duration
	// WALDir holds the hot tail's write-ahead log (default Dir + "/wal").
	// Only meaningful when Dir is set — a memory-only repository has
	// nothing durable for the log to recover into.
	WALDir string
	// WALSync is the log's sync policy: wal.SyncAlways (fsync before every
	// ingest ack — a crash at any instant loses zero acknowledged writes),
	// wal.SyncEvery (background fsync each WALSyncInterval — a crash loses
	// at most one interval), or wal.SyncNever (the OS flushes when it
	// pleases — a process crash loses nothing, a machine crash may).
	// Default wal.SyncEvery.
	WALSync wal.SyncPolicy
	// WALSyncInterval is the background fsync period under wal.SyncEvery
	// (default 100ms).
	WALSyncInterval time.Duration
	// WALSegmentBytes caps one WAL file's size before rotation (default
	// 16 MiB); smaller files let compaction reclaim log space sooner.
	WALSegmentBytes int64
	// GroupCommitWait, under wal.SyncAlways, is the group-commit batching
	// window: a committing ingest whose fsync has concurrent company
	// holds the window open this long so one fsync acknowledges many
	// batches. Lone writers never wait. 0 disables the window (commits
	// still batch with fsyncs already in flight).
	GroupCommitWait time.Duration
	// WALFS overrides the write-ahead log's filesystem (default the real
	// one). Tests inject wal.FaultFS here to exercise disk failures and
	// degraded mode deterministically.
	WALFS wal.FS
	// Admit configures HTTP admission control: per-class in-flight caps,
	// bounded queues, and per-client token-bucket quotas. The zero value
	// enables generous defaults; see admit.Options to tighten or disable
	// individual mechanisms.
	Admit admit.Options
	// Log receives operational log lines (orphan cleanup, WAL replay,
	// slow-query records) as leveled structured events. Defaults to a
	// text-format logger on stderr at Info; pass obs.Discard() for
	// silence.
	Log *obs.Logger
	// Metrics is the registry the repository publishes its series into
	// (and the WAL, admission, and cache series ride along). Defaults to
	// a fresh private registry; pass one to embed the server's series in
	// a larger process. Each repository needs its own registry.
	Metrics *obs.Registry
	// SlowQuery is the slow-request threshold: any admitted request whose
	// wall time meets or exceeds it emits one structured JSON log line
	// with its full per-stage breakdown. 0 disables the slow-query log.
	SlowQuery time.Duration
	// Executor selects the window executor: ExecutorIter (the default)
	// runs composed internal/exec iterator plans; ExecutorFused runs the
	// hand-fused STRQRange pipeline, kept compiled in as the benchmark
	// floor and transition escape hatch. Both produce point-for-point
	// identical answers (the equivalence suite enforces it); SetExecutor
	// switches a live repository.
	Executor string
	// ReplicateFrom, when non-empty, runs this repository as a follower
	// replica of the primary at the given base URL (e.g.
	// "http://10.0.0.1:8080"): a background applier streams the primary's
	// committed WAL records into the local ingest path, writes are
	// rejected with ErrNotLeader (HTTP 503 + leader_unavailable), and
	// /readyz gates on the staleness bound. Requires Dir — the follower
	// keeps its own WAL, which is exactly what makes its catch-up
	// incremental after a crash.
	ReplicateFrom string
	// ReplTransport overrides the follower's stream transport; setting it
	// also enables follower mode. Tests inject repl.FaultTransport here to
	// exercise stream failures deterministically.
	ReplTransport repl.Transport
	// MaxReplicaLagTicks is the follower readiness bound: /readyz answers
	// 503 while the replica lags the primary's applied watermark by more
	// than this many ticks (default 64). Reads keep serving regardless —
	// the bound gates routing, not answers.
	MaxReplicaLagTicks int
	// ReplBackoff is the follower's initial reconnect backoff (default
	// 100ms, doubling with jitter up to 50×).
	ReplBackoff time.Duration
	// WALRetainSegments keeps at least this many of the newest WAL files
	// out of reclamation even when fully sealed — slack for a follower
	// that disconnects briefly without a standing hold (default 0: pins
	// alone protect followers).
	WALRetainSegments int
}

// Window executor names accepted by Options.Executor and SetExecutor.
const (
	ExecutorFused = "fused"
	ExecutorIter  = "iter"
)

// DefaultCacheBytes is the decoded-cell cache budget used when
// Options.CacheBytes is 0.
const DefaultCacheBytes = 64 << 20

func (o Options) withDefaults() (Options, error) {
	if o.Index.GC <= 0 {
		return o, errors.New("serve: Index.GC must be > 0")
	}
	if o.Index.EpsS <= 0 {
		return o, errors.New("serve: Index.EpsS must be > 0")
	}
	if o.Build.UseCQC && o.Build.GS <= 0 {
		return o, errors.New("serve: Build.UseCQC requires Build.GS > 0")
	}
	if o.Build.FixedWords <= 0 && o.Build.Epsilon1 <= 0 {
		return o, errors.New("serve: Build.Epsilon1 must be > 0 in incremental mode")
	}
	if o.HotTicks <= 0 {
		o.HotTicks = 64
	}
	if o.KeepHotTicks <= 0 {
		o.KeepHotTicks = o.HotTicks / 4
	}
	if o.KeepHotTicks >= o.HotTicks {
		o.KeepHotTicks = o.HotTicks - 1
	}
	if o.MaxSegmentTicks <= 0 {
		o.MaxSegmentTicks = 4 * o.HotTicks
	}
	if o.CompactInterval <= 0 {
		o.CompactInterval = time.Second
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = DefaultCacheBytes
	}
	if o.WALDir == "" && o.Dir != "" {
		o.WALDir = filepath.Join(o.Dir, "wal")
	}
	if (o.ReplicateFrom != "" || o.ReplTransport != nil) && o.Dir == "" {
		return o, errors.New("serve: follower mode requires Dir (the replica persists its own WAL to resume from)")
	}
	if o.MaxReplicaLagTicks <= 0 {
		o.MaxReplicaLagTicks = 64
	}
	if o.WALSync == "" {
		o.WALSync = wal.SyncEvery
	}
	if o.Log == nil {
		o.Log = obs.NewLogger(os.Stderr, obs.LevelInfo, obs.FormatText)
	}
	switch o.Executor {
	case "":
		o.Executor = ExecutorIter
	case ExecutorFused, ExecutorIter:
	default:
		return o, fmt.Errorf("serve: unknown executor %q (want %q or %q)", o.Executor, ExecutorFused, ExecutorIter)
	}
	return o, nil
}

// manifestSegment is one sealed segment's manifest entry.
type manifestSegment struct {
	ID        uint64 `json:"id"`
	File      string `json:"file"`
	StartTick int    `json:"start_tick"`
	EndTick   int    `json:"end_tick"`
	Points    int    `json:"points"`
}

// manifest is the repository's crash-safe root: it is replaced atomically
// after each compaction, so a crash between segment write and manifest
// swap leaves at worst an orphaned segment file, never a corrupt view.
type manifest struct {
	Version       int               `json:"version"`
	NextSegmentID uint64            `json:"next_segment_id"`
	SealedThrough int               `json:"sealed_through"`
	Segments      []manifestSegment `json:"segments"`
}

const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 1
)

// Repository is the sharded trajectory store: sealed segments (cold,
// quantized, indexed) plus a hot tail (fresh, raw, exact), with a
// background compactor moving data from hot to cold. All public methods
// are safe for concurrent use.
type Repository struct {
	opts Options

	mu            sync.RWMutex // guards segs + sealedThrough (the routing view)
	segs          []*Segment   // ascending, disjoint tick ranges
	sealedThrough int          // ticks ≤ this are served by segments

	hot *hotTail

	// wal is the hot tail's write-ahead log (nil when the repository is
	// memory-only): every ingest is appended before the tail mutates, so
	// Open can rebuild the un-sealed tail after a crash.
	wal *wal.Log

	// cells is the shared decoded-cell cache (nil when disabled): one LRU
	// across every sealed segment, so budget flows to whichever segments
	// the workload actually hammers.
	cells *cache.Cache

	// admit gates HTTP traffic before any work happens: in-flight caps
	// per endpoint class, bounded queues, per-client quotas.
	admit *admit.Controller

	compactMu sync.Mutex // serializes compactions (background loop vs Flush)
	nextSegID uint64     // guarded by compactMu

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup

	// Set once during Open, before any goroutine starts.
	replayedPoints int64 // WAL points re-applied to the hot tail
	orphansRemoved int64 // unreferenced files deleted at startup

	// met holds every counter and histogram the serving layer owns; the
	// registry inside it is the single source /v1/stats and /metrics
	// render from. log is the structured operational logger.
	met *repoMetrics
	log *obs.Logger

	lastErr atomic.Value // string

	// draining flips when shutdown starts: /readyz reports 503 so load
	// balancers stop routing while in-flight requests finish.
	draining atomic.Bool

	// execIter selects the live window executor (true = iterator plans,
	// false = fused STRQRange). Atomic so SetExecutor can flip it under
	// concurrent queries — both executors answer identically, so a
	// mid-stream flip is safe.
	execIter atomic.Bool

	// Replication. shipper serves /v1/repl/stream on any persistent
	// repository; the rest is live only in follower mode
	// (Options.ReplicateFrom / ReplTransport).
	follower bool
	shipper  *repl.Shipper
	applier  *repl.Applier
	replStop context.CancelFunc
	replWG   sync.WaitGroup

	// appliedTick is the highest tick resident in this repository (-1
	// while empty): the primary's value rides the stream so followers can
	// bound their staleness, and a follower's value is the as_of_tick its
	// answers carry.
	appliedTick atomic.Int64
	// primaryTick is the primary's applied watermark as last reported
	// over the stream (math.MinInt64 until first contact). It freezes at
	// its last value when the primary disappears — the follower keeps
	// serving bounded-stale reads against its best knowledge.
	primaryTick atomic.Int64
}

// Open creates a repository (reloading persisted segments when opts.Dir
// holds a manifest) and starts its background compactor. Close must be
// called to stop it.
//
// Recovery sequence for a persistent repository: load the manifest
// (sealed segments), delete orphaned files a crash between segment write
// and manifest swap left behind, then replay the write-ahead log above
// the manifest's sealed watermark to rebuild the hot tail — including
// the per-trajectory lastSeen map, so the contiguity contract survives
// the restart exactly as if the process had never died.
func Open(opts Options) (*Repository, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Repository{
		opts:          opts,
		hot:           newHotTail(),
		sealedThrough: -1,
		kick:          make(chan struct{}, 1),
		stop:          make(chan struct{}),
		met:           newRepoMetrics(opts.Metrics),
		log:           opts.Log,
	}
	r.execIter.Store(opts.Executor == ExecutorIter)
	obs.RegisterRuntime(r.met.reg)
	if opts.CacheBytes > 0 {
		r.cells = cache.New(opts.CacheBytes)
	}
	admitOpts := opts.Admit
	admitOpts.Metrics = r.met.reg
	r.admit = admit.New(admitOpts)
	r.lastErr.Store("")
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
		if err := r.loadManifest(); err != nil {
			return nil, err
		}
		if err := r.gcOrphans(); err != nil {
			return nil, err
		}
	}
	// The floor must be in place before replay: it is what routes sealed
	// WAL records (already covered by segments) around the hot tail.
	r.hot.floor = r.sealedThrough
	if opts.Dir != "" {
		l, err := wal.Open(wal.Options{
			Dir:             opts.WALDir,
			Policy:          opts.WALSync,
			Interval:        opts.WALSyncInterval,
			SegmentBytes:    opts.WALSegmentBytes,
			GroupCommitWait: opts.GroupCommitWait,
			RetainSegments:  opts.WALRetainSegments,
			FS:              opts.WALFS,
			Metrics:         r.met.reg,
		}, r.replayRecord)
		if err != nil {
			return nil, err
		}
		r.wal = l
		if r.replayedPoints > 0 {
			r.log.Info("wal replay rebuilt the hot tail",
				"points", r.replayedPoints, "sealed_through", r.sealedThrough)
		}
	}
	// Seed the applied-tick watermark from whatever recovery produced:
	// sealed segments plus the replayed hot tail.
	applied := int64(r.sealedThrough)
	if _, hi, ok := r.hot.tickSpan(); ok && int64(hi) > applied {
		applied = int64(hi)
	}
	r.appliedTick.Store(applied)
	r.primaryTick.Store(math.MinInt64)
	if r.wal != nil {
		r.shipper = repl.NewShipper(repl.ShipperOptions{
			WAL:         r.wal,
			PrimaryTick: r.appliedTick.Load,
			Metrics:     r.met.reg,
			Log:         r.log,
		})
	}
	if opts.ReplicateFrom != "" || opts.ReplTransport != nil {
		r.follower = true
		tp := opts.ReplTransport
		if tp == nil {
			host, _ := os.Hostname()
			tp = &repl.HTTPTransport{
				Base: opts.ReplicateFrom,
				// Stable across restarts, so the primary's standing hold
				// moves with this follower instead of multiplying.
				Follower: host + ":" + opts.WALDir,
			}
		}
		ctx, cancel := context.WithCancel(context.Background())
		r.replStop = cancel
		r.applier = repl.NewApplier(repl.ApplierOptions{
			Transport: tp,
			// Resume from the follower's own durable record count: after a
			// crash the WAL replay above already rebuilt everything below
			// it, so catch-up is incremental by construction.
			From:    r.wal.NextRec(),
			Apply:   r.applyReplicated,
			OnBatch: r.noteBatch,
			Backoff: opts.ReplBackoff,
			Metrics: r.met.reg,
			Log:     r.log,
		})
		r.replWG.Add(1)
		go func() {
			defer r.replWG.Done()
			r.applier.Run(ctx)
		}()
	}
	r.registerSources()
	r.wg.Add(1)
	go r.compactLoop()
	return r, nil
}

// replayRecord applies one WAL record during Open. Records at or below
// the sealed watermark are already served by sealed segments — the
// compactor reclaims whole WAL files only once every record in them is
// sealed, so a surviving file can straddle the watermark. Records above
// it re-run the full ingest admission path: the WAL holds them in the
// exact order they originally passed it, so validation cannot fail on an
// intact log, and a record that fails anyway means the log does not match
// the manifest — refusing to open beats serving a silently diverged tail.
func (r *Repository) replayRecord(rec wal.Record) error {
	if rec.Tick <= r.sealedThrough {
		return nil
	}
	if err := r.hot.ingest(rec.Tick, rec.IDs, rec.Points, nil, nil); err != nil {
		return err
	}
	r.replayedPoints += int64(len(rec.IDs))
	return nil
}

// gcOrphans deletes files in the data dir that the manifest does not
// reference: a crash between a segment persist and the manifest swap
// leaks the freshly written .ppqs file (and possibly a temp file), and
// nothing would ever reclaim it — reopening always starts from the
// manifest. Only files this package itself names are touched.
func (r *Repository) gcOrphans() error {
	entries, err := os.ReadDir(r.opts.Dir)
	if err != nil {
		return err
	}
	referenced := make(map[string]bool, 2*len(r.segs))
	for _, s := range r.segs {
		referenced[s.File] = true
		referenced[zoneFileName(s.ID)] = true
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		ours := (strings.HasPrefix(name, "seg-") &&
			(strings.Contains(name, ".ppqs") || strings.Contains(name, ".zone.json"))) ||
			strings.HasPrefix(name, manifestName+".tmp")
		if !ours || referenced[name] {
			continue
		}
		if err := os.Remove(filepath.Join(r.opts.Dir, name)); err != nil {
			return fmt.Errorf("serve: removing orphaned %s: %w", name, err)
		}
		r.log.Info("removed orphaned file not referenced by the manifest", "file", name)
		removed++
	}
	r.orphansRemoved = int64(removed)
	if removed > 0 {
		return wal.SyncDir(r.opts.Dir)
	}
	return nil
}

// loadManifest restores the sealed-segment view from disk.
func (r *Repository) loadManifest() error {
	raw, err := os.ReadFile(filepath.Join(r.opts.Dir, manifestName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("serve: parsing manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return fmt.Errorf("serve: unsupported manifest version %d", m.Version)
	}
	sort.Slice(m.Segments, func(i, j int) bool { return m.Segments[i].StartTick < m.Segments[j].StartTick })
	for _, ms := range m.Segments {
		seg, err := loadSegment(r.opts.Dir, ms, r.opts.Index, r.opts.Raw)
		if err != nil {
			return err
		}
		if seg.zoneRebuilt {
			// Upgrade pre-zone-map directories in place — but only
			// best-effort: the zone map is pruning metadata, already
			// usable in memory, and a failed few-KB sidecar write must
			// not block serving an otherwise intact repository.
			if perr := seg.persistZone(r.opts.Dir); perr != nil {
				r.log.Warn("zone sidecar persist failed; continuing with the in-memory zone map",
					"segment", seg.ID, "err", perr)
			}
		}
		r.attachCache(seg)
		r.segs = append(r.segs, seg)
	}
	r.sealedThrough = m.SealedThrough
	r.nextSegID = m.NextSegmentID
	return nil
}

// writeManifest swaps in a fresh manifest reflecting the current sealed
// view. Callers hold compactMu; the segment list is read under mu.
func (r *Repository) writeManifest() error {
	r.mu.RLock()
	m := manifest{
		Version:       manifestVersion,
		NextSegmentID: r.nextSegID,
		SealedThrough: r.sealedThrough,
	}
	for _, s := range r.segs {
		m.Segments = append(m.Segments, manifestSegment{
			ID: s.ID, File: s.File,
			StartTick: s.StartTick, EndTick: s.EndTick, Points: s.Points,
		})
	}
	r.mu.RUnlock()
	blob, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	// durableSwap fsyncs the temp file before the rename (or a crash can
	// publish a manifest whose bytes never made it) and the directory
	// after it (or the rename itself can be lost and the old manifest
	// resurrected alongside already-reclaimed WAL files).
	_, err = durableSwap(r.opts.Dir, manifestName, func(f *os.File) (int64, error) {
		n, err := f.Write(append(blob, '\n'))
		return int64(n), err
	})
	if err != nil {
		return fmt.Errorf("serve: writing manifest: %w", err)
	}
	return nil
}

// attachCache wires the shared decoded-cell cache to a freshly built or
// reloaded segment's engine under a fresh owner token (no-op when the
// cache is disabled). Must run before the segment is published — engines
// are only safe for concurrent readers once their fields stop changing.
func (r *Repository) attachCache(seg *Segment) {
	if r.cells == nil {
		return
	}
	seg.CacheOwner = r.cells.NewOwner()
	seg.Eng.Idx.SetCache(r.cells, seg.CacheOwner)
}

// Close stops the background compactor, fsyncs and closes the
// write-ahead log, and drops the closed segments' decoded-cell cache
// entries. It does not flush the hot tail; call Flush first when the
// remaining hot points must be sealed — an unflushed tail is still safe
// on a persistent repository, because the WAL replays it on the next
// Open.
func (r *Repository) Close() error {
	// Stop replication first: the applier must not race the WAL close
	// (its in-flight fetch is cancelled, not awaited to timeout), and the
	// shipper's follower pins must release before the log shuts.
	if r.replStop != nil {
		r.replStop()
		r.replWG.Wait()
	}
	if r.shipper != nil {
		r.shipper.Close()
	}
	close(r.stop)
	r.wg.Wait()
	var err error
	if r.wal != nil {
		err = r.wal.Close()
	}
	if r.cells != nil {
		segs, _ := r.view()
		for _, s := range segs {
			r.cells.InvalidateOwner(s.CacheOwner)
		}
	}
	return err
}

// Ingest adds one tick of points (parallel id/point slices). Ticks at or
// below the sealed watermark are rejected, as are non-finite positions
// and per-trajectory sampling gaps; a rejected batch changes nothing.
//
// On a persistent repository the validated batch is appended to the
// write-ahead log before the hot tail mutates, and under wal.SyncAlways
// the append is fsynced before Ingest returns — an acknowledged batch
// then survives a crash at any instant. A WAL append failure rejects
// the batch untouched; a WAL commit (fsync) failure fail-stops the log:
// the batch is resident but reported failed, and every subsequent
// ingest is rejected with the latched disk error — after a disk lies
// about an fsync, nothing further can honestly be acknowledged.
func (r *Repository) Ingest(tick int, ids []traj.ID, pts []geo.Point) error {
	if r.follower {
		return ErrNotLeader
	}
	return r.ingestTick(nil, tick, ids, pts)
}

// ErrNotLeader rejects writes addressed to a follower replica: its data
// arrives over the replication stream only, so a direct write would fork
// history. The HTTP layer maps it to 503 with reason leader_unavailable.
var ErrNotLeader = errors.New("serve: not the leader: this replica follows a primary; write there")

// ingestTick is Ingest's body with the per-request trace threaded
// through: the validate / wal_append / apply / fsync_wait laps carve an
// HTTP ingest into the stages the slow-query log and the
// ppq_ingest_stage_seconds histograms report. tr may be nil (programmatic
// callers and WAL replay), costing one nil check per lap.
func (r *Repository) ingestTick(tr *obs.Trace, tick int, ids []traj.ID, pts []geo.Point) error {
	var lsn int64
	var logged func() error
	if r.wal != nil {
		logged = func() (err error) {
			lsn, err = r.wal.Append(wal.Record{Tick: tick, IDs: ids, Points: pts})
			tr.Lap("wal_append")
			return err
		}
	}
	if err := r.hot.ingest(tick, ids, pts, logged, tr); err != nil {
		r.met.ingestErrors.Inc()
		return err
	}
	if r.wal != nil {
		// The durability barrier runs outside the hot-tail lock so queries
		// proceed during the fsync, and after the mutation so the ack still
		// gates on it: a Commit error fails the ingest even though the
		// points are resident — an fsync failure means the disk is lying,
		// and the caller must not believe the write is durable.
		err := r.wal.Commit(lsn)
		tr.Lap("fsync_wait")
		if err != nil {
			r.lastErr.Store(err.Error())
			r.met.ingestErrors.Inc()
			return err
		}
	}
	r.met.ingestPoints.Add(int64(len(ids)))
	r.met.ingestBatches.Inc()
	r.met.batchPoints.Observe(float64(len(ids)))
	r.noteApplied(tick)
	if lo, hi, ok := r.hot.tickSpan(); ok && hi-lo+1 > r.opts.HotTicks {
		select {
		case r.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// noteApplied advances the applied-tick watermark (monotonic max).
func (r *Repository) noteApplied(tick int) {
	t := int64(tick)
	for {
		cur := r.appliedTick.Load()
		if t <= cur || r.appliedTick.CompareAndSwap(cur, t) {
			return
		}
	}
}

// noteBatch publishes the primary's applied watermark from one clean
// stream batch (empty keepalives included — that is how an idle
// follower's lag stays current).
func (r *Repository) noteBatch(b repl.Batch) {
	for {
		cur := r.primaryTick.Load()
		if b.PrimaryTick <= cur && cur != math.MinInt64 {
			return
		}
		if r.primaryTick.CompareAndSwap(cur, b.PrimaryTick) {
			return
		}
	}
}

// applyReplicated replays one stream batch on a follower. Each record
// takes the same path a primary ingest does — validation, WAL append,
// hot-tail mutation, compaction pressure — under one ingest-class
// admission slot per batch, so an overloaded follower slows its own
// catch-up instead of starving local queries. Durability is one fsync
// per network batch (not per record), which is what the follower's
// resume position advances by after a crash.
func (r *Repository) applyReplicated(ctx context.Context, recs []wal.Record) (int, error) {
	release, rej, ok := r.admit.Admit(ctx, admit.Ingest, "")
	if !ok {
		return 0, fmt.Errorf("serve: replication batch shed by admission (%s)", rej.Reason)
	}
	defer release()
	for i, rec := range recs {
		if err := r.applyReplicatedRecord(rec); err != nil {
			return i, err
		}
	}
	if err := r.wal.Sync(); err != nil {
		return len(recs), err
	}
	return len(recs), nil
}

// applyReplicatedRecord is ingestTick minus the per-record durability
// barrier (the batch fsync in applyReplicated covers it) and minus the
// leader check — the stream is the one writer a follower accepts.
func (r *Repository) applyReplicatedRecord(rec wal.Record) error {
	logged := func() (err error) {
		_, err = r.wal.Append(rec)
		return err
	}
	if err := r.hot.ingest(rec.Tick, rec.IDs, rec.Points, logged, nil); err != nil {
		r.met.ingestErrors.Inc()
		return err
	}
	r.met.ingestPoints.Add(int64(len(rec.IDs)))
	r.met.ingestBatches.Inc()
	r.met.batchPoints.Observe(float64(len(rec.IDs)))
	r.noteApplied(rec.Tick)
	if lo, hi, ok := r.hot.tickSpan(); ok && hi-lo+1 > r.opts.HotTicks {
		select {
		case r.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// ReplLag reports a follower's staleness: how many ticks the primary's
// applied watermark (as last reported over the stream) is ahead of this
// replica's, and whether that number is known at all — false until the
// first successful exchange after boot. On a primary the lag is 0 and
// always known. A partitioned follower keeps its last-known lag: the
// number is honest about what the replica has, even when the primary has
// moved on unseen (ppq_repl_connected tells operators which case they
// are in).
func (r *Repository) ReplLag() (ticks int64, known bool) {
	if !r.follower {
		return 0, true
	}
	pt := r.primaryTick.Load()
	if pt == math.MinInt64 {
		return 0, false
	}
	lag := pt - r.appliedTick.Load()
	if lag < 0 {
		lag = 0
	}
	return lag, true
}

// IngestColumn ingests a traj.Column.
func (r *Repository) IngestColumn(col *traj.Column) error {
	return r.Ingest(col.Tick, col.IDs, col.Points)
}

// Flush synchronously compacts the entire hot tail into sealed segments.
func (r *Repository) Flush() error {
	return r.compactOnce(true)
}

// compactLoop is the background compactor: it wakes on ingest pressure or
// the idle interval and drains the hot tail's older ticks.
func (r *Repository) compactLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.opts.CompactInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-r.kick:
		case <-ticker.C:
		}
		if err := r.compactOnce(false); err != nil {
			r.lastErr.Store(err.Error())
		}
	}
}

// compactOnce drains hot ticks ≤ bound into one sealed segment. With
// force, everything goes; otherwise the freshest KeepHotTicks stay hot
// and the run is skipped entirely when the tail is below the HotTicks
// threshold. The build runs without any repository lock — queries and
// ingest proceed throughout — and the new segment is published atomically
// before the hot tail is trimmed, so every point stays queryable at every
// instant.
func (r *Repository) compactOnce(force bool) error {
	r.compactMu.Lock()
	defer r.compactMu.Unlock()

	lo, hi, ok := r.hot.tickSpan()
	if !ok {
		return nil
	}
	span := hi - lo + 1
	if !force && span <= r.opts.HotTicks {
		return nil
	}
	bound := hi
	if !force {
		bound = hi - r.opts.KeepHotTicks
	}
	if bound < lo {
		return nil
	}
	// Freeze: from here on no ingest can land at tick ≤ bound, so the
	// snapshot below is complete and stays complete.
	r.hot.freeze(bound)
	cols := r.hot.snapshot(bound)

	// Drain in chunks of at most MaxSegmentTicks, publishing each sealed
	// segment as soon as it is ready so readers migrate progressively.
	for len(cols) > 0 {
		n := 1
		for n < len(cols) && cols[n].Tick-cols[0].Tick < r.opts.MaxSegmentTicks {
			n++
		}
		chunk := cols[:n]
		cols = cols[n:]
		chunkEnd := chunk[n-1].Tick

		id := r.nextSegID
		seg, err := buildSegment(id, chunk, r.opts.Build, r.opts.Index, r.opts.Raw)
		if err != nil {
			return err
		}
		r.attachCache(seg)
		if r.opts.Dir != "" {
			if err := seg.persist(r.opts.Dir); err != nil {
				return err
			}
			// The zone sidecar rides the same publish sequence: written
			// durably before the manifest references the segment, and
			// rebuildable from the blob if a crash lands in between.
			if err := seg.persistZone(r.opts.Dir); err != nil {
				return err
			}
		}
		r.nextSegID = id + 1

		// Publish: segment visible and routing watermark advanced in one
		// critical section, then the (now shadowed) hot columns dropped.
		r.mu.Lock()
		r.segs = append(r.segs, seg)
		r.sealedThrough = chunkEnd
		r.mu.Unlock()
		r.hot.trim(chunkEnd)

		r.met.compactions.Inc()
		r.met.compactedPoints.Add(int64(seg.Points))
		if r.opts.Dir != "" {
			if err := r.writeManifest(); err != nil {
				return err
			}
		}
	}

	// Empty trailing ticks up to bound are sealed too (there is nothing
	// there to serve, but the watermark must not regress on reload). In
	// the common case the last chunk ends exactly at bound and its
	// writeManifest above already published this watermark — rewriting a
	// byte-identical manifest would cost two more fsyncs per compaction.
	r.mu.Lock()
	advanced := bound > r.sealedThrough
	if advanced {
		r.sealedThrough = bound
	}
	sealed := r.sealedThrough
	r.mu.Unlock()
	if r.opts.Dir != "" {
		if advanced {
			if err := r.writeManifest(); err != nil {
				return err
			}
		}
		// Only after the manifest durably references the new segments may
		// the WAL records covering their ticks be reclaimed — the reverse
		// order would leave a crash window with the points in neither tier.
		if r.wal != nil {
			return r.wal.TruncateThrough(sealed)
		}
	}
	return nil
}

// view snapshots the routing state: the published segment list and the
// sealed watermark. Segments are immutable, so the caller can query them
// lock-free afterwards.
func (r *Repository) view() (segs []*Segment, sealedThrough int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.segs, r.sealedThrough
}

// findSegment returns the segment covering tick, or nil. Segments are
// ascending and disjoint.
func findSegment(segs []*Segment, tick int) *Segment {
	i := sort.Search(len(segs), func(i int) bool { return segs[i].EndTick >= tick })
	if i < len(segs) && segs[i].Covers(tick) {
		return segs[i]
	}
	return nil
}

// QueryCell maps a point to its repository query cell: the g_c cell of
// the global origin-anchored grid. Anchoring the grid at the origin —
// rather than at each segment's region rectangles — makes the query
// region a pure function of the point, so every shard (and a differently
// sharded replica) answers the same question.
func (r *Repository) QueryCell(p geo.Point) geo.Rect {
	gc := r.opts.Index.GC
	x := math.Floor(p.X/gc) * gc
	y := math.Floor(p.Y/gc) * gc
	return geo.Rect{MinX: x, MinY: y, MaxX: x + gc, MaxY: y + gc}
}

// STRQRequest is one repository range query.
type STRQRequest struct {
	P       geo.Point `json:"p"`
	Tick    int       `json:"tick"`
	Exact   bool      `json:"exact"`
	PathLen int       `json:"path_len"` // > 0: also reconstruct each match's next positions
}

// Validate is the single copy of the request's admission rules, enforced
// by Repository.STRQ (as an error) and by the HTTP layer (as a 400).
func (q STRQRequest) Validate() error {
	if !q.P.IsFinite() {
		return fmt.Errorf("non-finite query point %v", q.P)
	}
	if q.PathLen < 0 {
		return fmt.Errorf("negative path length %d", q.PathLen)
	}
	return nil
}

// validateWindow is the single copy of the window query's admission
// rules, enforced by Repository.Window (as an error) and by the HTTP
// layer (as a 400).
func validateWindow(rect geo.Rect, from, to int) error {
	if to < from {
		return fmt.Errorf("window [%d, %d] is empty", from, to)
	}
	if !rect.IsFinite() {
		return fmt.Errorf("non-finite window rect %+v", rect)
	}
	if rect.MinX > rect.MaxX || rect.MinY > rect.MaxY {
		return fmt.Errorf("inverted window rect %+v", rect)
	}
	return nil
}

// Path is a reconstructed sub-trajectory: Points[i] is the position at
// tick Start+i.
type Path struct {
	Start  int         `json:"start"`
	Points []geo.Point `json:"points"`
}

// STRQAnswer is one repository query answer.
type STRQAnswer struct {
	Tick       int              `json:"tick"`
	Cell       geo.Rect         `json:"cell"`
	Covered    bool             `json:"covered"`
	Source     string           `json:"source"` // "segment:<id>", "hot", or "none"
	IDs        []traj.ID        `json:"ids"`
	Candidates int              `json:"candidates"`
	Visited    int              `json:"visited"`
	Paths      map[traj.ID]Path `json:"paths,omitempty"`
	Err        string           `json:"error,omitempty"`
}

// strqTick routes one rectangle probe to the tier owning the tick. The
// loop closes the publish race: a tick the routing view calls hot may be
// trimmed by a concurrent compaction before the hot probe runs, in which
// case the watermark has necessarily advanced and the retry lands on the
// freshly published segment.
func (r *Repository) strqTick(ctx context.Context, cell geo.Rect, tick int, exact bool) (ans STRQAnswer, err error) {
	ans = STRQAnswer{Tick: tick, Cell: cell, Source: "none"}
	for {
		if err := ctx.Err(); err != nil {
			return ans, err
		}
		segs, sealed := r.view()
		if tick <= sealed {
			seg := findSegment(segs, tick)
			if seg == nil {
				return ans, nil
			}
			res, err := seg.Eng.STRQRect(ctx, cell, tick, exact, nil)
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return ans, err
				}
				return ans, fmt.Errorf("serve: segment %d: %w", seg.ID, err)
			}
			ans.Covered = res.Covered
			ans.IDs = res.IDs
			ans.Candidates = res.Candidates
			ans.Visited = res.Visited
			ans.Source = fmt.Sprintf("segment:%d", seg.ID)
			return ans, nil
		}
		ids, covered := r.hot.strqRect(cell, tick)
		if covered {
			ans.Covered = true
			ans.IDs = ids
			ans.Candidates = len(ids)
			ans.Source = "hot"
			return ans, nil
		}
		if _, sealed2 := r.view(); sealed2 == sealed {
			return ans, nil // genuinely no data at this tick
		}
	}
}

// STRQ answers "who was in the query cell of p at tick". Ticks at or
// below the sealed watermark route to the covering segment's engine
// (approximate: recall 1 by the local-search guarantee; exact: verified
// against raw storage); fresher ticks are answered exactly from the raw
// hot tail. ctx bounds the work: a cancelled or expired context aborts
// the query and returns the context error.
func (r *Repository) STRQ(ctx context.Context, req STRQRequest) (*STRQAnswer, error) {
	r.met.queries.Inc()
	// Same rules as the HTTP layer, so programmatic callers get an error
	// instead of a silent empty answer.
	if err := req.Validate(); err != nil {
		r.met.queryErrors.Inc()
		return nil, fmt.Errorf("serve: %w", err)
	}
	ans, err := r.strqTick(ctx, r.QueryCell(req.P), req.Tick, req.Exact)
	if err != nil {
		r.met.queryErrors.Inc()
		return nil, err
	}
	if req.PathLen > 0 && len(ans.IDs) > 0 {
		ans.Paths = make(map[traj.ID]Path, len(ans.IDs))
		for _, id := range ans.IDs {
			// Per-ID check: a wide match list reconstructs many paths, and
			// cancellation latency must not grow with the match count.
			if err := ctx.Err(); err != nil {
				r.met.queryErrors.Inc()
				return nil, err
			}
			ans.Paths[id] = r.Path(ctx, id, req.Tick, req.PathLen)
		}
		if err := ctx.Err(); err != nil {
			r.met.queryErrors.Inc()
			return nil, err
		}
	}
	return &ans, nil
}

// Batch answers many queries concurrently on a bounded worker pool.
// Per-query failures land in the answer's Err field instead of failing
// the batch; a context cancelled mid-batch marks the remaining answers
// with the context error instead of leaving them zero-valued.
func (r *Repository) Batch(ctx context.Context, reqs []STRQRequest) []STRQAnswer {
	out := make([]STRQAnswer, len(reqs))
	par.ForCtx(ctx, par.Workers(r.opts.Workers), len(reqs), 1, func(ctx context.Context, _, lo, hi int) { //nolint:errcheck // context failures land per-answer
		for i := lo; i < hi; i++ {
			ans, err := r.STRQ(ctx, reqs[i])
			if err != nil {
				out[i] = STRQAnswer{Tick: reqs[i].Tick, Cell: r.QueryCell(reqs[i].P), Err: err.Error()}
				continue
			}
			out[i] = *ans
		}
	})
	if err := ctx.Err(); err != nil {
		// ForCtx may have skipped the fan-out entirely; make every
		// unanswered slot carry the context error.
		//ppqvet:allow ctxcancel this loop only runs once ctx is already
		// done — it relabels the answer slice, bounded by len(reqs).
		for i := range out {
			if out[i].Source == "" && out[i].Err == "" {
				out[i] = STRQAnswer{Tick: reqs[i].Tick, Cell: r.QueryCell(reqs[i].P), Err: err.Error()}
			}
		}
	}
	return out
}

// Path reconstructs trajectory id over ticks [from, from+l), stitching
// the answer across every sealed segment it spans plus the hot tail.
// Sealed ranges return the quantized reconstruction (deviation ≤ the
// summary's bound); hot ranges return raw points. Cancellation is
// best-effort: a done context stops the stitching walk and returns the
// (possibly partial) path built so far — callers that must surface the
// cancellation check ctx.Err() themselves, as STRQ does.
func (r *Repository) Path(ctx context.Context, id traj.ID, from, l int) Path {
	for {
		segs, sealed := r.view()
		out := r.pathFrom(segs, sealed, id, from, l)
		// A compaction that published mid-walk may have trimmed hot ticks
		// the walk still expected; the moved watermark flags it.
		if ctx.Err() != nil {
			return out
		}
		if _, sealed2 := r.view(); sealed2 == sealed || len(out.Points) >= l {
			return out
		}
	}
}

// pathFrom is one stitching pass over a fixed routing view. The walk
// shares the window planner's span splitter (exec.SplitSpan), so the
// two layers agree on segment-boundary clipping by construction.
func (r *Repository) pathFrom(segs []*Segment, sealed int, id traj.ID, from, l int) Path {
	out := Path{Start: from}
	started := false
	gap := false
	cursor := from
	end := from + l
	exec.SplitSpan(from, end-1, len(segs), func(i int) exec.TickRange {
		return exec.TickRange{Lo: segs[i].StartTick, Hi: segs[i].EndTick}
	}, func(i int, sub exec.TickRange) {
		// A segment entirely behind the stitch cursor (or any segment
		// once the path is complete or broken) contributes nothing.
		if gap || cursor >= end || sub.Hi < cursor {
			return
		}
		pts, st := segs[i].reconstructedPath(id, cursor, end-cursor)
		if len(pts) == 0 {
			return
		}
		if !started {
			out.Start = st
			started = true
		} else if st != out.Start+len(out.Points) {
			gap = true // trajectory ended and this is another life of the ID
			return
		}
		out.Points = append(out.Points, pts...)
		cursor = st + len(pts)
	})
	if gap {
		return out
	}
	if cursor < end && cursor > sealed || !started {
		hotFrom := cursor
		if hotFrom <= sealed {
			hotFrom = sealed + 1
		}
		pts, st := r.hot.path(id, hotFrom, end-hotFrom)
		if len(pts) > 0 {
			if !started {
				out.Start = st
				out.Points = pts
			} else if st == out.Start+len(out.Points) {
				out.Points = append(out.Points, pts...)
			}
		}
	}
	return out
}

// WindowResult is a time-window query answer: every trajectory that
// passed through the rectangle at some tick in [From, To].
type WindowResult struct {
	From    int       `json:"from"`
	To      int       `json:"to"`
	IDs     []traj.ID `json:"ids"`
	Ticks   int       `json:"ticks_probed"`
	Sources int       `json:"sources"` // segments + hot tails overlapping the span
	// SegmentsSkipped counts overlapping segments the zone-map planner
	// pruned without scanning.
	SegmentsSkipped int `json:"segments_skipped,omitempty"`
	// AsOfTick is the repository's applied-tick watermark when the answer
	// was computed (-1 while empty). On a follower this is the freshness
	// the caller actually got: a disconnected replica keeps answering with
	// an honest, possibly stale, as_of_tick instead of erroring.
	AsOfTick int64 `json:"as_of_tick"`
}

// Window answers the window query with the segment-native range executor:
// the span is split at segment boundaries, segments whose zone map cannot
// intersect the query's local-search area are skipped outright, one
// STRQRange per surviving segment walks its postings once for the whole
// sub-span (fanned out on the bounded worker pool), the hot tail is
// scanned under a single lock for the residual span above the sealed
// watermark, and the per-tick columns are merged in tick order. The
// routing view is snapshotted once per request; if a compaction moves the
// sealed watermark mid-flight, the request re-plans against the new view,
// so the answer always reflects one consistent snapshot. Answers are
// point-for-point identical to the per-tick reference path
// (WindowPerTick); a cancelled or expired context aborts the scatter and
// returns the context error.
func (r *Repository) Window(ctx context.Context, rect geo.Rect, from, to int, exact bool) (*WindowResult, error) {
	// Counted at entry like STRQ, so query_errors can never exceed
	// queries in the stats.
	r.met.queries.Inc()
	r.met.winQueries.Inc()
	if err := validateWindow(rect, from, to); err != nil {
		r.met.queryErrors.Inc()
		return nil, fmt.Errorf("serve: %w", err)
	}
	res, err := r.windowRange(ctx, rect, from, to, exact)
	if err != nil {
		r.met.queryErrors.Inc()
		return nil, err
	}
	res.AsOfTick = r.appliedTick.Load()
	return res, nil
}

// maxWindowReplans bounds how many times windowRange restarts after the
// sealed watermark moved mid-execution before handing the request to the
// per-tick executor (whose per-probe routing tolerates a moving
// watermark): without the cap, a wide window on a server whose
// compactions outpace the scan could re-run its whole fan-out forever.
const maxWindowReplans = 3

// windowRange is Window's planner and executor. It retries from scratch
// when the sealed watermark moves during execution: ticks the plan
// expected in the hot tail may have been compacted (and trimmed) under
// it, and the freshly published segment is the only tier still serving
// them. Retries are rare (one per compaction at most) and capped.
func (r *Repository) windowRange(ctx context.Context, rect geo.Rect, from, to int, exact bool) (*WindowResult, error) {
	tr := obs.TraceFrom(ctx)
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		segs, sealed := r.view()

		// Greedy statistics-free plan: split the span at segment
		// boundaries, score each sub-span by zone-map selectivity
		// (populated-cell overlap × tick-span overlap), prune scans the
		// zone map proves empty, and order the rest largest first so the
		// parallel fan-out's tail stays short.
		ordered, pruned := planWindow(segs, rect, from, to)
		sources := len(ordered) + len(pruned)
		skipped := len(pruned)
		skippedTicks := 0
		for _, p := range pruned {
			skippedTicks += segs[p.ID].Eng.Idx.CoveredTicks(p.Span.Lo, p.Span.Hi)
		}
		useIter := r.execIter.Load()
		tr.Lap("plan")

		// One scan per surviving segment, on the same bounded pool Batch
		// uses — a wide window over a long-lived repository can overlap
		// hundreds of segments. Both executors fill the same shardResult
		// shape, so retry, telemetry, and merge below are shared.
		results := make([]shardResult, len(ordered))
		errs := make([]error, len(ordered))
		if err := par.ForCtx(ctx, par.Workers(r.opts.Workers), len(ordered), 1, func(ctx context.Context, _, wlo, whi int) {
			for i := wlo; i < whi; i++ {
				sc := ordered[i]
				if useIter {
					results[i], errs[i] = runIterShard(ctx, segs[sc.ID], rect, sc.Span.Lo, sc.Span.Hi, exact, tr)
				} else {
					results[i], errs[i] = runFusedShard(ctx, segs[sc.ID], rect, sc.Span.Lo, sc.Span.Hi, exact)
				}
			}
		}); err != nil {
			return nil, err
		}
		for i, err := range errs {
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return nil, err
				}
				return nil, fmt.Errorf("serve: segment %d: %w", segs[ordered[i].ID].ID, err)
			}
		}
		tr.Lap("segment_scan")

		// Hot residual: only ticks above the snapshot's watermark, under
		// a single hot-tail lock. Hot points are raw, so approximate and
		// exact mode coincide.
		var (
			hotIDs     []traj.ID
			hotCovered int
			hotScanned bool
		)
		if to > sealed {
			cols, covered, hotOverlaps := r.hot.scanRange(rect, max(from, sealed+1), to)
			hotCovered = covered
			if hotOverlaps {
				sources++
			}
			if useIter {
				var err error
				if hotIDs, err = runIterHot(ctx, cols, max(from, sealed+1), to, tr); err != nil {
					return nil, err
				}
				hotScanned = hotOverlaps
			} else {
				for _, c := range cols {
					hotIDs = append(hotIDs, c.ids...)
				}
			}
		}
		tr.Lap("hot_scan")

		// A watermark move during execution means some planned-hot ticks
		// may have migrated to a segment after the hot scan read (or
		// missed) them — re-plan against the new view. Segments are
		// immutable and the watermark only advances, so a stable
		// comparison proves the executed plan covered every tick. Past
		// the replan cap, the per-tick executor finishes the request: its
		// per-probe routing re-routes freshly sealed ticks on the fly.
		if _, sealed2 := r.view(); sealed2 != sealed {
			if attempt+1 < maxWindowReplans {
				continue
			}
			return r.windowPerTickScan(ctx, rect, from, to, exact)
		}

		// Telemetry lands only for the attempt that survived the
		// watermark recheck, so a re-planned request counts once.
		r.met.winSegsScanned.Add(int64(len(ordered)))
		r.met.winSegsSkipped.Add(int64(skipped))
		tr.Add("segments_scanned", int64(len(ordered)))
		tr.Add("segments_skipped", int64(skipped))

		// Merge: flatten every column and sort-dedup once. Columns are
		// per-tick ID sets, so the flat list is mostly runs of near-equal
		// values — a single sort beats per-ID map inserts by a wide
		// margin at window scale.
		probed := skippedTicks + hotCovered
		total := len(hotIDs)
		var scan index.ScanStats
		var scanRows, verifyRows int64
		for i := range results {
			rr := &results[i]
			probed += rr.covered
			scan.Add(rr.scan)
			scanRows += rr.scanRows
			verifyRows += int64(rr.candidates)
			total += len(rr.ids)
		}
		r.met.winCellsScanned.Add(int64(scan.CellsScanned))
		r.met.winCellsSkipped.Add(int64(scan.CellsSkipped))
		tr.Add("cells_scanned", int64(scan.CellsScanned))
		tr.Add("cells_skipped", int64(scan.CellsSkipped))
		tr.Add("cache_hits", int64(scan.CacheHits))
		tr.Add("cache_misses", int64(scan.CacheMisses))
		tr.Add("bytes_decoded", scan.DecodedBytes)
		tr.Add("decode_us", scan.DecodeNanos/1e3)
		tr.Add("ticks_probed", int64(probed))
		flat := make([]traj.ID, 0, total)
		for i := range results {
			flat = append(flat, results[i].ids...)
		}
		flat = append(flat, hotIDs...)
		slices.Sort(flat)
		res := &WindowResult{From: from, To: to, Ticks: probed, Sources: sources, SegmentsSkipped: skipped}
		if len(flat) > 0 { // nil, not empty-but-allocated, keeps the JSON stable
			res.IDs = traj.DedupSorted(flat)
		}
		tr.Lap("merge")

		// Executor telemetry, recorded only for iterator plans (the
		// fused pipeline has no operator boundaries to count at): one
		// plan, its operator count, and per-operator emitted-row
		// aggregates (scan, verify, hot, merge).
		if useIter {
			operators := int64(len(ordered)) * 2 // scan + verify per shard
			if exact {
				operators += int64(len(ordered)) // exact-verify sink
			}
			if hotScanned {
				operators++
			}
			operators++ // the final merge
			r.met.execPlans.Inc()
			r.met.execOperators.Add(operators)
			r.met.execOpsPerPlan.Observe(float64(operators))
			r.met.execOpRows.Observe(float64(scanRows))
			r.met.execOpRows.Observe(float64(verifyRows))
			if hotScanned {
				r.met.execOpRows.Observe(float64(len(hotIDs)))
			}
			r.met.execOpRows.Observe(float64(len(res.IDs)))
			tr.Add("exec_operators", operators)
		}
		return res, nil
	}
}

// WindowPerTick is the legacy window executor: one worker per overlapping
// shard, each probing its sub-span tick by tick through the same routing
// used by single STRQs. It remains the reference implementation — the
// equivalence suite asserts Window matches it point for point, and the
// window benchmark uses it as the baseline. New callers should use
// Window.
func (r *Repository) WindowPerTick(ctx context.Context, rect geo.Rect, from, to int, exact bool) (*WindowResult, error) {
	// Counted at entry like STRQ, so query_errors can never exceed
	// queries in the stats.
	r.met.queries.Inc()
	if err := validateWindow(rect, from, to); err != nil {
		r.met.queryErrors.Inc()
		return nil, fmt.Errorf("serve: %w", err)
	}
	if err := ctx.Err(); err != nil {
		r.met.queryErrors.Inc()
		return nil, err
	}
	res, err := r.windowPerTickScan(ctx, rect, from, to, exact)
	if err != nil {
		r.met.queryErrors.Inc()
		return nil, err
	}
	res.AsOfTick = r.appliedTick.Load()
	return res, nil
}

// windowPerTickScan is the per-tick executor body, shared by
// WindowPerTick and windowRange's replan-cap fallback (the caller owns
// validation and error accounting).
func (r *Repository) windowPerTickScan(ctx context.Context, rect geo.Rect, from, to int, exact bool) (*WindowResult, error) {
	// Plan the shards against a stable routing view: if a compaction moves
	// the watermark while we are reading the two tiers, replan (the ticks
	// it just sealed would otherwise fall between the snapshots).
	var (
		segs         []*Segment
		sealed       int
		hotLo, hotHi int
		hotOK        bool
	)
	for {
		segs, sealed = r.view()
		hotLo, hotHi, hotOK = r.hot.tickSpan()
		if _, sealed2 := r.view(); sealed2 == sealed {
			break
		}
	}
	type shard struct {
		seg    *Segment // nil = hot tail
		lo, hi int
	}
	var shards []shard
	for _, s := range segs {
		lo, hi := max(from, s.StartTick), min(to, s.EndTick)
		if lo <= hi {
			shards = append(shards, shard{seg: s, lo: lo, hi: hi})
		}
	}
	if to > sealed && hotOK {
		// Clip the hot shard to ticks that can actually hold data — the
		// caller-supplied bound may be astronomically far in the future,
		// and probing empty ticks one by one would let a single request
		// monopolize the server.
		lo, hi := max(from, max(sealed+1, hotLo)), min(to, hotHi)
		if lo <= hi {
			shards = append(shards, shard{seg: nil, lo: lo, hi: hi})
		}
	}
	// One worker per shard, on the same bounded pool Batch uses — a wide
	// window over a long-lived repository can overlap hundreds of
	// segments, and unbounded goroutine fan-out would let one request
	// monopolize the server.
	results := make([][]traj.ID, len(shards))
	errs := make([]error, len(shards))
	ticks := make([]int, len(shards))
	runShard := func(ctx context.Context, i int) error {
		sh := shards[i]
		seen := make(map[traj.ID]struct{})
		for t := sh.lo; t <= sh.hi; t++ {
			// The per-tick check is what makes cancellation prompt: a wide
			// window over a long-lived repository probes thousands of
			// ticks, and each probe is the natural stopping point.
			if err := ctx.Err(); err != nil {
				return err
			}
			var ids []traj.ID
			if sh.seg != nil {
				res, err := sh.seg.Eng.STRQRect(ctx, rect, t, exact, nil)
				if err != nil {
					return err
				}
				if !res.Covered {
					continue
				}
				ids = res.IDs
			} else {
				// strqTick re-routes ticks a concurrent compaction
				// sealed after the shard plan was made.
				ans, err := r.strqTick(ctx, rect, t, exact)
				if err != nil {
					return err
				}
				if !ans.Covered {
					continue
				}
				ids = ans.IDs
			}
			ticks[i]++
			for _, id := range ids {
				seen[id] = struct{}{}
			}
		}
		out := make([]traj.ID, 0, len(seen))
		for id := range seen {
			out = append(out, id)
		}
		results[i] = out
		return nil
	}
	if err := par.ForCtx(ctx, par.Workers(r.opts.Workers), len(shards), 1, func(ctx context.Context, _, wlo, whi int) {
		for i := wlo; i < whi; i++ {
			errs[i] = runShard(ctx, i)
		}
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := make(map[traj.ID]struct{})
	probed := 0
	for i := range shards {
		probed += ticks[i]
		for _, id := range results[i] {
			merged[id] = struct{}{}
		}
	}
	res := &WindowResult{From: from, To: to, Ticks: probed, Sources: len(shards)}
	for id := range merged {
		res.IDs = append(res.IDs, id)
	}
	sort.Slice(res.IDs, func(i, j int) bool { return res.IDs[i] < res.IDs[j] })
	obs.TraceFrom(ctx).Lap("per_tick_scan")
	return res, nil
}

// Stats is a point-in-time snapshot of the repository's state and
// counters (the /v1/stats payload).
type Stats struct {
	Segments        int    `json:"segments"`
	SegmentPoints   int    `json:"segment_points"`
	HotPoints       int    `json:"hot_points"`
	SealedThrough   int    `json:"sealed_through"`
	IngestedPoints  int64  `json:"ingested_points"`
	Compactions     int64  `json:"compactions"`
	CompactedPoints int64  `json:"compacted_points"`
	Queries         int64  `json:"queries"`
	QueryErrors     int64  `json:"query_errors"`
	RawAccesses     int64  `json:"raw_accesses"`
	DiskBytes       int64  `json:"disk_bytes"`
	LastError       string `json:"last_error,omitempty"`
	// Degraded is true once the write-ahead log has latched a disk
	// failure: ingest is fail-stopped (503s) while reads keep serving.
	// Probes should alert on this bit, not string-match last_error.
	Degraded bool `json:"degraded"`
	// Cache reports the shared decoded-cell cache (all-zero when the
	// cache is disabled).
	Cache cache.Stats `json:"cell_cache"`
	// WAL reports the hot tail's write-ahead log (all-zero when the
	// repository is memory-only).
	WAL wal.Stats `json:"wal"`
	// WALReplayedPoints is how many logged points this process re-applied
	// to the hot tail at startup (0 after a graceful flush+close).
	WALReplayedPoints int64 `json:"wal_replayed_points"`
	// OrphansRemoved is how many unreferenced data files startup deleted.
	OrphansRemoved int64 `json:"orphans_removed"`
	// Window reports the window range-executor's planner telemetry.
	Window WindowStats `json:"window"`
	// Admission reports the overload valve: per-class in-flight /
	// shed counters and client-quota rejections.
	Admission admit.Stats `json:"admission"`
	// Repl reports replication: absent on a memory-only repository,
	// otherwise role "primary" with shipper counters, plus the stream and
	// staleness state in follower mode.
	Repl *ReplStats `json:"repl,omitempty"`
}

// ReplStats is the /v1/stats replication section.
type ReplStats struct {
	Role           string `json:"role"` // "primary" or "follower"
	LagTicks       int64  `json:"lag_ticks"`
	LagKnown       bool   `json:"lag_known"`
	AppliedTick    int64  `json:"applied_tick"`
	Connected      bool   `json:"connected"`
	NextLSN        int64  `json:"next_lsn"`
	AppliedRecords int64  `json:"applied_records"`
	AppliedPoints  int64  `json:"applied_points"`
	Reconnects     int64  `json:"reconnects"`
	CorruptBatches int64  `json:"corrupt_batches"`
	StreamRequests int64  `json:"stream_requests"`
	ShippedRecords int64  `json:"shipped_records"`
	FollowerHolds  int    `json:"follower_holds"`
}

// replStats assembles the replication stats section (nil when the
// repository has no WAL and therefore neither shipper nor applier).
func (r *Repository) replStats() *ReplStats {
	if r.shipper == nil && r.applier == nil {
		return nil
	}
	rs := &ReplStats{Role: "primary", AppliedTick: r.appliedTick.Load()}
	if r.shipper != nil {
		ss := r.shipper.Stats()
		rs.StreamRequests = ss.StreamRequests
		rs.ShippedRecords = ss.ShippedRecords
		rs.FollowerHolds = ss.Holds
	}
	if r.follower {
		rs.Role = "follower"
		as := r.applier.Stats()
		rs.Connected = as.Connected
		rs.NextLSN = as.NextLSN
		rs.AppliedRecords = as.AppliedRecords
		rs.AppliedPoints = as.AppliedPoints
		rs.Reconnects = as.Reconnects
		rs.CorruptBatches = as.CorruptBatches
		rs.LagTicks, rs.LagKnown = r.ReplLag()
	}
	return rs
}

// WindowStats counts the window executor's zone-map pruning work: how
// many overlapping segments each window scanned versus skipped outright,
// and how many populated index cells the surviving scans walked versus
// pruned (per-cell tick-range miss or margin full-reject) before any
// posting decode.
type WindowStats struct {
	Queries         int64 `json:"queries"`
	SegmentsScanned int64 `json:"segments_scanned"`
	SegmentsSkipped int64 `json:"segments_skipped"`
	CellsScanned    int64 `json:"cells_scanned"`
	CellsSkipped    int64 `json:"cells_skipped"`
	// Plans and Operators count iterator-executor window plans and the
	// operators those plans composed (zero while the fused executor
	// serves).
	Plans     int64 `json:"plans"`
	Operators int64 `json:"operators"`
}

// Stats snapshots the repository. Every counter comes from ONE registry
// snapshot — the same collection pass /metrics renders — so the sections
// of a response are mutually consistent views of one instant rather than
// a sequence of independent reads.
func (r *Repository) Stats() Stats {
	return r.statsFromSnapshot(r.met.reg.Snapshot())
}

// Draining reports whether shutdown has started (readiness turns false
// while in-flight requests finish).
func (r *Repository) Draining() bool { return r.draining.Load() }

// Degraded returns the write-ahead log's latched disk error, or nil
// while ingest is healthy. A degraded repository keeps serving reads;
// every ingest is rejected with the latched error (HTTP 503) — after a
// disk lies about an fsync, nothing further can honestly be
// acknowledged.
func (r *Repository) Degraded() error {
	return r.wal.Failed()
}

// Segments returns the current sealed segments (immutable; do not modify).
func (r *Repository) Segments() []*Segment {
	segs, _ := r.view()
	return segs
}
