package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"ppqtraj/internal/geo"
)

// httpRepo spins up a repository behind its HTTP handler.
func httpRepo(t *testing.T) (*Repository, *httptest.Server) {
	t.Helper()
	repo, err := Open(testOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repo.Handler())
	t.Cleanup(func() {
		srv.Close()
		repo.Close()
	})
	return repo, srv
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPIngestQueryStats(t *testing.T) {
	_, srv := httpRepo(t)

	// Two trajectories crossing one cell over three ticks.
	var ticks []IngestTick
	for tick := 0; tick < 3; tick++ {
		ticks = append(ticks, IngestTick{
			Tick: tick,
			Points: []IngestPoint{
				{ID: 1, X: 0.0001 * float64(tick), Y: 0.0001},
				{ID: 2, X: 5, Y: 5},
			},
		})
	}
	var ing IngestResponse
	if code := postJSON(t, srv.URL+"/v1/ingest", IngestRequest{Ticks: ticks}, &ing); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	if ing.AcceptedPoints != 6 {
		t.Fatalf("accepted %d points, want 6", ing.AcceptedPoints)
	}

	var qr QueryResponse
	req := QueryRequest{Queries: []STRQRequest{
		{P: geo.Pt(0.0001, 0.0001), Tick: 1, PathLen: 2},
		{P: geo.Pt(99, 99), Tick: 1},
	}}
	if code := postJSON(t, srv.URL+"/v1/query", req, &qr); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	if len(qr.Answers) != 2 {
		t.Fatalf("got %d answers", len(qr.Answers))
	}
	if !qr.Answers[0].Covered || len(qr.Answers[0].IDs) != 1 || qr.Answers[0].IDs[0] != 1 {
		t.Fatalf("answer 0 = %+v", qr.Answers[0])
	}
	if len(qr.Answers[0].Paths) != 1 {
		t.Fatalf("expected a path for the match, got %+v", qr.Answers[0].Paths)
	}
	if len(qr.Answers[1].IDs) != 0 {
		t.Fatalf("answer 1 should be empty: %+v", qr.Answers[1])
	}

	// Flush seals the hot tail; queries keep answering identically.
	var st Stats
	if code := postJSON(t, srv.URL+"/v1/flush", struct{}{}, &st); code != http.StatusOK {
		t.Fatalf("flush status %d", code)
	}
	if st.Segments == 0 || st.HotPoints != 0 {
		t.Fatalf("flush stats = %+v", st)
	}
	var qr2 QueryResponse
	if code := postJSON(t, srv.URL+"/v1/query", req, &qr2); code != http.StatusOK {
		t.Fatalf("post-flush query status %d", code)
	}
	if !sameIDs(qr2.Answers[0].IDs, qr.Answers[0].IDs) {
		t.Fatalf("answers changed across flush: %v vs %v", qr2.Answers[0].IDs, qr.Answers[0].IDs)
	}

	// Window across the sealed range.
	var wr WindowResult
	win := WindowRequest{Rect: geo.NewRect(-1, -1, 1, 1), From: 0, To: 2}
	if code := postJSON(t, srv.URL+"/v1/window", win, &wr); code != http.StatusOK {
		t.Fatalf("window status %d", code)
	}
	if len(wr.IDs) != 1 || wr.IDs[0] != 1 {
		t.Fatalf("window = %+v", wr)
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st2 Stats
	if err := json.NewDecoder(resp.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if st2.IngestedPoints != 6 || st2.Queries == 0 {
		t.Fatalf("stats = %+v", st2)
	}
	// The window above went through the range executor, so its planner
	// telemetry must have landed in the stats' window section.
	if st2.Window.Queries == 0 || st2.Window.SegmentsScanned == 0 {
		t.Fatalf("window stats = %+v", st2.Window)
	}
}

func TestHTTPValidation(t *testing.T) {
	repo, srv := httpRepo(t)

	resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}

	if code := postJSON(t, srv.URL+"/v1/query", QueryRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}

	big := QueryRequest{Queries: make([]STRQRequest, maxBatchQueries+1)}
	if code := postJSON(t, srv.URL+"/v1/query", big, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d", code)
	}

	// Ingest rejection surfaces the repository's validation error.
	bad := IngestRequest{Ticks: []IngestTick{
		{Tick: 0, Points: []IngestPoint{{ID: 1, X: 0, Y: 0}}},
		{Tick: 4, Points: []IngestPoint{{ID: 1, X: 0, Y: 0}}}, // gap for id 1
	}}
	var out struct {
		IngestResponse
		Error string `json:"error"`
	}
	if code := postJSON(t, srv.URL+"/v1/ingest", bad, &out); code != http.StatusUnprocessableEntity {
		t.Fatalf("gapped ingest: status %d", code)
	}
	if out.AcceptedPoints != 1 || out.Error == "" {
		t.Fatalf("gapped ingest response = %+v", out)
	}

	// Inverted window ticks and rect, and non-finite coordinates, are
	// caller mistakes: consistent 400s, not engine artifacts.
	if code := postJSON(t, srv.URL+"/v1/window", WindowRequest{From: 5, To: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("inverted window: status %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/window",
		WindowRequest{Rect: geo.Rect{MinX: 2, MinY: 0, MaxX: 1, MaxY: 1}, From: 0, To: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("inverted rect: status %d", code)
	}
	// Non-finite coordinates cannot ride in as JSON numbers (the decoder
	// rejects out-of-range literals with a 400), and the handlers guard
	// the same condition for programmatic request structs.
	for _, raw := range []string{
		`{"rect":{"MinX":1e999,"MinY":0,"MaxX":1,"MaxY":1},"from":0,"to":1}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/window", "application/json", bytes.NewReader([]byte(raw)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("out-of-range rect literal: status %d", resp.StatusCode)
		}
	}
	if _, err := repo.Window(context.Background(), geo.Rect{MinX: math.NaN(), MaxX: 1, MaxY: 1}, 0, 1, false); err == nil {
		t.Fatal("non-finite rect should be rejected at the Go API too")
	}
	if code := postJSON(t, srv.URL+"/v1/query",
		QueryRequest{Queries: []STRQRequest{{P: geo.Pt(0, 0), Tick: 0, PathLen: -3}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative path_len: status %d", code)
	}

	// Method guards from the routing patterns.
	resp, err = http.Get(srv.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query: status %d", resp.StatusCode)
	}
}

func TestHTTPConcurrentClients(t *testing.T) {
	// A handful of concurrent HTTP clients ingesting and querying; run
	// with -race. Each client owns a disjoint trajectory ID range so the
	// contiguity rule is never violated, and the hot tail is sized so no
	// compaction can seal a tick a slower client still has to write.
	opts := testOptions(nil)
	opts.HotTicks = 256
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repo.Handler())
	t.Cleanup(func() {
		srv.Close()
		repo.Close()
	})
	const clients = 4
	errCh := make(chan error, clients)
	done := make(chan struct{})
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer func() { done <- struct{}{} }()
			base := uint32(1000 * (c + 1))
			for tick := 0; tick < 30; tick++ {
				body := IngestRequest{Ticks: []IngestTick{{
					Tick: tick,
					Points: []IngestPoint{
						{ID: base, X: float64(c), Y: float64(tick) * 1e-4},
						{ID: base + 1, X: float64(c), Y: 1 + float64(tick)*1e-4},
					},
				}}}
				blob, _ := json.Marshal(body)
				resp, err := http.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(blob))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("client %d tick %d: ingest status %d", c, tick, resp.StatusCode)
					return
				}
				qblob, _ := json.Marshal(QueryRequest{Queries: []STRQRequest{
					{P: geo.Pt(float64(c), float64(tick)*1e-4), Tick: tick},
				}})
				resp, err = http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(qblob))
				if err != nil {
					errCh <- err
					return
				}
				var qr QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if len(qr.Answers) != 1 || !qr.Answers[0].Covered {
					errCh <- fmt.Errorf("client %d tick %d: answer %+v", c, tick, qr.Answers)
					return
				}
				found := false
				for _, id := range qr.Answers[0].IDs {
					if id == base {
						found = true
					}
				}
				if !found {
					errCh <- fmt.Errorf("client %d tick %d: own point missing from %v", c, tick, qr.Answers[0].IDs)
					return
				}
			}
		}(c)
	}
	for c := 0; c < clients; c++ {
		<-done
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if st := repo.Stats(); st.IngestedPoints != clients*30*2 {
		t.Fatalf("ingested %d points, want %d", st.IngestedPoints, clients*30*2)
	}
}
