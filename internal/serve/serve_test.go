package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppqtraj/internal/core"
	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/query"
	"ppqtraj/internal/traj"
)

// testData is the shared small workload: enough trajectories and ticks to
// force several compactions, small enough for -race runs.
func testData(t testing.TB) (*traj.Dataset, []*traj.Column) {
	t.Helper()
	d := gen.Porto(gen.Config{NumTrajectories: 80, MinLen: 45, MaxLen: 80, Seed: 11})
	var cols []*traj.Column
	_ = d.Stream(func(col *traj.Column) error {
		cols = append(cols, &traj.Column{
			Tick:   col.Tick,
			IDs:    append([]traj.ID(nil), col.IDs...),
			Points: append([]geo.Point(nil), col.Points...),
		})
		return nil
	})
	return d, cols
}

func testOptions(raw *traj.Dataset) Options {
	b := core.DefaultOptions(partition.Spatial, 0.1)
	b.Seed = 7
	return Options{
		Build: b,
		Index: index.Options{
			EpsS: 0.1,
			GC:   geo.MetersToDegrees(100),
			EpsC: 0.5,
			EpsD: 0.5,
			Seed: 7,
		},
		HotTicks:        12,
		KeepHotTicks:    3,
		MaxSegmentTicks: 16,
		CompactInterval: 2 * time.Millisecond,
		Raw:             raw,
		Log:             obs.Discard(),
	}
}

// TestConcurrentMixedWorkloadMatchesStatic is the acceptance test: four
// query workers fire exact STRQ at a repository while ingestion and
// background compaction run, checking every answer against ground truth
// on the fly; after the stream is flushed, a batch of exact queries must
// match a single static engine built over the whole dataset, cell for
// cell. Run with -race.
func TestConcurrentMixedWorkloadMatchesStatic(t *testing.T) {
	d, cols := testData(t)
	opts := testOptions(d)
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	const workers = 4
	var ingested atomic.Int64 // index into cols of the last fully ingested column
	ingested.Store(-1)
	var done atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, workers)

	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + wk)))
			for !done.Load() {
				hi := ingested.Load()
				if hi < 0 {
					continue
				}
				col := cols[rng.Intn(int(hi)+1)]
				p := col.Points[rng.Intn(col.Len())]
				ans, err := repo.STRQ(context.Background(), STRQRequest{P: p, Tick: col.Tick, Exact: true, PathLen: 3})
				if err != nil {
					errCh <- err
					return
				}
				want := query.GroundTruth(d, ans.Cell, col.Tick)
				if !sameIDs(ans.IDs, want) {
					errCh <- fmt.Errorf("worker %d: tick %d cell %v: got %v want %v (source %s)",
						wk, col.Tick, ans.Cell, ans.IDs, want, ans.Source)
					return
				}
			}
		}(wk)
	}

	for i, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatalf("ingest tick %d: %v", col.Tick, err)
		}
		ingested.Store(int64(i))
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	st := repo.Stats()
	if st.Compactions < 2 {
		t.Fatalf("workload should compact repeatedly, got %d compactions", st.Compactions)
	}
	if st.HotPoints != 0 {
		t.Fatalf("flush left %d hot points", st.HotPoints)
	}
	if st.SegmentPoints != d.NumPoints() {
		t.Fatalf("segments hold %d of %d ingested points", st.SegmentPoints, d.NumPoints())
	}

	// The equivalent static engine: one build over the full dataset.
	sum := core.Build(d, opts.Build)
	eng, err := query.BuildEngine(sum, opts.Index, d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var reqs []STRQRequest
	for q := 0; q < 200; q++ {
		col := cols[rng.Intn(len(cols))]
		reqs = append(reqs, STRQRequest{
			P:     col.Points[rng.Intn(col.Len())],
			Tick:  col.Tick,
			Exact: true,
		})
	}
	answers := repo.Batch(context.Background(), reqs)
	for i, ans := range answers {
		if ans.Err != "" {
			t.Fatalf("batch query %d: %s", i, ans.Err)
		}
		res, err := eng.STRQRect(context.Background(), ans.Cell, reqs[i].Tick, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(ans.IDs, res.IDs) {
			t.Fatalf("query %d tick %d: repository %v (from %s) vs static engine %v",
				i, reqs[i].Tick, ans.IDs, ans.Source, res.IDs)
		}
	}
}

func sameIDs(a, b []traj.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestApproxRecallIsOne checks the local-search guarantee survives the
// sharded path: approximate answers from sealed segments must contain
// every true resident of the query cell.
func TestApproxRecallIsOne(t *testing.T) {
	d, cols := testData(t)
	repo, err := Open(testOptions(d))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 300; q++ {
		col := cols[rng.Intn(len(cols))]
		p := col.Points[rng.Intn(col.Len())]
		ans, err := repo.STRQ(context.Background(), STRQRequest{P: p, Tick: col.Tick})
		if err != nil {
			t.Fatal(err)
		}
		want := query.GroundTruth(d, ans.Cell, col.Tick)
		_, recall := query.PrecisionRecall(ans.IDs, want)
		if recall < 1 {
			t.Fatalf("tick %d: recall %v < 1 (%s)", col.Tick, recall, ans.Source)
		}
	}
}

// TestSegmentSerializeReloadRoundTrip persists a repository, reopens it
// from the manifest, and checks queries and paths answer identically.
func TestSegmentSerializeReloadRoundTrip(t *testing.T) {
	d, cols := testData(t)
	dir := t.TempDir()
	opts := testOptions(d)
	opts.Dir = dir
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(21))
	var reqs []STRQRequest
	for q := 0; q < 120; q++ {
		col := cols[rng.Intn(len(cols))]
		reqs = append(reqs, STRQRequest{
			P:       col.Points[rng.Intn(col.Len())],
			Tick:    col.Tick,
			PathLen: 6,
		})
	}
	before := repo.Batch(context.Background(), reqs)
	nSegs := repo.Stats().Segments
	if nSegs < 2 {
		t.Fatalf("expected several persisted segments, got %d", nSegs)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	reloaded, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reloaded.Close()
	if got := reloaded.Stats().Segments; got != nSegs {
		t.Fatalf("reloaded %d segments, want %d", got, nSegs)
	}
	after := reloaded.Batch(context.Background(), reqs)
	for i := range before {
		if before[i].Err != "" || after[i].Err != "" {
			t.Fatalf("query %d errored: %q / %q", i, before[i].Err, after[i].Err)
		}
		if !sameIDs(before[i].IDs, after[i].IDs) {
			t.Fatalf("query %d: IDs %v before vs %v after reload", i, before[i].IDs, after[i].IDs)
		}
		if before[i].Candidates != after[i].Candidates {
			t.Fatalf("query %d: candidates %d vs %d", i, before[i].Candidates, after[i].Candidates)
		}
		if !reflect.DeepEqual(before[i].Paths, after[i].Paths) {
			t.Fatalf("query %d: paths diverge after reload", i)
		}
	}

	// The reloaded repository accepts fresh ingest strictly above the
	// sealed watermark.
	sealed := reloaded.Stats().SealedThrough
	if err := reloaded.Ingest(sealed, []traj.ID{1}, []geo.Point{{X: 1, Y: 1}}); err == nil {
		t.Fatal("ingest at the sealed watermark should be rejected")
	}
	if err := reloaded.Ingest(sealed+1, []traj.ID{1}, []geo.Point{{X: 1, Y: 1}}); err != nil {
		t.Fatalf("ingest above the watermark: %v", err)
	}
}

// TestWindowMatchesBruteForce drives the cross-shard scatter/gather with
// data split across several segments plus a live hot tail.
func TestWindowMatchesBruteForce(t *testing.T) {
	d, cols := testData(t)
	repo, err := Open(testOptions(d))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	// Ingest everything but keep the final quarter hot (no flush).
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 40; q++ {
		col := cols[rng.Intn(len(cols))]
		center := col.Points[rng.Intn(col.Len())]
		rect := geo.Rect{
			MinX: center.X - 0.004, MinY: center.Y - 0.004,
			MaxX: center.X + 0.004, MaxY: center.Y + 0.004,
		}
		from, to := col.Tick-6, col.Tick+6
		res, err := repo.Window(context.Background(), rect, from, to, true)
		if err != nil {
			t.Fatal(err)
		}
		want := map[traj.ID]struct{}{}
		for _, tr := range d.All() {
			for k := from; k <= to; k++ {
				if p, ok := tr.At(k); ok && rect.Contains(p) {
					want[tr.ID] = struct{}{}
					break
				}
			}
		}
		if len(res.IDs) != len(want) {
			t.Fatalf("window [%d,%d] rect %v: got %d ids want %d (sources %d)",
				from, to, rect, len(res.IDs), len(want), res.Sources)
		}
		for _, id := range res.IDs {
			if _, ok := want[id]; !ok {
				t.Fatalf("window returned spurious trajectory %d", id)
			}
		}
	}
}

// TestIngestValidation covers the hot tail's admission rules.
func TestIngestValidation(t *testing.T) {
	repo, err := Open(testOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	// An empty batch is a no-op: it must not register a phantom tick that
	// would drag the compaction watermark into the far future.
	if err := repo.Ingest(1<<30, nil, nil); err != nil {
		t.Fatalf("empty batch should be a no-op: %v", err)
	}
	if _, _, ok := repo.hot.tickSpan(); ok {
		t.Fatal("empty batch registered a hot tick")
	}
	pt := []geo.Point{{X: 1, Y: 1}}
	if err := repo.Ingest(5, []traj.ID{9}, pt); err != nil {
		t.Fatal(err)
	}
	if err := repo.Ingest(5, []traj.ID{9}, pt); err == nil {
		t.Fatal("duplicate (id, tick) should be rejected")
	}
	if err := repo.Ingest(8, []traj.ID{9}, pt); err == nil {
		t.Fatal("sampling gap should be rejected")
	}
	if err := repo.Ingest(6, []traj.ID{9}, []geo.Point{{X: math.Inf(1), Y: 0}}); err == nil {
		t.Fatal("non-finite point should be rejected")
	}
	if err := repo.Ingest(6, []traj.ID{9, 10}, pt); err == nil {
		t.Fatal("length mismatch should be rejected")
	}
	if err := repo.Ingest(6, []traj.ID{9}, pt); err != nil {
		t.Fatalf("contiguous continuation should be accepted: %v", err)
	}
	dup := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	if err := repo.Ingest(7, []traj.ID{9, 9}, dup); err == nil {
		t.Fatal("duplicate ID within one batch should be rejected")
	}
	// Unsorted batches are accepted and served in ID order (all three
	// points share one query cell).
	if err := repo.Ingest(7, []traj.ID{30, 9, 20}, []geo.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}}); err != nil {
		t.Fatalf("unsorted batch: %v", err)
	}
	ans, err := repo.STRQ(context.Background(), STRQRequest{P: geo.Pt(1, 1), Tick: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.IDs) == 0 {
		t.Fatalf("unsorted ingest not queryable: %+v", ans)
	}
	for i := 1; i < len(ans.IDs); i++ {
		if ans.IDs[i-1] >= ans.IDs[i] {
			t.Fatalf("answer IDs not sorted: %v", ans.IDs)
		}
	}
}

// TestExactQueryUnknownIDErrs checks that an ID outside the attached raw
// store degrades an exact query to an error instead of a process panic.
func TestExactQueryUnknownIDErrs(t *testing.T) {
	d, _ := testData(t)
	opts := testOptions(d) // raw covers only the dataset's own IDs
	opts.HotTicks = 2
	opts.KeepHotTicks = 1
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	p := geo.Pt(2, 2)
	unknown := traj.ID(900000)
	start := 1000 // far past the dataset's own ticks
	for tick := start; tick < start+6; tick++ {
		if err := repo.Ingest(tick, []traj.ID{unknown}, []geo.Point{p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.STRQ(context.Background(), STRQRequest{P: p, Tick: start + 1, Exact: true}); !errors.Is(err, query.ErrNoRaw) {
		t.Fatalf("exact query over unknown raw ID: want ErrNoRaw class, got %v", err)
	}
	// Approximate mode keeps working.
	ans, err := repo.STRQ(context.Background(), STRQRequest{P: p, Tick: start + 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.IDs) != 1 || ans.IDs[0] != unknown {
		t.Fatalf("approximate answer = %+v", ans)
	}
}

// TestWindowClipsUnboundedSpan guards the DoS fix: an absurd window span
// must be clipped to resident data, not probed tick by tick.
func TestWindowClipsUnboundedSpan(t *testing.T) {
	d, cols := testData(t)
	repo, err := Open(testOptions(d))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	for _, col := range cols[:len(cols)/2] {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	rect := geo.NewRect(-180, -90, 180, 90)
	start := time.Now()
	res, err := repo.Window(context.Background(), rect, 0, 1<<40, false)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("unbounded window took %v", elapsed)
	}
	if len(res.IDs) != d.Len() {
		t.Fatalf("window over everything found %d of %d trajectories", len(res.IDs), d.Len())
	}
}

// TestExactWithoutRawErrors checks the satellite: a mis-configured exact
// request degrades to an error, never a crash, and only for the sealed
// tier (the hot tail is raw and always answers exactly).
func TestExactWithoutRawErrors(t *testing.T) {
	d, cols := testData(t)
	_ = d
	repo, err := Open(testOptions(nil)) // no raw access
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	half := len(cols) / 2
	for _, col := range cols[:half] {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, col := range cols[half:] {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	sealedCol, hotCol := cols[0], cols[len(cols)-1]
	_, err = repo.STRQ(context.Background(), STRQRequest{P: sealedCol.Points[0], Tick: sealedCol.Tick, Exact: true})
	if !errors.Is(err, query.ErrNoRaw) {
		t.Fatalf("sealed exact without raw: want ErrNoRaw, got %v", err)
	}
	ans, err := repo.STRQ(context.Background(), STRQRequest{P: hotCol.Points[0], Tick: hotCol.Tick, Exact: true})
	if err != nil {
		t.Fatalf("hot exact: %v", err)
	}
	if ans.Source != "hot" || !ans.Covered {
		t.Fatalf("expected covered hot answer, got %+v", ans)
	}
	// Batch must absorb the failure per-answer instead of failing whole.
	answers := repo.Batch(context.Background(), []STRQRequest{
		{P: sealedCol.Points[0], Tick: sealedCol.Tick, Exact: true},
		{P: hotCol.Points[0], Tick: hotCol.Tick},
	})
	if answers[0].Err == "" {
		t.Fatal("batch answer 0 should carry the ErrNoRaw failure")
	}
	if answers[1].Err != "" {
		t.Fatalf("batch answer 1 should succeed: %s", answers[1].Err)
	}
	if repo.Stats().QueryErrors == 0 {
		t.Fatal("query errors should be counted")
	}
}

// TestHotTailAccountingUnderRacingCompaction hammers ingest against an
// aggressive compactor and checks conservation: every ingested point ends
// up in exactly one tier, and nothing is lost or double-counted. Run
// with -race.
func TestHotTailAccountingUnderRacingCompaction(t *testing.T) {
	d, cols := testData(t)
	opts := testOptions(d)
	opts.HotTicks = 4
	opts.KeepHotTicks = 1
	opts.CompactInterval = time.Millisecond
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent reader keeps the routing path busy
		defer wg.Done()
		rng := rand.New(rand.NewSource(8))
		for !done.Load() {
			col := cols[rng.Intn(len(cols))]
			if _, err := repo.STRQ(context.Background(), STRQRequest{P: col.Points[0], Tick: col.Tick}); err != nil {
				panic(err)
			}
		}
	}()
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	wg.Wait()

	st := repo.Stats()
	if st.IngestedPoints != int64(d.NumPoints()) {
		t.Fatalf("ingested %d, want %d", st.IngestedPoints, d.NumPoints())
	}
	if st.SegmentPoints+st.HotPoints != d.NumPoints() {
		t.Fatalf("conservation violated: %d sealed + %d hot != %d ingested",
			st.SegmentPoints, st.HotPoints, d.NumPoints())
	}
	if st.HotPoints != 0 {
		t.Fatalf("flush left %d hot points", st.HotPoints)
	}
	if st.CompactedPoints != int64(d.NumPoints()) {
		t.Fatalf("compacted %d, want %d", st.CompactedPoints, d.NumPoints())
	}
	// Tick coverage is a partition: consecutive segments, no overlap.
	segs := repo.Segments()
	for i := 1; i < len(segs); i++ {
		if segs[i].StartTick <= segs[i-1].EndTick {
			t.Fatalf("segments %d and %d overlap: [%d,%d] then [%d,%d]", i-1, i,
				segs[i-1].StartTick, segs[i-1].EndTick, segs[i].StartTick, segs[i].EndTick)
		}
	}
}

// TestPathStitchesAcrossSegments reconstructs paths spanning segment
// boundaries and the hot tail, checking tick alignment and the deviation
// bound against raw data.
func TestPathStitchesAcrossSegments(t *testing.T) {
	d, cols := testData(t)
	repo, err := Open(testOptions(d))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	// No flush: the freshest ticks stay hot, so long paths cross tiers.
	segs := repo.Segments()
	if len(segs) < 2 {
		t.Skip("workload did not compact into multiple segments")
	}
	bound := segs[0].Sum.MaxDeviation() + 1e-12
	checked := 0
	for _, tr := range d.All() {
		if tr.Len() < 10 {
			continue
		}
		got := repo.Path(context.Background(), tr.ID, tr.Start, tr.Len())
		if len(got.Points) == 0 {
			continue
		}
		checked++
		if got.Start != tr.Start {
			t.Fatalf("trajectory %d: path starts at %d, want %d", tr.ID, got.Start, tr.Start)
		}
		if len(got.Points) != tr.Len() {
			t.Fatalf("trajectory %d: path has %d points, want %d", tr.ID, len(got.Points), tr.Len())
		}
		for i, p := range got.Points {
			raw, ok := tr.At(got.Start + i)
			if !ok {
				t.Fatalf("trajectory %d: tick %d beyond raw range", tr.ID, got.Start+i)
			}
			if p.Dist(raw) > bound {
				t.Fatalf("trajectory %d tick %d: deviation %v exceeds bound %v",
					tr.ID, got.Start+i, p.Dist(raw), bound)
			}
		}
	}
	if checked < d.Len()/2 {
		t.Fatalf("only %d of %d trajectories produced full paths", checked, d.Len())
	}
}

// TestOpenValidatesOptions covers the misconfiguration error paths.
func TestOpenValidatesOptions(t *testing.T) {
	bad := []Options{
		{},
		{Index: index.Options{GC: 1}},
		{Index: index.Options{GC: 1, EpsS: 1}, Build: core.Options{UseCQC: true, Epsilon1: 1}},
	}
	for i, o := range bad {
		if _, err := Open(o); err == nil {
			t.Fatalf("options %d should be rejected", i)
		}
	}
}

// TestGoAPIValidationMatchesHTTP checks programmatic callers get errors
// (not silent empties) for the inputs the HTTP layer 400s.
func TestGoAPIValidationMatchesHTTP(t *testing.T) {
	repo, err := Open(testOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	ctx := context.Background()
	if _, err := repo.STRQ(ctx, STRQRequest{P: geo.Pt(math.NaN(), 0), Tick: 0}); err == nil {
		t.Fatal("non-finite STRQ point should error")
	}
	if _, err := repo.STRQ(ctx, STRQRequest{P: geo.Pt(1, 1), Tick: 0, PathLen: -1}); err == nil {
		t.Fatal("negative path length should error")
	}
	if _, err := repo.Window(ctx, geo.Rect{MinX: 2, MinY: 0, MaxX: 1, MaxY: 1}, 0, 1, false); err == nil {
		t.Fatal("inverted window rect should error")
	}
	if _, err := repo.Window(ctx, geo.Rect{MinX: math.Inf(1), MaxX: 1, MaxY: 1}, 0, 1, false); err == nil {
		t.Fatal("non-finite window rect should error")
	}
}
