// Package serve is the repository serving layer on top of the paper's
// machinery: it shards a live trajectory stream into time-bounded sealed
// segments — each one a quantized core.Summary plus its TPI engine — with
// a raw in-memory hot tail for the freshest ticks. A background compactor
// drains the hot tail through the parallel core.Builder into new sealed
// segments (persisted with core's summary serialization and a manifest
// for crash-safe reload), while STRQ/TPQ traffic fans out across segments
// and the hot tail concurrently and merges the answers.
package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ppqtraj/internal/core"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/query"
	"ppqtraj/internal/traj"
	"ppqtraj/internal/wal"
)

// Segment is one sealed, immutable shard of the repository: the quantized
// summary of a contiguous tick range plus the query engine over it. After
// seal it is only ever read, so segment queries need no locking (the
// engine's access counter is atomic).
type Segment struct {
	ID        uint64
	StartTick int // first tick covered (inclusive)
	EndTick   int // last tick covered (inclusive)
	Points    int
	Sum       *core.Summary
	Eng       *query.Engine
	File      string // manifest-relative file name; "" when memory-only
	SizeBytes int64  // serialized size on disk (0 when memory-only)
	Quantized bool   // false would mean a raw segment; always true today
	// CacheOwner is the segment's token in the repository's shared
	// decoded-cell cache (0 when the cache is disabled); invalidating it
	// drops every cached decode of this segment.
	CacheOwner uint64
	// Zone is the segment's pruning summary (tick span, spatial bounds,
	// populated-cell bitmap); the window planner skips the segment when
	// the zone map cannot intersect the query's search area.
	Zone *ZoneMap
	// zoneRebuilt marks a Zone rebuilt at load time because the sidecar
	// was missing or stale; the loader re-persists it best-effort.
	zoneRebuilt bool
}

// buildSegment drains one batch of columns (ascending ticks) through a
// fresh builder and seals the result into a queryable segment. raw, when
// non-nil, enables exact-mode verification on the segment's engine.
func buildSegment(id uint64, cols []*traj.Column, bopts core.Options, iopts index.Options, raw *traj.Dataset) (*Segment, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("serve: empty segment build")
	}
	b := core.NewBuilder(bopts)
	for _, col := range cols {
		b.Append(col)
	}
	sum := b.Summary()
	eng, err := query.BuildEngine(sum, iopts, raw)
	if err != nil {
		return nil, fmt.Errorf("serve: building segment %d engine: %w", id, err)
	}
	start, end := cols[0].Tick, cols[len(cols)-1].Tick
	return &Segment{
		ID:        id,
		StartTick: start,
		EndTick:   end,
		Points:    sum.NumPoints,
		Sum:       sum,
		Eng:       eng,
		Quantized: true,
		Zone:      buildZoneMap(eng, iopts.GC, start, end),
	}, nil
}

// Covers reports whether the segment's tick range contains tick.
func (s *Segment) Covers(tick int) bool {
	return tick >= s.StartTick && tick <= s.EndTick
}

// segmentFileName is the canonical on-disk name of a segment.
func segmentFileName(id uint64) string { return fmt.Sprintf("seg-%06d.ppqs", id) }

// durableSwap atomically and durably replaces dir/name: write fills a
// temp file in dir, which is fsynced, closed, renamed over name, and
// the directory fsynced after the rename — the full crash-safe publish
// sequence shared by segment blobs and the manifest. The contents are
// on stable storage before the new name exists, and the rename itself
// is durable when durableSwap returns, so a crash at any instant leaves
// either the complete old file or the complete new one (plus, at worst,
// an orphaned temp file for startup GC). Returns write's byte count.
func durableSwap(dir, name string, write func(*os.File) (int64, error)) (int64, error) {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return 0, err
	}
	n, err := write(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return n, err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return n, err
	}
	return n, wal.SyncDir(dir)
}

// persist writes the segment's summary blob to dir under its canonical
// name via durableSwap, so by the time the manifest references the
// file, both its contents and its directory entry are on stable
// storage — a crash can never publish a manifest pointing at a hollow
// or missing segment.
func (s *Segment) persist(dir string) error {
	name := segmentFileName(s.ID)
	n, err := durableSwap(dir, name, func(f *os.File) (int64, error) { return s.Sum.WriteTo(f) })
	if err != nil {
		return fmt.Errorf("serve: persisting segment %d: %w", s.ID, err)
	}
	s.File = name
	s.SizeBytes = n
	return nil
}

// loadSegment reloads a persisted segment: the summary blob is decoded
// (which replays the decoder and verifies self-containment) and the TPI
// engine is rebuilt from the reconstructions — reconstruction is
// deterministic, so a reloaded segment answers queries identically to the
// one that was persisted.
func loadSegment(dir string, m manifestSegment, iopts index.Options, raw *traj.Dataset) (*Segment, error) {
	path := filepath.Join(dir, m.File)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sum, err := core.ReadSummary(f)
	if err != nil {
		return nil, fmt.Errorf("serve: reading %s: %w", path, err)
	}
	eng, err := query.BuildEngine(sum, iopts, raw)
	if err != nil {
		return nil, fmt.Errorf("serve: rebuilding engine for %s: %w", path, err)
	}
	sz, _ := f.Seek(0, io.SeekEnd)
	seg := &Segment{
		ID:        m.ID,
		StartTick: m.StartTick,
		EndTick:   m.EndTick,
		Points:    sum.NumPoints,
		Sum:       sum,
		Eng:       eng,
		File:      m.File,
		SizeBytes: sz,
		Quantized: true,
	}
	// Zone maps arrived after the first manifests: a missing or stale
	// sidecar is rebuilt from the engine (the caller re-persists it,
	// best-effort — the in-memory zone map is what pruning needs).
	if z, ok := loadZoneMap(dir, m.ID, iopts.GC); ok {
		seg.Zone = z
	} else {
		seg.Zone = buildZoneMap(eng, iopts.GC, m.StartTick, m.EndTick)
		seg.zoneRebuilt = true
	}
	return seg, nil
}

// reconstructedPath returns the segment's reconstruction of id over
// [from, from+l), clipped to the segment's coverage, with the tick of the
// first returned point.
func (s *Segment) reconstructedPath(id traj.ID, from, l int) (pts []geo.Point, start int) {
	lo, hi := from, from+l
	if lo < s.StartTick {
		lo = s.StartTick
	}
	if hi > s.EndTick+1 {
		hi = s.EndTick + 1
	}
	if lo >= hi {
		return nil, from
	}
	tr, ok := s.Sum.Trajs[id]
	if !ok {
		return nil, from
	}
	if lo < tr.Start {
		lo = tr.Start
	}
	return s.Sum.ReconstructPath(id, lo, hi-lo), lo
}
