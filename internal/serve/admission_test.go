package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppqtraj/internal/admit"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/wal"
)

// ingestBody builds a one-tick ingest payload for a disjoint ID range.
func ingestBody(t *testing.T, tick int, base uint32, n int) []byte {
	t.Helper()
	pts := make([]IngestPoint, n)
	for i := range pts {
		pts[i] = IngestPoint{ID: base + uint32(i), X: float64(i) * 1e-4, Y: float64(tick) * 1e-4}
	}
	blob, err := json.Marshal(IngestRequest{Ticks: []IngestTick{{Tick: tick, Points: pts}}})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestOverloadShedsBounded drives offered load far beyond the configured
// capacity and checks the overload contract: in-flight work never
// exceeds the cap, the excess is shed with 429 + Retry-After instead of
// queueing without bound, and every request — served or shed — completes
// promptly (bounded p99 for the served, instant rejection for the rest).
// Run with -race.
func TestOverloadShedsBounded(t *testing.T) {
	// A tmpfs ingest finishes in microseconds — the queue would drain
	// faster than 64 goroutines can even arrive, and nothing sheds. Give
	// each ingest a real disk's fsync cost so offered load genuinely
	// exceeds capacity.
	ffs := wal.NewFaultFS()
	ffs.SetSyncDelay(5 * time.Millisecond)
	opts := testOptions(nil)
	opts.Dir = t.TempDir()
	opts.WALSync = wal.SyncAlways
	opts.WALFS = ffs
	opts.HotTicks = 1 << 20 // no compaction noise
	opts.CompactInterval = time.Hour
	opts.Log = obs.Discard()
	opts.Admit = admit.Options{
		MaxInFlightIngest: 2,
		MaxInFlightQuery:  2,
		MaxQueue:          2,
		MaxWait:           20 * time.Millisecond,
	}
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repo.Handler())
	t.Cleanup(func() {
		srv.Close()
		repo.Close()
	})

	// Offered load: 64 concurrent clients against capacity 2+2 — far
	// beyond 2× capacity. Each client fires one ingest and one query.
	const clients = 64
	var (
		wg          sync.WaitGroup
		served      atomic.Int64
		shed        atomic.Int64
		latencies   = make([]time.Duration, clients)
		shedMissing atomic.Int64
	)
	client := srv.Client()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			start := time.Now()
			resp, err := client.Post(srv.URL+"/v1/ingest", "application/json",
				bytes.NewReader(ingestBody(t, 1, uint32(1000*(c+1)), 2)))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			latencies[c] = time.Since(start)
			switch resp.StatusCode {
			case http.StatusOK:
				served.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
				if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
					shedMissing.Add(1)
				}
			default:
				t.Errorf("client %d: unexpected status %d", c, resp.StatusCode)
			}
		}(c)
	}
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("overload served nothing — shedding everything is collapse too")
	}
	if shed.Load() == 0 {
		t.Fatalf("64 clients against capacity 2 shed nothing (served=%d)", served.Load())
	}
	if shedMissing.Load() > 0 {
		t.Fatalf("%d shed responses lacked a usable Retry-After header", shedMissing.Load())
	}
	st := repo.Stats()
	if hw := st.Admission.Ingest.HighWater; hw > 2 {
		t.Fatalf("in-flight high water %d exceeded the cap of 2", hw)
	}
	if st.Admission.Ingest.Shed != shed.Load() {
		t.Fatalf("stats count %d shed, clients saw %d", st.Admission.Ingest.Shed, shed.Load())
	}
	// Bounded latency: even the slowest request (served or shed) must
	// finish within queue-wait + service time, far under a second here.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if p99 := latencies[len(latencies)*99/100]; p99 > 5*time.Second {
		t.Fatalf("p99 latency %v under overload — queueing is unbounded", p99)
	}
}

// TestClientQuotaThrottlesPerClient checks one chatty client is throttled
// by its token bucket while another client sails through.
func TestClientQuotaThrottlesPerClient(t *testing.T) {
	opts := testOptions(nil)
	opts.Admit = admit.Options{ClientRate: 1, ClientBurst: 2}
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repo.Handler())
	t.Cleanup(func() {
		srv.Close()
		repo.Close()
	})

	post := func(clientID string, tick int, base uint32) int {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/ingest",
			bytes.NewReader(ingestBody(t, tick, base, 1)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-ID", clientID)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("greedy", 1, 100); code != http.StatusOK {
		t.Fatalf("first request: %d", code)
	}
	if code := post("greedy", 2, 100); code != http.StatusOK {
		t.Fatalf("second request: %d", code)
	}
	if code := post("greedy", 3, 100); code != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: %d, want 429", code)
	}
	if code := post("polite", 1, 200); code != http.StatusOK {
		t.Fatalf("unrelated client throttled: %d", code)
	}
	if st := repo.Stats(); st.Admission.QuotaRejected != 1 {
		t.Fatalf("quota stats = %+v", st.Admission)
	}
}

// TestOversizedBodyIs413 posts a body beyond the transport cap and
// expects 413 Payload Too Large, not a generic 400.
func TestOversizedBodyIs413(t *testing.T) {
	// Shrink the cap so the overflow body stays cheap to build and parse.
	old := maxBodyBytes
	maxBodyBytes = 1 << 16
	t.Cleanup(func() { maxBodyBytes = old })
	_, srv := httpRepo(t)
	// Valid JSON shape throughout: the points array keeps the parser
	// happily consuming until the transport cap cuts it off, proving the
	// 413 comes from the size check, not a syntax error.
	var buf bytes.Buffer
	buf.WriteString(`{"ticks":[{"tick":1,"points":[`)
	chunk := []byte(`{"id":1,"x":0.1,"y":0.2},`)
	for int64(buf.Len()) < maxBodyBytes+1024 {
		buf.Write(chunk)
	}
	buf.WriteString(`{"id":2,"x":0,"y":0}]}]}`)
	resp, err := http.Post(srv.URL+"/v1/ingest", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	var out httpError
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.Error == "" {
		t.Fatalf("413 body = %+v (%v)", out, err)
	}
}

// TestFaultInjectedBurstDegradesCleanly is the acceptance test for
// degraded mode: a concurrent ingest burst is in flight when the disk's
// fsyncs start failing. Required behavior: (a) after the latch, ingests
// return 503 with the latched error, never 200; (b) /v1/stats reports
// degraded:true; (c) no acknowledged batch is lost — every 200-acked
// tick is replayed after reopening the directory; (d) queries keep
// serving. Run with -race.
func TestFaultInjectedBurstDegradesCleanly(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS()
	opts := testOptions(nil)
	opts.Dir = dir
	opts.WALSync = wal.SyncAlways
	opts.GroupCommitWait = time.Millisecond
	opts.WALFS = ffs
	opts.HotTicks = 1 << 20 // keep everything hot: recovery must come from the WAL alone
	opts.CompactInterval = time.Hour
	opts.Log = obs.Discard()
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()

	// Concurrent clients ingest disjoint ID ranges at their own ticks;
	// mid-burst the disk dies. Collect every 200-acked (client, tick).
	const clients, ticksPerClient = 6, 30
	var (
		ackedMu sync.Mutex
		acked   = make(map[[2]int]bool)
		saw503  atomic.Int64
		badErr  atomic.Int64
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for tick := 1; tick <= ticksPerClient; tick++ {
				resp, err := srv.Client().Post(srv.URL+"/v1/ingest", "application/json",
					bytes.NewReader(ingestBody(t, tick, uint32(10000*(c+1)), 3)))
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ackedMu.Lock()
					acked[[2]int{c, tick}] = true
					ackedMu.Unlock()
				case http.StatusServiceUnavailable:
					saw503.Add(1)
					if !bytes.Contains(body, []byte("injected")) {
						badErr.Add(1)
					}
					return // fail-stopped: this client gives up
				default:
					t.Errorf("client %d tick %d: status %d (%s)", c, tick, resp.StatusCode, body)
					return
				}
			}
		}(c)
	}
	// Let the burst get going, then kill the disk's durability barrier.
	time.Sleep(10 * time.Millisecond)
	ffs.SetSyncErr(errors.New("injected fsync failure: device gone"))
	wg.Wait()

	if saw503.Load() == 0 {
		t.Fatal("no client saw a 503 — the burst finished before the fault landed; tighten the timing")
	}
	if badErr.Load() > 0 {
		t.Fatalf("%d 503 bodies did not carry the latched error", badErr.Load())
	}

	// Probes see the degraded bit without string matching.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded || st.WAL.Failed == "" {
		t.Fatalf("stats after latch: degraded=%v wal.failed=%q", st.Degraded, st.WAL.Failed)
	}

	// Reads still serve while ingest is fail-stopped.
	var qr QueryResponse
	if code := postJSON(t, srv.URL+"/v1/query", QueryRequest{Queries: []STRQRequest{
		{P: geo.Pt(0, 1e-4), Tick: 1},
	}}, &qr); code != http.StatusOK {
		t.Fatalf("query on a degraded server: status %d", code)
	}

	// Every acked batch must survive: reopen the directory with a healthy
	// filesystem and check each acked (client, tick) is resident.
	repo.Close() //nolint:errcheck // the WAL is latched; Close may surface it
	opts.WALFS = nil
	opts.GroupCommitWait = 0
	repo2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo2.Close()
	ackedMu.Lock()
	defer ackedMu.Unlock()
	if len(acked) == 0 {
		t.Fatal("nothing was acked before the fault — the test never exercised the ack path")
	}
	for key := range acked {
		c, tick := key[0], key[1]
		ids, covered := repo2.hot.strqRect(geo.NewRect(-1, -1, 1, 1), tick)
		if !covered {
			t.Fatalf("acked tick %d (client %d) missing entirely after recovery", tick, c)
		}
		found := false
		for _, id := range ids {
			if id == uint32(10000*(c+1)) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("acked batch (client %d, tick %d) lost after recovery", c, tick)
		}
	}
}

// TestGroupCommitHTTPConcurrentIngest drives concurrent HTTP ingest under
// fsync=always with a batching window and checks every ack is durable and
// fsyncs were shared (commits > syncs). Run with -race.
func TestGroupCommitHTTPConcurrentIngest(t *testing.T) {
	dir := t.TempDir()
	// On tmpfs an fsync is nearly free, so HTTP round-trip latency alone
	// keeps commits from overlapping and the window never engages. Give
	// the disk a realistic fsync cost so concurrent acks pile up behind
	// it — the regime group commit exists for.
	ffs := wal.NewFaultFS()
	ffs.SetSyncDelay(time.Millisecond)
	opts := testOptions(nil)
	opts.Dir = dir
	opts.WALSync = wal.SyncAlways
	opts.GroupCommitWait = 2 * time.Millisecond
	opts.WALFS = ffs
	opts.HotTicks = 1 << 20
	opts.CompactInterval = time.Hour
	opts.Log = obs.Discard()
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()

	const clients, ticksPerClient = 8, 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for tick := 1; tick <= ticksPerClient; tick++ {
				resp, err := srv.Client().Post(srv.URL+"/v1/ingest", "application/json",
					bytes.NewReader(ingestBody(t, tick, uint32(1000*(c+1)), 2)))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d tick %d: status %d", c, tick, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := repo.Stats()
	if st.WAL.Commits != clients*ticksPerClient {
		t.Fatalf("%d WAL commits, want %d", st.WAL.Commits, clients*ticksPerClient)
	}
	if st.WAL.Syncs >= st.WAL.Commits {
		t.Fatalf("no group-commit batching over HTTP: %d fsyncs for %d commits", st.WAL.Syncs, st.WAL.Commits)
	}

	// Durability: close without flushing; every acked point replays.
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	opts.WALFS = nil // reopen on the real (instant) filesystem
	repo2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo2.Close()
	if got, want := repo2.Stats().WALReplayedPoints, int64(clients*ticksPerClient*2); got != want {
		t.Fatalf("replayed %d points, want %d", got, want)
	}
}
