package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/query"
	"ppqtraj/internal/traj"
)

// TestCancelledWindowReturnsPromptly is the acceptance test for the
// deadline-aware read path: a window query whose context is cancelled
// mid-scatter returns promptly with a context error, and the repository
// stays fully consistent — the same window re-run without cancellation
// matches brute force, and conservation still holds.
func TestCancelledWindowReturnsPromptly(t *testing.T) {
	d, cols := testData(t)
	repo, err := Open(testOptions(d))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}

	rect := geo.NewRect(-180, -90, 180, 90)
	lastTick := cols[len(cols)-1].Tick

	// A context that is cancelled concurrently with the scatter: the
	// per-tick checks pick it up mid-loop. If one attempt happens to finish
	// before the cancel lands, retry — one cancelled observation is all the
	// assertion needs, and with an immediate cancel that is the common case.
	sawCancel := false
	for attempt := 0; attempt < 50 && !sawCancel; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		start := time.Now()
		res, err := repo.Window(ctx, rect, 0, lastTick, true)
		elapsed := time.Since(start)
		cancel()
		if err == nil {
			continue // completed before the cancel; try again
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled window: want context.Canceled, got %v", err)
		}
		if res != nil {
			t.Fatalf("cancelled window returned a result: %+v", res)
		}
		if elapsed > 10*time.Second {
			t.Fatalf("cancelled window took %v to return", elapsed)
		}
		sawCancel = true
	}
	if !sawCancel {
		t.Fatal("cancellation never won the race in 50 attempts")
	}

	// An already-expired deadline is rejected deterministically.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := repo.Window(ctx, rect, 0, lastTick, false); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: want DeadlineExceeded, got %v", err)
	}
	if _, err := repo.STRQ(ctx, STRQRequest{P: cols[0].Points[0], Tick: cols[0].Tick}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired STRQ deadline: want DeadlineExceeded, got %v", err)
	}

	// State after cancellation: untouched and fully queryable.
	st := repo.Stats()
	if st.SegmentPoints+st.HotPoints != d.NumPoints() {
		t.Fatalf("conservation violated after cancel: %d sealed + %d hot != %d",
			st.SegmentPoints, st.HotPoints, d.NumPoints())
	}
	if st.QueryErrors == 0 {
		t.Fatal("cancelled queries should be counted as query errors")
	}
	res, err := repo.Window(context.Background(), rect, 0, lastTick, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != d.Len() {
		t.Fatalf("post-cancel window found %d of %d trajectories", len(res.IDs), d.Len())
	}
}

// TestBatchCancelledMidway checks Batch's contract under cancellation:
// no zero-valued answers — every slot either carries a real answer or the
// context error.
func TestBatchCancelledMidway(t *testing.T) {
	d, cols := testData(t)
	repo, err := Open(testOptions(d))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]STRQRequest, 64)
	for i := range reqs {
		col := cols[i%len(cols)]
		reqs[i] = STRQRequest{P: col.Points[0], Tick: col.Tick}
	}
	answers := repo.Batch(ctx, reqs)
	for i, ans := range answers {
		if ans.Err == "" && ans.Source == "" {
			t.Fatalf("answer %d is zero-valued: %+v", i, ans)
		}
	}
}

// TestCacheHitsRacingCompactionTrim hammers cached STRQ and window reads
// against aggressive ingest + compaction: freshly published segments are
// probed (filling the cache) while the hot tail that briefly shadowed
// them is trimmed. Answers must stay exact against ground truth and the
// cache must both fill and hit. Run with -race.
func TestCacheHitsRacingCompactionTrim(t *testing.T) {
	d, cols := testData(t)
	opts := testOptions(d)
	opts.HotTicks = 4
	opts.KeepHotTicks = 1
	opts.CompactInterval = time.Millisecond
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	const workers = 3
	var ingested atomic.Int64
	ingested.Store(-1)
	var done atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + wk)))
			for !done.Load() {
				hi := ingested.Load()
				if hi < 0 {
					continue
				}
				col := cols[rng.Intn(int(hi)+1)]
				p := col.Points[rng.Intn(col.Len())]
				ans, err := repo.STRQ(context.Background(), STRQRequest{P: p, Tick: col.Tick, Exact: true})
				if err != nil {
					errCh <- err
					return
				}
				want := query.GroundTruth(d, ans.Cell, col.Tick)
				if !sameIDs(ans.IDs, want) {
					errCh <- fmt.Errorf("worker %d tick %d: got %v want %v (source %s)",
						wk, col.Tick, ans.IDs, want, ans.Source)
					return
				}
				// Window probes drive the chunked decode path of the cache.
				if wk == 0 {
					rect := geo.NewRect(p.X-0.002, p.Y-0.002, p.X+0.002, p.Y+0.002)
					if _, err := repo.Window(context.Background(), rect, col.Tick-3, col.Tick+3, false); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(wk)
	}
	for i, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
		ingested.Store(int64(i))
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if st := repo.Stats(); st.Compactions < 2 {
		t.Fatalf("workload should compact repeatedly, got %d", st.Compactions)
	}
	// Everything is sealed now; two identical probe passes guarantee cache
	// traffic even when the racing phase above was served mostly hot.
	rng := rand.New(rand.NewSource(55))
	var probes []STRQRequest
	for q := 0; q < 100; q++ {
		col := cols[rng.Intn(len(cols))]
		probes = append(probes, STRQRequest{P: col.Points[rng.Intn(col.Len())], Tick: col.Tick, Exact: true})
	}
	for pass := 0; pass < 2; pass++ {
		for _, req := range probes {
			ans, err := repo.STRQ(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			want := query.GroundTruth(d, ans.Cell, req.Tick)
			if !sameIDs(ans.IDs, want) {
				t.Fatalf("pass %d tick %d: got %v want %v", pass, req.Tick, ans.IDs, want)
			}
		}
	}
	st := repo.Stats()
	if st.Cache.Misses == 0 || st.Cache.Entries == 0 {
		t.Fatalf("cache never filled: %+v", st.Cache)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("repeated probes never hit the cache: %+v", st.Cache)
	}
}

// TestFreezeIngestRaceAtWatermark races a continuous single-trajectory
// ingest stream against a flusher that freezes and seals as fast as it
// can. A force-flush freezes the watermark at the highest resident hot
// tick, so right after each flush the next ingest lands at exactly
// floor+1 — the admission boundary. The contract under this race: a
// monotone ingester is NEVER rejected (the watermark can only reach its
// previous tick, not its next one), and no accepted point is lost or
// double-counted by the freeze/snapshot/publish/trim dance. Run with
// -race.
func TestFreezeIngestRaceAtWatermark(t *testing.T) {
	repo, err := Open(testOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := repo.Flush(); err != nil {
				panic(err)
			}
		}
	}()

	pt := []geo.Point{{X: 1, Y: 1}}
	id := []traj.ID{42}
	const ticks = 400
	for tick := 0; tick < ticks; tick++ {
		if err := repo.Ingest(tick, id, pt); err != nil {
			t.Fatalf("ingest at tick %d spuriously rejected: %v (watermark %d)",
				tick, err, repo.Stats().SealedThrough)
		}
	}
	close(stop)
	wg.Wait()
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	st := repo.Stats()
	if st.IngestedPoints != ticks {
		t.Fatalf("ingested counter %d != %d accepted", st.IngestedPoints, ticks)
	}
	if st.SegmentPoints+st.HotPoints != ticks {
		t.Fatalf("conservation violated: %d sealed + %d hot != %d accepted",
			st.SegmentPoints, st.HotPoints, ticks)
	}
	if st.HotPoints != 0 {
		t.Fatalf("final flush left %d hot points", st.HotPoints)
	}
	// The full path survived the shredding into per-flush segments.
	got := repo.Path(context.Background(), 42, 0, ticks)
	if got.Start != 0 || len(got.Points) != ticks {
		t.Fatalf("path start %d len %d, want 0 and %d", got.Start, len(got.Points), ticks)
	}
}

// TestHTTPDeadlineAndTimeouts covers the transport mapping: an expired
// per-request ?timeout= returns 504 with a context error, and a malformed
// timeout is a 400.
func TestHTTPDeadlineAndTimeouts(t *testing.T) {
	_, srv := httpRepo(t)
	blob, _ := json.Marshal(IngestRequest{Ticks: []IngestTick{
		{Tick: 0, Points: []IngestPoint{{ID: 1, X: 1, Y: 1}}},
	}})
	resp, err := http.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	q, _ := json.Marshal(QueryRequest{Queries: []STRQRequest{{P: geo.Pt(1, 1), Tick: 0}}})
	resp, err = http.Post(srv.URL+"/v1/query?timeout=1ns", "application/json", bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	var he struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&he); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("1ns query timeout: status %d", resp.StatusCode)
	}
	if he.Error == "" {
		t.Fatal("504 response should carry the context error")
	}

	win, _ := json.Marshal(WindowRequest{Rect: geo.NewRect(0, 0, 2, 2), From: 0, To: 0})
	resp, err = http.Post(srv.URL+"/v1/window?timeout=1ns", "application/json", bytes.NewReader(win))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("1ns window timeout: status %d", resp.StatusCode)
	}

	for _, bad := range []string{"nope", "-5s", "0"} {
		resp, err = http.Post(srv.URL+"/v1/query?timeout="+bad, "application/json", bytes.NewReader(q))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("timeout=%q: status %d", bad, resp.StatusCode)
		}
	}

	// A generous timeout answers normally.
	resp, err = http.Post(srv.URL+"/v1/query?timeout=30s", "application/json", bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(qr.Answers) != 1 || qr.Answers[0].Err != "" {
		t.Fatalf("status %d answers %+v", resp.StatusCode, qr.Answers)
	}
}

// TestHTTPTimeoutCannotExceedConfiguredDefault checks the clamp: with an
// operator-configured deadline, a client's ?timeout= can shorten it but
// never extend it.
func TestHTTPTimeoutCannotExceedConfiguredDefault(t *testing.T) {
	opts := testOptions(nil)
	opts.DefaultQueryTimeout = time.Nanosecond // everything must expire
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repo.Handler())
	t.Cleanup(func() {
		srv.Close()
		repo.Close()
	})
	q, _ := json.Marshal(QueryRequest{Queries: []STRQRequest{{P: geo.Pt(1, 1), Tick: 0}}})
	resp, err := http.Post(srv.URL+"/v1/query?timeout=10s", "application/json", bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("?timeout=10s should be clamped to the 1ns default: status %d", resp.StatusCode)
	}
}

// TestHTTPStrictJSON guards the silent-zero-value bug: a misspelled field
// (the motivating case: "tik" instead of "tick" ingesting at tick 0) and
// trailing data are 400s, never partial acceptance.
func TestHTTPStrictJSON(t *testing.T) {
	repo, srv := httpRepo(t)
	for _, tc := range []struct {
		name, path, body string
	}{
		{"misspelled tick", "/v1/ingest", `{"ticks":[{"tik":5,"points":[{"id":1,"x":1,"y":1}]}]}`},
		{"misspelled queries", "/v1/query", `{"querys":[{"p":{"X":1,"Y":1},"tick":0}]}`},
		{"misspelled rect", "/v1/window", `{"rekt":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1},"from":0,"to":1}`},
		{"trailing data", "/v1/ingest", `{"ticks":[]}{"ticks":[]}`},
		{"trailing garbage", "/v1/query", `{"queries":[{"p":{"X":1,"Y":1},"tick":0}]} extra`},
	} {
		resp, err := http.Post(srv.URL+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// Nothing was ingested by the rejected bodies.
	if st := repo.Stats(); st.IngestedPoints != 0 {
		t.Fatalf("rejected bodies ingested %d points", st.IngestedPoints)
	}
}

// TestStatsExposeCacheCounters checks /v1/stats carries the cell cache
// section once traffic has warmed it.
func TestStatsExposeCacheCounters(t *testing.T) {
	_, srv := httpRepo(t)
	var ticks []IngestTick
	for tick := 0; tick < 3; tick++ {
		ticks = append(ticks, IngestTick{Tick: tick, Points: []IngestPoint{{ID: 1, X: 1, Y: 1}}})
	}
	if code := postJSON(t, srv.URL+"/v1/ingest", IngestRequest{Ticks: ticks}, nil); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/flush", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("flush status %d", code)
	}
	q := QueryRequest{Queries: []STRQRequest{{P: geo.Pt(1, 1), Tick: 1}}}
	for i := 0; i < 3; i++ {
		if code := postJSON(t, srv.URL+"/v1/query", q, nil); code != http.StatusOK {
			t.Fatalf("query status %d", code)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	cc, ok := raw["cell_cache"]
	if !ok {
		t.Fatalf("stats missing cell_cache: %v", raw)
	}
	var st struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	}
	if err := json.Unmarshal(cc, &st); err != nil {
		t.Fatal(err)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache counters never moved: %+v", st)
	}
}
