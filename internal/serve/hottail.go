package serve

import (
	"fmt"
	"sort"
	"sync"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/traj"
)

// hotCol is one tick's ingested points, parallel slices sorted by ID —
// the mutable mirror of traj.Column.
type hotCol struct {
	ids []traj.ID
	pts []geo.Point
}

// find returns the slot of id in the (ID-sorted) column, or (-1, false).
func (c *hotCol) find(id traj.ID) (int, bool) {
	i := sort.Search(len(c.ids), func(i int) bool { return c.ids[i] >= id })
	if i < len(c.ids) && c.ids[i] == id {
		return i, true
	}
	return -1, false
}

// hotTail is the repository's mutable tier: freshly ingested points kept
// raw (exact, no quantization) and directly queryable, until the
// compactor drains them into a sealed segment. All methods are
// self-synchronized; queries take the read lock, ingest and trim the
// write lock.
type hotTail struct {
	mu       sync.RWMutex
	cols     map[int]*hotCol
	lastSeen map[traj.ID]int // last ingested tick per trajectory
	points   int
	floor    int // sealed/frozen watermark: ingest must land strictly above
}

func newHotTail() *hotTail {
	return &hotTail{
		cols:     make(map[int]*hotCol),
		lastSeen: make(map[traj.ID]int),
		floor:    -1,
	}
}

// freeze raises the ingest floor to bound: once it returns, no future
// ingest can land at tick ≤ bound, so a snapshot(bound) taken afterwards
// is complete forever — the compactor's correctness invariant.
func (h *hotTail) freeze(bound int) {
	h.mu.Lock()
	if bound > h.floor {
		h.floor = bound
	}
	h.mu.Unlock()
}

// ingest merges one tick of points. Every point must land strictly above
// the sealed/frozen watermark, and a trajectory already live above the
// watermark must continue contiguously (gaps would corrupt the
// per-trajectory entry indexing of the segment the compactor later
// builds). Validation runs before any mutation, so a rejected column
// leaves the tail untouched.
//
// logged, when non-nil, runs after validation and before any mutation —
// the repository's write-ahead hook. Running it under the tail's lock
// pins the WAL's append order to the tail's application order, which is
// what lets a crash replay reproduce this exact state; a logged error
// aborts the ingest with the tail untouched.
//
// tr (nil-safe) receives the validate and apply stage laps; the logged
// hook laps its own wal_append in between, so the three stages partition
// the tail's critical section.
func (h *hotTail) ingest(tick int, ids []traj.ID, pts []geo.Point, logged func() error, tr *obs.Trace) error {
	if len(ids) != len(pts) {
		return fmt.Errorf("serve: ingest tick %d: %d ids vs %d points", tick, len(ids), len(pts))
	}
	if len(ids) == 0 {
		return nil // a pointless empty batch must not register the tick
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	floor := h.floor
	if tick <= floor {
		return fmt.Errorf("serve: ingest tick %d at or below sealed watermark %d", tick, floor)
	}
	var inBatch map[traj.ID]struct{}
	if len(ids) > 1 {
		inBatch = make(map[traj.ID]struct{}, len(ids))
	}
	for i, id := range ids {
		if !pts[i].IsFinite() {
			return fmt.Errorf("serve: non-finite position %v for trajectory %d at tick %d", pts[i], id, tick)
		}
		if last, ok := h.lastSeen[id]; ok && last > floor {
			if tick <= last {
				return fmt.Errorf("serve: trajectory %d already has a point at tick %d (last %d)", id, tick, last)
			}
			if tick != last+1 {
				return fmt.Errorf("serve: trajectory %d skips ticks %d..%d (sampling must be contiguous)", id, last+1, tick-1)
			}
		}
		if inBatch != nil {
			if _, dup := inBatch[id]; dup {
				return fmt.Errorf("serve: trajectory %d appears twice in the tick-%d batch", id, tick)
			}
			inBatch[id] = struct{}{}
		}
	}
	tr.Lap("validate")
	if logged != nil {
		if err := logged(); err != nil {
			return err
		}
	}
	col := h.cols[tick]
	if col == nil {
		col = &hotCol{}
		h.cols[tick] = col
	}
	// Append the whole batch, then restore ID order with one sort: IDs are
	// unique per (tick) by the checks above, and a single O(n log n) pass
	// beats per-point sorted inserts for arbitrary HTTP payloads. The sort
	// is skipped when the column is already ordered (the common case:
	// ID-sorted columns arriving one batch per tick).
	wasSorted := sort.SliceIsSorted(ids, func(a, b int) bool { return ids[a] < ids[b] })
	prevLen := len(col.ids)
	col.ids = append(col.ids, ids...)
	col.pts = append(col.pts, pts...)
	if !wasSorted || (prevLen > 0 && col.ids[prevLen-1] >= col.ids[prevLen]) {
		sort.Sort((*hotColSort)(col))
	}
	for _, id := range ids {
		h.lastSeen[id] = tick
	}
	h.points += len(ids)
	tr.Lap("apply")
	return nil
}

// hotColSort sorts a column's parallel slices by ID.
type hotColSort hotCol

func (c *hotColSort) Len() int           { return len(c.ids) }
func (c *hotColSort) Less(i, j int) bool { return c.ids[i] < c.ids[j] }
func (c *hotColSort) Swap(i, j int) {
	c.ids[i], c.ids[j] = c.ids[j], c.ids[i]
	c.pts[i], c.pts[j] = c.pts[j], c.pts[i]
}

// numPoints returns the live point count.
func (h *hotTail) numPoints() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.points
}

// tickSpan returns the min/max resident tick (ok=false when empty).
func (h *hotTail) tickSpan() (lo, hi int, ok bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.tickSpanLocked()
}

func (h *hotTail) tickSpanLocked() (lo, hi int, ok bool) {
	for t := range h.cols {
		if !ok {
			lo, hi, ok = t, t, true
			continue
		}
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return lo, hi, ok
}

// snapshot copies every column with tick ≤ bound, ascending — the
// compactor's input. The copies are private, so the builder can run
// without holding any hot-tail lock while the original columns stay
// queryable until trim.
func (h *hotTail) snapshot(bound int) []*traj.Column {
	h.mu.RLock()
	defer h.mu.RUnlock()
	ticks := make([]int, 0, len(h.cols))
	for t := range h.cols {
		if t <= bound {
			ticks = append(ticks, t)
		}
	}
	sort.Ints(ticks)
	out := make([]*traj.Column, 0, len(ticks))
	for _, t := range ticks {
		c := h.cols[t]
		out = append(out, &traj.Column{
			Tick:   t,
			IDs:    append([]traj.ID(nil), c.ids...),
			Points: append([]geo.Point(nil), c.pts...),
		})
	}
	return out
}

// trim drops every column with tick ≤ bound (they are now served by a
// sealed segment), along with the lastSeen entries that can no longer
// influence admission — the contiguity check only consults entries above
// the floor, so keeping older ones would just leak memory as the ID
// population rotates.
func (h *hotTail) trim(bound int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for t, c := range h.cols {
		if t <= bound {
			h.points -= len(c.ids)
			delete(h.cols, t)
		}
	}
	for id, last := range h.lastSeen {
		if last <= h.floor {
			delete(h.lastSeen, id)
		}
	}
}

// strqRect answers the exact rectangle query over raw hot points: IDs
// whose ingested position at tick lies inside rect. Hot data is
// unquantized, so approximate and exact mode coincide and both have
// precision and recall 1.
func (h *hotTail) strqRect(rect geo.Rect, tick int) (ids []traj.ID, covered bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	col := h.cols[tick]
	if col == nil {
		return nil, false
	}
	for i, id := range col.ids {
		if rect.Contains(col.pts[i]) {
			ids = append(ids, id)
		}
	}
	return ids, true
}

// hotScanCol is one tick's hot-tail answer inside a range scan.
type hotScanCol struct {
	tick int
	ids  []traj.ID
}

// scanRange answers the exact rectangle query for every resident tick of
// [from, to] under a single read lock — the hot half of the repository's
// window executor. It returns the non-empty per-tick matches (IDs
// ascending, fresh slices), the number of resident ticks probed (the
// Covered count a per-tick loop would have seen), and whether the span
// overlapped the tail's resident tick range at all (the planner's
// "sources" accounting, which counts overlap, not residency).
func (h *hotTail) scanRange(rect geo.Rect, from, to int) (cols []hotScanCol, covered int, overlaps bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	lo, hi, ok := h.tickSpanLocked()
	if !ok {
		return nil, 0, false
	}
	from, to = max(from, lo), min(to, hi)
	overlaps = from <= to
	for t := from; t <= to; t++ {
		col := h.cols[t]
		if col == nil {
			continue
		}
		covered++
		var ids []traj.ID
		for i, id := range col.ids {
			if rect.Contains(col.pts[i]) {
				ids = append(ids, id)
			}
		}
		if len(ids) > 0 {
			cols = append(cols, hotScanCol{tick: t, ids: ids})
		}
	}
	return cols, covered, overlaps
}

// pointAt returns the raw position of id at tick, if resident.
func (h *hotTail) pointAt(id traj.ID, tick int) (geo.Point, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	col := h.cols[tick]
	if col == nil {
		return geo.Point{}, false
	}
	i, ok := col.find(id)
	if !ok {
		return geo.Point{}, false
	}
	return col.pts[i], true
}

// path collects id's raw positions over ticks [from, from+l), in tick
// order, stopping at the first tick where the trajectory is absent after
// having been present (positions are contiguous by the ingest contract).
func (h *hotTail) path(id traj.ID, from, l int) (pts []geo.Point, start int) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	start = from
	for t := from; t < from+l; t++ {
		col := h.cols[t]
		var p geo.Point
		ok := false
		if col != nil {
			var i int
			if i, ok = col.find(id); ok {
				p = col.pts[i]
			}
		}
		if !ok {
			if len(pts) > 0 {
				break
			}
			start = t + 1
			continue
		}
		pts = append(pts, p)
	}
	return pts, start
}
