package serve

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/traj"
	"ppqtraj/internal/wal"
)

// testLogWriter forwards the repository's structured log lines to the
// test log, so recovery chatter shows up under -v but not on stderr.
type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// durableOptions is testOptions plus persistence: WAL fsynced on every
// ingest ack, so a simulated crash at any instant may lose nothing.
func durableOptions(t *testing.T, raw *traj.Dataset) Options {
	t.Helper()
	opts := testOptions(raw)
	opts.Dir = t.TempDir()
	opts.WALDir = filepath.Join(opts.Dir, "wal")
	opts.WALSync = wal.SyncAlways
	opts.WALSegmentBytes = 8 << 10 // force rotations so reclamation is exercised
	opts.Log = obs.NewLogger(testLogWriter{t}, obs.LevelDebug, obs.FormatText)
	return opts
}

// bruteSTRQ is the ground-truth exact range query: IDs of the prefix's
// raw points inside rect at tick, sorted. Matches both tiers' exact
// semantics (rect.Contains over raw positions).
func bruteSTRQ(cols []*traj.Column, rect geo.Rect, tick int) []traj.ID {
	var ids []traj.ID
	for _, col := range cols {
		if col.Tick != tick {
			continue
		}
		for i, id := range col.IDs {
			if rect.Contains(col.Points[i]) {
				ids = append(ids, id)
			}
		}
	}
	return sortedIDs(ids)
}

// bruteWindow is the ground-truth window query over the ingested prefix.
func bruteWindow(cols []*traj.Column, rect geo.Rect, from, to int) []traj.ID {
	seen := make(map[traj.ID]struct{})
	for _, col := range cols {
		if col.Tick < from || col.Tick > to {
			continue
		}
		for i, id := range col.IDs {
			if rect.Contains(col.Points[i]) {
				seen[id] = struct{}{}
			}
		}
	}
	ids := make([]traj.ID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	return sortedIDs(ids)
}

func sortedIDs(ids []traj.ID) []traj.ID {
	out := append([]traj.ID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) == 0 {
		return nil
	}
	return out
}

// verifyAgainstTruth fires exact STRQ and window probes at the repository
// and checks every answer point-for-point against the brute-force oracle
// over the ingested prefix.
func verifyAgainstTruth(t *testing.T, repo *Repository, cols []*traj.Column, rng *rand.Rand, probes int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < probes; i++ {
		col := cols[rng.Intn(len(cols))]
		p := col.Points[rng.Intn(col.Len())]
		ans, err := repo.STRQ(ctx, STRQRequest{P: p, Tick: col.Tick, Exact: true})
		if err != nil {
			t.Fatalf("STRQ(tick %d): %v", col.Tick, err)
		}
		if !ans.Covered {
			t.Fatalf("STRQ(tick %d): ingested tick reported uncovered", col.Tick)
		}
		want := bruteSTRQ(cols, ans.Cell, col.Tick)
		if got := sortedIDs(ans.IDs); !reflect.DeepEqual(got, want) {
			t.Fatalf("STRQ(tick %d, source %s): got %v want %v", col.Tick, ans.Source, got, want)
		}
	}
	for i := 0; i < 3; i++ {
		a := cols[rng.Intn(len(cols))]
		pa := a.Points[rng.Intn(a.Len())]
		pb := a.Points[rng.Intn(a.Len())]
		// The tiny asymmetric margin keeps the corner points strictly
		// inside, so float boundary coincidence cannot flake the oracle.
		rect := geo.Rect{
			MinX: min(pa.X, pb.X) - 1e-9, MinY: min(pa.Y, pb.Y) - 2e-9,
			MaxX: max(pa.X, pb.X) + 3e-9, MaxY: max(pa.Y, pb.Y) + 4e-9,
		}
		from := cols[0].Tick + rng.Intn(len(cols))
		to := from + rng.Intn(30)
		if last := cols[len(cols)-1].Tick; to > last {
			to = last
		}
		if to < from {
			continue
		}
		res, err := repo.Window(ctx, rect, from, to, true)
		if err != nil {
			t.Fatalf("Window([%d,%d]): %v", from, to, err)
		}
		want := bruteWindow(cols, rect, from, to)
		if got := sortedIDs(res.IDs); !reflect.DeepEqual(got, want) {
			t.Fatalf("Window([%d,%d]): got %v want %v", from, to, got, want)
		}
	}
}

// tearWALTail simulates a torn final append: garbage bytes at the end of
// the newest WAL file, as a crash mid-write would leave.
func tearWALTail(t *testing.T, walDir string) {
	t.Helper()
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") && (newest == "" || e.Name() > newest) {
			newest = e.Name()
		}
	}
	if newest == "" {
		return
	}
	f, err := os.OpenFile(filepath.Join(walDir, newest), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xBE, 0xEF, 0x01}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryTorture is the durability acceptance test: a
// deterministic stream is ingested with crashes simulated at randomized
// points (the process state is dropped and the repository reopened from
// disk, sometimes with a torn WAL tail thrown in). Compaction runs only
// at fixed stream positions, so sealed-segment boundaries are identical
// to a never-crashed run — which makes every answer comparable
// point-for-point. After each recovery AND at the end, exact STRQ and
// window answers must equal the brute-force ground truth, and Path
// answers must equal a never-crashed reference run's bit for bit.
func TestCrashRecoveryTorture(t *testing.T) {
	d, cols := testData(t)
	rng := rand.New(rand.NewSource(31))

	opts := durableOptions(t, d)
	// Compaction must be deterministic for point-for-point comparison:
	// no background runs (huge trigger span, idle interval), only the
	// explicit Flush calls below.
	opts.HotTicks = 1 << 30
	opts.KeepHotTicks = 0 // withDefaults clamps to HotTicks-1; irrelevant without triggers
	opts.CompactInterval = time.Hour

	// The never-crashed reference run, same options in its own dir.
	refOpts := opts
	refOpts.Dir = t.TempDir()
	refOpts.WALDir = ""
	ref, err := Open(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	// Fixed stream positions where both runs compact.
	flushAt := map[int]bool{len(cols) / 4: true, len(cols) / 2: true, (4 * len(cols)) / 5: true}
	// Randomized crash points for the torture run.
	crashAt := make(map[int]bool)
	for len(crashAt) < 6 {
		crashAt[1+rng.Intn(len(cols)-1)] = true
	}

	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	replays := 0
	for i, col := range cols {
		if crashAt[i] {
			// Crash: drop the process state without Flush — the in-memory
			// hot tail is simply gone — and reopen from disk. Half the
			// crashes also tear the WAL's final record.
			stopWithoutFlush(t, repo)
			if rng.Intn(2) == 0 {
				tearWALTail(t, opts.WALDir)
			}
			repo, err = Open(opts)
			if err != nil {
				t.Fatalf("reopen after crash at column %d: %v", i, err)
			}
			st := repo.Stats()
			if st.HotPoints+st.SegmentPoints == 0 && i > 0 {
				t.Fatalf("recovery at column %d came back empty", i)
			}
			replays++
			verifyAgainstTruth(t, repo, cols[:i], rng, 20)
		}
		if err := repo.IngestColumn(col); err != nil {
			t.Fatalf("ingest column %d after %d replays: %v", i, replays, err)
		}
		if err := ref.IngestColumn(col); err != nil {
			t.Fatalf("reference ingest column %d: %v", i, err)
		}
		if flushAt[i] {
			if err := repo.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := ref.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if repo.Stats().WALReplayedPoints == 0 {
		t.Fatal("torture run never exercised WAL replay")
	}

	// Final point-for-point comparison against ground truth and the
	// never-crashed reference.
	verifyAgainstTruth(t, repo, cols, rng, 60)
	ctx := context.Background()
	for _, tr := range d.All() {
		from := tr.Start - 1
		l := tr.Len() + 2
		got := repo.Path(ctx, tr.ID, from, l)
		want := ref.Path(ctx, tr.ID, from, l)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Path(%d) diverged from the never-crashed run:\n got %+v\nwant %+v", tr.ID, got, want)
		}
	}

	// Reclamation: after a full flush every WAL record is sealed, so the
	// log must shrink to one empty active file.
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	st := repo.Stats()
	if st.WAL.Segments != 1 || st.WAL.Bytes != 0 {
		t.Fatalf("WAL not reclaimed after full flush: %d segments, %d bytes", st.WAL.Segments, st.WAL.Bytes)
	}
	if st.WAL.Reclaimed == 0 {
		t.Fatal("no WAL segments were ever reclaimed")
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	// One last restart: nothing hot remains, everything served from
	// sealed segments, still ground-truth exact.
	repo, err = Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if st := repo.Stats(); st.WALReplayedPoints != 0 || st.HotPoints != 0 {
		t.Fatalf("fully flushed repository replayed %d points / %d hot", st.WALReplayedPoints, st.HotPoints)
	}
	verifyAgainstTruth(t, repo, cols, rng, 30)
}

// stopWithoutFlush simulates the crash: stop the background goroutines so
// the dying "process" cannot keep writing to the directory, but do not
// flush — the hot tail's memory is lost exactly as a kill would lose it.
func stopWithoutFlush(t *testing.T, repo *Repository) {
	t.Helper()
	if err := repo.Close(); err != nil {
		t.Fatalf("simulated crash: %v", err)
	}
}

// TestCrashRecoveryRacingCompaction crashes a repository whose background
// compactor is aggressively racing the ingest stream (run it with -race).
// Sealed-segment boundaries are then timing-dependent, so answers are
// checked against the brute-force oracle — which exact mode must match
// regardless of how the data ended up sharded — and every acknowledged
// ingest must survive every crash (fsync=always).
func TestCrashRecoveryRacingCompaction(t *testing.T) {
	d, cols := testData(t)
	rng := rand.New(rand.NewSource(97))

	opts := durableOptions(t, d)
	opts.HotTicks = 8
	opts.KeepHotTicks = 2
	opts.MaxSegmentTicks = 12
	opts.CompactInterval = time.Millisecond

	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	for i, col := range cols {
		if i > 0 && rng.Intn(25) == 0 {
			stopWithoutFlush(t, repo)
			repo, err = Open(opts)
			if err != nil {
				t.Fatalf("reopen after crash at column %d: %v", i, err)
			}
			crashes++
			verifyAgainstTruth(t, repo, cols[:i], rng, 10)
		}
		if err := repo.IngestColumn(col); err != nil {
			t.Fatalf("ingest column %d: %v", i, err)
		}
	}
	if crashes == 0 {
		t.Fatal("rng produced no crashes; lower the modulus")
	}
	verifyAgainstTruth(t, repo, cols, rng, 40)
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	verifyAgainstTruth(t, repo, cols, rng, 20)
	st := repo.Stats()
	if st.WAL.Segments != 1 || st.WAL.Bytes != 0 {
		t.Fatalf("WAL not reclaimed after full flush: %d segments, %d bytes", st.WAL.Segments, st.WAL.Bytes)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOrphanSegmentGC: files a crash left behind — a segment written but
// never referenced by a manifest swap, stray temp files — are deleted on
// Open, logged, and counted; referenced files and foreign files survive.
func TestOrphanSegmentGC(t *testing.T) {
	d, cols := testData(t)
	opts := durableOptions(t, d)
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range cols[:40] {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	orphans := []string{"seg-099999.ppqs", "seg-000000.ppqs.tmp123", manifestName + ".tmp"}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(opts.Dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	foreign := filepath.Join(opts.Dir, "NOTES.txt")
	if err := os.WriteFile(foreign, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	opts.Log = obs.NewLogger(&logBuf, obs.LevelInfo, obs.FormatText)
	repo, err = Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	if st := repo.Stats(); st.OrphansRemoved != int64(len(orphans)) {
		t.Fatalf("OrphansRemoved = %d, want %d (logged: %q)", st.OrphansRemoved, len(orphans), logBuf.String())
	}
	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(opts.Dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s still present (err=%v)", name, err)
		}
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file was touched: %v", err)
	}
	if got := strings.Count(logBuf.String(), "removed orphaned file"); got < len(orphans) {
		t.Fatalf("orphan removal logged %d times, want %d: %q", got, len(orphans), logBuf.String())
	}
	// The reloaded segments must still answer.
	rng := rand.New(rand.NewSource(5))
	verifyAgainstTruth(t, repo, cols[:40], rng, 15)
}

// TestRecoveryRestoresContiguityContract: after a crash and replay, the
// per-trajectory lastSeen state must be back, so an ingest that skips a
// tick for a live trajectory is still rejected and a contiguous one still
// accepted.
func TestRecoveryRestoresContiguityContract(t *testing.T) {
	opts := durableOptions(t, nil)
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	id := traj.ID(7)
	for tick := 10; tick <= 12; tick++ {
		if err := repo.Ingest(tick, []traj.ID{id}, []geo.Point{geo.Pt(1, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	stopWithoutFlush(t, repo)

	repo, err = Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if st := repo.Stats(); st.WALReplayedPoints != 3 {
		t.Fatalf("replayed %d points, want 3", st.WALReplayedPoints)
	}
	// A gap must still be rejected…
	if err := repo.Ingest(14, []traj.ID{id}, []geo.Point{geo.Pt(1, 1)}); err == nil {
		t.Fatal("gap after replay was accepted: lastSeen not restored")
	}
	// …a duplicate too…
	if err := repo.Ingest(12, []traj.ID{id}, []geo.Point{geo.Pt(1, 1)}); err == nil {
		t.Fatal("duplicate tick after replay was accepted")
	}
	// …and the contiguous continuation accepted.
	if err := repo.Ingest(13, []traj.ID{id}, []geo.Point{geo.Pt(1, 1)}); err != nil {
		t.Fatalf("contiguous continuation rejected after replay: %v", err)
	}
}
