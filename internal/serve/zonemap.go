package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"os"
	"path/filepath"
	"sync/atomic"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/query"
)

// ZoneMap is a sealed segment's pruning summary: the tick span it serves,
// the bounding rectangle of every indexed (reconstructed) position, and a
// populated-cell bitmap over the repository's origin-anchored g_c grid.
// The window planner consults it before dispatching a range scan — a
// segment whose zone map cannot intersect the query's local-search area
// is skipped without touching its engine, postings, or cache.
//
// Zone maps are persisted next to their segment blob (seg-NNNNNN.zone.json)
// and rebuilt from the reloaded engine when the file is missing or stale
// (manifests written before zone maps existed reload fine — the rebuild
// also re-persists, upgrading the directory in place).
type ZoneMap struct {
	Version int `json:"version"`
	// GC is the grid cell size the bitmap is quantized at; a zone map
	// whose GC differs from the serving configuration is rebuilt.
	GC float64 `json:"gc"`
	// TickLo and TickHi bound the populated ticks.
	TickLo int `json:"tick_lo"`
	TickHi int `json:"tick_hi"`
	// Bounds covers every populated index cell.
	Bounds geo.Rect `json:"bounds"`
	// X0/Y0/W/H frame the bitmap: bit (x, y) of the W×H grid covers the
	// global cell (X0+x, Y0+y), i.e. the square
	// [(X0+x)·gc, (X0+x+1)·gc) × [(Y0+y)·gc, (Y0+y+1)·gc). W and H are 0
	// when the extent was too large to bitmap — pruning then falls back
	// to Bounds alone.
	X0 int `json:"x0"`
	Y0 int `json:"y0"`
	W  int `json:"w"`
	H  int `json:"h"`
	// Bits is the row-major bitmap, packed 8 cells per byte
	// (JSON-encoded as base64).
	Bits []byte `json:"bits,omitempty"`

	// popCount caches the bitmap's marked-cell count for OverlapScore
	// (0 = not yet counted). Atomic because zone maps are consulted by
	// concurrent window planners; the bitmap itself is immutable.
	popCount atomic.Int32
}

const (
	zoneMapVersion = 1
	// maxZoneBits caps the bitmap extent (512 KiB of bits); segments
	// spanning a larger grid keep bounds-only pruning rather than an
	// unbounded sidecar.
	maxZoneBits = 1 << 22
)

// zoneFileName is the canonical sidecar name of a segment's zone map.
func zoneFileName(id uint64) string { return fmt.Sprintf("seg-%06d.zone.json", id) }

// buildZoneMap derives a segment's zone map from its sealed engine by
// walking every populated index cell once. Index cells are anchored at
// their region's corner, not at the origin, so each one is rasterized
// onto the global grid conservatively (every global cell it overlaps is
// marked).
func buildZoneMap(eng *query.Engine, gc float64, startTick, endTick int) *ZoneMap {
	z := &ZoneMap{Version: zoneMapVersion, GC: gc, TickLo: startTick, TickHi: endTick}
	type cellSpan struct{ x0, y0, x1, y1 int }
	var (
		spans  []cellSpan
		bounds geo.Rect
		first  = true
	)
	eng.Idx.PopulatedCells(func(cell geo.Rect, tickLo, tickHi int) {
		if first {
			bounds, first = cell, false
			z.TickLo, z.TickHi = tickLo, tickHi
		} else {
			bounds = bounds.Union(cell)
			z.TickLo = min(z.TickLo, tickLo)
			z.TickHi = max(z.TickHi, tickHi)
		}
		spans = append(spans, cellSpan{
			x0: cellFloor(cell.MinX, gc), y0: cellFloor(cell.MinY, gc),
			x1: cellLast(cell.MaxX, gc), y1: cellLast(cell.MaxY, gc),
		})
	})
	if first {
		// No populated cells: an empty zone map prunes everything.
		z.TickLo, z.TickHi = startTick, endTick
		return z
	}
	z.Bounds = bounds
	x0, y0 := cellFloor(bounds.MinX, gc), cellFloor(bounds.MinY, gc)
	x1, y1 := cellLast(bounds.MaxX, gc), cellLast(bounds.MaxY, gc)
	w, h := x1-x0+1, y1-y0+1
	if w <= 0 || h <= 0 || w*h > maxZoneBits {
		return z // bounds-only pruning
	}
	z.X0, z.Y0, z.W, z.H = x0, y0, w, h
	z.Bits = make([]byte, (w*h+7)/8)
	for _, s := range spans {
		for y := s.y0; y <= s.y1; y++ {
			row := (y - y0) * w
			for x := s.x0; x <= s.x1; x++ {
				bit := row + (x - x0)
				z.Bits[bit>>3] |= 1 << (bit & 7)
			}
		}
	}
	return z
}

// cellFloor maps a coordinate to its global cell index.
func cellFloor(v, gc float64) int { return int(math.Floor(v / gc)) }

// cellLast maps a half-open upper bound to the last global cell index a
// rectangle ending there can overlap (an exact multiple of gc belongs to
// the previous cell under the max-open convention).
func cellLast(v, gc float64) int { return int(math.Ceil(v/gc)) - 1 }

// MayIntersect reports whether any populated cell of the zone map could
// intersect area within ticks [lo, hi]. False positives are allowed
// (they just cost a scan that finds nothing); false negatives are not —
// the planner drops the segment entirely on a false return.
func (z *ZoneMap) MayIntersect(area geo.Rect, lo, hi int) bool {
	if z == nil {
		return true // no zone map: never prune
	}
	if hi < z.TickLo || lo > z.TickHi {
		return false
	}
	if z.Bounds.Empty() {
		return false // segment indexed nothing
	}
	if !z.Bounds.Intersects(area) {
		return false
	}
	if z.W == 0 || z.H == 0 || len(z.Bits) == 0 {
		return true // bounds-only zone map
	}
	ax0 := max(cellFloor(area.MinX, z.GC), z.X0)
	ay0 := max(cellFloor(area.MinY, z.GC), z.Y0)
	ax1 := min(cellFloor(area.MaxX, z.GC), z.X0+z.W-1)
	ay1 := min(cellFloor(area.MaxY, z.GC), z.Y0+z.H-1)
	for y := ay0; y <= ay1; y++ {
		row := (y - z.Y0) * z.W
		for x := ax0; x <= ax1; x++ {
			bit := row + (x - z.X0)
			if z.Bits[bit>>3]&(1<<(bit&7)) != 0 {
				return true
			}
		}
	}
	return false
}

// OverlapScore is the planner's statistics-free selectivity estimate:
// the fraction of the zone's populated cells that fall inside area,
// times the fraction of the zone's tick span that [lo, hi] covers.
// Zero means MayIntersect is false — the scan is provably empty and the
// planner prunes it. A nil zone map (or a bounds-only one) scores the
// spatial factor 1: no information never prunes, it only loses ordering
// precision.
func (z *ZoneMap) OverlapScore(area geo.Rect, lo, hi int) float64 {
	if z == nil {
		return 1
	}
	if !z.MayIntersect(area, lo, hi) {
		return 0
	}
	tickFrac := 1.0
	if span := z.TickHi - z.TickLo + 1; span > 0 {
		overlap := min(hi, z.TickHi) - max(lo, z.TickLo) + 1
		tickFrac = float64(overlap) / float64(span)
	}
	if z.W == 0 || z.H == 0 || len(z.Bits) == 0 {
		return tickFrac // bounds-only zone map: no cell bitmap to consult
	}
	ax0 := max(cellFloor(area.MinX, z.GC), z.X0)
	ay0 := max(cellFloor(area.MinY, z.GC), z.Y0)
	ax1 := min(cellFloor(area.MaxX, z.GC), z.X0+z.W-1)
	ay1 := min(cellFloor(area.MaxY, z.GC), z.Y0+z.H-1)
	inside := 0
	for y := ay0; y <= ay1; y++ {
		row := (y - z.Y0) * z.W
		for x := ax0; x <= ax1; x++ {
			bit := row + (x - z.X0)
			if z.Bits[bit>>3]&(1<<(bit&7)) != 0 {
				inside++
			}
		}
	}
	if inside == 0 {
		// MayIntersect already returned true, so the area clips to a
		// populated bound but hits no marked cell — rank it at the floor
		// without pruning (pruning rights belong to MayIntersect alone).
		return 1e-9 * tickFrac
	}
	return float64(inside) / float64(z.populated()) * tickFrac
}

// populated counts the bitmap's marked cells, computed once and cached
// (the bitmap is immutable after build/load).
func (z *ZoneMap) populated() int {
	if n := z.popCount.Load(); n > 0 {
		return int(n)
	}
	n := 0
	for _, b := range z.Bits {
		n += bits.OnesCount8(b)
	}
	if n == 0 {
		n = 1 // unreachable with a live bitmap; guards the division
	}
	z.popCount.Store(int32(n))
	return n
}

// persistZone writes the segment's zone map sidecar with the same
// crash-safe publish sequence as the blob and the manifest.
func (s *Segment) persistZone(dir string) error {
	if s.Zone == nil {
		return nil
	}
	blob, err := json.Marshal(s.Zone)
	if err != nil {
		return err
	}
	_, err = durableSwap(dir, zoneFileName(s.ID), func(f *os.File) (int64, error) {
		n, err := f.Write(append(blob, '\n'))
		return int64(n), err
	})
	if err != nil {
		return fmt.Errorf("serve: persisting zone map for segment %d: %w", s.ID, err)
	}
	return nil
}

// loadZoneMap reads a segment's persisted zone map; ok is false when the
// sidecar is missing, unparsable, or was built for a different version or
// grid size — the caller then rebuilds from the engine.
func loadZoneMap(dir string, id uint64, gc float64) (*ZoneMap, bool) {
	raw, err := os.ReadFile(filepath.Join(dir, zoneFileName(id)))
	if err != nil {
		return nil, false
	}
	var z ZoneMap
	if err := json.Unmarshal(raw, &z); err != nil {
		return nil, false
	}
	if z.Version != zoneMapVersion || z.GC != gc {
		return nil, false
	}
	// Shape sanity: a corrupt-but-parseable sidecar must be rebuilt, not
	// trusted — a malformed bitmap frame would turn MayIntersect into a
	// permanent (and silent) segment skip.
	if z.W < 0 || z.H < 0 || z.W*z.H > maxZoneBits ||
		(z.W*z.H > 0 && len(z.Bits) < (z.W*z.H+7)/8) {
		return nil, false
	}
	return &z, true
}
