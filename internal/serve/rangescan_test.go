package serve

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// windowRects samples query rectangles anchored on ingested positions
// (so probes hit populated space) at sizes from sub-cell to several
// cells, plus one far-away rect that exercises the zone-map planner.
func windowRects(cols []*traj.Column, n int, seed int64) []geo.Rect {
	rng := rand.New(rand.NewSource(seed))
	gc := geo.MetersToDegrees(100)
	rects := make([]geo.Rect, 0, n+1)
	for i := 0; i < n; i++ {
		col := cols[rng.Intn(len(cols))]
		p := col.Points[rng.Intn(col.Len())]
		w := gc * (0.5 + 3*rng.Float64())
		rects = append(rects, geo.Rect{MinX: p.X - w/2, MinY: p.Y - w/2, MaxX: p.X + w/2, MaxY: p.Y + w/2})
	}
	rects = append(rects, geo.Rect{MinX: 10, MinY: 10, MaxX: 11, MaxY: 11}) // nowhere near Porto
	return rects
}

// TestWindowEquivalenceSuite is the range-scan acceptance suite: Window
// (segment-native range executor) must match WindowPerTick (the legacy
// per-tick reference) and, in exact mode, brute-force ground truth — on
// spans straddling segment boundaries, the sealed/hot frontier, empty
// ticks, and spans entirely off the data. Run with -race.
func TestWindowEquivalenceSuite(t *testing.T) {
	d, cols := testData(t)
	opts := testOptions(d)
	opts.CompactInterval = time.Hour // compaction only via explicit Flush
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	// Ingest everything, then flush all but the freshest ticks so the
	// repository holds several sealed segments plus a live hot tail.
	lastTick := cols[len(cols)-1].Tick
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
		if col.Tick == lastTick-10 {
			if err := repo.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if repo.Stats().Segments < 2 {
		t.Fatalf("want ≥ 2 sealed segments, got %d", repo.Stats().Segments)
	}
	if repo.Stats().HotPoints == 0 {
		t.Fatal("want a non-empty hot tail")
	}

	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	spans := [][2]int{
		{0, lastTick},                 // whole history: every segment + hot
		{lastTick - 12, lastTick + 5}, // straddles sealed/hot and runs past the data
		{-10, 3},                      // straddles the epoch
		{lastTick + 3, lastTick + 30}, // hot-only plus empty future ticks
	}
	for i := 0; i < 8; i++ {
		lo := rng.Intn(lastTick + 1)
		spans = append(spans, [2]int{lo, lo + rng.Intn(lastTick-lo+4)})
	}
	for _, rect := range windowRects(cols, 6, 21) {
		for _, sp := range spans {
			for _, exact := range []bool{false, true} {
				got, err := repo.Window(ctx, rect, sp[0], sp[1], exact)
				if err != nil {
					t.Fatalf("Window(%v, %d..%d, exact=%v): %v", rect, sp[0], sp[1], exact, err)
				}
				want, err := repo.WindowPerTick(ctx, rect, sp[0], sp[1], exact)
				if err != nil {
					t.Fatalf("WindowPerTick(%v, %d..%d, exact=%v): %v", rect, sp[0], sp[1], exact, err)
				}
				if !sameIDs(got.IDs, want.IDs) {
					t.Fatalf("rect %v span %d..%d exact=%v:\nrange   %v\npertick %v",
						rect, sp[0], sp[1], exact, got.IDs, want.IDs)
				}
				if got.Ticks != want.Ticks {
					t.Fatalf("rect %v span %d..%d exact=%v: ticks probed %d vs %d",
						rect, sp[0], sp[1], exact, got.Ticks, want.Ticks)
				}
				if got.Sources != want.Sources {
					t.Fatalf("rect %v span %d..%d exact=%v: sources %d vs %d",
						rect, sp[0], sp[1], exact, got.Sources, want.Sources)
				}
				if exact {
					truth := bruteWindow(cols, rect, sp[0], sp[1])
					if !sameIDs(got.IDs, truth) {
						t.Fatalf("rect %v span %d..%d: exact window %v vs ground truth %v",
							rect, sp[0], sp[1], got.IDs, truth)
					}
				}
			}
		}
	}

	st := repo.Stats()
	if st.Window.Queries == 0 || st.Window.SegmentsScanned == 0 {
		t.Fatalf("window stats not populated: %+v", st.Window)
	}
	if st.Window.SegmentsSkipped == 0 {
		t.Fatalf("the far-away rect should have been zone-map pruned: %+v", st.Window)
	}
}

// TestWindowRacingCompaction runs exact windows concurrently with live
// ingestion and compaction: every answer over the fully ingested prefix
// must equal brute-force ground truth no matter where the sealed
// watermark lands mid-request. This is the regression test for the
// per-request routing snapshot — the legacy per-tick path re-locked the
// view per tick and could serve a window from a mix of pre- and
// post-compaction views. Run with -race.
func TestWindowRacingCompaction(t *testing.T) {
	d, cols := testData(t)
	opts := testOptions(d)
	repo, err := Open(opts) // fast CompactInterval: compactor races for real
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	rects := windowRects(cols, 4, 33)
	var ingested atomic.Int64
	ingested.Store(-1)
	var done atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for wk := 0; wk < 4; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(50 + wk)))
			for !done.Load() {
				hi := ingested.Load()
				if hi < 1 {
					continue
				}
				// Only ticks fully ingested before the query starts have a
				// fixed ground truth.
				to := cols[rng.Intn(int(hi))].Tick
				from := to - rng.Intn(20)
				rect := rects[rng.Intn(len(rects))]
				res, err := repo.Window(context.Background(), rect, from, to, true)
				if err != nil {
					errCh <- err
					return
				}
				if want := bruteWindow(cols, rect, from, to); !sameIDs(res.IDs, want) {
					errCh <- errMismatch(rect, from, to, res.IDs, want)
					return
				}
			}
		}(wk)
	}
	for i, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
		ingested.Store(int64(i))
		if i%7 == 0 {
			time.Sleep(time.Millisecond) // let the compactor overlap queries
		}
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

type windowMismatch struct {
	rect      geo.Rect
	from, to  int
	got, want []traj.ID
}

func errMismatch(rect geo.Rect, from, to int, got, want []traj.ID) error {
	return &windowMismatch{rect: rect, from: from, to: to, got: got, want: want}
}

func (m *windowMismatch) Error() string {
	return strings.Join([]string{
		"window mismatch", m.rect.String(),
	}, " ") + ": got/want differ"
}

// TestZoneMapPersistenceAndRebuild checks the sidecar lifecycle: zone
// maps are written next to segments, reload from disk, are rebuilt (and
// re-persisted) when deleted — the old-manifest upgrade path — and prune
// identically either way.
func TestZoneMapPersistenceAndRebuild(t *testing.T) {
	d, cols := testData(t)
	opts := testOptions(d)
	opts.Dir = t.TempDir()
	opts.CompactInterval = time.Hour
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	segs := repo.Segments()
	if len(segs) < 2 {
		t.Fatalf("want ≥ 2 segments, got %d", len(segs))
	}
	farRect := geo.Rect{MinX: 10, MinY: 10, MaxX: 11, MaxY: 11}
	res, err := repo.Window(context.Background(), farRect, 0, cols[len(cols)-1].Tick, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 0 || res.SegmentsSkipped != len(segs) {
		t.Fatalf("far rect: ids %v, skipped %d of %d segments", res.IDs, res.SegmentsSkipped, len(segs))
	}
	zones := make(map[uint64]*ZoneMap, len(segs))
	for _, s := range segs {
		if s.Zone == nil {
			t.Fatalf("segment %d has no zone map", s.ID)
		}
		zones[s.ID] = s.Zone
		if _, err := os.Stat(filepath.Join(opts.Dir, zoneFileName(s.ID))); err != nil {
			t.Fatalf("segment %d zone sidecar: %v", s.ID, err)
		}
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	// Reload from the persisted sidecars.
	repo2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range repo2.Segments() {
		want := zones[s.ID]
		if s.Zone == nil || s.Zone.Bounds != want.Bounds || s.Zone.TickLo != want.TickLo ||
			s.Zone.TickHi != want.TickHi || s.Zone.W != want.W || s.Zone.H != want.H {
			t.Fatalf("segment %d zone map changed across reload: %+v vs %+v", s.ID, s.Zone, want)
		}
	}
	if err := repo2.Close(); err != nil {
		t.Fatal(err)
	}

	// Delete the sidecars (an old-format directory) and reopen: the zone
	// maps must be rebuilt from the engines and re-persisted.
	for id := range zones {
		if err := os.Remove(filepath.Join(opts.Dir, zoneFileName(id))); err != nil {
			t.Fatal(err)
		}
	}
	repo3, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo3.Close()
	for _, s := range repo3.Segments() {
		want := zones[s.ID]
		if s.Zone == nil || s.Zone.Bounds != want.Bounds || s.Zone.TickLo != want.TickLo ||
			s.Zone.TickHi != want.TickHi {
			t.Fatalf("segment %d zone map not rebuilt faithfully: %+v vs %+v", s.ID, s.Zone, want)
		}
		if _, err := os.Stat(filepath.Join(opts.Dir, zoneFileName(s.ID))); err != nil {
			t.Fatalf("segment %d zone sidecar not re-persisted: %v", s.ID, err)
		}
	}
	res, err = repo3.Window(context.Background(), farRect, 0, cols[len(cols)-1].Tick, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 0 || res.SegmentsSkipped != len(zones) {
		t.Fatalf("far rect after rebuild: ids %v, skipped %d of %d", res.IDs, res.SegmentsSkipped, len(zones))
	}
}

// TestZoneMapRejectsCorruptSidecar checks loadZoneMap refuses malformed
// frames instead of trusting them: a negative-dimension bitmap would
// make MayIntersect silently prune its segment forever.
func TestZoneMapRejectsCorruptSidecar(t *testing.T) {
	dir := t.TempDir()
	gc := geo.MetersToDegrees(100)
	// ZoneMap holds an atomic counter, so each trial builds a fresh value
	// instead of copying one.
	good := func() *ZoneMap {
		return &ZoneMap{Version: zoneMapVersion, GC: gc, TickLo: 0, TickHi: 9,
			Bounds: geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, X0: 0, Y0: 0, W: 2, H: 2, Bits: []byte{0xf}}
	}
	for name, mutate := range map[string]func(z *ZoneMap){
		"negative-w":    func(z *ZoneMap) { z.W, z.H = -4, -2 },
		"short-bits":    func(z *ZoneMap) { z.W, z.H, z.Bits = 100, 100, []byte{1} },
		"wrong-version": func(z *ZoneMap) { z.Version = 99 },
		"wrong-gc":      func(z *ZoneMap) { z.GC = gc * 2 },
	} {
		z := good()
		mutate(z)
		blob, err := json.Marshal(z)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, zoneFileName(1)), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := loadZoneMap(dir, 1, gc); ok {
			t.Fatalf("%s: corrupt sidecar accepted", name)
		}
	}
	blob, err := json.Marshal(good())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, zoneFileName(1)), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := loadZoneMap(dir, 1, gc); !ok {
		t.Fatal("well-formed sidecar rejected")
	}
}

// TestZoneOrphanGC checks startup GC reclaims zone sidecars whose
// segment the manifest no longer references.
func TestZoneOrphanGC(t *testing.T) {
	d, cols := testData(t)
	opts := testOptions(d)
	opts.Dir = t.TempDir()
	opts.CompactInterval = time.Hour
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range cols[:20] {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(opts.Dir, zoneFileName(987654))
	if err := os.WriteFile(orphan, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	repo2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan zone sidecar survived startup GC: %v", err)
	}
	if repo2.Stats().OrphansRemoved == 0 {
		t.Fatal("orphan removal not counted")
	}
}

// TestWindowDeadline checks the range executor still honors deadlines
// promptly (the per-shard scans check ctx between emits).
func TestWindowDeadline(t *testing.T) {
	d, cols := testData(t)
	opts := testOptions(d)
	opts.CompactInterval = time.Hour
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := repo.Window(ctx, geo.Rect{MinX: -9, MinY: 41, MaxX: -8, MaxY: 42}, 0, cols[len(cols)-1].Tick, false); err != context.Canceled {
		t.Fatalf("cancelled window: err = %v, want context.Canceled", err)
	}
}
