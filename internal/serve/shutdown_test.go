package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// TestDrainAndCloseDrainsInflight starts a real http.Server on the
// repository, parks a request inside the handler, and checks the
// shutdown sequence: DrainAndClose waits for the in-flight request to
// finish (the client gets a full 200), then flushes the hot tail so the
// final segments and manifest land on disk, then closes the repository —
// a reopened repository serves the data a bare kill would have lost.
func TestDrainAndCloseDrainsInflight(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(nil)
	opts.Dir = dir
	// A big hot tail guarantees nothing is sealed before the shutdown
	// flush: every persisted point below proves the drain path flushed.
	opts.HotTicks = 1 << 20
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 20; tick++ {
		if err := repo.Ingest(tick, []traj.ID{1}, []geo.Point{{X: 1, Y: 1 + float64(tick)*1e-4}}); err != nil {
			t.Fatal(err)
		}
	}

	inHandler := make(chan struct{})
	var release atomic.Bool
	handler := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/v1/query" {
			close(inHandler)
			for !release.Load() {
				time.Sleep(time.Millisecond)
			}
		}
		repo.Handler().ServeHTTP(w, req)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	url := "http://" + ln.Addr().String()

	type result struct {
		code int
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		blob, _ := json.Marshal(QueryRequest{Queries: []STRQRequest{{P: geo.Pt(1, 1), Tick: 3}}})
		resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(blob))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			resCh <- result{err: err}
			return
		}
		if len(qr.Answers) != 1 || qr.Answers[0].Err != "" {
			resCh <- result{err: fmt.Errorf("bad answers %+v", qr.Answers)}
			return
		}
		resCh <- result{code: resp.StatusCode}
	}()
	<-inHandler

	// Shutdown begins while the request is parked; release it shortly
	// after so the drain has something real to wait for.
	doneCh := make(chan error, 1)
	go func() { doneCh <- DrainAndClose(srv, repo, 10*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	release.Store(true)

	if err := <-doneCh; err != nil {
		t.Fatalf("DrainAndClose: %v", err)
	}
	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", res.err)
	}
	if res.code != http.StatusOK {
		t.Fatalf("in-flight request: status %d", res.code)
	}

	// The flush ran: everything is sealed on disk and reloads.
	reopened, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	st := reopened.Stats()
	if st.SegmentPoints != 20 || st.HotPoints != 0 {
		t.Fatalf("reloaded stats = %+v, want all 20 points sealed", st)
	}
}

// TestDrainAndCloseTimeoutStillCloses checks the unhappy path: a request
// that never finishes within the drain window must not wedge shutdown —
// the connection is cut, the flush still runs, and the repository closes.
func TestDrainAndCloseTimeoutStillCloses(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(nil)
	opts.Dir = dir
	opts.HotTicks = 1 << 20
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Ingest(0, []traj.ID{1}, []geo.Point{{X: 1, Y: 1}}); err != nil {
		t.Fatal(err)
	}

	inHandler := make(chan struct{})
	unblock := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		close(inHandler)
		<-unblock // longer than the drain window
		repo.Handler().ServeHTTP(w, req)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	go func() {
		blob, _ := json.Marshal(QueryRequest{Queries: []STRQRequest{{P: geo.Pt(1, 1), Tick: 0}}})
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/query", "application/json", bytes.NewReader(blob))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inHandler

	start := time.Now()
	err = DrainAndClose(srv, repo, 50*time.Millisecond)
	close(unblock)
	if err == nil {
		t.Fatal("a blown drain window should surface as an error")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v despite the 50ms drain window", elapsed)
	}
	// The flush still ran before close.
	reopened, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if st := reopened.Stats(); st.SegmentPoints != 1 {
		t.Fatalf("reloaded stats = %+v, want the point sealed", st)
	}
}
