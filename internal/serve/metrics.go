package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"ppqtraj/internal/admit"
	"ppqtraj/internal/cache"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/wal"
)

// repoMetrics is the repository's registry handle plus the instruments
// the serving layer owns outright: request counters, per-stage latency
// histograms, and the batch-size distribution. Counters whose source of
// truth lives in another package (WAL, admission, cache) reach the
// registry through snapshot sources instead, so there is exactly one
// copy of every number and /v1/stats and /metrics are views over the
// same Snapshot.
type repoMetrics struct {
	reg *obs.Registry

	ingestPoints  *obs.Counter
	ingestBatches *obs.Counter
	ingestErrors  *obs.Counter

	compactions     *obs.Counter
	compactedPoints *obs.Counter

	queries     *obs.Counter
	queryErrors *obs.Counter

	winQueries      *obs.Counter
	winSegsScanned  *obs.Counter
	winSegsSkipped  *obs.Counter
	winCellsScanned *obs.Counter
	winCellsSkipped *obs.Counter

	execPlans      *obs.Counter
	execOperators  *obs.Counter
	execOpsPerPlan *obs.Histogram
	execOpRows     *obs.Histogram

	slowQueries *obs.Counter

	batchPoints *obs.Histogram
	reqSeconds  *obs.HistogramVec // label: endpoint
	ingestStage *obs.HistogramVec // label: stage
	queryStage  *obs.HistogramVec // label: stage
}

func newRepoMetrics(reg *obs.Registry) *repoMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &repoMetrics{
		reg: reg,
		ingestPoints: reg.Counter("ppq_ingest_points_total",
			"Points accepted by ingest (acknowledged batches only)."),
		ingestBatches: reg.Counter("ppq_ingest_batches_total",
			"Acknowledged per-tick ingest batches."),
		ingestErrors: reg.Counter("ppq_ingest_errors_total",
			"Rejected or failed ingest batches (validation, WAL append, fsync)."),
		compactions: reg.Counter("ppq_compactions_total",
			"Sealed segments published by the compactor."),
		compactedPoints: reg.Counter("ppq_compacted_points_total",
			"Points moved from the hot tail into sealed segments."),
		queries: reg.Counter("ppq_queries_total",
			"Repository queries started (STRQ probes and window queries)."),
		queryErrors: reg.Counter("ppq_query_errors_total",
			"Queries that failed (validation, deadline, cancellation, engine)."),
		winQueries: reg.Counter("ppq_window_queries_total",
			"Window queries answered by the range executor."),
		winSegsScanned: reg.Counter("ppq_window_segments_scanned_total",
			"Overlapping segments the window planner scanned."),
		winSegsSkipped: reg.Counter("ppq_window_segments_skipped_total",
			"Overlapping segments the zone-map planner pruned without scanning."),
		winCellsScanned: reg.Counter("ppq_window_cells_scanned_total",
			"Populated index cells window scans walked."),
		winCellsSkipped: reg.Counter("ppq_window_cells_skipped_total",
			"Populated index cells window scans pruned before any decode."),
		execPlans: reg.Counter("ppq_exec_plans_total",
			"Window plans executed by the iterator executor."),
		execOperators: reg.Counter("ppq_exec_operators_total",
			"Operators composed across iterator window plans."),
		execOpsPerPlan: reg.Histogram("ppq_exec_operators_per_plan_count",
			"Operators composed per iterator window plan.", obs.CountBuckets),
		execOpRows: reg.Histogram("ppq_exec_operator_rows_count",
			"Rows emitted per operator aggregate of an iterator window plan.", obs.CountBuckets),
		slowQueries: reg.Counter("ppq_slow_requests_total",
			"Requests that exceeded the slow-query threshold."),
		batchPoints: reg.Histogram("ppq_ingest_batch_points",
			"Points per acknowledged ingest batch.", obs.CountBuckets),
		reqSeconds: reg.HistogramVec("ppq_request_seconds",
			"End-to-end admitted request latency by endpoint.",
			"endpoint", obs.LatencyBuckets),
		ingestStage: reg.HistogramVec("ppq_ingest_stage_seconds",
			"Per-stage time of ingest-class requests (stages partition the request).",
			"stage", obs.LatencyBuckets),
		queryStage: reg.HistogramVec("ppq_query_stage_seconds",
			"Per-stage time of query-class requests (stages partition the request).",
			"stage", obs.LatencyBuckets),
	}
}

// registerSources bridges the package-owned truth (WAL, admission,
// cache, routing view) into every registry snapshot. All the readers are
// nil-safe, so a memory-only or cache-less repository just reports
// zeros. Must run after r's fields are in place.
func (r *Repository) registerSources() {
	r.met.reg.Source(func(emit func(obs.Sample)) {
		segs, sealed := r.view()
		var segPts, rawAcc, disk int64
		for _, s := range segs {
			segPts += int64(s.Points)
			rawAcc += s.Eng.RawAccesses.Load()
			disk += s.SizeBytes
		}
		gauge := func(name, help string, v float64) {
			emit(obs.Sample{Name: name, Help: help, Kind: obs.KindGauge, Value: v})
		}
		counter := func(name, help string, v float64) {
			emit(obs.Sample{Name: name, Help: help, Kind: obs.KindCounter, Value: v})
		}
		gauge("ppq_segments", "Published sealed segments.", float64(len(segs)))
		gauge("ppq_segment_points", "Points resident in sealed segments.", float64(segPts))
		gauge("ppq_hot_points", "Points resident in the raw hot tail.", float64(r.hot.numPoints()))
		gauge("ppq_sealed_through", "Highest tick served by sealed segments (-1 = none).", float64(sealed))
		gauge("ppq_disk_bytes", "Bytes of sealed segment files on disk.", float64(disk))
		counter("ppq_raw_accesses_total", "Exact-mode raw storage verifications.", float64(rawAcc))
		degraded := 0.0
		if r.Degraded() != nil {
			degraded = 1
		}
		gauge("ppq_degraded", "1 while the WAL is fail-stopped (ingest rejected).", degraded)
		draining := 0.0
		if r.draining.Load() {
			draining = 1
		}
		gauge("ppq_draining", "1 while the server is draining for shutdown.", draining)
		counter("ppq_replayed_points_total",
			"WAL points re-applied to the hot tail at startup.", float64(r.replayedPoints))
		counter("ppq_orphans_removed_total",
			"Unreferenced data files deleted at startup.", float64(r.orphansRemoved))

		ws := r.wal.Stats()
		walGauge := func(name, help string, v float64) { gauge(name, help, v) }
		walGauge("ppq_wal_segments", "Live WAL segment files.", float64(ws.Segments))
		walGauge("ppq_wal_bytes", "Bytes across live WAL segment files.", float64(ws.Bytes))
		counter("ppq_wal_syncs_total", "WAL fsync calls.", float64(ws.Syncs))
		counter("ppq_wal_appends_total", "Records appended to the WAL.", float64(ws.Appends))
		counter("ppq_wal_commits_total", "Successful SyncAlways commits.", float64(ws.Commits))
		counter("ppq_wal_replayed_records_total", "Records replayed at open.", float64(ws.ReplayedRecords))
		counter("ppq_wal_replayed_points_total", "Points replayed at open.", float64(ws.ReplayedPoints))
		counter("ppq_wal_reclaimed_segments_total", "WAL files reclaimed after sealing.", float64(ws.Reclaimed))
		failed := 0.0
		if ws.Failed != "" {
			failed = 1
		}
		gauge("ppq_wal_failed", "1 once the WAL has latched a disk failure.", failed)

		as := r.admit.Snapshot()
		perClass := func(name, help string, kind obs.Kind, ingest, query float64) {
			emit(obs.Sample{Name: name, Help: help, Kind: kind, Label: "class", LabelValue: "ingest", Value: ingest})
			emit(obs.Sample{Name: name, Help: help, Kind: kind, Label: "class", LabelValue: "query", Value: query})
		}
		perClass("ppq_admission_admitted_total", "Requests admitted through the class gate.",
			obs.KindCounter, float64(as.Ingest.Admitted), float64(as.Query.Admitted))
		perClass("ppq_admission_shed_total", "Requests shed by the class gate.",
			obs.KindCounter, float64(as.Ingest.Shed), float64(as.Query.Shed))
		perClass("ppq_admission_in_flight", "Requests currently running per class.",
			obs.KindGauge, float64(as.Ingest.InFlight), float64(as.Query.InFlight))
		perClass("ppq_admission_in_flight_high_water", "Max concurrent requests observed per class.",
			obs.KindGauge, float64(as.Ingest.HighWater), float64(as.Query.HighWater))
		perClass("ppq_admission_queued", "Requests currently waiting for a slot per class.",
			obs.KindGauge, float64(as.Ingest.Queued), float64(as.Query.Queued))
		perClass("ppq_admission_max_in_flight", "Configured in-flight cap per class (0 = unlimited).",
			obs.KindGauge, float64(as.Ingest.MaxInFlight), float64(as.Query.MaxInFlight))
		counter("ppq_admission_quota_rejected_total",
			"Requests rejected by per-client token buckets.", float64(as.QuotaRejected))
		gauge("ppq_admission_quota_clients", "Live per-client quota buckets.", float64(as.QuotaClients))

		lag, lagKnown := r.ReplLag()
		gauge("ppq_repl_lag_ticks",
			"Follower staleness in ticks behind the primary's last-reported watermark (0 on a primary).",
			float64(lag))
		known := 0.0
		if lagKnown {
			known = 1
		}
		gauge("ppq_repl_lag_known",
			"1 once the follower has heard from its primary at least once (always 1 on a primary).", known)
		gauge("ppq_repl_applied_tick",
			"Highest tick applied to this repository (-1 while empty).", float64(r.appliedTick.Load()))

		cs := r.cells.Snapshot()
		counter("ppq_cache_hits_total", "Decoded-cell cache hits.", float64(cs.Hits))
		counter("ppq_cache_misses_total", "Decoded-cell cache misses.", float64(cs.Misses))
		counter("ppq_cache_evictions_total", "Decoded-cell cache evictions.", float64(cs.Evictions))
		gauge("ppq_cache_entries", "Decoded-cell cache entries resident.", float64(cs.Entries))
		gauge("ppq_cache_bytes", "Decoded-cell cache bytes resident.", float64(cs.Bytes))
	})
}

// Metrics returns the repository's registry (for embedding the server's
// series into a larger process, and for tests).
func (r *Repository) Metrics() *obs.Registry { return r.met.reg }

// statsFromSnapshot rebuilds the legacy /v1/stats payload as a view over
// ONE registry snapshot, so every counter in a response was read in the
// same collection pass. Only strings (last error, the WAL's latched
// failure) are fetched directly — they are not representable as metric
// values.
func (r *Repository) statsFromSnapshot(snap *obs.Snapshot) Stats {
	walFailed := ""
	if err := r.wal.Failed(); err != nil {
		walFailed = err.Error()
	}
	return Stats{
		Segments:        int(snap.Int("ppq_segments")),
		SegmentPoints:   int(snap.Int("ppq_segment_points")),
		HotPoints:       int(snap.Int("ppq_hot_points")),
		SealedThrough:   int(snap.Int("ppq_sealed_through")),
		IngestedPoints:  snap.Int("ppq_ingest_points_total"),
		Compactions:     snap.Int("ppq_compactions_total"),
		CompactedPoints: snap.Int("ppq_compacted_points_total"),
		Queries:         snap.Int("ppq_queries_total"),
		QueryErrors:     snap.Int("ppq_query_errors_total"),
		RawAccesses:     snap.Int("ppq_raw_accesses_total"),
		DiskBytes:       snap.Int("ppq_disk_bytes"),
		LastError:       r.lastErr.Load().(string),
		Degraded:        snap.Value("ppq_degraded") != 0,
		Cache: cache.Stats{
			Hits:      snap.Int("ppq_cache_hits_total"),
			Misses:    snap.Int("ppq_cache_misses_total"),
			Evictions: snap.Int("ppq_cache_evictions_total"),
			Entries:   snap.Int("ppq_cache_entries"),
			Bytes:     snap.Int("ppq_cache_bytes"),
		},
		WAL: wal.Stats{
			Segments:        int(snap.Int("ppq_wal_segments")),
			Bytes:           snap.Int("ppq_wal_bytes"),
			Syncs:           snap.Int("ppq_wal_syncs_total"),
			Appends:         snap.Int("ppq_wal_appends_total"),
			Commits:         snap.Int("ppq_wal_commits_total"),
			ReplayedRecords: snap.Int("ppq_wal_replayed_records_total"),
			ReplayedPoints:  snap.Int("ppq_wal_replayed_points_total"),
			Reclaimed:       snap.Int("ppq_wal_reclaimed_segments_total"),
			Failed:          walFailed,
		},
		WALReplayedPoints: snap.Int("ppq_replayed_points_total"),
		OrphansRemoved:    snap.Int("ppq_orphans_removed_total"),
		Window: WindowStats{
			Queries:         snap.Int("ppq_window_queries_total"),
			SegmentsScanned: snap.Int("ppq_window_segments_scanned_total"),
			SegmentsSkipped: snap.Int("ppq_window_segments_skipped_total"),
			CellsScanned:    snap.Int("ppq_window_cells_scanned_total"),
			CellsSkipped:    snap.Int("ppq_window_cells_skipped_total"),
			Plans:           snap.Int("ppq_exec_plans_total"),
			Operators:       snap.Int("ppq_exec_operators_total"),
		},
		Admission: admit.Stats{
			Ingest: admit.GateStats{
				MaxInFlight: int(snap.Labeled("ppq_admission_max_in_flight", "ingest")),
				InFlight:    int64(snap.Labeled("ppq_admission_in_flight", "ingest")),
				HighWater:   int64(snap.Labeled("ppq_admission_in_flight_high_water", "ingest")),
				Queued:      int64(snap.Labeled("ppq_admission_queued", "ingest")),
				Admitted:    int64(snap.Labeled("ppq_admission_admitted_total", "ingest")),
				Shed:        int64(snap.Labeled("ppq_admission_shed_total", "ingest")),
			},
			Query: admit.GateStats{
				MaxInFlight: int(snap.Labeled("ppq_admission_max_in_flight", "query")),
				InFlight:    int64(snap.Labeled("ppq_admission_in_flight", "query")),
				HighWater:   int64(snap.Labeled("ppq_admission_in_flight_high_water", "query")),
				Queued:      int64(snap.Labeled("ppq_admission_queued", "query")),
				Admitted:    int64(snap.Labeled("ppq_admission_admitted_total", "query")),
				Shed:        int64(snap.Labeled("ppq_admission_shed_total", "query")),
			},
			QuotaRejected: snap.Int("ppq_admission_quota_rejected_total"),
			QuotaClients:  int(snap.Int("ppq_admission_quota_clients")),
		},
		Repl: r.replStats(),
	}
}

// reqObs carries one admitted HTTP request's observability state: the
// trace whose laps partition the request, the endpoint label, and
// whether the client asked for the breakdown inline (?trace=1).
type reqObs struct {
	r         *Repository
	endpoint  string
	class     admit.Class
	tr        *obs.Trace
	wantTrace bool
	client    string
}

// beginRequest starts a trace and runs admission for one request. Shed
// requests return ok=false with the 429 already written (they are
// counted by the admission gate, not traced). The admission stage lap
// covers quota check + slot wait.
func (r *Repository) beginRequest(w http.ResponseWriter, req *http.Request, endpoint string, class admit.Class) (*reqObs, func(), bool) {
	tr := obs.NewTrace()
	release, ok := r.admitHTTP(w, req, class)
	if !ok {
		return nil, nil, false
	}
	tr.Lap("admission")
	return &reqObs{
		r:         r,
		endpoint:  endpoint,
		class:     class,
		tr:        tr,
		wantTrace: req.URL.Query().Get("trace") == "1",
		client:    admit.ClientKey(req.Header.Get, req.RemoteAddr),
	}, release, true
}

// finish books the completed request into the registry (endpoint latency
// plus per-stage histograms) and emits the slow-query log line when the
// request overran the threshold.
func (ro *reqObs) finish() {
	rep := ro.tr.Report()
	m := ro.r.met
	m.reqSeconds.With(ro.endpoint).Observe(rep.WallMs / 1e3)
	stageVec := m.queryStage
	if ro.class == admit.Ingest {
		stageVec = m.ingestStage
	}
	for name, d := range ro.tr.Stages() {
		stageVec.With(name).ObserveDuration(d)
	}
	if sq := ro.r.opts.SlowQuery; sq > 0 && rep.WallMs >= sq.Seconds()*1e3 {
		m.slowQueries.Inc()
		ro.r.emitSlowQuery(ro, rep)
	}
}

// slowQueryLine is the slow-query log's JSON schema: one self-contained
// line per offending request, structured so a log pipeline can aggregate
// stages and facts without parsing prose.
type slowQueryLine struct {
	TS       string            `json:"ts"`
	Level    string            `json:"level"`
	Msg      string            `json:"msg"`
	Endpoint string            `json:"endpoint"`
	Client   string            `json:"client,omitempty"`
	WallMs   float64           `json:"wall_ms"`
	StagedMs float64           `json:"staged_ms"`
	Stages   []obs.StageReport `json:"stages"`
	Facts    map[string]int64  `json:"facts,omitempty"`
}

func (r *Repository) emitSlowQuery(ro *reqObs, rep *obs.TraceReport) {
	line, err := json.Marshal(slowQueryLine{
		TS:       time.Now().UTC().Format(time.RFC3339Nano),
		Level:    "warn",
		Msg:      "slow_query",
		Endpoint: ro.endpoint,
		Client:   ro.client,
		WallMs:   rep.WallMs,
		StagedMs: rep.StagedMs,
		Stages:   rep.Stages,
		Facts:    rep.Facts,
	})
	if err != nil {
		return
	}
	r.log.Raw(line)
}
