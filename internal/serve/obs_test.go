package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"ppqtraj/internal/obs"
)

// obsServer opens a memory-only repository with the given extra option
// tweaks and serves its handler.
func obsServer(t *testing.T, tweak func(*Options)) (*Repository, *httptest.Server) {
	t.Helper()
	opts := testOptions(nil)
	opts.HotTicks = 1 << 20 // keep ticks hot: no compaction noise unless a test flushes
	opts.CompactInterval = 0
	if tweak != nil {
		tweak(&opts)
	}
	repo, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	srv := httptest.NewServer(repo.Handler())
	t.Cleanup(srv.Close)
	return repo, srv
}

func obsPost(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, blob
}

func obsIngestBody(tick, base, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"ticks":[{"tick":%d,"points":[`, tick)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"id":%d,"x":%g,"y":%g}`, base+i, -8.6+float64(i)*1e-4, 41.1+float64(tick)*1e-4)
	}
	b.WriteString(`]}]}`)
	return b.String()
}

func obsQueryBody(tick, n int) string {
	var b strings.Builder
	b.WriteString(`{"queries":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"p":{"X":%g,"Y":41.1},"tick":%d}`, -8.6+float64(i)*1e-4, tick)
	}
	b.WriteString(`]}`)
	return b.String()
}

// TestMetricsExposition drives both hot paths and asserts /metrics
// serves well-formed Prometheus text covering the ingest, query, WAL,
// admission, and cache families the scrape contract promises.
func TestMetricsExposition(t *testing.T) {
	_, srv := obsServer(t, nil)
	for tick := 0; tick < 3; tick++ {
		if resp, blob := obsPost(t, srv.URL+"/v1/ingest", obsIngestBody(tick, 1, 50)); resp.StatusCode != 200 {
			t.Fatalf("ingest: %d %s", resp.StatusCode, blob)
		}
	}
	if resp, blob := obsPost(t, srv.URL+"/v1/query",
		`{"queries":[{"p":{"X":-8.6,"Y":41.1},"tick":1}]}`); resp.StatusCode != 200 {
		t.Fatalf("query: %d %s", resp.StatusCode, blob)
	}
	if resp, blob := obsPost(t, srv.URL+"/v1/window",
		`{"rect":{"MinX":-9,"MinY":41,"MaxX":-8,"MaxY":42},"from":0,"to":2}`); resp.StatusCode != 200 {
		t.Fatalf("window: %d %s", resp.StatusCode, blob)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	text := string(blob)

	// Every series the scrape contract names must be present.
	for _, name := range []string{
		"ppq_ingest_points_total", "ppq_ingest_batches_total", "ppq_ingest_errors_total",
		"ppq_ingest_batch_points", "ppq_queries_total", "ppq_query_errors_total",
		"ppq_window_queries_total", "ppq_window_segments_scanned_total",
		"ppq_window_cells_scanned_total", "ppq_window_cells_skipped_total",
		"ppq_wal_syncs_total", "ppq_wal_appends_total", "ppq_wal_failed",
		"ppq_admission_admitted_total", "ppq_admission_shed_total", "ppq_admission_wait_seconds",
		"ppq_cache_hits_total", "ppq_cache_misses_total", "ppq_cache_bytes",
		"ppq_request_seconds", "ppq_ingest_stage_seconds", "ppq_query_stage_seconds",
		"ppq_segments", "ppq_hot_points", "ppq_degraded", "ppq_goroutines", "ppq_heap_alloc_bytes",
	} {
		if !strings.Contains(text, "# TYPE "+name+" ") {
			t.Errorf("/metrics missing family %s", name)
		}
	}

	// Exposition shape: every non-comment line is `name{labels} value`.
	lineRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRe.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}

	// Spot-check values against the workload: 150 points over 3 batches.
	if !strings.Contains(text, "ppq_ingest_points_total 150") {
		t.Errorf("ingest points series wrong:\n%s", grepLines(text, "ppq_ingest_points_total"))
	}
	if !strings.Contains(text, "ppq_ingest_batches_total 3") {
		t.Errorf("ingest batches series wrong:\n%s", grepLines(text, "ppq_ingest_batches_total"))
	}
	// The per-endpoint request histogram must carry one count per request.
	if !strings.Contains(text, `ppq_request_seconds_count{endpoint="ingest"} 3`) {
		t.Errorf("request histogram wrong:\n%s", grepLines(text, "ppq_request_seconds_count"))
	}
	// Histogram buckets must be cumulative: the +Inf bucket equals _count.
	if !strings.Contains(text, `ppq_request_seconds_bucket{endpoint="ingest",le="+Inf"} 3`) {
		t.Errorf("+Inf bucket wrong:\n%s", grepLines(text, `le="\+Inf"`))
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestSlowQueryLog sets a zero-distance threshold so every request is
// "slow" and asserts each emits one JSON line whose stage durations
// account for at least 90% of wall time.
func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	_, srv := obsServer(t, func(o *Options) {
		o.SlowQuery = 1 // 1ns: everything is slow
		// Error level drops routine chatter; Raw (the slow-query line)
		// bypasses the level filter by design.
		o.Log = obs.NewLogger(&syncWriter{mu: &mu, w: &buf}, obs.LevelError, obs.FormatJSON)
	})
	// Requests must be big enough that real stage work dominates the
	// fixed inter-lap overhead — the scale actual slow queries live at.
	if resp, blob := obsPost(t, srv.URL+"/v1/ingest", obsIngestBody(0, 1, 5000)); resp.StatusCode != 200 {
		t.Fatalf("ingest: %d %s", resp.StatusCode, blob)
	}
	if resp, blob := obsPost(t, srv.URL+"/v1/query", obsQueryBody(0, 500)); resp.StatusCode != 200 {
		t.Fatalf("query: %d %s", resp.StatusCode, blob)
	}

	mu.Lock()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("slow-query lines = %d, want 2: %q", len(lines), lines)
	}
	endpoints := map[string]bool{}
	for _, line := range lines {
		var rec struct {
			Msg      string  `json:"msg"`
			Endpoint string  `json:"endpoint"`
			WallMs   float64 `json:"wall_ms"`
			StagedMs float64 `json:"staged_ms"`
			Stages   []struct {
				Name string  `json:"name"`
				Ms   float64 `json:"ms"`
			} `json:"stages"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("slow-query line is not JSON: %v: %q", err, line)
		}
		if rec.Msg != "slow_query" {
			t.Fatalf("msg = %q", rec.Msg)
		}
		endpoints[rec.Endpoint] = true
		if rec.WallMs <= 0 || len(rec.Stages) == 0 {
			t.Fatalf("degenerate record: %q", line)
		}
		// The ≥90% accounting contract. Laps partition the request up to
		// the final write lap, which fires before finish() reads the
		// report, so the unaccounted residue is only dispatch overhead.
		if rec.StagedMs < 0.9*rec.WallMs {
			t.Errorf("%s: staged %.3fms < 90%% of wall %.3fms: %q",
				rec.Endpoint, rec.StagedMs, rec.WallMs, line)
		}
		var sum float64
		for _, s := range rec.Stages {
			sum += s.Ms
		}
		if diff := sum - rec.StagedMs; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("stage sum %.6f != staged_ms %.6f", sum, rec.StagedMs)
		}
	}
	if !endpoints["ingest"] || !endpoints["query"] {
		t.Fatalf("endpoints logged = %v, want ingest and query", endpoints)
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestTraceInline asserts ?trace=1 returns the stage breakdown in the
// response and that the stages partition the measured wall time, for
// both the query and window endpoints (the window executor contributes
// its own plan/scan/merge laps plus planner facts).
func TestTraceInline(t *testing.T) {
	repo, srv := obsServer(t, nil)
	for tick := 0; tick < 20; tick++ {
		if resp, blob := obsPost(t, srv.URL+"/v1/ingest", obsIngestBody(tick, 1, 40)); resp.StatusCode != 200 {
			t.Fatalf("ingest: %d %s", resp.StatusCode, blob)
		}
	}
	if err := repo.Flush(); err != nil { // some sealed segments for the window scan
		t.Fatal(err)
	}

	checkTrace := func(tag string, tr *obs.TraceReport, wantStages ...string) {
		t.Helper()
		if tr == nil {
			t.Fatalf("%s: no trace in response", tag)
		}
		if tr.StagedMs < 0.9*tr.WallMs {
			t.Errorf("%s: staged %.3f < 90%% of wall %.3f (%+v)", tag, tr.StagedMs, tr.WallMs, tr.Stages)
		}
		have := map[string]bool{}
		for _, s := range tr.Stages {
			have[s.Name] = true
		}
		for _, want := range wantStages {
			if !have[want] {
				t.Errorf("%s: missing stage %q in %+v", tag, want, tr.Stages)
			}
		}
	}

	_, blob := obsPost(t, srv.URL+"/v1/query?trace=1", obsQueryBody(5, 500))
	var qr QueryResponse
	if err := json.Unmarshal(blob, &qr); err != nil {
		t.Fatal(err)
	}
	checkTrace("query", qr.Trace, "admission", "read_body", "validate", "execute")

	_, blob = obsPost(t, srv.URL+"/v1/window?trace=1",
		`{"rect":{"MinX":-9,"MinY":41,"MaxX":-8,"MaxY":42},"from":0,"to":19}`)
	var wr struct {
		WindowResult
		Trace *obs.TraceReport `json:"trace"`
	}
	if err := json.Unmarshal(blob, &wr); err != nil {
		t.Fatal(err)
	}
	checkTrace("window", wr.Trace, "admission", "read_body", "validate",
		"plan", "segment_scan", "hot_scan", "merge", "execute")
	if wr.Trace.Facts["segments_scanned"] == 0 {
		t.Errorf("window trace carries no planner facts: %+v", wr.Trace.Facts)
	}
	if got := wr.Trace.Facts["ticks_probed"]; got != int64(wr.Ticks) {
		t.Errorf("trace ticks_probed = %d, result says %d", got, wr.Ticks)
	}

	// An un-traced request must not carry the field.
	_, blob = obsPost(t, srv.URL+"/v1/query",
		`{"queries":[{"p":{"X":-8.6,"Y":41.1},"tick":5}]}`)
	if strings.Contains(string(blob), `"trace"`) {
		t.Fatalf("trace leaked into un-traced response: %s", blob)
	}
}

// TestStatsConsistentSnapshot asserts /v1/stats is one coherent view:
// the counters of a quiesced server reconcile with the workload exactly,
// and /metrics reports the very same numbers.
func TestStatsConsistentSnapshot(t *testing.T) {
	repo, srv := obsServer(t, nil)
	const batches, perBatch = 5, 30
	for tick := 0; tick < batches; tick++ {
		if resp, blob := obsPost(t, srv.URL+"/v1/ingest", obsIngestBody(tick, 1, perBatch)); resp.StatusCode != 200 {
			t.Fatalf("ingest: %d %s", resp.StatusCode, blob)
		}
	}
	// One rejected batch: non-contiguous tick for a live trajectory.
	if resp, _ := obsPost(t, srv.URL+"/v1/ingest", obsIngestBody(batches+5, 1, 1)); resp.StatusCode != 422 {
		t.Fatalf("gap ingest: status %d, want 422", resp.StatusCode)
	}
	const queries = 4
	for i := 0; i < queries; i++ {
		if resp, blob := obsPost(t, srv.URL+"/v1/query",
			`{"queries":[{"p":{"X":-8.6,"Y":41.1},"tick":1}]}`); resp.StatusCode != 200 {
			t.Fatalf("query: %d %s", resp.StatusCode, blob)
		}
	}

	st := repo.Stats()
	if st.IngestedPoints != batches*perBatch {
		t.Errorf("IngestedPoints = %d, want %d", st.IngestedPoints, batches*perBatch)
	}
	if st.Queries != queries {
		t.Errorf("Queries = %d, want %d", st.Queries, queries)
	}
	// Admission must reconcile with the HTTP traffic: every request above
	// was admitted, none shed.
	if got := st.Admission.Ingest.Admitted; got != batches+1 {
		t.Errorf("ingest admitted = %d, want %d", got, batches+1)
	}
	if got := st.Admission.Query.Admitted; got != queries {
		t.Errorf("query admitted = %d, want %d", got, queries)
	}
	if st.Admission.Ingest.Shed != 0 || st.Admission.Query.Shed != 0 {
		t.Errorf("unexpected shedding: %+v", st.Admission)
	}
	// Hot tail holds everything (no compaction): points in == points held.
	if st.HotPoints != batches*perBatch {
		t.Errorf("HotPoints = %d, want %d", st.HotPoints, batches*perBatch)
	}

	// /metrics must agree number for number with the stats snapshot.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("ppq_ingest_points_total %d", st.IngestedPoints),
		fmt.Sprintf("ppq_queries_total %d", st.Queries),
		fmt.Sprintf("ppq_ingest_errors_total %d", 1),
		fmt.Sprintf(`ppq_admission_admitted_total{class="ingest"} %d`, st.Admission.Ingest.Admitted),
		fmt.Sprintf("ppq_hot_points %d", st.HotPoints),
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q:\n%s", want, grepLines(string(text), strings.Fields(want)[0]))
		}
	}
}

// TestReadyzLifecycle: /readyz mirrors serving fitness (degraded or
// draining → 503) while /healthz stays a pure liveness probe.
func TestReadyzLifecycle(t *testing.T) {
	repo, srv := obsServer(t, nil)
	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != 200 {
		t.Fatalf("/healthz = %d", got)
	}
	if got := get("/readyz"); got != 200 {
		t.Fatalf("/readyz = %d", got)
	}
	repo.draining.Store(true)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", got)
	}
	if got := get("/healthz"); got != 200 {
		t.Fatalf("/healthz while draining = %d (liveness must not flip)", got)
	}
	repo.draining.Store(false)
	if got := get("/readyz"); got != 200 {
		t.Fatalf("/readyz after drain cleared = %d", got)
	}
}

// TestRegistryConcurrentWorkload hammers the whole instrumented stack —
// concurrent ingest, query, window, stats, and metrics scrapes — and is
// the serve-level -race witness that one registry serving writers and
// snapshot readers at once is sound.
func TestRegistryConcurrentWorkload(t *testing.T) {
	repo, srv := obsServer(t, func(o *Options) { o.SlowQuery = 1 })
	const workers, iters = 4, 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 1 + w*1000
			for i := 0; i < iters; i++ {
				obsPost(t, srv.URL+"/v1/ingest", obsIngestBody(i, base, 20))
				obsPost(t, srv.URL+"/v1/query?trace=1",
					fmt.Sprintf(`{"queries":[{"p":{"X":-8.6,"Y":41.1},"tick":%d}]}`, i))
				obsPost(t, srv.URL+"/v1/window",
					fmt.Sprintf(`{"rect":{"MinX":-9,"MinY":41,"MaxX":-8,"MaxY":42},"from":0,"to":%d}`, i))
				if resp, err := http.Get(srv.URL + "/metrics"); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				repo.Stats()
			}
		}(w)
	}
	wg.Wait()
	st := repo.Stats()
	if want := int64(workers * iters * 20); st.IngestedPoints != want {
		t.Fatalf("IngestedPoints = %d, want %d", st.IngestedPoints, want)
	}
	if st.Queries == 0 || st.Window.Queries == 0 {
		t.Fatalf("query counters did not move: %+v", st)
	}
}
