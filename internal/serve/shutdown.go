package serve

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// DrainAndClose is the repository server's shutdown sequence: stop
// accepting connections and drain in-flight requests via
// http.Server.Shutdown (bounded by drainTimeout), then seal the remaining
// hot tail with Flush so the final compact and manifest swap land on
// disk, and finally Close the repository (which fsyncs and closes the
// write-ahead log). It exists so a SIGINT/SIGTERM handler — where a
// deferred Close would never run on a bare os.Exit — has one call that
// cannot forget the flush. On a persistent repository even a skipped or
// failed Flush no longer loses the hot tail: the WAL replays it on the
// next Open; the flush just converts it to sealed, compressed form.
//
// Every step runs even when an earlier one fails (a drain timeout must
// not leak the compactor goroutine or skip the flush); the first error is
// returned. A Shutdown cut short by the timeout closes the remaining
// request connections mid-flight, which is the intended bound on a
// stuck client.
func DrainAndClose(srv *http.Server, repo *Repository, drainTimeout time.Duration) error {
	// Flip readiness first: /readyz starts answering 503 so load
	// balancers stop routing new traffic while Shutdown drains the
	// requests already in flight.
	repo.draining.Store(true)
	ctx := context.Background()
	if drainTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, drainTimeout)
		defer cancel()
	}
	err := srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		// The drain window closed with requests still running; cut them.
		// The deadline error is the one worth reporting, so Close's own
		// (rare) error is deliberately dropped.
		srv.Close()
	}
	if ferr := repo.Flush(); err == nil {
		err = ferr
	}
	if cerr := repo.Close(); err == nil {
		err = cerr
	}
	return err
}
