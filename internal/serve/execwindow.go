package serve

import (
	"context"
	"fmt"

	"ppqtraj/internal/exec"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/query"
	"ppqtraj/internal/traj"
)

// SetExecutor switches the live window executor between the composed
// iterator plans and the fused STRQRange pipeline. Safe under
// concurrent queries: both executors return point-for-point identical
// answers, so an in-flight request finishing on the old executor is
// indistinguishable from one finishing on the new.
func (r *Repository) SetExecutor(name string) error {
	switch name {
	case ExecutorFused:
		r.execIter.Store(false)
	case ExecutorIter:
		r.execIter.Store(true)
	default:
		return fmt.Errorf("serve: unknown executor %q (want %q or %q)", name, ExecutorFused, ExecutorIter)
	}
	return nil
}

// Executor reports the window executor currently serving requests.
func (r *Repository) Executor() string {
	if r.execIter.Load() {
		return ExecutorIter
	}
	return ExecutorFused
}

// planWindow builds the window query's execution plan against one
// routing-view snapshot: the span is split at segment boundaries
// (exec.SplitSpan — the same helper the path stitcher uses), each
// sub-span is scored by its segment's zone-map selectivity, and
// exec.Plan prunes provably-empty scans and orders the rest
// largest-estimated-work first. Scan.ID indexes segs. Each overlapping
// segment appears exactly once in ordered+pruned, so skip accounting is
// once per plan by construction.
func planWindow(segs []*Segment, rect geo.Rect, from, to int) (ordered, pruned []exec.Scan) {
	scans := make([]exec.Scan, 0, len(segs))
	exec.SplitSpan(from, to, len(segs), func(i int) exec.TickRange {
		return exec.TickRange{Lo: segs[i].StartTick, Hi: segs[i].EndTick}
	}, func(i int, sp exec.TickRange) {
		s := segs[i]
		// The scan's candidate cells all lie inside rect expanded by the
		// segment's local-search margin, so the zone map is consulted
		// against that area. The extra epsilon mirrors the candidate
		// filter's slop and absorbs any floating-point disagreement
		// between the zone map's global grid and the index's
		// region-anchored cell ranges. Score 0 means MayIntersect is
		// false — the planner prunes the scan outright.
		scans = append(scans, exec.Scan{
			ID:    i,
			Span:  sp,
			Score: s.Zone.OverlapScore(rect.Expand(s.Eng.Margin()+1e-12), sp.Lo, sp.Hi),
		})
	})
	return exec.Plan(scans)
}

// shardResult is the executor-independent outcome of one per-segment
// scan, so planning, retry, telemetry, and merge are shared between the
// fused and iterator executors. ids is the flat per-tick candidate
// stream — the window merge sorts and deduplicates the concatenation
// once, so shards skip per-tick bucketing entirely.
type shardResult struct {
	ids     []traj.ID
	covered int
	scan    index.ScanStats
	// scanRows counts rows the index source emitted (iterator executor
	// only — the fused pipeline has no operator boundary to count at).
	scanRows int64
	// candidates counts post-margin-filter rows; visited counts distinct
	// raw trajectories fetched in exact mode.
	candidates int
	visited    int
}

// runFusedShard answers one planned scan with the hand-fused STRQRange
// pipeline — the benchmark floor, kept compiled in.
func runFusedShard(ctx context.Context, s *Segment, rect geo.Rect, lo, hi int, exact bool) (shardResult, error) {
	rr, err := s.Eng.STRQRange(ctx, rect, lo, hi, exact)
	if err != nil {
		return shardResult{}, err
	}
	out := shardResult{covered: rr.CoveredTicks, scan: rr.Scan, candidates: rr.Candidates, visited: rr.Visited}
	n := 0
	for _, c := range rr.Cols {
		n += len(c.IDs)
	}
	out.ids = make([]traj.ID, 0, n)
	for _, c := range rr.Cols {
		out.ids = append(out.ids, c.IDs...)
	}
	return out, nil
}

// runIterShard answers one planned scan with a composed iterator plan
// (exec.ScanPipe, a pooled SegmentScan → CountRows → Verify chain)
// finished by a sink: the segment scan classifies each cell against the
// margin before decode (full-reject pruned, full-accept skips
// verification), Verify applies the reconstruction-distance filter to
// the rest, and the sink flattens surviving rows (approximate) or
// batch-verifies them against raw storage (exact). Instrument
// boundaries report per-operator time and row counts into the request
// trace when one is attached.
func runIterShard(ctx context.Context, s *Segment, rect geo.Rect, lo, hi int, exact bool, tr *obs.Trace) (shardResult, error) {
	var out shardResult
	cls := exec.Classifier{Rect: rect, Margin: s.Eng.Margin()}
	pipe := exec.OpenScanPipe(ctx, s.Eng.Idx, s.Eng.Sum, cls, lo, hi, &out.scan, &out.scanRows, tr)
	defer pipe.Close()
	it := pipe.Iterator()
	if exact {
		if s.Eng.Raw == nil {
			return out, query.ErrNoRaw
		}
		res, err := exec.ExactVerify(ctx, it, s.Eng.Raw, rect, lo, hi, &s.Eng.RawAccesses)
		if err != nil {
			return out, err
		}
		n := 0
		for _, c := range res.Cols {
			n += len(c.IDs)
		}
		out.ids = make([]traj.ID, 0, n)
		for _, c := range res.Cols {
			out.ids = append(out.ids, c.IDs...)
		}
		out.candidates = res.Candidates
		out.visited = res.Visited
	} else {
		ids, err := exec.AppendIDs(it, lo, hi, nil)
		if err != nil {
			return out, err
		}
		// One cell per trajectory per tick means the flat stream is
		// already duplicate-free per tick, so its length IS the fused
		// path's per-tick candidate count.
		out.ids = ids
		out.candidates = len(ids)
	}
	out.covered = s.Eng.Idx.CoveredTicks(lo, hi)
	return out, nil
}

// runIterHot streams the snapshotted hot-tail columns through the
// iterator layer (HotScan → Instrument(op_hot) → AppendIDs), so the hot
// residual shows up in per-operator traces and row metrics like every
// other operator.
func runIterHot(ctx context.Context, cols []hotScanCol, from, to int, tr *obs.Trace) ([]traj.ID, error) {
	if len(cols) == 0 {
		return nil, nil
	}
	src := make([]exec.Column, len(cols))
	for i, c := range cols {
		src[i] = exec.Column{Tick: c.tick, IDs: c.ids}
	}
	it := exec.Instrument(ctx, exec.NewHotScan(ctx, src), tr, "op_hot")
	return exec.AppendIDs(it, from, to, nil)
}
