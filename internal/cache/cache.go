// Package cache provides the repository's shared decoded-cell cache: a
// sharded, size-bounded LRU sitting in front of the sealed segments'
// compressed posting lists. Sealed postings are delta+Huffman coded, so
// every STRQ/window probe of a cell pays a decode; under skewed traffic
// (the FASTER/F2 observation) the same hot cells are probed over and
// over, and a small cache of decoded ID lists makes repeated-workload
// throughput scale with skew instead of with decode cost.
//
// Entries are keyed by (owner, PI, region, cell, tick-chunk): owner is a
// cache-issued token naming one immutable sealed index (a repository
// segment), and a tick chunk covers ChunkTicks consecutive ticks of one
// cell, so window scans probing adjacent ticks amortize one decode.
// Owners are invalidated wholesale when their segment leaves the serving
// view.
package cache

import (
	"sync"
	"sync/atomic"
)

// ChunkTicks is the tick span of one cached entry: a miss decodes every
// posting of the cell inside the chunk, so consecutive-tick probes (the
// window-query access pattern) hit on all but the first.
const ChunkTicks = 8

// Chunk maps a tick to its cache chunk index.
func Chunk(tick int) int32 {
	if tick < 0 {
		// Floor division: ticks are non-negative in practice, but a key
		// must never collide across the zero boundary.
		return int32((tick - (ChunkTicks - 1)) / ChunkTicks)
	}
	return int32(tick / ChunkTicks)
}

// Key addresses one cached decode: a tick chunk of one cell of one region
// of one PI of one owner (sealed segment).
type Key struct {
	Owner uint64
	PI    uint32
	Reg   uint32
	Cell  int32
	Chunk int32
}

// hash mixes the key into a shard index (fibonacci hashing over the
// fields; shard counts are powers of two).
func (k Key) hash() uint64 {
	h := k.Owner
	h = h*0x9e3779b97f4a7c15 + uint64(k.PI)
	h = h*0x9e3779b97f4a7c15 + uint64(k.Reg)
	h = h*0x9e3779b97f4a7c15 + uint64(uint32(k.Cell))
	h = h*0x9e3779b97f4a7c15 + uint64(uint32(k.Chunk))
	h ^= h >> 29
	return h * 0x9e3779b97f4a7c15
}

// entry is one resident value with its intrusive LRU links.
type entry struct {
	key        Key
	val        any
	cost       int64
	prev, next *entry // LRU list; next = more recent
}

// shard is one independently locked slice of the cache.
type shard struct {
	mu      sync.Mutex
	items   map[Key]*entry
	head    *entry // least recently used
	tail    *entry // most recently used
	bytes   int64
	maxCost int64
}

const numShards = 16

// Cache is the sharded LRU. The zero value is not usable; call New. A nil
// *Cache is a valid no-op cache: Get always misses and Put discards, so
// callers need no nil checks at the probe sites.
type Cache struct {
	shards [numShards]shard

	owners    atomic.Uint64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	entries   atomic.Int64
	bytes     atomic.Int64
}

// New creates a cache bounded to roughly maxBytes of cached value cost
// (as reported by callers on Put). maxBytes below the shard count is
// clamped so every shard can hold at least something.
func New(maxBytes int64) *Cache {
	if maxBytes < numShards {
		maxBytes = numShards
	}
	c := &Cache{}
	per := maxBytes / numShards
	for i := range c.shards {
		c.shards[i].items = make(map[Key]*entry)
		c.shards[i].maxCost = per
	}
	return c
}

// NewOwner issues a fresh owner token. Tokens are never reused, so a
// future owner can never observe a stale entry left by a past one.
func (c *Cache) NewOwner() uint64 {
	if c == nil {
		return 0
	}
	return c.owners.Add(1)
}

// Get returns the cached value for key, promoting it to most recent.
func (c *Cache) Get(key Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := &c.shards[key.hash()%numShards]
	s.mu.Lock()
	e, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.moveToTail(e)
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put inserts (or replaces) the value for key with the given cost in
// bytes, evicting least-recently-used entries of the shard until the
// shard is back under budget. Values must be treated as immutable by all
// readers once cached.
func (c *Cache) Put(key Key, val any, cost int64) {
	if c == nil {
		return
	}
	if cost <= 0 {
		cost = 1
	}
	s := &c.shards[key.hash()%numShards]
	if cost > s.maxCost {
		// Larger than the whole shard budget: caching it would just evict
		// everything else and then itself on the next oversized Put.
		return
	}
	s.mu.Lock()
	if e, ok := s.items[key]; ok {
		s.bytes += cost - e.cost
		c.bytes.Add(cost - e.cost)
		e.val, e.cost = val, cost
		s.moveToTail(e)
	} else {
		e := &entry{key: key, val: val, cost: cost}
		s.items[key] = e
		s.pushTail(e)
		s.bytes += cost
		c.bytes.Add(cost)
		c.entries.Add(1)
	}
	evicted := 0
	for s.bytes > s.maxCost && s.head != nil {
		old := s.head
		s.unlink(old)
		delete(s.items, old.key)
		s.bytes -= old.cost
		c.bytes.Add(-old.cost)
		c.entries.Add(-1)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
}

// InvalidateOwner drops every entry belonging to owner — called when a
// sealed segment leaves the serving view (trim, close, or replacement),
// so its decoded cells stop occupying budget the moment they can no
// longer be probed.
func (c *Cache) InvalidateOwner(owner uint64) {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.items {
			if k.Owner != owner {
				continue
			}
			s.unlink(e)
			delete(s.items, k)
			s.bytes -= e.cost
			c.bytes.Add(-e.cost)
			c.entries.Add(-1)
		}
		s.mu.Unlock()
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// Snapshot returns the current counters (zero-valued for a nil cache).
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
	}
}

// moveToTail promotes e to most recently used.
func (s *shard) moveToTail(e *entry) {
	if s.tail == e {
		return
	}
	s.unlink(e)
	s.pushTail(e)
}

// unlink removes e from the LRU list.
func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushTail appends e as most recently used.
func (s *shard) pushTail(e *entry) {
	e.prev = s.tail
	e.next = nil
	if s.tail != nil {
		s.tail.next = e
	}
	s.tail = e
	if s.head == nil {
		s.head = e
	}
}
