package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutLRU(t *testing.T) {
	c := New(1 << 20)
	k := Key{Owner: 1, Cell: 3, Chunk: 2}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put(k, "v", 10)
	v, ok := c.Get(k)
	if !ok || v.(string) != "v" {
		t.Fatalf("get = %v, %v", v, ok)
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("stats = %+v", st)
	}
	// Replacement updates cost, not entry count.
	c.Put(k, "w", 25)
	if st := c.Snapshot(); st.Entries != 1 || st.Bytes != 25 {
		t.Fatalf("after replace: %+v", st)
	}
}

func TestEvictionKeepsShardUnderBudget(t *testing.T) {
	// numShards × 64 bytes per shard; same-shard keys by fixing everything
	// except Chunk is not shard-stable, so count globally instead.
	c := New(numShards * 64)
	for i := 0; i < 10_000; i++ {
		c.Put(Key{Owner: 7, Cell: int32(i)}, i, 16)
	}
	st := c.Snapshot()
	if st.Evictions == 0 {
		t.Fatal("flooding a tiny cache must evict")
	}
	if st.Bytes > numShards*64 {
		t.Fatalf("resident bytes %d exceed budget", st.Bytes)
	}
	if st.Entries <= 0 {
		t.Fatalf("entries = %d", st.Entries)
	}
	// LRU order: re-touch one key, flood its shard, expect the untouched
	// ones to leave first. (Coarse check: the cache keeps working.)
	if _, ok := c.Get(Key{Owner: 7, Cell: 9_999}); !ok {
		t.Fatal("most recent insert should be resident")
	}
}

func TestOversizedValueIsNotCached(t *testing.T) {
	c := New(numShards * 32)
	c.Put(Key{Owner: 1}, "huge", 1<<20)
	if st := c.Snapshot(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized value was cached: %+v", st)
	}
}

func TestInvalidateOwner(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 100; i++ {
		c.Put(Key{Owner: 1, Cell: int32(i)}, i, 8)
		c.Put(Key{Owner: 2, Cell: int32(i)}, i, 8)
	}
	c.InvalidateOwner(1)
	st := c.Snapshot()
	if st.Entries != 100 || st.Bytes != 800 {
		t.Fatalf("after invalidate: %+v", st)
	}
	if _, ok := c.Get(Key{Owner: 1, Cell: 5}); ok {
		t.Fatal("invalidated owner still resident")
	}
	if _, ok := c.Get(Key{Owner: 2, Cell: 5}); !ok {
		t.Fatal("surviving owner was dropped")
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(Key{}); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(Key{}, 1, 1) // must not panic
	c.InvalidateOwner(0)
	if st := c.Snapshot(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if c.NewOwner() != 0 {
		t.Fatal("nil owner token")
	}
}

func TestOwnersAreUnique(t *testing.T) {
	c := New(1 << 10)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		o := c.NewOwner()
		if seen[o] {
			t.Fatalf("owner %d reissued", o)
		}
		seen[o] = true
	}
}

func TestChunkFloors(t *testing.T) {
	for _, tc := range []struct {
		tick  int
		chunk int32
	}{
		{0, 0}, {ChunkTicks - 1, 0}, {ChunkTicks, 1},
		{-1, -1}, {-ChunkTicks, -1}, {-ChunkTicks - 1, -2},
	} {
		if got := Chunk(tc.tick); got != tc.chunk {
			t.Fatalf("Chunk(%d) = %d, want %d", tc.tick, got, tc.chunk)
		}
	}
}

// TestConcurrentAccess hammers the cache from many goroutines; run with
// -race.
func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 14)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{Owner: uint64(g % 3), Cell: int32(i % 97), Chunk: int32(i % 11)}
				if v, ok := c.Get(k); ok {
					if _, isStr := v.(string); !isStr {
						panic(fmt.Sprintf("foreign value %v", v))
					}
				} else {
					c.Put(k, "x", 32)
				}
				if i%500 == 0 {
					c.InvalidateOwner(uint64(g % 3))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Snapshot()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no traffic recorded")
	}
}
