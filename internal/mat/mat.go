// Package mat implements the small dense linear algebra kernel that
// PPQ-trajectory's predictive quantizer needs: least-squares solves for the
// prediction coefficients P_j[t] (Equation 1) and Yule-Walker fits for the
// per-trajectory lag-k autocorrelation features used by the
// autocorrelation-based partitioner (Equation 8).
//
// The systems involved are tiny (k×k with k typically 2–5), so the package
// favors clarity and numerical robustness (partial pivoting, ridge
// fallback) over asymptotic tricks.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no usable solution even
// after regularization.
var ErrSingular = errors.New("mat: singular system")

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a Rows×Cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// MulVec returns m · x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// SolveLinear solves the square system A·x = b in place using Gaussian
// elimination with partial pivoting. A and b are overwritten. It returns
// ErrSingular when a pivot collapses below tolerance.
func SolveLinear(a *Dense, b []float64) ([]float64, error) {
	return solveLinearInto(make([]float64, a.Rows), a, b)
}

// solveLinearInto is SolveLinear writing the solution into x (len n).
func solveLinearInto(x []float64, a *Dense, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("mat: SolveLinear requires a square system")
	}
	const tol = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in col.
		pivot := col
		maxAbs := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < tol {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a.Data[col*n+j], a.Data[pivot*n+j] = a.Data[pivot*n+j], a.Data[col*n+j]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Data[r*n+j] -= f * a.Data[col*n+j]
			}
			b[r] -= f * b[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min ‖A·x − b‖² via the normal equations
// AᵀA·x = Aᵀb, falling back to a small ridge term when AᵀA is singular
// (which happens for degenerate windows, e.g. a stationary trajectory).
// A has one row per observation and one column per coefficient.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	var ws LSWorkspace
	x, err := ws.LeastSquares(a, b)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), x...), nil
}

// LSWorkspace owns the scratch of repeated least-squares solves so the
// per-partition coefficient fits of the build loop allocate nothing in
// steady state. The zero value is ready to use; a workspace is not safe
// for concurrent use (each build worker owns one).
type LSWorkspace struct {
	ata, sys Dense
	atb, rhs []float64
	x        []float64
}

// grow resizes a zero-filled n-vector out of buf.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func (d *Dense) reset(rows, cols int) {
	d.Rows, d.Cols = rows, cols
	d.Data = grow(d.Data, rows*cols)
}

// LeastSquares is the workspace form of the package-level LeastSquares.
// The returned slice aliases the workspace and is valid until the next
// call — callers that retain coefficients must copy them.
func (w *LSWorkspace) LeastSquares(a *Dense, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		panic(fmt.Sprintf("mat: LeastSquares rows %d vs b %d", a.Rows, len(b)))
	}
	n := a.Cols
	if a.Rows < n {
		return nil, fmt.Errorf("mat: underdetermined system (%d rows, %d cols)", a.Rows, n)
	}
	w.ata.reset(n, n)
	w.atb = grow(w.atb, n)
	ata, atb := &w.ata, w.atb
	for r := 0; r < a.Rows; r++ {
		row := a.Data[r*n : (r+1)*n]
		for i := 0; i < n; i++ {
			atb[i] += row[i] * b[r]
			for j := i; j < n; j++ {
				ata.Data[i*n+j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < n; i++ { // mirror the upper triangle
		for j := 0; j < i; j++ {
			ata.Data[i*n+j] = ata.Data[j*n+i]
		}
	}
	// Try the plain normal equations first; add ridge on failure.
	for _, ridge := range []float64{0, 1e-9, 1e-6, 1e-3} {
		w.sys.reset(n, n)
		copy(w.sys.Data, ata.Data)
		w.rhs = grow(w.rhs, n)
		copy(w.rhs, atb)
		if ridge > 0 {
			// Scale the ridge with the trace so it is dimensionless.
			tr := 0.0
			for i := 0; i < n; i++ {
				tr += ata.At(i, i)
			}
			lambda := ridge * (tr/float64(n) + 1)
			for i := 0; i < n; i++ {
				w.sys.Data[i*n+i] += lambda
			}
		}
		w.x = grow(w.x, n)
		if x, err := solveLinearInto(w.x, &w.sys, w.rhs); err == nil {
			ok := true
			for _, v := range x {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					ok = false
					break
				}
			}
			if ok {
				return x, nil
			}
		}
	}
	return nil, ErrSingular
}

// Autocovariance returns the sample autocovariances γ₀..γ_k of series x
// (biased estimator, the standard choice for Yule-Walker).
func Autocovariance(x []float64, k int) []float64 {
	return autocovarianceInto(make([]float64, k+1), x, k)
}

// autocovarianceInto is Autocovariance writing into out (len k+1, cleared
// here).
func autocovarianceInto(out []float64, x []float64, k int) []float64 {
	for i := range out {
		out[i] = 0
	}
	n := len(x)
	if n == 0 {
		return out
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	for lag := 0; lag <= k && lag < n; lag++ {
		var s float64
		for t := lag; t < n; t++ {
			s += (x[t] - mean) * (x[t-lag] - mean)
		}
		out[lag] = s / float64(n)
	}
	return out
}

// YuleWalker fits an AR(k) model to series x and returns the k
// autoregressive coefficients. These are the {a_i^t} features the
// autocorrelation-based partitioner clusters on (§3.2.1). When the series
// is too short or degenerate (constant), it returns the zero vector, which
// places such trajectories in a common "no signal" region of feature space.
func YuleWalker(x []float64, k int) []float64 {
	var ws ARWorkspace
	return ws.YuleWalkerInto(make([]float64, k), x, k)
}

// ARWorkspace owns the scratch of repeated Yule-Walker fits (the
// per-trajectory autocorrelation features are re-estimated every tick).
// The zero value is ready; not safe for concurrent use.
type ARWorkspace struct {
	gamma, rhs, x []float64
	sys           Dense
}

// YuleWalkerInto is YuleWalker writing the coefficients into dst
// (len k). It returns dst.
func (w *ARWorkspace) YuleWalkerInto(dst []float64, x []float64, k int) []float64 {
	for i := range dst {
		dst[i] = 0
	}
	if len(x) < k+2 {
		return dst
	}
	w.gamma = grow(w.gamma, k+1)
	gamma := autocovarianceInto(w.gamma, x, k)
	if gamma[0] < 1e-15 { // constant series
		return dst
	}
	// Toeplitz system R·a = r with R[i][j] = γ(|i−j|), r[i] = γ(i+1).
	w.sys.reset(k, k)
	w.rhs = grow(w.rhs, k)
	sys, rhs := &w.sys, w.rhs
	for i := 0; i < k; i++ {
		rhs[i] = gamma[i+1]
		for j := 0; j < k; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			sys.Set(i, j, gamma[d])
		}
	}
	// Ridge for near-singular Toeplitz matrices (strongly correlated lags).
	for i := 0; i < k; i++ {
		sys.Data[i*k+i] += 1e-9 * gamma[0]
	}
	w.x = grow(w.x, k)
	a, err := solveLinearInto(w.x, sys, rhs)
	if err != nil {
		return dst
	}
	copy(dst, a)
	return dst
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// EuclideanDist returns ‖a − b‖₂ for equal-length vectors.
func EuclideanDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: EuclideanDist length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
