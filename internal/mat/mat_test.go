package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveLinearIdentity(t *testing.T) {
	a := NewDense(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	b := []float64{1, 2, 3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(x[i]-want) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want)
		}
	}
}

func TestSolveLinearKnown(t *testing.T) {
	// 2x + y = 5 ; x - y = 1  →  x = 2, y = 1
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	x, err := SolveLinear(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("x = %v, want [2 1]", x)
	}
}

func TestSolveLinearNeedsPivot(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := NewDense(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveLinear(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4) // rank 1
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient matrix")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(6)
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance guarantees well-conditioned systems.
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += float64(n) * 3
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		// SolveLinear destroys its inputs; keep using fresh copies.
		ac := NewDense(n, n)
		copy(ac.Data, a.Data)
		bc := make([]float64, n)
		copy(bc, b)
		got, err := SolveLinear(ac, bc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("iter %d: x[%d] = %v, want %v", iter, i, got[i], want[i])
			}
		}
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: b = A·[2, -1].
	a := NewDense(4, 2)
	rows := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	for i, r := range rows {
		a.Set(i, 0, r[0])
		a.Set(i, 1, r[1])
	}
	want := []float64{2, -1}
	b := a.MulVec(want)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewDense(500, 3)
	want := []float64{0.5, -0.25, 1.5}
	b := make([]float64, 500)
	for i := 0; i < 500; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			s += v * want[j]
		}
		b[i] = s + rng.NormFloat64()*0.01
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 0.01 {
			t.Fatalf("x = %v, want approx %v", x, want)
		}
	}
}

func TestLeastSquaresDegenerate(t *testing.T) {
	// All-zero design matrix: ridge fallback must still return finite
	// coefficients rather than exploding.
	a := NewDense(5, 2)
	b := []float64{1, 1, 1, 1, 1}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("ridge fallback failed: %v", err)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite coefficient %v", x)
		}
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := NewDense(1, 3)
	if _, err := LeastSquares(a, []float64{1}); err == nil {
		t.Fatal("expected error for underdetermined system")
	}
}

func TestAutocovarianceConstant(t *testing.T) {
	g := Autocovariance([]float64{5, 5, 5, 5}, 2)
	for lag, v := range g {
		if v != 0 {
			t.Errorf("γ[%d] = %v for constant series, want 0", lag, v)
		}
	}
}

func TestAutocovarianceLag0IsVariance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	g := Autocovariance(x, 1)
	// Biased variance of {1,2,3,4} = 1.25
	if math.Abs(g[0]-1.25) > 1e-12 {
		t.Fatalf("γ₀ = %v, want 1.25", g[0])
	}
}

func TestYuleWalkerRecoversAR1(t *testing.T) {
	// Simulate x_t = 0.8·x_{t−1} + ε and check the fitted coefficient.
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 20000)
	for t := 1; t < len(x); t++ {
		x[t] = 0.8*x[t-1] + rng.NormFloat64()*0.1
	}
	a := YuleWalker(x, 1)
	if math.Abs(a[0]-0.8) > 0.02 {
		t.Fatalf("AR(1) coefficient = %v, want ≈0.8", a[0])
	}
}

func TestYuleWalkerRecoversAR2(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	phi := []float64{0.5, 0.3}
	x := make([]float64, 50000)
	for t := 2; t < len(x); t++ {
		x[t] = phi[0]*x[t-1] + phi[1]*x[t-2] + rng.NormFloat64()*0.1
	}
	a := YuleWalker(x, 2)
	for i := range phi {
		if math.Abs(a[i]-phi[i]) > 0.03 {
			t.Fatalf("AR(2) = %v, want ≈%v", a, phi)
		}
	}
}

func TestYuleWalkerDegenerateInputs(t *testing.T) {
	if a := YuleWalker(nil, 3); len(a) != 3 {
		t.Fatal("wrong length for nil input")
	}
	if a := YuleWalker([]float64{1, 1, 1, 1, 1, 1}, 2); a[0] != 0 || a[1] != 0 {
		t.Fatalf("constant series should give zero coefficients, got %v", a)
	}
	if a := YuleWalker([]float64{1, 2}, 3); len(a) != 3 {
		t.Fatal("short series should still return k coefficients")
	}
}

func TestVectorHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot wrong")
	}
	if math.Abs(EuclideanDist([]float64{0, 0}, []float64{3, 4})-5) > 1e-12 {
		t.Error("EuclideanDist wrong")
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 2).MulVec([]float64{1})
}
