// Package partition implements PPQ's grouped-modeling partitioner
// (§3.2): assigning each live trajectory at each timestamp to a partition
// by spatial proximity (Equation 7) or lag-k autocorrelation similarity
// (Equation 8), so that one prediction function f_j can model each group.
//
// The partitioner is incremental across time (§3.2.2): points first keep
// the partition of their previous timestamp; partitions that violate the
// ε_p bound are re-split with the bounded clustering loop (Lemma 1);
// nearby partitions are merged — at most once each per step — to avoid
// fragmentation (Lemma 2 complexity O(q′m′N′l + q′q)).
package partition

import (
	"math"
	"sort"
	"time"

	"ppqtraj/internal/cluster"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// Mode selects the similarity driving Equations 7/8.
type Mode int

const (
	// Spatial partitions on point positions (PPQ-S, Equation 7).
	Spatial Mode = iota
	// Autocorr partitions on lag-k autocorrelation features (PPQ-A,
	// Equation 8).
	Autocorr
	// None disables partitioning: a single global partition (E-PQ).
	None
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Spatial:
		return "spatial"
	case Autocorr:
		return "autocorr"
	default:
		return "none"
	}
}

// Options configures a Partitioner.
type Options struct {
	Mode Mode
	// EpsP is ε_p, the partition radius threshold of Equations 7/8.
	EpsP float64
	// Step is the per-round partition-count increment of the bounded
	// clustering loop (the "a" of Lemma 1). Defaults to 1.
	Step int
	// MaxIter bounds Lloyd iterations per clustering round.
	MaxIter int
	// MaxPartitions caps q as a safety valve (0 = no cap).
	MaxPartitions int
	// Seed makes partitioning deterministic.
	Seed int64
}

// Stats accumulates the work counters reported by the Figure 7/8
// experiments.
type Stats struct {
	Steps       int           // timestamps processed
	Resplits    int           // partitions re-split for violating ε_p
	Merges      int           // partition merges performed
	NewParts    int           // partitions created
	Elapsed     time.Duration // total partitioning time (Figure 7)
	FromScratch int           // points partitioned without carry-over
	CarriedOver int           // points that kept their previous partition
}

// Result is one timestamp's partitioning: Groups[g] lists indices into the
// input slice belonging to partition g; Labels[g] is that partition's
// stable identity across timestamps.
type Result struct {
	Groups [][]int
	Labels []int
	Q      int // number of partitions (Figure 8's q)
}

type part struct {
	centroid []float64
	members  []int // indices into the current step's input
}

// Partitioner carries partition state across timestamps.
type Partitioner struct {
	opts   Options
	assign map[traj.ID]int // trajectory → partition label (previous step)
	next   int             // next fresh partition label
	stats  Stats
}

// New creates a Partitioner.
func New(opts Options) *Partitioner {
	if opts.Step < 1 {
		opts.Step = 1
	}
	if opts.MaxIter < 1 {
		opts.MaxIter = 15
	}
	return &Partitioner{opts: opts, assign: make(map[traj.ID]int)}
}

// Stats returns accumulated work counters.
func (p *Partitioner) Stats() Stats { return p.stats }

// QLive returns the number of partitions currently holding at least one
// trajectory (meaningful after a Step call).
func (p *Partitioner) QLive() int {
	labels := map[int]bool{}
	for _, l := range p.assign {
		labels[l] = true
	}
	return len(labels)
}

func centroidOf(feats [][]float64, members []int) []float64 {
	if len(members) == 0 {
		return nil
	}
	dim := len(feats[members[0]])
	c := make([]float64, dim)
	for _, i := range members {
		for d, v := range feats[i] {
			c[d] += v
		}
	}
	inv := 1 / float64(len(members))
	for d := range c {
		c[d] *= inv
	}
	return c
}

func maxRadius(feats [][]float64, members []int, centroid []float64) float64 {
	max := 0.0
	for _, i := range members {
		var s float64
		for d, v := range feats[i] {
			dd := v - centroid[d]
			s += dd * dd
		}
		if s > max {
			max = s
		}
	}
	// max holds the squared distance; return the distance.
	return math.Sqrt(max)
}

// Step partitions one timestamp's trajectories. ids and feats are
// parallel; feats[i] is the similarity feature of ids[i] (2-D position for
// Spatial, k-dim AR coefficients for Autocorr). It returns the grouping
// and updates the carried state.
func (p *Partitioner) Step(ids []traj.ID, feats [][]float64) *Result {
	start := time.Now()
	defer func() { p.stats.Elapsed += time.Since(start) }()
	p.stats.Steps++

	if len(ids) == 0 {
		p.assign = make(map[traj.ID]int)
		return &Result{}
	}
	if p.opts.Mode == None {
		// Single global partition with a stable label.
		group := make([]int, len(ids))
		for i := range group {
			group[i] = i
		}
		newAssign := make(map[traj.ID]int, len(ids))
		for _, id := range ids {
			newAssign[id] = 0
		}
		p.assign = newAssign
		return &Result{Groups: [][]int{group}, Labels: []int{0}, Q: 1}
	}

	// Phase 1: carry-forward. Points keep their previous partition; new
	// points join the nearest existing centroid if within ε_p, else go to
	// the fresh pool.
	parts := map[int]*part{}
	var fresh []int
	// Previous centroids are recomputed lazily from this step's features,
	// so first bucket by previous label.
	for i, id := range ids {
		if label, ok := p.assign[id]; ok {
			pt := parts[label]
			if pt == nil {
				pt = &part{}
				parts[label] = pt
			}
			pt.members = append(pt.members, i)
			p.stats.CarriedOver++
		} else {
			fresh = append(fresh, i)
			p.stats.FromScratch++
		}
	}
	for _, pt := range parts {
		pt.centroid = centroidOf(feats, pt.members)
	}
	// New points: nearest existing centroid within ε_p, else fresh pool.
	if len(parts) > 0 && len(fresh) > 0 {
		labels := sortedLabels(parts)
		stillFresh := fresh[:0]
		for _, i := range fresh {
			bestLabel, bestD := -1, p.opts.EpsP
			for _, l := range labels {
				if d := distVec(feats[i], parts[l].centroid); d <= bestD {
					bestLabel, bestD = l, d
				}
			}
			if bestLabel >= 0 {
				parts[bestLabel].members = append(parts[bestLabel].members, i)
			} else {
				stillFresh = append(stillFresh, i)
			}
		}
		fresh = stillFresh
	}

	// Phase 2: re-split partitions violating ε_p (Equation 7/8).
	for _, l := range sortedLabels(parts) {
		pt := parts[l]
		pt.centroid = centroidOf(feats, pt.members)
		if maxRadius(feats, pt.members, pt.centroid) <= p.opts.EpsP {
			continue
		}
		p.stats.Resplits++
		sub := p.boundedSplit(feats, pt.members)
		delete(parts, l)
		for _, members := range sub {
			nl := p.next
			p.next++
			p.stats.NewParts++
			parts[nl] = &part{centroid: centroidOf(feats, members), members: members}
		}
	}

	// Phase 3: fresh pool gets its own bounded partitioning.
	if len(fresh) > 0 {
		for _, members := range p.boundedSplit(feats, fresh) {
			nl := p.next
			p.next++
			p.stats.NewParts++
			parts[nl] = &part{centroid: centroidOf(feats, members), members: members}
		}
	}

	// Phase 4: merge close partitions (centroid distance ≤ ε_p), each
	// partition participating in at most one merge per step (§3.2.2).
	labels := sortedLabels(parts)
	merged := map[int]bool{}
	for ai := 0; ai < len(labels); ai++ {
		a := labels[ai]
		if merged[a] || parts[a] == nil {
			continue
		}
		for bi := ai + 1; bi < len(labels); bi++ {
			b := labels[bi]
			if merged[b] || parts[b] == nil {
				continue
			}
			if distVec(parts[a].centroid, parts[b].centroid) <= p.opts.EpsP {
				// Merge only when the union still satisfies the ε_p radius
				// bound, so Equations 7/8 stay invariants of every step.
				union := append(append([]int(nil), parts[a].members...), parts[b].members...)
				uc := centroidOf(feats, union)
				if maxRadius(feats, union, uc) > p.opts.EpsP {
					continue
				}
				parts[a].members = union
				parts[a].centroid = uc
				delete(parts, b)
				merged[a], merged[b] = true, true
				p.stats.Merges++
				break
			}
		}
	}

	// Safety valve: when MaxPartitions is set, merge globally-nearest
	// partition pairs until the cap holds. This can violate the ε_p bound
	// (deliberately — it trades partition purity for bounded coefficient
	// storage when feature noise exceeds ε_p).
	if p.opts.MaxPartitions > 0 {
		for len(parts) > p.opts.MaxPartitions {
			labels := sortedLabels(parts)
			bi, bj, best := -1, -1, math.Inf(1)
			for i := 0; i < len(labels); i++ {
				for j := i + 1; j < len(labels); j++ {
					if d := distVec(parts[labels[i]].centroid, parts[labels[j]].centroid); d < best {
						bi, bj, best = i, j, d
					}
				}
			}
			a, b := parts[labels[bi]], parts[labels[bj]]
			a.members = append(a.members, b.members...)
			a.centroid = centroidOf(feats, a.members)
			delete(parts, labels[bj])
			p.stats.Merges++
		}
	}

	// Build the result and the next assignment map.
	labels = sortedLabels(parts)
	res := &Result{Q: len(labels)}
	newAssign := make(map[traj.ID]int, len(ids))
	for _, l := range labels {
		pt := parts[l]
		sort.Ints(pt.members)
		res.Groups = append(res.Groups, pt.members)
		res.Labels = append(res.Labels, l)
		for _, i := range pt.members {
			newAssign[ids[i]] = l
		}
	}
	p.assign = newAssign
	return res
}

// boundedSplit partitions the given members with the bounded clustering
// loop and returns member groups (indices into the step's input).
func (p *Partitioner) boundedSplit(feats [][]float64, members []int) [][]int {
	data := make([][]float64, len(members))
	for i, m := range members {
		data[i] = feats[m]
	}
	res, _ := cluster.BoundedPartition(data, cluster.BoundedOptions{
		Epsilon: p.opts.EpsP,
		Step:    p.opts.Step,
		MaxIter: p.opts.MaxIter,
		MaxK:    p.opts.MaxPartitions,
		Seed:    p.opts.Seed,
	})
	groups := make([][]int, res.K())
	for i, c := range res.Assign {
		groups[c] = append(groups[c], members[i])
	}
	// Clusters can come back empty only if K() exceeds assignments; filter.
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

func sortedLabels(parts map[int]*part) []int {
	labels := make([]int, 0, len(parts))
	for l := range parts {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	return labels
}

func distVec(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SpatialFeatures converts points to the 2-D feature vectors used by
// Spatial mode.
func SpatialFeatures(points []geo.Point) [][]float64 {
	out := make([][]float64, len(points))
	for i, p := range points {
		out[i] = []float64{p.X, p.Y}
	}
	return out
}
