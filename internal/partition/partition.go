// Package partition implements PPQ's grouped-modeling partitioner
// (§3.2): assigning each live trajectory at each timestamp to a partition
// by spatial proximity (Equation 7) or lag-k autocorrelation similarity
// (Equation 8), so that one prediction function f_j can model each group.
//
// The partitioner is incremental across time (§3.2.2): points first keep
// the partition of their previous timestamp; partitions that violate the
// ε_p bound are re-split with the bounded clustering loop (Lemma 1);
// nearby partitions are merged — at most once each per step — to avoid
// fragmentation (Lemma 2 complexity O(q′m′N′l + q′q)).
package partition

import (
	"math"
	"sort"
	"time"

	"ppqtraj/internal/cluster"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// Mode selects the similarity driving Equations 7/8.
type Mode int

const (
	// Spatial partitions on point positions (PPQ-S, Equation 7).
	Spatial Mode = iota
	// Autocorr partitions on lag-k autocorrelation features (PPQ-A,
	// Equation 8).
	Autocorr
	// None disables partitioning: a single global partition (E-PQ).
	None
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Spatial:
		return "spatial"
	case Autocorr:
		return "autocorr"
	default:
		return "none"
	}
}

// Options configures a Partitioner.
type Options struct {
	Mode Mode
	// EpsP is ε_p, the partition radius threshold of Equations 7/8.
	EpsP float64
	// Step is the per-round partition-count increment of the bounded
	// clustering loop (the "a" of Lemma 1). Defaults to 1.
	Step int
	// MaxIter bounds Lloyd iterations per clustering round.
	MaxIter int
	// MaxPartitions caps q as a safety valve (0 = no cap).
	MaxPartitions int
	// Seed makes partitioning deterministic.
	Seed int64
}

// Stats accumulates the work counters reported by the Figure 7/8
// experiments.
type Stats struct {
	Steps       int           // timestamps processed
	Resplits    int           // partitions re-split for violating ε_p
	Merges      int           // partition merges performed
	NewParts    int           // partitions created
	Elapsed     time.Duration // total partitioning time (Figure 7)
	FromScratch int           // points partitioned without carry-over
	CarriedOver int           // points that kept their previous partition
}

// Result is one timestamp's partitioning: Groups[g] lists indices into the
// input slice belonging to partition g; Labels[g] is that partition's
// stable identity across timestamps.
type Result struct {
	Groups [][]int
	Labels []int
	Q      int // number of partitions (Figure 8's q)
}

type part struct {
	centroid []float64
	members  []int // indices into the current step's input
}

// assignEntry is a trajectory's partition label, stamped with the Step
// epoch that wrote it. Entries from older epochs are stale (the
// trajectory departed); stamping avoids rebuilding the assignment map on
// every timestamp.
type assignEntry struct {
	label int
	epoch uint64
}

// Partitioner carries partition state across timestamps.
type Partitioner struct {
	opts   Options
	assign map[traj.ID]assignEntry // trajectory → label, epoch-stamped
	epoch  uint64                  // current Step's stamp
	next   int                     // next fresh partition label
	qLive  int                     // partitions holding ≥1 trajectory after the last Step
	stats  Stats
}

// New creates a Partitioner.
func New(opts Options) *Partitioner {
	if opts.Step < 1 {
		opts.Step = 1
	}
	if opts.MaxIter < 1 {
		opts.MaxIter = 15
	}
	return &Partitioner{opts: opts, assign: make(map[traj.ID]assignEntry)}
}

// Stats returns accumulated work counters.
func (p *Partitioner) Stats() Stats { return p.stats }

// QLive returns the number of partitions currently holding at least one
// trajectory (meaningful after a Step call). The count is maintained by
// Step; the call is O(1).
func (p *Partitioner) QLive() int { return p.qLive }

func centroidOf(feats [][]float64, members []int) []float64 {
	if len(members) == 0 {
		return nil
	}
	dim := len(feats[members[0]])
	c := make([]float64, dim)
	for _, i := range members {
		for d, v := range feats[i] {
			c[d] += v
		}
	}
	inv := 1 / float64(len(members))
	for d := range c {
		c[d] *= inv
	}
	return c
}

func maxRadius(feats [][]float64, members []int, centroid []float64) float64 {
	max := 0.0
	for _, i := range members {
		var s float64
		for d, v := range feats[i] {
			dd := v - centroid[d]
			s += dd * dd
		}
		if s > max {
			max = s
		}
	}
	// max holds the squared distance; return the distance.
	return math.Sqrt(max)
}

// Step partitions one timestamp's trajectories. ids and feats are
// parallel; feats[i] is the similarity feature of ids[i] (2-D position for
// Spatial, k-dim AR coefficients for Autocorr). It returns the grouping
// and updates the carried state.
func (p *Partitioner) Step(ids []traj.ID, feats [][]float64) *Result {
	start := time.Now()
	defer func() { p.stats.Elapsed += time.Since(start) }()
	p.stats.Steps++

	p.epoch++
	if len(ids) == 0 {
		p.qLive = 0
		return &Result{}
	}
	if p.opts.Mode == None {
		// Single global partition with a stable label.
		group := make([]int, len(ids))
		for i := range group {
			group[i] = i
		}
		for _, id := range ids {
			p.assign[id] = assignEntry{label: 0, epoch: p.epoch}
		}
		p.qLive = 1
		return &Result{Groups: [][]int{group}, Labels: []int{0}, Q: 1}
	}

	// Phase 1: carry-forward. Points keep their previous partition; new
	// points join the nearest existing centroid if within ε_p, else go to
	// the fresh pool.
	parts := map[int]*part{}
	var fresh []int
	// Previous centroids are recomputed lazily from this step's features,
	// so first bucket by previous label.
	for i, id := range ids {
		if e, ok := p.assign[id]; ok && e.epoch == p.epoch-1 {
			pt := parts[e.label]
			if pt == nil {
				pt = &part{}
				parts[e.label] = pt
			}
			pt.members = append(pt.members, i)
			p.stats.CarriedOver++
		} else {
			fresh = append(fresh, i)
			p.stats.FromScratch++
		}
	}
	for _, pt := range parts {
		pt.centroid = centroidOf(feats, pt.members)
	}
	// New points: nearest existing centroid within ε_p, else fresh pool.
	// For 2-D (Spatial) features a uniform grid over the centroids turns
	// the O(fresh × q) scan into an O(fresh) 3×3-neighborhood probe (the
	// quant.Codebook idiom); high-dimensional Autocorr features keep the
	// linear path.
	if len(parts) > 0 && len(fresh) > 0 {
		grid := newCentroidGrid(p.opts.EpsP, feats)
		var candidates []int
		if grid == nil {
			candidates = sortedLabels(parts)
		} else {
			for _, l := range sortedLabels(parts) {
				grid.add(l, parts[l].centroid)
			}
		}
		stillFresh := fresh[:0]
		for _, i := range fresh {
			if grid != nil {
				candidates = grid.neighbors(feats[i])
			}
			bestLabel, bestD := -1, p.opts.EpsP
			for _, l := range candidates {
				if d := distVec(feats[i], parts[l].centroid); d <= bestD {
					bestLabel, bestD = l, d
				}
			}
			if bestLabel >= 0 {
				parts[bestLabel].members = append(parts[bestLabel].members, i)
			} else {
				stillFresh = append(stillFresh, i)
			}
		}
		fresh = stillFresh
	}

	// Phase 2: re-split partitions violating ε_p (Equation 7/8).
	for _, l := range sortedLabels(parts) {
		pt := parts[l]
		pt.centroid = centroidOf(feats, pt.members)
		if maxRadius(feats, pt.members, pt.centroid) <= p.opts.EpsP {
			continue
		}
		p.stats.Resplits++
		sub := p.boundedSplit(feats, pt.members)
		delete(parts, l)
		for _, members := range sub {
			nl := p.next
			p.next++
			p.stats.NewParts++
			parts[nl] = &part{centroid: centroidOf(feats, members), members: members}
		}
	}

	// Phase 3: fresh pool gets its own bounded partitioning.
	if len(fresh) > 0 {
		for _, members := range p.boundedSplit(feats, fresh) {
			nl := p.next
			p.next++
			p.stats.NewParts++
			parts[nl] = &part{centroid: centroidOf(feats, members), members: members}
		}
	}

	// Phase 4: merge close partitions (centroid distance ≤ ε_p), each
	// partition participating in at most one merge per step (§3.2.2).
	// The grid reduces the O(q²) pair scan to a 3×3-neighborhood probe
	// per partition; a merged partner never needs re-probing (smaller
	// labels are done, larger ones are filtered by the merged set), so
	// the grid built here stays valid for the whole phase.
	labels := sortedLabels(parts)
	merged := map[int]bool{}
	mergeGrid := newCentroidGrid(p.opts.EpsP, feats)
	if mergeGrid != nil {
		for _, l := range labels {
			mergeGrid.add(l, parts[l].centroid)
		}
	}
	for ai := 0; ai < len(labels); ai++ {
		a := labels[ai]
		if merged[a] || parts[a] == nil {
			continue
		}
		candidates := labels[ai+1:]
		if mergeGrid != nil {
			candidates = mergeGrid.neighbors(parts[a].centroid)
		}
		for _, b := range candidates {
			if b <= a || merged[b] || parts[b] == nil {
				continue
			}
			if distVec(parts[a].centroid, parts[b].centroid) <= p.opts.EpsP {
				// Merge only when the union still satisfies the ε_p radius
				// bound, so Equations 7/8 stay invariants of every step.
				union := append(append([]int(nil), parts[a].members...), parts[b].members...)
				uc := centroidOf(feats, union)
				if maxRadius(feats, union, uc) > p.opts.EpsP {
					continue
				}
				parts[a].members = union
				parts[a].centroid = uc
				delete(parts, b)
				merged[a], merged[b] = true, true
				p.stats.Merges++
				break
			}
		}
	}

	// Safety valve: when MaxPartitions is set, merge globally-nearest
	// partition pairs until the cap holds. This can violate the ε_p bound
	// (deliberately — it trades partition purity for bounded coefficient
	// storage when feature noise exceeds ε_p). 2-D features find the
	// nearest pair with an expanding-ring grid search instead of the
	// O(q²) scan (O(q³) across a shrink cascade).
	if p.opts.MaxPartitions > 0 {
		for len(parts) > p.opts.MaxPartitions {
			labels := sortedLabels(parts)
			la, lb := p.nearestPair(labels, parts, feats)
			a, b := parts[la], parts[lb]
			a.members = append(a.members, b.members...)
			a.centroid = centroidOf(feats, a.members)
			delete(parts, lb)
			p.stats.Merges++
		}
	}

	// Build the result and stamp the new assignments (stale entries of
	// departed trajectories age out by epoch — no map rebuild).
	labels = sortedLabels(parts)
	res := &Result{Q: len(labels)}
	for _, l := range labels {
		pt := parts[l]
		sort.Ints(pt.members)
		res.Groups = append(res.Groups, pt.members)
		res.Labels = append(res.Labels, l)
		for _, i := range pt.members {
			p.assign[ids[i]] = assignEntry{label: l, epoch: p.epoch}
		}
	}
	p.qLive = len(labels)
	// Periodic sweep keeps memory bounded on streams with trajectory
	// churn: entries not stamped this step can never be carried forward
	// again, so they are garbage once the step ends.
	if p.epoch%64 == 0 {
		for id, e := range p.assign {
			if e.epoch != p.epoch {
				delete(p.assign, id)
			}
		}
	}
	return res
}

// nearestPair returns the pair of partition labels with minimal centroid
// distance, lexicographically first among exact ties — the same winner
// the sequential i<j scan with strict-< updates picks. For 2-D features
// an expanding-ring search over a centroid grid prunes the scan.
func (p *Partitioner) nearestPair(labels []int, parts map[int]*part, feats [][]float64) (int, int) {
	if len(labels) == 2 {
		return labels[0], labels[1]
	}
	grid := newCentroidGrid(p.opts.EpsP, feats)
	if grid == nil {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(labels); i++ {
			for j := i + 1; j < len(labels); j++ {
				if d := distVec(parts[labels[i]].centroid, parts[labels[j]].centroid); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		return labels[bi], labels[bj]
	}
	for _, l := range labels {
		grid.add(l, parts[l].centroid)
	}
	bi, bj, best := -1, -1, math.Inf(1)
	for _, a := range labels {
		partner, d := grid.nearestOther(a, parts[a].centroid, parts)
		if partner < 0 {
			continue
		}
		lo, hi := a, partner
		if hi < lo {
			lo, hi = hi, lo
		}
		if d < best || (d == best && (lo < bi || (lo == bi && hi < bj))) {
			bi, bj, best = lo, hi, d
		}
	}
	return bi, bj
}

// boundedSplit partitions the given members with the bounded clustering
// loop and returns member groups (indices into the step's input).
func (p *Partitioner) boundedSplit(feats [][]float64, members []int) [][]int {
	data := make([][]float64, len(members))
	for i, m := range members {
		data[i] = feats[m]
	}
	res, _ := cluster.BoundedPartition(data, cluster.BoundedOptions{
		Epsilon: p.opts.EpsP,
		Step:    p.opts.Step,
		MaxIter: p.opts.MaxIter,
		MaxK:    p.opts.MaxPartitions,
		Seed:    p.opts.Seed,
	})
	groups := make([][]int, res.K())
	for i, c := range res.Assign {
		groups[c] = append(groups[c], members[i])
	}
	// Clusters can come back empty only if K() exceeds assignments; filter.
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// centroidGrid is a uniform-grid hash over partition centroids with cell
// size ε_p — the quant.Codebook idiom applied to the partitioner's three
// centroid scans. Any centroid within ε_p of a query lies in the 3×3
// neighborhood of the query's cell. It only supports 2-D (Spatial)
// features; newCentroidGrid returns nil for other dimensionalities and
// callers fall back to the linear scan.
type centroidGrid struct {
	cell                   float64
	m                      map[uint64][]int
	minX, minY, maxX, maxY int32
	buf                    []int
}

// newCentroidGrid returns an empty grid, or nil when the features are not
// 2-D or ε_p is not positive (the grid would degenerate).
func newCentroidGrid(eps float64, feats [][]float64) *centroidGrid {
	if eps <= 0 || len(feats) == 0 || len(feats[0]) != 2 {
		return nil
	}
	return &centroidGrid{
		cell: eps,
		m:    make(map[uint64][]int),
		minX: math.MaxInt32, minY: math.MaxInt32,
		maxX: math.MinInt32, maxY: math.MinInt32,
	}
}

func (g *centroidGrid) cellOf(c []float64) (int32, int32) {
	return int32(math.Floor(c[0] / g.cell)), int32(math.Floor(c[1] / g.cell))
}

func gridKey(x, y int32) uint64 { return uint64(uint32(x))<<32 | uint64(uint32(y)) }

func (g *centroidGrid) add(label int, centroid []float64) {
	x, y := g.cellOf(centroid)
	k := gridKey(x, y)
	g.m[k] = append(g.m[k], label)
	if x < g.minX {
		g.minX = x
	}
	if y < g.minY {
		g.minY = y
	}
	if x > g.maxX {
		g.maxX = x
	}
	if y > g.maxY {
		g.maxY = y
	}
}

// neighbors returns the labels in the 3×3 cell neighborhood of the query,
// in ascending label order (matching the sorted scan order of the linear
// path, so `<=`-style tie-breaking is preserved). The returned slice is
// the grid's scratch buffer, valid until the next call.
func (g *centroidGrid) neighbors(c []float64) []int {
	cx, cy := g.cellOf(c)
	out := g.buf[:0]
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			out = append(out, g.m[gridKey(cx+dx, cy+dy)]...)
		}
	}
	sort.Ints(out)
	g.buf = out
	return out
}

// nearestOther returns the label and distance of the nearest centroid to
// c excluding self, searching grid rings outward until no closer centroid
// can exist. Exact ties resolve to the smaller label. Returns (-1, 0)
// when the grid holds no other centroid.
func (g *centroidGrid) nearestOther(self int, c []float64, parts map[int]*part) (int, float64) {
	cx, cy := g.cellOf(c)
	bestL, bestD := -1, math.Inf(1)
	scan := func(x, y int32) {
		for _, l := range g.m[gridKey(x, y)] {
			if l == self {
				continue
			}
			if d := distVec(c, parts[l].centroid); d < bestD || (d == bestD && l < bestL) {
				bestL, bestD = l, d
			}
		}
	}
	// Widest ring that can still hold a cell of the grid's extent.
	maxRing := int32(0)
	for _, v := range []int32{cx - g.minX, g.maxX - cx, cy - g.minY, g.maxY - cy} {
		if v > maxRing {
			maxRing = v
		}
	}
	for r := int32(0); r <= maxRing; r++ {
		if r == 0 {
			scan(cx, cy)
		} else {
			for x := cx - r; x <= cx+r; x++ {
				scan(x, cy-r)
				scan(x, cy+r)
			}
			for y := cy - r + 1; y <= cy+r-1; y++ {
				scan(cx-r, y)
				scan(cx+r, y)
			}
		}
		// A centroid in ring r+1 or beyond is at Euclidean distance
		// ≥ r·cell from any point of the query's cell.
		if bestL >= 0 && bestD <= float64(r)*g.cell {
			break
		}
	}
	return bestL, bestD
}

func sortedLabels(parts map[int]*part) []int {
	labels := make([]int, 0, len(parts))
	for l := range parts {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	return labels
}

func distVec(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SpatialFeatures converts points to the 2-D feature vectors used by
// Spatial mode.
func SpatialFeatures(points []geo.Point) [][]float64 {
	out := make([][]float64, len(points))
	for i, p := range points {
		out[i] = []float64{p.X, p.Y}
	}
	return out
}
