package partition

import (
	"math/rand"
	"testing"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

func feats2D(pts ...geo.Point) [][]float64 { return SpatialFeatures(pts) }

func idsUpTo(n int) []traj.ID {
	ids := make([]traj.ID, n)
	for i := range ids {
		ids[i] = traj.ID(i)
	}
	return ids
}

// checkEq7 verifies every group satisfies the ε_p radius bound.
func checkEq7(t *testing.T, res *Result, feats [][]float64, eps float64) {
	t.Helper()
	for g, members := range res.Groups {
		c := centroidOf(feats, members)
		if r := maxRadius(feats, members, c); r > eps+1e-9 {
			t.Fatalf("group %d radius %v > ε_p %v", g, r, eps)
		}
	}
}

// checkCover verifies the groups are a partition of all input indices.
func checkCover(t *testing.T, res *Result, n int) {
	t.Helper()
	seen := make([]bool, n)
	for _, members := range res.Groups {
		for _, i := range members {
			if seen[i] {
				t.Fatalf("index %d in two groups", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d unassigned", i)
		}
	}
	if len(res.Groups) != len(res.Labels) || res.Q != len(res.Groups) {
		t.Fatalf("inconsistent result: %d groups, %d labels, Q=%d",
			len(res.Groups), len(res.Labels), res.Q)
	}
}

func TestModeNoneSingleGroup(t *testing.T) {
	p := New(Options{Mode: None})
	feats := feats2D(geo.Pt(0, 0), geo.Pt(100, 100))
	res := p.Step(idsUpTo(2), feats)
	if res.Q != 1 || len(res.Groups[0]) != 2 {
		t.Fatalf("None mode should give one group: %+v", res)
	}
}

func TestEmptyStep(t *testing.T) {
	p := New(Options{Mode: Spatial, EpsP: 1})
	res := p.Step(nil, nil)
	if res.Q != 0 {
		t.Fatalf("empty step Q = %d", res.Q)
	}
}

func TestInitialPartitioningSatisfiesBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts []geo.Point
	for c := 0; c < 4; c++ {
		cx, cy := float64(c)*10, float64(c%2)*10
		for i := 0; i < 50; i++ {
			pts = append(pts, geo.Pt(cx+rng.NormFloat64()*0.3, cy+rng.NormFloat64()*0.3))
		}
	}
	feats := feats2D(pts...)
	p := New(Options{Mode: Spatial, EpsP: 2, Seed: 2})
	res := p.Step(idsUpTo(len(pts)), feats)
	checkCover(t, res, len(pts))
	checkEq7(t, res, feats, 2)
	if res.Q < 4 {
		t.Fatalf("four separated blobs need ≥4 partitions, got %d", res.Q)
	}
}

func TestCarryForwardKeepsPartitions(t *testing.T) {
	// Points that barely move must keep their partition labels.
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(0.1, 0), geo.Pt(10, 10), geo.Pt(10.1, 10)}
	p := New(Options{Mode: Spatial, EpsP: 1, Seed: 3})
	ids := idsUpTo(4)
	r1 := p.Step(ids, feats2D(pts...))
	if r1.Q != 2 {
		t.Fatalf("expected 2 partitions, got %d", r1.Q)
	}
	moved := []geo.Point{geo.Pt(0.05, 0.02), geo.Pt(0.15, 0.02), geo.Pt(10.05, 10.02), geo.Pt(10.15, 10.02)}
	r2 := p.Step(ids, feats2D(moved...))
	if r2.Q != 2 {
		t.Fatalf("carry-forward should keep 2 partitions, got %d", r2.Q)
	}
	// Labels must be identical to the previous step (reuse, not rebuild).
	for i, l := range r2.Labels {
		if l != r1.Labels[i] {
			t.Fatalf("labels changed: %v → %v", r1.Labels, r2.Labels)
		}
	}
	st := p.Stats()
	if st.CarriedOver != 4 {
		t.Fatalf("CarriedOver = %d, want 4", st.CarriedOver)
	}
}

func TestResplitOnViolation(t *testing.T) {
	// One group at t, then half the members jump far away: the partition
	// violates ε_p and must be re-split.
	p := New(Options{Mode: Spatial, EpsP: 1, Seed: 4})
	ids := idsUpTo(4)
	r1 := p.Step(ids, feats2D(geo.Pt(0, 0), geo.Pt(0.1, 0), geo.Pt(0.2, 0), geo.Pt(0.3, 0)))
	if r1.Q != 1 {
		t.Fatalf("expected 1 partition initially, got %d", r1.Q)
	}
	feats := feats2D(geo.Pt(0, 0), geo.Pt(0.1, 0), geo.Pt(50, 50), geo.Pt(50.1, 50))
	r2 := p.Step(ids, feats)
	checkCover(t, r2, 4)
	checkEq7(t, r2, feats, 1)
	if r2.Q != 2 {
		t.Fatalf("after the jump there should be 2 partitions, got %d", r2.Q)
	}
	if p.Stats().Resplits == 0 {
		t.Fatal("a re-split should have been recorded")
	}
}

func TestNewTrajectoriesJoinNearestPartition(t *testing.T) {
	p := New(Options{Mode: Spatial, EpsP: 1, Seed: 5})
	r1 := p.Step([]traj.ID{0, 1}, feats2D(geo.Pt(0, 0), geo.Pt(0.2, 0)))
	if r1.Q != 1 {
		t.Fatal("setup failed")
	}
	// Trajectory 2 appears right next to the existing partition.
	r2 := p.Step([]traj.ID{0, 1, 2}, feats2D(geo.Pt(0, 0), geo.Pt(0.2, 0), geo.Pt(0.1, 0.1)))
	if r2.Q != 1 {
		t.Fatalf("nearby new trajectory should join, Q = %d", r2.Q)
	}
	// Trajectory 3 appears far away → new partition.
	r3 := p.Step([]traj.ID{0, 1, 2, 3},
		feats2D(geo.Pt(0, 0), geo.Pt(0.2, 0), geo.Pt(0.1, 0.1), geo.Pt(99, 99)))
	if r3.Q != 2 {
		t.Fatalf("far new trajectory should open a partition, Q = %d", r3.Q)
	}
}

func TestMergeCloseParts(t *testing.T) {
	// Two partitions whose members converge: centroids within ε_p must
	// merge (at most once per step).
	p := New(Options{Mode: Spatial, EpsP: 2, Seed: 6})
	ids := idsUpTo(4)
	r1 := p.Step(ids, feats2D(geo.Pt(0, 0), geo.Pt(0.1, 0), geo.Pt(10, 0), geo.Pt(10.1, 0)))
	if r1.Q != 2 {
		t.Fatalf("setup: Q = %d", r1.Q)
	}
	// Converge: both clusters now near (5, 0).
	feats := feats2D(geo.Pt(4.8, 0), geo.Pt(4.9, 0), geo.Pt(5.1, 0), geo.Pt(5.2, 0))
	r2 := p.Step(ids, feats)
	if r2.Q != 1 {
		t.Fatalf("converged partitions should merge, Q = %d", r2.Q)
	}
	if p.Stats().Merges == 0 {
		t.Fatal("merge not recorded")
	}
	checkEq7(t, r2, feats, 2)
}

func TestDepartedTrajectoriesDropPartitions(t *testing.T) {
	p := New(Options{Mode: Spatial, EpsP: 1, Seed: 7})
	p.Step(idsUpTo(4), feats2D(geo.Pt(0, 0), geo.Pt(0.1, 0), geo.Pt(50, 50), geo.Pt(50.1, 50)))
	if p.QLive() != 2 {
		t.Fatalf("QLive = %d", p.QLive())
	}
	// Only the first two remain.
	r := p.Step([]traj.ID{0, 1}, feats2D(geo.Pt(0, 0), geo.Pt(0.1, 0)))
	if r.Q != 1 || p.QLive() != 1 {
		t.Fatalf("Q = %d, QLive = %d after departures", r.Q, p.QLive())
	}
}

func TestAutocorrModePartitionsOnFeatures(t *testing.T) {
	// Feed AR-coefficient features directly: two motion regimes.
	var feats [][]float64
	var ids []traj.ID
	for i := 0; i < 20; i++ {
		feats = append(feats, []float64{0.9, 0.05})
		ids = append(ids, traj.ID(i))
	}
	for i := 20; i < 40; i++ {
		feats = append(feats, []float64{-0.4, 0.3})
		ids = append(ids, traj.ID(i))
	}
	p := New(Options{Mode: Autocorr, EpsP: 0.2, Seed: 8})
	res := p.Step(ids, feats)
	checkCover(t, res, 40)
	if res.Q != 2 {
		t.Fatalf("two AR regimes should give 2 partitions, got %d", res.Q)
	}
}

func TestStatsElapsedAccumulates(t *testing.T) {
	p := New(Options{Mode: Spatial, EpsP: 1, Seed: 9})
	rng := rand.New(rand.NewSource(10))
	for step := 0; step < 5; step++ {
		pts := make([]geo.Point, 100)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*10, rng.Float64()*10)
		}
		p.Step(idsUpTo(100), feats2D(pts...))
	}
	st := p.Stats()
	if st.Steps != 5 {
		t.Fatalf("Steps = %d", st.Steps)
	}
	if st.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
}

// TestIncrementalCheaperThanScratch verifies the §3.2.2 claim: when
// consecutive timestamps are similar, the incremental step does much less
// clustering work than partitioning from scratch.
func TestIncrementalCheaperThanScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := make([]geo.Point, 300)
	for i := range base {
		base[i] = geo.Pt(rng.Float64()*20, rng.Float64()*20)
	}
	drift := func(pts []geo.Point) []geo.Point {
		out := make([]geo.Point, len(pts))
		for i, p := range pts {
			out[i] = geo.Pt(p.X+rng.NormFloat64()*0.01, p.Y+rng.NormFloat64()*0.01)
		}
		return out
	}
	inc := New(Options{Mode: Spatial, EpsP: 3, Seed: 12})
	pts := base
	for step := 0; step < 10; step++ {
		inc.Step(idsUpTo(300), feats2D(pts...))
		pts = drift(pts)
	}
	incStats := inc.Stats()
	// From-scratch: a fresh partitioner per step sees every point as new.
	scratchNew := 0
	pts = base
	for step := 0; step < 10; step++ {
		s := New(Options{Mode: Spatial, EpsP: 3, Seed: 12})
		r := s.Step(idsUpTo(300), feats2D(pts...))
		scratchNew += r.Q
		pts = drift(pts)
	}
	// The incremental path creates partitions mostly in step 1; later
	// steps reuse them.
	if incStats.NewParts >= scratchNew {
		t.Fatalf("incremental created %d partitions vs %d from scratch — no reuse",
			incStats.NewParts, scratchNew)
	}
}

// TestPropertyBoundAlwaysHolds fuzzes drifting workloads and asserts the
// Equation 7 invariant after every step.
func TestPropertyBoundAlwaysHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		eps := 0.5 + rng.Float64()*3
		p := New(Options{Mode: Spatial, EpsP: eps, Seed: int64(trial)})
		n := 50 + rng.Intn(100)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*30, rng.Float64()*30)
		}
		for step := 0; step < 8; step++ {
			feats := feats2D(pts...)
			res := p.Step(idsUpTo(n), feats)
			checkCover(t, res, n)
			checkEq7(t, res, feats, eps)
			// Random drift plus occasional jumps.
			for i := range pts {
				pts[i] = geo.Pt(pts[i].X+rng.NormFloat64()*0.2, pts[i].Y+rng.NormFloat64()*0.2)
				if rng.Float64() < 0.02 {
					pts[i] = geo.Pt(rng.Float64()*30, rng.Float64()*30)
				}
			}
		}
	}
}
