// Package baseline implements the non-PPQ comparison methods of the
// evaluation (§6.1) that are not already variants of the core builder:
// Product Quantization [19] and Residual Quantization [8] applied per
// timestamp, in both the fixed-codeword-budget mode (Tables 2–4) and the
// error-bounded mode (Tables 5–6, Figure 9). Q-trajectory and E-PQ are
// configuration variants of core.Builder; TrajStore and REST live in
// their own packages.
//
// All builders produce a FlatSummary, which satisfies query.Source so the
// baselines get the same TPI indexing the paper granted them ("for
// fairness, we extended these methods with our indexing approach").
package baseline

import (
	"sort"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/quant"
	"ppqtraj/internal/traj"
)

// FlatSummary stores per-trajectory reconstructions plus the size/quality
// accounting every method comparison needs. It implements query.Source.
type FlatSummary struct {
	Method string
	// recon[id] holds the reconstructions; start[id] the first tick.
	recon map[traj.ID][]geo.Point
	start map[traj.ID]int
	ticks []int

	NumPoints int
	Codewords int
	CodeBits  int // total bits spent on per-point codes
	BookBytes int // codebook storage
	BuildTime time.Duration
	sumAbsErr float64
	maxErr    float64
}

func newFlat(method string) *FlatSummary {
	return &FlatSummary{
		Method: method,
		recon:  make(map[traj.ID][]geo.Point),
		start:  make(map[traj.ID]int),
	}
}

// record appends the reconstruction of (id, tick) and its deviation.
func (f *FlatSummary) record(id traj.ID, tick int, orig, rec geo.Point) {
	if _, ok := f.start[id]; !ok {
		f.start[id] = tick
	}
	f.recon[id] = append(f.recon[id], rec)
	d := orig.Dist(rec)
	f.sumAbsErr += d
	if d > f.maxErr {
		f.maxErr = d
	}
	f.NumPoints++
}

// MAE returns the mean absolute deviation in coordinate units.
func (f *FlatSummary) MAE() float64 {
	if f.NumPoints == 0 {
		return 0
	}
	return f.sumAbsErr / float64(f.NumPoints)
}

// MAEMeters returns MAE in meters.
func (f *FlatSummary) MAEMeters() float64 { return geo.DegreesToMeters(f.MAE()) }

// MaxDeviation implements query.Source: the observed worst-case deviation.
func (f *FlatSummary) MaxDeviation() float64 { return f.maxErr }

// ReconstructedPoint implements query.Source.
func (f *FlatSummary) ReconstructedPoint(id traj.ID, tick int) (geo.Point, bool) {
	pts, ok := f.recon[id]
	if !ok {
		return geo.Point{}, false
	}
	i := tick - f.start[id]
	if i < 0 || i >= len(pts) {
		return geo.Point{}, false
	}
	return pts[i], true
}

// ReconstructPath implements query.Source.
func (f *FlatSummary) ReconstructPath(id traj.ID, from, l int) []geo.Point {
	pts, ok := f.recon[id]
	if !ok {
		return nil
	}
	s := f.start[id]
	lo, hi := from, from+l
	if lo < s {
		lo = s
	}
	if hi > s+len(pts) {
		hi = s + len(pts)
	}
	if lo >= hi {
		return nil
	}
	return pts[lo-s : hi-s]
}

// SortedTicks implements query.Source.
func (f *FlatSummary) SortedTicks() []int { return f.ticks }

// StreamColumns implements query.Source: every reconstructed column in
// ascending tick order, IDs ascending within a column, in
// O(points + tick span) via one counting sort over the tick axis (each
// trajectory's reconstructions cover a contiguous tick range). The slices
// passed to fn are valid only during the call.
func (f *FlatSummary) StreamColumns(fn func(tick int, ids []traj.ID, pts []geo.Point) error) error {
	if len(f.ticks) == 0 {
		return nil
	}
	minT := f.ticks[0]
	span := f.ticks[len(f.ticks)-1] - minT + 1
	offsets := make([]int, span+1)
	ids := f.TrajIDs()
	for _, id := range ids {
		s := f.start[id]
		for t := s; t < s+len(f.recon[id]); t++ {
			offsets[t-minT+1]++
		}
	}
	for t := 1; t <= span; t++ {
		offsets[t] += offsets[t-1]
	}
	fill := make([]int, span)
	idBuf := make([]traj.ID, f.NumPoints)
	ptBuf := make([]geo.Point, f.NumPoints)
	for _, id := range ids { // ascending IDs → each column comes out sorted
		s := f.start[id]
		pts := f.recon[id]
		for j, p := range pts {
			c := s + j - minT
			slot := offsets[c] + fill[c]
			fill[c]++
			idBuf[slot] = id
			ptBuf[slot] = p
		}
	}
	for c := 0; c < span; c++ {
		lo, hi := offsets[c], offsets[c+1]
		if lo == hi {
			continue
		}
		if err := fn(minT+c, idBuf[lo:hi], ptBuf[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// TrajIDs implements query.Source.
func (f *FlatSummary) TrajIDs() []traj.ID {
	out := make([]traj.ID, 0, len(f.recon))
	for id := range f.recon {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SizeBytes returns codebook storage plus per-point code bits — the
// paper's accounting for PQ/RQ ("they need more space to store additional
// codeword indexes").
func (f *FlatSummary) SizeBytes() int {
	return f.BookBytes + (f.CodeBits+7)/8 + len(f.recon)*4 // start ticks
}

// CompressionRatio returns rawBytes / SizeBytes.
func (f *FlatSummary) CompressionRatio(rawBytes int) float64 {
	sz := f.SizeBytes()
	if sz == 0 {
		return 0
	}
	return float64(rawBytes) / float64(sz)
}

// perTick drives a per-timestamp quantization build: fn quantizes one
// column of points and returns (reconstructions, stored codewords, code
// bits spent, codebook bytes).
func perTick(d *traj.Dataset, f *FlatSummary,
	fn func(tick int, pts []geo.Point) ([]geo.Point, int, int, int)) *FlatSummary {
	start := time.Now()
	_ = d.Stream(func(col *traj.Column) error {
		rec, words, bits, bookBytes := fn(col.Tick, col.Points)
		f.ticks = append(f.ticks, col.Tick)
		f.Codewords += words
		f.CodeBits += bits
		f.BookBytes += bookBytes
		for i, id := range col.IDs {
			f.record(id, col.Tick, col.Points[i], rec[i])
		}
		return nil
	})
	f.BuildTime = time.Since(start)
	return f
}

// bitsFor mirrors codec.BitsFor without the import (tiny helper).
func bitsFor(n int) int {
	if n <= 1 {
		if n == 1 {
			return 1
		}
		return 0
	}
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// ProductQuant builds the PQ baseline with a fixed per-tick codeword
// budget.
func ProductQuant(d *traj.Dataset, wordsPerTick int, seed int64) *FlatSummary {
	f := newFlat("ProductQuantization")
	return perTick(d, f, func(tick int, pts []geo.Point) ([]geo.Point, int, int, int) {
		pq, codes := quant.ProductFixed(pts, wordsPerTick, 20, seed+int64(tick))
		rec := make([]geo.Point, len(pts))
		for i := range pts {
			rec[i] = pq.Decode(codes[i])
		}
		perPoint := bitsFor(len(pq.XWords)) + bitsFor(len(pq.YWords))
		return rec, pq.NumWords(), perPoint * len(pts), pq.Bytes()
	})
}

// ProductQuantBounded builds the PQ baseline with an error bound per tick.
func ProductQuantBounded(d *traj.Dataset, eps float64) *FlatSummary {
	f := newFlat("ProductQuantization")
	return perTick(d, f, func(tick int, pts []geo.Point) ([]geo.Point, int, int, int) {
		pq, codes := quant.ProductBounded(pts, eps)
		rec := make([]geo.Point, len(pts))
		for i := range pts {
			rec[i] = pq.Decode(codes[i])
		}
		perPoint := bitsFor(len(pq.XWords)) + bitsFor(len(pq.YWords))
		return rec, pq.NumWords(), perPoint * len(pts), pq.Bytes()
	})
}

// ResidualQuant builds the RQ baseline with a fixed per-tick budget.
func ResidualQuant(d *traj.Dataset, wordsPerTick int, seed int64) *FlatSummary {
	f := newFlat("ResidualQuantization")
	return perTick(d, f, func(tick int, pts []geo.Point) ([]geo.Point, int, int, int) {
		rq, codes := quant.ResidualFixed(pts, wordsPerTick, 20, seed+int64(tick))
		rec := make([]geo.Point, len(pts))
		for i := range pts {
			rec[i] = rq.Decode(codes[i])
		}
		perPoint := 0
		for _, st := range rq.Stages {
			perPoint += bitsFor(st.Len())
		}
		return rec, rq.NumWords(), perPoint * len(pts), rq.Bytes()
	})
}

// ResidualQuantBounded builds the RQ baseline with an error bound per
// tick, using the clustered (paper-style) quantizer in each stage.
func ResidualQuantBounded(d *traj.Dataset, eps float64, stages int) *FlatSummary {
	f := newFlat("ResidualQuantization")
	return perTick(d, f, func(tick int, pts []geo.Point) ([]geo.Point, int, int, int) {
		rq, codes := quant.ResidualBounded(pts, eps, stages)
		rec := make([]geo.Point, len(pts))
		for i := range pts {
			rec[i] = rq.Decode(codes[i])
		}
		perPoint := 0
		for _, st := range rq.Stages {
			perPoint += bitsFor(st.Len())
		}
		return rec, rq.NumWords(), perPoint * len(pts), rq.Bytes()
	})
}
