package baseline

import (
	"fmt"
	"sort"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// Collector assembles a FlatSummary from reconstructions that arrive in
// arbitrary order (TrajStore compresses per spatial cell, so one
// trajectory's points come back scattered across cells).
type Collector struct {
	method string
	recs   map[traj.ID]map[int][2]geo.Point // id → tick → (orig, recon)
}

// NewCollector creates a Collector for the named method.
func NewCollector(method string) *Collector {
	return &Collector{method: method, recs: make(map[traj.ID]map[int][2]geo.Point)}
}

// Add records the reconstruction of one point.
func (c *Collector) Add(id traj.ID, tick int, orig, recon geo.Point) {
	m := c.recs[id]
	if m == nil {
		m = make(map[int][2]geo.Point)
		c.recs[id] = m
	}
	m[tick] = [2]geo.Point{orig, recon}
}

// Finish sorts every trajectory's ticks and materializes the FlatSummary.
// Each trajectory's ticks must form a contiguous range (they do: a
// trajectory is sampled at consecutive ticks); a gap is a caller bug and
// returns an error.
func (c *Collector) Finish() (*FlatSummary, error) {
	f := newFlat(c.method)
	tickSet := map[int]bool{}
	ids := make([]traj.ID, 0, len(c.recs))
	for id := range c.recs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m := c.recs[id]
		ticks := make([]int, 0, len(m))
		for t := range m {
			ticks = append(ticks, t)
			tickSet[t] = true
		}
		sort.Ints(ticks)
		for i, t := range ticks {
			if i > 0 && t != ticks[i-1]+1 {
				return nil, fmt.Errorf("baseline: trajectory %d has a tick gap %d→%d", id, ticks[i-1], t)
			}
			pair := m[t]
			f.record(id, t, pair[0], pair[1])
		}
	}
	f.ticks = make([]int, 0, len(tickSet))
	for t := range tickSet {
		f.ticks = append(f.ticks, t)
	}
	sort.Ints(f.ticks)
	return f, nil
}
