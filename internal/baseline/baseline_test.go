package baseline

import (
	"context"
	"testing"

	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/query"
	"ppqtraj/internal/traj"
)

func smallData(t testing.TB) *traj.Dataset {
	t.Helper()
	return gen.Porto(gen.Config{NumTrajectories: 20, MinLen: 30, MaxLen: 50, Seed: 9})
}

func TestProductQuantFixedShape(t *testing.T) {
	d := smallData(t)
	f := ProductQuant(d, 32, 1)
	if f.NumPoints != d.NumPoints() {
		t.Fatalf("NumPoints = %d, want %d", f.NumPoints, d.NumPoints())
	}
	if f.MAE() <= 0 {
		t.Fatal("MAE should be positive with a finite budget")
	}
	if f.Codewords == 0 || f.CodeBits == 0 || f.BookBytes == 0 {
		t.Fatalf("size accounting empty: %+v", f)
	}
	if f.BuildTime <= 0 {
		t.Fatal("BuildTime missing")
	}
}

func TestProductQuantBoundedRespectsEps(t *testing.T) {
	d := smallData(t)
	eps := geo.MetersToDegrees(400)
	f := ProductQuantBounded(d, eps)
	if f.MaxDeviation() > eps+1e-12 {
		t.Fatalf("max deviation %v > eps %v", f.MaxDeviation(), eps)
	}
}

func TestResidualQuantBoundedRespectsEps(t *testing.T) {
	d := smallData(t)
	eps := geo.MetersToDegrees(400)
	f := ResidualQuantBounded(d, eps, 3)
	if f.MaxDeviation() > eps+1e-12 {
		t.Fatalf("max deviation %v > eps %v", f.MaxDeviation(), eps)
	}
}

func TestBoundedTighterEpsMoreWords(t *testing.T) {
	d := smallData(t)
	loose := ProductQuantBounded(d, geo.MetersToDegrees(1000))
	tight := ProductQuantBounded(d, geo.MetersToDegrees(200))
	if tight.Codewords <= loose.Codewords {
		t.Fatalf("tighter bound should need more codewords: %d vs %d",
			tight.Codewords, loose.Codewords)
	}
}

func TestFlatSummaryAccessors(t *testing.T) {
	d := smallData(t)
	f := ResidualQuant(d, 16, 2)
	ids := f.TrajIDs()
	if len(ids) != d.Len() {
		t.Fatalf("TrajIDs = %d, want %d", len(ids), d.Len())
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("TrajIDs not sorted")
		}
	}
	tr := d.Get(0)
	if _, ok := f.ReconstructedPoint(0, tr.Start); !ok {
		t.Fatal("first point should exist")
	}
	if _, ok := f.ReconstructedPoint(0, tr.End()); ok {
		t.Fatal("past-end point should not exist")
	}
	if _, ok := f.ReconstructedPoint(9999, 0); ok {
		t.Fatal("unknown id should not exist")
	}
	path := f.ReconstructPath(0, tr.Start, 5)
	if len(path) != 5 {
		t.Fatalf("path = %d", len(path))
	}
	if f.ReconstructPath(0, tr.End()+1, 5) != nil {
		t.Fatal("out-of-range path should be nil")
	}
	ticks := f.SortedTicks()
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatal("ticks not ascending")
		}
	}
}

func TestFlatSummaryIsQuerySource(t *testing.T) {
	// The whole point of FlatSummary: PQ/RQ get TPI-based STRQ.
	d := smallData(t)
	var src query.Source = ProductQuant(d, 64, 3)
	eng, err := query.BuildEngine(src, index.Options{
		EpsS: 0.1, GC: geo.MetersToDegrees(100), EpsC: 0.5, EpsD: 0.5, Seed: 4,
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	tr := d.Get(0)
	qp, _ := tr.At(tr.Start + 5)
	res, _ := eng.STRQ(context.Background(), qp, tr.Start+5, false, nil)
	_ = res // shape only: coverage depends on reconstruction drift
}

func TestRQBeatsPQOnMAE(t *testing.T) {
	// With an equal budget RQ refines residuals and should generally beat
	// PQ on correlated spatial data (consistent with Table 2's ordering).
	d := smallData(t)
	pq := ProductQuant(d, 32, 5)
	rq := ResidualQuant(d, 32, 5)
	if rq.MAE() >= pq.MAE()*1.5 {
		t.Fatalf("RQ MAE %v should not be far above PQ %v", rq.MAE(), pq.MAE())
	}
}

func TestCompressionRatioPositive(t *testing.T) {
	d := smallData(t)
	f := ProductQuantBounded(d, geo.MetersToDegrees(500))
	r := f.CompressionRatio(d.RawBytes())
	if r <= 0 {
		t.Fatalf("ratio = %v", r)
	}
}

func TestBitsFor(t *testing.T) {
	for n, want := range map[int]int{0: 0, 1: 1, 2: 1, 3: 2, 16: 4, 17: 5} {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}
