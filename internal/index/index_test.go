package index

import (
	"math/rand"
	"testing"

	"ppqtraj/internal/cache"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/store"
	"ppqtraj/internal/traj"
)

func idsSeq(n int) []traj.ID {
	ids := make([]traj.ID, n)
	for i := range ids {
		ids[i] = traj.ID(i)
	}
	return ids
}

func clusterPoints(rng *rand.Rand, centers []geo.Point, per int, spread float64) []geo.Point {
	var out []geo.Point
	for _, c := range centers {
		for i := 0; i < per; i++ {
			out = append(out, geo.Pt(c.X+rng.NormFloat64()*spread, c.Y+rng.NormFloat64()*spread))
		}
	}
	return out
}

func TestBuildPICoversAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := clusterPoints(rng, []geo.Point{geo.Pt(0, 0), geo.Pt(10, 10)}, 50, 0.5)
	pi := BuildPI(idsSeq(len(pts)), pts, 0, 2, 0.25, 2)
	for i, p := range pts {
		if !pi.Covers(p) {
			t.Fatalf("point %d %v not covered", i, p)
		}
	}
}

func TestPIRegionsDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Overlapping clusters force the remove_overlap path.
	pts := clusterPoints(rng, []geo.Point{geo.Pt(0, 0), geo.Pt(1.5, 1.5), geo.Pt(3, 0)}, 60, 1)
	pi := BuildPI(idsSeq(len(pts)), pts, 0, 2, 0.25, 3)
	for i := range pi.Regions {
		for j := i + 1; j < len(pi.Regions); j++ {
			if pi.Regions[i].Rect.Intersects(pi.Regions[j].Rect) {
				t.Fatalf("regions %d and %d overlap: %v vs %v",
					i, j, pi.Regions[i].Rect, pi.Regions[j].Rect)
			}
		}
	}
}

func TestPILookupFindsInsertedIDs(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(0.01, 0.01), geo.Pt(5, 5)}
	pi := BuildPI(idsSeq(3), pts, 7, 10, 0.1, 4)
	ids, cell, ok := pi.Lookup(geo.Pt(0.005, 0.005), 7)
	if !ok {
		t.Fatal("query point should be covered")
	}
	if !cell.Contains(geo.Pt(0.005, 0.005)) {
		t.Fatal("returned cell does not contain the query point")
	}
	// Both nearby points share the 0.1-sized cell at the region corner.
	if len(ids) != 2 {
		t.Fatalf("ids = %v, want the two nearby points", ids)
	}
	// Wrong tick: nothing indexed.
	ids, _, _ = pi.Lookup(geo.Pt(0.005, 0.005), 8)
	if len(ids) != 0 {
		t.Fatalf("tick 8 should be empty, got %v", ids)
	}
}

func TestPISealRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := clusterPoints(rng, []geo.Point{geo.Pt(0, 0)}, 200, 0.3)
	pi := BuildPI(idsSeq(len(pts)), pts, 0, 5, 0.05, 6)
	// Record pre-seal lookups, seal, compare.
	type probe struct {
		p   geo.Point
		ids []traj.ID
	}
	var probes []probe
	for i := 0; i < 20; i++ {
		p := pts[rng.Intn(len(pts))]
		ids, _, _ := pi.Lookup(p, 0)
		probes = append(probes, probe{p, ids})
	}
	if err := pi.Seal(); err != nil {
		t.Fatal(err)
	}
	for _, pr := range probes {
		got, _, _ := pi.Lookup(pr.p, 0)
		if len(got) != len(pr.ids) {
			t.Fatalf("seal changed lookup result: %v vs %v", got, pr.ids)
		}
		seen := map[traj.ID]bool{}
		for _, id := range got {
			seen[id] = true
		}
		for _, id := range pr.ids {
			if !seen[id] {
				t.Fatalf("id %d lost after seal", id)
			}
		}
	}
}

func TestPILookupAreaDedups(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(0.3, 0), geo.Pt(0.6, 0)}
	pi := BuildPI(idsSeq(3), pts, 0, 10, 0.25, 7)
	got := pi.LookupArea(geo.NewRect(-1, -1, 1, 1), 0, nil)
	if len(got) != 3 {
		t.Fatalf("LookupArea = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("ids not sorted/deduped")
		}
	}
}

func TestPISizeShrinksAfterSeal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Many IDs in few cells: compression must help.
	pts := make([]geo.Point, 2000)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*0.09, rng.Float64()*0.09)
	}
	pi := BuildPI(idsSeq(len(pts)), pts, 0, 1, 0.1, 9)
	raw := pi.SizeBytes()
	if err := pi.Seal(); err != nil {
		t.Fatal(err)
	}
	sealed := pi.SizeBytes()
	if sealed >= raw {
		t.Fatalf("sealed size %d should be below raw %d", sealed, raw)
	}
}

func TestTPIPanicsOnBadOptions(t *testing.T) {
	for name, opts := range map[string]Options{
		"no gc":   {EpsS: 1},
		"no epsS": {GC: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewTPI(opts)
		}()
	}
}

func TestTPIPeriodsTileTime(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tpi := NewTPI(Options{EpsS: 3, GC: 0.25, EpsC: 0.5, EpsD: 0.5, Seed: 11})
	n := 40
	pts := clusterPoints(rng, []geo.Point{geo.Pt(0, 0), geo.Pt(10, 10)}, n/2, 0.5)
	for tick := 0; tick < 30; tick++ {
		// Drift; at tick 15 everything jumps (forces a re-build).
		for i := range pts {
			pts[i] = geo.Pt(pts[i].X+rng.NormFloat64()*0.05, pts[i].Y+rng.NormFloat64()*0.05)
		}
		if tick == 15 {
			for i := range pts {
				pts[i] = geo.Pt(pts[i].X+100, pts[i].Y+100)
			}
		}
		tpi.Append(idsSeq(n), pts, tick)
	}
	if tpi.NumPeriods() < 2 {
		t.Fatalf("the jump should have forced a re-build; periods = %d", tpi.NumPeriods())
	}
	// Periods tile [0, 29] without gaps or overlap.
	expect := 0
	for _, p := range tpi.Periods {
		if p.Start != expect {
			t.Fatalf("period starts at %d, want %d", p.Start, expect)
		}
		if p.End < p.Start {
			t.Fatalf("bad period %+v", p)
		}
		expect = p.End + 1
	}
	if expect != 30 {
		t.Fatalf("periods end at %d, want 30", expect)
	}
}

func TestTPIInsertionForUncovered(t *testing.T) {
	tpi := NewTPI(Options{EpsS: 5, GC: 0.5, EpsC: 0.9, EpsD: 0.99, Seed: 12})
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(0.5, 0.5)}
	tpi.Append(idsSeq(2), pts, 0)
	// New trajectory appears far outside the covered area; ADR won't
	// trigger (others stay), so this must be an Insertion, not a rebuild.
	pts2 := []geo.Point{geo.Pt(0.05, 0.05), geo.Pt(0.55, 0.55), geo.Pt(50, 50)}
	tpi.Append(idsSeq(3), pts2, 1)
	if tpi.NumPeriods() != 1 {
		t.Fatalf("should still be one period, got %d", tpi.NumPeriods())
	}
	if tpi.Stats().Insertions != 1 {
		t.Fatalf("Insertions = %d, want 1", tpi.Stats().Insertions)
	}
	ids, _, ok := tpi.Lookup(geo.Pt(50, 50), 1)
	if !ok || len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("inserted region lookup = %v ok=%v", ids, ok)
	}
}

func TestTPIRebuildOnDensityDrop(t *testing.T) {
	// Two dense areas at t=0; at t=1 one empties → ADR = 0.5 region
	// dropping... build with εd low enough to trigger.
	tpi := NewTPI(Options{EpsS: 2, GC: 0.25, EpsC: 0.5, EpsD: 0.3, Seed: 13})
	rng := rand.New(rand.NewSource(14))
	a := clusterPoints(rng, []geo.Point{geo.Pt(0, 0)}, 20, 0.3)
	b := clusterPoints(rng, []geo.Point{geo.Pt(20, 20)}, 20, 0.3)
	tpi.Append(idsSeq(40), append(append([]geo.Point{}, a...), b...), 0)
	// All 40 move to cluster a's area: cluster b's regions drop to ~0.
	all := clusterPoints(rng, []geo.Point{geo.Pt(0, 0)}, 40, 0.3)
	tpi.Append(idsSeq(40), all, 1)
	if tpi.Stats().Rebuilds < 2 {
		t.Fatalf("density collapse should force a re-build; rebuilds = %d", tpi.Stats().Rebuilds)
	}
	if tpi.PeriodOf(1).Start != 1 {
		t.Fatal("tick 1 should start a fresh period")
	}
}

func TestTPIHigherEpsDFewerPeriods(t *testing.T) {
	// Tables 7/8 shape: higher tolerance ⇒ fewer rebuilds/periods.
	run := func(epsD float64) int {
		rng := rand.New(rand.NewSource(15))
		tpi := NewTPI(Options{EpsS: 3, GC: 0.25, EpsC: 0.5, EpsD: epsD, Seed: 16})
		pts := clusterPoints(rng, []geo.Point{geo.Pt(0, 0), geo.Pt(5, 5), geo.Pt(-5, 5)}, 20, 0.5)
		for tick := 0; tick < 40; tick++ {
			for i := range pts {
				pts[i] = geo.Pt(pts[i].X+rng.NormFloat64()*0.4, pts[i].Y+rng.NormFloat64()*0.4)
			}
			tpi.Append(idsSeq(len(pts)), pts, tick)
		}
		return tpi.NumPeriods()
	}
	strict, loose := run(0.05), run(0.9)
	if loose > strict {
		t.Fatalf("higher ε_d should not increase periods: strict=%d loose=%d", strict, loose)
	}
}

func TestTPILookupOutsidePeriods(t *testing.T) {
	tpi := NewTPI(Options{EpsS: 1, GC: 0.25, EpsC: 0.5, EpsD: 0.5, Seed: 17})
	tpi.Append(idsSeq(1), []geo.Point{geo.Pt(0, 0)}, 5)
	if _, _, ok := tpi.Lookup(geo.Pt(0, 0), 99); ok {
		t.Fatal("lookup outside any period should fail")
	}
	if _, ok := tpi.CellRect(geo.Pt(0, 0), 99); ok {
		t.Fatal("CellRect outside any period should fail")
	}
	if got := tpi.LookupArea(geo.NewRect(-1, -1, 1, 1), 99, nil); got != nil {
		t.Fatalf("LookupArea outside period = %v", got)
	}
}

func TestTPIAppendPanicsOnTickRegression(t *testing.T) {
	tpi := NewTPI(Options{EpsS: 1, GC: 0.25, Seed: 18})
	tpi.Append(idsSeq(1), []geo.Point{geo.Pt(0, 0)}, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tpi.Append(idsSeq(1), []geo.Point{geo.Pt(0, 0)}, 3)
}

func TestAssignPagesAndIOAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tpi := NewTPI(Options{EpsS: 5, GC: 0.1, EpsC: 0.5, EpsD: 0.5, Seed: 20})
	pts := clusterPoints(rng, []geo.Point{geo.Pt(0, 0)}, 500, 1)
	for tick := 0; tick < 5; tick++ {
		tpi.Append(idsSeq(len(pts)), pts, tick)
	}
	if err := tpi.Seal(); err != nil {
		t.Fatal(err)
	}
	ps := store.New(4096) // small pages to force multi-page layout
	tpi.AssignPages(ps)
	if ps.NumPages() < 2 {
		t.Fatalf("expected multi-page layout, got %d pages", ps.NumPages())
	}
	rt := ps.BeginRead()
	got := tpi.LookupArea(geo.NewRect(-0.2, -0.2, 0.2, 0.2), 2, rt)
	if len(got) == 0 {
		t.Fatal("query should find points")
	}
	if rt.PagesTouched() == 0 {
		t.Fatal("disk query should touch pages")
	}
	if rt.PagesTouched() >= ps.NumPages() {
		t.Fatal("query should not scan the whole store")
	}
}

// TestLookupOracle cross-checks PI lookups against brute force over many
// random configurations.
func TestLookupOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(150)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*10, rng.Float64()*10)
		}
		pi := BuildPI(idsSeq(n), pts, 0, 2+rng.Float64()*4, 0.2+rng.Float64()*0.3, int64(trial))
		if err := pi.Seal(); err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 30; probe++ {
			q := pts[rng.Intn(n)]
			ids, cell, ok := pi.Lookup(q, 0)
			if !ok {
				t.Fatalf("indexed point %v not covered", q)
			}
			want := map[traj.ID]bool{}
			for i, p := range pts {
				if cell.Contains(p) {
					want[traj.ID(i)] = true
				}
			}
			if len(ids) != len(want) {
				t.Fatalf("trial %d: got %d ids, want %d", trial, len(ids), len(want))
			}
			for _, id := range ids {
				if !want[id] {
					t.Fatalf("unexpected id %d", id)
				}
			}
		}
	}
}

// TestCachedLookupsMatchCold builds a sealed TPI, attaches a decoded-cell
// cache, and checks every LookupArea/Lookup answer is identical to the
// cold decode — and that repeated probes actually hit.
func TestCachedLookupsMatchCold(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	tpi := NewTPI(Options{EpsS: 3, GC: 0.25, EpsC: 0.5, EpsD: 0.5, Seed: 21})
	n := 60
	pts := clusterPoints(rng, []geo.Point{geo.Pt(0, 0), geo.Pt(8, 8)}, n/2, 0.5)
	for tick := 0; tick < 25; tick++ {
		for i := range pts {
			pts[i] = geo.Pt(pts[i].X+rng.NormFloat64()*0.05, pts[i].Y+rng.NormFloat64()*0.05)
		}
		tpi.Append(idsSeq(n), pts, tick)
	}
	if err := tpi.Seal(); err != nil {
		t.Fatal(err)
	}

	type probe struct {
		area geo.Rect
		tick int
	}
	var probes []probe
	for q := 0; q < 120; q++ {
		c := pts[rng.Intn(len(pts))]
		probes = append(probes, probe{
			area: geo.NewRect(c.X-0.4, c.Y-0.4, c.X+0.4, c.Y+0.4),
			tick: rng.Intn(25),
		})
	}
	cold := make([][]traj.ID, len(probes))
	for i, p := range probes {
		cold[i] = append([]traj.ID(nil), tpi.LookupArea(p.area, p.tick, nil)...)
	}

	cc := cache.New(1 << 22)
	tpi.SetCache(cc, cc.NewOwner())
	for pass := 0; pass < 2; pass++ {
		for i, p := range probes {
			got := tpi.LookupArea(p.area, p.tick, nil)
			if len(got) != len(cold[i]) {
				t.Fatalf("pass %d probe %d: %d ids vs cold %d", pass, i, len(got), len(cold[i]))
			}
			for j := range got {
				if got[j] != cold[i][j] {
					t.Fatalf("pass %d probe %d: ids diverge at %d: %v vs %v", pass, i, j, got, cold[i])
				}
			}
		}
	}
	st := cc.Snapshot()
	if st.Hits == 0 {
		t.Fatalf("repeated probes should hit the cache: %+v", st)
	}
	if st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("cache never filled: %+v", st)
	}

	// Point lookups agree too, and chunk-level caching means a probe at an
	// adjacent tick of an already-decoded chunk is a hit.
	ids1, cell, ok := tpi.Lookup(pts[0], 24)
	if !ok {
		t.Fatal("point should be covered")
	}
	if !cell.Contains(pts[0]) {
		t.Fatal("cell does not contain the point")
	}
	tpi.SetCache(nil, 0)
	ids2, _, _ := tpi.Lookup(pts[0], 24)
	if len(ids1) != len(ids2) {
		t.Fatalf("cached point lookup %v vs cold %v", ids1, ids2)
	}
}
