package index

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// collectCursor drains a RangeCursor into the same shape collectScan
// produces, plus the per-cell batch count.
func collectCursor(tpi *TPI, area geo.Rect, from, to int, visit func(geo.Rect) bool) (map[int][]traj.ID, ScanStats, int) {
	var st ScanStats
	got := make(map[int][]traj.ID)
	cur := tpi.RangeCursor(area, from, to, &st, visit)
	cells := 0
	for {
		cs, ok := cur.Next()
		if !ok {
			break
		}
		cells++
		if len(cs.Ticks) != len(cs.IDs) {
			panic("cursor batch shape mismatch")
		}
		for i, tick := range cs.Ticks {
			got[tick] = append(got[tick], cs.IDs[i]...)
		}
	}
	for tick, ids := range got {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		got[tick] = traj.DedupSorted(ids)
	}
	return got, st, cells
}

// TestRangeCursorMatchesScanRange proves the pull cursor is
// emission-for-emission and stat-for-stat equivalent to the callback
// scan on raw, sealed, and cached indexes across random areas/spans.
func TestRangeCursorMatchesScanRange(t *testing.T) {
	for _, cfg := range []struct {
		name            string
		withCache, seal bool
	}{{"raw", false, false}, {"sealed", false, true}, {"sealed+cache", true, true}} {
		t.Run(cfg.name, func(t *testing.T) {
			tpi := scanTestTPI(t, cfg.withCache, cfg.seal)
			rng := rand.New(rand.NewSource(31))
			for trial := 0; trial < 30; trial++ {
				cx, cy := rng.Float64()*12-1, rng.Float64()*12-1
				w := 0.3 + rng.Float64()*3
				area := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + w, MaxY: cy + w}
				from := rng.Intn(45) - 2
				to := from + rng.Intn(45)
				want, wantSt := collectScan(tpi, area, from, to)
				got, gotSt, _ := collectCursor(tpi, area, from, to, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("area %v span %d..%d:\ncursor %v\nscan   %v", area, from, to, got, want)
				}
				// The cached decode stats depend on what earlier trials
				// populated, so compare the cache-independent counters and
				// the hit+miss total (both walks touch identical chunks).
				if got, want := gotSt.CellsScanned, wantSt.CellsScanned; got != want {
					t.Fatalf("CellsScanned %d vs %d", got, want)
				}
				if got, want := gotSt.CellsSkipped, wantSt.CellsSkipped; got != want {
					t.Fatalf("CellsSkipped %d vs %d", got, want)
				}
				if got, want := gotSt.CacheHits+gotSt.CacheMisses, wantSt.CacheHits+wantSt.CacheMisses; got != want {
					t.Fatalf("cache lookups %d vs %d", got, want)
				}
			}
		})
	}
}

// TestRangeCursorVisitVeto mirrors TestScanRangeVisitVeto: a vetoing
// visit callback skips every cell before any decode.
func TestRangeCursorVisitVeto(t *testing.T) {
	tpi := scanTestTPI(t, false, true)
	area := geo.Rect{MinX: -5, MinY: -5, MaxX: 15, MaxY: 15}
	got, st, cells := collectCursor(tpi, area, 0, 50, func(geo.Rect) bool { return false })
	if len(got) != 0 || cells != 0 || st.CellsScanned != 0 || st.CellsSkipped == 0 {
		t.Fatalf("vetoing visit still scanned: batches=%d stats=%+v", cells, st)
	}
}

// TestRangeCursorAbandon checks laziness: stopping after the first pull
// must leave the remaining cells undecoded (stats stop accumulating).
func TestRangeCursorAbandon(t *testing.T) {
	tpi := scanTestTPI(t, false, true)
	area := geo.Rect{MinX: -5, MinY: -5, MaxX: 15, MaxY: 15}
	_, full := collectScan(tpi, area, 0, 50)
	if full.CellsScanned < 2 {
		t.Skipf("need ≥2 scanned cells for the laziness check, got %+v", full)
	}
	var st ScanStats
	cur := tpi.RangeCursor(area, 0, 50, &st, nil)
	if _, ok := cur.Next(); !ok {
		t.Fatal("first pull returned nothing")
	}
	if st.CellsScanned >= full.CellsScanned {
		t.Fatalf("one pull scanned all %d cells — cursor is not lazy", st.CellsScanned)
	}
}

// TestRangeCursorTicksAscend checks the per-batch contract: ticks within
// one cell batch ascend and fall inside the requested span.
func TestRangeCursorTicksAscend(t *testing.T) {
	for _, withCache := range []bool{false, true} {
		tpi := scanTestTPI(t, withCache, true)
		var st ScanStats
		cur := tpi.RangeCursor(geo.Rect{MinX: -5, MinY: -5, MaxX: 15, MaxY: 15}, 5, 30, &st, nil)
		for {
			cs, ok := cur.Next()
			if !ok {
				break
			}
			if len(cs.Ticks) == 0 {
				t.Fatal("empty batch emitted")
			}
			for i, tick := range cs.Ticks {
				if tick < 5 || tick > 30 {
					t.Fatalf("tick %d outside span", tick)
				}
				if i > 0 && cs.Ticks[i-1] >= tick {
					t.Fatalf("ticks not ascending: %v", cs.Ticks)
				}
				if len(cs.IDs[i]) == 0 {
					t.Fatalf("empty posting emitted at tick %d", tick)
				}
			}
		}
	}
}
