package index

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ppqtraj/internal/cache"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// scanTestTPI builds a TPI over a few dozen ticks of drifting clusters —
// enough to span multiple periods, cache chunks, and sparse cells.
func scanTestTPI(t *testing.T, withCache bool, seal bool) *TPI {
	t.Helper()
	tpi := NewTPI(Options{EpsS: 2, GC: 0.25, EpsC: 0.5, EpsD: 0.5, Seed: 9})
	rng := rand.New(rand.NewSource(4))
	for tick := 3; tick < 40; tick++ {
		if tick%7 == 0 {
			continue // leave holes in the tick axis
		}
		drift := float64(tick) * 0.05
		pts := clusterPoints(rng, []geo.Point{geo.Pt(drift, 0), geo.Pt(10-drift, 10)}, 20, 0.4)
		tpi.Append(idsSeq(len(pts)), pts, tick)
	}
	if seal {
		if err := tpi.Seal(); err != nil {
			t.Fatal(err)
		}
		if withCache {
			tpi.SetCache(cache.New(4<<20), 1)
		}
	}
	return tpi
}

// collectScan runs ScanRange and folds the emitted postings into sorted,
// deduplicated per-tick ID sets.
func collectScan(tpi *TPI, area geo.Rect, from, to int) (map[int][]traj.ID, ScanStats) {
	var st ScanStats
	got := make(map[int][]traj.ID)
	tpi.ScanRange(area, from, to, &st, nil, func(tick int, ids []traj.ID) bool {
		got[tick] = append(got[tick], ids...)
		return true
	})
	for tick, ids := range got {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		got[tick] = traj.DedupSorted(ids)
	}
	return got, st
}

func TestScanRangeMatchesPerTickLookupArea(t *testing.T) {
	for _, cfg := range []struct {
		name            string
		withCache, seal bool
	}{{"raw", false, false}, {"sealed", false, true}, {"sealed+cache", true, true}} {
		t.Run(cfg.name, func(t *testing.T) {
			tpi := scanTestTPI(t, cfg.withCache, cfg.seal)
			rng := rand.New(rand.NewSource(12))
			for trial := 0; trial < 30; trial++ {
				cx, cy := rng.Float64()*12-1, rng.Float64()*12-1
				w := 0.3 + rng.Float64()*3
				area := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + w, MaxY: cy + w}
				from := rng.Intn(45) - 2
				to := from + rng.Intn(45)
				got, _ := collectScan(tpi, area, from, to)
				want := make(map[int][]traj.ID)
				for tick := from; tick <= to; tick++ {
					if ids := tpi.LookupArea(area, tick, nil); len(ids) > 0 {
						want[tick] = ids
					}
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("area %v span %d..%d:\nscan    %v\npertick %v", area, from, to, got, want)
				}
			}
		})
	}
}

func TestScanRangeTickRangePruning(t *testing.T) {
	tpi := scanTestTPI(t, false, true)
	// A span with no data at all: every populated cell is pruned by its
	// tick range, nothing is scanned.
	got, st := collectScan(tpi, geo.Rect{MinX: -5, MinY: -5, MaxX: 15, MaxY: 15}, 100, 140)
	if len(got) != 0 {
		t.Fatalf("scan past the data returned %v", got)
	}
	if st.CellsScanned != 0 {
		t.Fatalf("expected zero cells scanned, got %+v", st)
	}
	// The early ticks live in the early periods only; scanning them must
	// not walk cells populated exclusively later. (Cells are per period,
	// so the late periods' regions contribute skips or nothing.)
	_, st = collectScan(tpi, geo.Rect{MinX: -5, MinY: -5, MaxX: 15, MaxY: 15}, 3, 4)
	if st.CellsScanned == 0 {
		t.Fatalf("expected some cells scanned over populated ticks, got %+v", st)
	}
}

func TestScanRangeVisitVeto(t *testing.T) {
	tpi := scanTestTPI(t, false, true)
	area := geo.Rect{MinX: -5, MinY: -5, MaxX: 15, MaxY: 15}
	var st ScanStats
	emitted := 0
	tpi.ScanRange(area, 0, 50, &st, func(geo.Rect) bool { return false }, func(int, []traj.ID) bool {
		emitted++
		return true
	})
	if emitted != 0 || st.CellsScanned != 0 || st.CellsSkipped == 0 {
		t.Fatalf("vetoing visit still scanned: emitted=%d stats=%+v", emitted, st)
	}
}

func TestScanRangeAbort(t *testing.T) {
	tpi := scanTestTPI(t, false, true)
	area := geo.Rect{MinX: -5, MinY: -5, MaxX: 15, MaxY: 15}
	var st ScanStats
	emitted := 0
	completed := tpi.ScanRange(area, 0, 50, &st, nil, func(int, []traj.ID) bool {
		emitted++
		return emitted < 3
	})
	if completed || emitted != 3 {
		t.Fatalf("abort after 3 emits: completed=%v emitted=%d", completed, emitted)
	}
}

func TestAppendLookupAreaReusesBuffer(t *testing.T) {
	tpi := scanTestTPI(t, false, true)
	area := geo.Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}
	fresh := tpi.LookupArea(area, 3, nil)
	buf := make([]traj.ID, 0, 1024)
	buf = append(buf, 7777) // pre-existing content must survive
	out := tpi.AppendLookupArea(buf, area, 3, nil)
	if out[0] != 7777 {
		t.Fatalf("prefix clobbered: %v", out[:1])
	}
	if !reflect.DeepEqual(out[1:], fresh) {
		t.Fatalf("append form differs: %v vs %v", out[1:], fresh)
	}
	if &out[0] != &buf[0] {
		t.Fatal("append form reallocated despite sufficient capacity")
	}
}

func TestCoveredTicks(t *testing.T) {
	tpi := scanTestTPI(t, false, true)
	for _, sp := range [][2]int{{0, 50}, {3, 3}, {6, 8}, {41, 60}, {-5, 2}} {
		want := 0
		for tick := sp[0]; tick <= sp[1]; tick++ {
			if tpi.PeriodOf(tick) != nil {
				want++
			}
		}
		if got := tpi.CoveredTicks(sp[0], sp[1]); got != want {
			t.Fatalf("CoveredTicks(%d, %d) = %d, want %d", sp[0], sp[1], got, want)
		}
	}
}

func TestPopulatedCellsCoverData(t *testing.T) {
	tpi := scanTestTPI(t, false, true)
	var cells []geo.Rect
	lo, hi := 1<<30, -(1 << 30)
	tpi.PopulatedCells(func(cell geo.Rect, tickLo, tickHi int) {
		cells = append(cells, cell)
		if tickLo < lo {
			lo = tickLo
		}
		if tickHi > hi {
			hi = tickHi
		}
	})
	if len(cells) == 0 {
		t.Fatal("no populated cells emitted")
	}
	if lo != 3 || hi != 39 {
		t.Fatalf("tick range %d..%d, want 3..39", lo, hi)
	}
	// Every indexed position must fall inside some emitted cell: probe a
	// few lookups and check their cell rect appears.
	ids, cellRect, ok := tpi.Lookup(geo.Pt(0.15+0.05*3, 0), 3)
	_ = ids
	if ok {
		found := false
		for _, c := range cells {
			if c == cellRect || c.Intersects(cellRect) {
				found = true
				break
			}
		}
		if !found && !cellRect.Empty() {
			t.Fatalf("lookup cell %v not among populated cells", cellRect)
		}
	}
}
