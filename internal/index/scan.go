package index

import (
	"sort"
	"time"

	"ppqtraj/internal/cache"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// This file implements the segment-native range scan: the multi-tick
// counterpart of LookupArea. A T-tick window answered by per-tick probes
// re-resolves the candidate cells, re-walks each cell's posting list, and
// re-decodes (or re-fetches from the cache) T times; ScanRange resolves
// the cells once, walks each cell's tick-sorted postings once across the
// whole span, and decodes each tick chunk at most once — so the per-tick
// cost collapses to the emit itself.

// ScanStats counts the range-scan planner's per-cell work; callers
// accumulate it into their own zone-map skip telemetry.
type ScanStats struct {
	// CellsScanned is how many populated cells had postings walked.
	CellsScanned int
	// CellsSkipped is how many populated cells were pruned before any
	// decode: either their per-cell tick range (the cell-level zone map)
	// missed the span, or the caller's visit callback declined the cell.
	CellsSkipped int
	// CacheHits / CacheMisses count decoded-chunk cache lookups on the
	// sealed cached path (both zero on raw or uncached scans).
	CacheHits   int
	CacheMisses int
	// DecodedBytes is the cached cost of chunks decoded on misses;
	// DecodeNanos is the time spent in those decodes.
	DecodedBytes int64
	DecodeNanos  int64
}

// Add accumulates o into s.
func (s *ScanStats) Add(o ScanStats) {
	s.CellsScanned += o.CellsScanned
	s.CellsSkipped += o.CellsSkipped
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.DecodedBytes += o.DecodedBytes
	s.DecodeNanos += o.DecodeNanos
}

// ScanRange walks every populated cell intersecting area exactly once,
// emitting the decoded posting list of each (cell, tick) with
// from ≤ tick ≤ to. For each candidate cell, visit is called with the
// cell's rectangle before any decode; returning false skips the cell
// (the caller's margin/zone pruning hook). emit receives the ticks of one
// cell in ascending order (ticks restart for the next cell) and returns
// false to abort the scan; ScanRange reports whether it ran to
// completion. Emitted slices may be shared with the decoded-cell cache
// and must not be modified.
//
// Cells whose per-cell tick range (first/last posting tick — the
// cell-level zone map) cannot intersect [from, to] are skipped before
// visit and counted in st.CellsSkipped.
func (pi *PI) ScanRange(area geo.Rect, from, to int, st *ScanStats, visit func(cell geo.Rect) bool, emit func(tick int, ids []traj.ID) bool) bool {
	if to < from {
		return true
	}
	for ri, r := range pi.Regions {
		if !r.Rect.Intersects(area) {
			continue
		}
		// A sealed region carries an (X, Y)-sorted cell directory: the
		// walk (forEachCellIn, shared with RangeCursor) binary-searches
		// each X column's band instead of hashing every candidate
		// coordinate of the scan rectangle. Emission order across cells
		// is unspecified either way — callers bucket per tick and sort.
		ok := r.forEachCellIn(area, func(k cellKey, ci int32) bool {
			c := r.cellPtr(ci)
			if !pi.cellMayOverlap(c, from, to) {
				st.CellsSkipped++
				return true
			}
			if visit != nil && !visit(r.cellRectOf(k)) {
				st.CellsSkipped++
				return true
			}
			st.CellsScanned++
			return pi.scanCell(int32(ri), ci, c, from, to, st, emit)
		})
		if !ok {
			return false
		}
	}
	return true
}

// cellMayOverlap is the per-cell tick-range zone check: postings are
// tick-sorted, so the first and last entries bound the cell's populated
// span.
func (pi *PI) cellMayOverlap(c *cellData, from, to int) bool {
	if pi.sealed {
		if n := len(c.sealed); n > 0 {
			return int(c.sealed[0].tick) <= to && int(c.sealed[n-1].tick) >= from
		}
		return false
	}
	if n := len(c.raw); n > 0 {
		return c.raw[0].tick <= to && c.raw[n-1].tick >= from
	}
	return false
}

// scanCell emits one cell's postings over [from, to], decoding each tick
// chunk at most once. With a cache attached the chunk entries are shared
// with (and populate) the decoded-cell cache, so a later per-tick probe
// of the same cell hits.
func (pi *PI) scanCell(ri, ci int32, c *cellData, from, to int, st *ScanStats, emit func(tick int, ids []traj.ID) bool) bool {
	if !pi.sealed {
		i := sort.Search(len(c.raw), func(i int) bool { return c.raw[i].tick >= from })
		for ; i < len(c.raw) && c.raw[i].tick <= to; i++ {
			if len(c.raw[i].ids) > 0 && !emit(c.raw[i].tick, c.raw[i].ids) {
				return false
			}
		}
		return true
	}
	i := sort.Search(len(c.sealed), func(i int) bool { return int(c.sealed[i].tick) >= from })
	if pi.cellCache == nil {
		for ; i < len(c.sealed) && int(c.sealed[i].tick) <= to; i++ {
			ids := pi.decodePosting(c.sealed[i])
			if len(ids) > 0 && !emit(int(c.sealed[i].tick), ids) {
				return false
			}
		}
		return true
	}
	for i < len(c.sealed) && int(c.sealed[i].tick) <= to {
		ch := cache.Chunk(int(c.sealed[i].tick))
		key := cache.Key{Owner: pi.cacheOwner, PI: pi.cacheID, Reg: uint32(ri), Cell: ci, Chunk: ch}
		var d *decodedChunk
		if v, ok := pi.cellCache.Get(key); ok {
			d = v.(*decodedChunk)
			st.CacheHits++
		} else {
			t0 := time.Now()
			d = pi.decodeChunk(c, ch)
			st.DecodeNanos += time.Since(t0).Nanoseconds()
			st.DecodedBytes += d.cost
			st.CacheMisses++
			pi.cellCache.Put(key, d, d.cost)
		}
		for j := range d.ticks {
			t := int(d.ticks[j])
			if t < from || t > to {
				continue
			}
			if len(d.ids[j]) > 0 && !emit(t, d.ids[j]) {
				return false
			}
		}
		for i < len(c.sealed) && cache.Chunk(int(c.sealed[i].tick)) == ch {
			i++
		}
	}
	return true
}

// ScanRange runs the range scan over every period overlapping [from, to];
// per-period spans are clipped, so each posting is visited at most once.
// See PI.ScanRange for the callback contract.
func (t *TPI) ScanRange(area geo.Rect, from, to int, st *ScanStats, visit func(cell geo.Rect) bool, emit func(tick int, ids []traj.ID) bool) bool {
	for i := range t.Periods {
		p := &t.Periods[i]
		lo, hi := max(from, p.Start), min(to, p.End)
		if lo > hi {
			continue
		}
		if !p.PI.ScanRange(area, lo, hi, st, visit, emit) {
			return false
		}
	}
	return true
}

// CoveredTicks counts the ticks of [from, to] that fall inside some
// period — the ticks a per-tick probe loop would have reported Covered
// for, without running any probe.
func (t *TPI) CoveredTicks(from, to int) int {
	n := 0
	for i := range t.Periods {
		p := &t.Periods[i]
		if lo, hi := max(from, p.Start), min(to, p.End); lo <= hi {
			n += hi - lo + 1
		}
	}
	return n
}

// PopulatedCells calls emit with the clipped rectangle and populated tick
// range of every non-empty cell across all periods — the raw material of
// a segment-level zone map. Iteration order is unspecified.
func (t *TPI) PopulatedCells(emit func(cell geo.Rect, tickLo, tickHi int)) {
	for i := range t.Periods {
		t.Periods[i].PI.PopulatedCells(emit)
	}
}

// PopulatedCells is the per-PI form of TPI.PopulatedCells.
func (pi *PI) PopulatedCells(emit func(cell geo.Rect, tickLo, tickHi int)) {
	for _, r := range pi.Regions {
		for k, ci := range r.cells {
			c := r.cellPtr(ci)
			var lo, hi int
			switch {
			case pi.sealed && len(c.sealed) > 0:
				lo, hi = int(c.sealed[0].tick), int(c.sealed[len(c.sealed)-1].tick)
			case !pi.sealed && len(c.raw) > 0:
				lo, hi = c.raw[0].tick, c.raw[len(c.raw)-1].tick
			default:
				continue
			}
			emit(r.cellRectOf(k), lo, hi)
		}
	}
}
