// Package index implements the paper's data organization for online
// querying (§5.1): the partition-based index PI (Algorithm 3) — bounded
// spatial partitions covered by minimum rectangles, made disjoint with
// rectangle decomposition, each gridded at cell size g_c with delta+Huffman
// compressed trajectory-ID posting lists per (cell, tick) — and the
// temporal partition-based index TPI (Algorithm 4), which reuses a PI
// across a period of timestamps, monitoring Trajectory Region Density
// (Definition 5.1) to decide between cheap Insertions and full Re-builds.
package index

import (
	"math"
	"sort"

	"ppqtraj/internal/cluster"
	"ppqtraj/internal/codec"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/store"
	"ppqtraj/internal/traj"
)

// cellKey addresses a grid cell within a region.
type cellKey struct{ X, Y int32 }

// cellData is one cell's contents: per-tick trajectory IDs. IDs accumulate
// uncompressed during the build and are sealed into compressed posting
// lists by Seal.
type cellData struct {
	raw    map[int][]traj.ID          // tick → IDs (building)
	sealed map[int]*codec.PostingList // tick → compressed postings
	pages  store.PageRange            // disk placement (after AssignPages)
	placed bool
}

// Region is one indexed subregion R_{i,gc}: a rectangle gridded at g_c.
type Region struct {
	Rect      geo.Rect
	gc        float64
	cells     map[cellKey]*cellData
	baseTick  int         // tick the region was created at
	baseCount int         // N_{R,ts}: points indexed at creation (TRD baseline)
	perTick   map[int]int // N_{R,t} for every tick
}

func newRegion(r geo.Rect, gc float64, tick int) *Region {
	return &Region{
		Rect:     r,
		gc:       gc,
		cells:    make(map[cellKey]*cellData),
		baseTick: tick,
		perTick:  make(map[int]int),
	}
}

// cellOf maps a point inside the region to its cell key (cells are
// anchored at the region's min corner).
func (r *Region) cellOf(p geo.Point) cellKey {
	return cellKey{
		X: int32(math.Floor((p.X - r.Rect.MinX) / r.gc)),
		Y: int32(math.Floor((p.Y - r.Rect.MinY) / r.gc)),
	}
}

// CellRect returns the rectangle of the cell containing p, clipped to the
// region (regions partition space, so a cell never owns points beyond its
// region's boundary).
func (r *Region) CellRect(p geo.Point) geo.Rect {
	k := r.cellOf(p)
	cell := geo.Rect{
		MinX: r.Rect.MinX + float64(k.X)*r.gc,
		MinY: r.Rect.MinY + float64(k.Y)*r.gc,
		MaxX: r.Rect.MinX + float64(k.X+1)*r.gc,
		MaxY: r.Rect.MinY + float64(k.Y+1)*r.gc,
	}
	return cell.Intersect(r.Rect)
}

func (r *Region) insert(id traj.ID, p geo.Point, tick int) {
	k := r.cellOf(p)
	c := r.cells[k]
	if c == nil {
		c = &cellData{raw: make(map[int][]traj.ID)}
		r.cells[k] = c
	}
	c.raw[tick] = append(c.raw[tick], id)
	r.perTick[tick]++
	if tick == r.baseTick {
		r.baseCount++
	}
}

// count returns N_{R,t}.
func (r *Region) count(tick int) int { return r.perTick[tick] }

// PI is the partition-based index of Algorithm 3 for one time period.
type PI struct {
	Regions []*Region
	gc      float64
	epsS    float64
	seed    int64
	coder   *codec.PostingCoder // shared posting coder (built by Seal)
	sealed  bool
}

// BuildPI runs Algorithm 3 on one timestamp's points: bounded partitioning
// with ε_s, minimum covering rectangles, overlap removal, grid indexing.
func BuildPI(ids []traj.ID, points []geo.Point, tick int, epsS, gc float64, seed int64) *PI {
	pi := &PI{gc: gc, epsS: epsS, seed: seed}
	pi.extend(ids, points, tick)
	return pi
}

// extend adds new regions covering the given points (used both by the
// initial build and by TPI "Insertion"). Region rectangles are made
// disjoint from all existing ones via rectangle subtraction
// (remove_overlap, [Gourley & Green]).
func (pi *PI) extend(ids []traj.ID, points []geo.Point, tick int) {
	if len(points) == 0 {
		return
	}
	// Line 1: q_s partitions under ε_s (Equation 7 with ε_s).
	res, _ := cluster.BoundedPartition(partitionFeatures(points), cluster.BoundedOptions{
		Epsilon: pi.epsS,
		Seed:    pi.seed,
		MaxIter: 15,
	})
	groups := make([][]int, res.K())
	for i, c := range res.Assign {
		groups[c] = append(groups[c], i)
	}
	// A tiny inflation keeps max-edge points inside under the half-open
	// convention.
	const inflate = 1e-9
	existing := make([]geo.Rect, 0, len(pi.Regions))
	for _, r := range pi.Regions {
		existing = append(existing, r.Rect)
	}
	firstNew := len(pi.Regions)
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		pts := make([]geo.Point, len(g))
		for i, idx := range g {
			pts[i] = points[idx]
		}
		// Line 5: minimum covering rectangle.
		mbr := geo.BoundingRect(pts, inflate)
		// Lines 6–8: remove overlap with already-indexed rectangles and
		// decompose the remainder into rectangles.
		pieces := mbr.SubtractAll(existing)
		for _, piece := range pieces {
			pi.Regions = append(pi.Regions, newRegion(piece, pi.gc, tick))
			existing = append(existing, piece)
		}
	}
	// Insert the points into whichever region now covers them. Points
	// whose location falls in a pre-existing region (their group's MBR
	// overlapped it) are inserted there — the space is already indexed.
	for i, p := range points {
		if r := pi.regionOf(p); r != nil {
			r.insert(ids[i], p, tick)
		}
	}
	// Prune freshly-created regions that received no points: rectangle
	// subtraction produces slivers on the far side of existing regions,
	// and keeping empty ones would dilute the ADR denominator
	// (Equation 12) and bloat the directory.
	kept := pi.Regions[:firstNew]
	for _, r := range pi.Regions[firstNew:] {
		if r.baseCount > 0 {
			kept = append(kept, r)
		}
	}
	pi.Regions = kept
	pi.sealed = false
}

func partitionFeatures(points []geo.Point) [][]float64 {
	out := make([][]float64, len(points))
	for i, p := range points {
		out[i] = []float64{p.X, p.Y}
	}
	return out
}

// regionOf returns the region covering p (regions are disjoint).
func (pi *PI) regionOf(p geo.Point) *Region {
	for _, r := range pi.Regions {
		if r.Rect.Contains(p) {
			return r
		}
	}
	return nil
}

// Covers reports whether p lies in some region.
func (pi *PI) Covers(p geo.Point) bool { return pi.regionOf(p) != nil }

// Insert adds covered points at the given tick into existing regions.
// It returns the indices of the points that were NOT covered (the T_uc
// of Algorithm 4).
func (pi *PI) Insert(ids []traj.ID, points []geo.Point, tick int) (uncovered []int) {
	for i, p := range points {
		if r := pi.regionOf(p); r != nil {
			r.insert(ids[i], p, tick)
		} else {
			uncovered = append(uncovered, i)
		}
	}
	if len(points) > 0 {
		pi.sealed = false
	}
	return uncovered
}

// Extend builds new regions for uncovered points ("Insertion" in
// Algorithm 4) and inserts them.
func (pi *PI) Extend(ids []traj.ID, points []geo.Point, tick int) {
	pi.extend(ids, points, tick)
}

// Seal compresses every cell's per-tick ID lists with the shared
// delta+Huffman coder. Sealing is idempotent and re-runs after new
// insertions.
func (pi *PI) Seal() error {
	if pi.sealed {
		return nil
	}
	var lists [][]uint32
	for _, r := range pi.Regions {
		for _, c := range r.cells {
			for _, ids := range c.raw {
				lists = append(lists, idsToU32(ids))
			}
		}
	}
	coder, err := codec.NewPostingCoder(lists)
	if err != nil {
		return err
	}
	pi.coder = coder
	for _, r := range pi.Regions {
		for _, c := range r.cells {
			c.sealed = make(map[int]*codec.PostingList, len(c.raw))
			for tick, ids := range c.raw {
				p, err := coder.Encode(idsToU32(ids))
				if err != nil {
					return err
				}
				c.sealed[tick] = p
			}
		}
	}
	pi.sealed = true
	return nil
}

func idsToU32(ids []traj.ID) []uint32 {
	out := make([]uint32, len(ids))
	for i, id := range ids {
		out[i] = uint32(id)
	}
	return out
}

// Lookup returns the trajectory IDs indexed in the cell containing p at
// the given tick, plus the cell rectangle. ok is false when p is not
// covered by any region.
func (pi *PI) Lookup(p geo.Point, tick int) (ids []traj.ID, cell geo.Rect, ok bool) {
	r := pi.regionOf(p)
	if r == nil {
		return nil, geo.Rect{}, false
	}
	cell = r.CellRect(p)
	c := r.cells[r.cellOf(p)]
	if c == nil {
		return nil, cell, true
	}
	return pi.decodeCell(c, tick), cell, true
}

func (pi *PI) decodeCell(c *cellData, tick int) []traj.ID {
	if pi.sealed {
		pl := c.sealed[tick]
		if pl == nil {
			return nil
		}
		u32, err := pi.coder.Decode(pl)
		if err != nil {
			return nil
		}
		out := make([]traj.ID, len(u32))
		for i, v := range u32 {
			out[i] = traj.ID(v)
		}
		return out
	}
	return append([]traj.ID(nil), c.raw[tick]...)
}

// LookupArea returns all IDs at the given tick whose indexed position
// falls in a cell intersecting the query rectangle — the local-search
// probe of §5.2. The returned cells slice lists the page ranges touched
// when a ReadTracker is supplied (disk mode).
func (pi *PI) LookupArea(area geo.Rect, tick int, rt *store.ReadTracker) []traj.ID {
	var out []traj.ID
	for _, r := range pi.Regions {
		if !r.Rect.Intersects(area) {
			continue
		}
		// Cell range intersecting the area within this region.
		x0 := int32(math.Floor((math.Max(area.MinX, r.Rect.MinX) - r.Rect.MinX) / r.gc))
		y0 := int32(math.Floor((math.Max(area.MinY, r.Rect.MinY) - r.Rect.MinY) / r.gc))
		x1 := int32(math.Floor((math.Min(area.MaxX, r.Rect.MaxX) - r.Rect.MinX) / r.gc))
		y1 := int32(math.Floor((math.Min(area.MaxY, r.Rect.MaxY) - r.Rect.MinY) / r.gc))
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				c := r.cells[cellKey{x, y}]
				if c == nil {
					continue
				}
				if rt != nil && c.placed {
					rt.Read(c.pages)
				}
				out = append(out, pi.decodeCell(c, tick)...)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupIDs(out)
}

func dedupIDs(ids []traj.ID) []traj.ID {
	if len(ids) < 2 {
		return ids
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// SizeBytes estimates the serialized index size: region rectangles, cell
// directory entries, compressed postings, and the shared Huffman table.
// The PI must be sealed first for the compressed sizes to be exact.
func (pi *PI) SizeBytes() int {
	bits := 0
	if pi.coder != nil {
		bits += pi.coder.TableBits()
	}
	for _, r := range pi.Regions {
		bits += 4 * 64 // rectangle
		for _, c := range r.cells {
			bits += 64 // cell key + directory entry
			if pi.sealed {
				for _, pl := range c.sealed {
					bits += 32 + pl.Bits // tick tag + postings
				}
			} else {
				for _, ids := range c.raw {
					bits += 32 + 32*len(ids)
				}
			}
		}
	}
	return (bits + 7) / 8
}

// NumCells returns the number of non-empty cells.
func (pi *PI) NumCells() int {
	n := 0
	for _, r := range pi.Regions {
		n += len(r.cells)
	}
	return n
}

// AssignPages lays the sealed index out on the page store: the region
// directory first, then every cell's postings in deterministic order.
// Queries afterwards charge I/Os through LookupArea's ReadTracker.
func (pi *PI) AssignPages(ps *store.PageStore) {
	ps.AlignToPage()
	// Directory blob: rectangles + cell keys.
	dir := 0
	for _, r := range pi.Regions {
		dir += 32 + len(r.cells)*16
	}
	dirRange := ps.Alloc(dir)
	for _, r := range pi.Regions {
		keys := make([]cellKey, 0, len(r.cells))
		for k := range r.cells {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].X != keys[j].X {
				return keys[i].X < keys[j].X
			}
			return keys[i].Y < keys[j].Y
		})
		for _, k := range keys {
			c := r.cells[k]
			sz := 0
			if pi.sealed {
				for _, pl := range c.sealed {
					sz += 8 + (pl.Bits+7)/8
				}
			} else {
				for _, ids := range c.raw {
					sz += 8 + 4*len(ids)
				}
			}
			c.pages = ps.Alloc(sz)
			c.placed = true
		}
	}
	_ = dirRange
}
