// Package index implements the paper's data organization for online
// querying (§5.1): the partition-based index PI (Algorithm 3) — bounded
// spatial partitions covered by minimum rectangles, made disjoint with
// rectangle decomposition, each gridded at cell size g_c with delta+Huffman
// compressed trajectory-ID posting lists per (cell, tick) — and the
// temporal partition-based index TPI (Algorithm 4), which reuses a PI
// across a period of timestamps, monitoring Trajectory Region Density
// (Definition 5.1) to decide between cheap Insertions and full Re-builds.
package index

import (
	"cmp"
	"math"
	"slices"
	"sort"

	"ppqtraj/internal/cache"
	"ppqtraj/internal/cluster"
	"ppqtraj/internal/codec"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/store"
	"ppqtraj/internal/traj"
)

// cellKey addresses a grid cell within a region.
type cellKey struct{ X, Y int32 }

// tickIDs is one tick's raw ID list within a cell. Ticks arrive in
// ascending order (the TPI contract), so per-cell lists are kept as
// tick-sorted slices: appending is a last-element check instead of a map
// hash per point, lookups binary-search, and Seal iterates contiguously.
type tickIDs struct {
	tick int
	ids  []traj.ID
}

// tickPosting is one tick's sealed posting list, stored pointer-free:
// (N, Bits) plus a byte offset into the PI's shared posting arena. With
// cell×tick entries in the hundreds of thousands, keeping slice headers
// out of the entries removes a GC scan burden and a third of the bytes.
type tickPosting struct {
	tick int32
	n    int32  // posting list length (IDs)
	bits int32  // exact encoded bit length
	off  uint32 // byte offset into PI.postArena
}

// cellData is one cell's contents: per-tick trajectory IDs. IDs accumulate
// uncompressed during the build and are sealed into compressed posting
// lists by Seal.
type cellData struct {
	raw    []tickIDs     // building; ascending tick
	sealed []tickPosting // compressed postings; ascending tick
}

// appendID records id at the given tick. The last-slot fast path covers
// the in-order stream; out-of-order ticks (standalone PI use) fall back
// to a sorted insert.
func (c *cellData) appendID(id traj.ID, tick int) {
	if n := len(c.raw); n == 0 || c.raw[n-1].tick < tick {
		c.raw = append(c.raw, tickIDs{tick: tick, ids: []traj.ID{id}})
		return
	} else if c.raw[n-1].tick == tick {
		c.raw[n-1].ids = append(c.raw[n-1].ids, id)
		return
	}
	i := sort.Search(len(c.raw), func(i int) bool { return c.raw[i].tick >= tick })
	if i < len(c.raw) && c.raw[i].tick == tick {
		c.raw[i].ids = append(c.raw[i].ids, id)
		return
	}
	c.raw = append(c.raw, tickIDs{})
	copy(c.raw[i+1:], c.raw[i:])
	c.raw[i] = tickIDs{tick: tick, ids: []traj.ID{id}}
}

// rawAt returns the raw ID list for tick (nil when absent).
func (c *cellData) rawAt(tick int) []traj.ID {
	i := sort.Search(len(c.raw), func(i int) bool { return c.raw[i].tick >= tick })
	if i < len(c.raw) && c.raw[i].tick == tick {
		return c.raw[i].ids
	}
	return nil
}

// sealedAt returns the sealed posting entry for tick; ok is false when
// absent.
func (c *cellData) sealedAt(tick int) (tickPosting, bool) {
	i := sort.Search(len(c.sealed), func(i int) bool { return int(c.sealed[i].tick) >= tick })
	if i < len(c.sealed) && int(c.sealed[i].tick) == tick {
		return c.sealed[i], true
	}
	return tickPosting{}, false
}

// tickCount is one tick's point count within a region (N_{R,t}).
type tickCount struct {
	tick int
	n    int
}

// cellEntry is one (key, dense index) pair of a region's sorted cell
// directory (built by Seal, consumed by range scans).
type cellEntry struct {
	key cellKey
	ci  int32
}

// Region is one indexed subregion R_{i,gc}: a rectangle gridded at g_c.
// Cell payloads live in the dense cd slice; the map holds indices into
// it, so creating a cell costs amortized slice growth instead of one
// heap object per cell (indexes run to hundreds of thousands of cells).
type Region struct {
	Rect      geo.Rect
	gc        float64
	cells     map[cellKey]int32
	dir       []cellEntry       // (X, Y)-sorted directory; rebuilt by Seal
	cd        [][]cellData      // fixed-size chunks; index ci>>chunkShift
	nCells    int32             // total cells across chunks
	pages     []store.PageRange // per-cell disk placement (nil until AssignPages)
	baseTick  int               // tick the region was created at
	baseCount int               // N_{R,ts}: points indexed at creation (TRD baseline)
	perTick   []tickCount       // N_{R,t}; ascending tick
}

// Cells live in fixed-size chunks: growing a region never copies cell
// payloads (a flat slice re-copied hundreds of thousands of 48-byte
// structs per index build) and cell pointers stay stable.
const (
	cellChunkShift = 6
	cellChunkSize  = 1 << cellChunkShift
)

// cellPtr returns the cell at dense index ci.
func (r *Region) cellPtr(ci int32) *cellData {
	return &r.cd[ci>>cellChunkShift][ci&(cellChunkSize-1)]
}

func newRegion(r geo.Rect, gc float64, tick int) *Region {
	return &Region{
		Rect:     r,
		gc:       gc,
		cells:    make(map[cellKey]int32, 16),
		baseTick: tick,
	}
}

// cell returns a pointer to the cell for key, creating it if needed.
// Chunked storage keeps the pointer stable across later creations.
func (r *Region) cell(k cellKey) *cellData {
	ci, ok := r.cells[k]
	if !ok {
		ci = r.nCells
		r.nCells++
		if int(ci>>cellChunkShift) == len(r.cd) {
			r.cd = append(r.cd, make([]cellData, 0, cellChunkSize))
		}
		last := len(r.cd) - 1
		r.cd[last] = r.cd[last][:len(r.cd[last])+1]
		r.cells[k] = ci
	}
	return r.cellPtr(ci)
}

// cellAt returns the cell for key, or nil when absent.
func (r *Region) cellAt(k cellKey) *cellData {
	ci, ok := r.cells[k]
	if !ok {
		return nil
	}
	return r.cellPtr(ci)
}

// bump adds n points at tick to the region's TRD accounting.
func (r *Region) bump(tick, n int) {
	if m := len(r.perTick); m > 0 && r.perTick[m-1].tick == tick {
		r.perTick[m-1].n += n
	} else if m == 0 || r.perTick[m-1].tick < tick {
		r.perTick = append(r.perTick, tickCount{tick: tick, n: n})
	} else {
		i := sort.Search(m, func(i int) bool { return r.perTick[i].tick >= tick })
		if i < m && r.perTick[i].tick == tick {
			r.perTick[i].n += n
		} else {
			r.perTick = append(r.perTick, tickCount{})
			copy(r.perTick[i+1:], r.perTick[i:])
			r.perTick[i] = tickCount{tick: tick, n: n}
		}
	}
	if tick == r.baseTick {
		r.baseCount += n
	}
}

// cellOf maps a point inside the region to its cell key (cells are
// anchored at the region's min corner).
func (r *Region) cellOf(p geo.Point) cellKey {
	return cellKey{
		X: int32(math.Floor((p.X - r.Rect.MinX) / r.gc)),
		Y: int32(math.Floor((p.Y - r.Rect.MinY) / r.gc)),
	}
}

// CellRect returns the rectangle of the cell containing p, clipped to the
// region (regions partition space, so a cell never owns points beyond its
// region's boundary).
func (r *Region) CellRect(p geo.Point) geo.Rect {
	return r.cellRectOf(r.cellOf(p))
}

func (r *Region) insert(id traj.ID, p geo.Point, tick int) {
	r.cell(r.cellOf(p)).appendID(id, tick)
	r.bump(tick, 1)
}

// count returns N_{R,t}.
func (r *Region) count(tick int) int {
	i := sort.Search(len(r.perTick), func(i int) bool { return r.perTick[i].tick >= tick })
	if i < len(r.perTick) && r.perTick[i].tick == tick {
		return r.perTick[i].n
	}
	return 0
}

// kiPair is one (cell, id) insert within a region during a batch insert.
type kiPair struct {
	key cellKey
	id  traj.ID
}

// PI is the partition-based index of Algorithm 3 for one time period.
type PI struct {
	Regions []*Region
	gc      float64
	epsS    float64
	seed    int64
	coder   *codec.PostingCoder // shared posting coder (built by Seal)
	sealed  bool

	// Decoded-cell cache (optional, set via SetCache on an immutable
	// sealed index): decoded posting lists are looked up / stored per
	// (owner, cacheID, region, cell, tick-chunk).
	cellCache  *cache.Cache
	cacheOwner uint64
	cacheID    uint32

	idArena    []traj.ID // shared backing of all raw posting lists
	postArena  []byte    // shared backing of all sealed postings
	pairs      []kiPair  // batch-insert scratch
	regCnt     []int32   // batch-insert scratch: per-region point counts
	regOff     []int32   // batch-insert scratch: per-region segment offsets
	regScratch []int     // extend scratch: per-point region indices
}

// BuildPI runs Algorithm 3 on one timestamp's points: bounded partitioning
// with ε_s, minimum covering rectangles, overlap removal, grid indexing.
func BuildPI(ids []traj.ID, points []geo.Point, tick int, epsS, gc float64, seed int64) *PI {
	pi := &PI{gc: gc, epsS: epsS, seed: seed}
	// A PI typically indexes several ticks of this column size; presizing
	// the shared list arena skips most of its early growth copies.
	pi.idArena = make([]traj.ID, 0, 4*len(ids))
	pi.extend(ids, points, tick)
	return pi
}

// extend adds new regions covering the given points (used both by the
// initial build and by TPI "Insertion"). Region rectangles are made
// disjoint from all existing ones via rectangle subtraction
// (remove_overlap, [Gourley & Green]).
func (pi *PI) extend(ids []traj.ID, points []geo.Point, tick int) {
	if len(points) == 0 {
		return
	}
	// Line 1: q_s partitions under ε_s (Equation 7 with ε_s).
	res, _ := cluster.BoundedPartition(partitionFeatures(points), cluster.BoundedOptions{
		Epsilon: pi.epsS,
		Seed:    pi.seed,
		// Gonzalez-seeded rounds start with a center in every isolated
		// cluster; a few Lloyd polish iterations suffice (region MBRs
		// only need the ε_s radius bound, not converged SSE).
		MaxIter: 6,
	})
	groups := make([][]int, res.K())
	for i, c := range res.Assign {
		groups[c] = append(groups[c], i)
	}
	// A tiny inflation keeps max-edge points inside under the half-open
	// convention.
	const inflate = 1e-9
	existing := make([]geo.Rect, 0, len(pi.Regions))
	for _, r := range pi.Regions {
		existing = append(existing, r.Rect)
	}
	firstNew := len(pi.Regions)
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		pts := make([]geo.Point, len(g))
		for i, idx := range g {
			pts[i] = points[idx]
		}
		// Line 5: minimum covering rectangle.
		mbr := geo.BoundingRect(pts, inflate)
		// Lines 6–8: remove overlap with already-indexed rectangles and
		// decompose the remainder into rectangles.
		pieces := mbr.SubtractAll(existing)
		for _, piece := range pieces {
			pi.Regions = append(pi.Regions, newRegion(piece, pi.gc, tick))
			existing = append(existing, piece)
		}
	}
	// Insert the points into whichever region now covers them. Points
	// whose location falls in a pre-existing region (their group's MBR
	// overlapped it) are inserted there — the space is already indexed.
	if cap(pi.regScratch) < len(points) {
		pi.regScratch = make([]int, len(points))
	}
	regIdx := pi.regScratch[:len(points)]
	for i, p := range points {
		regIdx[i] = pi.regionIndexOf(p)
	}
	pi.insertByRegion(ids, points, tick, regIdx, nil)
	// Prune freshly-created regions that received no points: rectangle
	// subtraction produces slivers on the far side of existing regions,
	// and keeping empty ones would dilute the ADR denominator
	// (Equation 12) and bloat the directory.
	kept := pi.Regions[:firstNew]
	for _, r := range pi.Regions[firstNew:] {
		if r.baseCount > 0 {
			kept = append(kept, r)
		}
	}
	pi.Regions = kept
	pi.sealed = false
}

func partitionFeatures(points []geo.Point) [][]float64 {
	flat := make([]float64, 2*len(points))
	out := make([][]float64, len(points))
	for i, p := range points {
		f := flat[2*i : 2*i+2 : 2*i+2]
		f[0], f[1] = p.X, p.Y
		out[i] = f
	}
	return out
}

// regionOf returns the region covering p (regions are disjoint).
func (pi *PI) regionOf(p geo.Point) *Region {
	if i := pi.regionIndexOf(p); i >= 0 {
		return pi.Regions[i]
	}
	return nil
}

// regionIndexOf returns the index of the region covering p, or -1.
func (pi *PI) regionIndexOf(p geo.Point) int {
	for i, r := range pi.Regions {
		if r.Rect.Contains(p) {
			return i
		}
	}
	return -1
}

// Covers reports whether p lies in some region.
func (pi *PI) Covers(p geo.Point) bool { return pi.regionOf(p) != nil }

// Insert adds covered points at the given tick into existing regions.
// It returns the indices of the points that were NOT covered (the T_uc
// of Algorithm 4).
func (pi *PI) Insert(ids []traj.ID, points []geo.Point, tick int) (uncovered []int) {
	for i, p := range points {
		if r := pi.regionOf(p); r != nil {
			r.insert(ids[i], p, tick)
		} else {
			uncovered = append(uncovered, i)
		}
	}
	if len(points) > 0 {
		pi.sealed = false
	}
	return uncovered
}

// insertColumn bulk-inserts one region's points of a single tick. The
// pairs are sorted by cell (stably, preserving the caller's ascending-ID
// order within a cell) and each cell's run lands in the PI's shared ID
// arena as one contiguous list — no per-(cell, tick) allocation.
func (pi *PI) insertColumn(r *Region, pairs []kiPair, tick int) {
	if len(pairs) == 0 {
		return
	}
	// Non-stable sort with the ID as tiebreak: IDs are unique, so the
	// order is total and equals what a stable by-cell sort of the
	// (ascending-ID) input would produce — at pdqsort speed.
	slices.SortFunc(pairs, func(a, b kiPair) int {
		if a.key.X != b.key.X {
			return cmp.Compare(a.key.X, b.key.X)
		}
		if a.key.Y != b.key.Y {
			return cmp.Compare(a.key.Y, b.key.Y)
		}
		return cmp.Compare(a.id, b.id)
	})
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && pairs[j].key == pairs[i].key {
			j++
		}
		c := r.cell(pairs[i].key)
		switch n := len(c.raw); {
		case n > 0 && c.raw[n-1].tick == tick:
			// A second wave at the same tick (extend after insert):
			// rewrite the merged list into the arena tail.
			old := c.raw[n-1].ids
			st := len(pi.idArena)
			pi.idArena = append(pi.idArena, old...)
			for _, pr := range pairs[i:j] {
				pi.idArena = append(pi.idArena, pr.id)
			}
			c.raw[n-1].ids = pi.idArena[st:len(pi.idArena):len(pi.idArena)]
		case n > 0 && c.raw[n-1].tick > tick:
			// Out-of-order tick (standalone PI use): sorted-insert path.
			for _, pr := range pairs[i:j] {
				c.appendID(pr.id, tick)
			}
		default:
			st := len(pi.idArena)
			for _, pr := range pairs[i:j] {
				pi.idArena = append(pi.idArena, pr.id)
			}
			c.raw = append(c.raw, tickIDs{tick: tick, ids: pi.idArena[st:len(pi.idArena):len(pi.idArena)]})
		}
		i = j
	}
	r.bump(tick, len(pairs))
}

// insertByRegion is Insert with the per-point covering-region indices
// already known (regIdx[i] < 0 = uncovered), so the caller's coverage
// probe is not repeated. Covered points are grouped per region and
// bulk-inserted; uncovered indices are appended to uncovered and
// returned.
func (pi *PI) insertByRegion(ids []traj.ID, points []geo.Point, tick int, regIdx, uncovered []int) []int {
	nR := len(pi.Regions)
	if cap(pi.regCnt) < nR {
		pi.regCnt = make([]int32, nR)
		pi.regOff = make([]int32, nR)
	}
	cnt := pi.regCnt[:nR]
	for i := range cnt {
		cnt[i] = 0
	}
	covered := 0
	for i, ri := range regIdx {
		if ri >= 0 {
			cnt[ri]++
			covered++
		} else {
			uncovered = append(uncovered, i)
		}
	}
	if len(points) > 0 {
		pi.sealed = false
	}
	if covered == 0 {
		return uncovered
	}
	off := pi.regOff[:nR]
	acc := int32(0)
	for r := 0; r < nR; r++ {
		off[r] = acc
		acc += cnt[r]
		cnt[r] = 0 // reused as fill cursor below
	}
	if cap(pi.pairs) < covered {
		pi.pairs = make([]kiPair, covered)
	}
	pairs := pi.pairs[:covered]
	for i, ri := range regIdx {
		if ri < 0 {
			continue
		}
		pairs[off[ri]+cnt[ri]] = kiPair{key: pi.Regions[ri].cellOf(points[i]), id: ids[i]}
		cnt[ri]++
	}
	for r := 0; r < nR; r++ {
		if cnt[r] > 0 {
			pi.insertColumn(pi.Regions[r], pairs[off[r]:off[r]+cnt[r]], tick)
		}
	}
	return uncovered
}

// Extend builds new regions for uncovered points ("Insertion" in
// Algorithm 4) and inserts them.
func (pi *PI) Extend(ids []traj.ID, points []geo.Point, tick int) {
	pi.extend(ids, points, tick)
}

// Seal compresses every cell's per-tick ID lists with the shared
// delta+Huffman coder. Sealing is idempotent and re-runs after new
// insertions. The two passes (frequency training, then encoding) walk
// the tick-sorted lists in place — traj.ID aliases uint32, so no list is
// copied or converted.
func (pi *PI) Seal() error {
	if pi.sealed {
		return nil
	}
	// Both coding passes sweep the dense cell slices directly (no map
	// iteration — the cell count is routinely in the hundreds of
	// thousands).
	var freq codec.PostingFreq
	total := 0
	for _, r := range pi.Regions {
		for _, chunk := range r.cd {
			for ci := range chunk {
				c := &chunk[ci]
				total += len(c.raw)
				for i := range c.raw {
					freq.Add(c.raw[i].ids)
				}
			}
		}
	}
	coder, err := codec.NewPostingCoderFromFreq(&freq)
	if err != nil {
		return err
	}
	pi.coder = coder
	// All posting bytes land in one shared byte arena, and all sealed
	// tick entries in one shared slice — two allocations either way.
	var arena []byte
	tpArena := make([]tickPosting, 0, total)
	for _, r := range pi.Regions {
		for _, chunk := range r.cd {
			for ci := range chunk {
				c := &chunk[ci]
				st := len(tpArena)
				for i := range c.raw {
					off := len(arena)
					var pl codec.PostingList
					pl, arena, err = coder.AppendEncode(arena, c.raw[i].ids)
					if err != nil {
						return err
					}
					tpArena = append(tpArena, tickPosting{
						tick: int32(c.raw[i].tick),
						n:    int32(pl.N),
						bits: int32(pl.Bits),
						off:  uint32(off),
					})
				}
				c.sealed = tpArena[st:len(tpArena):len(tpArena)]
			}
		}
	}
	pi.postArena = arena
	// Rebuild each region's sorted cell directory: range scans walk the
	// populated cells of a rectangle in key order via binary search, which
	// beats hashing every candidate coordinate of a wide scan area.
	for _, r := range pi.Regions {
		r.dir = r.dir[:0]
		if cap(r.dir) < len(r.cells) {
			r.dir = make([]cellEntry, 0, len(r.cells))
		}
		for k, ci := range r.cells {
			r.dir = append(r.dir, cellEntry{key: k, ci: ci})
		}
		slices.SortFunc(r.dir, func(a, b cellEntry) int {
			if a.key.X != b.key.X {
				return cmp.Compare(a.key.X, b.key.X)
			}
			return cmp.Compare(a.key.Y, b.key.Y)
		})
	}
	pi.sealed = true
	return nil
}

// Lookup returns the trajectory IDs indexed in the cell containing p at
// the given tick, plus the cell rectangle. ok is false when p is not
// covered by any region. The returned slice may be shared with the
// decoded-cell cache; callers must not modify it.
func (pi *PI) Lookup(p geo.Point, tick int) (ids []traj.ID, cell geo.Rect, ok bool) {
	ri := pi.regionIndexOf(p)
	if ri < 0 {
		return nil, geo.Rect{}, false
	}
	r := pi.Regions[ri]
	cell = r.CellRect(p)
	ci, exists := r.cells[r.cellOf(p)]
	if !exists {
		return nil, cell, true
	}
	return pi.decodeCell(int32(ri), ci, r.cellPtr(ci), tick), cell, true
}

// SetCache attaches a shared decoded-cell cache. owner names this PI's
// owner (typically a sealed repository segment) in cache keys and id
// disambiguates sibling PIs of the same owner (the TPI period index).
// Attach only to an index that will no longer be mutated or re-sealed:
// cached decodes are never invalidated by Append/Seal, so a post-attach
// mutation would serve stale posting lists.
func (pi *PI) SetCache(c *cache.Cache, owner uint64, id uint32) {
	pi.cellCache = c
	pi.cacheOwner = owner
	pi.cacheID = id
}

// decodedChunk is one cached value: the decoded posting lists of a single
// cell for every present tick of one cache chunk, ascending by tick. The
// slices are shared between the cache and every reader, immutable by
// contract.
type decodedChunk struct {
	ticks []int32
	ids   [][]traj.ID
	cost  int64
}

// at returns the decoded list for tick (nil when the cell has no posting
// at that tick).
func (d *decodedChunk) at(tick int) []traj.ID {
	i := sort.Search(len(d.ticks), func(i int) bool { return int(d.ticks[i]) >= tick })
	if i < len(d.ticks) && int(d.ticks[i]) == tick {
		return d.ids[i]
	}
	return nil
}

// decodePosting decodes one sealed posting entry (nil on a corrupt
// posting).
func (pi *PI) decodePosting(tp tickPosting) []traj.ID {
	pl := codec.PostingList{
		N:    int(tp.n),
		Bits: int(tp.bits),
		Data: pi.postArena[tp.off : int(tp.off)+(int(tp.bits)+7)/8],
	}
	ids, err := pi.coder.Decode(&pl) // []uint32 is []traj.ID (alias)
	if err != nil {
		return nil
	}
	return ids
}

// decodeSealed decodes one sealed posting list by tick (nil on absence).
func (pi *PI) decodeSealed(c *cellData, tick int) []traj.ID {
	tp, ok := c.sealedAt(tick)
	if !ok {
		return nil
	}
	return pi.decodePosting(tp)
}

// decodeChunk decodes every posting of the cell whose tick falls in the
// given cache chunk.
func (pi *PI) decodeChunk(c *cellData, chunk int32) *decodedChunk {
	lo := int(chunk) * cache.ChunkTicks
	hi := lo + cache.ChunkTicks
	i := sort.Search(len(c.sealed), func(i int) bool { return int(c.sealed[i].tick) >= lo })
	d := &decodedChunk{cost: 64}
	for ; i < len(c.sealed) && int(c.sealed[i].tick) < hi; i++ {
		ids := pi.decodePosting(c.sealed[i])
		d.ticks = append(d.ticks, c.sealed[i].tick)
		d.ids = append(d.ids, ids)
		d.cost += 4 + 24 + 4*int64(len(ids))
	}
	return d
}

// decodeCell returns the IDs of one (cell, tick) posting. ri and ci are
// the cell's region and dense-cell indices, which key the decoded-cell
// cache when one is attached; on a cache miss the cell's whole tick chunk
// is decoded and cached, so adjacent-tick probes (window scans) hit.
// Returned slices are shared with the cache and must not be modified.
func (pi *PI) decodeCell(ri, ci int32, c *cellData, tick int) []traj.ID {
	if !pi.sealed {
		return append([]traj.ID(nil), c.rawAt(tick)...)
	}
	if pi.cellCache == nil {
		return pi.decodeSealed(c, tick)
	}
	key := cache.Key{
		Owner: pi.cacheOwner,
		PI:    pi.cacheID,
		Reg:   uint32(ri),
		Cell:  ci,
		Chunk: cache.Chunk(tick),
	}
	if v, ok := pi.cellCache.Get(key); ok {
		return v.(*decodedChunk).at(tick)
	}
	d := pi.decodeChunk(c, key.Chunk)
	pi.cellCache.Put(key, d, d.cost)
	return d.at(tick)
}

// LookupArea returns all IDs at the given tick whose indexed position
// falls in a cell intersecting the query rectangle — the local-search
// probe of §5.2. The returned cells slice lists the page ranges touched
// when a ReadTracker is supplied (disk mode).
func (pi *PI) LookupArea(area geo.Rect, tick int, rt *store.ReadTracker) []traj.ID {
	return pi.AppendLookupArea(nil, area, tick, rt)
}

// AppendLookupArea is LookupArea writing into dst (grown as needed) so
// steady-state query loops can reuse one scratch slice instead of
// allocating a candidate list per probe. The appended IDs are sorted and
// deduplicated; dst's existing contents are preserved untouched.
func (pi *PI) AppendLookupArea(dst []traj.ID, area geo.Rect, tick int, rt *store.ReadTracker) []traj.ID {
	st := len(dst)
	for ri, r := range pi.Regions {
		if !r.Rect.Intersects(area) {
			continue
		}
		// Cell range intersecting the area within this region.
		x0, y0, x1, y1 := r.cellRange(area)
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				ci, ok := r.cells[cellKey{x, y}]
				if !ok {
					continue
				}
				// Cells created after AssignPages have no placement yet
				// (the bounds check is the old per-cell "placed" flag).
				if rt != nil && int(ci) < len(r.pages) {
					rt.Read(r.pages[ci])
				}
				dst = append(dst, pi.decodeCell(int32(ri), ci, r.cellPtr(ci), tick)...)
			}
		}
	}
	out := dst[st:]
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dst[:st+len(traj.DedupSorted(out))]
}

// cellRange returns the inclusive cell-index range of the region's cells
// intersecting area. The caller must have checked r.Rect.Intersects(area).
func (r *Region) cellRange(area geo.Rect) (x0, y0, x1, y1 int32) {
	x0 = int32(math.Floor((math.Max(area.MinX, r.Rect.MinX) - r.Rect.MinX) / r.gc))
	y0 = int32(math.Floor((math.Max(area.MinY, r.Rect.MinY) - r.Rect.MinY) / r.gc))
	x1 = int32(math.Floor((math.Min(area.MaxX, r.Rect.MaxX) - r.Rect.MinX) / r.gc))
	y1 = int32(math.Floor((math.Min(area.MaxY, r.Rect.MaxY) - r.Rect.MinY) / r.gc))
	return x0, y0, x1, y1
}

// cellRectOf returns the rectangle of the cell at key k, clipped to the
// region.
func (r *Region) cellRectOf(k cellKey) geo.Rect {
	cell := geo.Rect{
		MinX: r.Rect.MinX + float64(k.X)*r.gc,
		MinY: r.Rect.MinY + float64(k.Y)*r.gc,
		MaxX: r.Rect.MinX + float64(k.X+1)*r.gc,
		MaxY: r.Rect.MinY + float64(k.Y+1)*r.gc,
	}
	return cell.Intersect(r.Rect)
}

// SizeBytes estimates the serialized index size: region rectangles, cell
// directory entries, compressed postings, and the shared Huffman table.
// The PI must be sealed first for the compressed sizes to be exact.
func (pi *PI) SizeBytes() int {
	bits := 0
	if pi.coder != nil {
		bits += pi.coder.TableBits()
	}
	for _, r := range pi.Regions {
		bits += 4 * 64 // rectangle
		for _, chunk := range r.cd {
			for ci := range chunk {
				c := &chunk[ci]
				bits += 64 // cell key + directory entry
				if pi.sealed {
					for i := range c.sealed {
						bits += 32 + int(c.sealed[i].bits) // tick tag + postings
					}
				} else {
					for i := range c.raw {
						bits += 32 + 32*len(c.raw[i].ids)
					}
				}
			}
		}
	}
	return (bits + 7) / 8
}

// NumCells returns the number of non-empty cells.
func (pi *PI) NumCells() int {
	n := 0
	for _, r := range pi.Regions {
		n += len(r.cells)
	}
	return n
}

// AssignPages lays the sealed index out on the page store: the region
// directory first, then every cell's postings in deterministic order.
// Queries afterwards charge I/Os through LookupArea's ReadTracker.
func (pi *PI) AssignPages(ps *store.PageStore) {
	ps.AlignToPage()
	// Directory blob: rectangles + cell keys.
	dir := 0
	for _, r := range pi.Regions {
		dir += 32 + len(r.cells)*16
	}
	dirRange := ps.Alloc(dir)
	for _, r := range pi.Regions {
		keys := make([]cellKey, 0, len(r.cells))
		for k := range r.cells {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].X != keys[j].X {
				return keys[i].X < keys[j].X
			}
			return keys[i].Y < keys[j].Y
		})
		if len(r.pages) < int(r.nCells) {
			r.pages = make([]store.PageRange, r.nCells)
		}
		for _, k := range keys {
			ci := r.cells[k]
			c := r.cellPtr(ci)
			sz := 0
			if pi.sealed {
				for i := range c.sealed {
					sz += 8 + (int(c.sealed[i].bits)+7)/8
				}
			} else {
				for i := range c.raw {
					sz += 8 + 4*len(c.raw[i].ids)
				}
			}
			r.pages[ci] = ps.Alloc(sz)
		}
	}
	_ = dirRange
}
