package index

import (
	"sort"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// This file is the pull-based counterpart of scan.go: a resumable cursor
// that yields the work of ScanRange one populated cell at a time, so an
// iterator executor can interleave decode with downstream filtering and
// abort between cells without threading abort flags through callbacks.
// The cursor and ScanRange share the same cell enumeration
// (forEachCellIn) and the same per-cell decode (scanCell), so their
// emitted postings and ScanStats accounting are identical when the
// cursor is drained.

// forEachCellIn calls f for every populated cell of r whose coordinates
// fall inside area's cell range: via the (X, Y)-sorted directory with
// band skipping for sealed regions, via coordinate lookups otherwise.
// f returning false aborts the walk; forEachCellIn reports whether it
// ran to completion.
func (r *Region) forEachCellIn(area geo.Rect, f func(k cellKey, ci int32) bool) bool {
	x0, y0, x1, y1 := r.cellRange(area)
	if len(r.dir) > 0 {
		i := sort.Search(len(r.dir), func(i int) bool {
			k := r.dir[i].key
			return k.X > x0 || (k.X == x0 && k.Y >= y0)
		})
		for i < len(r.dir) && r.dir[i].key.X <= x1 {
			k := r.dir[i].key
			switch {
			case k.Y > y1:
				// Past this column's band: jump to the next column.
				i += sort.Search(len(r.dir)-i, func(j int) bool {
					return r.dir[i+j].key.X > k.X
				})
				continue
			case k.Y < y0:
				// Below the band: jump to the band's start within the
				// column (or past the column).
				i += sort.Search(len(r.dir)-i, func(j int) bool {
					kj := r.dir[i+j].key
					return kj.X > k.X || kj.Y >= y0
				})
				continue
			}
			if !f(k, r.dir[i].ci) {
				return false
			}
			i++
		}
		return true
	}
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			k := cellKey{x, y}
			ci, ok := r.cells[k]
			if !ok {
				continue
			}
			if !f(k, ci) {
				return false
			}
		}
	}
	return true
}

// CellScan is one cursor batch: every emitted (tick, posting) of a
// single populated cell within the cursor's span, ticks ascending. The
// Ticks/IDs slices are cursor-owned scratch reused by the next Next
// call; the inner ID slices may be shared with the decoded-cell cache.
// Neither may be modified or retained across pulls.
type CellScan struct {
	// Cell is the cell's rectangle, clipped to its region.
	Cell  geo.Rect
	Ticks []int
	IDs   [][]traj.ID
}

// pendingCell is one enumerated-but-not-yet-decoded candidate cell.
type pendingCell struct {
	ri int32
	k  cellKey
	ci int32
}

// RangeCursor pulls ScanRange's work one cell at a time. Cell
// enumeration is materialized a region at a time (directory walking
// only — cheap); decode, cache traffic, and stats accounting happen
// lazily per pull, so abandoning the cursor early skips the decode work
// of every cell not pulled. A fully drained cursor produces exactly the
// cells, postings, and ScanStats of the equivalent ScanRange call.
type RangeCursor struct {
	t        *TPI
	area     geo.Rect
	from, to int
	st       *ScanStats
	visit    func(cell geo.Rect) bool

	period int // next period of t to open
	pi     *PI // currently open period's index (nil before open / after close)
	lo, hi int // span clipped to the open period
	ri     int // next region of pi to enumerate

	pend []pendingCell
	np   int // next pending cell
	out  CellScan

	// emitFn and pendFn are the per-pull and per-region callbacks, built
	// once per cursor (they capture only c) so Next and fill allocate
	// nothing: a pooled cursor keeps them across Resets.
	emitFn func(tick int, ids []traj.ID) bool
	pendFn func(k cellKey, ci int32) bool
	fillRI int32 // region index pendFn is enumerating
}

// RangeCursor returns a cursor over every populated cell intersecting
// area with postings in [from, to], across all overlapping periods.
// The visit callback and st accounting follow the ScanRange contract;
// both are invoked lazily as cells are pulled.
func (t *TPI) RangeCursor(area geo.Rect, from, to int, st *ScanStats, visit func(cell geo.Rect) bool) *RangeCursor {
	c := &RangeCursor{}
	c.Reset(t, area, from, to, st, visit)
	return c
}

// Reset re-aims the cursor at a new scan, keeping its scratch (pending
// cells, output batch, callbacks) — the pooled-scratch path for
// executors that open one cursor per planned segment scan.
func (c *RangeCursor) Reset(t *TPI, area geo.Rect, from, to int, st *ScanStats, visit func(cell geo.Rect) bool) {
	c.t, c.area, c.from, c.to, c.st, c.visit = t, area, from, to, st, visit
	c.period, c.pi, c.lo, c.hi, c.ri = 0, nil, 0, 0, 0
	c.pend, c.np = c.pend[:0], 0
	c.out.Ticks, c.out.IDs = c.out.Ticks[:0], c.out.IDs[:0]
	if c.emitFn == nil {
		c.emitFn = func(tick int, ids []traj.ID) bool {
			c.out.Ticks = append(c.out.Ticks, tick)
			c.out.IDs = append(c.out.IDs, ids)
			return true
		}
		c.pendFn = func(k cellKey, ci int32) bool {
			c.pend = append(c.pend, pendingCell{ri: c.fillRI, k: k, ci: ci})
			return true
		}
	}
}

// Next returns the next non-empty cell batch, or ok=false when the scan
// is exhausted. The returned CellScan is only valid until the next call.
func (c *RangeCursor) Next() (*CellScan, bool) {
	for {
		for c.np < len(c.pend) {
			pc := c.pend[c.np]
			c.np++
			r := c.pi.Regions[pc.ri]
			cd := r.cellPtr(pc.ci)
			if !c.pi.cellMayOverlap(cd, c.lo, c.hi) {
				c.st.CellsSkipped++
				continue
			}
			if c.visit != nil && !c.visit(r.cellRectOf(pc.k)) {
				c.st.CellsSkipped++
				continue
			}
			c.st.CellsScanned++
			c.out.Cell = r.cellRectOf(pc.k)
			c.out.Ticks = c.out.Ticks[:0]
			c.out.IDs = c.out.IDs[:0]
			c.pi.scanCell(pc.ri, pc.ci, cd, c.lo, c.hi, c.st, c.emitFn)
			if len(c.out.Ticks) > 0 {
				return &c.out, true
			}
		}
		if !c.fill() {
			return nil, false
		}
	}
}

// fill enumerates the next non-empty batch of candidate cells — the next
// region with populated cells in the area, opening the next overlapping
// period when the current one is exhausted. Reports false at end of scan.
func (c *RangeCursor) fill() bool {
	c.pend = c.pend[:0]
	c.np = 0
	for {
		if c.pi == nil {
			for c.period < len(c.t.Periods) {
				p := &c.t.Periods[c.period]
				c.period++
				if lo, hi := max(c.from, p.Start), min(c.to, p.End); lo <= hi {
					c.pi, c.lo, c.hi, c.ri = p.PI, lo, hi, 0
					break
				}
			}
			if c.pi == nil {
				return false
			}
		}
		// Hot loop: keep the area and region index in locals so the
		// enumeration runs at ScanRange's speed despite the cursor's
		// state living behind a pointer.
		regions, area, ri := c.pi.Regions, c.area, c.ri
		for ri < len(regions) {
			r := regions[ri]
			c.fillRI = int32(ri)
			ri++
			if !r.Rect.Intersects(area) {
				continue
			}
			r.forEachCellIn(area, c.pendFn)
			if len(c.pend) > 0 {
				c.ri = ri
				return true
			}
		}
		c.ri = ri
		c.pi = nil
	}
}
