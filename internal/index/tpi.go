package index

import (
	"time"

	"ppqtraj/internal/cache"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/store"
	"ppqtraj/internal/traj"
)

// Options configures TPI construction (Algorithm 4).
type Options struct {
	// EpsS is ε_s, the spatial partition threshold for PI construction.
	EpsS float64
	// GC is g_c, the grid cell size of each region.
	GC float64
	// EpsC is ε_c, the per-region TRD dropping-rate threshold
	// (Equation 14).
	EpsC float64
	// EpsD is ε_d, the ADR threshold that triggers a Re-build
	// (Algorithm 4 line 6).
	EpsD float64
	// Seed makes PI clustering deterministic.
	Seed int64
}

// Period is one time interval [Start, End] indexed by a single PI.
type Period struct {
	Start, End int
	PI         *PI
}

// Stats reports TPI build work (Tables 7 and 8).
type Stats struct {
	Rebuilds   int // "Re-build" events (also = number of periods - adjustments)
	Insertions int // "Insertion" events (new regions added mid-period)
	BuildTime  time.Duration
}

// TPI is the temporal partition-based index: a sequence of periods, each
// owning one PI (Algorithm 4).
type TPI struct {
	opts     Options
	Periods  []Period
	stats    Stats
	lastTick int

	// Append scratch, reused across ticks.
	cover  []int   // per-region covered counts of the current tick
	regIdx []int   // per-point covering-region index (-1 = uncovered)
	uncov  []int   // indices of uncovered points
	hint   []int32 // per-trajectory last covering region (reset on rebuild)
}

// maxHintID bounds the per-trajectory hint table (IDs are dense in
// practice; sparse huge IDs simply skip the hint).
const maxHintID = 1 << 21

// hintFor returns the cached region index for id, or -1.
func (t *TPI) hintFor(id traj.ID) int32 {
	if int(id) < len(t.hint) {
		return t.hint[id]
	}
	return -1
}

// setHint records the covering region index for id, growing the table on
// demand.
func (t *TPI) setHint(id traj.ID, ri int32) {
	if int(id) >= maxHintID {
		return
	}
	for int(id) >= len(t.hint) {
		t.hint = append(t.hint, -1)
	}
	t.hint[id] = ri
}

// resetHints invalidates the hint table (the region set changed).
func (t *TPI) resetHints() {
	for i := range t.hint {
		t.hint[i] = -1
	}
}

// NewTPI creates an empty TPI.
func NewTPI(opts Options) *TPI {
	if opts.GC <= 0 {
		panic("index: TPI requires GC > 0")
	}
	if opts.EpsS <= 0 {
		panic("index: TPI requires EpsS > 0")
	}
	return &TPI{opts: opts, lastTick: -1}
}

// Stats returns the build counters.
func (t *TPI) Stats() Stats { return t.stats }

// NumPeriods returns the number of time periods.
func (t *TPI) NumPeriods() int { return len(t.Periods) }

// current returns the open period (the last one).
func (t *TPI) current() *Period {
	if len(t.Periods) == 0 {
		return nil
	}
	return &t.Periods[len(t.Periods)-1]
}

// adr computes the Average Dropping Rate of TRD between the current
// period's baseline and tick te (Equations 12–14), given the per-region
// counts of covered points at te (indexed like pi.Regions).
func (t *TPI) adr(pi *PI, covered []int) float64 {
	n := len(pi.Regions)
	if n == 0 {
		return 0
	}
	drops := 0
	for i, r := range pi.Regions {
		base := r.baseCount
		if base == 0 {
			continue // region had no baseline occupancy; cannot drop
		}
		h1 := (float64(covered[i]) - float64(base)) / float64(base)
		if h1 < 0 && -h1 > t.opts.EpsC {
			drops++
		}
	}
	return float64(drops) / float64(n)
}

// Append feeds one timestamp of (already reconstructed or raw) points
// into the index — Algorithm 4's loop body. Ticks must arrive in strictly
// increasing order.
func (t *TPI) Append(ids []traj.ID, points []geo.Point, tick int) {
	start := time.Now()
	defer func() { t.stats.BuildTime += time.Since(start) }()
	if len(ids) != len(points) {
		panic("index: ids/points length mismatch")
	}
	if tick <= t.lastTick {
		panic("index: ticks must be strictly increasing")
	}
	t.lastTick = tick

	cur := t.current()
	if cur == nil {
		pi := BuildPI(ids, points, tick, t.opts.EpsS, t.opts.GC, t.opts.Seed)
		t.Periods = append(t.Periods, Period{Start: tick, End: tick, PI: pi})
		t.stats.Rebuilds++
		return
	}

	// Split into covered / uncovered (Algorithm 4 line 5) and count
	// covered points per region for the ADR check. Counts and per-point
	// region indices live in scratch slices reused across ticks; the
	// region probe runs once per point and its result feeds both the ADR
	// check and the insert below.
	if cap(t.cover) < len(cur.PI.Regions) {
		t.cover = make([]int, len(cur.PI.Regions))
	}
	t.cover = t.cover[:len(cur.PI.Regions)]
	for i := range t.cover {
		t.cover[i] = 0
	}
	if cap(t.regIdx) < len(points) {
		t.regIdx = make([]int, len(points))
	}
	t.regIdx = t.regIdx[:len(points)]
	for i, p := range points {
		// Trajectories rarely change region tick to tick, so the cached
		// region is verified first; only misses pay the linear scan.
		ri := -1
		if h := t.hintFor(ids[i]); h >= 0 && int(h) < len(cur.PI.Regions) &&
			cur.PI.Regions[h].Rect.Contains(p) {
			ri = int(h)
		} else {
			ri = cur.PI.regionIndexOf(p)
			if ri >= 0 {
				t.setHint(ids[i], int32(ri))
			}
		}
		t.regIdx[i] = ri
		if ri >= 0 {
			t.cover[ri]++
		}
	}

	if t.adr(cur.PI, t.cover) > t.opts.EpsD {
		// Re-build (lines 6–9): close the period and start fresh.
		pi := BuildPI(ids, points, tick, t.opts.EpsS, t.opts.GC, t.opts.Seed)
		t.Periods = append(t.Periods, Period{Start: tick, End: tick, PI: pi})
		t.stats.Rebuilds++
		t.resetHints() // region indices refer to the closed period's PI
		return
	}

	// Reuse: insert covered points, extend for uncovered (lines 10–11).
	// Coverage was just computed, so feed it back instead of re-probing
	// every point inside Insert.
	t.uncov = cur.PI.insertByRegion(ids, points, tick, t.regIdx, t.uncov[:0])
	rest := t.uncov
	if len(rest) > 0 {
		subIDs := make([]traj.ID, len(rest))
		subPts := make([]geo.Point, len(rest))
		for i, idx := range rest {
			subIDs[i] = ids[idx]
			subPts[i] = points[idx]
		}
		cur.PI.Extend(subIDs, subPts, tick)
		t.stats.Insertions++
	}
	cur.End = tick
}

// Seal compresses the posting lists of every period.
func (t *TPI) Seal() error {
	for i := range t.Periods {
		if err := t.Periods[i].PI.Seal(); err != nil {
			return err
		}
	}
	return nil
}

// SetCache attaches a shared decoded-cell cache to every period's PI,
// keyed under the given owner token. Call only after the final Seal, on
// an index that will no longer be mutated: cached decodes are never
// invalidated by Append/Seal. A nil cache detaches.
func (t *TPI) SetCache(c *cache.Cache, owner uint64) {
	for i := range t.Periods {
		t.Periods[i].PI.SetCache(c, owner, uint32(i))
	}
}

// PeriodOf returns the period containing the tick, or nil.
func (t *TPI) PeriodOf(tick int) *Period {
	// Periods are ordered and non-overlapping; binary search would do, but
	// period counts are small.
	for i := range t.Periods {
		p := &t.Periods[i]
		if tick >= p.Start && tick <= p.End {
			return p
		}
	}
	return nil
}

// Lookup returns the IDs in the g_c cell containing p at the given tick,
// with the cell rectangle. With a cache attached the returned slice may
// be shared with the decoded-cell cache (and so with concurrent readers);
// callers must not modify it.
func (t *TPI) Lookup(p geo.Point, tick int) (ids []traj.ID, cell geo.Rect, ok bool) {
	period := t.PeriodOf(tick)
	if period == nil {
		return nil, geo.Rect{}, false
	}
	return period.PI.Lookup(p, tick)
}

// LookupArea performs the local-search probe over the period containing
// tick (see §5.2); rt, when non-nil, charges disk I/Os.
func (t *TPI) LookupArea(area geo.Rect, tick int, rt *store.ReadTracker) []traj.ID {
	period := t.PeriodOf(tick)
	if period == nil {
		return nil
	}
	return period.PI.LookupArea(area, tick, rt)
}

// AppendLookupArea is LookupArea appending into dst (see
// PI.AppendLookupArea); dst is returned unchanged when the tick falls
// outside every period.
func (t *TPI) AppendLookupArea(dst []traj.ID, area geo.Rect, tick int, rt *store.ReadTracker) []traj.ID {
	period := t.PeriodOf(tick)
	if period == nil {
		return dst
	}
	return period.PI.AppendLookupArea(dst, area, tick, rt)
}

// CellRect returns the g_c cell rectangle that p maps to at the given
// tick — the STRQ query granularity (Definition 5.2). ok is false when p
// is not covered by any region of the period's PI.
func (t *TPI) CellRect(p geo.Point, tick int) (geo.Rect, bool) {
	period := t.PeriodOf(tick)
	if period == nil {
		return geo.Rect{}, false
	}
	r := period.PI.regionOf(p)
	if r == nil {
		return geo.Rect{}, false
	}
	return r.CellRect(p), true
}

// SizeBytes sums the serialized sizes of all periods' PIs.
func (t *TPI) SizeBytes() int {
	n := 0
	for i := range t.Periods {
		n += t.Periods[i].PI.SizeBytes()
	}
	return n
}

// AssignPages lays out every period on the page store in time order.
func (t *TPI) AssignPages(ps *store.PageStore) {
	for i := range t.Periods {
		t.Periods[i].PI.AssignPages(ps)
	}
}
