package index

import (
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/store"
	"ppqtraj/internal/traj"
)

// Options configures TPI construction (Algorithm 4).
type Options struct {
	// EpsS is ε_s, the spatial partition threshold for PI construction.
	EpsS float64
	// GC is g_c, the grid cell size of each region.
	GC float64
	// EpsC is ε_c, the per-region TRD dropping-rate threshold
	// (Equation 14).
	EpsC float64
	// EpsD is ε_d, the ADR threshold that triggers a Re-build
	// (Algorithm 4 line 6).
	EpsD float64
	// Seed makes PI clustering deterministic.
	Seed int64
}

// Period is one time interval [Start, End] indexed by a single PI.
type Period struct {
	Start, End int
	PI         *PI
}

// Stats reports TPI build work (Tables 7 and 8).
type Stats struct {
	Rebuilds   int // "Re-build" events (also = number of periods - adjustments)
	Insertions int // "Insertion" events (new regions added mid-period)
	BuildTime  time.Duration
}

// TPI is the temporal partition-based index: a sequence of periods, each
// owning one PI (Algorithm 4).
type TPI struct {
	opts     Options
	Periods  []Period
	stats    Stats
	lastTick int
}

// NewTPI creates an empty TPI.
func NewTPI(opts Options) *TPI {
	if opts.GC <= 0 {
		panic("index: TPI requires GC > 0")
	}
	if opts.EpsS <= 0 {
		panic("index: TPI requires EpsS > 0")
	}
	return &TPI{opts: opts, lastTick: -1}
}

// Stats returns the build counters.
func (t *TPI) Stats() Stats { return t.stats }

// NumPeriods returns the number of time periods.
func (t *TPI) NumPeriods() int { return len(t.Periods) }

// current returns the open period (the last one).
func (t *TPI) current() *Period {
	if len(t.Periods) == 0 {
		return nil
	}
	return &t.Periods[len(t.Periods)-1]
}

// adr computes the Average Dropping Rate of TRD between the current
// period's baseline and tick te (Equations 12–14), given the per-region
// counts of covered points at te.
func (t *TPI) adr(pi *PI, coveredCount map[*Region]int) float64 {
	n := len(pi.Regions)
	if n == 0 {
		return 0
	}
	drops := 0
	for _, r := range pi.Regions {
		base := r.baseCount
		if base == 0 {
			continue // region had no baseline occupancy; cannot drop
		}
		h1 := (float64(coveredCount[r]) - float64(base)) / float64(base)
		if h1 < 0 && -h1 > t.opts.EpsC {
			drops++
		}
	}
	return float64(drops) / float64(n)
}

// Append feeds one timestamp of (already reconstructed or raw) points
// into the index — Algorithm 4's loop body. Ticks must arrive in strictly
// increasing order.
func (t *TPI) Append(ids []traj.ID, points []geo.Point, tick int) {
	start := time.Now()
	defer func() { t.stats.BuildTime += time.Since(start) }()
	if len(ids) != len(points) {
		panic("index: ids/points length mismatch")
	}
	if tick <= t.lastTick {
		panic("index: ticks must be strictly increasing")
	}
	t.lastTick = tick

	cur := t.current()
	if cur == nil {
		pi := BuildPI(ids, points, tick, t.opts.EpsS, t.opts.GC, t.opts.Seed)
		t.Periods = append(t.Periods, Period{Start: tick, End: tick, PI: pi})
		t.stats.Rebuilds++
		return
	}

	// Split into covered / uncovered (Algorithm 4 line 5) and count
	// covered points per region for the ADR check.
	coveredCount := make(map[*Region]int)
	var uncovered []int
	for i, p := range points {
		if r := cur.PI.regionOf(p); r != nil {
			coveredCount[r]++
		} else {
			uncovered = append(uncovered, i)
		}
	}

	if t.adr(cur.PI, coveredCount) > t.opts.EpsD {
		// Re-build (lines 6–9): close the period and start fresh.
		pi := BuildPI(ids, points, tick, t.opts.EpsS, t.opts.GC, t.opts.Seed)
		t.Periods = append(t.Periods, Period{Start: tick, End: tick, PI: pi})
		t.stats.Rebuilds++
		return
	}

	// Reuse: insert covered points, extend for uncovered (lines 10–11).
	rest := cur.PI.Insert(ids, points, tick)
	if len(rest) > 0 {
		subIDs := make([]traj.ID, len(rest))
		subPts := make([]geo.Point, len(rest))
		for i, idx := range rest {
			subIDs[i] = ids[idx]
			subPts[i] = points[idx]
		}
		cur.PI.Extend(subIDs, subPts, tick)
		t.stats.Insertions++
	}
	cur.End = tick
}

// Seal compresses the posting lists of every period.
func (t *TPI) Seal() error {
	for i := range t.Periods {
		if err := t.Periods[i].PI.Seal(); err != nil {
			return err
		}
	}
	return nil
}

// PeriodOf returns the period containing the tick, or nil.
func (t *TPI) PeriodOf(tick int) *Period {
	// Periods are ordered and non-overlapping; binary search would do, but
	// period counts are small.
	for i := range t.Periods {
		p := &t.Periods[i]
		if tick >= p.Start && tick <= p.End {
			return p
		}
	}
	return nil
}

// Lookup returns the IDs in the g_c cell containing p at the given tick,
// with the cell rectangle.
func (t *TPI) Lookup(p geo.Point, tick int) (ids []traj.ID, cell geo.Rect, ok bool) {
	period := t.PeriodOf(tick)
	if period == nil {
		return nil, geo.Rect{}, false
	}
	return period.PI.Lookup(p, tick)
}

// LookupArea performs the local-search probe over the period containing
// tick (see §5.2); rt, when non-nil, charges disk I/Os.
func (t *TPI) LookupArea(area geo.Rect, tick int, rt *store.ReadTracker) []traj.ID {
	period := t.PeriodOf(tick)
	if period == nil {
		return nil
	}
	return period.PI.LookupArea(area, tick, rt)
}

// CellRect returns the g_c cell rectangle that p maps to at the given
// tick — the STRQ query granularity (Definition 5.2). ok is false when p
// is not covered by any region of the period's PI.
func (t *TPI) CellRect(p geo.Point, tick int) (geo.Rect, bool) {
	period := t.PeriodOf(tick)
	if period == nil {
		return geo.Rect{}, false
	}
	r := period.PI.regionOf(p)
	if r == nil {
		return geo.Rect{}, false
	}
	return r.CellRect(p), true
}

// SizeBytes sums the serialized sizes of all periods' PIs.
func (t *TPI) SizeBytes() int {
	n := 0
	for i := range t.Periods {
		n += t.Periods[i].PI.SizeBytes()
	}
	return n
}

// AssignPages lays out every period on the page store in time order.
func (t *TPI) AssignPages(ps *store.PageStore) {
	for i := range t.Periods {
		t.Periods[i].PI.AssignPages(ps)
	}
}
