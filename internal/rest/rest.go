// Package rest implements the REST baseline [Zhao et al., KDD 2018]: a
// reference-based spatio-temporal trajectory compression. A reference set
// of trajectories is indexed offline; a target trajectory is expressed as
// a sequence of matches against reference sub-trajectories (within a
// spatial deviation tolerance) plus raw points where no reference
// sub-trajectory matches.
//
// As the paper notes (§6.1, §6.4), REST needs highly repetitive data: the
// compression ratio depends on how well targets match the offline
// reference set, and unmatched regions fall back to raw storage. The
// sub-Porto construction (gen.NewSubPorto) provides such a dataset.
package rest

import (
	"math"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// Options configures reference building and matching.
type Options struct {
	// Tolerance is the maximum spatial deviation of a matched point
	// (coordinate units) — the spatial deviation knob of Figure 9c.
	Tolerance float64
	// MinMatchLen is the shortest reference run worth emitting as a match
	// segment; shorter runs are stored raw. Defaults to 3.
	MinMatchLen int
	// MaxCandidates caps the reference locations tried per anchor point.
	// Defaults to 32.
	MaxCandidates int
}

func (o Options) withDefaults() Options {
	if o.MinMatchLen <= 0 {
		o.MinMatchLen = 3
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 32
	}
	return o
}

// loc addresses one reference point.
type loc struct {
	ref int32
	off int32
}

// Reference is the offline-built reference set with a spatial hash for
// match-candidate lookup.
type Reference struct {
	opts  Options
	trajs [][]geo.Point
	grid  map[[2]int32][]loc
	cell  float64
	// BuildTime records the offline reference construction cost.
	BuildTime time.Duration
}

// BuildReference indexes the reference dataset.
func BuildReference(d *traj.Dataset, opts Options) *Reference {
	opts = opts.withDefaults()
	start := time.Now()
	r := &Reference{
		opts: opts,
		grid: make(map[[2]int32][]loc),
		cell: math.Max(opts.Tolerance, 1e-9),
	}
	for _, tr := range d.All() {
		idx := int32(len(r.trajs))
		r.trajs = append(r.trajs, tr.Points)
		for off, p := range tr.Points {
			k := r.cellOf(p)
			r.grid[k] = append(r.grid[k], loc{ref: idx, off: int32(off)})
		}
	}
	r.BuildTime = time.Since(start)
	return r
}

func (r *Reference) cellOf(p geo.Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / r.cell)), int32(math.Floor(p.Y / r.cell))}
}

// candidates returns reference locations whose point is within Tolerance
// of p (3×3 neighborhood probe), capped at MaxCandidates.
func (r *Reference) candidates(p geo.Point) []loc {
	var out []loc
	k := r.cellOf(p)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for _, l := range r.grid[[2]int32{k[0] + dx, k[1] + dy}] {
				if r.trajs[l.ref][l.off].Dist(p) <= r.opts.Tolerance {
					out = append(out, l)
					if len(out) >= r.opts.MaxCandidates {
						return out
					}
				}
			}
		}
	}
	return out
}

// Segment is one op of a compressed trajectory: either a reference match
// (Len > 0) or a run of raw points (Raw non-nil).
type Segment struct {
	Ref int32
	Off int32
	Len int32
	Raw []geo.Point
}

// Compressed is a REST-compressed trajectory.
type Compressed struct {
	Start    int
	Segments []Segment
	// NumPoints is the original sample count.
	NumPoints int
}

// SizeBits returns the storage cost: 96 bits per match segment (ref 24 +
// offset 24 + length 16 + 32 bits of temporal alignment — REST is a
// spatio-temporal compressor and must store how the matched reference
// sub-trajectory maps onto the target's timeline), 128 bits per raw point
// plus an 8-bit run header.
func (c *Compressed) SizeBits() int {
	bits := 32 // start tick
	for _, s := range c.Segments {
		if s.Raw != nil {
			bits += 8 + 128*len(s.Raw)
		} else {
			bits += 96
		}
	}
	return bits
}

// Compress encodes one trajectory against the reference set using greedy
// longest-match: at each position, try every candidate anchor and extend
// while consecutive points stay within Tolerance; emit the longest run if
// it reaches MinMatchLen, otherwise store the point raw.
func (r *Reference) Compress(tr *traj.Trajectory) *Compressed {
	out := &Compressed{Start: tr.Start, NumPoints: tr.Len()}
	pts := tr.Points
	i := 0
	var rawRun []geo.Point
	flushRaw := func() {
		if len(rawRun) > 0 {
			out.Segments = append(out.Segments, Segment{Raw: rawRun})
			rawRun = nil
		}
	}
	for i < len(pts) {
		var best Segment
		for _, cand := range r.candidates(pts[i]) {
			ref := r.trajs[cand.ref]
			n := 0
			for i+n < len(pts) && int(cand.off)+n < len(ref) &&
				ref[int(cand.off)+n].Dist(pts[i+n]) <= r.opts.Tolerance {
				n++
			}
			if n > int(best.Len) {
				best = Segment{Ref: cand.ref, Off: cand.off, Len: int32(n)}
			}
		}
		if int(best.Len) >= r.opts.MinMatchLen {
			flushRaw()
			out.Segments = append(out.Segments, best)
			i += int(best.Len)
		} else {
			rawRun = append(rawRun, pts[i])
			i++
		}
	}
	flushRaw()
	return out
}

// Reconstruct decodes a compressed trajectory back to points.
func (r *Reference) Reconstruct(c *Compressed) []geo.Point {
	out := make([]geo.Point, 0, c.NumPoints)
	for _, s := range c.Segments {
		if s.Raw != nil {
			out = append(out, s.Raw...)
			continue
		}
		ref := r.trajs[s.Ref]
		out = append(out, ref[s.Off:int(s.Off)+int(s.Len)]...)
	}
	return out
}

// Result aggregates a dataset-level compression run.
type Result struct {
	RawBytes        int
	CompressedBytes int
	MAE             float64 // coordinate units
	MatchedFraction float64 // fraction of points covered by reference matches
	CompressTime    time.Duration
}

// CompressionRatio returns RawBytes / CompressedBytes.
func (r *Result) CompressionRatio() float64 {
	if r.CompressedBytes == 0 {
		return 0
	}
	return float64(r.RawBytes) / float64(r.CompressedBytes)
}

// CompressDataset compresses every trajectory of d and reports aggregate
// statistics (Figure 9c's measurement).
func (r *Reference) CompressDataset(d *traj.Dataset) *Result {
	start := time.Now()
	res := &Result{RawBytes: d.RawBytes()}
	var sumErr float64
	matched, total := 0, 0
	bits := 0
	for _, tr := range d.All() {
		c := r.Compress(tr)
		bits += c.SizeBits()
		rec := r.Reconstruct(c)
		for i, p := range tr.Points {
			sumErr += p.Dist(rec[i])
		}
		for _, s := range c.Segments {
			if s.Raw == nil {
				matched += int(s.Len)
			}
		}
		total += tr.Len()
	}
	res.CompressedBytes = (bits + 7) / 8
	if total > 0 {
		res.MAE = sumErr / float64(total)
		res.MatchedFraction = float64(matched) / float64(total)
	}
	res.CompressTime = time.Since(start)
	return res
}
