package rest

import (
	"testing"

	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

func TestCompressIdenticalTrajectoryIsOneSegment(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0), geo.Pt(3, 0), geo.Pt(4, 0)}
	ref := BuildReference(traj.NewDataset([]*traj.Trajectory{{Points: pts}}),
		Options{Tolerance: 0.01})
	c := ref.Compress(&traj.Trajectory{Points: pts})
	if len(c.Segments) != 1 || c.Segments[0].Raw != nil || c.Segments[0].Len != 5 {
		t.Fatalf("segments = %+v", c.Segments)
	}
	rec := ref.Reconstruct(c)
	for i := range pts {
		if rec[i] != pts[i] {
			t.Fatalf("reconstruction mismatch at %d", i)
		}
	}
}

func TestCompressNoMatchIsRaw(t *testing.T) {
	ref := BuildReference(traj.NewDataset([]*traj.Trajectory{
		{Points: []geo.Point{geo.Pt(100, 100), geo.Pt(101, 100)}},
	}), Options{Tolerance: 0.01})
	target := &traj.Trajectory{Points: []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)}}
	c := ref.Compress(target)
	if len(c.Segments) != 1 || c.Segments[0].Raw == nil || len(c.Segments[0].Raw) != 2 {
		t.Fatalf("segments = %+v", c.Segments)
	}
	rec := ref.Reconstruct(c)
	for i, p := range target.Points {
		if rec[i] != p {
			t.Fatal("raw points must reconstruct exactly")
		}
	}
}

func TestCompressMixedSegments(t *testing.T) {
	refPts := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0), geo.Pt(3, 0)}
	ref := BuildReference(traj.NewDataset([]*traj.Trajectory{{Points: refPts}}),
		Options{Tolerance: 0.05, MinMatchLen: 3})
	// Matches the reference for 4 points, then diverges for 2.
	target := &traj.Trajectory{Points: []geo.Point{
		geo.Pt(0.01, 0), geo.Pt(1.01, 0), geo.Pt(2.01, 0), geo.Pt(3.01, 0),
		geo.Pt(50, 50), geo.Pt(51, 51),
	}}
	c := ref.Compress(target)
	if len(c.Segments) != 2 {
		t.Fatalf("segments = %+v", c.Segments)
	}
	if c.Segments[0].Raw != nil || c.Segments[0].Len != 4 {
		t.Fatalf("first segment should be a length-4 match: %+v", c.Segments[0])
	}
	if c.Segments[1].Raw == nil || len(c.Segments[1].Raw) != 2 {
		t.Fatalf("second segment should be 2 raw points: %+v", c.Segments[1])
	}
	// Matched points deviate by ≤ tolerance; raw exactly.
	rec := ref.Reconstruct(c)
	if len(rec) != 6 {
		t.Fatalf("reconstruct length %d", len(rec))
	}
	for i := 0; i < 4; i++ {
		if rec[i].Dist(target.Points[i]) > 0.05 {
			t.Fatalf("matched point %d deviates too much", i)
		}
	}
	for i := 4; i < 6; i++ {
		if rec[i] != target.Points[i] {
			t.Fatal("raw tail must be exact")
		}
	}
}

func TestShortMatchFallsBackToRaw(t *testing.T) {
	refPts := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)}
	ref := BuildReference(traj.NewDataset([]*traj.Trajectory{{Points: refPts}}),
		Options{Tolerance: 0.05, MinMatchLen: 3})
	target := &traj.Trajectory{Points: []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)}}
	c := ref.Compress(target)
	// A 2-point match is below MinMatchLen: stored raw.
	if len(c.Segments) != 1 || c.Segments[0].Raw == nil {
		t.Fatalf("segments = %+v", c.Segments)
	}
}

func TestSizeBits(t *testing.T) {
	c := &Compressed{Segments: []Segment{
		{Ref: 0, Off: 0, Len: 10},
		{Raw: []geo.Point{{}, {}}},
	}}
	want := 32 + 96 + 8 + 256
	if got := c.SizeBits(); got != want {
		t.Fatalf("SizeBits = %d, want %d", got, want)
	}
}

func TestCompressDatasetOnSubPorto(t *testing.T) {
	sp := gen.NewSubPorto(25, 8, 11)
	tol := geo.MetersToDegrees(200)
	ref := BuildReference(sp.Reference, Options{Tolerance: tol})
	res := ref.CompressDataset(sp.Compress)
	if res.CompressionRatio() <= 1 {
		t.Fatalf("REST should compress sub-Porto (ratio %v)", res.CompressionRatio())
	}
	if res.MatchedFraction <= 0.3 {
		t.Fatalf("matched fraction %v too low — sub-Porto should be repetitive", res.MatchedFraction)
	}
	if geo.DegreesToMeters(res.MAE) > 200 {
		t.Fatalf("MAE %v m exceeds tolerance", geo.DegreesToMeters(res.MAE))
	}
	if res.CompressTime <= 0 || ref.BuildTime <= 0 {
		t.Fatal("timings missing")
	}
}

func TestRESTRatioImprovesWithTolerance(t *testing.T) {
	// Figure 9c shape: looser spatial deviation ⇒ better matching ⇒
	// higher compression ratio (non-strict: plateaus once fully matched).
	sp := gen.NewSubPorto(20, 6, 12)
	ratio := func(m float64) float64 {
		ref := BuildReference(sp.Reference, Options{Tolerance: geo.MetersToDegrees(m)})
		return ref.CompressDataset(sp.Compress).CompressionRatio()
	}
	tight, loose := ratio(100), ratio(1000)
	if loose < tight*0.8 {
		t.Fatalf("looser tolerance should not collapse ratio: %v vs %v", loose, tight)
	}
}

func TestRESTFailsOnNonRepetitiveData(t *testing.T) {
	// The paper's point about REST: without a repeating reference set the
	// ratio collapses toward raw storage.
	refSet := gen.Porto(gen.Config{NumTrajectories: 10, MinLen: 40, MaxLen: 60, Seed: 20})
	targets := gen.Porto(gen.Config{NumTrajectories: 10, MinLen: 40, MaxLen: 60, Seed: 999})
	ref := BuildReference(refSet, Options{Tolerance: geo.MetersToDegrees(200)})
	res := ref.CompressDataset(targets)
	if res.MatchedFraction > 0.8 {
		t.Fatalf("independent trajectories should not match well (%v)", res.MatchedFraction)
	}
}
