package exec

import (
	"cmp"
	"slices"
)

// The planner is deliberately statistics-free: the only inputs are
// boundaries the routing view already knows (segment tick ranges) and
// selectivity the zone maps already store (populated-cell overlap ×
// tick-span overlap). Greedy ordering over those signals is enough —
// there is no cost model to stale-out and no histogram to maintain.

// TickRange is a closed tick span.
type TickRange struct {
	Lo, Hi int
}

// Empty reports whether the range holds no ticks.
func (r TickRange) Empty() bool { return r.Hi < r.Lo }

// Ticks is the number of ticks in the range.
func (r TickRange) Ticks() int {
	if r.Empty() {
		return 0
	}
	return r.Hi - r.Lo + 1
}

// Clip intersects r with s.
func (r TickRange) Clip(s TickRange) TickRange {
	return TickRange{Lo: max(r.Lo, s.Lo), Hi: min(r.Hi, s.Hi)}
}

// SplitSpan splits the closed span [from, to] at the boundaries of n
// ranged items (segments, periods): for each item i whose range
// intersects the span, emit receives the clipped sub-span. This is the
// one span-splitting helper shared by the window planner and the path
// stitcher, so the two cannot drift.
func SplitSpan(from, to, n int, rangeOf func(i int) TickRange, emit func(i int, r TickRange)) {
	want := TickRange{Lo: from, Hi: to}
	if want.Empty() {
		return
	}
	for i := 0; i < n; i++ {
		if r := rangeOf(i).Clip(want); !r.Empty() {
			emit(i, r)
		}
	}
}

// Scan is one planned per-segment scan.
type Scan struct {
	// ID indexes the caller's segment list.
	ID int
	// Span is the sub-span this scan answers, clipped to the segment.
	Span TickRange
	// Score is the segment's zone-map selectivity estimate for the
	// query (populated-cell overlap × tick-span overlap); zero means
	// the zone map proves the scan empty.
	Score float64
}

// Plan orders scans for execution: zone-disjoint scans (Score == 0) are
// pruned, the rest run largest-estimated-work first — the greedy
// longest-processing-time rule, which keeps the parallel fan-out's
// tail short without any statistics beyond the zone maps. ordered is
// sorted descending by Score with ID as a deterministic tie-break;
// pruned holds the dropped scans ascending by ID (each segment appears
// at most once per plan, so skip accounting is once per plan by
// construction). The plan is built in place: both results alias scans,
// which must not be reused afterwards.
func Plan(scans []Scan) (ordered, pruned []Scan) {
	slices.SortFunc(scans, func(a, b Scan) int {
		ap, bp := a.Score <= 0 || a.Span.Empty(), b.Score <= 0 || b.Span.Empty()
		if ap != bp {
			if ap {
				return 1 // pruned scans sort after every runnable one
			}
			return -1
		}
		if !ap && a.Score != b.Score {
			return cmp.Compare(b.Score, a.Score)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	n := len(scans)
	for n > 0 && (scans[n-1].Score <= 0 || scans[n-1].Span.Empty()) {
		n--
	}
	return scans[:n], scans[n:]
}
