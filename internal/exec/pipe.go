package exec

import (
	"context"
	"sync"

	"ppqtraj/internal/index"
	"ppqtraj/internal/obs"
)

// ScanPipe is the pooled per-scan pipeline — the operator chain every
// planned segment scan runs:
//
//	SegmentScan → CountRows → [Instrument op_scan] →
//	Verify → [Instrument op_verify]
//
// One pool fetch replaces the half-dozen operator, cursor, and scratch
// allocations a compositional executor would otherwise pay per scan,
// which is what keeps the iterator plans within reach of the fused
// pipeline's pooled rangeScratch. The Instrument stages appear only
// when a trace is attached; untraced plans pay nothing for them.
type ScanPipe struct {
	cur    index.RangeCursor
	scan   SegmentScan
	count  CountRowsOp
	verify VerifyOp
	out    Iterator
}

var scanPipePool = sync.Pool{New: func() any { return new(ScanPipe) }}

// OpenScanPipe composes a pooled pipeline over [from, to] of idx. Rows
// the index source emits accumulate into *rows, scan accounting into
// st; tr, when non-nil, adds per-operator time and row facts at the
// op_scan and op_verify boundaries.
func OpenScanPipe(ctx context.Context, idx *index.TPI, rec Reconstructor, cls Classifier, from, to int, st *index.ScanStats, rows *int64, tr *obs.Trace) *ScanPipe {
	p := scanPipePool.Get().(*ScanPipe)
	p.scan.init(ctx, &p.cur, idx, cls, from, to, st)
	p.count = CountRowsOp{in: &p.scan, n: rows}
	p.verify.reset(ctx, Instrument(ctx, &p.count, tr, "op_scan"), rec, cls)
	p.out = Instrument(ctx, &p.verify, tr, "op_verify")
	return p
}

// Iterator is the pipeline's downstream end, ready for a sink.
func (p *ScanPipe) Iterator() Iterator { return p.out }

// Err reports the pipeline's terminal error, if any.
func (p *ScanPipe) Err() error { return p.out.Err() }

// Close returns the pipe's scratch to the pool. The pipeline must be
// drained or abandoned first: batches it returned are invalid after
// Close, as the scratch backing them may be handed to another scan.
func (p *ScanPipe) Close() {
	scanPipePool.Put(p)
}
