package exec

import (
	"context"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/traj"
)

// SegmentScan is the index source: it pulls decoded cell batches from
// an index.RangeCursor, classifying each candidate cell against the
// margin before its postings are decoded — full-reject cells are pruned
// via the cursor's visit hook (no decode, counted CellsSkipped),
// full-accept cells flow out as Sure batches that skip downstream
// verification.
type SegmentScan struct {
	ctx  context.Context
	cur  *index.RangeCursor
	cls  Classifier
	sure bool // classification of the cell the cursor is decoding
	err  error
	out  Batch
	// visitFn is s.visit bound once, so pooled re-inits allocate no
	// closure.
	visitFn func(cell geo.Rect) bool
}

// NewSegmentScan opens a scan of [from, to] against idx. Stats
// accumulate into st exactly as the fused path's index.ScanRange call
// would (margin-rejected cells count as CellsSkipped).
func NewSegmentScan(ctx context.Context, idx *index.TPI, cls Classifier, from, to int, st *index.ScanStats) *SegmentScan {
	s := &SegmentScan{}
	s.init(ctx, new(index.RangeCursor), idx, cls, from, to, st)
	return s
}

// init aims the scan at [from, to] of idx through cur, keeping any
// scratch both already hold — the pooled-pipeline path.
func (s *SegmentScan) init(ctx context.Context, cur *index.RangeCursor, idx *index.TPI, cls Classifier, from, to int, st *index.ScanStats) {
	s.ctx, s.cur, s.cls = ctx, cur, cls
	s.sure, s.err = false, nil
	if s.visitFn == nil {
		s.visitFn = s.visit
	}
	cur.Reset(idx, cls.Area(), from, to, st, s.visitFn)
}

func (s *SegmentScan) visit(cell geo.Rect) bool {
	switch s.cls.Classify(cell) {
	case Reject:
		return false
	case Accept:
		s.sure = true
	default:
		s.sure = false
	}
	return true
}

// Next pulls the next non-empty cell batch.
func (s *SegmentScan) Next() (*Batch, bool) {
	if s.err != nil {
		return nil, false
	}
	if s.err = s.ctx.Err(); s.err != nil {
		return nil, false
	}
	cs, ok := s.cur.Next()
	if !ok {
		return nil, false
	}
	s.out = Batch{Ticks: cs.Ticks, IDs: cs.IDs, Sure: s.sure}
	return &s.out, true
}

func (s *SegmentScan) Err() error { return s.err }

// HotScan is the hot-tail source: per-tick columns snapshotted from the
// unsealed tail flow out one Sure batch per tick (the tail stores raw
// positions, so residency is exact — no margin check applies).
type HotScan struct {
	ctx  context.Context
	cols []Column
	i    int
	err  error
	out  Batch
	tick [1]int
	ids  [1][]traj.ID
}

// NewHotScan wraps already-snapshotted hot-tail columns as a source.
func NewHotScan(ctx context.Context, cols []Column) *HotScan {
	return &HotScan{ctx: ctx, cols: cols}
}

// Next emits the next non-empty column as a single-tick Sure batch.
func (h *HotScan) Next() (*Batch, bool) {
	if h.err != nil {
		return nil, false
	}
	for h.i < len(h.cols) {
		if h.err = h.ctx.Err(); h.err != nil {
			return nil, false
		}
		c := h.cols[h.i]
		h.i++
		if len(c.IDs) == 0 {
			continue
		}
		h.tick[0] = c.Tick
		h.ids[0] = c.IDs
		h.out = Batch{Ticks: h.tick[:], IDs: h.ids[:], Sure: true}
		return &h.out, true
	}
	return nil, false
}

func (h *HotScan) Err() error { return h.err }
