package exec

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync/atomic"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// CollectResult is what a drained pipeline hands the caller.
type CollectResult struct {
	// Cols holds the non-empty per-tick answers, ascending by tick, IDs
	// ascending and deduplicated. Every slice is freshly allocated — no
	// aliasing of iterator scratch or cache entries.
	Cols []Column
	// Candidates counts the kept rows before exact verification — the
	// fused path's RangeResult.Candidates.
	Candidates int
	// Visited counts raw trajectories fetched by exact verification
	// (distinct per plan, zero in approximate mode).
	Visited int
}

// Collect drains in and buckets its rows per tick over [from, to]:
// the approximate-mode sink. Sorting per tick makes the output
// independent of cell emission order, so it is point-for-point the
// fused path's answer.
func Collect(in Iterator, from, to int) (*CollectResult, error) {
	span := to - from + 1
	if span < 0 {
		span = 0
	}
	buckets := make([][]traj.ID, span)
	if err := drain(in, from, to, func(tick int, ids []traj.ID) {
		buckets[tick-from] = append(buckets[tick-from], ids...)
	}); err != nil {
		return nil, err
	}
	res := &CollectResult{}
	for i, ids := range buckets {
		if len(ids) == 0 {
			continue
		}
		slices.Sort(ids)
		ids = traj.DedupSorted(ids)
		res.Candidates += len(ids)
		res.Cols = append(res.Cols, Column{Tick: from + i, IDs: ids})
	}
	return res, nil
}

// RawLookup is the raw-storage contract of exact verification —
// satisfied by traj.Dataset.
type RawLookup interface {
	Lookup(id traj.ID) (*traj.Trajectory, bool)
}

// ErrNoRaw mirrors query.ErrNoRaw for pipelines verified without an
// attached raw store.
var ErrNoRaw = fmt.Errorf("exec: exact verification requires raw dataset access")

// ExactVerify drains in and verifies every row against raw storage,
// batched per trajectory: rows are gathered as (id, tick) pairs, sorted
// id-major, and each distinct trajectory is fetched exactly once for
// all its candidate ticks — the fused path's second-step access
// pattern, and the same Visited accounting. accesses, when non-nil, is
// bumped once per fetch (the engine's RawAccesses counter).
func ExactVerify(ctx context.Context, in Iterator, raw RawLookup, rect geo.Rect, from, to int, accesses *atomic.Int64) (*CollectResult, error) {
	if raw == nil {
		return nil, ErrNoRaw
	}
	span := to - from + 1
	if span < 0 {
		span = 0
	}
	type idTick struct {
		id   traj.ID
		tick int32
	}
	var pairs []idTick
	if err := drain(in, from, to, func(tick int, ids []traj.ID) {
		for _, id := range ids {
			pairs = append(pairs, idTick{id: id, tick: int32(tick)})
		}
	}); err != nil {
		return nil, err
	}
	res := &CollectResult{Candidates: len(pairs)}
	slices.SortFunc(pairs, func(a, b idTick) int {
		if a.id != b.id {
			return cmp.Compare(a.id, b.id)
		}
		return cmp.Compare(a.tick, b.tick)
	})
	cols := make([][]traj.ID, span)
	for i := 0; i < len(pairs); {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		id := pairs[i].id
		res.Visited++
		if accesses != nil {
			accesses.Add(1)
		}
		tr, ok := raw.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("exec: trajectory %d absent from raw dataset: %w", id, ErrNoRaw)
		}
		for ; i < len(pairs) && pairs[i].id == id; i++ {
			t := int(pairs[i].tick)
			if i > 0 && pairs[i-1] == pairs[i] {
				continue // defense in depth; upstream emits each (id, tick) once
			}
			if tp, ok := tr.At(t); ok && rect.Contains(tp) {
				cols[t-from] = append(cols[t-from], id)
			}
		}
	}
	for i, ids := range cols {
		if len(ids) > 0 {
			res.Cols = append(res.Cols, Column{Tick: from + i, IDs: ids})
		}
	}
	return res, nil
}

// AppendIDs drains in and appends every in-span row's ID to dst,
// returning the extended slice — the window query's flattening sink.
// When the caller only needs the distinct-ID union of the whole span
// (sorted and deduplicated once after merging every pipeline), per-tick
// bucketing and sorting are pure overhead, so this sink skips them.
func AppendIDs(in Iterator, from, to int, dst []traj.ID) ([]traj.ID, error) {
	err := drain(in, from, to, func(_ int, ids []traj.ID) {
		dst = append(dst, ids...)
	})
	return dst, err
}

// DistinctIDs drains in and returns the distinct trajectory IDs across
// every tick, ascending — the "which trajectories appeared at all"
// sink.
func DistinctIDs(in Iterator, from, to int) ([]traj.ID, error) {
	var ids []traj.ID
	if err := drain(in, from, to, func(_ int, batch []traj.ID) {
		ids = append(ids, batch...)
	}); err != nil {
		return nil, err
	}
	slices.Sort(ids)
	return traj.DedupSorted(ids), nil
}

// MergeColumns merges per-pipeline column sets (each ascending by tick)
// into one, concatenating and re-deduplicating ticks present in more
// than one set. Inputs whose tick ranges are disjoint — the planner's
// span-split guarantee — merge without any per-ID work.
func MergeColumns(sets ...[]Column) []Column {
	var out []Column
	for _, s := range sets {
		out = append(out, s...)
	}
	slices.SortFunc(out, func(a, b Column) int { return cmp.Compare(a.Tick, b.Tick) })
	w := 0
	for i := 0; i < len(out); {
		j := i + 1
		for j < len(out) && out[j].Tick == out[i].Tick {
			j++
		}
		col := out[i]
		if j > i+1 {
			merged := slices.Clone(col.IDs)
			for _, c := range out[i+1 : j] {
				merged = append(merged, c.IDs...)
			}
			slices.Sort(merged)
			col.IDs = traj.DedupSorted(merged)
		}
		out[w] = col
		w++
		i = j
	}
	return out[:w]
}

// drain pulls in to exhaustion, forwarding every in-span posting.
func drain(in Iterator, from, to int, emit func(tick int, ids []traj.ID)) error {
	for {
		b, ok := in.Next()
		if !ok {
			return in.Err()
		}
		for i, tick := range b.Ticks {
			if tick < from || tick > to {
				continue
			}
			emit(tick, b.IDs[i])
		}
	}
}
