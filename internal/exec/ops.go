package exec

import (
	"context"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/traj"
)

// Reconstructor is the summary-side contract the margin filter checks
// candidates against — the one method of query.Source the executor
// needs (satisfied by core.Summary and every query.Source).
type Reconstructor interface {
	ReconstructedPoint(id traj.ID, tick int) (geo.Point, bool)
}

// VerifyOp filters Check batches by the per-trajectory
// reconstruction-distance test (the local-search filter); Sure batches
// pass through untouched. Its output rows are exactly the fused path's
// per-tick candidate set, before sorting.
type VerifyOp struct {
	ctx  context.Context
	in   Iterator
	rec  Reconstructor
	rect geo.Rect
	m    float64
	err  error

	steps int // rows filtered since the last ctx check
	out   Batch
	ticks []int
	ids   [][]traj.ID
	flat  []traj.ID // backing for the filtered per-tick lists
}

// Verify composes the margin filter over in.
func Verify(ctx context.Context, in Iterator, rec Reconstructor, cls Classifier) *VerifyOp {
	v := &VerifyOp{}
	v.reset(ctx, in, rec, cls)
	return v
}

// reset re-aims the operator, keeping its batch scratch — the pooled-
// pipeline path.
func (v *VerifyOp) reset(ctx context.Context, in Iterator, rec Reconstructor, cls Classifier) {
	v.ctx, v.in, v.rec, v.rect, v.m = ctx, in, rec, cls.Rect, cls.Margin
	v.err, v.steps = nil, 0
}

// Next pulls batches until one survives the filter.
func (v *VerifyOp) Next() (*Batch, bool) {
	if v.err != nil {
		return nil, false
	}
	for {
		if v.err = v.ctx.Err(); v.err != nil {
			return nil, false
		}
		b, ok := v.in.Next()
		if !ok {
			v.err = v.in.Err()
			return nil, false
		}
		if b.Sure {
			return b, true
		}
		v.ticks = v.ticks[:0]
		v.ids = v.ids[:0]
		v.flat = v.flat[:0]
		for i, tick := range b.Ticks {
			st := len(v.flat)
			for _, id := range b.IDs[i] {
				if v.steps++; v.steps%ctxCheckEvery == 0 {
					if v.err = v.ctx.Err(); v.err != nil {
						return nil, false
					}
				}
				rp, ok := v.rec.ReconstructedPoint(id, tick)
				if !ok {
					continue
				}
				if rp.DistToRect(v.rect) <= v.m+1e-12 {
					v.flat = append(v.flat, id)
				}
			}
			if len(v.flat) > st {
				v.ticks = append(v.ticks, tick)
				v.ids = append(v.ids, v.flat[st:len(v.flat):len(v.flat)])
			}
		}
		if len(v.ticks) > 0 {
			v.out = Batch{Ticks: v.ticks, IDs: v.ids}
			return &v.out, true
		}
	}
}

func (v *VerifyOp) Err() error { return v.err }

// LimitOp truncates the stream after n rows — the executor's bounded
// "first-k" escape: pulling stops (and upstream decode with it) as soon
// as the budget is spent.
type LimitOp struct {
	ctx  context.Context
	in   Iterator
	left int
	err  error
	done bool
	out  Batch
	ids  [][]traj.ID
}

// Limit caps the composed stream at n (tick, id) rows.
func Limit(ctx context.Context, in Iterator, n int) *LimitOp {
	return &LimitOp{ctx: ctx, in: in, left: n}
}

// Next passes batches through, clipping the one that crosses the limit.
func (l *LimitOp) Next() (*Batch, bool) {
	if l.err != nil || l.done {
		return nil, false
	}
	if l.err = l.ctx.Err(); l.err != nil {
		return nil, false
	}
	if l.left <= 0 {
		l.done = true
		return nil, false
	}
	b, ok := l.in.Next()
	if !ok {
		l.err = l.in.Err()
		return nil, false
	}
	if rows := b.Rows(); rows <= l.left {
		l.left -= rows
		return b, true
	}
	// Clip the batch at the remaining budget, tick by tick.
	l.ids = l.ids[:0]
	ticks := 0
	for i := range b.Ticks {
		take := b.IDs[i]
		if len(take) > l.left {
			take = take[:l.left]
		}
		l.ids = append(l.ids, take)
		l.left -= len(take)
		ticks++
		if l.left == 0 {
			break
		}
	}
	l.done = true
	l.out = Batch{Ticks: b.Ticks[:ticks], IDs: l.ids, Sure: b.Sure}
	return &l.out, true
}

func (l *LimitOp) Err() error { return l.err }

// CountRowsOp counts rows flowing through an operator boundary into an
// external counter — the serving layer's per-operator metrics hook.
// Unlike Instrument it is unconditional and timer-free, so it is cheap
// enough to leave on the untraced hot path.
type CountRowsOp struct {
	in Iterator
	n  *int64
}

// CountRows accumulates the stream's row count into *n as it flows.
func CountRows(in Iterator, n *int64) *CountRowsOp {
	return &CountRowsOp{in: in, n: n}
}

// Next delegates one pull, counting the emitted batch.
func (c *CountRowsOp) Next() (*Batch, bool) {
	b, ok := c.in.Next()
	if ok {
		*c.n += int64(b.Rows())
	}
	return b, ok
}

func (c *CountRowsOp) Err() error { return c.in.Err() }

// InstrumentOp reports an operator's pull time and emitted rows into an
// obs.Trace: stage <name> accumulates time spent inside this operator's
// subtree, fact <name>_rows counts rows it emitted. Used at operator
// boundaries so ?trace=1 reports per-operator time.
type InstrumentOp struct {
	ctx  context.Context
	in   Iterator
	tr   *obs.Trace
	name string
	err  error
}

// Instrument wraps in with tracing. With tr == nil it returns in
// unchanged — the untraced hot path pays nothing.
func Instrument(ctx context.Context, in Iterator, tr *obs.Trace, name string) Iterator {
	if tr == nil {
		return in
	}
	return &InstrumentOp{ctx: ctx, in: in, tr: tr, name: name}
}

// Next times one pull of the wrapped subtree.
func (o *InstrumentOp) Next() (*Batch, bool) {
	if o.err = o.ctx.Err(); o.err != nil {
		return nil, false
	}
	t0 := time.Now()
	b, ok := o.in.Next()
	o.tr.Observe(o.name, time.Since(t0))
	if !ok {
		o.err = o.in.Err()
		return nil, false
	}
	o.tr.Add(o.name+"_rows", int64(b.Rows()))
	return b, true
}

func (o *InstrumentOp) Err() error { return o.err }
