package exec

import "ppqtraj/internal/geo"

// Class is the once-per-cell margin classification — the rect filter
// pushed below the decode. It reproduces the fused STRQRange's cell
// triage exactly (same geometry, same epsilon), so the two executors
// prune identical cell sets.
type Class uint8

const (
	// Reject: no reconstruction inside the cell can pass the margin
	// filter; the cell is skipped before any posting decode.
	Reject Class = iota
	// Check: the cell straddles the margin boundary; every resident
	// needs the per-trajectory reconstruction-distance check.
	Check
	// Accept: the cell lies entirely within the margin of the query
	// rect, so every resident passes without a reconstruction lookup.
	Accept
)

// Classifier carries one query's rect and local-search margin.
type Classifier struct {
	Rect   geo.Rect
	Margin float64
}

// Area is the index-scan area: the query rect expanded by the margin
// (an over-approximation of the Euclidean margin at the corners; the
// corner cells it admits are cut back by Classify).
func (c Classifier) Area() geo.Rect { return c.Rect.Expand(c.Margin) }

// Classify triages one candidate cell against the margin.
func (c Classifier) Classify(cell geo.Rect) Class {
	switch {
	case cell.MinDist(c.Rect) > c.Margin+1e-12:
		return Reject
	case cell.MaxDist(c.Rect) <= c.Margin:
		return Accept
	default:
		return Check
	}
}
