package exec

import (
	"context"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"ppqtraj/internal/cache"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/traj"
)

// testWorld is a dataset plus a TPI over its *exact* points, so the
// "reconstruction" is the raw position and brute-force answers are
// computable with plain geometry.
type testWorld struct {
	ds  *traj.Dataset
	idx *index.TPI
}

func (w *testWorld) ReconstructedPoint(id traj.ID, tick int) (geo.Point, bool) {
	tr, ok := w.ds.Lookup(id)
	if !ok {
		return geo.Point{}, false
	}
	return tr.At(tick)
}

func buildWorld(t *testing.T, withCache bool) *testWorld {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var trajs []*traj.Trajectory
	for i := 0; i < 60; i++ {
		start := rng.Intn(10)
		n := 20 + rng.Intn(25)
		p := geo.Pt(rng.Float64()*8, rng.Float64()*8)
		pts := make([]geo.Point, 0, n)
		for k := 0; k < n; k++ {
			p = p.Add(geo.Pt(rng.Float64()*0.3-0.15, rng.Float64()*0.3-0.15))
			pts = append(pts, p)
		}
		trajs = append(trajs, &traj.Trajectory{Start: start, Points: pts})
	}
	ds := traj.NewDataset(trajs)
	idx := index.NewTPI(index.Options{EpsS: 2, GC: 0.25, EpsC: 0.5, EpsD: 0.5, Seed: 3})
	for tick := 0; tick < ds.MaxTick(); tick++ {
		var ids []traj.ID
		var pts []geo.Point
		for _, tr := range ds.All() {
			if p, ok := tr.At(tick); ok {
				ids = append(ids, tr.ID)
				pts = append(pts, p)
			}
		}
		if len(ids) > 0 {
			idx.Append(ids, pts, tick)
		}
	}
	if err := idx.Seal(); err != nil {
		t.Fatal(err)
	}
	if withCache {
		idx.SetCache(cache.New(4<<20), 1)
	}
	return &testWorld{ds: ds, idx: idx}
}

// bruteCols computes the ground-truth per-tick columns directly from
// raw points: approximate mode keeps dist(p, rect) ≤ m+1e-12, exact
// mode keeps rect.Contains(p).
func bruteCols(ds *traj.Dataset, rect geo.Rect, m float64, from, to int, exact bool) []Column {
	var cols []Column
	for tick := from; tick <= to; tick++ {
		var ids []traj.ID
		for _, tr := range ds.All() {
			p, ok := tr.At(tick)
			if !ok {
				continue
			}
			if exact {
				if rect.Contains(p) {
					ids = append(ids, tr.ID)
				}
			} else if p.DistToRect(rect) <= m+1e-12 {
				ids = append(ids, tr.ID)
			}
		}
		if len(ids) > 0 {
			slices.Sort(ids)
			cols = append(cols, Column{Tick: tick, IDs: ids})
		}
	}
	return cols
}

func TestPipelineMatchesBruteForce(t *testing.T) {
	for _, withCache := range []bool{false, true} {
		w := buildWorld(t, withCache)
		rng := rand.New(rand.NewSource(99))
		ctx := context.Background()
		for trial := 0; trial < 25; trial++ {
			cx, cy := rng.Float64()*8, rng.Float64()*8
			s := 0.2 + rng.Float64()*1.5
			rect := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + s, MaxY: cy + s}
			m := rng.Float64() * 0.4
			from := rng.Intn(40) - 2
			to := from + rng.Intn(45)
			cls := Classifier{Rect: rect, Margin: m}

			var st index.ScanStats
			it := Verify(ctx, NewSegmentScan(ctx, w.idx, cls, from, to, &st), w, cls)
			got, err := Collect(it, from, to)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteCols(w.ds, rect, m, from, to, false)
			if !reflect.DeepEqual(got.Cols, want) {
				t.Fatalf("approx rect %v m %.3f span %d..%d:\ngot  %v\nwant %v", rect, m, from, to, got.Cols, want)
			}

			var st2 index.ScanStats
			it2 := Verify(ctx, NewSegmentScan(ctx, w.idx, cls, from, to, &st2), w, cls)
			gotX, err := ExactVerify(ctx, it2, w.ds, rect, from, to, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantX := bruteCols(w.ds, rect, m, from, to, true)
			if !reflect.DeepEqual(gotX.Cols, wantX) {
				t.Fatalf("exact rect %v span %d..%d:\ngot  %v\nwant %v", rect, from, to, gotX.Cols, wantX)
			}
			if gotX.Candidates != got.Candidates {
				t.Fatalf("exact candidates %d != approx candidates %d", gotX.Candidates, got.Candidates)
			}
			// Visited must be the distinct-candidate count, not per tick.
			distinct := map[traj.ID]bool{}
			for _, c := range got.Cols {
				for _, id := range c.IDs {
					distinct[id] = true
				}
			}
			if gotX.Visited != len(distinct) {
				t.Fatalf("Visited = %d, want %d distinct candidates", gotX.Visited, len(distinct))
			}
		}
	}
}

func TestHotScanAndMergeColumns(t *testing.T) {
	ctx := context.Background()
	cols := []Column{
		{Tick: 5, IDs: []traj.ID{3, 7}},
		{Tick: 6, IDs: nil}, // empty columns are dropped
		{Tick: 7, IDs: []traj.ID{1}},
	}
	got, err := Collect(NewHotScan(ctx, cols), 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []Column{{Tick: 5, IDs: []traj.ID{3, 7}}, {Tick: 7, IDs: []traj.ID{1}}}
	if !reflect.DeepEqual(got.Cols, want) {
		t.Fatalf("hot scan: %v", got.Cols)
	}

	merged := MergeColumns(
		[]Column{{Tick: 1, IDs: []traj.ID{2, 4}}, {Tick: 3, IDs: []traj.ID{9}}},
		[]Column{{Tick: 2, IDs: []traj.ID{5}}, {Tick: 3, IDs: []traj.ID{4, 9}}},
	)
	wantM := []Column{
		{Tick: 1, IDs: []traj.ID{2, 4}},
		{Tick: 2, IDs: []traj.ID{5}},
		{Tick: 3, IDs: []traj.ID{4, 9}},
	}
	if !reflect.DeepEqual(merged, wantM) {
		t.Fatalf("merge: %v", merged)
	}
}

func TestLimitTruncates(t *testing.T) {
	ctx := context.Background()
	cols := []Column{
		{Tick: 1, IDs: []traj.ID{1, 2, 3}},
		{Tick: 2, IDs: []traj.ID{4, 5}},
		{Tick: 3, IDs: []traj.ID{6}},
	}
	for limit, wantRows := range map[int]int{0: 0, 2: 2, 4: 4, 100: 6} {
		it := Limit(ctx, NewHotScan(ctx, cols), limit)
		rows := 0
		for {
			b, ok := it.Next()
			if !ok {
				break
			}
			rows += b.Rows()
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		if rows != wantRows {
			t.Fatalf("limit %d emitted %d rows, want %d", limit, rows, wantRows)
		}
	}
}

func TestCancelledContextStopsPipeline(t *testing.T) {
	w := buildWorld(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cls := Classifier{Rect: geo.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}, Margin: 0.2}
	var st index.ScanStats
	it := Verify(ctx, NewSegmentScan(ctx, w.idx, cls, 0, 50, &st), w, cls)
	if _, err := Collect(it, 0, 50); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestInstrument(t *testing.T) {
	ctx := context.Background()
	cols := []Column{{Tick: 1, IDs: []traj.ID{1, 2}}, {Tick: 2, IDs: []traj.ID{3}}}

	// nil trace: the wrapper must vanish.
	src := NewHotScan(ctx, cols)
	if it := Instrument(ctx, src, nil, "op_hot"); it != Iterator(src) {
		t.Fatal("nil trace did not pass the iterator through")
	}

	tr := obs.NewTrace()
	it := Instrument(ctx, NewHotScan(ctx, cols), tr, "op_hot")
	got, err := Collect(it, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != 2 {
		t.Fatalf("cols: %v", got.Cols)
	}
	rep := tr.Report()
	if rep.Facts["op_hot_rows"] != 3 {
		t.Fatalf("facts: %v", rep.Facts)
	}
	if _, ok := tr.Stages()["op_hot"]; !ok {
		t.Fatalf("stages: %v", tr.Stages())
	}
}

func TestSplitSpan(t *testing.T) {
	ranges := []TickRange{{0, 9}, {10, 19}, {20, 29}, {40, 49}}
	var got [][3]int
	SplitSpan(5, 44, len(ranges), func(i int) TickRange { return ranges[i] },
		func(i int, r TickRange) { got = append(got, [3]int{i, r.Lo, r.Hi}) })
	want := [][3]int{{0, 5, 9}, {1, 10, 19}, {2, 20, 29}, {3, 40, 44}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("splits: %v", got)
	}
	got = nil
	SplitSpan(10, 5, len(ranges), func(i int) TickRange { return ranges[i] },
		func(i int, r TickRange) { got = append(got, [3]int{i, r.Lo, r.Hi}) })
	if got != nil {
		t.Fatalf("empty span still split: %v", got)
	}
}

func TestPlanOrdersAndPrunes(t *testing.T) {
	ordered, pruned := Plan([]Scan{
		{ID: 0, Span: TickRange{0, 9}, Score: 0.2},
		{ID: 1, Span: TickRange{10, 19}, Score: 0}, // zone-disjoint
		{ID: 2, Span: TickRange{20, 29}, Score: 0.9},
		{ID: 3, Span: TickRange{30, 29}, Score: 0.5}, // empty span
		{ID: 4, Span: TickRange{40, 49}, Score: 0.2}, // ties with 0 → ID order
	})
	var prunedIDs []int
	for _, s := range pruned {
		prunedIDs = append(prunedIDs, s.ID)
	}
	if !reflect.DeepEqual(prunedIDs, []int{1, 3}) {
		t.Fatalf("pruned: %v", pruned)
	}
	var ids []int
	for _, s := range ordered {
		ids = append(ids, s.ID)
	}
	if !reflect.DeepEqual(ids, []int{2, 0, 4}) {
		t.Fatalf("order: %v", ids)
	}
}
