// Package exec is the streaming query executor: a small pull-based
// iterator/operator algebra over the index's cell-batch cursor, plus a
// statistics-free greedy planner. The serving layer previously answered
// every query shape with its own hand-fused pipeline (STRQ, STRQRange,
// Window, Path, hot-tail scan), each duplicating pruning, decode,
// ctx-checking, and merge logic; here those concerns become composable
// operators — a source pulls decoded cell batches lazily, filters are
// pushed below the decode via the cursor's visit hook, verification and
// collection are sinks — so a new query shape is a new composition, not
// a fifth fused path.
//
// The unit of flow is one cell's postings (a Batch), not one row: the
// per-pull overhead is paid once per populated cell (tens per query),
// which keeps the composed pipeline within a few percent of the fused
// loop it replaces (ppqbench -experiment exec measures the gap).
//
// Every iterator is single-goroutine and context-aware: Next observes
// the pipeline's ctx, so a cancelled query stops between cell batches
// without threading abort flags through callbacks (the ctxcancel
// analyzer enforces the Next-loop ctx check for this package).
package exec

import (
	"ppqtraj/internal/traj"
)

// Batch is the unit of data flow: the postings of one cell within the
// plan's span, ticks ascending. Sure marks batches from full-accept
// cells (entirely within the local-search margin) whose rows need no
// per-trajectory reconstruction check. Batches and their slices are
// owned by the producing iterator and valid only until its next Next
// call; the inner ID slices may be shared with the decoded-cell cache
// and must never be modified.
type Batch struct {
	Ticks []int
	IDs   [][]traj.ID
	Sure  bool
}

// Rows counts the batch's (tick, id) rows.
func (b *Batch) Rows() int {
	n := 0
	for _, ids := range b.IDs {
		n += len(ids)
	}
	return n
}

// Column is one tick's final answer: IDs ascending, deduplicated.
type Column struct {
	Tick int
	IDs  []traj.ID
}

// Iterator is the pull contract every source and operator implements.
// Next returns the next non-empty batch, or ok=false when the stream is
// exhausted or failed — the caller must then check Err. Iterators are
// not safe for concurrent use.
type Iterator interface {
	Next() (*Batch, bool)
	// Err reports the first error that terminated the stream (nil on
	// clean exhaustion). Context cancellation surfaces here as ctx.Err().
	Err() error
}

// ctxCheckEvery bounds how many per-row filter steps run between
// context checks inside a single batch, mirroring the fused path's
// cadence: frequent enough that a cancelled query stops within
// microseconds, rare enough to stay invisible in profiles.
const ctxCheckEvery = 64
