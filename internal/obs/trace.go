package obs

import (
	"context"
	"sync"
	"time"
)

// Trace accumulates a per-request stage breakdown: named durations that
// partition the request's wall time, plus integer "facts" (segments
// scanned, cache hits, bytes decoded) recorded by the executors it
// passes through. It rides context.Context via WithTrace/TraceFrom; all
// methods are nil-safe so instrumented code needs no trace-enabled
// branch — an un-traced request pays one nil check per call site.
//
// Stage durations are meant to be contiguous: use Lap to carve the
// request into back-to-back segments so the stage sum approximates wall
// time by construction (the slow-query log's "≥90% accounted" contract).
type Trace struct {
	start time.Time

	mu     sync.Mutex
	last   time.Time
	order  []string
	stages map[string]time.Duration
	facts  map[string]int64
}

// NewTrace starts a trace now.
func NewTrace() *Trace {
	now := time.Now()
	return &Trace{start: now, last: now,
		stages: make(map[string]time.Duration), facts: make(map[string]int64)}
}

type traceKey struct{}

// WithTrace attaches tr to ctx.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace on ctx, nil when absent.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// Lap attributes the time since the previous Lap (or trace start) to the
// named stage and restarts the lap clock: consecutive laps partition the
// request with no gaps. Repeated stage names accumulate.
func (t *Trace) Lap(stage string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.observeLocked(stage, now.Sub(t.last))
	t.last = now
	t.mu.Unlock()
}

// SkipLap restarts the lap clock without attributing the elapsed time to
// any stage — for time that belongs to a caller-owned stage.
func (t *Trace) SkipLap() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.last = time.Now()
	t.mu.Unlock()
}

// Observe adds d to the named stage without touching the lap clock — for
// sub-measurements timed explicitly (a WAL append inside an apply lap).
func (t *Trace) Observe(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.observeLocked(stage, d)
	t.mu.Unlock()
}

func (t *Trace) observeLocked(stage string, d time.Duration) {
	if _, ok := t.stages[stage]; !ok {
		t.order = append(t.order, stage)
	}
	t.stages[stage] += d
}

// Add accumulates an integer fact.
func (t *Trace) Add(fact string, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.facts[fact] += n
	t.mu.Unlock()
}

// StageReport is one stage's accumulated duration in the report.
type StageReport struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"`
}

// TraceReport is the JSON-facing breakdown: wall time, ordered stages,
// and executor facts. It appears inline in ?trace=1 responses and in
// slow-query log lines.
type TraceReport struct {
	WallMs   float64          `json:"wall_ms"`
	StagedMs float64          `json:"staged_ms"` // sum of stage durations
	Stages   []StageReport    `json:"stages"`
	Facts    map[string]int64 `json:"facts,omitempty"`
}

// Report snapshots the trace. Wall time is measured at the call.
func (t *Trace) Report() *TraceReport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := &TraceReport{WallMs: time.Since(t.start).Seconds() * 1e3}
	for _, name := range t.order {
		ms := t.stages[name].Seconds() * 1e3
		r.StagedMs += ms
		r.Stages = append(r.Stages, StageReport{Name: name, Ms: ms})
	}
	if len(t.facts) > 0 {
		r.Facts = make(map[string]int64, len(t.facts))
		for k, v := range t.facts {
			r.Facts[k] = v
		}
	}
	return r
}

// Stages returns the accumulated stage durations (for feeding per-stage
// histograms after the request completes).
func (t *Trace) Stages() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.stages))
	for k, v := range t.stages {
		out[k] = v
	}
	return out
}
