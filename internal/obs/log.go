package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "unknown"
}

// ParseLevel maps a level name to its Level; unknown names default to
// info with ok=false.
func ParseLevel(s string) (Level, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, true
	case "info", "":
		return LevelInfo, true
	case "warn", "warning":
		return LevelWarn, true
	case "error":
		return LevelError, true
	}
	return LevelInfo, false
}

// Format selects the line encoding.
type Format int8

const (
	// FormatText renders "2026-01-02T15:04:05Z INFO msg key=value ...".
	FormatText Format = iota
	// FormatJSON renders one JSON object per line:
	// {"ts":"...","level":"info","msg":"...","key":value,...}.
	FormatJSON
)

// ParseFormat maps a format name to its Format; unknown names default to
// text with ok=false.
func ParseFormat(s string) (Format, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "text", "":
		return FormatText, true
	case "json":
		return FormatJSON, true
	}
	return FormatText, false
}

// Logger is a minimal leveled structured logger: message plus flat
// key-value pairs, one line per event, text or JSON. A nil *Logger
// discards everything, so plumbed components never need a nil check.
// The writer is serialized by an internal mutex.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	level  Level
	format Format
	now    func() time.Time // test seam; defaults to time.Now
}

// NewLogger writes events at or above level to w in the given format.
func NewLogger(w io.Writer, level Level, format Format) *Logger {
	return &Logger{w: w, level: level, format: format, now: time.Now}
}

// Discard returns a non-nil logger that drops everything — the explicit
// silencer for benchmarks and tests. (It must be non-nil so option
// defaulting can tell "silence this" from "not set".)
func Discard() *Logger { return NewLogger(io.Discard, LevelError+1, FormatText) }

// Enabled reports whether events at l would be written.
func (lg *Logger) Enabled(l Level) bool { return lg != nil && l >= lg.level }

// Debug logs at debug level. kv is alternating key, value pairs.
func (lg *Logger) Debug(msg string, kv ...any) { lg.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (lg *Logger) Info(msg string, kv ...any) { lg.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (lg *Logger) Warn(msg string, kv ...any) { lg.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (lg *Logger) Error(msg string, kv ...any) { lg.log(LevelError, msg, kv) }

// Raw writes an already-encoded JSON line (the slow-query log emits its
// own object shape) subject to no level filter. The line is written
// atomically with a trailing newline.
func (lg *Logger) Raw(line []byte) {
	if lg == nil {
		return
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.w.Write(append(line, '\n'))
}

func (lg *Logger) log(l Level, msg string, kv []any) {
	if lg == nil || l < lg.level {
		return
	}
	ts := lg.now().UTC().Format(time.RFC3339Nano)
	var line []byte
	if lg.format == FormatJSON {
		obj := make(map[string]any, len(kv)/2+3)
		obj["ts"] = ts
		obj["level"] = l.String()
		obj["msg"] = msg
		for i := 0; i+1 < len(kv); i += 2 {
			k, ok := kv[i].(string)
			if !ok {
				k = fmt.Sprint(kv[i])
			}
			obj[k] = jsonSafe(kv[i+1])
		}
		line, _ = json.Marshal(obj)
	} else {
		var b strings.Builder
		b.WriteString(ts)
		b.WriteByte(' ')
		b.WriteString(strings.ToUpper(l.String()))
		b.WriteByte(' ')
		b.WriteString(msg)
		for i := 0; i+1 < len(kv); i += 2 {
			fmt.Fprintf(&b, " %v=%v", kv[i], kv[i+1])
		}
		line = []byte(b.String())
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.w.Write(append(line, '\n'))
}

// jsonSafe converts values json.Marshal would reject (errors, arbitrary
// types) to strings.
func jsonSafe(v any) any {
	switch x := v.(type) {
	case nil, bool, string, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64, float32, float64, json.RawMessage:
		return x
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	case fmt.Stringer:
		return x.String()
	default:
		// Structs/maps/slices of basic types marshal fine; fall back to
		// fmt for anything that doesn't.
		if _, err := json.Marshal(x); err == nil {
			return x
		}
		return fmt.Sprint(x)
	}
}

// SortedKeys is a small helper for deterministic test assertions over
// fact maps.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
