package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution. Observe is lock-free: a
// binary search over the (immutable) bounds, one atomic bucket add, and
// one CAS-loop float add for the sum — ~30ns on current hardware, cheap
// enough for one observation per request stage or per fsync.
type Histogram struct {
	bounds []float64       // ascending upper bounds; implicit +Inf after
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Smallest bound with v <= bound; overflow bucket otherwise.
	i, j := 0, len(h.bounds)
	for i < j {
		m := int(uint(i+j) >> 1)
		if h.bounds[m] < v {
			i = m + 1
		} else {
			j = m
		}
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the elapsed time since t0 in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

func (h *Histogram) snapshot() *HistSnap {
	s := &HistSnap{Bounds: h.bounds, Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnap is a point-in-time histogram view.
type HistSnap struct {
	Bounds []float64 // upper bounds; Counts has one extra +Inf bucket
	Counts []uint64  // per-bucket (not cumulative)
	Count  uint64
	Sum    float64
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// within the bucket holding the target rank. Values in the +Inf overflow
// bucket clamp to the largest finite bound. Returns 0 for an empty
// histogram.
func (h *HistSnap) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var seen float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if next >= rank {
			if i == len(h.Bounds) { // overflow bucket
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			frac := (rank - seen) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		seen = next
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Mean returns Sum/Count, 0 when empty.
func (h *HistSnap) Mean() float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// atomicFloat is a float64 updated by CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets spans 1µs..~8.4s in ×2 steps — wide enough for both a
// cache-hit cell decode and a multi-second degraded fsync.
var LatencyBuckets = ExpBuckets(1e-6, 2, 24)

// CountBuckets spans 1..32768 in ×2 steps, for batch sizes and
// per-request object counts.
var CountBuckets = ExpBuckets(1, 2, 16)

// SizeBuckets spans 256B..~64MB in ×4 steps, for payload and decode
// volumes.
var SizeBuckets = ExpBuckets(256, 4, 10)
