package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("t_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Same-name registration returns the same instrument.
	if r.Counter("t_ops_total", "ops") != c {
		t.Fatal("re-registration returned a different counter")
	}
	snap := r.Snapshot()
	if snap.Int("t_ops_total") != 5 || snap.Int("t_depth") != 5 {
		t.Fatalf("snapshot values = %v/%v", snap.Value("t_ops_total"), snap.Value("t_depth"))
	}
	if snap.Value("t_missing") != 0 {
		t.Fatal("missing metric should read 0")
	}
}

func TestRegisterConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("t_x", "")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat_seconds", "latency", []float64{0.001, 0.01, 0.1, 1})
	// 100 observations uniform in (0, 0.1]: quantiles should land inside
	// the right buckets.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.001)
	}
	hs := r.Snapshot().Histogram("t_lat_seconds")
	if hs == nil {
		t.Fatal("histogram snapshot missing")
	}
	if hs.Count != 100 {
		t.Fatalf("count = %d, want 100", hs.Count)
	}
	wantSum := 0.0
	for i := 1; i <= 100; i++ {
		wantSum += float64(i) * 0.001
	}
	if math.Abs(hs.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", hs.Sum, wantSum)
	}
	// Buckets: ≤0.001 → 1 obs; ≤0.01 → 10; ≤0.1 → 100.
	if hs.Counts[0] != 1 || hs.Counts[1] != 9 || hs.Counts[2] != 90 || hs.Counts[3] != 0 || hs.Counts[4] != 0 {
		t.Fatalf("bucket counts = %v", hs.Counts)
	}
	p50 := hs.Quantile(0.50)
	if p50 < 0.01 || p50 > 0.1 {
		t.Fatalf("p50 = %v, want within (0.01, 0.1]", p50)
	}
	p99 := hs.Quantile(0.99)
	if p99 < 0.09 || p99 > 0.1 {
		t.Fatalf("p99 = %v, want within bucket (0.01, 0.1] near its top", p99)
	}
	if q := hs.Quantile(0.999); q > 0.1 {
		t.Fatalf("p999 = %v, want ≤ 0.1", q)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_over", "", []float64{1, 2})
	h.Observe(5)
	h.Observe(10)
	hs := r.Snapshot().Histogram("t_over")
	if hs.Counts[2] != 2 {
		t.Fatalf("overflow bucket = %d, want 2", hs.Counts[2])
	}
	// Overflow quantiles clamp to the largest finite bound.
	if q := hs.Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile = %v, want 2", q)
	}
}

func TestVecs(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("t_req_total", "requests", "endpoint")
	cv.With("query").Add(3)
	cv.With("ingest").Add(7)
	hv := r.HistogramVec("t_stage_seconds", "stages", "stage", []float64{1})
	hv.With("plan").Observe(0.5)
	snap := r.Snapshot()
	if snap.Labeled("t_req_total", "query") != 3 || snap.Labeled("t_req_total", "ingest") != 7 {
		t.Fatalf("labeled values wrong: %+v", snap)
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`t_req_total{endpoint="query"} 3`,
		`t_req_total{endpoint="ingest"} 7`,
		`t_stage_seconds_bucket{stage="plan",le="1"} 1`,
		`t_stage_seconds_bucket{stage="plan",le="+Inf"} 1`,
		`t_stage_seconds_count{stage="plan"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSourceAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("t_fn", "fn gauge", func() float64 { return 42 })
	r.Source(func(emit func(Sample)) {
		emit(Sample{Name: "t_src_total", Help: "from source", Kind: KindCounter, Value: 9})
		emit(Sample{Name: "t_src_labeled", Kind: KindGauge, Label: "class", LabelValue: "a", Value: 1})
		emit(Sample{Name: "t_src_labeled", Kind: KindGauge, Label: "class", LabelValue: "b", Value: 2})
	})
	snap := r.Snapshot()
	if snap.Value("t_fn") != 42 || snap.Value("t_src_total") != 9 {
		t.Fatalf("snapshot: fn=%v src=%v", snap.Value("t_fn"), snap.Value("t_src_total"))
	}
	if snap.Labeled("t_src_labeled", "b") != 2 {
		t.Fatal("labeled source sample missing")
	}
}

func TestPrometheusExpositionShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_a_total", "help with\nnewline and \\ backslash").Add(2)
	h := r.Histogram("t_h_seconds", "hist", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP t_a_total help with\\nnewline and \\\\ backslash\n",
		"# TYPE t_a_total counter\n",
		"t_a_total 2\n",
		"# TYPE t_h_seconds histogram\n",
		`t_h_seconds_bucket{le="0.5"} 1`,
		`t_h_seconds_bucket{le="1"} 2`,
		`t_h_seconds_bucket{le="+Inf"} 3`,
		"t_h_seconds_sum 4\n",
		"t_h_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and end at _count.
	if strings.Index(out, `le="0.5"`) > strings.Index(out, `le="+Inf"`) {
		t.Fatal("buckets out of order")
	}
}

func TestTraceLapPartition(t *testing.T) {
	tr := NewTrace()
	time.Sleep(2 * time.Millisecond)
	tr.Lap("a")
	time.Sleep(2 * time.Millisecond)
	tr.Lap("b")
	tr.Add("cells", 5)
	tr.Add("cells", 2)
	rep := tr.Report()
	if len(rep.Stages) != 2 || rep.Stages[0].Name != "a" || rep.Stages[1].Name != "b" {
		t.Fatalf("stages = %+v", rep.Stages)
	}
	if rep.Facts["cells"] != 7 {
		t.Fatalf("facts = %+v", rep.Facts)
	}
	// Laps are contiguous, so the staged sum accounts for nearly all of
	// wall time (report overhead is the only gap).
	if rep.StagedMs < 0.90*rep.WallMs {
		t.Fatalf("staged %.3fms < 90%% of wall %.3fms", rep.StagedMs, rep.WallMs)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Lap("x")
	tr.Observe("y", time.Second)
	tr.Add("z", 1)
	tr.SkipLap()
	if tr.Report() != nil || tr.Stages() != nil {
		t.Fatal("nil trace should report nil")
	}
	ctx := context.Background()
	if TraceFrom(ctx) != nil {
		t.Fatal("TraceFrom on bare ctx should be nil")
	}
	tr2 := NewTrace()
	if TraceFrom(WithTrace(ctx, tr2)) != tr2 {
		t.Fatal("trace did not round-trip through context")
	}
}

func TestLoggerLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelInfo, FormatText)
	lg.Debug("hidden")
	lg.Info("shown", "k", 1)
	lg.Warn("warned", "err", context.Canceled)
	if out := buf.String(); strings.Contains(out, "hidden") ||
		!strings.Contains(out, "INFO shown k=1") || !strings.Contains(out, "WARN warned") {
		t.Fatalf("text output wrong:\n%s", out)
	}

	buf.Reset()
	jl := NewLogger(&buf, LevelDebug, FormatJSON)
	jl.Error("boom", "count", 3, "cause", context.DeadlineExceeded)
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("invalid JSON line %q: %v", buf.String(), err)
	}
	if obj["level"] != "error" || obj["msg"] != "boom" || obj["count"] != float64(3) ||
		obj["cause"] != context.DeadlineExceeded.Error() {
		t.Fatalf("json fields wrong: %v", obj)
	}

	// Nil and Discard loggers are safe no-ops.
	var nl *Logger
	nl.Info("nope")
	Discard().Error("nope")
	if nl.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestParseHelpers(t *testing.T) {
	if l, ok := ParseLevel("WARN"); !ok || l != LevelWarn {
		t.Fatal("ParseLevel WARN")
	}
	if _, ok := ParseLevel("noise"); ok {
		t.Fatal("ParseLevel should reject unknown")
	}
	if f, ok := ParseFormat("json"); !ok || f != FormatJSON {
		t.Fatal("ParseFormat json")
	}
	if _, ok := ParseFormat("yaml"); ok {
		t.Fatal("ParseFormat should reject unknown")
	}
}

func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	snap := r.Snapshot()
	if snap.Value("ppq_goroutines") < 1 {
		t.Fatalf("goroutines = %v", snap.Value("ppq_goroutines"))
	}
	if snap.Value("ppq_heap_alloc_bytes") <= 0 {
		t.Fatal("heap_alloc missing")
	}
	if snap.Histogram("ppq_gc_pause_seconds") == nil {
		t.Fatal("gc pause histogram missing")
	}
}

// TestRegistryConcurrency hammers every instrument type from many
// goroutines while snapshots run; meaningful under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_c_total", "")
	g := r.Gauge("t_g", "")
	h := r.Histogram("t_h", "", LatencyBuckets)
	cv := r.CounterVec("t_cv_total", "", "k")
	hv := r.HistogramVec("t_hv", "", "k", CountBuckets)
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%3))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-6)
				cv.With(lbl).Inc()
				hv.With(lbl).Observe(float64(i % 64))
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			_ = r.Snapshot().WritePrometheus(&buf)
		}
	}()
	wg.Wait()
	snapWG.Wait()
	snap := r.Snapshot()
	if got := snap.Int("t_c_total"); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	hs := snap.Histogram("t_h")
	if hs.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", hs.Count, workers*iters)
	}
}

// BenchmarkHistogramObserve guards the registry's hot-path overhead; CI
// asserts the recorded ns/op stays under 50.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-6)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
