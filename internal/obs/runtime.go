package obs

import (
	"runtime"
	"sync"
)

// RegisterRuntime wires Go-runtime health metrics into r: goroutine
// count, heap sizes, GC cycle count, and a GC-pause histogram fed from
// runtime.MemStats' pause ring at snapshot time. Costs one
// ReadMemStats per scrape, nothing between scrapes.
func RegisterRuntime(r *Registry) {
	pause := r.Histogram("ppq_gc_pause_seconds",
		"Stop-the-world GC pause durations.", ExpBuckets(1e-6, 2, 18))
	var mu sync.Mutex
	var lastGC uint32
	r.Source(func(emit func(Sample)) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mu.Lock()
		n0 := lastGC
		if ms.NumGC-n0 > 256 { // ring holds the last 256 pauses
			n0 = ms.NumGC - 256
		}
		for n := n0; n < ms.NumGC; n++ {
			pause.Observe(float64(ms.PauseNs[n%256]) / 1e9)
		}
		lastGC = ms.NumGC
		mu.Unlock()

		emit(Sample{Name: "ppq_goroutines", Help: "Live goroutines.",
			Kind: KindGauge, Value: float64(runtime.NumGoroutine())})
		emit(Sample{Name: "ppq_heap_alloc_bytes", Help: "Bytes of allocated heap objects.",
			Kind: KindGauge, Value: float64(ms.HeapAlloc)})
		emit(Sample{Name: "ppq_heap_sys_bytes", Help: "Bytes of heap obtained from the OS.",
			Kind: KindGauge, Value: float64(ms.HeapSys)})
		emit(Sample{Name: "ppq_gc_runs_total", Help: "Completed GC cycles.",
			Kind: KindCounter, Value: float64(ms.NumGC)})
	})
}
