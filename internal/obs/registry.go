// Package obs is the server's observability substrate: a dependency-free,
// lock-cheap metrics registry (atomic counters, gauges, and fixed-bucket
// histograms with quantile extraction), a per-request trace context that
// rides context.Context through the ingest and query pipelines, a small
// leveled structured logger, and Go-runtime collectors. The registry
// renders itself in Prometheus text exposition format, so a scrape
// endpoint needs no client library.
//
// Everything here sits on hot paths — one counter bump per ingest batch,
// one histogram observation per request stage — so the instruments are
// single atomics: Counter.Add is one atomic add, Histogram.Observe is a
// branch-free binary search plus two atomic operations. No instrument
// ever takes a lock after registration.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family for the exposition format.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; Registry.Counter hands out registered ones.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the exposition contract; not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Sample is one metric value emitted by a snapshot source: external state
// (another package's counters) folded into a registry snapshot without
// that package holding registry instruments.
type Sample struct {
	Name string
	Help string
	Kind Kind
	// Label/LabelValue are an optional single label pair ("" = unlabeled).
	Label      string
	LabelValue string
	Value      float64
}

// family is one registered metric name with its series (one per label
// value; "" for unlabeled).
type family struct {
	name    string
	help    string
	kind    Kind
	label   string
	buckets []float64

	mu     sync.Mutex
	order  []string // label values in registration order
	series map[string]any
}

func (f *family) get(labelValue string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if v, ok := f.series[labelValue]; ok {
		return v
	}
	v := mk()
	f.series[labelValue] = v
	f.order = append(f.order, labelValue)
	return v
}

// Registry holds metric families and snapshot sources. All methods are
// safe for concurrent use; instrument operations after registration touch
// only their own atomics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	sources  []func(emit func(Sample))
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the family for name, creating it on first use. A name
// re-registered with a different kind or label is a programming error and
// panics — the exposition format cannot express it.
func (r *Registry) register(name, help string, kind Kind, label string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q (was %s/%q)",
				name, kind, label, f.kind, f.label))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, label: label, buckets: buckets,
		series: make(map[string]any)}
	r.families[name] = f
	return f
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, "", nil)
	return f.get("", func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, "", nil)
	return f.get("", func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read at snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, "", nil)
	f.get("", func() any { return fn })
}

// Histogram registers (or returns the existing) unlabeled histogram with
// the given ascending bucket upper bounds (see LatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, KindHistogram, "", buckets)
	return f.get("", func() any { return newHistogram(buckets) }).(*Histogram)
}

// CounterVec registers a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, label, nil)}
}

// HistogramVec registers a histogram family keyed by one label.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, label, buckets)}
}

// CounterVec hands out per-label-value counters. Callers should cache the
// With result at setup time; With itself takes the family lock.
type CounterVec struct{ f *family }

// With returns the counter for one label value.
func (v *CounterVec) With(labelValue string) *Counter {
	return v.f.get(labelValue, func() any { return &Counter{} }).(*Counter)
}

// HistogramVec hands out per-label-value histograms.
type HistogramVec struct{ f *family }

// With returns the histogram for one label value.
func (v *HistogramVec) With(labelValue string) *Histogram {
	return v.f.get(labelValue, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Source registers a callback that contributes samples to every snapshot:
// the bridge for counters whose source of truth lives in another
// package's own atomics (WAL, admission, cache). Sources run exactly once
// per Snapshot, before the registry's own instruments are read.
func (r *Registry) Source(fn func(emit func(Sample))) {
	r.mu.Lock()
	r.sources = append(r.sources, fn)
	r.mu.Unlock()
}

// SeriesSnap is one series' snapshot value.
type SeriesSnap struct {
	LabelValue string
	Value      float64
	Hist       *HistSnap // non-nil for histograms
}

// FamilySnap is one metric family's snapshot.
type FamilySnap struct {
	Name   string
	Help   string
	Kind   Kind
	Label  string
	Series []SeriesSnap
}

// Snapshot is a point-in-time view of every registered metric, collected
// in one pass so values read from it are as mutually coherent as one
// collection can make them. Build the /v1/stats payload and the /metrics
// exposition from the same Snapshot, never from per-section re-reads.
type Snapshot struct {
	Families []FamilySnap
	index    map[string]int
}

// Snapshot collects all sources and instruments once.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	sources := r.sources
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	snap := &Snapshot{index: make(map[string]int)}
	// Sources first: they may feed registry instruments (the runtime GC
	// collector observes pauses into a registered histogram), and those
	// must be read after the feed.
	var sourceSamples []Sample
	for _, src := range sources {
		src(func(s Sample) { sourceSamples = append(sourceSamples, s) })
	}

	for _, f := range fams {
		fs := FamilySnap{Name: f.name, Help: f.help, Kind: f.kind, Label: f.label}
		f.mu.Lock()
		for _, lv := range f.order {
			switch v := f.series[lv].(type) {
			case *Counter:
				fs.Series = append(fs.Series, SeriesSnap{LabelValue: lv, Value: float64(v.Load())})
			case *Gauge:
				fs.Series = append(fs.Series, SeriesSnap{LabelValue: lv, Value: float64(v.Load())})
			case func() float64:
				fs.Series = append(fs.Series, SeriesSnap{LabelValue: lv, Value: v()})
			case *Histogram:
				h := v.snapshot()
				fs.Series = append(fs.Series, SeriesSnap{LabelValue: lv, Hist: h, Value: h.Sum})
			}
		}
		f.mu.Unlock()
		snap.index[fs.Name] = len(snap.Families)
		snap.Families = append(snap.Families, fs)
	}

	for _, s := range sourceSamples {
		i, ok := snap.index[s.Name]
		if !ok {
			i = len(snap.Families)
			snap.index[s.Name] = i
			snap.Families = append(snap.Families, FamilySnap{Name: s.Name, Help: s.Help, Kind: s.Kind, Label: s.Label})
		}
		fs := &snap.Families[i]
		fs.Series = append(fs.Series, SeriesSnap{LabelValue: s.LabelValue, Value: s.Value})
	}

	sort.Slice(snap.Families, func(i, j int) bool { return snap.Families[i].Name < snap.Families[j].Name })
	for i := range snap.Families {
		snap.index[snap.Families[i].Name] = i
	}
	return snap
}

// Value returns the value of name's sole (or first) series, 0 when
// absent — counters and gauges read as their natural zero.
func (s *Snapshot) Value(name string) float64 {
	if i, ok := s.index[name]; ok && len(s.Families[i].Series) > 0 {
		return s.Families[i].Series[0].Value
	}
	return 0
}

// Int returns Value truncated to int64 (counters are integral by
// construction; float64 holds them exactly up to 2^53).
func (s *Snapshot) Int(name string) int64 { return int64(s.Value(name)) }

// Labeled returns the value of the series with the given label value.
func (s *Snapshot) Labeled(name, labelValue string) float64 {
	if i, ok := s.index[name]; ok {
		for _, sr := range s.Families[i].Series {
			if sr.LabelValue == labelValue {
				return sr.Value
			}
		}
	}
	return 0
}

// Histogram returns name's sole (or first) histogram snapshot, nil when
// absent.
func (s *Snapshot) Histogram(name string) *HistSnap {
	if i, ok := s.index[name]; ok && len(s.Families[i].Series) > 0 {
		return s.Families[i].Series[0].Hist
	}
	return nil
}
