package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one line per series,
// histograms as cumulative le-labeled buckets plus _sum and _count.
// Families render sorted by name (Snapshot already sorts).
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, f := range s.Families {
		if len(f.Series) == 0 {
			continue
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, sr := range f.Series {
			if err := writeSeries(w, f, sr); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f FamilySnap, sr SeriesSnap) error {
	if sr.Hist == nil {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labelPart(f.Label, sr.LabelValue, ""), formatValue(sr.Value))
		return err
	}
	h := sr.Hist
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = formatValue(h.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelPart(f.Label, sr.LabelValue, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, labelPart(f.Label, sr.LabelValue, ""), formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labelPart(f.Label, sr.LabelValue, ""), h.Count)
	return err
}

// labelPart renders the {label="value",le="bound"} section, omitting
// empty parts.
func labelPart(label, value, le string) string {
	var parts []string
	if label != "" {
		parts = append(parts, label+`="`+escapeLabel(value)+`"`)
	}
	if le != "" {
		parts = append(parts, `le="`+le+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatValue(v float64) string {
	// Integral values (counters, bucket bounds like 1024) render without
	// an exponent for readability; everything else uses shortest-float.
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
