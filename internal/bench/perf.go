package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ppqtraj/internal/core"
	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/query"
	"ppqtraj/internal/traj"
)

// PerfRun is one measurement of the three hot paths on the standard
// SyntheticPorto(2000, 42) workload — the numbers BENCH_PPQ.json tracks
// across PRs (speed_bench_test.go measures the same paths under
// `go test -bench`).
type PerfRun struct {
	Label                     string  `json:"label"`
	GoMaxProcs                int     `json:"gomaxprocs"`
	Points                    int     `json:"points"`
	BuildSpatialPointsPerSec  float64 `json:"build_spatial_points_per_sec"`
	BuildAutocorrPointsPerSec float64 `json:"build_autocorr_points_per_sec"`
	EngineBuildMS             float64 `json:"engine_build_ms"`
	EngineBuildPointsPerSec   float64 `json:"engine_build_points_per_sec"`
	STRQApproxMicros          float64 `json:"strq_approx_us"`
}

// PerfFile is the on-disk shape of BENCH_PPQ.json: one run per recorded
// state of the code, oldest first. ServeRuns tracks the repository
// serving layer's mixed-workload numbers (ppqbench -experiment serve);
// CacheRuns the decoded-cell cache's cached-vs-cold replay numbers
// (ppqbench -experiment cache).
type PerfFile struct {
	Dataset   string     `json:"dataset"`
	Note      string     `json:"note,omitempty"`
	Runs      []PerfRun  `json:"runs"`
	ServeRuns []ServeRun `json:"serve_runs,omitempty"`
	CacheRuns []CacheRun `json:"cache_runs,omitempty"`
	// WALRuns tracks ingest throughput under each WAL sync policy plus
	// crash-replay speed (ppqbench -experiment wal).
	WALRuns []WALRun `json:"wal_runs,omitempty"`
	// WindowRuns tracks the window executor's 512-tick replay: per-tick
	// baseline vs range-scan medians and zone-map skip rates (ppqbench
	// -experiment window).
	WindowRuns []WindowRun `json:"window_runs,omitempty"`
	// LoadRuns tracks the overload ladder: open-loop offered QPS vs
	// served QPS, shed rate, and served-latency percentiles against a
	// fully-armed server (ppqbench -experiment load).
	LoadRuns []LoadRun `json:"load_runs,omitempty"`
	// ObsRuns tracks the metrics registry's hot-path overhead: ns per
	// counter increment / histogram observation / trace lap (ppqbench
	// -experiment obs).
	ObsRuns []ObsRun `json:"obs_runs,omitempty"`
	// ExecRuns tracks the iterator executor against the fused floor on
	// the 512-tick window replay: medians per executor, their ratio, and
	// the iterator's plan/operator telemetry (ppqbench -experiment exec).
	ExecRuns []ExecRun `json:"exec_runs,omitempty"`
	// ReplRuns tracks WAL-shipped replication: cold-follower catch-up
	// bandwidth and the sampled staleness of a follower tailing full-rate
	// ingest (ppqbench -experiment repl).
	ReplRuns []ReplRun `json:"repl_runs,omitempty"`
}

// perfData materializes the standard perf workload and its column stream.
func perfData() (*traj.Dataset, []*traj.Column) {
	d := gen.Porto(gen.Config{NumTrajectories: 2000, MinLen: 30, MaxLen: 200, Seed: 42})
	var cols []*traj.Column
	_ = d.Stream(func(col *traj.Column) error {
		cols = append(cols, &traj.Column{
			Tick:   col.Tick,
			IDs:    append([]traj.ID(nil), col.IDs...),
			Points: append([]geo.Point(nil), col.Points...),
		})
		return nil
	})
	return d, cols
}

func perfOpts(mode partition.Mode) core.Options {
	epsP := 0.1
	if mode == partition.Autocorr {
		epsP = 0.2
	}
	o := core.DefaultOptions(mode, epsP)
	o.Seed = 7
	return o
}

// Perf measures the hot paths and returns the run; human-readable lines
// go to w (nil for silent).
func Perf(label string, w io.Writer) PerfRun {
	d, cols := perfData()
	run := PerfRun{
		Label:      label,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Points:     d.NumPoints(),
	}

	buildRate := func(mode partition.Mode) (*core.Summary, float64) {
		b := core.NewBuilder(perfOpts(mode))
		start := time.Now()
		for _, col := range cols {
			b.Append(col)
		}
		elapsed := time.Since(start).Seconds()
		return b.Summary(), float64(d.NumPoints()) / elapsed
	}
	sum, rate := buildRate(partition.Spatial)
	run.BuildSpatialPointsPerSec = rate
	_, run.BuildAutocorrPointsPerSec = buildRate(partition.Autocorr)

	idxOpts := indexOptions(Porto)
	start := time.Now()
	eng, err := query.BuildEngine(sum, idxOpts, d)
	if err != nil {
		panic(err)
	}
	engineSecs := time.Since(start).Seconds()
	run.EngineBuildMS = engineSecs * 1e3
	run.EngineBuildPointsPerSec = float64(sum.NumPoints) / engineSecs

	// One probe per column, striding through the stream.
	start = time.Now()
	n := 0
	for _, col := range cols {
		eng.STRQ(context.Background(), col.Points[len(col.Points)/2], col.Tick, false, nil) //nolint:errcheck // approximate mode never errors
		n++
	}
	run.STRQApproxMicros = time.Since(start).Seconds() * 1e6 / float64(n)

	fprintf(w, "== perf: %s (GOMAXPROCS=%d, %d points) ==\n", label, run.GoMaxProcs, run.Points)
	fprintf(w, "  build  spatial   %12.0f points/s\n", run.BuildSpatialPointsPerSec)
	fprintf(w, "  build  autocorr  %12.0f points/s\n", run.BuildAutocorrPointsPerSec)
	fprintf(w, "  engine build     %12.1f ms  (%.0f points/s)\n", run.EngineBuildMS, run.EngineBuildPointsPerSec)
	fprintf(w, "  STRQ approx      %12.2f µs/query\n", run.STRQApproxMicros)
	return run
}

// AppendPerf runs Perf and appends the result to the JSON history at
// path (creating it when absent), so successive PRs accumulate a perf
// trajectory.
func AppendPerf(path, label string, w io.Writer) error {
	pf := PerfFile{Dataset: "SyntheticPorto(2000, 42)"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &pf); err != nil {
			return fmt.Errorf("bench: parsing %s: %w", path, err)
		}
	}
	pf.Runs = append(pf.Runs, Perf(label, w))
	return writePerfFile(path, &pf)
}

// writePerfFile rewrites the history file without HTML escaping, so
// curated note strings with <, >, & survive re-marshalling.
func writePerfFile(path string, pf *PerfFile) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
