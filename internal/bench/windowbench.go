package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/serve"
	"ppqtraj/internal/traj"
)

// WindowRun is one window-replay measurement: the same set of long
// (default 512-tick) window queries is answered by the legacy per-tick
// executor and by the segment-native range-scan executor, cold (fresh
// caches) and warm. The speedup is the range executor's win on the median
// window; the skip counters report the zone-map planner's pruning rate.
type WindowRun struct {
	Label           string  `json:"label"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	Points          int     `json:"points"`
	Segments        int     `json:"segments"`
	SpanTicks       int     `json:"span_ticks"`
	Windows         int     `json:"windows"`
	PerTickMS       float64 `json:"per_tick_ms_median"`
	RangeColdMS     float64 `json:"range_cold_ms_median"`
	RangeWarmMS     float64 `json:"range_warm_ms_median"`
	Speedup         float64 `json:"speedup_per_tick_over_range_warm"`
	SpeedupCold     float64 `json:"speedup_per_tick_over_range_cold"`
	SegmentsScanned int64   `json:"segments_scanned"`
	SegmentsSkipped int64   `json:"segments_skipped"`
	CellsScanned    int64   `json:"cells_scanned"`
	CellsSkipped    int64   `json:"cells_skipped"`
	CellSkipRate    float64 `json:"cell_skip_rate"`
}

// windowSpanTicks is the replayed window length: long enough that the
// per-tick executor's repeated cell resolution dominates, matching the
// "wide monitoring window" workload the range scan exists for.
const windowSpanTicks = 512

// windowWarmPasses is how many warm replays are taken per executor; the
// recorded number is the median.
const windowWarmPasses = 3

// windowData is the window workload: a staggered stream whose ticks span
// comfortably more than windowSpanTicks, so a 512-tick window crosses
// many sealed segments.
func windowData() []*traj.Column {
	d := gen.Porto(gen.Config{NumTrajectories: 900, MinLen: 60, MaxLen: 180, Horizon: 430, Seed: 42})
	var cols []*traj.Column
	_ = d.Stream(func(col *traj.Column) error {
		cols = append(cols, &traj.Column{
			Tick:   col.Tick,
			IDs:    append([]traj.ID(nil), col.IDs...),
			Points: append([]geo.Point(nil), col.Points...),
		})
		return nil
	})
	return cols
}

// WindowBench seals the staggered window workload into segments, then
// replays `windows` fixed 512-tick window queries (rects anchored on data
// positions, one deliberately off-data to exercise the zone-map planner)
// through both executors. windows ≤ 0 selects the 16-window default.
// Human-readable lines go to w (nil for silent).
func WindowBench(label string, windows int, w io.Writer) WindowRun {
	cols := windowData()
	if windows <= 0 {
		windows = 16
	}
	points := 0
	for _, col := range cols {
		points += col.Len()
	}
	run := WindowRun{
		Label:      label,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Points:     points,
		SpanTicks:  windowSpanTicks,
		Windows:    windows,
	}

	repo, err := serve.Open(serve.Options{
		Build:           perfOpts(partition.Spatial),
		Index:           indexOptions(Porto),
		HotTicks:        64,
		MaxSegmentTicks: 64,
		CompactInterval: time.Hour, // compaction driven by the final Flush only
	})
	if err != nil {
		panic(err)
	}
	defer repo.Close()
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			panic(err)
		}
	}
	if err := repo.Flush(); err != nil {
		panic(err)
	}
	run.Segments = repo.Stats().Segments

	// The window set: rects a few g_c cells wide centered on sampled data
	// positions, replayed verbatim by both executors; the final window
	// sits far off the data so the zone-map planner gets to prune whole
	// segments.
	rng := rand.New(rand.NewSource(555))
	gc := indexOptions(Porto).GC
	lastTick := cols[len(cols)-1].Tick
	type win struct {
		rect     geo.Rect
		from, to int
	}
	wins := make([]win, windows)
	for i := range wins {
		col := cols[rng.Intn(len(cols))]
		p := col.Points[rng.Intn(col.Len())]
		half := gc * (2 + 2*rng.Float64())
		from := rng.Intn(max(1, lastTick-windowSpanTicks+1))
		wins[i] = win{
			rect: geo.Rect{MinX: p.X - half, MinY: p.Y - half, MaxX: p.X + half, MaxY: p.Y + half},
			from: from, to: from + windowSpanTicks - 1,
		}
	}
	wins[len(wins)-1].rect = geo.Rect{MinX: 20, MinY: 20, MaxX: 20.01, MaxY: 20.01}

	ctx := context.Background()
	replay := func(perTick bool) float64 {
		times := make([]float64, len(wins))
		for i, wn := range wins {
			start := time.Now()
			var err error
			if perTick {
				_, err = repo.WindowPerTick(ctx, wn.rect, wn.from, wn.to, false)
			} else {
				_, err = repo.Window(ctx, wn.rect, wn.from, wn.to, false)
			}
			if err != nil {
				panic(err)
			}
			times[i] = time.Since(start).Seconds() * 1e3
		}
		sort.Float64s(times)
		return times[len(times)/2]
	}
	median := func(xs []float64) float64 {
		sort.Float64s(xs)
		return xs[len(xs)/2]
	}

	// Range executor first, on completely cold caches (the fair "first
	// query after sealing" number), then warmed. The per-tick baseline
	// runs last, over caches the range passes already filled — any bias
	// favors the baseline, so the recorded speedup is conservative.
	run.RangeColdMS = replay(false)
	warm := make([]float64, windowWarmPasses)
	for p := range warm {
		warm[p] = replay(false)
	}
	run.RangeWarmMS = median(warm)
	pt := make([]float64, windowWarmPasses)
	for p := range pt {
		pt[p] = replay(true)
	}
	run.PerTickMS = median(pt)
	if run.RangeWarmMS > 0 {
		run.Speedup = run.PerTickMS / run.RangeWarmMS
	}
	if run.RangeColdMS > 0 {
		run.SpeedupCold = run.PerTickMS / run.RangeColdMS
	}

	st := repo.Stats()
	run.SegmentsScanned = st.Window.SegmentsScanned
	run.SegmentsSkipped = st.Window.SegmentsSkipped
	run.CellsScanned = st.Window.CellsScanned
	run.CellsSkipped = st.Window.CellsSkipped
	if total := run.CellsScanned + run.CellsSkipped; total > 0 {
		run.CellSkipRate = float64(run.CellsSkipped) / float64(total)
	}

	fprintf(w, "== window: %s (GOMAXPROCS=%d, %d points, %d segments, %d windows × %d ticks) ==\n",
		label, run.GoMaxProcs, run.Points, run.Segments, run.Windows, run.SpanTicks)
	fprintf(w, "  per-tick         %12.2f ms/window (median, warm)\n", run.PerTickMS)
	fprintf(w, "  range cold       %12.2f ms/window (median, empty cache)\n", run.RangeColdMS)
	fprintf(w, "  range warm       %12.2f ms/window (median of %d passes)\n", run.RangeWarmMS, windowWarmPasses)
	fprintf(w, "  speedup          %12.2fx per-tick/range-warm (%.2fx vs cold)\n", run.Speedup, run.SpeedupCold)
	fprintf(w, "  zone pruning     %d/%d segments skipped, cell skip rate %.1f%% (%d scanned, %d skipped)\n",
		run.SegmentsSkipped, run.SegmentsSkipped+run.SegmentsScanned,
		100*run.CellSkipRate, run.CellsScanned, run.CellsSkipped)
	return run
}

// AppendWindow runs WindowBench and appends the result to the JSON
// history at path (sharing the file with the other experiment runs).
func AppendWindow(path, label string, windows int, w io.Writer) error {
	pf := PerfFile{Dataset: "SyntheticPorto(2000, 42)"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &pf); err != nil {
			return fmt.Errorf("bench: parsing %s: %w", path, err)
		}
	}
	pf.WindowRuns = append(pf.WindowRuns, WindowBench(label, windows, w))
	return writePerfFile(path, &pf)
}
