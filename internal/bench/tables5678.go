package bench

import (
	"io"
	"time"

	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/traj"
)

// Deviations is the spatial-deviation sweep of Tables 5–6 and Figure 9.
var Deviations = []float64{200, 400, 600, 800, 1000}

// Table56Row carries one method×deviation build: running time (Table 5)
// and codebook size (Table 6).
type Table56Row struct {
	Method    string
	Dataset   DatasetName
	DevMeters float64
	BuildTime time.Duration
	Codewords int
	SizeBytes int
	Ratio     float64 // compression ratio (reused by Figure 9)
}

// Table56 regenerates Tables 5 and 6 in one pass (the paper derives both
// from the same runs): error-bounded builds across spatial deviations,
// reporting build time and codeword counts. The rows also carry the
// compression ratios that Figure 9a/9b plot.
func Table56(s Scale, w io.Writer) []Table56Row {
	var rows []Table56Row
	for _, dsName := range []DatasetName{Porto, GeoLife} {
		d := s.Data(dsName)
		raw := d.RawBytes()
		fprintf(w, "== Tables 5+6 (%s): build time (s) | #codewords | compression ratio ==\n", dsName)
		for _, method := range BoundedMethods {
			fprintf(w, "  %-24s", method)
			for _, dev := range Deviations {
				b := BuildBounded(method, dsName, d, dev)
				ratio := float64(raw) / float64(b.SizeBytes)
				rows = append(rows, Table56Row{
					Method: method, Dataset: dsName, DevMeters: dev,
					BuildTime: b.BuildTime, Codewords: b.Codewords,
					SizeBytes: b.SizeBytes, Ratio: ratio,
				})
				fprintf(w, "  %4.0fm:%6.2fs|%6d|%5.1fx",
					dev, b.BuildTime.Seconds(), b.Codewords, ratio)
			}
			fprintf(w, "\n")
		}
		fprintf(w, "\n")
	}
	return rows
}

// TPIStatsRow is one sweep point of Tables 7/8: TPI characteristics under
// varying ε_c or ε_d.
type TPIStatsRow struct {
	Param      string // "eps_c" or "eps_d"
	Value      float64
	Dataset    DatasetName
	SizeBytes  int
	BuildTime  time.Duration
	Periods    int
	Insertions int
}

// tpiSweep is the shared Tables 7/8 driver: build a TPI over the raw
// stream with one knob swept.
func tpiSweep(s Scale, w io.Writer, param string, values []float64) []TPIStatsRow {
	var rows []TPIStatsRow
	for _, dsName := range []DatasetName{Porto, GeoLife} {
		// Staggered starts make density genuinely evolve so the
		// re-build/insert machinery is exercised.
		var d *traj.Dataset
		if dsName == Porto {
			d = gen.Porto(gen.Config{
				NumTrajectories: s.PortoTrajs, MinLen: s.PortoMinLen,
				MaxLen: s.PortoMaxLen, Horizon: s.PortoMaxLen, Seed: s.Seed,
			})
		} else {
			d = gen.GeoLife(gen.Config{
				NumTrajectories: s.GeoLifeTrajs, MinLen: s.GeoLifeMinLen,
				MaxLen: s.GeoLifeMaxLen, Horizon: s.GeoLifeMinLen, Seed: s.Seed,
			})
		}
		fprintf(w, "== TPI sweep over %s (%s): size | time | periods | insertions ==\n", param, dsName)
		for _, v := range values {
			opts := indexOptions(dsName)
			if param == "eps_c" {
				opts.EpsC = v
			} else {
				opts.EpsD = v
			}
			tpi := index.NewTPI(opts)
			_ = d.Stream(func(col *traj.Column) error {
				tpi.Append(col.IDs, col.Points, col.Tick)
				return nil
			})
			if err := tpi.Seal(); err != nil {
				panic(err)
			}
			st := tpi.Stats()
			row := TPIStatsRow{
				Param: param, Value: v, Dataset: dsName,
				SizeBytes: tpi.SizeBytes(), BuildTime: st.BuildTime,
				Periods: tpi.NumPeriods(), Insertions: st.Insertions,
			}
			rows = append(rows, row)
			fprintf(w, "  %s=%.1f: %8.1f KB  %8.3f s  %4d periods  %5d insertions\n",
				param, v, float64(row.SizeBytes)/1e3, row.BuildTime.Seconds(),
				row.Periods, row.Insertions)
		}
		fprintf(w, "\n")
	}
	return rows
}

// Table7 regenerates Table 7: TPI statistics across ε_c (ε_d fixed 0.5).
func Table7(s Scale, w io.Writer) []TPIStatsRow {
	return tpiSweep(s, w, "eps_c", []float64{0.2, 0.4, 0.6, 0.8})
}

// Table8 regenerates Table 8: TPI statistics across ε_d (ε_c fixed 0.5).
func Table8(s Scale, w io.Writer) []TPIStatsRow {
	return tpiSweep(s, w, "eps_d", []float64{0.2, 0.4, 0.6, 0.8})
}

// geoDeg is a tiny alias to keep call sites in this package short.
func geoDeg(m float64) float64 { return geo.MetersToDegrees(m) }
