package bench

import (
	"io"
	"sort"
	"time"

	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/store"
	"ppqtraj/internal/traj"
	"ppqtraj/internal/trajstore"
)

// Table9Row is one index's disk profile (paper Table 9).
type Table9Row struct {
	Index        string // "TPI", "PI", "TrajStore"
	Dataset      DatasetName
	SizeBytes    int
	IOs          int
	ResponseTime time.Duration
	BuildTime    time.Duration
}

// table9PageSize scales the paper's 1 MB pages to this harness's MB-scale
// datasets (the paper's data is GB-scale): 4 KB keeps page counts in a
// comparable regime.
const table9PageSize = 4 << 10

// table9PageLatency is the simulated cost of one random page read
// (SSD-class, documented in DESIGN.md): response times are CPU time plus
// this charge per I/O, so the response column reflects the access
// pattern rather than the in-memory simulation's speed.
const table9PageLatency = 100 * time.Microsecond

// perTickPI is the non-temporal strawman ("PI" in Table 9): one fresh
// partition-based index per timestamp, no reuse.
type perTickPI struct {
	pis map[int]*index.PI
}

func buildPerTickPI(d *traj.Dataset, opts index.Options) (*perTickPI, time.Duration, error) {
	p := &perTickPI{pis: make(map[int]*index.PI)}
	start := time.Now()
	err := d.Stream(func(col *traj.Column) error {
		pi := index.BuildPI(col.IDs, col.Points, col.Tick, opts.EpsS, opts.GC, opts.Seed)
		if err := pi.Seal(); err != nil {
			return err
		}
		p.pis[col.Tick] = pi
		return nil
	})
	return p, time.Since(start), err
}

func (p *perTickPI) sizeBytes() int {
	n := 0
	for _, pi := range p.pis {
		n += pi.SizeBytes()
	}
	return n
}

func (p *perTickPI) assignPages(ps *store.PageStore) {
	ticks := make([]int, 0, len(p.pis))
	for t := range p.pis {
		ticks = append(ticks, t)
	}
	sort.Ints(ticks)
	for _, t := range ticks {
		p.pis[t].AssignPages(ps)
	}
}

func (p *perTickPI) lookup(q geo.Point, tick int, rt *store.ReadTracker) []traj.ID {
	pi := p.pis[tick]
	if pi == nil {
		return nil
	}
	// The degenerate-rect area probe is the point lookup with page-read
	// accounting.
	return pi.LookupArea(geo.Rect{MinX: q.X, MinY: q.Y, MaxX: q.X, MaxY: q.Y}, tick, rt)
}

// Table9 regenerates Table 9: disk-based comparison of TPI (ε_d = 0.8,
// ε_c = 0.5, per the paper), per-tick PI, and TrajStore — index size,
// number of I/Os over Scale.Queries queries sorted by start time,
// response time, and build time. All three index the raw trajectory
// points (end of §5.1 / §6.5).
func Table9(s Scale, w io.Writer) []Table9Row {
	var rows []Table9Row
	for _, dsName := range []DatasetName{Porto, GeoLife} {
		var d *traj.Dataset
		if dsName == Porto {
			d = gen.Porto(gen.Config{
				NumTrajectories: s.PortoTrajs, MinLen: s.PortoMinLen,
				MaxLen: s.PortoMaxLen, Horizon: s.PortoMaxLen, Seed: s.Seed,
			})
		} else {
			d = gen.GeoLife(gen.Config{
				NumTrajectories: s.GeoLifeTrajs, MinLen: s.GeoLifeMinLen,
				MaxLen: s.GeoLifeMaxLen, Horizon: s.GeoLifeMinLen, Seed: s.Seed,
			})
		}
		// Queries sorted by start time, as in the paper.
		qp, qt := queryPoints(d, s.Queries, s.Seed+400)
		order := make([]int, len(qt))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return qt[order[a]] < qt[order[b]] })

		fprintf(w, "== Table 9 (%s): size | #I/Os | response | build ==\n", dsName)

		// --- TPI (ε_d = 0.8, ε_c = 0.5) ---
		tpiOpts := indexOptions(dsName)
		tpiOpts.EpsD = 0.8
		tpi := index.NewTPI(tpiOpts)
		tpiBuildStart := time.Now()
		_ = d.Stream(func(col *traj.Column) error {
			tpi.Append(col.IDs, col.Points, col.Tick)
			return nil
		})
		if err := tpi.Seal(); err != nil {
			panic(err)
		}
		tpiBuild := time.Since(tpiBuildStart)
		ps := store.New(table9PageSize)
		tpi.AssignPages(ps)
		ps.ResetCounters()
		qStart := time.Now()
		for _, i := range order {
			rt := ps.BeginRead()
			tpi.LookupArea(geo.Rect{MinX: qp[i].X, MinY: qp[i].Y, MaxX: qp[i].X, MaxY: qp[i].Y}, qt[i], rt)
		}
		resp := time.Since(qStart) + time.Duration(ps.Reads())*table9PageLatency
		rows = append(rows, emit9(w, "TPI", dsName, tpi.SizeBytes(), ps.Reads(), resp, tpiBuild))

		// --- per-tick PI ---
		pt, ptBuild, err := buildPerTickPI(d, indexOptions(dsName))
		if err != nil {
			panic(err)
		}
		ps = store.New(table9PageSize)
		pt.assignPages(ps)
		ps.ResetCounters()
		qStart = time.Now()
		for _, i := range order {
			rt := ps.BeginRead()
			pt.lookup(qp[i], qt[i], rt)
		}
		resp = time.Since(qStart) + time.Duration(ps.Reads())*table9PageLatency
		rows = append(rows, emit9(w, "PI", dsName, pt.sizeBytes(), ps.Reads(), resp, ptBuild))

		// --- TrajStore ---
		ts := trajstore.New(trajstore.Options{Region: d.BoundingRect().Expand(1e-6)})
		tsBuildStart := time.Now()
		_ = d.Stream(func(col *traj.Column) error {
			ts.Append(col.IDs, col.Points, col.Tick)
			return nil
		})
		tsBuild := time.Since(tsBuildStart)
		ps = store.New(table9PageSize)
		ts.AssignPages(ps)
		ps.ResetCounters()
		qStart = time.Now()
		for _, i := range order {
			rt := ps.BeginRead()
			ts.Lookup(qp[i], qt[i], rt)
		}
		resp = time.Since(qStart) + time.Duration(ps.Reads())*table9PageLatency
		rows = append(rows, emit9(w, "TrajStore", dsName, ts.SizeBytes(), ps.Reads(), resp, tsBuild))
		fprintf(w, "\n")
	}
	return rows
}

func emit9(w io.Writer, name string, ds DatasetName, size, ios int, resp, build time.Duration) Table9Row {
	fprintf(w, "  %-10s %10.1f KB  %8d I/Os  %10.4f s resp  %8.3f s build\n",
		name, float64(size)/1e3, ios, resp.Seconds(), build.Seconds())
	return Table9Row{Index: name, Dataset: ds, SizeBytes: size, IOs: ios,
		ResponseTime: resp, BuildTime: build}
}
