package bench

import (
	"context"
	"io"

	"ppqtraj/internal/query"
	"ppqtraj/internal/traj"
)

// Table2Row is one method's quality-of-summary and STRQ result for one
// dataset (paper Table 2).
type Table2Row struct {
	Method    string
	Dataset   DatasetName
	MAEm      float64
	Precision float64
	Recall    float64
}

// table2Words returns the per-tick codeword budget of the equal-budget
// protocol. The paper uses ~2⁶ codewords against thousands of live
// points per tick; the budget scales with the trajectory count so it
// stays well below the live-point count (otherwise every method
// quantizes losslessly).
func table2Words(d *traj.Dataset) int {
	w := d.Len() / 4
	if w < 8 {
		w = 8
	}
	return w
}

// Table2 regenerates Table 2: summaries with equal per-tick codeword
// budgets, MAE in meters, and approximate-STRQ precision/recall over
// Scale.Queries probes.
func Table2(s Scale, w io.Writer) []Table2Row {
	var rows []Table2Row
	for _, dsName := range []DatasetName{Porto, GeoLife} {
		d := s.Data(dsName)
		words := table2Words(d)
		fprintf(w, "== Table 2 (%s): MAE(m) / precision / recall, %d words per tick ==\n",
			dsName, words)
		qp, qt := queryPoints(d, s.Queries, s.Seed+100)
		for _, method := range FixedMethods {
			b := BuildFixed(method, dsName, d, words)
			eng, err := engineFor(b, dsName, d)
			if err != nil {
				panic(err)
			}
			var psum, rsum float64
			n := 0
			for i := range qp {
				res, _ := eng.STRQ(context.Background(), qp[i], qt[i], false, nil)
				if !res.Covered {
					continue
				}
				want := query.GroundTruth(d, res.Cell, qt[i])
				p, r := query.PrecisionRecall(res.IDs, want)
				psum += p
				rsum += r
				n++
			}
			row := Table2Row{Method: method, Dataset: dsName, MAEm: b.MAEm}
			if n > 0 {
				row.Precision = psum / float64(n)
				row.Recall = rsum / float64(n)
			}
			rows = append(rows, row)
			fprintf(w, "  %-24s MAE %10.2f m   precision %.3f   recall %.3f\n",
				method, row.MAEm, row.Precision, row.Recall)
		}
		fprintf(w, "\n")
	}
	return rows
}

// Table3Row is one method's TPQ MAE at one path length (paper Table 3,
// in meters here rather than the paper's 10³ m units).
type Table3Row struct {
	Method  string
	Dataset DatasetName
	L       int
	MAEm    float64
}

// Table3Lengths is the paper's TPQ length sweep.
var Table3Lengths = []int{10, 20, 30, 40, 50}

// Table3 regenerates Table 3: the MAE of reconstructed sub-trajectories
// of length l, over the same (trajectory, tick) pairs for every method
// (§6.2.2's fairness rule).
func Table3(s Scale, w io.Writer) []Table3Row {
	var rows []Table3Row
	for _, dsName := range []DatasetName{Porto, GeoLife} {
		d := s.Data(dsName)
		fprintf(w, "== Table 3 (%s): TPQ MAE(m) per path length ==\n", dsName)
		// Shared (id, tick) pairs with enough remaining length.
		rng := newRng(s.Seed + 200)
		type probe struct {
			id   traj.ID
			tick int
		}
		maxL := Table3Lengths[len(Table3Lengths)-1]
		var eligible []traj.ID
		for _, tr := range d.All() {
			if tr.Len() > maxL {
				eligible = append(eligible, tr.ID)
			}
		}
		if len(eligible) == 0 {
			panic("bench: Table3 needs trajectories longer than the largest TPQ length; increase the scale's MinLen")
		}
		var probes []probe
		for len(probes) < s.Queries {
			tr := d.Get(eligible[rng.Intn(len(eligible))])
			probes = append(probes, probe{tr.ID, tr.Start + rng.Intn(tr.Len()-maxL)})
		}
		words := table2Words(d)
		for _, method := range FixedMethods {
			b := BuildFixed(method, dsName, d, words)
			fprintf(w, "  %-24s", method)
			for _, l := range Table3Lengths {
				var sum float64
				n := 0
				for _, pr := range probes {
					rec := b.Src.ReconstructPath(pr.id, pr.tick, l)
					tr := d.Get(pr.id)
					for i, rp := range rec {
						if op, ok := tr.At(pr.tick + i); ok {
							sum += rp.Dist(op)
							n++
						}
					}
				}
				mae := 0.0
				if n > 0 {
					mae = sum / float64(n) * 111000
				}
				rows = append(rows, Table3Row{Method: method, Dataset: dsName, L: l, MAEm: mae})
				fprintf(w, "  l=%2d:%10.1f", l, mae)
			}
			fprintf(w, "\n")
		}
		fprintf(w, "\n")
	}
	return rows
}

// Table4Row is one method's exact-query filtering cost at one codebook
// size (paper Table 4: average ratio of trajectories visited, and MAE).
type Table4Row struct {
	Method  string
	Dataset DatasetName
	Bits    int
	Ratio   float64 // visited / active trajectories
	MAEm    float64
}

// Table4Bits is the codebook-size sweep. The paper sweeps 5–9 bits
// against thousands of live points per tick; at this harness's scale the
// equivalent regime (codebook well below the live-point count) is 2–6
// bits — same protocol, shifted range.
var Table4Bits = []int{2, 3, 4, 5, 6}

// Table4Methods drops TrajStore (the paper excludes it: its per-cell
// budgeting cannot be fixed per timestamp).
var Table4Methods = []string{
	MPPQA, MPPQABasic, MPPQS, MPPQSBasic, MEPQ, MQTraj, MRQ, MPQ,
}

// Table4 regenerates Table 4: exact STRQ with the summary as index — the
// fraction of trajectories visited during verification, against codebook
// sizes of 5–9 bits.
func Table4(s Scale, w io.Writer) []Table4Row {
	var rows []Table4Row
	for _, dsName := range []DatasetName{Porto, GeoLife} {
		d := s.Data(dsName)
		fprintf(w, "== Table 4 (%s): ratio of trajectories visited | MAE(m) ==\n", dsName)
		qp, qt := queryPoints(d, s.Queries, s.Seed+300)
		active := make([]int, len(qt))
		for i, k := range qt {
			active[i] = len(d.SortedIDs(k))
		}
		for _, method := range Table4Methods {
			fprintf(w, "  %-24s", method)
			for _, bits := range Table4Bits {
				b := BuildFixed(method, dsName, d, 1<<uint(bits))
				eng, err := engineFor(b, dsName, d)
				if err != nil {
					panic(err)
				}
				var ratioSum float64
				n := 0
				for i := range qp {
					res, err := eng.STRQ(context.Background(), qp[i], qt[i], true, nil)
					if err != nil {
						panic(err)
					}
					if !res.Covered || active[i] == 0 {
						continue
					}
					ratioSum += float64(res.Visited) / float64(active[i])
					n++
				}
				ratio := 0.0
				if n > 0 {
					ratio = ratioSum / float64(n)
				}
				rows = append(rows, Table4Row{
					Method: method, Dataset: dsName, Bits: bits,
					Ratio: ratio, MAEm: b.MAEm,
				})
				fprintf(w, "  %db:%6.4f|%8.1f", bits, ratio, b.MAEm)
			}
			fprintf(w, "\n")
		}
		fprintf(w, "\n")
	}
	return rows
}
