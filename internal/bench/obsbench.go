package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ppqtraj/internal/obs"
)

// ObsRun records the metrics registry's hot-path overhead: what one
// counter increment, one histogram observation, and one trace lap cost,
// plus a full registry collection. The histogram number is the one the
// instrumentation budget rides on — every WAL fsync, admission wait, and
// request stage pays it, so it must stay well under 50ns/observation.
type ObsRun struct {
	Label      string `json:"label"`
	GoMaxProcs int    `json:"gomaxprocs"`

	CounterNs   float64 `json:"counter_ns_per_op"`
	HistogramNs float64 `json:"histogram_ns_per_op"`
	TraceLapNs  float64 `json:"trace_lap_ns_per_op"`
	// SnapshotMicros is one full registry collection (the /metrics and
	// /v1/stats path) over a registry shaped like the server's.
	SnapshotMicros float64 `json:"snapshot_us"`
}

const obsBenchIters = 2_000_000

// ObsBench measures the observability substrate's overhead; lines go to
// w (nil for silent).
func ObsBench(label string, w io.Writer) ObsRun {
	run := ObsRun{Label: label, GoMaxProcs: runtime.GOMAXPROCS(0)}
	reg := obs.NewRegistry()

	c := reg.Counter("ppq_bench_counter_total", "bench")
	start := time.Now()
	for i := 0; i < obsBenchIters; i++ {
		c.Add(1)
	}
	run.CounterNs = float64(time.Since(start).Nanoseconds()) / obsBenchIters

	h := reg.Histogram("ppq_bench_latency_seconds", "bench", obs.LatencyBuckets)
	vals := [8]float64{1e-6, 3e-5, 1e-4, 2e-3, 1e-2, 0.4, 2, 11}
	start = time.Now()
	for i := 0; i < obsBenchIters; i++ {
		h.Observe(vals[i&7])
	}
	run.HistogramNs = float64(time.Since(start).Nanoseconds()) / obsBenchIters

	// A trace lap reads the clock and updates a small map under a mutex —
	// per-request cost, not per-observation, but worth pinning too.
	const lapIters = obsBenchIters / 10
	tr := obs.NewTrace()
	start = time.Now()
	for i := 0; i < lapIters; i++ {
		tr.Lap("stage")
	}
	run.TraceLapNs = float64(time.Since(start).Nanoseconds()) / lapIters

	// Shape the registry like the server's before timing collection:
	// a few dozen families, some labeled, plus a source.
	for i := 0; i < 24; i++ {
		reg.Counter(fmt.Sprintf("bench_family_%d_total", i), "bench").Add(int64(i))
	}
	hv := reg.HistogramVec("ppq_bench_stage_seconds", "bench", "stage", obs.LatencyBuckets)
	for _, s := range []string{"plan", "scan", "merge", "write"} {
		hv.With(s).Observe(0.001)
	}
	reg.Source(func(emit func(obs.Sample)) {
		for i := 0; i < 16; i++ {
			emit(obs.Sample{Name: fmt.Sprintf("bench_src_%d", i), Help: "bench",
				Kind: obs.KindGauge, Value: float64(i)})
		}
	})
	const snapIters = 200
	start = time.Now()
	for i := 0; i < snapIters; i++ {
		reg.Snapshot()
	}
	run.SnapshotMicros = float64(time.Since(start).Microseconds()) / snapIters

	fprintf(w, "== obs: %s (GOMAXPROCS=%d) ==\n", label, run.GoMaxProcs)
	fprintf(w, "  counter add      %12.2f ns/op\n", run.CounterNs)
	fprintf(w, "  histogram observe%12.2f ns/op (budget: 50)\n", run.HistogramNs)
	fprintf(w, "  trace lap        %12.2f ns/op\n", run.TraceLapNs)
	fprintf(w, "  registry snapshot%12.2f µs\n", run.SnapshotMicros)
	return run
}

// AppendObs runs ObsBench and appends the result to the JSON history at
// path (sharing the file with the other runs).
func AppendObs(path, label string, w io.Writer) error {
	pf := PerfFile{Dataset: "SyntheticPorto(2000, 42)"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &pf); err != nil {
			return fmt.Errorf("bench: parsing %s: %w", path, err)
		}
	}
	pf.ObsRuns = append(pf.ObsRuns, ObsBench(label, w))
	return writePerfFile(path, &pf)
}
