package bench

import (
	"io"

	"ppqtraj/internal/core"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/traj"
)

// AblationRow quantifies the effect of one design choice.
type AblationRow struct {
	Name    string
	Metric  string
	With    float64
	Without float64
}

// Ablations isolates the design choices DESIGN.md calls out, each on the
// Porto workload with the default ε₁:
//
//   - prediction (E-PQ vs Q-trajectory): codebook size
//   - partitioning (PPQ-S vs E-PQ): summary MAE under a shared codebook
//   - CQC (PPQ-S vs PPQ-S-basic): MAE and summary size
//   - incremental temporal partitioning vs from-scratch: partitions created
//   - delta+Huffman posting compression vs raw lists: index size
func Ablations(s Scale, w io.Writer) []AblationRow {
	d := s.Data(Porto)
	var rows []AblationRow
	emit := func(name, metric string, with, without float64) {
		rows = append(rows, AblationRow{Name: name, Metric: metric, With: with, Without: without})
		fprintf(w, "  %-28s %-18s with: %12.2f   without: %12.2f\n", name, metric, with, without)
	}
	fprintf(w, "== Ablations (Porto, default ε₁) ==\n")

	// Prediction: codebook size at the same ε₁.
	epq := core.Build(d, core.Options{K: 3, Epsilon1: 0.001, Mode: partition.None, Seed: 7})
	qtr := core.Build(d, core.Options{K: 3, Epsilon1: 0.001, Mode: partition.None, NoPrediction: true, Seed: 7})
	emit("prediction (E-PQ vs Q-traj)", "codewords", float64(epq.NumCodewords()), float64(qtr.NumCodewords()))

	// Partitioning: MAE of PPQ-S vs E-PQ without CQC (prediction quality).
	ppqsBasic := core.Build(d, core.Options{K: 3, Epsilon1: 0.001, Mode: partition.Spatial, EpsilonP: 0.1, Seed: 7})
	emit("partitioning (PPQ-S vs E-PQ)", "MAE (m)", ppqsBasic.MAEMeters(), epq.MAEMeters())

	// CQC: MAE and size.
	ppqs := core.Build(d, core.DefaultOptions(partition.Spatial, 0.1))
	emit("CQC (PPQ-S vs -basic)", "MAE (m)", ppqs.MAEMeters(), ppqsBasic.MAEMeters())
	emit("CQC (PPQ-S vs -basic)", "size (KB)", float64(ppqs.SizeBytes())/1e3, float64(ppqsBasic.SizeBytes())/1e3)

	// Incremental temporal partitioning: partitions created over the
	// stream when state is carried vs rebuilt per tick.
	inc := partition.New(partition.Options{Mode: partition.Spatial, EpsP: 0.05, Seed: 7})
	scratchNew := 0
	_ = d.Stream(func(col *traj.Column) error {
		inc.Step(col.IDs, partition.SpatialFeatures(col.Points))
		fresh := partition.New(partition.Options{Mode: partition.Spatial, EpsP: 0.05, Seed: 7})
		r := fresh.Step(col.IDs, partition.SpatialFeatures(col.Points))
		scratchNew += r.Q
		return nil
	})
	emit("incremental partitioning", "partitions built", float64(inc.Stats().NewParts), float64(scratchNew))

	// Posting compression: sealed vs raw PI size over the full stream.
	tpi := index.NewTPI(index.Options{EpsS: 0.1, GC: geo.MetersToDegrees(100), EpsC: 0.5, EpsD: 0.5, Seed: 7})
	_ = d.Stream(func(col *traj.Column) error {
		tpi.Append(col.IDs, col.Points, col.Tick)
		return nil
	})
	raw := tpi.SizeBytes()
	if err := tpi.Seal(); err != nil {
		panic(err)
	}
	emit("delta+Huffman postings", "index size (KB)", float64(tpi.SizeBytes())/1e3, float64(raw)/1e3)
	fprintf(w, "\n")
	return rows
}
