package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ppqtraj/internal/admit"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/serve"
	"ppqtraj/internal/wal"
)

// LoadPoint is one rung of the offered-load ladder: requests fired at a
// fixed open-loop rate for a fixed window, classified by outcome, with
// latency percentiles over the served requests only — a shed request's
// fast 429 must not flatter the tail.
type LoadPoint struct {
	OfferedQPS float64 `json:"offered_qps"`
	Seconds    float64 `json:"seconds"`
	Sent       int     `json:"sent"`
	Served     int     `json:"served"`
	Shed       int     `json:"shed"`     // 429: admission said come back later
	Rejected   int     `json:"rejected"` // 4xx/5xx other than 429 (contract bugs if nonzero)
	ServedQPS  float64 `json:"served_qps"`
	ShedRate   float64 `json:"shed_rate"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	P999MS     float64 `json:"p999_ms"`
}

// LoadRun is one sweep of the ladder against a fully-armed server:
// fsync=always durability, group commit, admission control. The shape to
// look for is the knee — below capacity the shed rate is ~0 and p99 is
// flat; above it the shed rate climbs while the served tail stays
// bounded. A server without admission control shows the opposite: zero
// sheds and a tail that grows without bound.
type LoadRun struct {
	Label          string      `json:"label"`
	GoMaxProcs     int         `json:"gomaxprocs"`
	IngestFraction float64     `json:"ingest_fraction"`
	MaxInFlight    int         `json:"max_inflight_ingest"`
	Points         []LoadPoint `json:"points"`
}

// loadStream is one ingest source: a disjoint trajectory-ID range with a
// private tick counter. A stream is checked out of a pool for the
// duration of one request, so its ticks arrive in order and the
// per-trajectory contiguity contract holds with zero coordination.
type loadStream struct {
	base     uint32
	nextTick int
}

// LoadBench drives the offered-load ladder. qpsLevels are the open-loop
// rates to sweep (each held for perLevel); the generator fires on
// schedule regardless of completions, the way real traffic does — a slow
// server does not slow its clients down, it just accumulates their
// requests. The mix is write-heavy: ingestFrac of requests are
// single-tick ingests, the rest STRQ probes against recently written
// space.
func LoadBench(label string, qpsLevels []float64, perLevel time.Duration, w io.Writer) LoadRun {
	const (
		ingestFrac   = 0.8
		streams      = 256
		ptsPerTick   = 16
		maxInFlight  = 16
		fsyncCost    = 5 * time.Millisecond
		outstanding  = 4096
		drainTimeout = 10 * time.Second
	)
	dir, err := os.MkdirTemp("", "ppq-loadbench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	// The WAL runs on a simulated disk with a fixed fsync cost, and the
	// ingest class gets a deliberately modest slot budget. Together they
	// pin the server's capacity at (slots / group-commit round), i.e. a
	// few thousand ingests per second — low enough that the ladder's top
	// rungs exceed it and the admission knee shows, and independent of
	// whether the host's /tmp is tmpfs (free fsyncs) or spinning rust.
	ffs := wal.NewFaultFS()
	ffs.SetSyncDelay(fsyncCost)
	opts := serve.Options{
		Build:           perfOpts(partition.Spatial),
		Index:           indexOptions(Porto),
		Dir:             dir,
		WALSync:         wal.SyncAlways,
		GroupCommitWait: 2 * time.Millisecond,
		WALFS:           ffs,
		Admit: admit.Options{
			MaxInFlightIngest: maxInFlight,
			MaxInFlightQuery:  256,
			MaxQueue:          maxInFlight,
			MaxWait:           10 * time.Millisecond,
		},
		// No compaction: the ladder isolates ingest+admission, not
		// background sealing.
		HotTicks:        1 << 30,
		CompactInterval: time.Hour,
		Log:             obs.Discard(),
	}
	repo, err := serve.Open(opts)
	if err != nil {
		panic(err)
	}
	defer repo.Close()
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()
	client := srv.Client()
	client.Transport = &http.Transport{
		MaxIdleConns:        outstanding,
		MaxIdleConnsPerHost: outstanding,
	}

	pool := make(chan *loadStream, streams)
	for s := 0; s < streams; s++ {
		pool <- &loadStream{base: uint32(1 + s*10000), nextTick: 1}
	}
	rng := rand.New(rand.NewSource(42))

	run := LoadRun{
		Label:          label,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		IngestFraction: ingestFrac,
		MaxInFlight:    maxInFlight,
	}
	fprintf(w, "== load: %s (open loop, %d%% ingest, fsync=always + group commit) ==\n",
		label, int(ingestFrac*100))
	fprintf(w, "  %10s %10s %10s %9s %9s %9s %9s\n",
		"offered", "served", "shed rate", "p50", "p99", "p99.9", "(ms)")

	for _, qps := range qpsLevels {
		var (
			mu        sync.Mutex
			latencies []time.Duration
			sent      atomic.Int64
			served    atomic.Int64
			shed      atomic.Int64
			rejected  atomic.Int64
			inflight  atomic.Int64
			wg        sync.WaitGroup
		)
		fire := func(isIngest bool) {
			defer wg.Done()
			defer inflight.Add(-1)
			t0 := time.Now()
			var resp *http.Response
			var err error
			if isIngest {
				var st *loadStream
				select {
				case st = <-pool:
				default:
					isIngest = false // every stream is mid-flight: probe instead
				}
				if st != nil {
					pts := make([]serve.IngestPoint, ptsPerTick)
					for i := range pts {
						pts[i] = serve.IngestPoint{
							ID: st.base + uint32(i),
							X:  float64(i) * 1e-4,
							Y:  float64(st.nextTick) * 1e-5,
						}
					}
					body, _ := json.Marshal(serve.IngestRequest{
						Ticks: []serve.IngestTick{{Tick: st.nextTick, Points: pts}},
					})
					resp, err = client.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
					if err == nil && resp.StatusCode == http.StatusOK {
						st.nextTick++ // only an acked tick advances the stream
					}
					pool <- st
				}
			}
			if resp == nil && err == nil {
				body, _ := json.Marshal(serve.QueryRequest{Queries: []serve.STRQRequest{
					{P: geo.Pt(rng.Float64()*1e-3, rng.Float64()*1e-3), Tick: 1},
				}})
				resp, err = client.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(body))
			}
			if err != nil {
				rejected.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				served.Add(1)
				d := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
			case resp.StatusCode == http.StatusTooManyRequests:
				shed.Add(1)
			default:
				rejected.Add(1)
			}
		}

		// Open-loop pacing: every 2ms release the quota accrued since the
		// level started, each request on its own goroutine. The generator
		// never waits for the server; it only refuses to let the
		// in-flight population exceed `outstanding` (a real fleet has
		// finitely many sockets too — past that, arrivals count as shed).
		start := time.Now()
		fired := 0
		for time.Since(start) < perLevel {
			due := int(qps * time.Since(start).Seconds())
			for ; fired < due; fired++ {
				sent.Add(1)
				if inflight.Add(1) > outstanding {
					inflight.Add(-1)
					shed.Add(1)
					continue
				}
				wg.Add(1)
				go fire(rng.Float64() < ingestFrac)
			}
			time.Sleep(2 * time.Millisecond)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(drainTimeout):
			panic(fmt.Sprintf("loadbench: %v offered QPS level failed to drain in %v — requests are stuck",
				qps, drainTimeout))
		}

		elapsed := time.Since(start).Seconds()
		mu.Lock()
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) float64 {
			if len(latencies) == 0 {
				return 0
			}
			i := int(p * float64(len(latencies)))
			if i >= len(latencies) {
				i = len(latencies) - 1
			}
			return latencies[i].Seconds() * 1e3
		}
		pt := LoadPoint{
			OfferedQPS: qps,
			Seconds:    elapsed,
			Sent:       int(sent.Load()),
			Served:     int(served.Load()),
			Shed:       int(shed.Load()),
			Rejected:   int(rejected.Load()),
			ServedQPS:  float64(served.Load()) / elapsed,
			ShedRate:   float64(shed.Load()) / float64(sent.Load()),
			P50MS:      pct(0.50),
			P99MS:      pct(0.99),
			P999MS:     pct(0.999),
		}
		mu.Unlock()
		run.Points = append(run.Points, pt)
		fprintf(w, "  %10.0f %10.0f %9.1f%% %9.2f %9.2f %9.2f\n",
			pt.OfferedQPS, pt.ServedQPS, pt.ShedRate*100, pt.P50MS, pt.P99MS, pt.P999MS)
	}
	return run
}

// DefaultLoadLevels is the recorded ladder: from comfortably under
// capacity to several times over it, so the knee lands mid-sweep.
var DefaultLoadLevels = []float64{200, 500, 1000, 2000, 4000}

// AppendLoad runs LoadBench and appends the run to the JSON history at
// path. qpsLevels nil means DefaultLoadLevels; perLevel <= 0 means 2s.
func AppendLoad(path, label string, qpsLevels []float64, perLevel time.Duration, w io.Writer) error {
	if qpsLevels == nil {
		qpsLevels = DefaultLoadLevels
	}
	if perLevel <= 0 {
		perLevel = 2 * time.Second
	}
	pf := PerfFile{Dataset: "SyntheticPorto(2000, 42)"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &pf); err != nil {
			return fmt.Errorf("bench: parsing %s: %w", path, err)
		}
	}
	pf.LoadRuns = append(pf.LoadRuns, LoadBench(label, qpsLevels, perLevel, w))
	return writePerfFile(path, &pf)
}
