package bench

import (
	"io"
	"testing"
)

// tiny is an even smaller scale than Small for the heavier sweeps. Like
// Small, trajectory counts stay well above the codeword budgets and
// lengths exceed the longest TPQ path.
var tiny = Scale{
	PortoTrajs: 80, PortoMinLen: 55, PortoMaxLen: 70,
	GeoLifeTrajs: 12, GeoLifeMinLen: 100, GeoLifeMaxLen: 150,
	SubPortoBases: 12, SubPortoCompress: 20,
	Queries: 60,
	Seed:    1,
}

func rowsFor2(rows []Table2Row, ds DatasetName) map[string]Table2Row {
	out := map[string]Table2Row{}
	for _, r := range rows {
		if r.Dataset == ds {
			out[r.Method] = r
		}
	}
	return out
}

func TestTable2Shapes(t *testing.T) {
	rows := Table2(tiny, io.Discard)
	if len(rows) != 2*len(FixedMethods) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, ds := range []DatasetName{Porto, GeoLife} {
		m := rowsFor2(rows, ds)
		// Headline shape: the CQC variants have recall ≈1 (local search)
		// and beat the non-predictive baselines on MAE by a wide margin.
		// The strict recall-1 guarantee belongs to the error-bounded mode
		// (proven in internal/query's tests); the fixed-budget protocol
		// here has no ε₁ bound, so a stray cold-start/high-speed GeoLife
		// point can exceed any feasible search margin.
		for _, name := range []string{MPPQA, MPPQS} {
			want := 0.999
			if ds == GeoLife {
				want = 0.95
			}
			if m[name].Recall < want {
				t.Errorf("%s/%s recall = %v, want ≥ %v", ds, name, m[name].Recall, want)
			}
		}
		for _, good := range []string{MPPQA, MPPQS} {
			for _, bad := range []string{MQTraj, MPQ, MRQ} {
				if m[good].MAEm >= m[bad].MAEm {
					t.Errorf("%s: %s MAE %v should beat %s MAE %v",
						ds, good, m[good].MAEm, bad, m[bad].MAEm)
				}
			}
		}
		// CQC refinement reduces MAE vs the -basic variants.
		if m[MPPQA].MAEm >= m[MPPQABasic].MAEm {
			t.Errorf("%s: PPQ-A should beat PPQ-A-basic on MAE", ds)
		}
		if m[MPPQS].MAEm >= m[MPPQSBasic].MAEm {
			t.Errorf("%s: PPQ-S should beat PPQ-S-basic on MAE", ds)
		}
	}
	// GeoLife's wide span makes the non-predictive baselines catastrophic
	// (the paper's "×" rows): orders of magnitude worse than PPQ.
	g := rowsFor2(rows, GeoLife)
	if g[MQTraj].MAEm < 20*g[MPPQA].MAEm {
		t.Errorf("Geolife Q-trajectory MAE %v should be ≫ PPQ-A %v",
			g[MQTraj].MAEm, g[MPPQA].MAEm)
	}
}

func TestTable3Shapes(t *testing.T) {
	rows := Table3(tiny, io.Discard)
	// MAE grows (weakly) with path length for the low-accuracy methods,
	// and PPQ-A beats Q-trajectory at every length.
	byKey := map[string]map[int]float64{}
	for _, r := range rows {
		if r.Dataset != Porto {
			continue
		}
		if byKey[r.Method] == nil {
			byKey[r.Method] = map[int]float64{}
		}
		byKey[r.Method][r.L] = r.MAEm
	}
	for _, l := range Table3Lengths {
		if byKey[MPPQA][l] >= byKey[MQTraj][l] {
			t.Errorf("l=%d: PPQ-A %v should beat Q-trajectory %v",
				l, byKey[MPPQA][l], byKey[MQTraj][l])
		}
	}
	if byKey[MQTraj][50] < byKey[MQTraj][10] {
		t.Errorf("Q-trajectory MAE should not shrink with length: %v vs %v",
			byKey[MQTraj][50], byKey[MQTraj][10])
	}
}

func TestTable4Shapes(t *testing.T) {
	s := tiny
	s.Queries = 40
	rows := Table4(s, io.Discard)
	byKey := map[string]map[int]Table4Row{}
	for _, r := range rows {
		if r.Dataset != Porto {
			continue
		}
		if byKey[r.Method] == nil {
			byKey[r.Method] = map[int]Table4Row{}
		}
		byKey[r.Method][r.Bits] = r
	}
	// The PPQ ratio of trajectories visited is small and flat across bits
	// (the CQC-refined reconstruction drives filtering, §6.2.3).
	ppq := byKey[MPPQA]
	for _, bits := range Table4Bits {
		if ppq[bits].Ratio > 0.5 {
			t.Errorf("PPQ-A visited ratio %v too large at %d bits", ppq[bits].Ratio, bits)
		}
	}
	// More bits ⇒ MAE does not increase for the plain quantizers.
	hi, lo := Table4Bits[len(Table4Bits)-1], Table4Bits[0]
	if byKey[MQTraj][hi].MAEm > byKey[MQTraj][lo].MAEm {
		t.Errorf("Q-trajectory MAE should fall with bits: %v vs %v",
			byKey[MQTraj][hi].MAEm, byKey[MQTraj][lo].MAEm)
	}
}

func TestTable56Shapes(t *testing.T) {
	rows := Table56(tiny, io.Discard)
	byKey := map[string]map[float64]Table56Row{}
	for _, r := range rows {
		if r.Dataset != Porto {
			continue
		}
		if byKey[r.Method] == nil {
			byKey[r.Method] = map[float64]Table56Row{}
		}
		byKey[r.Method][r.DevMeters] = r
	}
	// Table 6 shape: codewords shrink as the deviation loosens, and the
	// predictive methods need far fewer codewords than Q-trajectory.
	for _, method := range []string{MPPQA, MPPQS, MQTraj} {
		if byKey[method][1000].Codewords > byKey[method][200].Codewords {
			t.Errorf("%s: codewords should fall with deviation: %d vs %d",
				method, byKey[method][1000].Codewords, byKey[method][200].Codewords)
		}
	}
	for _, dev := range Deviations {
		if byKey[MPPQS][dev].Codewords >= byKey[MQTraj][dev].Codewords {
			t.Errorf("dev %v: PPQ-S codewords %d should be below Q-trajectory %d",
				dev, byKey[MPPQS][dev].Codewords, byKey[MQTraj][dev].Codewords)
		}
	}
	// Figure 9a shape: the -basic variants compress at least as well as
	// their CQC counterparts (CQC costs bits).
	for _, dev := range Deviations {
		if byKey[MPPQSBasic][dev].Ratio < byKey[MPPQS][dev].Ratio*0.9 {
			t.Errorf("dev %v: PPQ-S-basic ratio %v should be ≳ PPQ-S %v",
				dev, byKey[MPPQSBasic][dev].Ratio, byKey[MPPQS][dev].Ratio)
		}
	}
}

func TestTables78Shapes(t *testing.T) {
	rows7 := Table7(tiny, io.Discard)
	byVal := map[float64]TPIStatsRow{}
	for _, r := range rows7 {
		if r.Dataset == Porto {
			byVal[r.Value] = r
		}
	}
	// Higher ε_c tolerance ⇒ no more periods than strict (Table 7 trend).
	if byVal[0.8].Periods > byVal[0.2].Periods {
		t.Errorf("periods should not grow with ε_c: %d vs %d",
			byVal[0.8].Periods, byVal[0.2].Periods)
	}
	rows8 := Table8(tiny, io.Discard)
	byVal8 := map[float64]TPIStatsRow{}
	for _, r := range rows8 {
		if r.Dataset == Porto {
			byVal8[r.Value] = r
		}
	}
	if byVal8[0.8].Periods > byVal8[0.2].Periods {
		t.Errorf("periods should not grow with ε_d: %d vs %d",
			byVal8[0.8].Periods, byVal8[0.2].Periods)
	}
}

func TestTable9Shapes(t *testing.T) {
	s := tiny
	s.Queries = 50
	rows := Table9(s, io.Discard)
	byIdx := map[string]Table9Row{}
	for _, r := range rows {
		if r.Dataset == Porto {
			byIdx[r.Index] = r
		}
	}
	// Table 9 shape: TrajStore pays far more I/Os than TPI (its cells
	// interleave all timestamps); per-tick PI costs the fewest I/Os but
	// builds slower than TPI.
	if byIdx[MTrajStore].IOs <= byIdx["TPI"].IOs {
		t.Errorf("TrajStore I/Os %d should exceed TPI %d",
			byIdx[MTrajStore].IOs, byIdx["TPI"].IOs)
	}
	if byIdx["PI"].IOs > byIdx["TrajStore"].IOs {
		t.Errorf("per-tick PI I/Os %d should be below TrajStore %d",
			byIdx["PI"].IOs, byIdx["TrajStore"].IOs)
	}
	// Per-tick PI rebuilds everything each timestamp, so it is larger than
	// TPI (the deterministic counterpart of the paper's build-time gap —
	// wall-clock at this tiny scale is too noisy to assert on).
	if byIdx["PI"].SizeBytes <= byIdx["TPI"].SizeBytes {
		t.Errorf("per-tick PI size %d should exceed TPI size %d",
			byIdx["PI"].SizeBytes, byIdx["TPI"].SizeBytes)
	}
}

func TestFigure7And8Shapes(t *testing.T) {
	rows := Figure7(tiny, io.Discard)
	// Looser ε_p ⇒ fewer partitions (max q monotone non-increasing).
	byKey := map[string][]Figure7Row{}
	for _, r := range rows {
		k := r.Method + string(r.Dataset)
		byKey[k] = append(byKey[k], r)
	}
	for k, rs := range byKey {
		for i := 1; i < len(rs); i++ {
			if rs[i].MaxQ > rs[i-1].MaxQ {
				t.Errorf("%s: max q should fall as ε_p loosens: %v", k, rs)
			}
		}
	}
	f8 := Figure8(tiny, io.Discard)
	if len(f8) == 0 {
		t.Fatal("no Figure 8 rows")
	}
	for _, r := range f8 {
		if len(r.Q) == 0 || r.MaxQ < 1 {
			t.Errorf("empty q series for %s/%s ε_p=%v", r.Method, r.Dataset, r.EpsP)
		}
	}
}

func TestFigure9Shapes(t *testing.T) {
	t56 := Table56(tiny, io.Discard)
	rows := Figure9(tiny, io.Discard, t56)
	sub := map[string]map[float64]float64{}
	for _, r := range rows {
		if r.Dataset != "sub-Porto" {
			continue
		}
		if sub[r.Method] == nil {
			sub[r.Method] = map[float64]float64{}
		}
		sub[r.Method][r.DevMeters] = r.Ratio
	}
	if len(sub[MREST]) != len(Deviations) {
		t.Fatal("REST rows missing")
	}
	// Figure 9c shape: at tight deviations the PPQ-basic variants stay in
	// REST's range. The paper's 2× PPQ advantage emerges at scale — PPQ's
	// per-tick coefficient overhead amortizes over the compress-set size
	// (2,000 trajectories in the paper, 20 here), so at this tiny scale we
	// only require the same order of magnitude; the recorded full-scale
	// run (EXPERIMENTS.md) shows the crossover.
	if sub[MPPQSBasic][200] < 0.5*sub[MREST][200] {
		t.Errorf("PPQ-S-basic ratio %v should be ≥ 0.5× REST %v at 200 m",
			sub[MPPQSBasic][200], sub[MREST][200])
	}
	for _, m := range []string{MPPQA, MPPQS, MREST} {
		for _, dev := range Deviations {
			if sub[m][dev] <= 0 {
				t.Errorf("%s ratio at %v m is %v", m, dev, sub[m][dev])
			}
		}
	}
}

func TestAblationShapes(t *testing.T) {
	rows := Ablations(tiny, io.Discard)
	get := func(name, metric string) AblationRow {
		for _, r := range rows {
			if r.Name == name && r.Metric == metric {
				return r
			}
		}
		t.Fatalf("missing ablation %s/%s", name, metric)
		return AblationRow{}
	}
	// Prediction shrinks the codebook.
	if p := get("prediction (E-PQ vs Q-traj)", "codewords"); p.With >= p.Without {
		t.Errorf("prediction should shrink the codebook: %v vs %v", p.With, p.Without)
	}
	// CQC reduces MAE at the cost of a larger summary.
	if c := get("CQC (PPQ-S vs -basic)", "MAE (m)"); c.With >= c.Without {
		t.Errorf("CQC should reduce MAE: %v vs %v", c.With, c.Without)
	}
	if c := get("CQC (PPQ-S vs -basic)", "size (KB)"); c.With <= c.Without {
		t.Errorf("CQC costs bits: %v vs %v", c.With, c.Without)
	}
	// Incremental partitioning creates far fewer partitions than
	// re-partitioning from scratch every tick.
	if p := get("incremental partitioning", "partitions built"); p.With >= p.Without {
		t.Errorf("incremental partitioning should reuse: %v vs %v", p.With, p.Without)
	}
	// Compressed postings shrink the index.
	if p := get("delta+Huffman postings", "index size (KB)"); p.With >= p.Without {
		t.Errorf("posting compression should shrink the index: %v vs %v", p.With, p.Without)
	}
}
