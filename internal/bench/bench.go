// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (§6), each regenerating the
// corresponding rows over the synthetic Porto/GeoLife/sub-Porto workloads.
// Absolute numbers differ from the paper (different data scale, Go vs
// Matlab, simulated disk); the reproduction target is the *shape*: method
// ordering, relative factors, and trends across the swept parameter.
//
// Every runner takes an io.Writer for the human-readable table and
// returns structured rows so tests can assert the shapes.
package bench

import (
	"fmt"
	"io"
	"time"

	"ppqtraj/internal/baseline"
	"ppqtraj/internal/core"
	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/query"
	"ppqtraj/internal/traj"
	"ppqtraj/internal/trajstore"
)

// Scale controls dataset sizes and query counts. The paper uses 1.2M/18k
// trajectories and 10k queries; Small keeps unit tests fast and Full is
// the recorded benchmark configuration.
type Scale struct {
	PortoTrajs, PortoMinLen, PortoMaxLen       int
	GeoLifeTrajs, GeoLifeMinLen, GeoLifeMaxLen int
	SubPortoBases, SubPortoCompress            int
	Queries                                    int
	Seed                                       int64
}

// Small is the test-suite scale (seconds per experiment). Trajectory
// counts stay well above the codeword budgets so the equal-budget
// protocol is meaningful (see table2Words), and lengths exceed the
// longest TPQ path (Table3Lengths).
var Small = Scale{
	PortoTrajs: 150, PortoMinLen: 55, PortoMaxLen: 90,
	GeoLifeTrajs: 40, GeoLifeMinLen: 120, GeoLifeMaxLen: 250,
	SubPortoBases: 20, SubPortoCompress: 30,
	Queries: 150,
	Seed:    1,
}

// Full is the recorded benchmark scale (minutes for the whole suite).
var Full = Scale{
	PortoTrajs: 900, PortoMinLen: 55, PortoMaxLen: 150,
	GeoLifeTrajs: 150, GeoLifeMinLen: 200, GeoLifeMaxLen: 600,
	SubPortoBases: 80, SubPortoCompress: 100,
	Queries: 1000,
	Seed:    1,
}

// DatasetName distinguishes the two main workloads.
type DatasetName string

const (
	Porto   DatasetName = "Porto"
	GeoLife DatasetName = "Geolife"
)

// Data returns the named dataset at this scale (deterministic).
func (s Scale) Data(name DatasetName) *traj.Dataset {
	switch name {
	case GeoLife:
		return gen.GeoLife(gen.Config{
			NumTrajectories: s.GeoLifeTrajs,
			MinLen:          s.GeoLifeMinLen, MaxLen: s.GeoLifeMaxLen,
			Seed: s.Seed,
		})
	default:
		return gen.Porto(gen.Config{
			NumTrajectories: s.PortoTrajs,
			MinLen:          s.PortoMinLen, MaxLen: s.PortoMaxLen,
			Seed: s.Seed,
		})
	}
}

// spatialEpsP is ε_p for PPQ-S per dataset (paper §6.1: 0.1 Porto,
// 5 GeoLife).
func spatialEpsP(name DatasetName) float64 {
	if name == GeoLife {
		return 5
	}
	return 0.1
}

// autocorrEpsP is the calibrated autocorrelation ε_p (paper 0.01 ↦ 0.2,
// see DESIGN.md).
const autocorrEpsP = 0.2

// Method names, matching the paper's Table 2 lineup.
const (
	MPPQA      = "PPQ-A"
	MPPQABasic = "PPQ-A-basic"
	MPPQS      = "PPQ-S"
	MPPQSBasic = "PPQ-S-basic"
	MEPQ       = "E-PQ"
	MQTraj     = "Q-trajectory"
	MRQ        = "Residual Quantization"
	MPQ        = "Product Quantization"
	MTrajStore = "TrajStore"
	MREST      = "REST"
)

// FixedMethods is the Table 2/3 lineup (fixed per-tick codeword budget).
var FixedMethods = []string{
	MPPQA, MPPQABasic, MPPQS, MPPQSBasic, MEPQ, MQTraj, MRQ, MPQ, MTrajStore,
}

// BoundedMethods is the Table 5/6 / Figure 9 lineup (error-bounded).
var BoundedMethods = []string{
	MPPQA, MPPQABasic, MPPQS, MPPQSBasic, MEPQ, MQTraj, MRQ, MPQ, MTrajStore,
}

// Built is one method's summary plus its accounting.
type Built struct {
	Name      string
	Src       query.Source
	MAEm      float64 // meters
	Codewords int
	SizeBytes int
	BuildTime time.Duration
}

func coreOpts(method string, dsName DatasetName) core.Options {
	o := core.Options{K: 3, Seed: 7}
	switch method {
	case MPPQA, MPPQABasic:
		o.Mode = partition.Autocorr
		o.EpsilonP = autocorrEpsP
	case MPPQS, MPPQSBasic:
		o.Mode = partition.Spatial
		o.EpsilonP = spatialEpsP(dsName)
	case MEPQ:
		o.Mode = partition.None
	case MQTraj:
		o.Mode = partition.None
		o.NoPrediction = true
	}
	return o
}

// isCore reports whether the method runs through core.Builder.
func isCore(method string) bool {
	switch method {
	case MPPQA, MPPQABasic, MPPQS, MPPQSBasic, MEPQ, MQTraj:
		return true
	}
	return false
}

func usesCQC(method string) bool { return method == MPPQA || method == MPPQS }

// trajStoreRegion pads the dataset's bounding box for the TrajStore root.
func trajStoreRegion(d *traj.Dataset) geo.Rect {
	return d.BoundingRect().Expand(1e-6)
}

func feedTrajStore(d *traj.Dataset, ts *trajstore.Store) {
	_ = d.Stream(func(col *traj.Column) error {
		ts.Append(col.IDs, col.Points, col.Tick)
		return nil
	})
}

// BuildFixed builds one method with a fixed per-tick codeword budget
// (Tables 2–4 protocol: "the same number of codewords is given to
// trajectory points at the same time across all methods").
func BuildFixed(method string, dsName DatasetName, d *traj.Dataset, words int) Built {
	start := time.Now()
	switch {
	case isCore(method):
		o := coreOpts(method, dsName)
		o.FixedWords = words
		o.Epsilon1 = 0
		if usesCQC(method) {
			o.UseCQC = true
			o.GS = geo.MetersToDegrees(50)
		}
		s := core.Build(d, o)
		return Built{Name: method, Src: s, MAEm: s.MAEMeters(),
			Codewords: s.NumCodewords(), SizeBytes: s.SizeBytes(), BuildTime: s.BuildTime}
	case method == MRQ:
		f := baseline.ResidualQuant(d, words, 7)
		return Built{Name: method, Src: f, MAEm: f.MAEMeters(),
			Codewords: f.Codewords, SizeBytes: f.SizeBytes(), BuildTime: f.BuildTime}
	case method == MPQ:
		f := baseline.ProductQuant(d, words, 7)
		return Built{Name: method, Src: f, MAEm: f.MAEMeters(),
			Codewords: f.Codewords, SizeBytes: f.SizeBytes(), BuildTime: f.BuildTime}
	case method == MTrajStore:
		ts := trajstore.New(trajstore.Options{Region: trajStoreRegion(d)})
		feedTrajStore(d, ts)
		// Same total budget: words per tick × ticks.
		total := words * d.MaxTick()
		f, used, err := ts.CompressFixed(total, 7)
		if err != nil {
			panic(err)
		}
		return Built{Name: method, Src: f, MAEm: f.MAEMeters(),
			Codewords: used, SizeBytes: f.SizeBytes(),
			BuildTime: time.Since(start)}
	}
	panic("bench: unknown fixed method " + method)
}

// BuildBounded builds one method at a target spatial deviation in meters
// (Tables 5–6 / Figure 9 protocol: for the CQC variants ε₁^M = 2·g_s with
// (√2/2)·g_s equal to the deviation budget; for all others ε₁^M equals the
// budget directly, §6.3.1).
func BuildBounded(method string, dsName DatasetName, d *traj.Dataset, devMeters float64) Built {
	eps := geo.MetersToDegrees(devMeters)
	start := time.Now()
	switch {
	case isCore(method):
		o := coreOpts(method, dsName)
		o.ClusterQuantizer = true // the paper's VQ path (Table 5's measure)
		if usesCQC(method) {
			gs := devMeters * 1.4142135623730951 // (√2/2)·g_s = budget
			o.GS = geo.MetersToDegrees(gs)
			o.Epsilon1 = geo.MetersToDegrees(2 * gs)
			o.UseCQC = true
		} else {
			o.Epsilon1 = eps
		}
		s := core.Build(d, o)
		return Built{Name: method, Src: s, MAEm: s.MAEMeters(),
			Codewords: s.NumCodewords(), SizeBytes: s.SizeBytes(), BuildTime: s.BuildTime}
	case method == MRQ:
		f := baseline.ResidualQuantBounded(d, eps, 3)
		return Built{Name: method, Src: f, MAEm: f.MAEMeters(),
			Codewords: f.Codewords, SizeBytes: f.SizeBytes(), BuildTime: f.BuildTime}
	case method == MPQ:
		f := baseline.ProductQuantBounded(d, eps)
		return Built{Name: method, Src: f, MAEm: f.MAEMeters(),
			Codewords: f.Codewords, SizeBytes: f.SizeBytes(), BuildTime: f.BuildTime}
	case method == MTrajStore:
		ts := trajstore.New(trajstore.Options{Region: trajStoreRegion(d)})
		feedTrajStore(d, ts)
		f, used, err := ts.CompressBounded(eps, true)
		if err != nil {
			panic(err)
		}
		return Built{Name: method, Src: f, MAEm: f.MAEMeters(),
			Codewords: used, SizeBytes: f.SizeBytes(),
			BuildTime: time.Since(start)}
	}
	panic("bench: unknown bounded method " + method)
}

// indexOptions is the default TPI configuration of §6.1.
func indexOptions(dsName DatasetName) index.Options {
	return index.Options{
		EpsS: spatialEpsP(dsName),
		GC:   geo.MetersToDegrees(100),
		EpsC: 0.5,
		EpsD: 0.5,
		Seed: 11,
	}
}

// engineFor wraps a Built summary in a query engine over d, with the
// local-search radius capped at 4 grid cells (methods whose deviation
// exceeds that lose recall — the paper's "×" regime).
func engineFor(b Built, dsName DatasetName, d *traj.Dataset) (*query.Engine, error) {
	opts := indexOptions(dsName)
	e, err := query.BuildEngine(b.Src, opts, d)
	if err != nil {
		return nil, err
	}
	e.MarginCap = 4 * opts.GC
	return e, nil
}

// queryPoints samples n (position, tick) probes from actual trajectory
// points so that queries land on data (the paper samples 10k queries).
func queryPoints(d *traj.Dataset, n int, seed int64) ([]geo.Point, []int) {
	rng := newRng(seed)
	pts := make([]geo.Point, 0, n)
	ticks := make([]int, 0, n)
	for len(pts) < n {
		tr := d.Get(traj.ID(rng.Intn(d.Len())))
		if tr.Len() == 0 {
			continue
		}
		k := tr.Start + rng.Intn(tr.Len())
		p, _ := tr.At(k)
		pts = append(pts, p)
		ticks = append(ticks, k)
	}
	return pts, ticks
}

// fprintf swallows write errors and tolerates a nil writer (callers pass
// nil to run an experiment for its rows only).
func fprintf(w io.Writer, format string, args ...interface{}) {
	if w == nil {
		return
	}
	fmt.Fprintf(w, format, args...)
}
