package bench

import "math/rand"

// newRng returns a deterministic RNG for query sampling.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
