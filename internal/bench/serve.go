package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ppqtraj/internal/partition"
	"ppqtraj/internal/serve"
)

// ServeRun is one measurement of the repository serving layer under mixed
// load: one ingest stream racing the background compactor while query
// workers fire STRQ/TPQ traffic at already-ingested ticks. Recorded in
// BENCH_PPQ.json next to the hot-path perf runs.
type ServeRun struct {
	Label              string  `json:"label"`
	GoMaxProcs         int     `json:"gomaxprocs"`
	Points             int     `json:"points"`
	QueryWorkers       int     `json:"query_workers"`
	IngestPointsPerSec float64 `json:"ingest_points_per_sec"`
	QueriesPerSec      float64 `json:"queries_per_sec"`
	QueryP50Micros     float64 `json:"query_p50_us"`
	QueryP99Micros     float64 `json:"query_p99_us"`
	Queries            int     `json:"queries"`
	Compactions        int64   `json:"compactions"`
	Segments           int     `json:"segments"`
	WallSeconds        float64 `json:"wall_seconds"`
}

// serveWorkload is the standard serving benchmark configuration.
const serveQueryWorkers = 4

// ServeBench drives the mixed ingest/query workload on the standard
// SyntheticPorto(2000, 42) dataset: the full column stream is ingested as
// fast as the repository accepts it (compaction runs concurrently in the
// background), while serveQueryWorkers goroutines continuously issue
// approximate STRQ with short TPQ paths against random already-ingested
// ticks. Human-readable lines go to w (nil for silent).
func ServeBench(label string, w io.Writer) ServeRun {
	d, cols := perfData()
	run := ServeRun{
		Label:        label,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Points:       d.NumPoints(),
		QueryWorkers: serveQueryWorkers,
	}

	bopts := perfOpts(partition.Spatial)
	repo, err := serve.Open(serve.Options{
		Build:           bopts,
		Index:           indexOptions(Porto),
		HotTicks:        48,
		CompactInterval: 25 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer repo.Close()

	// maxTick publishes ingest progress to the query workers; -1 = no data
	// yet. Query probes are real dataset positions, so most land in
	// populated cells.
	var maxTick atomic.Int64
	maxTick.Store(-1)
	var done atomic.Bool

	var qwg sync.WaitGroup
	lats := make([][]float64, serveQueryWorkers)
	for wk := 0; wk < serveQueryWorkers; wk++ {
		qwg.Add(1)
		go func(wk int) {
			defer qwg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + wk)))
			for !done.Load() {
				hi := maxTick.Load()
				if hi < 0 {
					runtime.Gosched()
					continue
				}
				ci := rng.Intn(int(hi) + 1)
				if ci >= len(cols) {
					ci = len(cols) - 1
				}
				col := cols[ci]
				p := col.Points[rng.Intn(col.Len())]
				start := time.Now()
				if _, err := repo.STRQ(context.Background(), serve.STRQRequest{P: p, Tick: col.Tick, PathLen: 4}); err != nil {
					panic(err)
				}
				lats[wk] = append(lats[wk], time.Since(start).Seconds()*1e6)
			}
		}(wk)
	}

	ingestStart := time.Now()
	for i, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			panic(err)
		}
		maxTick.Store(int64(i))
	}
	// The flush pays down the remaining compaction debt, so the ingest
	// rate reflects sustained throughput, not just hot-tail appends; the
	// query workers keep firing throughout.
	if err := repo.Flush(); err != nil {
		panic(err)
	}
	ingestSecs := time.Since(ingestStart).Seconds()
	done.Store(true)
	qwg.Wait()
	wall := time.Since(ingestStart).Seconds()

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	st := repo.Stats()
	run.IngestPointsPerSec = float64(d.NumPoints()) / ingestSecs
	run.Queries = len(all)
	run.QueriesPerSec = float64(len(all)) / wall
	run.QueryP50Micros = pct(0.50)
	run.QueryP99Micros = pct(0.99)
	run.Compactions = st.Compactions
	run.Segments = st.Segments
	run.WallSeconds = wall

	fprintf(w, "== serve: %s (GOMAXPROCS=%d, %d points, %d query workers) ==\n",
		label, run.GoMaxProcs, run.Points, run.QueryWorkers)
	fprintf(w, "  ingest           %12.0f points/s (compactor concurrent)\n", run.IngestPointsPerSec)
	fprintf(w, "  queries          %12.0f q/s  (%d total)\n", run.QueriesPerSec, run.Queries)
	fprintf(w, "  query latency    %12.2f µs p50, %.2f µs p99\n", run.QueryP50Micros, run.QueryP99Micros)
	fprintf(w, "  compactions      %12d → %d segments\n", run.Compactions, run.Segments)
	return run
}

// AppendServe runs ServeBench and appends the result to the JSON history
// at path (sharing the file with the perf runs).
func AppendServe(path, label string, w io.Writer) error {
	pf := PerfFile{Dataset: "SyntheticPorto(2000, 42)"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &pf); err != nil {
			return fmt.Errorf("bench: parsing %s: %w", path, err)
		}
	}
	pf.ServeRuns = append(pf.ServeRuns, ServeBench(label, w))
	return writePerfFile(path, &pf)
}
