package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sort"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/serve"
)

// ExecRun is one fused-vs-iterator executor comparison: the same set of
// 512-tick window queries is replayed through the hand-fused STRQRange
// pipeline and through the composed iterator plans on ONE warmed
// repository (SetExecutor flips the live executor between passes, so
// caches, segments, and zone maps are identical). The recorded ratio is
// the iterator's overhead on the median window — the acceptance bar is
// staying within ~10% of the fused floor.
type ExecRun struct {
	Label      string  `json:"label"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Points     int     `json:"points"`
	Segments   int     `json:"segments"`
	SpanTicks  int     `json:"span_ticks"`
	Windows    int     `json:"windows"`
	FusedMS    float64 `json:"fused_ms_median"`
	IterMS     float64 `json:"iter_ms_median"`
	// IterOverFused is iter median / fused median (1.0 = parity, lower
	// is an iterator win).
	IterOverFused float64 `json:"iter_over_fused"`
	// Plans and Operators are the iterator executor's telemetry across
	// the replay: composed plans and total operators.
	Plans     int64 `json:"plans"`
	Operators int64 `json:"operators"`
}

// ExecBench builds the staggered window workload once, then replays
// `windows` fixed 512-tick windows through each executor. Every window's
// answer is cross-checked between executors — a divergence panics, so
// the perf number can never be recorded for a wrong answer. windows ≤ 0
// selects the 16-window default. Human-readable lines go to w (nil for
// silent).
func ExecBench(label string, windows int, w io.Writer) ExecRun {
	cols := windowData()
	if windows <= 0 {
		windows = 16
	}
	points := 0
	for _, col := range cols {
		points += col.Len()
	}
	run := ExecRun{
		Label:      label,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Points:     points,
		SpanTicks:  windowSpanTicks,
		Windows:    windows,
	}

	repo, err := serve.Open(serve.Options{
		Build:           perfOpts(partition.Spatial),
		Index:           indexOptions(Porto),
		HotTicks:        64,
		MaxSegmentTicks: 64,
		CompactInterval: time.Hour, // compaction driven by the final Flush only
	})
	if err != nil {
		panic(err)
	}
	defer repo.Close()
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			panic(err)
		}
	}
	if err := repo.Flush(); err != nil {
		panic(err)
	}
	run.Segments = repo.Stats().Segments

	// The window set mirrors WindowBench: rects a few g_c cells wide on
	// sampled data positions, plus one far off the data so the planner's
	// pruning path is exercised too.
	rng := rand.New(rand.NewSource(777))
	gc := indexOptions(Porto).GC
	lastTick := cols[len(cols)-1].Tick
	type win struct {
		rect     geo.Rect
		from, to int
	}
	wins := make([]win, windows)
	for i := range wins {
		col := cols[rng.Intn(len(cols))]
		p := col.Points[rng.Intn(col.Len())]
		half := gc * (2 + 2*rng.Float64())
		from := rng.Intn(max(1, lastTick-windowSpanTicks+1))
		wins[i] = win{
			rect: geo.Rect{MinX: p.X - half, MinY: p.Y - half, MaxX: p.X + half, MaxY: p.Y + half},
			from: from, to: from + windowSpanTicks - 1,
		}
	}
	wins[len(wins)-1].rect = geo.Rect{MinX: 20, MinY: 20, MaxX: 20.01, MaxY: 20.01}

	ctx := context.Background()
	replay := func() float64 {
		times := make([]float64, len(wins))
		for i, wn := range wins {
			start := time.Now()
			if _, err := repo.Window(ctx, wn.rect, wn.from, wn.to, false); err != nil {
				panic(err)
			}
			times[i] = time.Since(start).Seconds() * 1e3
		}
		sort.Float64s(times)
		return times[len(times)/2]
	}
	median := func(xs []float64) float64 {
		sort.Float64s(xs)
		return xs[len(xs)/2]
	}
	setExec := func(name string) {
		if err := repo.SetExecutor(name); err != nil {
			panic(err)
		}
	}

	// Equivalence guard before any timing: both executors must agree on
	// every window, point for point. This pass also warms the
	// decoded-cell cache for both timed replays.
	for _, wn := range wins {
		setExec(serve.ExecutorFused)
		fr, err := repo.Window(ctx, wn.rect, wn.from, wn.to, false)
		if err != nil {
			panic(err)
		}
		setExec(serve.ExecutorIter)
		ir, err := repo.Window(ctx, wn.rect, wn.from, wn.to, false)
		if err != nil {
			panic(err)
		}
		if !reflect.DeepEqual(fr.IDs, ir.IDs) || fr.Ticks != ir.Ticks {
			panic(fmt.Sprintf("bench: executor divergence on rect %+v span %d..%d: fused %d ids / %d ticks, iter %d ids / %d ticks",
				wn.rect, wn.from, wn.to, len(fr.IDs), fr.Ticks, len(ir.IDs), ir.Ticks))
		}
	}

	before := repo.Stats().Window
	setExec(serve.ExecutorFused)
	fused := make([]float64, windowWarmPasses)
	for p := range fused {
		fused[p] = replay()
	}
	run.FusedMS = median(fused)
	setExec(serve.ExecutorIter)
	iter := make([]float64, windowWarmPasses)
	for p := range iter {
		iter[p] = replay()
	}
	run.IterMS = median(iter)
	if run.FusedMS > 0 {
		run.IterOverFused = run.IterMS / run.FusedMS
	}
	after := repo.Stats().Window
	run.Plans = after.Plans - before.Plans
	run.Operators = after.Operators - before.Operators

	fprintf(w, "== exec: %s (GOMAXPROCS=%d, %d points, %d segments, %d windows × %d ticks) ==\n",
		label, run.GoMaxProcs, run.Points, run.Segments, run.Windows, run.SpanTicks)
	fprintf(w, "  fused            %12.2f ms/window (median of %d passes, warm)\n", run.FusedMS, windowWarmPasses)
	fprintf(w, "  iter             %12.2f ms/window (median of %d passes, warm)\n", run.IterMS, windowWarmPasses)
	fprintf(w, "  iter/fused       %12.2fx (acceptance bar ≤ ~1.10)\n", run.IterOverFused)
	fprintf(w, "  iter telemetry   %d plans, %d operators (%.1f operators/plan)\n",
		run.Plans, run.Operators, float64(run.Operators)/float64(max(1, int(run.Plans))))
	return run
}

// AppendExec runs ExecBench and appends the result to the JSON history
// at path (sharing the file with the other experiment runs).
func AppendExec(path, label string, windows int, w io.Writer) error {
	pf := PerfFile{Dataset: "SyntheticPorto(2000, 42)"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &pf); err != nil {
			return fmt.Errorf("bench: parsing %s: %w", path, err)
		}
	}
	pf.ExecRuns = append(pf.ExecRuns, ExecBench(label, windows, w))
	return writePerfFile(path, &pf)
}
