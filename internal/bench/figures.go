package bench

import (
	"io"
	"time"

	"ppqtraj/internal/core"
	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/rest"
)

// Figure7Row is one sweep point of Figure 7: the temporal-partitioning
// component's running time against ε_p.
type Figure7Row struct {
	Method  string // PPQ-A or PPQ-S
	Dataset DatasetName
	EpsP    float64
	Time    time.Duration
	MaxQ    int
}

// figure7EpsP returns the paper's ε_p sweeps: PPQ-A {0.01,0.03,0.05}
// (calibrated ×20 for this library's feature scale, DESIGN.md §2);
// PPQ-S {0.1,0.3,0.5} on Porto, {1,3,5} on GeoLife.
func figure7EpsP(method string, ds DatasetName) []float64 {
	if method == MPPQA {
		return []float64{0.2, 0.6, 1.0}
	}
	if ds == GeoLife {
		return []float64{1, 3, 5}
	}
	return []float64{0.1, 0.3, 0.5}
}

// Figure7 regenerates Figure 7: the running time of the incremental
// temporal partitioning across ε_p values, for PPQ-A and PPQ-S on both
// datasets. Figure 8's q series comes from the same builds (see Figure8).
func Figure7(s Scale, w io.Writer) []Figure7Row {
	var rows []Figure7Row
	for _, method := range []string{MPPQA, MPPQS} {
		for _, dsName := range []DatasetName{Porto, GeoLife} {
			d := s.Data(dsName)
			fprintf(w, "== Figure 7 (%s, %s): partitioning time vs ε_p ==\n", method, dsName)
			for _, epsP := range figure7EpsP(method, dsName) {
				o := coreOpts(method, dsName)
				o.EpsilonP = epsP
				o.Epsilon1 = 0.001
				if usesCQC(method) {
					o.UseCQC = true
					o.GS = geo.MetersToDegrees(50)
				}
				sum := core.Build(d, o)
				maxQ := 0
				for _, q := range sum.QHistory {
					if q > maxQ {
						maxQ = q
					}
				}
				rows = append(rows, Figure7Row{
					Method: method, Dataset: dsName, EpsP: epsP,
					Time: sum.PartitionTime, MaxQ: maxQ,
				})
				fprintf(w, "  ε_p=%-5.2f  partition time %8.3f s  (max q = %d)\n",
					epsP, sum.PartitionTime.Seconds(), maxQ)
			}
			fprintf(w, "\n")
		}
	}
	return rows
}

// Figure8Row samples the partition count q over time for one ε_p.
type Figure8Row struct {
	Method  string
	Dataset DatasetName
	EpsP    float64
	Ticks   []int // sampled ticks
	Q       []int // q at each sampled tick
	MaxQ    int
	FinalQ  int
}

// Figure8 regenerates Figure 8: the evolution of the number of partitions
// q over time for each ε_p, showing stabilization.
func Figure8(s Scale, w io.Writer) []Figure8Row {
	var rows []Figure8Row
	for _, method := range []string{MPPQA, MPPQS} {
		for _, dsName := range []DatasetName{Porto, GeoLife} {
			d := s.Data(dsName)
			fprintf(w, "== Figure 8 (%s, %s): q over time ==\n", method, dsName)
			for _, epsP := range figure7EpsP(method, dsName) {
				o := coreOpts(method, dsName)
				o.EpsilonP = epsP
				o.Epsilon1 = 0.001
				sum := core.Build(d, o)
				qh := sum.QHistory
				row := Figure8Row{Method: method, Dataset: dsName, EpsP: epsP}
				// Sample ~8 evenly spaced points of the series.
				step := len(qh) / 8
				if step < 1 {
					step = 1
				}
				for i := 0; i < len(qh); i += step {
					row.Ticks = append(row.Ticks, i)
					row.Q = append(row.Q, qh[i])
				}
				for _, q := range qh {
					if q > row.MaxQ {
						row.MaxQ = q
					}
				}
				if len(qh) > 0 {
					row.FinalQ = qh[len(qh)-1]
				}
				rows = append(rows, row)
				fprintf(w, "  ε_p=%-5.2f  q series:", epsP)
				for i := range row.Ticks {
					fprintf(w, " t%d:%d", row.Ticks[i], row.Q[i])
				}
				fprintf(w, "  (max %d, final %d)\n", row.MaxQ, row.FinalQ)
			}
			fprintf(w, "\n")
		}
	}
	return rows
}

// Figure9Row is one compression-ratio point (Figure 9a/9b reuse the
// Table 5/6 runs; 9c is the sub-Porto comparison including REST).
type Figure9Row struct {
	Method    string
	Dataset   string // "Porto", "Geolife", or "sub-Porto"
	DevMeters float64
	Ratio     float64
}

// Figure9 regenerates Figure 9: compression ratio against spatial
// deviation on Porto and GeoLife for the standard lineup (panels a, b),
// and on sub-Porto including REST (panel c).
func Figure9(s Scale, w io.Writer, table56 []Table56Row) []Figure9Row {
	var rows []Figure9Row
	// Panels a and b from the Table 5/6 runs.
	for _, r := range table56 {
		rows = append(rows, Figure9Row{
			Method: r.Method, Dataset: string(r.Dataset),
			DevMeters: r.DevMeters, Ratio: r.Ratio,
		})
	}
	fprintf(w, "== Figure 9a/9b: compression ratios come from the Tables 5+6 runs above ==\n\n")

	// Panel c: sub-Porto with REST.
	sp := gen.NewSubPorto(s.SubPortoBases, s.SubPortoCompress, s.Seed)
	raw := sp.Compress.RawBytes()
	fprintf(w, "== Figure 9c (sub-Porto): compression ratio vs spatial deviation ==\n")
	methods := []string{MPPQA, MPPQABasic, MPPQS, MPPQSBasic, MEPQ, MQTraj, MRQ, MPQ}
	for _, method := range methods {
		fprintf(w, "  %-24s", method)
		for _, dev := range Deviations {
			b := BuildBounded(method, Porto, sp.Compress, dev)
			ratio := float64(raw) / float64(b.SizeBytes)
			rows = append(rows, Figure9Row{Method: method, Dataset: "sub-Porto",
				DevMeters: dev, Ratio: ratio})
			fprintf(w, "  %4.0fm:%6.1fx", dev, ratio)
		}
		fprintf(w, "\n")
	}
	// REST: reference set from the pool, compress the target set.
	fprintf(w, "  %-24s", MREST)
	for _, dev := range Deviations {
		ref := rest.BuildReference(sp.Reference, rest.Options{Tolerance: geoDeg(dev)})
		res := ref.CompressDataset(sp.Compress)
		rows = append(rows, Figure9Row{Method: MREST, Dataset: "sub-Porto",
			DevMeters: dev, Ratio: res.CompressionRatio()})
		fprintf(w, "  %4.0fm:%6.1fx", dev, res.CompressionRatio())
	}
	fprintf(w, "\n\n")
	return rows
}
