package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"ppqtraj/internal/partition"
	"ppqtraj/internal/serve"
)

// CacheRun is one cached-vs-cold measurement of the repository's
// decoded-cell cache: the same skewed repeated-STRQ workload is replayed
// against freshly sealed segments, so the first pass decodes every probed
// posting (cold, cache filling) and later passes ride the cache (warm).
// The speedup is the hit-path win a skewed production workload sees after
// warm-up.
type CacheRun struct {
	Label          string  `json:"label"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	Points         int     `json:"points"`
	DistinctProbes int     `json:"distinct_probes"`
	WarmPasses     int     `json:"warm_passes"`
	ColdMicros     float64 `json:"cold_us_per_query"`
	WarmMicros     float64 `json:"warm_us_per_query"`
	Speedup        float64 `json:"speedup_cold_over_warm"`
	HitRate        float64 `json:"hit_rate"`
	CacheEntries   int64   `json:"cache_entries"`
	CacheBytes     int64   `json:"cache_bytes"`
}

// cacheWarmPasses is how many warm replays are taken; the recorded warm
// number is their median, so one GC pause or scheduler hiccup in a
// millisecond-scale pass cannot poison the run (the cold pass is
// measured once, by definition).
const cacheWarmPasses = 5

// CacheBench seals the standard SyntheticPorto(2000, 42) stream into
// repository segments, then replays a fixed set of distinct STRQ probes
// (real dataset positions, so every probe decodes populated cells)
// 1 + cacheWarmPasses times. probes ≤ 0 selects the 512-probe default.
// Human-readable lines go to w (nil for silent).
func CacheBench(label string, probes int, w io.Writer) CacheRun {
	d, cols := perfData()
	if probes <= 0 {
		probes = 512
	}
	run := CacheRun{
		Label:          label,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Points:         d.NumPoints(),
		DistinctProbes: probes,
		WarmPasses:     cacheWarmPasses,
	}

	repo, err := serve.Open(serve.Options{
		Build:           perfOpts(partition.Spatial),
		Index:           indexOptions(Porto),
		HotTicks:        48,
		CompactInterval: time.Hour, // compaction driven by the final Flush only
	})
	if err != nil {
		panic(err)
	}
	defer repo.Close()
	for _, col := range cols {
		if err := repo.IngestColumn(col); err != nil {
			panic(err)
		}
	}
	if err := repo.Flush(); err != nil {
		panic(err)
	}

	// The probe set models a skewed workload's hot set: distinct (point,
	// tick) pairs drawn from the data, replayed verbatim every pass.
	rng := rand.New(rand.NewSource(777))
	reqs := make([]serve.STRQRequest, probes)
	for i := range reqs {
		col := cols[rng.Intn(len(cols))]
		reqs[i] = serve.STRQRequest{P: col.Points[rng.Intn(col.Len())], Tick: col.Tick}
	}
	ctx := context.Background()
	pass := func() float64 {
		start := time.Now()
		for i := range reqs {
			if _, err := repo.STRQ(ctx, reqs[i]); err != nil {
				panic(err)
			}
		}
		return time.Since(start).Seconds() * 1e6 / float64(len(reqs))
	}

	run.ColdMicros = pass()
	warm := make([]float64, cacheWarmPasses)
	for p := range warm {
		warm[p] = pass()
	}
	sort.Float64s(warm)
	run.WarmMicros = warm[len(warm)/2]
	if run.WarmMicros > 0 {
		run.Speedup = run.ColdMicros / run.WarmMicros
	}
	st := repo.Stats()
	if total := st.Cache.Hits + st.Cache.Misses; total > 0 {
		run.HitRate = float64(st.Cache.Hits) / float64(total)
	}
	run.CacheEntries = st.Cache.Entries
	run.CacheBytes = st.Cache.Bytes

	fprintf(w, "== cache: %s (GOMAXPROCS=%d, %d points, %d distinct probes) ==\n",
		label, run.GoMaxProcs, run.Points, run.DistinctProbes)
	fprintf(w, "  cold STRQ        %12.2f µs/query (decode + cache fill)\n", run.ColdMicros)
	fprintf(w, "  warm STRQ        %12.2f µs/query (median of %d passes)\n", run.WarmMicros, run.WarmPasses)
	fprintf(w, "  speedup          %12.2fx cold/warm\n", run.Speedup)
	fprintf(w, "  hit rate         %12.1f%%  (%d entries, %.1f KB)\n",
		100*run.HitRate, run.CacheEntries, float64(run.CacheBytes)/1e3)
	return run
}

// AppendCache runs CacheBench and appends the result to the JSON history
// at path (sharing the file with the perf and serve runs).
func AppendCache(path, label string, probes int, w io.Writer) error {
	pf := PerfFile{Dataset: "SyntheticPorto(2000, 42)"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &pf); err != nil {
			return fmt.Errorf("bench: parsing %s: %w", path, err)
		}
	}
	pf.CacheRuns = append(pf.CacheRuns, CacheBench(label, probes, w))
	return writePerfFile(path, &pf)
}
