package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"ppqtraj/internal/obs"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/serve"
	"ppqtraj/internal/wal"
)

// ReplRun is one replication measurement over the standard ingest
// stream, in two phases. Catch-up: the primary already holds the whole
// stream when the follower first connects, so the number is pure
// stream-and-apply bandwidth — the recovery-time bound for a replica
// rebuilt (or long-partitioned) behind a retained WAL. Steady-state:
// the follower tails a primary ingesting at full speed, and the sampled
// lag distribution says how stale bounded-staleness reads actually are
// when the stream is healthy — the number -max-replica-lag-ticks should
// be calibrated against.
type ReplRun struct {
	Label      string `json:"label"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Points     int    `json:"points"`

	CatchupPointsPerSec float64 `json:"catchup_points_per_sec"`
	CatchupSeconds      float64 `json:"catchup_seconds"`

	SteadyIngestPointsPerSec float64 `json:"steady_ingest_points_per_sec"`
	SteadyLagTicksMean       float64 `json:"steady_lag_ticks_mean"`
	SteadyLagTicksMax        int64   `json:"steady_lag_ticks_max"`
	SteadyConvergeSeconds    float64 `json:"steady_converge_seconds"`

	AppliedRecords int64 `json:"applied_records"`
	Reconnects     int64 `json:"reconnects"`
}

// replNode opens a repository with compaction disabled, so both phases
// measure replication alone: every point rides the WAL and stays hot.
func replNode(dir string, follow string) *serve.Repository {
	opts := serve.Options{
		Build:           perfOpts(partition.Spatial),
		Index:           indexOptions(Porto),
		Dir:             dir,
		WALSync:         wal.SyncEvery,
		HotTicks:        1 << 30,
		CompactInterval: time.Hour,
		ReplicateFrom:   follow,
		ReplBackoff:     5 * time.Millisecond,
		Log:             obs.Discard(),
	}
	repo, err := serve.Open(opts)
	if err != nil {
		panic(err)
	}
	return repo
}

// waitReplicated blocks until the follower has applied exactly records
// WAL records and reports zero lag.
func waitReplicated(follower *serve.Repository, records int64, within time.Duration) {
	deadline := time.Now().Add(within)
	for {
		rs := follower.Stats().Repl
		if rs != nil && rs.NextLSN >= records && rs.LagKnown && rs.LagTicks == 0 {
			return
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("replbench: follower stalled at lsn %d of %d", rs.NextLSN, records))
		}
		time.Sleep(time.Millisecond)
	}
}

// ReplBench measures both phases and prints human-readable lines to w
// (nil for silent).
func ReplBench(label string, w io.Writer) ReplRun {
	d, cols := perfData()
	run := ReplRun{
		Label:      label,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Points:     d.NumPoints(),
	}

	// Phase 1: catch-up. The primary holds the full stream before the
	// follower exists.
	func() {
		pdir, err := os.MkdirTemp("", "ppq-replbench-p-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(pdir)
		fdir, err := os.MkdirTemp("", "ppq-replbench-f-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(fdir)

		primary := replNode(pdir, "")
		defer primary.Close()
		for _, col := range cols {
			if err := primary.IngestColumn(col); err != nil {
				panic(err)
			}
		}
		srv := httptest.NewServer(primary.Handler())
		defer srv.Close()

		start := time.Now()
		follower := replNode(fdir, srv.URL)
		defer follower.Close()
		waitReplicated(follower, int64(len(cols)), 5*time.Minute)
		run.CatchupSeconds = time.Since(start).Seconds()
		run.CatchupPointsPerSec = float64(d.NumPoints()) / run.CatchupSeconds
	}()

	// Phase 2: steady-state tail. The follower is connected before write
	// load starts; a sampler polls its lag while the primary ingests the
	// stream at full speed.
	func() {
		pdir, err := os.MkdirTemp("", "ppq-replbench-p-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(pdir)
		fdir, err := os.MkdirTemp("", "ppq-replbench-f-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(fdir)

		primary := replNode(pdir, "")
		defer primary.Close()
		srv := httptest.NewServer(primary.Handler())
		defer srv.Close()
		follower := replNode(fdir, srv.URL)
		defer follower.Close()
		// A short-wait transport is not needed: the long poll wakes the
		// moment the first commit lands. Wait for the stream to be up so
		// the lag samples measure tailing, not bootstrap.
		deadline := time.Now().Add(30 * time.Second)
		for {
			if rs := follower.Stats().Repl; rs != nil && rs.Connected {
				break
			}
			if time.Now().After(deadline) {
				panic("replbench: follower never connected")
			}
			time.Sleep(time.Millisecond)
		}

		stop := make(chan struct{})
		samples := make(chan [2]int64, 1)
		go func() {
			var sum, n, max int64
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					if n == 0 {
						n = 1
					}
					samples <- [2]int64{sum / n, max}
					return
				case <-tick.C:
					if lag, known := follower.ReplLag(); known {
						sum, n = sum+lag, n+1
						if lag > max {
							max = lag
						}
					}
				}
			}
		}()

		start := time.Now()
		for _, col := range cols {
			if err := primary.IngestColumn(col); err != nil {
				panic(err)
			}
		}
		ingestSecs := time.Since(start).Seconds()
		lastIngest := time.Now()
		waitReplicated(follower, int64(len(cols)), 5*time.Minute)
		// How long the follower needed to drain its backlog once the
		// primary went quiet: the failover-freshness number.
		run.SteadyConvergeSeconds = time.Since(lastIngest).Seconds()
		close(stop)
		s := <-samples
		run.SteadyIngestPointsPerSec = float64(d.NumPoints()) / ingestSecs
		run.SteadyLagTicksMean = float64(s[0])
		run.SteadyLagTicksMax = s[1]
		rs := follower.Stats().Repl
		run.AppliedRecords = rs.AppliedRecords
		run.Reconnects = rs.Reconnects
	}()

	fprintf(w, "== repl: %s (GOMAXPROCS=%d, %d points) ==\n", run.Label, run.GoMaxProcs, run.Points)
	fprintf(w, "  catch-up         %12.0f points/s (cold follower, %.2fs to zero lag)\n",
		run.CatchupPointsPerSec, run.CatchupSeconds)
	fprintf(w, "  steady ingest    %12.0f points/s with a live tailing follower\n", run.SteadyIngestPointsPerSec)
	fprintf(w, "  steady lag       %12.1f ticks mean, %d max (converged %.2fs after last ingest)\n",
		run.SteadyLagTicksMean, run.SteadyLagTicksMax, run.SteadyConvergeSeconds)
	fprintf(w, "  stream           %12d records applied, %d reconnects\n", run.AppliedRecords, run.Reconnects)
	return run
}

// AppendRepl runs ReplBench and appends the result to the JSON history
// at path (sharing the file with the other experiment families).
func AppendRepl(path, label string, w io.Writer) error {
	pf := PerfFile{Dataset: "SyntheticPorto(2000, 42)"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &pf); err != nil {
			return fmt.Errorf("bench: parsing %s: %w", path, err)
		}
	}
	pf.ReplRuns = append(pf.ReplRuns, ReplBench(label, w))
	return writePerfFile(path, &pf)
}
