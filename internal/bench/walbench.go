package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/serve"
	"ppqtraj/internal/traj"
	"ppqtraj/internal/wal"
)

// WALRun is one durability measurement: the standard ingest stream driven
// through a persistent repository under one WAL sync policy. The three
// policies price the durability spectrum — "never" is the no-WAL-cost
// ceiling, "interval" the production default, "always" the
// zero-acknowledged-loss floor (one fsync per ingested tick batch). The
// replay number is recovery speed: the whole unflushed stream read back
// from the log into the hot tail on reopen.
type WALRun struct {
	Label              string  `json:"label"`
	Policy             string  `json:"policy"`
	GoMaxProcs         int     `json:"gomaxprocs"`
	Points             int     `json:"points"`
	IngestPointsPerSec float64 `json:"ingest_points_per_sec"`
	Syncs              int64   `json:"syncs"`
	WALBytes           int64   `json:"wal_bytes"`
	WALSegments        int     `json:"wal_segments"`
	ReplayPointsPerSec float64 `json:"replay_points_per_sec"`
	ReplaySeconds      float64 `json:"replay_seconds"`

	// Concurrent runs only (zero on the sequential policy sweep):
	// Clients is how many ingest sources ran in parallel,
	// GroupCommitWaitMS the batching window, and Commits the acked batch
	// count — Commits/Syncs is the group-commit batching factor.
	// SimFsyncMS, when nonzero, is a simulated per-fsync disk cost
	// (injected through the WAL's filesystem seam) so the group-commit
	// comparison is reproducible on any host and shows the regime the
	// window exists for: fsync-dominated disks.
	Clients           int     `json:"clients,omitempty"`
	GroupCommitWaitMS float64 `json:"group_commit_wait_ms,omitempty"`
	Commits           int64   `json:"commits,omitempty"`
	SimFsyncMS        float64 `json:"sim_fsync_ms,omitempty"`
}

// WALBench runs the ingest stream once per sync policy, with compaction
// disabled so every append pays the WAL and nothing else — the numbers
// isolate the durability tax. After each ingest pass the repository is
// closed un-flushed and reopened, timing the full WAL replay. Human
// readable lines go to w (nil for silent).
func WALBench(label string, w io.Writer) []WALRun {
	d, cols := perfData()
	var runs []WALRun
	for _, policy := range []wal.SyncPolicy{wal.SyncNever, wal.SyncEvery, wal.SyncAlways} {
		dir, err := os.MkdirTemp("", "ppq-walbench-")
		if err != nil {
			panic(err)
		}
		opts := serve.Options{
			Build:   perfOpts(partition.Spatial),
			Index:   indexOptions(Porto),
			Dir:     dir,
			WALSync: policy,
			// No compaction: the hot tail holds the full stream, so the
			// measured cost is append+log (and the replay covers every
			// point).
			HotTicks:        1 << 30,
			CompactInterval: time.Hour,
			Log:             obs.Discard(),
		}
		repo, err := serve.Open(opts)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for _, col := range cols {
			if err := repo.IngestColumn(col); err != nil {
				panic(err)
			}
		}
		ingestSecs := time.Since(start).Seconds()
		st := repo.Stats()
		if err := repo.Close(); err != nil { // no Flush: the WAL holds everything
			panic(err)
		}

		start = time.Now()
		repo, err = serve.Open(opts)
		if err != nil {
			panic(err)
		}
		replaySecs := time.Since(start).Seconds()
		rst := repo.Stats()
		if rst.WALReplayedPoints != int64(d.NumPoints()) {
			panic(fmt.Sprintf("walbench: replay restored %d of %d points", rst.WALReplayedPoints, d.NumPoints()))
		}
		if err := repo.Close(); err != nil {
			panic(err)
		}
		os.RemoveAll(dir)

		run := WALRun{
			Label:              label,
			Policy:             string(policy),
			GoMaxProcs:         runtime.GOMAXPROCS(0),
			Points:             d.NumPoints(),
			IngestPointsPerSec: float64(d.NumPoints()) / ingestSecs,
			Syncs:              st.WAL.Syncs,
			WALBytes:           st.WAL.Bytes,
			WALSegments:        st.WAL.Segments,
			ReplayPointsPerSec: float64(d.NumPoints()) / replaySecs,
			ReplaySeconds:      replaySecs,
		}
		runs = append(runs, run)
		fprintf(w, "== wal: %s policy=%-8s (GOMAXPROCS=%d, %d points) ==\n",
			label, run.Policy, run.GoMaxProcs, run.Points)
		fprintf(w, "  ingest           %12.0f points/s (%d fsyncs)\n", run.IngestPointsPerSec, run.Syncs)
		fprintf(w, "  log size         %12.1f MB in %d segment(s)\n", float64(run.WALBytes)/1e6, run.WALSegments)
		fprintf(w, "  crash replay     %12.0f points/s (%.2fs to rebuild the hot tail)\n",
			run.ReplayPointsPerSec, run.ReplaySeconds)
	}
	return runs
}

// WALConcurrentBench prices fsync=always under concurrency. The standard
// stream is sharded by trajectory ID into fixed per-source streams (a
// trajectory always lands in the same stream and each stream replays its
// ticks in order, so the per-trajectory contiguity contract holds with
// no coordination), and every config ingests the SAME 8-way-sharded
// commit sequence — only the writer count and the disk vary, so the
// points/s numbers compare directly:
//
//   - clients=1 is the seed's shape: one writer, every acked batch
//     serialized behind its own fsync. On a disk with real fsync cost
//     this is the durability wall the paper's ingest rates crash into.
//   - clients=8 wait=0 is concurrency alone: commits share an fsync only
//     when they happen to pile up behind one already in flight.
//   - clients=8 wait=2ms adds the group-commit window: a committing
//     leader briefly holds the door open so one fsync acks many batches.
//
// The real-disk pair shows what the window does where fsyncs are cheap
// (batching factor up, throughput within scheduling noise); the
// simulated-disk runs (a fixed fsync cost injected through the FS seam)
// show the regime the window exists for, reproducibly on any host.
func WALConcurrentBench(label string, w io.Writer) []WALRun {
	d, cols := perfData()
	const streams = 8

	shards := make([][]*traj.Column, streams)
	for _, col := range cols {
		var ids [streams][]traj.ID
		var pts [streams][]geo.Point
		for i, id := range col.IDs {
			s := int(id % streams)
			ids[s] = append(ids[s], id)
			pts[s] = append(pts[s], col.Points[i])
		}
		for s := 0; s < streams; s++ {
			if len(ids[s]) == 0 {
				continue
			}
			shards[s] = append(shards[s], &traj.Column{Tick: col.Tick, IDs: ids[s], Points: pts[s]})
		}
	}

	configs := []struct {
		clients int
		wait    time.Duration
		fsync   time.Duration
	}{
		{streams, 0, 0},
		{streams, 2 * time.Millisecond, 0},
		{1, 0, 5 * time.Millisecond}, // the seed's single-writer wall
		{streams, 0, 5 * time.Millisecond},
		{streams, 2 * time.Millisecond, 5 * time.Millisecond},
	}
	var runs []WALRun
	for _, cfg := range configs {
		wait := cfg.wait
		dir, err := os.MkdirTemp("", "ppq-walbench-")
		if err != nil {
			panic(err)
		}
		opts := serve.Options{
			Build:           perfOpts(partition.Spatial),
			Index:           indexOptions(Porto),
			Dir:             dir,
			WALSync:         wal.SyncAlways,
			GroupCommitWait: wait,
			HotTicks:        1 << 30,
			CompactInterval: time.Hour,
			Log:             obs.Discard(),
		}
		if cfg.fsync > 0 {
			ffs := wal.NewFaultFS()
			ffs.SetSyncDelay(cfg.fsync)
			opts.WALFS = ffs
		}
		repo, err := serve.Open(opts)
		if err != nil {
			panic(err)
		}
		// Worker c owns streams c, c+clients, ... and walks them
		// tick-major, so every config issues the identical commit
		// sequence per stream regardless of how many workers share it.
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, cfg.clients)
		for c := 0; c < cfg.clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				var mine [][]*traj.Column
				for s := c; s < streams; s += cfg.clients {
					mine = append(mine, shards[s])
				}
				for i := 0; ; i++ {
					any := false
					for _, shard := range mine {
						if i >= len(shard) {
							continue
						}
						any = true
						col := shard[i]
						if err := repo.Ingest(col.Tick, col.IDs, col.Points); err != nil {
							errs <- err
							return
						}
					}
					if !any {
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			panic(err)
		}
		ingestSecs := time.Since(start).Seconds()
		st := repo.Stats()
		if err := repo.Close(); err != nil {
			panic(err)
		}

		// Every acked point must replay: the concurrency gain is only
		// interesting if durability survived it. Reopen on the real
		// filesystem — replay speed is not under test here.
		opts.WALFS = nil
		repo, err = serve.Open(opts)
		if err != nil {
			panic(err)
		}
		if rst := repo.Stats(); rst.WALReplayedPoints != int64(d.NumPoints()) {
			panic(fmt.Sprintf("walbench: concurrent replay restored %d of %d points",
				rst.WALReplayedPoints, d.NumPoints()))
		}
		if err := repo.Close(); err != nil {
			panic(err)
		}
		os.RemoveAll(dir)

		run := WALRun{
			Label:              label,
			Policy:             string(wal.SyncAlways),
			GoMaxProcs:         runtime.GOMAXPROCS(0),
			Points:             d.NumPoints(),
			IngestPointsPerSec: float64(d.NumPoints()) / ingestSecs,
			Syncs:              st.WAL.Syncs,
			WALBytes:           st.WAL.Bytes,
			WALSegments:        st.WAL.Segments,
			Clients:            cfg.clients,
			GroupCommitWaitMS:  float64(wait) / 1e6,
			Commits:            st.WAL.Commits,
			SimFsyncMS:         float64(cfg.fsync) / 1e6,
		}
		runs = append(runs, run)
		batching := float64(run.Commits)
		if run.Syncs > 0 {
			batching /= float64(run.Syncs)
		}
		disk := "real disk"
		if cfg.fsync > 0 {
			disk = fmt.Sprintf("simulated %v fsync", cfg.fsync)
		}
		fprintf(w, "== wal: %s policy=always clients=%d group-commit=%v (%s, %d points) ==\n",
			label, cfg.clients, wait, disk, run.Points)
		fprintf(w, "  ingest           %12.0f points/s (acked, fsync-gated)\n", run.IngestPointsPerSec)
		fprintf(w, "  batching         %12.1f commits/fsync (%d commits, %d fsyncs)\n",
			batching, run.Commits, run.Syncs)
	}
	return runs
}

// AppendWAL runs WALBench plus the concurrent group-commit comparison
// and appends the results to the JSON history at path (sharing the file
// with the perf, serve, and cache runs).
func AppendWAL(path, label string, w io.Writer) error {
	pf := PerfFile{Dataset: "SyntheticPorto(2000, 42)"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &pf); err != nil {
			return fmt.Errorf("bench: parsing %s: %w", path, err)
		}
	}
	pf.WALRuns = append(pf.WALRuns, WALBench(label, w)...)
	pf.WALRuns = append(pf.WALRuns, WALConcurrentBench(label, w)...)
	return writePerfFile(path, &pf)
}
