package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ppqtraj/internal/partition"
	"ppqtraj/internal/serve"
	"ppqtraj/internal/wal"
)

// WALRun is one durability measurement: the standard ingest stream driven
// through a persistent repository under one WAL sync policy. The three
// policies price the durability spectrum — "never" is the no-WAL-cost
// ceiling, "interval" the production default, "always" the
// zero-acknowledged-loss floor (one fsync per ingested tick batch). The
// replay number is recovery speed: the whole unflushed stream read back
// from the log into the hot tail on reopen.
type WALRun struct {
	Label              string  `json:"label"`
	Policy             string  `json:"policy"`
	GoMaxProcs         int     `json:"gomaxprocs"`
	Points             int     `json:"points"`
	IngestPointsPerSec float64 `json:"ingest_points_per_sec"`
	Syncs              int64   `json:"syncs"`
	WALBytes           int64   `json:"wal_bytes"`
	WALSegments        int     `json:"wal_segments"`
	ReplayPointsPerSec float64 `json:"replay_points_per_sec"`
	ReplaySeconds      float64 `json:"replay_seconds"`
}

// WALBench runs the ingest stream once per sync policy, with compaction
// disabled so every append pays the WAL and nothing else — the numbers
// isolate the durability tax. After each ingest pass the repository is
// closed un-flushed and reopened, timing the full WAL replay. Human
// readable lines go to w (nil for silent).
func WALBench(label string, w io.Writer) []WALRun {
	d, cols := perfData()
	var runs []WALRun
	for _, policy := range []wal.SyncPolicy{wal.SyncNever, wal.SyncEvery, wal.SyncAlways} {
		dir, err := os.MkdirTemp("", "ppq-walbench-")
		if err != nil {
			panic(err)
		}
		opts := serve.Options{
			Build:   perfOpts(partition.Spatial),
			Index:   indexOptions(Porto),
			Dir:     dir,
			WALSync: policy,
			// No compaction: the hot tail holds the full stream, so the
			// measured cost is append+log (and the replay covers every
			// point).
			HotTicks:        1 << 30,
			CompactInterval: time.Hour,
			Logf:            func(string, ...any) {},
		}
		repo, err := serve.Open(opts)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for _, col := range cols {
			if err := repo.IngestColumn(col); err != nil {
				panic(err)
			}
		}
		ingestSecs := time.Since(start).Seconds()
		st := repo.Stats()
		if err := repo.Close(); err != nil { // no Flush: the WAL holds everything
			panic(err)
		}

		start = time.Now()
		repo, err = serve.Open(opts)
		if err != nil {
			panic(err)
		}
		replaySecs := time.Since(start).Seconds()
		rst := repo.Stats()
		if rst.WALReplayedPoints != int64(d.NumPoints()) {
			panic(fmt.Sprintf("walbench: replay restored %d of %d points", rst.WALReplayedPoints, d.NumPoints()))
		}
		if err := repo.Close(); err != nil {
			panic(err)
		}
		os.RemoveAll(dir)

		run := WALRun{
			Label:              label,
			Policy:             string(policy),
			GoMaxProcs:         runtime.GOMAXPROCS(0),
			Points:             d.NumPoints(),
			IngestPointsPerSec: float64(d.NumPoints()) / ingestSecs,
			Syncs:              st.WAL.Syncs,
			WALBytes:           st.WAL.Bytes,
			WALSegments:        st.WAL.Segments,
			ReplayPointsPerSec: float64(d.NumPoints()) / replaySecs,
			ReplaySeconds:      replaySecs,
		}
		runs = append(runs, run)
		fprintf(w, "== wal: %s policy=%-8s (GOMAXPROCS=%d, %d points) ==\n",
			label, run.Policy, run.GoMaxProcs, run.Points)
		fprintf(w, "  ingest           %12.0f points/s (%d fsyncs)\n", run.IngestPointsPerSec, run.Syncs)
		fprintf(w, "  log size         %12.1f MB in %d segment(s)\n", float64(run.WALBytes)/1e6, run.WALSegments)
		fprintf(w, "  crash replay     %12.0f points/s (%.2fs to rebuild the hot tail)\n",
			run.ReplayPointsPerSec, run.ReplaySeconds)
	}
	return runs
}

// AppendWAL runs WALBench and appends the results to the JSON history at
// path (sharing the file with the perf, serve, and cache runs).
func AppendWAL(path, label string, w io.Writer) error {
	pf := PerfFile{Dataset: "SyntheticPorto(2000, 42)"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &pf); err != nil {
			return fmt.Errorf("bench: parsing %s: %w", path, err)
		}
	}
	pf.WALRuns = append(pf.WALRuns, WALBench(label, w)...)
	return writePerfFile(path, &pf)
}
