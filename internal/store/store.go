// Package store simulates the disk layer of the Table 9 experiments: a
// page-structured store (1 MB pages, following TrajStore's setting) with
// read/write accounting. Index structures serialize their blobs into the
// store; queries charge one I/O per distinct page touched.
//
// The store tracks only sizes and page boundaries — the bytes themselves
// live in the in-memory structures — which is exactly what the I/O-count
// and response-time comparisons need.
package store

import (
	"fmt"
	"sync/atomic"
)

// DefaultPageSize is 1 MB, the page size used by the paper's disk
// experiments (§6.5).
const DefaultPageSize = 1 << 20

// PageRange is a contiguous run of pages [First, Last].
type PageRange struct {
	First, Last int
}

// Pages returns the number of pages in the range.
func (r PageRange) Pages() int { return r.Last - r.First + 1 }

// PageStore is an append-only page allocator with I/O accounting. The
// read/write counters are atomic, so concurrent queries (each with its own
// ReadTracker) can charge I/Os without a data race; allocation itself
// (Alloc/AlignToPage) remains single-writer, matching the build phase.
type PageStore struct {
	pageSize int
	offset   int // next free byte (global address space)
	reads    atomic.Int64
	writes   atomic.Int64
}

// New creates a store with the given page size (DefaultPageSize if ≤ 0).
func New(pageSize int) *PageStore {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &PageStore{pageSize: pageSize}
}

// PageSize returns the page size in bytes.
func (s *PageStore) PageSize() int { return s.pageSize }

// Alloc appends a blob of the given size and returns the page range it
// occupies. Zero-sized blobs occupy the current page. Writes are charged
// per page touched.
func (s *PageStore) Alloc(size int) PageRange {
	if size < 0 {
		panic(fmt.Sprintf("store: negative alloc %d", size))
	}
	first := s.offset / s.pageSize
	end := s.offset + size
	last := first
	if size > 0 {
		last = (end - 1) / s.pageSize
	}
	s.offset = end
	s.writes.Add(int64(last - first + 1))
	return PageRange{First: first, Last: last}
}

// AlignToPage advances the allocation cursor to the next page boundary —
// used to start a new object (e.g. a new period's index) on a fresh page.
func (s *PageStore) AlignToPage() {
	if rem := s.offset % s.pageSize; rem != 0 {
		s.offset += s.pageSize - rem
	}
}

// NumPages returns the total pages allocated so far.
func (s *PageStore) NumPages() int {
	return (s.offset + s.pageSize - 1) / s.pageSize
}

// BytesUsed returns the total bytes allocated.
func (s *PageStore) BytesUsed() int { return s.offset }

// ReadTracker deduplicates page reads within one logical operation (one
// query): the same page is charged once per operation, mirroring a buffer
// that survives for the duration of a single query.
type ReadTracker struct {
	store *PageStore
	seen  map[int]bool
}

// BeginRead starts a tracked read operation.
func (s *PageStore) BeginRead() *ReadTracker {
	return &ReadTracker{store: s, seen: make(map[int]bool)}
}

// Read charges the pages of r not yet touched in this operation.
func (t *ReadTracker) Read(r PageRange) {
	for p := r.First; p <= r.Last; p++ {
		if !t.seen[p] {
			t.seen[p] = true
			t.store.reads.Add(1)
		}
	}
}

// PagesTouched returns the distinct pages read in this operation.
func (t *ReadTracker) PagesTouched() int { return len(t.seen) }

// Reads returns the cumulative page reads.
func (s *PageStore) Reads() int { return int(s.reads.Load()) }

// Writes returns the cumulative page writes.
func (s *PageStore) Writes() int { return int(s.writes.Load()) }

// ResetCounters zeroes the I/O counters (allocation state is kept), so a
// benchmark can measure the query phase separately from the build phase.
func (s *PageStore) ResetCounters() { s.reads.Store(0); s.writes.Store(0) }
