package store

import "testing"

func TestAllocSinglePage(t *testing.T) {
	s := New(1024)
	r := s.Alloc(100)
	if r.First != 0 || r.Last != 0 || r.Pages() != 1 {
		t.Fatalf("range = %+v", r)
	}
	r = s.Alloc(100)
	if r.First != 0 || r.Last != 0 {
		t.Fatalf("second small alloc should stay on page 0: %+v", r)
	}
	if s.NumPages() != 1 {
		t.Fatalf("NumPages = %d", s.NumPages())
	}
}

func TestAllocSpansPages(t *testing.T) {
	s := New(1024)
	r := s.Alloc(3000)
	if r.First != 0 || r.Last != 2 || r.Pages() != 3 {
		t.Fatalf("range = %+v", r)
	}
	if s.NumPages() != 3 {
		t.Fatalf("NumPages = %d", s.NumPages())
	}
	if s.Writes() != 3 {
		t.Fatalf("Writes = %d", s.Writes())
	}
}

func TestAllocZero(t *testing.T) {
	s := New(1024)
	r := s.Alloc(0)
	if r.Pages() != 1 {
		t.Fatalf("zero alloc range = %+v", r)
	}
	if s.BytesUsed() != 0 {
		t.Fatal("zero alloc must not consume bytes")
	}
}

func TestAllocNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0).Alloc(-1)
}

func TestAlignToPage(t *testing.T) {
	s := New(1024)
	s.Alloc(10)
	s.AlignToPage()
	r := s.Alloc(10)
	if r.First != 1 {
		t.Fatalf("after align, alloc should start on page 1: %+v", r)
	}
	// Aligning when already aligned is a no-op.
	s.AlignToPage()
	s.AlignToPage()
	r = s.Alloc(10)
	if r.First != 2 {
		t.Fatalf("range = %+v", r)
	}
}

func TestDefaultPageSize(t *testing.T) {
	s := New(0)
	if s.PageSize() != DefaultPageSize {
		t.Fatalf("PageSize = %d", s.PageSize())
	}
}

func TestReadTrackerDedup(t *testing.T) {
	s := New(1024)
	a := s.Alloc(1024) // page 0
	b := s.Alloc(2048) // pages 1-2
	tr := s.BeginRead()
	tr.Read(a)
	tr.Read(a) // duplicate within the same operation: free
	tr.Read(b)
	if s.Reads() != 3 {
		t.Fatalf("Reads = %d, want 3", s.Reads())
	}
	if tr.PagesTouched() != 3 {
		t.Fatalf("PagesTouched = %d", tr.PagesTouched())
	}
	// A new operation pays again.
	tr2 := s.BeginRead()
	tr2.Read(a)
	if s.Reads() != 4 {
		t.Fatalf("Reads = %d, want 4", s.Reads())
	}
}

func TestResetCounters(t *testing.T) {
	s := New(1024)
	s.Alloc(5000)
	s.BeginRead().Read(PageRange{0, 2})
	s.ResetCounters()
	if s.Reads() != 0 || s.Writes() != 0 {
		t.Fatal("counters not reset")
	}
	if s.NumPages() == 0 {
		t.Fatal("allocation state must survive reset")
	}
}
