package repl

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"ppqtraj/internal/wal"
)

// HTTPTransport fetches stream batches from a primary's
// /v1/repl/stream endpoint. The zero value is unusable; set Base.
type HTTPTransport struct {
	// Base is the primary's base URL, e.g. "http://10.0.0.1:8080".
	Base string
	// Follower, when non-empty, rides every request as the ?follower= id
	// so the primary keeps a standing retention pin at this follower's
	// position. Use something stable across restarts (host + data dir).
	Follower string
	// Wait is the long-poll budget requested per call (default 20s; the
	// primary clamps it to its own cap).
	Wait time.Duration
	// MaxBodyBytes bounds one response body (default 8 MiB) — a
	// misbehaving primary must not balloon the follower's memory.
	MaxBodyBytes int64
	// Client overrides the HTTP client (default: a plain client; the
	// per-fetch context carries the timeout, so the client sets none).
	Client *http.Client
}

// Fetch implements Transport.
func (t *HTTPTransport) Fetch(ctx context.Context, from int64) (Batch, error) {
	wait := t.Wait
	if wait <= 0 {
		wait = 20 * time.Second
	}
	maxBody := t.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 8 << 20
	}
	u := strings.TrimSuffix(t.Base, "/") + "/v1/repl/stream?from_lsn=" + strconv.FormatInt(from, 10) +
		"&wait=" + url.QueryEscape(wait.String())
	if t.Follower != "" {
		u += "&follower=" + url.QueryEscape(t.Follower)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Batch{}, err
	}
	client := t.Client
	if client == nil {
		client = &http.Client{}
	}
	resp, err := client.Do(req)
	if err != nil {
		return Batch{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		oldest := resp.Header.Get(headerOldestLSN)
		return Batch{}, fmt.Errorf("repl: primary reclaimed ordinal %d (oldest retained %s): %w",
			from, oldest, wal.ErrGone)
	case http.StatusRequestedRangeNotSatisfiable:
		return Batch{}, fmt.Errorf("repl: follower position %d is ahead of the primary: %w", from, wal.ErrFuture)
	default:
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return Batch{}, fmt.Errorf("repl: stream request failed: %s: %s",
			resp.Status, strings.TrimSpace(string(snippet)))
	}
	b := Batch{
		Next:        headerInt64(resp.Header, headerNextLSN, from),
		Durable:     headerInt64(resp.Header, headerDurableLSN, 0),
		PrimaryTick: headerInt64(resp.Header, headerPrimaryTick, -1),
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody+1))
	if err != nil {
		// A connection torn mid-body still delivered a usable prefix of
		// whole frames; hand it up with no error and let the framing layer
		// apply what checks out. The next fetch resumes past it.
		b.Frames = body
		return b, nil
	}
	if int64(len(body)) > maxBody {
		return Batch{}, fmt.Errorf("repl: stream body exceeds the %d-byte cap", maxBody)
	}
	b.Frames = body
	return b, nil
}

func headerInt64(h http.Header, key string, fallback int64) int64 {
	v, err := strconv.ParseInt(h.Get(key), 10, 64)
	if err != nil {
		return fallback
	}
	return v
}
