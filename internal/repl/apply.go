package repl

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"ppqtraj/internal/obs"
	"ppqtraj/internal/wal"
)

// ApplierOptions configures an Applier.
type ApplierOptions struct {
	// Transport fetches stream batches (required).
	Transport Transport
	// From is the first ordinal to fetch — the follower's own durable
	// record count, so a restart resumes exactly where persistence ends.
	From int64
	// Apply replays decoded records into the follower (required). It
	// returns how many of the records landed; on a partial failure the
	// applier refetches from the failure point, so Apply must apply
	// strictly in order and must never skip.
	Apply func(ctx context.Context, recs []wal.Record) (applied int, err error)
	// OnBatch observes every clean batch (including empty keepalives)
	// after its records were applied — the hook that publishes the
	// primary's watermarks to the staleness bound.
	OnBatch func(b Batch)
	// Backoff is the initial reconnect delay (default 100ms); each
	// failure doubles it up to MaxBackoff (default 50× Backoff), and any
	// clean batch resets it. The actual sleep is jittered to [d/2, d] so
	// a restarted primary is not met by a thundering herd of followers.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// FetchTimeout bounds one Fetch call (default 60s — above the
	// shipper's long-poll cap, so an idle stream is not a "failure").
	FetchTimeout time.Duration
	// Metrics, when set, registers the applier's stream counters.
	Metrics *obs.Registry
	// Log receives reconnect and corruption events; nil means silence.
	Log *obs.Logger
}

// Applier is the follower side of replication: a connection loop that
// fetches committed frames, applies their valid prefix exactly once, and
// survives every transport failure with backoff. Safe for concurrent use
// of its accessors while Run is live.
type Applier struct {
	opts ApplierOptions

	next        atomic.Int64 // ordinal of the next record to fetch
	connected   atomic.Bool
	lastContact atomic.Int64 // unix nanos of the last clean batch; 0 = never

	reconnects     *obs.Counter
	appliedRecords *obs.Counter
	appliedPoints  *obs.Counter
	corruptBatches *obs.Counter
}

// NewApplier returns an Applier; call Run to start streaming.
func NewApplier(opts ApplierOptions) *Applier {
	if opts.Transport == nil {
		panic("repl: ApplierOptions.Transport is required")
	}
	if opts.Apply == nil {
		panic("repl: ApplierOptions.Apply is required")
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 50 * opts.Backoff
	}
	if opts.FetchTimeout <= 0 {
		opts.FetchTimeout = 60 * time.Second
	}
	if opts.Log == nil {
		opts.Log = obs.Discard()
	}
	a := &Applier{
		opts:           opts,
		reconnects:     &obs.Counter{},
		appliedRecords: &obs.Counter{},
		appliedPoints:  &obs.Counter{},
		corruptBatches: &obs.Counter{},
	}
	a.next.Store(opts.From)
	if reg := opts.Metrics; reg != nil {
		a.reconnects = reg.Counter("ppq_repl_stream_reconnects_total",
			"Replication stream reconnect attempts after a fetch or apply failure.")
		a.appliedRecords = reg.Counter("ppq_repl_applied_records_total",
			"WAL records applied from the replication stream.")
		a.appliedPoints = reg.Counter("ppq_repl_applied_points_total",
			"Trajectory points applied from the replication stream.")
		a.corruptBatches = reg.Counter("ppq_repl_corrupt_batches_total",
			"Stream batches whose frames failed checksum or framing mid-body.")
		reg.GaugeFunc("ppq_repl_connected",
			"1 while the follower's last stream exchange succeeded.",
			func() float64 {
				if a.connected.Load() {
					return 1
				}
				return 0
			})
		reg.GaugeFunc("ppq_repl_next_lsn",
			"Next WAL ordinal the follower will fetch.",
			func() float64 { return float64(a.next.Load()) })
	}
	return a
}

// Run streams until ctx is done. Every failure — transport, framing,
// apply — lands in the same place: mark disconnected, back off with
// jitter, refetch from the applier's own cursor. The cursor only ever
// advances by records Apply confirmed, so a batch that died halfway is
// resumed, not repeated and not skipped.
func (a *Applier) Run(ctx context.Context) {
	backoff := a.opts.Backoff
	for {
		if ctx.Err() != nil {
			a.connected.Store(false)
			return
		}
		from := a.next.Load()
		fctx, cancel := context.WithTimeout(ctx, a.opts.FetchTimeout)
		b, err := a.opts.Transport.Fetch(fctx, from)
		cancel()
		if err == nil {
			err = a.applyBatch(ctx, from, b)
		}
		if err == nil {
			a.connected.Store(true)
			a.lastContact.Store(time.Now().UnixNano())
			if a.opts.OnBatch != nil {
				a.opts.OnBatch(b)
			}
			backoff = a.opts.Backoff
			continue
		}
		if ctx.Err() != nil {
			a.connected.Store(false)
			return
		}
		a.connected.Store(false)
		a.reconnects.Inc()
		if errors.Is(err, wal.ErrGone) || errors.Is(err, wal.ErrFuture) {
			// A gap (our history was reclaimed) or a regression (we are
			// ahead of the primary) cannot heal by retrying; scream at max
			// backoff instead of resyncing silently — the operator must
			// choose between reseeding this follower and fixing the primary.
			a.opts.Log.Error("replication stream position unserviceable; manual intervention required",
				"from_lsn", a.next.Load(), "err", err)
			backoff = a.opts.MaxBackoff
		} else {
			a.opts.Log.Warn("replication stream failure; backing off",
				"from_lsn", a.next.Load(), "backoff", backoff, "err", err)
		}
		// Jittered sleep in [backoff/2, backoff]: enough spread that
		// followers restarted together do not reconnect in lockstep.
		delay := backoff/2 + rand.N(backoff/2+1)
		select {
		case <-ctx.Done():
			a.connected.Store(false)
			return
		case <-time.After(delay):
		}
		backoff *= 2
		if backoff > a.opts.MaxBackoff {
			backoff = a.opts.MaxBackoff
		}
	}
}

// applyBatch decodes and applies one batch's valid prefix, advancing the
// cursor by exactly the records Apply confirmed. A framing or checksum
// failure past the prefix is an error (the prefix still lands — bytes
// already verified must not be refetched just because their successor
// tore), as is a partial apply.
func (a *Applier) applyBatch(ctx context.Context, from int64, b Batch) error {
	var recs []wal.Record
	_, decErr := wal.DecodeFrames(b.Frames, func(rec wal.Record) error {
		recs = append(recs, rec)
		return nil
	})
	if decErr != nil {
		a.corruptBatches.Inc()
	}
	if len(recs) > 0 {
		applied, err := a.opts.Apply(ctx, recs)
		if applied < 0 {
			applied = 0
		}
		if applied > len(recs) {
			applied = len(recs)
		}
		a.next.Store(from + int64(applied))
		a.appliedRecords.Add(int64(applied))
		for _, rec := range recs[:applied] {
			a.appliedPoints.Add(int64(len(rec.IDs)))
		}
		if err != nil {
			return err
		}
		if applied < len(recs) {
			return errors.New("repl: apply stopped short without an error")
		}
	}
	if decErr != nil {
		return decErr
	}
	return nil
}

// ApplierStats is a point-in-time snapshot of the applier.
type ApplierStats struct {
	NextLSN        int64         `json:"next_lsn"`
	Connected      bool          `json:"connected"`
	LastContactAge time.Duration `json:"last_contact_age_ns"`
	AppliedRecords int64         `json:"applied_records"`
	AppliedPoints  int64 `json:"applied_points"`
	Reconnects     int64 `json:"reconnects"`
	CorruptBatches int64 `json:"corrupt_batches"`
}

// Stats snapshots the applier's counters and connection state.
func (a *Applier) Stats() ApplierStats {
	st := ApplierStats{
		NextLSN:        a.next.Load(),
		Connected:      a.connected.Load(),
		AppliedRecords: a.appliedRecords.Load(),
		AppliedPoints:  a.appliedPoints.Load(),
		Reconnects:     a.reconnects.Load(),
		CorruptBatches: a.corruptBatches.Load(),
	}
	if last := a.lastContact.Load(); last > 0 {
		st.LastContactAge = time.Since(time.Unix(0, last))
	}
	return st
}
