package repl

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
	"ppqtraj/internal/wal"
)

func openLog(t *testing.T, opts wal.Options) *wal.Log {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	l, err := wal.Open(opts, func(wal.Record) error { return nil })
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { l.Close() }) //nolint:errcheck // tests may latch the log
	return l
}

func streamRecord(tick, n int) wal.Record {
	rec := wal.Record{Tick: tick}
	for i := 0; i < n; i++ {
		rec.IDs = append(rec.IDs, traj.ID(i+1))
		rec.Points = append(rec.Points, geo.Point{X: float64(tick), Y: float64(i)})
	}
	return rec
}

func appendCommitted(t *testing.T, l *wal.Log, ticks, pts int) {
	t.Helper()
	for tick := 0; tick < ticks; tick++ {
		lsn, err := l.Append(streamRecord(tick, pts))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
}

func decodeBatch(t *testing.T, b Batch) []wal.Record {
	t.Helper()
	var recs []wal.Record
	if _, err := wal.DecodeFrames(b.Frames, func(rec wal.Record) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatalf("DecodeFrames: %v", err)
	}
	return recs
}

func serveShipper(t *testing.T, s *Shipper) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("GET /v1/repl/stream", s)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestStreamEndToEnd runs the real wire: shipper behind an HTTP server,
// HTTPTransport fetching — full batches, empty long-poll keepalives, and
// a long poll woken by a fresh commit.
func TestStreamEndToEnd(t *testing.T) {
	l := openLog(t, wal.Options{Policy: wal.SyncAlways})
	appendCommitted(t, l, 20, 3)
	s := NewShipper(ShipperOptions{WAL: l, PrimaryTick: func() int64 { return 19 }})
	defer s.Close()
	srv := serveShipper(t, s)
	tp := &HTTPTransport{Base: srv.URL, Follower: "f1", Wait: 50 * time.Millisecond}

	b, err := tp.Fetch(context.Background(), 0)
	if err != nil {
		t.Fatalf("Fetch(0): %v", err)
	}
	recs := decodeBatch(t, b)
	if len(recs) != 20 || b.Next != 20 || b.Durable != 20 || b.PrimaryTick != 19 {
		t.Fatalf("Fetch(0): %d records, next=%d durable=%d tick=%d", len(recs), b.Next, b.Durable, b.PrimaryTick)
	}
	for i, rec := range recs {
		if rec.Tick != i || len(rec.IDs) != 3 {
			t.Fatalf("record %d: %+v", i, rec)
		}
	}

	// Caught up: the long poll expires into an empty keepalive that still
	// carries the primary's cursors.
	b, err = tp.Fetch(context.Background(), 20)
	if err != nil {
		t.Fatalf("Fetch(20): %v", err)
	}
	if len(b.Frames) != 0 || b.Next != 20 || b.Durable != 20 {
		t.Fatalf("keepalive: frames=%d next=%d durable=%d", len(b.Frames), b.Next, b.Durable)
	}

	// A commit mid-poll must wake the waiting request promptly.
	slow := &HTTPTransport{Base: srv.URL, Wait: 5 * time.Second}
	done := make(chan Batch, 1)
	go func() {
		b, err := slow.Fetch(context.Background(), 20)
		if err != nil {
			t.Errorf("long poll: %v", err)
		}
		done <- b
	}()
	time.Sleep(20 * time.Millisecond)
	lsn, err := l.Append(streamRecord(20, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-done:
		if recs := decodeBatch(t, b); len(recs) != 1 || recs[0].Tick != 20 {
			t.Fatalf("woken poll delivered %+v", recs)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("long poll not woken by commit")
	}
	if st := s.Stats(); st.ShippedRecords != 21 || st.Holds != 1 {
		t.Fatalf("shipper stats: %+v", st)
	}
}

// TestStreamGoneAndFuture maps the two unserviceable positions onto
// their sentinels across the wire: reclaimed → ErrGone (410), past the
// end → ErrFuture (416).
func TestStreamGoneAndFuture(t *testing.T) {
	l := openLog(t, wal.Options{Policy: wal.SyncNever, SegmentBytes: 256})
	for tick := 0; tick < 30; tick++ {
		if _, err := l.Append(streamRecord(tick, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateThrough(14); err != nil {
		t.Fatal(err)
	}
	if l.OldestRec() == 0 {
		t.Fatal("test needs reclamation to have happened")
	}
	s := NewShipper(ShipperOptions{WAL: l})
	defer s.Close()
	srv := serveShipper(t, s)
	tp := &HTTPTransport{Base: srv.URL, Wait: time.Millisecond}
	if _, err := tp.Fetch(context.Background(), 0); !errors.Is(err, wal.ErrGone) {
		t.Fatalf("reclaimed position: err = %v, want ErrGone", err)
	}
	if _, err := tp.Fetch(context.Background(), 1000); !errors.Is(err, wal.ErrFuture) {
		t.Fatalf("future position: err = %v, want ErrFuture", err)
	}
}

// logTransport serves batches straight off a wal.Log — the in-process
// transport the fault-injection tests wrap.
type logTransport struct{ l *wal.Log }

func (t *logTransport) Fetch(_ context.Context, from int64) (Batch, error) {
	frames, next, err := t.l.ReadFrames(from, 1<<20)
	if err != nil {
		return Batch{}, err
	}
	return Batch{Frames: frames, Next: next, Durable: t.l.DurableRec(), PrimaryTick: -1}, nil
}

// runApplierUntil starts an applier over the transport and waits until
// its cursor reaches want, collecting applied records in order.
func runApplierUntil(t *testing.T, tp Transport, want int64) ([]wal.Record, *Applier) {
	t.Helper()
	var mu sync.Mutex
	var got []wal.Record
	a := NewApplier(ApplierOptions{
		Transport: tp,
		Apply: func(_ context.Context, recs []wal.Record) (int, error) {
			mu.Lock()
			got = append(got, recs...)
			mu.Unlock()
			return len(recs), nil
		},
		Backoff:      time.Millisecond,
		FetchTimeout: time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); a.Run(ctx) }()
	deadline := time.Now().Add(10 * time.Second)
	for a.Stats().NextLSN < want {
		if time.Now().After(deadline) {
			cancel()
			<-done
			t.Fatalf("applier stalled at %d, want %d", a.Stats().NextLSN, want)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	mu.Lock()
	defer mu.Unlock()
	return got, a
}

// checkExactSequence fails unless recs are exactly ticks 0..n-1 in
// order — any duplicate, gap, or reorder across the retries is a bug.
func checkExactSequence(t *testing.T, recs []wal.Record, n int) {
	t.Helper()
	if len(recs) != n {
		t.Fatalf("applied %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if rec.Tick != i {
			t.Fatalf("applied[%d].Tick = %d: sequence broken (duplicate or skip)", i, rec.Tick)
		}
	}
}

// TestApplierSurvivesDrops: whole-fetch failures back off and retry; the
// stream converges with the exact record sequence.
func TestApplierSurvivesDrops(t *testing.T) {
	l := openLog(t, wal.Options{Policy: wal.SyncAlways})
	appendCommitted(t, l, 25, 2)
	ft := &FaultTransport{Base: &logTransport{l: l}}
	ft.DropNext(3, nil)
	recs, a := runApplierUntil(t, ft, 25)
	checkExactSequence(t, recs, 25)
	if st := a.Stats(); st.Reconnects < 3 {
		t.Fatalf("reconnects = %d, want ≥ 3 (one per dropped fetch)", st.Reconnects)
	}
}

// TestApplierPrefixOnCorruption: a byte flipped mid-batch fails that
// frame's CRC; the intact prefix applies exactly once and the remainder
// is refetched — never skipped, never doubled.
func TestApplierPrefixOnCorruption(t *testing.T) {
	l := openLog(t, wal.Options{Policy: wal.SyncAlways})
	appendCommitted(t, l, 25, 2)
	ft := &FaultTransport{Base: &logTransport{l: l}}
	ft.CorruptNext(1)
	recs, a := runApplierUntil(t, ft, 25)
	checkExactSequence(t, recs, 25)
	st := a.Stats()
	if st.CorruptBatches == 0 {
		t.Fatal("corruption was injected but never detected")
	}
	if st.AppliedRecords != 25 {
		t.Fatalf("applied_records = %d, want 25 (no double apply)", st.AppliedRecords)
	}
}

// TestApplierPrefixOnHalfClose: a connection cut mid-write tears the
// last frame; everything before it applies once, the torn record is
// refetched whole.
func TestApplierPrefixOnHalfClose(t *testing.T) {
	l := openLog(t, wal.Options{Policy: wal.SyncAlways})
	appendCommitted(t, l, 25, 2)
	ft := &FaultTransport{Base: &logTransport{l: l}}
	ft.HalfCloseNext(1)
	recs, a := runApplierUntil(t, ft, 25)
	checkExactSequence(t, recs, 25)
	if st := a.Stats(); st.AppliedRecords != 25 {
		t.Fatalf("applied_records = %d, want 25", st.AppliedRecords)
	}
}

// TestApplierGiveUpNever: a Gone position is unserviceable — the applier
// must keep the position, report disconnected, and not invent a resync.
func TestApplierGoneHoldsPosition(t *testing.T) {
	l := openLog(t, wal.Options{Policy: wal.SyncNever, SegmentBytes: 256})
	for tick := 0; tick < 30; tick++ {
		if _, err := l.Append(streamRecord(tick, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateThrough(14); err != nil {
		t.Fatal(err)
	}
	a := NewApplier(ApplierOptions{
		Transport: &logTransport{l: l},
		Apply: func(_ context.Context, recs []wal.Record) (int, error) {
			return len(recs), nil
		},
		Backoff: time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	a.Run(ctx)
	st := a.Stats()
	if st.NextLSN != 0 {
		t.Fatalf("applier moved off a Gone position: next = %d", st.NextLSN)
	}
	if st.Connected {
		t.Fatal("applier claims connected while its position is unserviceable")
	}
	if st.Reconnects == 0 {
		t.Fatal("no retry attempts recorded")
	}
}

// TestHoldPinsAndExpiry: a follower's stream request pins the WAL at its
// position; the pin blocks reclamation, survives until the TTL, and an
// expired or closed hold releases it.
func TestHoldPinsAndExpiry(t *testing.T) {
	l := openLog(t, wal.Options{Policy: wal.SyncNever, SegmentBytes: 256})
	for tick := 0; tick < 30; tick++ {
		if _, err := l.Append(streamRecord(tick, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1000, 0)
	var clockMu sync.Mutex
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	s := NewShipper(ShipperOptions{WAL: l, HoldTTL: time.Minute, now: now})
	defer s.Close()
	srv := serveShipper(t, s)

	// A lagging follower reads from 0 — its position is now pinned.
	tp := &HTTPTransport{Base: srv.URL, Follower: "laggard", Wait: time.Millisecond}
	if _, err := tp.Fetch(context.Background(), 0); err != nil {
		t.Fatalf("pin fetch: %v", err)
	}
	if err := l.TruncateThrough(29); err != nil {
		t.Fatal(err)
	}
	if got := l.OldestRec(); got != 0 {
		t.Fatalf("pinned WAL reclaimed up to %d; the laggard now has a gap", got)
	}

	// TTL passes; any later request sweeps the dead follower's hold.
	clockMu.Lock()
	clock = clock.Add(2 * time.Minute)
	clockMu.Unlock()
	fresh := &HTTPTransport{Base: srv.URL, Follower: "fresh", Wait: time.Millisecond}
	if _, err := fresh.Fetch(context.Background(), l.NextRec()-1); err != nil {
		t.Fatalf("sweep fetch: %v", err)
	}
	if st := s.Stats(); st.Holds != 1 {
		t.Fatalf("holds = %d after TTL sweep, want 1 (the fresh follower)", st.Holds)
	}
	if err := l.TruncateThrough(29); err != nil {
		t.Fatal(err)
	}
	if got := l.OldestRec(); got == 0 {
		t.Fatal("expired hold still blocks reclamation")
	}
}
