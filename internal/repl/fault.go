package repl

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// FaultTransport wraps another Transport and injects the four ways a
// replication stream dies in production, on command:
//
//   - DropNext fails whole fetches — the primary is down or partitioned.
//   - SetDelay stalls fetches — a congested or flapping link.
//   - CorruptNext flips a byte mid-body — bitrot the CRCs must catch.
//   - HalfCloseNext tears the final frame — a connection cut mid-write,
//     which must apply the intact prefix exactly once and refetch only
//     the torn remainder.
//
// All knobs are safe to flip concurrently with a running Applier (that
// is the point: faults land mid-stream, not between sessions).
type FaultTransport struct {
	// Base is the wrapped transport (required).
	Base Transport

	mu            sync.Mutex
	dropNext      int
	dropErr       error
	delay         time.Duration
	corruptNext   int
	halfCloseNext int

	fetches atomic.Int64
}

// DropNext makes the next n fetches fail with err (a generic injected
// error when nil) before reaching the wrapped transport.
func (f *FaultTransport) DropNext(n int, err error) {
	if err == nil {
		err = errors.New("faulttransport: injected connection failure")
	}
	f.mu.Lock()
	f.dropNext, f.dropErr = n, err
	f.mu.Unlock()
}

// SetDelay stalls every subsequent fetch by d (0 disarms). The stall
// respects ctx, so per-request timeouts still fire.
func (f *FaultTransport) SetDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// CorruptNext arms byte corruption on the next n non-empty bodies: one
// byte near the middle is flipped, so some frame's CRC fails while
// earlier frames stay intact.
func (f *FaultTransport) CorruptNext(n int) {
	f.mu.Lock()
	f.corruptNext = n
	f.mu.Unlock()
}

// HalfCloseNext arms mid-write connection tears on the next n non-empty
// bodies: the final byte is cut, so the last frame is torn while every
// earlier frame stays intact.
func (f *FaultTransport) HalfCloseNext(n int) {
	f.mu.Lock()
	f.halfCloseNext = n
	f.mu.Unlock()
}

// Fetches returns how many fetches reached the wrapped transport.
func (f *FaultTransport) Fetches() int64 { return f.fetches.Load() }

// Fetch implements Transport, applying any armed faults.
func (f *FaultTransport) Fetch(ctx context.Context, from int64) (Batch, error) {
	f.mu.Lock()
	var dropErr error
	if f.dropNext > 0 {
		f.dropNext--
		dropErr = f.dropErr
	}
	delay := f.delay
	f.mu.Unlock()
	if delay > 0 {
		select {
		case <-ctx.Done():
			return Batch{}, ctx.Err()
		case <-time.After(delay):
		}
	}
	if dropErr != nil {
		return Batch{}, dropErr
	}
	b, err := f.Base.Fetch(ctx, from)
	f.fetches.Add(1)
	if err != nil || len(b.Frames) == 0 {
		return b, err
	}
	f.mu.Lock()
	corrupt, tear := false, false
	if f.corruptNext > 0 {
		f.corruptNext--
		corrupt = true
	}
	if f.halfCloseNext > 0 {
		f.halfCloseNext--
		tear = true
	}
	f.mu.Unlock()
	if corrupt || tear {
		// Mutate a copy: the wrapped transport may own the buffer.
		frames := append([]byte(nil), b.Frames...)
		if corrupt {
			frames[len(frames)/2] ^= 0xFF
		}
		if tear {
			frames = frames[:len(frames)-1]
		}
		b.Frames = frames
	}
	return b, nil
}
