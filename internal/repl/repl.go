// Package repl is WAL-shipped replication: a primary-side Shipper that
// streams committed write-ahead-log frames over long-poll HTTP, and a
// follower-side Applier that replays them through the follower's own
// ingest path.
//
// The design leans entirely on the log's record ordinals (PR4's WAL,
// upgraded with per-segment base headers): the stream position IS the
// follower's own durable record count, so after a crash the follower
// resumes from exactly what it persisted — catch-up is incremental by
// construction and there is no full-resync path to fall back on
// silently. The wire format is the disk format, checksums included, so
// one CRC covers disk, network, and the follower's re-append.
//
// Failure handling is the point of the package:
//
//   - The Shipper serves only up to the primary's durable watermark — a
//     follower can never observe a record the primary has not acked.
//   - Each follower's read position holds a retention pin on the
//     primary's WAL (plus the -wal-retain-segments floor), so log GC
//     cannot open a gap under a slow follower; a position that was
//     reclaimed anyway answers 410 Gone, loudly, never a quiet resync.
//   - The Applier retries with exponential backoff plus jitter and a
//     per-request timeout, applies the valid prefix of a torn or
//     corrupted batch exactly once, and never trusts the server's
//     cursor — it advances by what it actually applied.
package repl

import "context"

// Batch is one replication stream response: raw WAL frames plus the
// primary's cursors at the moment of the read.
type Batch struct {
	// Frames holds zero or more length-prefixed, CRC-guarded WAL frames
	// (wal.DecodeFrames walks them). Empty is a valid response: the
	// long-poll wait expired with nothing new — a keepalive that still
	// refreshes the follower's view of the primary's watermarks.
	Frames []byte
	// Next is the ordinal after the last shipped frame — advisory: the
	// applier advances its own cursor by the records it verifiably
	// applied, so a half-delivered batch cannot skip history.
	Next int64
	// Durable is the primary's durable record watermark (exclusive);
	// Next never exceeds it.
	Durable int64
	// PrimaryTick is the primary's highest applied tick (-1 while it has
	// ingested nothing). The follower's staleness bound is measured
	// against this.
	PrimaryTick int64
}

// Transport fetches one batch of committed WAL frames starting at
// ordinal from. Implementations must honor ctx (the applier's reconnect
// loop and shutdown both depend on it) and surface a reclaimed position
// as an error matching wal.ErrGone.
type Transport interface {
	Fetch(ctx context.Context, from int64) (Batch, error)
}
