package repl

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ppqtraj/internal/obs"
	"ppqtraj/internal/wal"
)

// Stream endpoint wire contract (GET /v1/repl/stream):
//
//	?from_lsn=N   required: first record ordinal the follower wants
//	?wait=DUR     optional long-poll budget when nothing is durable past
//	              from_lsn (clamped to ShipperOptions.MaxWait)
//	?follower=ID  optional stable follower identity; keeps a standing
//	              retention pin at the follower's position so WAL GC
//	              cannot reclaim records it still needs
//
//	200  body = raw WAL frames (possibly empty after a wait timeout)
//	     X-Ppq-Next-Lsn:     ordinal to resume at after this body
//	     X-Ppq-Durable-Lsn:  primary's durable watermark (exclusive)
//	     X-Ppq-Primary-Tick: primary's highest applied tick (-1 = none)
//	410  from_lsn was reclaimed; X-Ppq-Oldest-Lsn says what remains
//	416  from_lsn is beyond the primary's log — the follower is "ahead",
//	     which only a diverged or wrong primary can explain; not retryable
//	503  the log is closed or fail-stopped, or the shipper shut down

// Stream header and parameter names, shared with HTTPTransport.
const (
	headerNextLSN     = "X-Ppq-Next-Lsn"
	headerDurableLSN  = "X-Ppq-Durable-Lsn"
	headerPrimaryTick = "X-Ppq-Primary-Tick"
	headerOldestLSN   = "X-Ppq-Oldest-Lsn"
)

// ShipperOptions configures a Shipper.
type ShipperOptions struct {
	// WAL is the primary's log (required).
	WAL *wal.Log
	// PrimaryTick reports the primary's highest applied tick (-1 while
	// empty); it rides every response so followers can compute staleness.
	PrimaryTick func() int64
	// MaxBatchBytes bounds one response body (default 1 MiB).
	MaxBatchBytes int64
	// MaxWait caps a request's ?wait= long-poll budget (default 25s —
	// under common 30s proxy idle timeouts).
	MaxWait time.Duration
	// HoldTTL expires a follower's standing retention pin this long
	// after its last request (default 5 min). An expired follower that
	// comes back may find its position reclaimed — that is the honest
	// outcome; an eternal pin would let one dead follower fill the disk.
	HoldTTL time.Duration
	// Metrics, when set, registers the shipper's stream counters.
	Metrics *obs.Registry
	// Log receives hold lifecycle events; nil means silence.
	Log *obs.Logger

	// now overrides the hold-expiry clock in tests.
	now func() time.Time
}

// hold is one follower's standing retention pin.
type hold struct {
	release func()
	pos     int64
	seen    time.Time
}

// Shipper is the primary side of replication: an http.Handler that
// serves committed WAL frames with long-poll tailing and per-follower
// retention pins. Safe for concurrent use.
type Shipper struct {
	opts ShipperOptions

	mu     sync.Mutex
	holds  map[string]*hold
	closed bool

	streamRequests *obs.Counter
	shippedRecords *obs.Counter
}

// NewShipper returns a Shipper over the given WAL.
func NewShipper(opts ShipperOptions) *Shipper {
	if opts.WAL == nil {
		panic("repl: ShipperOptions.WAL is required")
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 1 << 20
	}
	if opts.MaxWait <= 0 {
		opts.MaxWait = 25 * time.Second
	}
	if opts.HoldTTL <= 0 {
		opts.HoldTTL = 5 * time.Minute
	}
	if opts.PrimaryTick == nil {
		opts.PrimaryTick = func() int64 { return -1 }
	}
	if opts.Log == nil {
		opts.Log = obs.Discard()
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	s := &Shipper{
		opts:           opts,
		holds:          make(map[string]*hold),
		streamRequests: &obs.Counter{},
		shippedRecords: &obs.Counter{},
	}
	if reg := opts.Metrics; reg != nil {
		s.streamRequests = reg.Counter("ppq_repl_stream_requests_total",
			"Replication stream requests served (including empty long-poll returns).")
		s.shippedRecords = reg.Counter("ppq_repl_shipped_records_total",
			"WAL records shipped to followers over the replication stream.")
		reg.GaugeFunc("ppq_repl_follower_holds",
			"Standing follower retention pins on the primary's WAL.",
			func() float64 { return float64(s.Stats().Holds) })
	}
	return s
}

// pin moves (or creates) the named follower's standing retention hold to
// pos. The new pin lands before the old one is released, so there is no
// instant at which GC could slip between them.
func (s *Shipper) pin(follower string, pos int64) {
	now := s.opts.now()
	release := s.opts.WAL.Pin(pos)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		release()
		return
	}
	old := s.holds[follower]
	s.holds[follower] = &hold{release: release, pos: pos, seen: now}
	// Sweep expired holds of followers that stopped asking; a pin must
	// not outlive its follower by more than the TTL.
	var expired []func()
	for id, h := range s.holds {
		if now.Sub(h.seen) > s.opts.HoldTTL {
			expired = append(expired, h.release)
			delete(s.holds, id)
			s.opts.Log.Warn("replication hold expired; follower absent past TTL",
				"follower", id, "pos", h.pos, "ttl", s.opts.HoldTTL)
		}
	}
	s.mu.Unlock()
	if old != nil {
		old.release()
	}
	for _, rel := range expired {
		rel()
	}
}

// ServeHTTP serves one stream request; see the wire contract above.
func (s *Shipper) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		http.Error(w, "repl: shipper is closed", http.StatusServiceUnavailable)
		return
	}
	s.streamRequests.Inc()
	q := req.URL.Query()
	from, err := strconv.ParseInt(q.Get("from_lsn"), 10, 64)
	if err != nil || from < 0 {
		http.Error(w, fmt.Sprintf("repl: bad from_lsn %q: want a non-negative integer", q.Get("from_lsn")),
			http.StatusBadRequest)
		return
	}
	wait := s.opts.MaxWait
	if raw := q.Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			http.Error(w, fmt.Sprintf("repl: bad wait %q: want a Go duration", raw), http.StatusBadRequest)
			return
		}
		if d < wait {
			wait = d
		}
	}
	if follower := q.Get("follower"); follower != "" {
		s.pin(follower, from)
	}

	l := s.opts.WAL
	if from >= l.DurableRec() && wait > 0 {
		// Nothing to ship yet: long-poll until the durable watermark
		// passes the requested ordinal or the wait budget expires. A
		// timeout is a normal empty response (a keepalive), not an error.
		ctx, cancel := context.WithTimeout(req.Context(), wait)
		err := l.WaitDurable(ctx, from)
		cancel()
		if err != nil && ctx.Err() == nil {
			// The log itself failed or closed — not the wait.
			http.Error(w, "repl: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	frames, next, err := l.ReadFrames(from, s.opts.MaxBatchBytes)
	switch {
	case errors.Is(err, wal.ErrGone):
		w.Header().Set(headerOldestLSN, strconv.FormatInt(l.OldestRec(), 10))
		http.Error(w, "repl: "+err.Error(), http.StatusGone)
		return
	case errors.Is(err, wal.ErrFuture):
		http.Error(w, "repl: "+err.Error(), http.StatusRequestedRangeNotSatisfiable)
		return
	case err != nil:
		http.Error(w, "repl: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerNextLSN, strconv.FormatInt(next, 10))
	w.Header().Set(headerDurableLSN, strconv.FormatInt(l.DurableRec(), 10))
	w.Header().Set(headerPrimaryTick, strconv.FormatInt(s.opts.PrimaryTick(), 10))
	w.Write(frames) //nolint:errcheck // a failed body write is the follower's problem; it refetches
	s.shippedRecords.Add(next - from)
}

// ShipperStats is a point-in-time snapshot of the shipper.
type ShipperStats struct {
	StreamRequests int64 `json:"stream_requests"`
	ShippedRecords int64 `json:"shipped_records"`
	Holds          int   `json:"follower_holds"`
}

// Stats snapshots the shipper's counters and live hold count.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	holds := len(s.holds)
	s.mu.Unlock()
	return ShipperStats{
		StreamRequests: s.streamRequests.Load(),
		ShippedRecords: s.shippedRecords.Load(),
		Holds:          holds,
	}
}

// Close releases every follower's retention pin and refuses further
// requests. In-flight long polls finish on their own (the WAL's close
// wakes them); Close only stops new pins from landing.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	holds := s.holds
	s.holds = make(map[string]*hold)
	s.mu.Unlock()
	for _, h := range holds {
		h.release()
	}
}
