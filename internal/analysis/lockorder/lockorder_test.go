package lockorder_test

import (
	"testing"

	"ppqtraj/internal/analysis/analysistest"
	"ppqtraj/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/wal")
}
