// Package wal is a fixture for the lockorder analyzer: syncMu before
// mu is the only permitted order, and no fsync may run while mu is
// held.
package wal

import (
	"os"
	"sync"
)

// Log mirrors the real WAL's lock layout.
type Log struct {
	mu     sync.Mutex
	syncMu sync.Mutex
	f      *os.File
	n      int64
}

// goodOrder takes syncMu first, releases mu across the fsync — the
// shape syncTo uses.
func (l *Log) goodOrder() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	f := l.f
	l.mu.Unlock()
	return f.Sync()
}

// badInversion acquires syncMu while holding mu.
func (l *Log) badInversion() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncMu.Lock() // want `syncMu.Lock\(\) while mu is held`
	l.syncMu.Unlock()
}

// badDirectFsync syncs the file with mu held.
func (l *Log) badDirectFsync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync() // want `fsync while mu is held`
}

// syncHelper fsyncs; harmless on its own.
func (l *Log) syncHelper() error {
	return l.f.Sync()
}

// badTransitiveFsync reaches syncHelper's fsync with mu held.
func (l *Log) badTransitiveFsync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncHelper() // want `call to syncHelper reaches an fsync while mu is held`
}

// lockHelper acquires syncMu; harmless on its own.
func (l *Log) lockHelper() {
	l.syncMu.Lock()
	l.syncMu.Unlock()
}

// badTransitiveInversion reaches lockHelper's syncMu.Lock with mu held.
func (l *Log) badTransitiveInversion() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lockHelper() // want `call to lockHelper acquires syncMu while mu is held`
}

// branchRelease unlocks mu on the early-return path and before the
// fsync on the main path; the analyzer must track both.
func (l *Log) branchRelease(skip bool) error {
	l.mu.Lock()
	if skip {
		l.mu.Unlock()
		return nil
	}
	f := l.f
	l.mu.Unlock()
	return f.Sync()
}

// sealLocked fsyncs under mu by design — the justified waiver keeps it
// and its callers clean.
//
//ppqvet:allow lockorder fixture twin of rotateLocked: seal and swap must
// be atomic under mu; rare and bounded.
func (l *Log) sealLocked() error {
	return l.f.Sync()
}

// rotate calls the waived sealLocked under mu: no finding.
func (l *Log) rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealLocked()
}

// unjustifiedWaiver has a waiver with no reason, which suppresses
// nothing.
func (l *Log) unjustifiedWaiver() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	//ppqvet:allow lockorder
	return l.f.Sync() // want `fsync while mu is held`
}
