// Package lockorder machine-checks the WAL's locking contract, which
// wal.go states in prose: "Lock order: syncMu before mu, never the
// reverse", and fsyncs run outside mu — Append runs under the serving
// layer's hot-tail lock, so an fsync reachable while mu is held stalls
// every hot-tail query behind the disk.
//
// Concretely, in packages named wal the analyzer reports:
//
//   - any syncMu.Lock() reachable while mu is held (directly or through
//     a same-package callee), and
//   - any fsync — a call to a method named Sync or Fsync that is not a
//     function declared in the package — reachable while mu is held.
//
// The analysis is a linear walk of each function body tracking which of
// the two mutexes are held (defers of Unlock keep the mutex held to the
// end of the function, branches that return are discarded), combined
// with a transitive may-fsync / may-acquire-syncMu summary over the
// package's call graph. Deliberate exceptions (rotation seals the old
// segment file under mu by design) carry //ppqvet:allow lockorder
// waivers with justifications; a waived call site contributes nothing
// to its callers' summaries.
package lockorder

import (
	"go/ast"
	"go/types"

	"ppqtraj/internal/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "in the WAL, never acquire syncMu (or reach an fsync) while mu is held; the only order is syncMu before mu",
	Run:  run,
}

// summary is one function's transitive locking facts.
type summary struct {
	acquiresSyncMu bool
	fsyncs         bool
	calls          []types.Object // same-package callees (unsuppressed sites)
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "wal" {
		return nil
	}

	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	sums := map[types.Object]*summary{}
	for obj, fd := range decls {
		sums[obj] = directFacts(pass, decls, fd)
	}
	// Fixpoint: propagate facts through same-package calls.
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			for _, callee := range s.calls {
				cs, ok := sums[callee]
				if !ok {
					continue
				}
				if cs.acquiresSyncMu && !s.acquiresSyncMu {
					s.acquiresSyncMu, changed = true, true
				}
				if cs.fsyncs && !s.fsyncs {
					s.fsyncs, changed = true, true
				}
			}
		}
	}

	for obj, fd := range decls {
		w := &walker{pass: pass, decls: decls, sums: sums, self: obj}
		w.walkStmts(fd.Body.List, map[string]bool{})
	}
	return nil
}

// directFacts computes one function's own facts and call edges, skipping
// waived sites. Function-literal bodies are excluded: a closure's
// locking behavior belongs to whoever eventually runs it.
func directFacts(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, fd *ast.FuncDecl) *summary {
	s := &summary{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pass.Suppressed(call.Pos()) {
			return true
		}
		if mx, method := mutexOp(call); mx == "syncMu" && method == "Lock" {
			s.acquiresSyncMu = true
			return true
		}
		callee := analysis.Callee(pass.TypesInfo, call)
		if callee != nil {
			if _, declared := decls[callee]; declared {
				s.calls = append(s.calls, callee)
				return true
			}
		}
		if isRawFsync(call, callee) {
			s.fsyncs = true
		}
		return true
	})
	return s
}

// mutexOp decodes expressions of the shape <path>.mu.Lock() into the
// mutex field name and the method, ("", "") otherwise.
func mutexOp(call *ast.CallExpr) (mutex, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	method = sel.Sel.Name
	if method != "Lock" && method != "Unlock" {
		return "", ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name, method
	case *ast.Ident:
		return x.Name, method
	}
	return "", ""
}

// isRawFsync reports whether call is a Sync/Fsync method call that is
// not a function declared in this package (os.File.Sync, the File seam's
// Sync, a raw fd fsync).
func isRawFsync(call *ast.CallExpr, callee types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if name := sel.Sel.Name; name != "Sync" && name != "Fsync" {
		return false
	}
	// A mutex method can never be named Sync; anything reaching here is a
	// file-ish receiver or an unresolvable callee — treat both as fsync.
	_ = callee
	return true
}

// walker performs the held-set walk over one function.
type walker struct {
	pass  *analysis.Pass
	decls map[types.Object]*ast.FuncDecl
	sums  map[types.Object]*summary
	self  types.Object
}

// walkStmts processes stmts in order, mutating held.
func (w *walker) walkStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, st := range stmts {
		w.walkStmt(st, held)
	}
}

func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (w *walker) walkStmt(st ast.Stmt, held map[string]bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		w.checkExpr(st.X, held)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if mx, method := mutexOp(call); mx == "mu" || mx == "syncMu" {
				held[mx] = method == "Lock"
			}
		}
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		w.checkExpr(st, held)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.checkExpr(e, held)
		}
	case *ast.DeferStmt:
		// Defers run at function exit under an unknowable held set; a
		// deferred Unlock keeps the mutex held for the rest of the walk.
	case *ast.GoStmt:
		// A goroutine does not inherit the spawner's held locks.
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.checkExpr(st.Cond, held)
		before := copyHeld(held)
		bodyHeld := copyHeld(held)
		w.walkStmts(st.Body.List, bodyHeld)
		bodyEnds := terminates(st.Body.List)
		var elseHeld map[string]bool
		elseEnds := false
		if st.Else != nil {
			elseHeld = copyHeld(before)
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				w.walkStmts(e.List, elseHeld)
				elseEnds = terminates(e.List)
			case *ast.IfStmt:
				w.walkStmt(e, elseHeld)
			}
		}
		switch {
		case !bodyEnds && st.Else == nil:
			merge(held, bodyHeld)
		case !bodyEnds && elseHeld != nil && elseEnds:
			replace(held, bodyHeld)
		case bodyEnds && elseHeld != nil && !elseEnds:
			replace(held, elseHeld)
		case !bodyEnds && elseHeld != nil:
			merge(held, bodyHeld)
			merge(held, elseHeld)
		case bodyEnds && st.Else == nil:
			// Fall through with the pre-if state.
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			w.checkExpr(st.Cond, held)
		}
		inner := copyHeld(held)
		w.walkStmts(st.Body.List, inner)
	case *ast.RangeStmt:
		w.checkExpr(st.X, held)
		inner := copyHeld(held)
		w.walkStmts(st.Body.List, inner)
	case *ast.BlockStmt:
		w.walkStmts(st.List, held)
	case *ast.SwitchStmt:
		if st.Tag != nil {
			w.checkExpr(st.Tag, held)
		}
		w.walkCases(st.Body, held)
	case *ast.TypeSwitchStmt:
		w.walkCases(st.Body, held)
	case *ast.SelectStmt:
		w.walkCases(st.Body, held)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, held)
	}
}

func (w *walker) walkCases(body *ast.BlockStmt, held map[string]bool) {
	for _, cs := range body.List {
		inner := copyHeld(held)
		switch cs := cs.(type) {
		case *ast.CaseClause:
			w.walkStmts(cs.Body, inner)
		case *ast.CommClause:
			w.walkStmts(cs.Body, inner)
		}
	}
}

// merge ORs locked states (conservative toward "held").
func merge(dst, src map[string]bool) {
	for k, v := range src {
		if v {
			dst[k] = true
		}
	}
}

func replace(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// checkExpr reports violations for every call under e given the current
// held set. Function-literal bodies are walked with an empty held set —
// when the closure runs is the caller's business.
func (w *walker) checkExpr(e ast.Node, held map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.walkStmts(fl.Body.List, map[string]bool{})
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !held["mu"] {
			return true
		}
		if mx, method := mutexOp(call); mx == "syncMu" && method == "Lock" {
			w.pass.Reportf(call.Pos(),
				"syncMu.Lock() while mu is held: the WAL's lock order is syncMu before mu, never the reverse")
			return true
		}
		callee := analysis.Callee(w.pass.TypesInfo, call)
		if callee != nil {
			if s, declared := w.sums[callee]; declared {
				if s.acquiresSyncMu {
					w.pass.Reportf(call.Pos(),
						"call to %s acquires syncMu while mu is held: the WAL's lock order is syncMu before mu, never the reverse", callee.Name())
				}
				if s.fsyncs {
					w.pass.Reportf(call.Pos(),
						"call to %s reaches an fsync while mu is held: fsyncs must run outside the log mutex", callee.Name())
				}
				return true
			}
		}
		if isRawFsync(call, callee) {
			w.pass.Reportf(call.Pos(),
				"fsync while mu is held: fsyncs must run outside the log mutex (hold syncMu across the sync instead)")
		}
		return true
	})
}
