// Package atomichygiene enforces all-or-nothing atomicity on struct
// fields: a field that is ever accessed through a sync/atomic function
// (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&s.flag), ...) must be
// accessed that way everywhere. A plain read of an atomically-written
// counter is a data race the race detector only catches when the racing
// schedule actually happens, and go vet does not flag the mix at all.
// The repository's instruments migrated to typed atomics (atomic.Int64
// and friends, immune by construction), so any function-style atomic
// that creeps back in gets its plain accesses flagged here.
//
// The check is package-local: Go fields are only addressable from their
// declaring package unless exported, and exported mixed access would be
// a design smell far beyond what one analyzer should bless.
package atomichygiene

import (
	"go/ast"
	"go/types"
	"strings"

	"ppqtraj/internal/analysis"
)

// Analyzer is the atomichygiene check.
var Analyzer = &analysis.Analyzer{
	Name: "atomichygiene",
	Doc:  "a field accessed via sync/atomic functions must never be read or written plainly elsewhere",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: fields passed by address to sync/atomic functions, with one
	// representative site for the report.
	atomicFields := map[types.Object]ast.Node{}
	// Sites already inside an atomic call, so pass 2 can skip them.
	inAtomicCall := map[*ast.SelectorExpr]bool{}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			if !strings.HasPrefix(callee.Name(), "Add") && !strings.HasPrefix(callee.Name(), "Load") &&
				!strings.HasPrefix(callee.Name(), "Store") && !strings.HasPrefix(callee.Name(), "Swap") &&
				!strings.HasPrefix(callee.Name(), "CompareAndSwap") {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := fieldObject(pass.TypesInfo, sel); obj != nil {
					if _, seen := atomicFields[obj]; !seen {
						atomicFields[obj] = call
					}
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selector resolving to one of those fields is a
	// plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			obj := fieldObject(pass.TypesInfo, sel)
			if obj == nil {
				return true
			}
			if _, hot := atomicFields[obj]; hot {
				pass.Reportf(sel.Pos(),
					"plain access of field %s, which is accessed with sync/atomic elsewhere: use the atomic API everywhere or a typed atomic (atomic.Int64 et al.)",
					obj.Name())
			}
			return true
		})
	}
	return nil
}

// fieldObject resolves sel to the struct-field object it selects, nil
// for methods, package selectors, and qualified identifiers.
func fieldObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}
