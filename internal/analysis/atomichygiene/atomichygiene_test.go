package atomichygiene_test

import (
	"testing"

	"ppqtraj/internal/analysis/analysistest"
	"ppqtraj/internal/analysis/atomichygiene"
)

func TestAtomicHygiene(t *testing.T) {
	analysistest.Run(t, atomichygiene.Analyzer, "testdata/a")
}
