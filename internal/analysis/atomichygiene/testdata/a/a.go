// Package a is a fixture for the atomichygiene analyzer: a field
// touched through sync/atomic functions anywhere must be touched that
// way everywhere.
package a

import "sync/atomic"

// stats mixes one disciplined field, one typed atomic, and one field
// with split-brain access.
type stats struct {
	hits   int64        // always via atomic.* — clean
	misses int64        // atomic writes, plain reads — flagged
	evict  atomic.Int64 // typed atomic: immune by construction
	name   string       // never atomic
}

func (s *stats) record(hit bool) {
	if hit {
		atomic.AddInt64(&s.hits, 1)
	} else {
		atomic.AddInt64(&s.misses, 1)
	}
	s.evict.Add(1)
}

func (s *stats) snapshotGood() int64 {
	return atomic.LoadInt64(&s.hits) + s.evict.Load()
}

func (s *stats) snapshotBad() int64 {
	return s.misses // want `plain access of field misses`
}

func (s *stats) resetBad() {
	s.misses = 0 // want `plain access of field misses`
}

func (s *stats) label() string {
	return s.name // never atomic anywhere: fine
}

// localShadow has its own misses variable; only the field is tracked.
func localShadow() int64 {
	misses := int64(3)
	return misses
}
