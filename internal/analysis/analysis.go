// Package analysis is a self-contained, dependency-free reimplementation
// of the golang.org/x/tools/go/analysis surface the repository's static
// checkers need: an Analyzer is a named check, a Pass hands it one
// type-checked package, and diagnostics it reports become ppqvet
// findings. The build environment deliberately carries no third-party
// modules, so rather than importing x/tools the framework rebuilds the
// small slice of it we use on top of go/ast, go/types, and the go
// toolchain's own export data (see load.go).
//
// The analyzers encode invariants that previously lived only in comments
// and reviewer memory — lock ordering in the WAL, durable publication of
// persistent artifacts, cancellation checks on the read path, atomic
// field hygiene, and metric naming. cmd/ppqvet runs them as a hard CI
// gate alongside go vet.
//
// Deliberate, reviewed exceptions are waived in the source with a
//
//	//ppqvet:allow <analyzer> <justification>
//
// comment on the offending line, the line above it, or the enclosing
// function's doc comment. A waiver without a justification is itself a
// finding: exceptions must say why they are safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //ppqvet:allow
	// waivers. Lower-case, no spaces.
	Name string
	// Doc is the one-line invariant statement shown by ppqvet -help.
	Doc string
	// Run inspects one package via pass and reports findings through
	// pass.Reportf. It returns an error only for operational failures
	// (findings are not errors).
	Run func(pass *Pass) error
}

// Diagnostic is one finding: a position and a human-readable message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// IsStdlib reports whether an import path belongs to the standard
	// library (ctxcancel uses it to tell cheap stdlib helpers from
	// module-local work inside loops). Never nil.
	IsStdlib func(path string) bool

	diags    []Diagnostic
	suppress *suppressIndex
}

// Reportf records a finding unless a //ppqvet:allow waiver covers pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Suppressed(pos) {
		return
	}
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far, in position order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool { return p.diags[i].Pos < p.diags[j].Pos })
	return p.diags
}

// Suppressed reports whether a //ppqvet:allow waiver for this analyzer
// covers pos: same line, the line immediately above, or the doc comment
// of the enclosing function declaration. Analyzers that build
// whole-program summaries (lockorder) consult it directly so a waived
// call site does not poison its callers.
func (p *Pass) Suppressed(pos token.Pos) bool {
	if p.suppress == nil {
		p.suppress = buildSuppressIndex(p.Fset, p.Files)
	}
	return p.suppress.covers(p.Analyzer.Name, p.Fset, pos)
}

// waiverRe matches "ppqvet:allow name1,name2 justification..." inside a
// comment's text.
var waiverRe = regexp.MustCompile(`ppqvet:allow\s+([a-z0-9_,]+)(\s+\S.*)?`)

type waiver struct {
	names     map[string]bool
	justified bool
}

type suppressIndex struct {
	// byLine maps file name + line to the waiver on that line.
	byLine map[string]map[int]waiver
	// funcRanges maps file name to the position ranges of function
	// declarations whose doc comment carries a waiver.
	funcRanges map[string][]funcWaiver
}

type funcWaiver struct {
	from, to token.Pos
	w        waiver
}

func parseWaiver(text string) (waiver, bool) {
	m := waiverRe.FindStringSubmatch(text)
	if m == nil {
		return waiver{}, false
	}
	w := waiver{names: map[string]bool{}, justified: strings.TrimSpace(m[2]) != ""}
	for _, n := range strings.Split(m[1], ",") {
		if n = strings.TrimSpace(n); n != "" {
			w.names[n] = true
		}
	}
	return w, true
}

func buildSuppressIndex(fset *token.FileSet, files []*ast.File) *suppressIndex {
	idx := &suppressIndex{
		byLine:     map[string]map[int]waiver{},
		funcRanges: map[string][]funcWaiver{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				w, ok := parseWaiver(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]waiver{}
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = w
				// A waiver anywhere in a comment group also covers the
				// line the group ends on, so multi-line justifications
				// still waive the statement that follows them.
				if end := fset.Position(cg.End()).Line; end != pos.Line {
					lines[end] = w
				}
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if w, ok := parseWaiver(c.Text); ok {
					name := fset.Position(fd.Pos()).Filename
					idx.funcRanges[name] = append(idx.funcRanges[name],
						funcWaiver{from: fd.Pos(), to: fd.End(), w: w})
				}
			}
		}
	}
	return idx
}

func (idx *suppressIndex) covers(analyzer string, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	if lines, ok := idx.byLine[p.Filename]; ok {
		for _, line := range []int{p.Line, p.Line - 1} {
			if w, ok := lines[line]; ok && w.names[analyzer] && w.justified {
				return true
			}
		}
	}
	for _, fw := range idx.funcRanges[p.Filename] {
		if pos >= fw.from && pos < fw.to && fw.w.names[analyzer] && fw.w.justified {
			return true
		}
	}
	return false
}
