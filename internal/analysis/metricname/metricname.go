// Package metricname enforces the observability naming contract from
// PR7: every series registered on an obs.Registry is ppq_-prefixed,
// lower_snake_case, and carries the suffix its instrument kind demands —
// counters end in _total, histograms carry a unit suffix (_seconds,
// _bytes, _count, or _points), and gauges never claim _total (that
// suffix promises monotonicity to every PromQL rate() downstream).
// Names are checked where they are string literals — at Registry
// registration calls and in obs.Sample literals emitted by snapshot
// sources; a name that reaches the registry through a variable is
// outside the analyzer's reach and must be audited by review.
package metricname

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"ppqtraj/internal/analysis"
)

// Analyzer is the metricname check.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "obs.Registry metric names must be ppq_-prefixed snake_case with the kind-appropriate suffix (_total for counters, a unit for histograms)",
	Run:  run,
}

// registrationKind maps Registry method names to the naming rule family.
var registrationKind = map[string]string{
	"Counter":      "counter",
	"CounterVec":   "counter",
	"Gauge":        "gauge",
	"GaugeFunc":    "gauge",
	"Histogram":    "histogram",
	"HistogramVec": "histogram",
}

var nameRe = regexp.MustCompile(`^ppq_[a-z0-9_]+$`)

var histogramUnits = []string{"_seconds", "_bytes", "_count", "_points"}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRegistration(pass, n)
			case *ast.CompositeLit:
				checkSample(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkRegistration validates the literal name of a Registry
// registration call.
func checkRegistration(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	kind, ok := registrationKind[sel.Sel.Name]
	if !ok || len(call.Args) == 0 {
		return
	}
	recv, okSel := pass.TypesInfo.Selections[sel]
	if !okSel {
		return
	}
	tname, tpkg := analysis.NamedTypeName(recv.Recv())
	if tname != "Registry" || tpkg == nil || tpkg.Name() != "obs" {
		return
	}
	name, ok := literalString(call.Args[0])
	if !ok {
		return // dynamic name: not checkable here
	}
	checkName(pass, call.Args[0].Pos(), kind, name)
}

// checkSample validates obs.Sample{Name: "...", Kind: ...} literals.
func checkSample(pass *analysis.Pass, lit *ast.CompositeLit) {
	tname, tpkg := analysis.NamedTypeName(pass.TypesInfo.TypeOf(lit))
	if tname != "Sample" || tpkg == nil || tpkg.Name() != "obs" {
		return
	}
	var name string
	var namePos ast.Expr
	kind := ""
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			if s, ok := literalString(kv.Value); ok {
				name, namePos = s, kv.Value
			}
		case "Kind":
			switch kindIdent(kv.Value) {
			case "KindCounter":
				kind = "counter"
			case "KindGauge":
				kind = "gauge"
			case "KindHistogram":
				kind = "histogram"
			}
		}
	}
	if namePos == nil {
		return
	}
	// An elided or dynamic Kind gets only the prefix/charset rules; the
	// suffix rules need the instrument kind to be visible in the literal.
	if kind == "" {
		kind = "unknown"
	}
	checkName(pass, namePos.Pos(), kind, name)
}

// checkName applies the prefix, charset, and kind-suffix rules.
func checkName(pass *analysis.Pass, pos token.Pos, kind, name string) {
	if !nameRe.MatchString(name) {
		pass.Reportf(pos, "metric name %q must match ppq_[a-z0-9_]+ (ppq_ prefix, lower snake_case)", name)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter %q must end in _total", name)
		}
	case "histogram":
		if !hasHistogramUnit(name) {
			pass.Reportf(pos, "histogram %q must carry a unit suffix (%s)", name, strings.Join(histogramUnits, ", "))
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "gauge %q must not end in _total (that suffix promises a monotonic counter)", name)
		}
	}
}

func literalString(e ast.Expr) (string, bool) {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func kindIdent(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

func hasHistogramUnit(name string) bool {
	for _, u := range histogramUnits {
		if strings.HasSuffix(name, u) {
			return true
		}
	}
	return false
}
