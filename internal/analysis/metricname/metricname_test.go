package metricname_test

import (
	"testing"

	"ppqtraj/internal/analysis/analysistest"
	"ppqtraj/internal/analysis/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, metricname.Analyzer, "testdata/m")
}
