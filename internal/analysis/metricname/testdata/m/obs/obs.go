// Package obs is a fixture stub of the real observability registry:
// just enough surface for the metricname analyzer to resolve
// registration calls and Sample literals.
package obs

type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

type Sample struct {
	Name  string
	Kind  Kind
	Value float64
}

type Counter struct{ v int64 }

type Gauge struct{ v float64 }

type Histogram struct{ sum float64 }

type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter             { return &Counter{} }
func (r *Registry) CounterVec(name, help string, labels ...string) *Counter { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge                 { return &Gauge{} }
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{}
}
func (r *Registry) HistogramVec(name, help string, labels ...string) *Histogram {
	return &Histogram{}
}
