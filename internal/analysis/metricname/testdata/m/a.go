// Package m is a fixture for the metricname analyzer: literal metric
// names at obs.Registry registration sites and in obs.Sample literals
// must be ppq_-prefixed snake_case with the kind-appropriate suffix.
package m

import "obs"

func register(r *obs.Registry) {
	// Clean registrations.
	r.Counter("ppq_requests_total", "served requests")
	r.CounterVec("ppq_errors_total", "errors by class", "class")
	r.Gauge("ppq_segments_open", "open segments")
	r.GaugeFunc("ppq_heap_bytes", "heap in use", func() float64 { return 0 })
	r.Histogram("ppq_query_seconds", "query latency", nil)
	r.HistogramVec("ppq_batch_points", "points per batch", "stage")

	// Prefix and charset violations.
	r.Counter("requests_total", "missing prefix")       // want `metric name "requests_total" must match ppq_`
	r.Gauge("ppq_HeapBytes", "camel case")              // want `metric name "ppq_HeapBytes" must match ppq_`
	r.Histogram("ppq-query-seconds", "kebab case", nil) // want `metric name "ppq-query-seconds" must match ppq_`

	// Kind-suffix violations.
	r.Counter("ppq_requests", "counter without _total")            // want `counter "ppq_requests" must end in _total`
	r.CounterVec("ppq_errors_count", "wrong counter suffix", "c")  // want `counter "ppq_errors_count" must end in _total`
	r.Histogram("ppq_query_latency", "histogram without unit", nil) // want `histogram "ppq_query_latency" must carry a unit suffix`
	r.Gauge("ppq_segments_total", "gauge claiming monotonicity")   // want `gauge "ppq_segments_total" must not end in _total`

	// Dynamic names are out of reach by design: no finding.
	name := "whatever_total"
	r.Counter(name, "dynamic")
}

// registerRepl mirrors the replication family: counters for stream
// traffic, gauges for lag and connection state.
func registerRepl(r *obs.Registry) {
	r.Counter("ppq_repl_stream_reconnects_total", "stream reconnects")
	r.Counter("ppq_repl_applied_records_total", "records applied")
	r.GaugeFunc("ppq_repl_lag_ticks", "replica staleness", func() float64 { return 0 })
	r.GaugeFunc("ppq_repl_connected", "stream up", func() float64 { return 0 })

	r.Counter("ppq_repl_applied_records", "counter dropped _total")       // want `counter "ppq_repl_applied_records" must end in _total`
	r.GaugeFunc("ppq_repl_lag_total", "gauge grabbed _total", func() float64 { return 0 }) // want `gauge "ppq_repl_lag_total" must not end in _total`
	r.Counter("repl_reconnects_total", "lost the ppq_ prefix")            // want `metric name "repl_reconnects_total" must match ppq_`
}

func snapshot() []obs.Sample {
	return []obs.Sample{
		{Name: "ppq_wal_syncs_total", Kind: obs.KindCounter},
		{Name: "ppq_compaction_seconds", Kind: obs.KindHistogram},
		{Name: "ppq_cache_entries", Kind: obs.KindGauge},
		{Name: "wal_syncs_total", Kind: obs.KindCounter},    // want `metric name "wal_syncs_total" must match ppq_`
		{Name: "ppq_wal_syncs", Kind: obs.KindCounter},      // want `counter "ppq_wal_syncs" must end in _total`
		{Name: "ppq_cache_total", Kind: obs.KindGauge},      // want `gauge "ppq_cache_total" must not end in _total`
		{Name: "ppq_flush_elapsed", Kind: obs.KindHistogram}, // want `histogram "ppq_flush_elapsed" must carry a unit suffix`
		// Elided Kind: only the prefix rule applies.
		{Name: "ppq_misc_value"},
		{Name: "Misc_Value"}, // want `metric name "Misc_Value" must match ppq_`
	}
}

// waived shows a justified waiver suppressing a legacy name.
func waived(r *obs.Registry) {
	//ppqvet:allow metricname legacy dashboard series pinned until Q4 migration
	r.Counter("legacy_requests", "grandfathered")
}
