package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the object a call expression invokes: a package-level
// function, a method, or nil when the call is through a function value
// or type conversion the checker cannot pin to one object.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified call
	}
	return nil
}

// IsPkgFunc reports whether obj is the function pkgPath.name, with
// pkgPath matched on the import path exactly.
func IsPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	_, isFunc := obj.(*types.Func)
	return isFunc && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ReceiverTypeName returns the name of a method declaration's receiver
// type ("" for plain functions), with any pointer stripped.
func ReceiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// NamedTypeName returns the name and package of typ's underlying named
// type, unwrapping one pointer ("", nil when unnamed).
func NamedTypeName(typ types.Type) (string, *types.Package) {
	if ptr, ok := typ.(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	named, ok := typ.(*types.Named)
	if !ok {
		return "", nil
	}
	return named.Obj().Name(), named.Obj().Pkg()
}
