package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// IsStdlib reports whether an import path is standard library,
	// answered from the build list rather than heuristics.
	IsStdlib func(path string) bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// Load type-checks every package matched by patterns (run from dir, a
// directory inside the module) and returns them ready for analysis.
//
// It shells out to `go list -deps -export -json`, which compiles each
// dependency just far enough to produce export data in the build cache,
// then parses the matched packages from source and type-checks them with
// the gc importer reading that export data — the same split the real
// go/analysis driver uses, with the go toolchain itself standing in for
// golang.org/x/tools (which this build environment does not vendor).
// Everything works offline; nothing is fetched.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	universe, err := goList(dir, append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, err
	}
	targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listPkg, len(universe))
	for _, p := range universe {
		byPath[p.ImportPath] = p
	}
	isStdlib := func(path string) bool {
		p, ok := byPath[path]
		return ok && p.Standard
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		p, ok := byPath[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(p.Export)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("analysis: loading %s: %s", t.ImportPath, t.Error.Err)
		}
		meta := byPath[t.ImportPath]
		if meta == nil {
			meta = t
		}
		if len(meta.GoFiles) == 0 {
			continue
		}
		pkg, err := checkFromSource(fset, meta, imp, isStdlib)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// checkFromSource parses meta's files and type-checks them against
// export data for every import.
func checkFromSource(fset *token.FileSet, meta *listPkg, imp types.Importer, isStdlib func(string) bool) (*Package, error) {
	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(meta.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", meta.ImportPath, err)
	}
	return &Package{
		Path:      meta.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		IsStdlib:  isStdlib,
	}, nil
}

// NewTypesInfo allocates the full set of type-checker result maps the
// analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// goList runs `go list -json=<fields> args...` in dir and decodes the
// JSON stream.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmdArgs := append([]string{"list", "-json=ImportPath,Dir,Export,GoFiles,Standard,Error"}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// RunAnalyzer applies one analyzer to one loaded package and returns its
// findings.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		IsStdlib:  pkg.IsStdlib,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return pass.Diagnostics(), nil
}
