// Package analysistest runs an analyzer over a fixture directory and
// checks its findings against // want annotations, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract closely enough
// for golden-file tests of the repository's own analyzers.
//
// A fixture directory holds one target package (its *.go files) plus
// optional subdirectories, each an importable fixture-local package
// whose import path is its directory name. A line expecting a finding
// carries a comment of the form
//
//	code() // want "regexp" "another regexp"
//
// Every want regexp must match a finding reported on its line, and
// every finding must match a want on its line; anything else fails the
// test. Standard-library imports in fixtures are resolved through the
// go toolchain's export data, so fixtures may import os, sync, context,
// and friends freely without network access.
package analysistest

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"ppqtraj/internal/analysis"
)

// Run analyzes the fixture rooted at dir with a and reports annotation
// mismatches on t.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	diags, fset, files, err := analyze(a, dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	checkWants(t, fset, files, diags)
}

// analyze loads the fixture's target package and runs the analyzer.
func analyze(a *analysis.Analyzer, dir string) ([]analysis.Diagnostic, *token.FileSet, []*ast.File, error) {
	fset := token.NewFileSet()
	imp := &fixtureImporter{root: dir, fset: fset, locals: map[string]*types.Package{}, stdExports: map[string]string{}}
	files, tpkg, info, err := imp.checkDir(dir, "")
	if err != nil {
		return nil, nil, nil, err
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
		IsStdlib:  imp.isStdlib,
	}
	if err := a.Run(pass); err != nil {
		return nil, nil, nil, err
	}
	return pass.Diagnostics(), fset, files, nil
}

// fixtureImporter resolves fixture-local packages from source and
// everything else through gc export data produced by `go list -export`.
type fixtureImporter struct {
	root       string
	fset       *token.FileSet
	locals     map[string]*types.Package
	stdExports map[string]string // import path -> export data file
	gc         types.Importer
}

func (fi *fixtureImporter) isStdlib(path string) bool {
	_, ok := fi.stdExports[path]
	return ok
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.locals[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(fi.root, filepath.FromSlash(path)); isDir(dir) {
		_, pkg, _, err := fi.checkDir(dir, path)
		if err != nil {
			return nil, err
		}
		fi.locals[path] = pkg
		return pkg, nil
	}
	if err := fi.ensureExport(path); err != nil {
		return nil, err
	}
	if fi.gc == nil {
		fi.gc = importer.ForCompiler(fi.fset, "gc", func(p string) (io.ReadCloser, error) {
			f, ok := fi.stdExports[p]
			if !ok {
				if err := fi.ensureExport(p); err != nil {
					return nil, err
				}
				f = fi.stdExports[p]
			}
			return os.Open(f)
		})
	}
	return fi.gc.Import(path)
}

// ensureExport records export data files for path and its transitive
// dependencies.
func (fi *fixtureImporter) ensureExport(path string) error {
	if _, ok := fi.stdExports[path]; ok {
		return nil
	}
	cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", path)
	cmd.Dir = fi.root
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -export %s: %v", path, err)
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			fi.stdExports[p.ImportPath] = p.Export
		}
	}
	if _, ok := fi.stdExports[path]; !ok {
		return fmt.Errorf("no export data for %q", path)
	}
	return nil
}

// checkDir parses and type-checks the single package in dir. pkgPath ""
// means the fixture's target package (named after its package clause).
func (fi *fixtureImporter) checkDir(dir, pkgPath string) ([]*ast.File, *types.Package, *types.Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if pkgPath == "" {
		pkgPath = files[0].Name.Name
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: fi, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(pkgPath, fi.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking fixture %s: %w", dir, err)
	}
	return files, tpkg, info, nil
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// checkWants cross-checks findings against // want annotations.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, am := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					pat := am[1]
					if pat == "" {
						pat = am[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	matched := map[key][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		ok := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[k][i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: unexpected finding: %s", pos, d.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: no finding matched %q", k.file, k.line, re)
			}
		}
	}
}
