// Package serve is a fixture: raw os file publication outside
// durableSwap must be flagged; durableSwap itself and read-only os use
// must not.
package serve

import (
	"os"
	"path/filepath"
)

// durableSwap mirrors the real publish helper; its raw os calls are the
// one sanctioned site.
func durableSwap(dir, name string, write func(*os.File) (int64, error)) (int64, error) {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return 0, err
	}
	n, err := write(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return n, err
	}
	return n, os.Rename(tmp.Name(), filepath.Join(dir, name))
}

// persistGood publishes through durableSwap.
func persistGood(dir string, blob []byte) error {
	_, err := durableSwap(dir, "seg-000001.ppqs", func(f *os.File) (int64, error) {
		n, err := f.Write(blob)
		return int64(n), err
	})
	return err
}

// persistBad writes a temp file by hand and renames it raw — the crash
// window durableSwap exists to close.
func persistBad(dir string, blob []byte) error {
	tmp, err := os.CreateTemp(dir, "seg.tmp*") // want `raw os.CreateTemp in persistBad`
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "MANIFEST.json")) // want `raw os.Rename in persistBad`
}

// writeStats uses the convenience writers that skip fsync entirely.
func writeStats(dir string, blob []byte) error {
	if err := os.WriteFile(filepath.Join(dir, "stats.json"), blob, 0o644); err != nil { // want `raw os.WriteFile in writeStats`
		return err
	}
	f, err := os.Create(filepath.Join(dir, "stats2.json")) // want `raw os.Create in writeStats`
	if err != nil {
		return err
	}
	return f.Close()
}

// appendLog creates through OpenFile, which is just Create with flags.
func appendLog(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644) // want `raw os.OpenFile\(\.\.\., O_CREATE, \.\.\.\) in appendLog`
	if err != nil {
		return err
	}
	return f.Close()
}

// readOnly never creates or publishes anything; os reads are fine.
func readOnly(dir string) ([]byte, error) {
	f, err := os.Open(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return os.ReadFile(filepath.Join(dir, "seg-000001.ppqs"))
}

// waived shows a justified escape hatch.
func waived(dir string) error {
	//ppqvet:allow durableswap scratch file on a tmpfs the recovery path never reads
	f, err := os.Create(filepath.Join(dir, "scratch.bin"))
	if err != nil {
		return err
	}
	return f.Close()
}
