// Package repl is a fixture: the replication layer persists only
// through the WAL today, so any raw os file publication that creeps in
// (a hand-rolled cursor file, a snapshot bootstrap) must be flagged the
// same way serve's and wal's are.
package repl

import (
	"os"
	"path/filepath"
	"strconv"
)

// saveCursorBad persists a stream cursor with the convenience writer —
// no fsync, no atomic publish: a crash can leave a torn or empty cursor
// and turn incremental catch-up into a full replay.
func saveCursorBad(dir string, lsn int64) error {
	return os.WriteFile(filepath.Join(dir, "CURSOR"), []byte(strconv.FormatInt(lsn, 10)), 0o644) // want `raw os.WriteFile in saveCursorBad`
}

// snapshotBad stages a bootstrap snapshot by hand and renames it raw.
func snapshotBad(dir string, blob []byte) error {
	tmp, err := os.CreateTemp(dir, "snap.tmp*") // want `raw os.CreateTemp in snapshotBad`
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "SNAPSHOT")) // want `raw os.Rename in snapshotBad`
}

// loadCursor only reads; os reads are fine.
func loadCursor(dir string) (int64, error) {
	b, err := os.ReadFile(filepath.Join(dir, "CURSOR"))
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(string(b), 10, 64)
}
