package durableswap_test

import (
	"testing"

	"ppqtraj/internal/analysis/analysistest"
	"ppqtraj/internal/analysis/durableswap"
)

func TestDurableSwap(t *testing.T) {
	analysistest.Run(t, durableswap.Analyzer, "testdata/serve")
	analysistest.Run(t, durableswap.Analyzer, "testdata/repl")
}
