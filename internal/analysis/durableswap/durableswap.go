// Package durableswap enforces the serving layer's durable-publication
// invariant: every persistent artifact (segment blobs, zone-map
// sidecars, the manifest, WAL files) reaches the filesystem through
// durableSwap's temp-write → fsync → rename → dir-fsync sequence, or
// through the WAL's own OSFS writer seam. A raw os.Rename or os.Create
// against the data directory can publish a file whose contents — or
// whose directory entry — a crash silently discards, which is exactly
// the class of bug the crash-recovery suite exists to rule out.
//
// The analyzer applies to packages named serve, wal, and repl and flags
// direct calls to os.Rename, os.Create, os.CreateTemp, os.WriteFile, and
// os.OpenFile with O_CREATE, unless the call happens inside a function
// named durableSwap or a method of the OSFS seam type. repl is in scope
// because replication state (stream cursors, any future snapshot
// bootstrap) is exactly the kind of artifact a crash must not tear: a
// follower today persists only through the WAL, and this gate keeps any
// future file write in the package honest.
package durableswap

import (
	"go/ast"

	"ppqtraj/internal/analysis"
)

// Analyzer is the durableswap check.
var Analyzer = &analysis.Analyzer{
	Name: "durableswap",
	Doc:  "persistent artifacts in serve/wal must be published via durableSwap or the WAL's OSFS seam, never raw os file writes",
	Run:  run,
}

// flagged are the os functions that create or publish a file.
var flagged = map[string]bool{
	"Rename":     true,
	"Create":     true,
	"CreateTemp": true,
	"WriteFile":  true,
}

func run(pass *analysis.Pass) error {
	if name := pass.Pkg.Name(); name != "serve" && name != "wal" && name != "repl" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "durableSwap" || analysis.ReceiverTypeName(fd) == "OSFS" {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.Callee(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "os" {
			return true
		}
		switch {
		case flagged[callee.Name()]:
			pass.Reportf(call.Pos(),
				"raw os.%s in %s: persistent artifacts must be published via durableSwap (temp write, fsync, rename, dir fsync)",
				callee.Name(), fd.Name.Name)
		case callee.Name() == "OpenFile" && mentionsCreate(call):
			pass.Reportf(call.Pos(),
				"raw os.OpenFile(..., O_CREATE, ...) in %s: persistent artifacts must be created via durableSwap or the FS seam",
				fd.Name.Name)
		}
		return true
	})
}

// mentionsCreate reports whether any argument references os.O_CREATE.
func mentionsCreate(call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "O_CREATE" {
				found = true
			}
			return !found
		})
	}
	return found
}
