// Package exec is a fixture for the ctxcancel analyzer's iterator rule:
// in exec packages, every Next method's loop that does module-local
// work must observe a context — the receiver's ctx field counts.
package exec

import "context"

type batch struct{ ticks []int }

type source struct {
	ctx   context.Context
	cells []int
}

// decode stands in for module-local per-pull work.
func (s *source) decode(cell int) int { return cell * 2 }

// Next observes the receiver's ctx field each iteration: clean.
func (s *source) Next() (*batch, bool) {
	for _, c := range s.cells {
		if s.ctx.Err() != nil {
			return nil, false
		}
		s.decode(c)
	}
	return nil, false
}

type leaky struct {
	ctx   context.Context
	cells []int
}

func (l *leaky) decode(cell int) int { return cell * 2 }

// Next loops over module work without ever consulting a context.
func (l *leaky) Next() (*batch, bool) {
	for _, c := range l.cells { // want `loop in exported Next calls module code without observing a context`
		l.decode(c)
	}
	return nil, false
}

type clipper struct {
	ctx context.Context
	ids []int
}

// Next only shuffles materialized data through builtins; exempt.
func (c *clipper) Next() (*batch, bool) {
	out := make([]int, 0, len(c.ids))
	for _, id := range c.ids {
		out = append(out, id)
	}
	return &batch{ticks: out}, len(out) > 0
}

// Pull is not a Next method and takes no context: out of scope.
func (c *clipper) Pull() int {
	n := 0
	for _, id := range c.ids {
		n += c.decodeish(id)
	}
	return n
}

func (c *clipper) decodeish(id int) int { return id }
