// Package a is a fixture for the ctxcancel analyzer: exported
// ctx-taking functions must observe a context inside every loop that
// does module-local work.
package a

import (
	"context"
	"sort"
)

type engine struct{ cells []int }

// decode stands in for module-local per-iteration work.
func (e *engine) decode(cell int) int { return cell * 2 }

// ScanBad walks cells without ever consulting ctx.
func (e *engine) ScanBad(ctx context.Context, out []int) error {
	for i, c := range e.cells { // want `loop in exported ScanBad calls module code without observing a context`
		out[i] = e.decode(c)
	}
	return nil
}

// ScanGood checks ctx.Err each iteration.
func (e *engine) ScanGood(ctx context.Context, out []int) error {
	for i, c := range e.cells {
		if err := ctx.Err(); err != nil {
			return err
		}
		out[i] = e.decode(c)
	}
	return nil
}

// ScanDelegated passes ctx to a ctx-aware callee instead of checking
// directly.
func (e *engine) ScanDelegated(ctx context.Context, out []int) error {
	for i, c := range e.cells {
		v, err := e.decodeCtx(ctx, c)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

func (e *engine) decodeCtx(ctx context.Context, cell int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.decode(cell), nil
}

// ScanNested checks ctx in the outer loop only; the short inner
// scatter loop is covered by the ancestor's per-iteration check.
func (e *engine) ScanNested(ctx context.Context, out [][]int) error {
	for i := range e.cells {
		if err := ctx.Err(); err != nil {
			return err
		}
		for j := range out[i] {
			out[i][j] = e.decode(j)
		}
	}
	return nil
}

// ScanClosure observes a shadowing ctx parameter inside the worker
// closure, which counts.
func (e *engine) ScanClosure(ctx context.Context, out []int) {
	run := func(ctx context.Context, lo, hi int) {
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return
			}
			out[i] = e.decode(i)
		}
	}
	run(ctx, 0, len(out))
}

// MergeOnly shuffles already-materialized data through stdlib helpers;
// no module work, no finding.
func (e *engine) MergeOnly(ctx context.Context, out []int) {
	for range e.cells {
		sort.Ints(out)
		out = append(out, len(out))
	}
}

// unexportedScan is internal plumbing; its caller owns the contract.
func (e *engine) unexportedScan(ctx context.Context, out []int) {
	for i, c := range e.cells {
		out[i] = e.decode(c)
	}
}

// ScanWaived relabels a bounded slice after ctx is already done.
func (e *engine) ScanWaived(ctx context.Context, out []int) {
	<-ctx.Done()
	//ppqvet:allow ctxcancel runs only after ctx is done; bounded relabel
	for i := range out {
		out[i] = e.decode(i)
	}
}
