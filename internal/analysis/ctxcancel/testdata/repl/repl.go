// Package repl is a fixture shaped like the replication applier: an
// exported ctx-taking Run loop that fetches and applies batches forever.
// A fetch/apply loop that never consults its context survives shutdown —
// Close blocks on a goroutine that will not notice cancellation.
package repl

import "context"

type batch struct{ recs int }

type transport struct{}

// fetch stands in for module-local network work.
func (t *transport) fetch(from int64) (batch, error) { return batch{}, nil }

// fetchCtx is the ctx-aware variant.
func (t *transport) fetchCtx(ctx context.Context, from int64) (batch, error) {
	if err := ctx.Err(); err != nil {
		return batch{}, err
	}
	return batch{}, nil
}

type applier struct {
	tr   *transport
	next int64
}

// RunBad streams forever without ever observing ctx: cancellation (and
// the server's Close) never reaches it.
func (a *applier) RunBad(ctx context.Context) error {
	for { // want `loop in exported RunBad calls module code without observing a context`
		b, err := a.tr.fetch(a.next)
		if err != nil {
			continue
		}
		a.next += int64(b.recs)
	}
}

// RunGood threads ctx through the fetch, so cancellation lands at the
// blocking call — the shape the real applier uses.
func (a *applier) RunGood(ctx context.Context) error {
	for {
		b, err := a.tr.fetchCtx(ctx, a.next)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			continue
		}
		a.next += int64(b.recs)
	}
}

// ApplyBatch checks ctx per record before module-local work.
func (a *applier) ApplyBatch(ctx context.Context, recs []batch) (int, error) {
	for i, b := range recs {
		if err := ctx.Err(); err != nil {
			return i, err
		}
		if _, err := a.tr.fetchCtx(ctx, int64(b.recs)); err != nil {
			return i, err
		}
	}
	return len(recs), nil
}
