package ctxcancel_test

import (
	"testing"

	"ppqtraj/internal/analysis/analysistest"
	"ppqtraj/internal/analysis/ctxcancel"
)

func TestCtxCancel(t *testing.T) {
	analysistest.Run(t, ctxcancel.Analyzer, "testdata/a")
}
