package ctxcancel_test

import (
	"testing"

	"ppqtraj/internal/analysis/analysistest"
	"ppqtraj/internal/analysis/ctxcancel"
)

func TestCtxCancel(t *testing.T) {
	analysistest.Run(t, ctxcancel.Analyzer, "testdata/a")
}

// TestCtxCancelReplApplier covers the replication-applier shape: an
// exported Run(ctx) that loops on fetch/apply must let cancellation
// reach the blocking call.
func TestCtxCancelReplApplier(t *testing.T) {
	analysistest.Run(t, ctxcancel.Analyzer, "testdata/repl")
}

// TestCtxCancelExecIterators covers the iterator rule: in exec
// packages, Next methods are checked even though the context lives on
// the receiver rather than in the parameter list.
func TestCtxCancelExecIterators(t *testing.T) {
	analysistest.Run(t, ctxcancel.Analyzer, "testdata/exec")
}
