// Package ctxcancel enforces the read path's cancellation contract:
// an exported function or method that accepts a context.Context must
// observe that context inside every loop that does real work, either by
// checking ctx.Err()/ctx.Done() directly or by passing ctx into a
// callee that does. A scan loop that never consults its context turns
// the per-request deadline (and a client hanging up) into a no-op — the
// goroutine grinds through segments long after the response is gone.
//
// "Real work" is any call that leaves the standard library: module-
// local calls can decode postings, walk segments, or take locks, so a
// loop containing one must be cancellable. Loops that only shuffle
// already-materialized data through stdlib helpers (sort, append, map
// merges) are bounded by their inputs and exempt — requiring a ctx
// check per merge iteration would be noise, not safety.
//
// The executor's iterators carry their context as a receiver field
// rather than a parameter (the Iterator contract's Next takes no
// arguments), so in exec packages every Next method is held to the same
// rule: a Next loop that calls module code must observe a context —
// the receiver's ctx field counts, exactly like a parameter.
package ctxcancel

import (
	"go/ast"
	"go/types"
	"strings"

	"ppqtraj/internal/analysis"
)

// Analyzer is the ctxcancel check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcancel",
	Doc:  "exported ctx-taking functions must observe ctx inside every loop that calls module code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !takesContext(pass, fd) && !isIteratorNext(pass, fd) {
				continue
			}
			checkLoops(pass, fd, fd.Body, false)
		}
	}
	return nil
}

// takesContext reports whether fd has a named context.Context parameter.
func takesContext(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) && len(field.Names) > 0 {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	name, pkg := analysis.NamedTypeName(t)
	return name == "Context" && pkg != nil && pkg.Path() == "context"
}

// isIteratorNext reports whether fd is an iterator Next method in an
// exec package — the pull-based operator contract, whose context lives
// on the receiver instead of in the parameter list.
func isIteratorNext(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Next" || fd.Recv == nil || pass.Pkg == nil {
		return false
	}
	path := pass.Pkg.Path()
	return path == "exec" || strings.HasSuffix(path, "/exec")
}

// checkLoops walks node flagging loops that do module-local work without
// a context in sight. covered means an enclosing loop already observes a
// context each iteration, which bounds how stale this loop can run — the
// convention the read path actually uses (an outer per-trajectory
// ctx.Err() check covering a short inner scatter loop).
func checkLoops(pass *analysis.Pass, fd *ast.FuncDecl, node ast.Node, covered bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		ok := covered || mentionsContext(pass, body)
		if !ok && callsModuleCode(pass, body) {
			pass.Reportf(n.Pos(),
				"loop in exported %s calls module code without observing a context: check ctx.Err() or pass ctx to a callee inside the loop",
				fd.Name.Name)
		}
		checkLoops(pass, fd, body, ok)
		return false // the recursive call owns the subtree
	})
}

// mentionsContext reports whether any identifier under root is a value
// of type context.Context — the function's own ctx parameter, a
// shadowing closure parameter, or a derived context all count.
func mentionsContext(pass *analysis.Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// callsModuleCode reports whether body contains a call that leaves the
// standard library (same-package calls, module imports, and calls
// through function values all count; stdlib and builtins do not).
func callsModuleCode(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // type conversion, not a call
		}
		switch callee := analysis.Callee(pass.TypesInfo, call).(type) {
		case *types.Builtin, *types.TypeName:
			return true // len/append/... or a conversion: free
		case *types.Func:
			if callee.Pkg() == nil || pass.IsStdlib(callee.Pkg().Path()) {
				return true // stdlib helper: bounded by its inputs
			}
		}
		// Module-local function or method, or a call through a function
		// value whose target the checker cannot see: assume real work.
		found = true
		return false
	})
	return found
}
