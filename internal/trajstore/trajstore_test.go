package trajstore

import (
	"math/rand"
	"testing"

	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/store"
	"ppqtraj/internal/traj"
)

func region() geo.Rect { return geo.NewRect(0, 0, 100, 100) }

func TestNewPanicsOnEmptyRegion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Options{})
}

func TestSplitOnOverflow(t *testing.T) {
	s := New(Options{Region: region(), MaxPointsPerCell: 10, MinPointsPerCell: 1})
	rng := rand.New(rand.NewSource(1))
	ids := make([]traj.ID, 50)
	pts := make([]geo.Point, 50)
	for i := range pts {
		ids[i] = traj.ID(i)
		pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	s.Append(ids, pts, 0)
	if s.Stats().Splits == 0 {
		t.Fatal("50 points with a 10-point cap must split")
	}
	if s.NumCells() < 4 {
		t.Fatalf("NumCells = %d", s.NumCells())
	}
	if s.NumPoints() != 50 {
		t.Fatalf("NumPoints = %d", s.NumPoints())
	}
}

func TestMergeSparseSiblings(t *testing.T) {
	s := New(Options{Region: region(), MaxPointsPerCell: 4, MinPointsPerCell: 3})
	// Force a split with clustered points...
	ids := []traj.ID{0, 1, 2, 3, 4}
	pts := []geo.Point{
		geo.Pt(10, 10), geo.Pt(12, 12), geo.Pt(90, 90), geo.Pt(88, 88), geo.Pt(50, 50),
	}
	s.Append(ids, pts, 0)
	_ = s.NumCells()
	// The merge pass runs per Append; with few points and MinPointsPerCell
	// 3, deep sparse sibling groups collapse back.
	if s.Stats().Splits > 0 && s.Stats().Merges == 0 {
		// Merging is opportunistic; at minimum the tree must stay
		// consistent (all points findable).
		for i, p := range pts {
			found := false
			for _, id := range s.Lookup(p, 0, nil) {
				if id == ids[i] {
					found = true
				}
			}
			if !found {
				t.Fatalf("point %d lost after split/merge", i)
			}
		}
	}
}

func TestLookupFiltersByTick(t *testing.T) {
	s := New(Options{Region: region(), MaxPointsPerCell: 100})
	s.Append([]traj.ID{1}, []geo.Point{geo.Pt(10, 10)}, 0)
	s.Append([]traj.ID{2}, []geo.Point{geo.Pt(10, 10)}, 1)
	got := s.Lookup(geo.Pt(10, 10), 0, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("tick 0 lookup = %v", got)
	}
	got = s.Lookup(geo.Pt(10, 10), 1, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("tick 1 lookup = %v", got)
	}
}

func TestClampKeepsOutOfRegionPoints(t *testing.T) {
	s := New(Options{Region: region(), MaxPointsPerCell: 100})
	s.Append([]traj.ID{7}, []geo.Point{geo.Pt(-50, 500)}, 0)
	if s.NumPoints() != 1 {
		t.Fatal("clamped point lost")
	}
	got := s.Lookup(geo.Pt(-50, 500), 0, nil)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("lookup = %v", got)
	}
}

func TestCompressFixedProportionalBudget(t *testing.T) {
	d := gen.Porto(gen.Config{NumTrajectories: 15, MinLen: 30, MaxLen: 50, Seed: 2})
	s := New(Options{Region: gen.PortoRegion.Expand(0.01), MaxPointsPerCell: 64})
	_ = d.Stream(func(col *traj.Column) error {
		s.Append(col.IDs, col.Points, col.Tick)
		return nil
	})
	f, used, err := s.CompressFixed(128, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumPoints != d.NumPoints() {
		t.Fatalf("NumPoints = %d, want %d", f.NumPoints, d.NumPoints())
	}
	if used == 0 || used > 128+s.NumCells() {
		t.Fatalf("codewords used = %d", used)
	}
	if f.MAE() <= 0 {
		t.Fatal("MAE should be positive")
	}
}

func TestCompressBoundedRespectsEps(t *testing.T) {
	d := gen.Porto(gen.Config{NumTrajectories: 10, MinLen: 30, MaxLen: 40, Seed: 4})
	s := New(Options{Region: gen.PortoRegion.Expand(0.01), MaxPointsPerCell: 64})
	_ = d.Stream(func(col *traj.Column) error {
		s.Append(col.IDs, col.Points, col.Tick)
		return nil
	})
	eps := geo.MetersToDegrees(300)
	f, words, err := s.CompressBounded(eps, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxDeviation() > eps+1e-12 {
		t.Fatalf("max deviation %v > eps", f.MaxDeviation())
	}
	if words == 0 {
		t.Fatal("no codewords")
	}
}

func TestDiskLayoutTimeInterleavingCostsIOs(t *testing.T) {
	// The Table 9 effect: one cell holds many ticks, so a single query
	// reads all of the cell's pages.
	s := New(Options{Region: region(), MaxPointsPerCell: 1 << 20}) // never split
	ids := []traj.ID{0, 1, 2, 3}
	for tick := 0; tick < 2000; tick++ {
		pts := []geo.Point{geo.Pt(10, 10), geo.Pt(11, 11), geo.Pt(12, 12), geo.Pt(13, 13)}
		s.Append(ids, pts, tick)
	}
	ps := store.New(4096)
	s.AssignPages(ps)
	rt := ps.BeginRead()
	s.Lookup(geo.Pt(10, 10), 1000, rt)
	// 8000 entries * 20 B = 160 kB / 4 kB pages = ~40 pages for one query.
	if rt.PagesTouched() < 10 {
		t.Fatalf("expected a multi-page fetch, got %d", rt.PagesTouched())
	}
}

func TestSizeBytesGrowsWithData(t *testing.T) {
	s := New(Options{Region: region(), MaxPointsPerCell: 100})
	before := s.SizeBytes()
	ids := make([]traj.ID, 100)
	pts := make([]geo.Point, 100)
	rng := rand.New(rand.NewSource(5))
	for i := range pts {
		ids[i] = traj.ID(i)
		pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	s.Append(ids, pts, 0)
	if s.SizeBytes() <= before {
		t.Fatal("size should grow with data")
	}
}

func TestCellRectContainsQuery(t *testing.T) {
	s := New(Options{Region: region(), MaxPointsPerCell: 4})
	rng := rand.New(rand.NewSource(6))
	var ids []traj.ID
	var pts []geo.Point
	for i := 0; i < 100; i++ {
		ids = append(ids, traj.ID(i))
		pts = append(pts, geo.Pt(rng.Float64()*100, rng.Float64()*100))
	}
	s.Append(ids, pts, 0)
	for i := 0; i < 20; i++ {
		q := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		r := s.CellRect(q)
		if !r.Contains(q) && !r.ContainsClosed(q) {
			t.Fatalf("cell %v does not contain query %v", r, q)
		}
	}
}

func TestAllPointsSurviveMaintenance(t *testing.T) {
	// Property: regardless of split/merge churn, every inserted point is
	// findable at its tick.
	rng := rand.New(rand.NewSource(7))
	s := New(Options{Region: region(), MaxPointsPerCell: 8, MinPointsPerCell: 4})
	type key struct {
		id   traj.ID
		tick int
	}
	positions := map[key]geo.Point{}
	for tick := 0; tick < 10; tick++ {
		n := 30
		ids := make([]traj.ID, n)
		pts := make([]geo.Point, n)
		for i := 0; i < n; i++ {
			ids[i] = traj.ID(i)
			pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
			positions[key{ids[i], tick}] = pts[i]
		}
		s.Append(ids, pts, tick)
	}
	for k, p := range positions {
		found := false
		for _, id := range s.Lookup(p, k.tick, nil) {
			if id == k.id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point %v lost", k)
		}
	}
}
