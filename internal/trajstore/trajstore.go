// Package trajstore implements the TrajStore baseline [Cudre-Mauroux,
// Wu & Madden, ICDE 2010] as the paper uses it (§6.1): an adaptive
// quadtree spatial index whose leaf cells store trajectory segments, with
// recursive split/merge/append maintenance under streaming input, and
// per-cell quantization with codewords allocated in proportion to each
// cell's point count (the comparison protocol of §6.2.1).
//
// TrajStore's defining weakness in the paper's experiments falls out of
// the structure: the spatial index is shared by all timestamps, so a
// cell's points span a large time range and a spatio-temporal query must
// fetch every page of the cell (Table 9's I/O blow-up), and the
// summarization cannot start until the index has absorbed the full
// stream (§6.2.1).
package trajstore

import (
	"time"

	"ppqtraj/internal/baseline"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/quant"
	"ppqtraj/internal/store"
	"ppqtraj/internal/traj"
)

// Options configures a Store.
type Options struct {
	// Region is the spatial extent of the root cell.
	Region geo.Rect
	// MaxPointsPerCell triggers a split when a leaf exceeds it.
	MaxPointsPerCell int
	// MinPointsPerCell triggers merging four leaf siblings whose combined
	// population falls below it.
	MinPointsPerCell int
	// MaxDepth bounds the quadtree depth.
	MaxDepth int
	// Seed makes per-cell quantization deterministic.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxPointsPerCell <= 0 {
		o.MaxPointsPerCell = 512
	}
	if o.MinPointsPerCell <= 0 {
		o.MinPointsPerCell = o.MaxPointsPerCell / 4
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 16
	}
	return o
}

// entry is one indexed trajectory point.
type entry struct {
	id   traj.ID
	tick int
	p    geo.Point
}

type node struct {
	rect     geo.Rect
	depth    int
	children *[4]*node
	entries  []entry
	pages    store.PageRange
	placed   bool
}

func (n *node) leaf() bool { return n.children == nil }

func (n *node) childIdx(p geo.Point) int {
	c := n.rect.Center()
	i := 0
	if p.X >= c.X {
		i |= 1
	}
	if p.Y >= c.Y {
		i |= 2
	}
	return i
}

func (n *node) childRect(i int) geo.Rect {
	c := n.rect.Center()
	switch i {
	case 0:
		return geo.Rect{MinX: n.rect.MinX, MinY: n.rect.MinY, MaxX: c.X, MaxY: c.Y}
	case 1:
		return geo.Rect{MinX: c.X, MinY: n.rect.MinY, MaxX: n.rect.MaxX, MaxY: c.Y}
	case 2:
		return geo.Rect{MinX: n.rect.MinX, MinY: c.Y, MaxX: c.X, MaxY: n.rect.MaxY}
	default:
		return geo.Rect{MinX: c.X, MinY: c.Y, MaxX: n.rect.MaxX, MaxY: n.rect.MaxY}
	}
}

// Stats reports maintenance work.
type Stats struct {
	Splits, Merges, Appends int
	BuildTime               time.Duration
}

// Store is a streaming TrajStore instance.
type Store struct {
	opts      Options
	root      *node
	numPoints int
	stats     Stats
	lastTick  int
}

// New creates a Store over the given region.
func New(opts Options) *Store {
	opts = opts.withDefaults()
	if opts.Region.Empty() {
		panic("trajstore: Region must be non-empty")
	}
	return &Store{opts: opts, root: &node{rect: opts.Region}, lastTick: -1}
}

// Stats returns the maintenance counters.
func (s *Store) Stats() Stats { return s.stats }

// NumPoints returns the points ingested so far.
func (s *Store) NumPoints() int { return s.numPoints }

// Append ingests one timestamp of points (streaming input, as the paper's
// re-implementation does). Points outside the region are clamped to it.
func (s *Store) Append(ids []traj.ID, pts []geo.Point, tick int) {
	start := time.Now()
	defer func() { s.stats.BuildTime += time.Since(start) }()
	s.lastTick = tick
	for i, p := range pts {
		p = s.clamp(p)
		s.insert(s.root, entry{id: ids[i], tick: tick, p: p})
		s.numPoints++
		s.stats.Appends++
	}
	// Merge pass: collapse sparse sibling groups (recursive update of the
	// spatial index by merging, per the paper's description).
	s.mergeSparse(s.root)
}

func (s *Store) clamp(p geo.Point) geo.Point {
	r := s.opts.Region
	if p.X < r.MinX {
		p.X = r.MinX
	}
	if p.X >= r.MaxX {
		p.X = r.MaxX - 1e-12
	}
	if p.Y < r.MinY {
		p.Y = r.MinY
	}
	if p.Y >= r.MaxY {
		p.Y = r.MaxY - 1e-12
	}
	return p
}

func (s *Store) insert(n *node, e entry) {
	for !n.leaf() {
		n = n.children[n.childIdx(e.p)]
	}
	n.entries = append(n.entries, e)
	if len(n.entries) > s.opts.MaxPointsPerCell && n.depth < s.opts.MaxDepth {
		s.split(n)
	}
}

func (s *Store) split(n *node) {
	var ch [4]*node
	for i := range ch {
		ch[i] = &node{rect: n.childRect(i), depth: n.depth + 1}
	}
	n.children = &ch
	for _, e := range n.entries {
		c := ch[n.childIdx(e.p)]
		c.entries = append(c.entries, e)
	}
	n.entries = nil
	s.stats.Splits++
}

// mergeSparse collapses internal nodes whose children are all leaves with
// a combined population below MinPointsPerCell.
func (s *Store) mergeSparse(n *node) {
	if n.leaf() {
		return
	}
	for _, c := range n.children {
		s.mergeSparse(c)
	}
	total := 0
	for _, c := range n.children {
		if !c.leaf() {
			return
		}
		total += len(c.entries)
	}
	if total >= s.opts.MinPointsPerCell {
		return
	}
	var merged []entry
	for _, c := range n.children {
		merged = append(merged, c.entries...)
	}
	n.entries = merged
	n.children = nil
	s.stats.Merges++
}

// leaves returns all leaf nodes in deterministic (DFS) order.
func (s *Store) leaves() []*node {
	var out []*node
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf() {
			out = append(out, n)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(s.root)
	return out
}

// NumCells returns the number of leaf cells.
func (s *Store) NumCells() int { return len(s.leaves()) }

// CompressFixed quantizes every cell's points, allocating a share of
// totalWords codewords proportional to the cell's population (§6.2.1's
// fairness protocol: "the codewords are assigned in proportion to the
// number of trajectory points for every spatial cell"). It returns the
// per-point reconstructions as a FlatSummary plus the total codewords
// actually used.
func (s *Store) CompressFixed(totalWords int, seed int64) (*baseline.FlatSummary, int, error) {
	col := baseline.NewCollector("TrajStore")
	used, codeBits := 0, 0
	for _, leaf := range s.leaves() {
		n := len(leaf.entries)
		if n == 0 {
			continue
		}
		v := totalWords * n / maxInt(1, s.numPoints)
		if v < 1 {
			v = 1
		}
		pts := make([]geo.Point, n)
		for i, e := range leaf.entries {
			pts[i] = e.p
		}
		res := quant.FixedKMeans(pts, v, 20, seed)
		used += res.Book.Len()
		codeBits += n * bitsFor(res.Book.Len())
		for i, e := range leaf.entries {
			col.Add(e.id, e.tick, e.p, res.Book.Word(res.Codes[i]))
		}
	}
	f, err := col.Finish()
	if err != nil {
		return nil, 0, err
	}
	f.Codewords = used
	f.BookBytes = used*16 + s.DirectoryBytes()
	f.CodeBits = codeBits
	return f, used, nil
}

// CompressBounded quantizes every cell with an ε-bounded incremental
// quantizer (the Tables 5–6 / Figure 9 protocol) and returns the summary
// plus total codewords. With clustered set, each cell uses the
// bounded-clustering growth path (the paper's quantizer, slower but with
// smaller codebooks). The summary's size accounting covers the per-cell
// codebooks, per-point codeword indexes, and the tree directory.
func (s *Store) CompressBounded(eps float64, clustered bool) (*baseline.FlatSummary, int, error) {
	col := baseline.NewCollector("TrajStore")
	words, codeBits := 0, 0
	for _, leaf := range s.leaves() {
		if len(leaf.entries) == 0 {
			continue
		}
		var q *quant.Incremental
		if clustered {
			q = quant.NewIncrementalClustered(eps)
		} else {
			q = quant.NewIncremental(eps)
		}
		pts := make([]geo.Point, len(leaf.entries))
		for i, e := range leaf.entries {
			pts[i] = e.p
		}
		idxs := q.Quantize(pts)
		for i, e := range leaf.entries {
			col.Add(e.id, e.tick, e.p, q.Book.Word(idxs[i]))
		}
		words += q.Book.Len()
		codeBits += len(leaf.entries) * bitsFor(q.Book.Len())
	}
	f, err := col.Finish()
	if err != nil {
		return nil, 0, err
	}
	f.Codewords = words
	f.BookBytes = words*16 + s.DirectoryBytes()
	f.CodeBits = codeBits
	return f, words, nil
}

// bitsFor returns ⌈log₂ n⌉ with bitsFor(1) = 1.
func bitsFor(n int) int {
	if n <= 1 {
		if n == 1 {
			return 1
		}
		return 0
	}
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// DirectoryBytes returns the size of the quadtree directory alone (no
// point payloads): what the compressed representation must keep to route
// queries.
func (s *Store) DirectoryBytes() int {
	sz := 0
	var walk func(n *node)
	walk = func(n *node) {
		sz += 40
		if !n.leaf() {
			for _, c := range n.children {
				walk(c)
			}
		}
	}
	walk(s.root)
	return sz
}

// Lookup returns the IDs of points stored in the leaf cell containing p
// with the given tick, charging page I/Os through rt when provided. In
// TrajStore the whole cell must be fetched: its pages hold points of all
// timestamps interleaved.
func (s *Store) Lookup(p geo.Point, tick int, rt *store.ReadTracker) []traj.ID {
	n := s.root
	p = s.clamp(p)
	for !n.leaf() {
		n = n.children[n.childIdx(p)]
	}
	if rt != nil && n.placed {
		rt.Read(n.pages)
	}
	var out []traj.ID
	for _, e := range n.entries {
		if e.tick == tick {
			out = append(out, e.id)
		}
	}
	return out
}

// CellRect returns the leaf cell rectangle containing p.
func (s *Store) CellRect(p geo.Point) geo.Rect {
	n := s.root
	p = s.clamp(p)
	for !n.leaf() {
		n = n.children[n.childIdx(p)]
	}
	return n.rect
}

// SizeBytes returns the serialized index size: tree directory plus 20
// bytes per entry (id, tick, two coordinates quantized to 32 bits each).
func (s *Store) SizeBytes() int {
	sz := 0
	var walk func(n *node)
	walk = func(n *node) {
		sz += 40 // rect + node header
		if n.leaf() {
			sz += len(n.entries) * 20
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(s.root)
	return sz
}

// AssignPages lays each leaf cell's entries out contiguously on the page
// store in DFS order.
func (s *Store) AssignPages(ps *store.PageStore) {
	ps.AlignToPage()
	for _, leaf := range s.leaves() {
		leaf.pages = ps.Alloc(len(leaf.entries) * 20)
		leaf.placed = true
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
