package core

import (
	"bytes"
	"testing"

	"ppqtraj/internal/gen"
	"ppqtraj/internal/partition"
)

func roundTrip(t *testing.T, s *Summary) *Summary {
	t.Helper()
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != buf.Len() {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSerializeRoundTripPPQS(t *testing.T) {
	d := gen.Porto(gen.Config{NumTrajectories: 15, MinLen: 30, MaxLen: 50, Seed: 3})
	s := Build(d, DefaultOptions(partition.Spatial, 0.1))
	got := roundTrip(t, s)
	if got.NumPoints != s.NumPoints {
		t.Fatalf("NumPoints %d vs %d", got.NumPoints, s.NumPoints)
	}
	// The loaded summary's decoder-rebuilt reconstructions must be
	// bit-identical to the original build's.
	for _, id := range s.TrajIDs() {
		a, b := s.Trajs[id], got.Trajs[id]
		if b == nil || a.Start != b.Start || len(a.Recon) != len(b.Recon) {
			t.Fatalf("trajectory %d shape mismatch", id)
		}
		for i := range a.Recon {
			if a.Recon[i] != b.Recon[i] {
				t.Fatalf("trajectory %d point %d: %v vs %v", id, i, a.Recon[i], b.Recon[i])
			}
		}
	}
	if got.SizeBytes() != s.SizeBytes() {
		t.Fatalf("SizeBytes %d vs %d", got.SizeBytes(), s.SizeBytes())
	}
}

func TestSerializeRoundTripVariants(t *testing.T) {
	d := gen.Porto(gen.Config{NumTrajectories: 10, MinLen: 25, MaxLen: 35, Seed: 4})
	cases := map[string]Options{
		"autocorr":    DefaultOptions(partition.Autocorr, 0.2),
		"epq-basic":   {K: 3, Epsilon1: 0.001, Mode: partition.None},
		"qtraj":       {K: 3, Epsilon1: 0.001, Mode: partition.None, NoPrediction: true},
		"fixed-words": {K: 3, Mode: partition.Spatial, EpsilonP: 0.1, FixedWords: 8},
	}
	for name, opts := range cases {
		s := Build(d, opts)
		got := roundTrip(t, s)
		for _, id := range s.TrajIDs() {
			a, b := s.Trajs[id], got.Trajs[id]
			for i := range a.Recon {
				if a.Recon[i] != b.Recon[i] {
					t.Fatalf("%s: trajectory %d point %d mismatch", name, id, i)
				}
			}
		}
	}
}

func TestReadSummaryRejectsGarbage(t *testing.T) {
	if _, err := ReadSummary(bytes.NewReader([]byte("not a summary at all"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := ReadSummary(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
	// Truncated stream.
	d := gen.Porto(gen.Config{NumTrajectories: 5, MinLen: 20, MaxLen: 25, Seed: 5})
	s := Build(d, DefaultOptions(partition.Spatial, 0.1))
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadSummary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestReadSummaryRejectsWrongVersion(t *testing.T) {
	d := gen.Porto(gen.Config{NumTrajectories: 3, MinLen: 20, MaxLen: 22, Seed: 6})
	s := Build(d, DefaultOptions(partition.Spatial, 0.1))
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 0xFF // corrupt the version field
	if _, err := ReadSummary(bytes.NewReader(b)); err == nil {
		t.Fatal("expected error for unsupported version")
	}
}

func TestSerializeSizeReasonable(t *testing.T) {
	// The wire size should be in the same ballpark as the accounted
	// summary size (wire uses varints and full floats, so allow slack).
	d := gen.Porto(gen.Config{NumTrajectories: 20, MinLen: 40, MaxLen: 60, Seed: 7})
	s := Build(d, DefaultOptions(partition.Spatial, 0.1))
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 8*s.SizeBytes() {
		t.Fatalf("wire size %d ≫ accounted size %d", buf.Len(), s.SizeBytes())
	}
	if buf.Len() >= d.RawBytes() {
		t.Fatalf("wire size %d should still beat raw %d", buf.Len(), d.RawBytes())
	}
}
