package core

import (
	"bytes"
	"runtime"
	"testing"

	"ppqtraj/internal/gen"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/traj"
)

// detOpts is a build configuration exercising every parallel phase:
// feature extraction (Autocorr), per-partition fitting, and CQC coding.
func detOpts(mode partition.Mode) Options {
	epsP := 0.1
	if mode == partition.Autocorr {
		epsP = 0.2
	}
	o := DefaultOptions(mode, epsP)
	o.Seed = 42
	return o
}

func serializedBuild(t *testing.T, d *traj.Dataset, o Options) []byte {
	t.Helper()
	s := Build(d, o)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return buf.Bytes()
}

// TestParallelBuildBitIdentical is the determinism regression test of the
// parallel Append pipeline: with Seed set, a build must serialize to
// byte-identical summaries across GOMAXPROCS settings and worker counts.
// Work is split on fixed index ranges and merged in input order, so
// parallelism may only change speed, never output.
func TestParallelBuildBitIdentical(t *testing.T) {
	d := gen.Porto(gen.Config{NumTrajectories: 60, MinLen: 40, MaxLen: 80, Seed: 9})
	for _, mode := range []partition.Mode{partition.Spatial, partition.Autocorr} {
		o := detOpts(mode)

		prev := runtime.GOMAXPROCS(0)
		defer runtime.GOMAXPROCS(prev)

		var want []byte
		for _, procs := range []int{1, 2, 8} {
			runtime.GOMAXPROCS(procs)
			got := serializedBuild(t, d, o)
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("mode %v: summary bytes differ between GOMAXPROCS=1 and GOMAXPROCS=%d (len %d vs %d)",
					mode, procs, len(want), len(got))
			}
		}
		runtime.GOMAXPROCS(prev)

		// Explicit worker-count overrides must agree too (GOMAXPROCS can
		// exceed physical cores in CI; Workers drives the split directly).
		for _, w := range []int{1, 3, 7} {
			ow := o
			ow.Workers = w
			if got := serializedBuild(t, d, ow); !bytes.Equal(want, got) {
				t.Fatalf("mode %v: summary bytes differ with Workers=%d", mode, w)
			}
		}
	}
}
