package core

import (
	"math"
	"testing"

	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/traj"
)

func smallPorto(t testing.TB) *traj.Dataset {
	t.Helper()
	return gen.Porto(gen.Config{NumTrajectories: 30, MinLen: 40, MaxLen: 80, Seed: 1})
}

func optsPPQS() Options {
	return DefaultOptions(partition.Spatial, 0.1)
}

func TestBuildProducesBoundedSummary(t *testing.T) {
	d := smallPorto(t)
	s := Build(d, optsPPQS())
	if s.NumPoints != d.NumPoints() {
		t.Fatalf("NumPoints = %d, want %d", s.NumPoints, d.NumPoints())
	}
	// With CQC the deviation of every reconstructed point is bounded by
	// Lemma 3: (√2/2)·g_s.
	bound := s.Coder.MaxDeviation() + 1e-12
	for _, tr := range d.All() {
		ts := s.Trajs[tr.ID]
		if ts == nil {
			t.Fatalf("trajectory %d missing from summary", tr.ID)
		}
		for i, p := range tr.Points {
			if dev := p.Dist(ts.Recon[i]); dev > bound {
				t.Fatalf("traj %d point %d deviation %v > Lemma 3 bound %v",
					tr.ID, i, dev, bound)
			}
		}
	}
}

func TestBuildWithoutCQCRespectsEpsilon1(t *testing.T) {
	d := smallPorto(t)
	opts := optsPPQS()
	opts.UseCQC = false
	s := Build(d, opts)
	for _, tr := range d.All() {
		ts := s.Trajs[tr.ID]
		for i, p := range tr.Points {
			if dev := p.Dist(ts.Recon[i]); dev > opts.Epsilon1+1e-12 {
				t.Fatalf("deviation %v > ε₁ %v", dev, opts.Epsilon1)
			}
		}
	}
}

func TestDecodeMatchesBuilderCache(t *testing.T) {
	// The decode path must reproduce the builder's reconstructions exactly
	// from the stored parameters alone — the summary is self-contained.
	d := smallPorto(t)
	for _, mode := range []partition.Mode{partition.Spatial, partition.Autocorr, partition.None} {
		opts := optsPPQS()
		opts.Mode = mode
		if mode == partition.Autocorr {
			opts.EpsilonP = 0.01
		}
		s := Build(d, opts)
		for _, tr := range d.All() {
			dec, err := s.Decode(tr.ID)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			ts := s.Trajs[tr.ID]
			if len(dec) != len(ts.Recon) {
				t.Fatalf("mode %v: decode length %d vs %d", mode, len(dec), len(ts.Recon))
			}
			for i := range dec {
				if dec[i] != ts.Recon[i] {
					t.Fatalf("mode %v traj %d point %d: decode %v != cache %v",
						mode, tr.ID, i, dec[i], ts.Recon[i])
				}
			}
		}
	}
}

func TestDecodeUnknownTrajectory(t *testing.T) {
	s := Build(smallPorto(t), optsPPQS())
	if _, err := s.Decode(9999); err == nil {
		t.Fatal("expected error for unknown trajectory")
	}
}

func TestPredictionShrinksCodebook(t *testing.T) {
	// The premise of E-PQ: prediction errors quantize into far fewer
	// codewords than raw positions at the same ε₁ (Table 6's gap between
	// PPQ and Q-trajectory).
	d := smallPorto(t)
	withPred := Build(d, optsPPQS())
	noPred := func() Options {
		o := optsPPQS()
		o.NoPrediction = true
		o.UseCQC = false
		return o
	}()
	qTraj := Build(d, noPred)
	if withPred.NumCodewords() >= qTraj.NumCodewords() {
		t.Fatalf("prediction should shrink the codebook: %d vs %d",
			withPred.NumCodewords(), qTraj.NumCodewords())
	}
}

func TestCQCImprovesMAE(t *testing.T) {
	d := smallPorto(t)
	withCQC := Build(d, optsPPQS())
	basic := func() Options {
		o := optsPPQS()
		o.UseCQC = false
		return o
	}()
	noCQC := Build(d, basic)
	if withCQC.MAE() >= noCQC.MAE() {
		t.Fatalf("CQC should reduce MAE: %v vs %v", withCQC.MAE(), noCQC.MAE())
	}
}

func TestMAEMetersConversion(t *testing.T) {
	s := Build(smallPorto(t), optsPPQS())
	if math.Abs(s.MAEMeters()-geo.DegreesToMeters(s.MAE())) > 1e-9 {
		t.Fatal("MAEMeters inconsistent with MAE")
	}
	if s.MAEMeters() <= 0 || s.MAEMeters() > geo.DegreesToMeters(s.Coder.MaxDeviation()) {
		t.Fatalf("MAE %v m outside (0, Lemma-3 bound]", s.MAEMeters())
	}
}

func TestEPQSinglePartition(t *testing.T) {
	d := smallPorto(t)
	opts := optsPPQS()
	opts.Mode = partition.None
	s := Build(d, opts)
	for _, q := range s.QHistory {
		if q != 1 {
			t.Fatalf("E-PQ must keep exactly one partition, saw q=%d", q)
		}
	}
}

func TestPPQPartitionCountsRecorded(t *testing.T) {
	d := smallPorto(t)
	opts := optsPPQS()
	opts.EpsilonP = 0.01 // tight: force multiple partitions
	s := Build(d, opts)
	if len(s.QHistory) == 0 {
		t.Fatal("QHistory empty")
	}
	maxQ := 0
	for _, q := range s.QHistory {
		if q > maxQ {
			maxQ = q
		}
	}
	if maxQ < 2 {
		t.Fatalf("tight ε_p should produce multiple partitions, max q = %d", maxQ)
	}
}

func TestSizeAccountingAndCompressionRatio(t *testing.T) {
	d := smallPorto(t)
	s := Build(d, optsPPQS())
	sz := s.SizeBytes()
	if sz <= 0 {
		t.Fatal("non-positive summary size")
	}
	ratio := s.CompressionRatio(d.RawBytes())
	if ratio <= 1 {
		t.Fatalf("summary should compress (ratio %v)", ratio)
	}
	// Dropping CQC must shrink the summary (Figure 9: -basic variants
	// compress slightly better).
	basicOpts := optsPPQS()
	basicOpts.UseCQC = false
	basic := Build(d, basicOpts)
	if basic.SizeBytes() >= sz {
		t.Fatalf("-basic summary (%d B) should be smaller than CQC summary (%d B)",
			basic.SizeBytes(), sz)
	}
}

func TestFixedWordsMode(t *testing.T) {
	d := smallPorto(t)
	opts := optsPPQS()
	opts.FixedWords = 32
	opts.Epsilon1 = 0 // fixed mode needs no bound
	s := Build(d, opts)
	// Every tick with data must carry its own codebook of ≤ 32 words.
	for _, tick := range s.SortedTicks() {
		ts := s.Ticks[tick]
		if ts.Book == nil {
			t.Fatalf("tick %d missing codebook", tick)
		}
		if ts.Book.Len() > 32 {
			t.Fatalf("tick %d codebook %d > budget", tick, ts.Book.Len())
		}
	}
	// Decode must still work in fixed mode.
	dec, err := s.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != d.Get(0).Len() {
		t.Fatal("wrong decode length")
	}
}

func TestFixedWordsMoreBitsLowerMAE(t *testing.T) {
	d := smallPorto(t)
	mae := func(words int) float64 {
		opts := optsPPQS()
		opts.FixedWords = words
		opts.Epsilon1 = 0
		opts.UseCQC = false
		return Build(d, opts).MAE()
	}
	coarse, fine := mae(8), mae(128)
	if fine >= coarse {
		t.Fatalf("128 words should beat 8: %v vs %v", fine, coarse)
	}
}

func TestReconstructPathClipsRange(t *testing.T) {
	d := smallPorto(t)
	s := Build(d, optsPPQS())
	tr := d.Get(0)
	path := s.ReconstructPath(0, tr.Start, 10)
	if len(path) != 10 {
		t.Fatalf("path length %d", len(path))
	}
	// Beyond the end: clipped.
	path = s.ReconstructPath(0, tr.End()-3, 10)
	if len(path) != 3 {
		t.Fatalf("clipped path length %d", len(path))
	}
	if s.ReconstructPath(0, tr.End()+5, 10) != nil {
		t.Fatal("fully out-of-range path should be nil")
	}
	if s.ReconstructPath(9999, 0, 5) != nil {
		t.Fatal("unknown id should give nil")
	}
}

func TestReconstructedPoint(t *testing.T) {
	d := smallPorto(t)
	s := Build(d, optsPPQS())
	tr := d.Get(3)
	p, ok := s.ReconstructedPoint(3, tr.Start+5)
	if !ok {
		t.Fatal("point should exist")
	}
	if orig, _ := tr.At(tr.Start + 5); p.Dist(orig) > s.Coder.MaxDeviation()+1e-12 {
		t.Fatal("reconstructed point too far from original")
	}
	if _, ok := s.ReconstructedPoint(3, tr.End()); ok {
		t.Fatal("past-the-end point should not exist")
	}
}

func TestStaggeredStartsHandled(t *testing.T) {
	d := gen.Porto(gen.Config{NumTrajectories: 20, MinLen: 30, MaxLen: 60, Horizon: 50, Seed: 2})
	s := Build(d, optsPPQS())
	bound := s.Coder.MaxDeviation() + 1e-12
	for _, tr := range d.All() {
		ts := s.Trajs[tr.ID]
		if ts.Start != tr.Start {
			t.Fatalf("start mismatch: %d vs %d", ts.Start, tr.Start)
		}
		for i, p := range tr.Points {
			if p.Dist(ts.Recon[i]) > bound {
				t.Fatal("bound violated for staggered stream")
			}
		}
		dec, err := s.Decode(tr.ID)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dec {
			if dec[i] != ts.Recon[i] {
				t.Fatal("decode mismatch for staggered stream")
			}
		}
	}
}

func TestBuilderPanicsOnBadOptions(t *testing.T) {
	for name, opts := range map[string]Options{
		"cqc without gs": {Epsilon1: 0.001, UseCQC: true},
		"no epsilon":     {UseCQC: false},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewBuilder(opts)
		}()
	}
}

func TestQTrajectoryMAEMuchWorse(t *testing.T) {
	// Large-span data (GeoLife-like) with a fixed codeword budget: the
	// non-predictive baseline's MAE must be far larger — the Table 2
	// headline effect.
	d := gen.GeoLife(gen.Config{NumTrajectories: 8, MinLen: 100, MaxLen: 150, Seed: 3})
	ppq := func() Options {
		o := DefaultOptions(partition.Spatial, 5)
		o.FixedWords = 32
		o.Epsilon1 = 0
		o.UseCQC = false
		return o
	}()
	qtr := ppq
	qtr.NoPrediction = true
	ppqMAE := Build(d, ppq).MAE()
	qMAE := Build(d, qtr).MAE()
	if qMAE < 3*ppqMAE {
		t.Fatalf("Q-trajectory should be much worse on wide-span data: %v vs %v", qMAE, ppqMAE)
	}
}

func TestBuildTimesRecorded(t *testing.T) {
	s := Build(smallPorto(t), optsPPQS())
	if s.BuildTime <= 0 {
		t.Fatal("BuildTime not recorded")
	}
	if s.PartitionTime <= 0 || s.PartitionTime > s.BuildTime {
		t.Fatalf("PartitionTime %v implausible vs BuildTime %v", s.PartitionTime, s.BuildTime)
	}
}

func BenchmarkBuildPPQS(b *testing.B) {
	d := gen.Porto(gen.Config{NumTrajectories: 50, MinLen: 50, MaxLen: 100, Seed: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(d, optsPPQS())
	}
}
