// Package core implements the heart of the paper: the error-bounded
// predictive quantizer E-PQ (Algorithm 1) and its partition-wise extension
// PPQ (§3.2), producing the queryable summary
// ({P_j[t]}, C, {b_i^t}, CQC) of the trajectory stream.
//
// Per timestamp t the builder:
//
//  1. partitions the live trajectory points by spatial proximity or
//     autocorrelation similarity (ε_p, Equations 7/8, incremental §3.2.2);
//  2. fits one linear prediction function f_j per partition over the
//     previous k *reconstructed* points (Equations 1–2) — the decoder
//     only ever has reconstructions, so predicting from them keeps
//     encoder and decoder in lock-step;
//  3. quantizes the prediction errors against the error-bounded codebook
//     C (Equation 3), growing it only when an error violates ε₁;
//  4. optionally emits a CQC code for the residual (§4), tightening the
//     per-point deviation from ε₁ to (√2/2)·g_s (Lemma 3).
//
// The summary is fully decodable: Decode replays prediction +
// codeword + CQC refinement from the stored parameters alone, and the
// builder's cached reconstructions are bit-identical to the decoder's
// output (tested).
package core

import (
	"fmt"
	"sort"
	"time"

	"ppqtraj/internal/codec"
	"ppqtraj/internal/cqc"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/par"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/predict"
	"ppqtraj/internal/quant"
	"ppqtraj/internal/traj"
)

// Options configures a Builder. The zero value is not useful; use
// DefaultOptions as a starting point.
type Options struct {
	// K is the AR lag order k of the prediction function.
	K int
	// Epsilon1 is ε₁, the codebook error bound (coordinate units).
	Epsilon1 float64
	// EpsilonP is ε_p, the partition radius threshold (Equations 7/8).
	EpsilonP float64
	// Mode selects spatial (PPQ-S), autocorrelation (PPQ-A) or no
	// partitioning (E-PQ).
	Mode partition.Mode
	// NoPrediction disables the predictive stage entirely (the
	// Q-trajectory baseline: raw positions are quantized directly).
	NoPrediction bool
	// UseCQC enables coordinate quadtree coding of the residual error
	// (PPQ-S/PPQ-A vs their -basic variants).
	UseCQC bool
	// GS is g_s, the CQC grid cell size (coordinate units). Required when
	// UseCQC is set.
	GS float64
	// FixedWords, when > 0, switches to the equal-budget comparison mode
	// of Tables 2–4: an independent codebook with exactly FixedWords
	// codewords is learned for each timestamp, instead of the incremental
	// error-bounded global codebook.
	FixedWords int
	// ClusterQuantizer selects the clustering growth path of the
	// incremental quantizer (the paper's vector-quantization step, whose
	// running time scales with the error range — Table 5's measure). The
	// default greedy path is faster and fully online.
	ClusterQuantizer bool
	// AutocorrWindow is the raw-point window used to estimate the lag-k
	// autocorrelation features; defaults to 4·K+2.
	AutocorrWindow int
	// MaxPartitions caps q (0 = no cap).
	MaxPartitions int
	// Seed makes the build deterministic.
	Seed int64
	// Workers bounds the Append worker pool (0 = runtime.NumCPU()).
	// Parallel and sequential builds produce bit-identical summaries:
	// work is split on fixed index ranges and merged in input order, so
	// Workers only affects speed, never output. It is not serialized.
	Workers int
}

// DefaultOptions returns the paper's §6.1 defaults for a given dataset
// scale: ε₁ = 0.001° (≈111 m), g_s = 50 m, spatial ε_p as provided.
func DefaultOptions(mode partition.Mode, epsP float64) Options {
	return Options{
		K:        3,
		Epsilon1: 0.001,
		EpsilonP: epsP,
		Mode:     mode,
		UseCQC:   true,
		GS:       geo.MetersToDegrees(50),
	}
}

func (o Options) withDefaults() Options {
	if o.K < 1 {
		o.K = 3
	}
	if o.AutocorrWindow < o.K+2 {
		o.AutocorrWindow = 32
	}
	// Autocorrelation features are statistical estimates; a safety cap on
	// q keeps coefficient storage bounded when the estimate noise exceeds
	// ε_p (the paper's q tops out around 83 on Porto, Figure 8).
	if o.Mode == partition.Autocorr && o.MaxPartitions == 0 {
		o.MaxPartitions = 64
	}
	return o
}

// PointEntry is the stored code of one trajectory point: the partition
// whose coefficients predicted it, the codeword index b_i^t, and (when CQC
// is enabled) the residual code.
type PointEntry struct {
	Part int32
	Word int32
	CQC  cqc.Code
}

// TickSummary holds the per-timestamp side of the summary: the prediction
// coefficients of every partition active at that tick and, in FixedWords
// mode, the tick's codebook.
type TickSummary struct {
	Tick   int
	Coeffs map[int]predict.Coefficients
	Book   *quant.Codebook // nil outside FixedWords mode
}

// TrajSummary is one trajectory's compressed representation plus a
// reconstruction cache (derivable from the entries, excluded from the
// size accounting).
type TrajSummary struct {
	Start   int
	Entries []PointEntry
	Recon   []geo.Point
}

// End returns the first tick after the trajectory.
func (ts *TrajSummary) End() int { return ts.Start + len(ts.Entries) }

// Summary is the complete PPQ-trajectory summary.
type Summary struct {
	Opts  Options
	Book  *quant.Codebook // global codebook (incremental mode)
	Coder *cqc.Coder      // nil unless UseCQC
	Ticks map[int]*TickSummary
	Trajs map[traj.ID]*TrajSummary

	// Stats
	NumPoints     int
	QHistory      []int // q at each processed tick (Figure 8)
	BuildTime     time.Duration
	PartitionTime time.Duration
	// ObservedMaxErr is the largest original-vs-final deviation seen during
	// the build — the effective bound in FixedWords mode.
	ObservedMaxErr float64
	sumAbsErr      float64
	partChanges    int // per-point partition-label transitions (size accounting)
	maxLabel       int
}

// MAE returns the mean absolute (Euclidean) deviation between original
// and reconstructed points in coordinate units.
func (s *Summary) MAE() float64 {
	if s.NumPoints == 0 {
		return 0
	}
	return s.sumAbsErr / float64(s.NumPoints)
}

// MAEMeters returns MAE under the paper's degree→meter conversion.
func (s *Summary) MAEMeters() float64 { return geo.DegreesToMeters(s.MAE()) }

// NumCodewords returns the total stored codewords (Table 6): the global
// codebook in incremental mode, or the sum of per-tick codebooks in
// FixedWords mode.
func (s *Summary) NumCodewords() int {
	if s.Opts.FixedWords > 0 {
		n := 0
		for _, t := range s.Ticks {
			if t.Book != nil {
				n += t.Book.Len()
			}
		}
		return n
	}
	return s.Book.Len()
}

// SizeBytes returns the storage footprint of the summary as the paper's
// compression-ratio accounting counts it (§6.4): codebook(s), prediction
// coefficients per partition per timestamp, per-point codeword indexes,
// per-point CQC codes, run-length-coded partition membership, and
// per-trajectory metadata. The reconstruction cache is derivable and not
// counted.
func (s *Summary) SizeBytes() int {
	bits := 0
	// Codebook(s).
	if s.Opts.FixedWords > 0 {
		for _, t := range s.Ticks {
			if t.Book != nil {
				bits += t.Book.Bytes() * 8
			}
		}
	} else {
		bits += s.Book.Bytes() * 8
	}
	// Prediction coefficients: k fixed-point values per partition per tick
	// (see predict.QuantizeCoefficients).
	if !s.Opts.NoPrediction {
		for _, t := range s.Ticks {
			bits += len(t.Coeffs) * s.Opts.K * predict.CoefficientBits
		}
	}
	// Per-point codeword indexes.
	if s.Opts.FixedWords > 0 {
		for _, tr := range s.Trajs {
			for i := range tr.Entries {
				tick := tr.Start + i
				if ts := s.Ticks[tick]; ts != nil && ts.Book != nil {
					bits += codec.BitsFor(ts.Book.Len())
				}
			}
		}
	} else {
		bits += s.NumPoints * codec.BitsFor(s.Book.Len())
	}
	// CQC codes.
	if s.Coder != nil {
		bits += s.NumPoints * s.Coder.CodeBits()
	}
	// Partition membership: label changes run-length encoded — a label
	// plus a tick offset per transition.
	labelBits := codec.BitsFor(s.maxLabel + 1)
	bits += s.partChanges * (labelBits + 16)
	// Per-trajectory metadata: start tick.
	bits += len(s.Trajs) * 32
	return (bits + 7) / 8
}

// CompressionRatio returns rawBytes / SizeBytes().
func (s *Summary) CompressionRatio(rawBytes int) float64 {
	sz := s.SizeBytes()
	if sz == 0 {
		return 0
	}
	return float64(rawBytes) / float64(sz)
}

// ReconstructedPoint returns the (CQC-refined when enabled) reconstruction
// of trajectory id at the given tick.
func (s *Summary) ReconstructedPoint(id traj.ID, tick int) (geo.Point, bool) {
	tr, ok := s.Trajs[id]
	if !ok || tick < tr.Start || tick >= tr.End() {
		return geo.Point{}, false
	}
	return tr.Recon[tick-tr.Start], true
}

// ReconstructPath returns the reconstructions of trajectory id for ticks
// [from, from+l), clipped to the trajectory's range — the TPQ
// reconstruction primitive (Definition 5.3).
func (s *Summary) ReconstructPath(id traj.ID, from, l int) []geo.Point {
	tr, ok := s.Trajs[id]
	if !ok {
		return nil
	}
	lo, hi := from, from+l
	if lo < tr.Start {
		lo = tr.Start
	}
	if hi > tr.End() {
		hi = tr.End()
	}
	if lo >= hi {
		return nil
	}
	return tr.Recon[lo-tr.Start : hi-tr.Start]
}

// wordOf returns the codeword for an entry at the given tick, resolving
// per-tick books in FixedWords mode.
func (s *Summary) wordOf(tick int, e PointEntry) geo.Point {
	if s.Opts.FixedWords > 0 {
		return s.Ticks[tick].Book.Word(int(e.Word))
	}
	return s.Book.Word(int(e.Word))
}

// Decode replays the decoder for one trajectory purely from the stored
// summary parameters (coefficients, codebook, CQC codes) and returns the
// reconstructed points. The builder's cache must match this exactly; the
// test suite enforces it.
func (s *Summary) Decode(id traj.ID) ([]geo.Point, error) {
	tr, ok := s.Trajs[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown trajectory %d", id)
	}
	k := s.Opts.K
	var history []geo.Point
	out := make([]geo.Point, 0, len(tr.Entries))
	for i, e := range tr.Entries {
		tick := tr.Start + i
		var pred geo.Point
		if !s.Opts.NoPrediction {
			switch {
			case len(history) == 0:
				// cold start: predict the origin (P_j[t] = 0 for t ≤ k)
			case len(history) < k:
				pred = history[len(history)-1]
			default:
				ts := s.Ticks[tick]
				if ts == nil {
					return nil, fmt.Errorf("core: missing tick summary %d", tick)
				}
				coeffs, ok := ts.Coeffs[int(e.Part)]
				if !ok {
					return nil, fmt.Errorf("core: missing coefficients for partition %d at tick %d", e.Part, tick)
				}
				pred = predict.Predict(coeffs, history)
			}
		}
		recon := pred.Add(s.wordOf(tick, e))
		final := recon
		if s.Coder != nil {
			final = s.Coder.Refine(recon, e.CQC)
		}
		out = append(out, final)
		history = append(history, final)
		if len(history) > k {
			history = history[1:]
		}
	}
	return out, nil
}

type trajState struct {
	history   []geo.Point // last K reconstructions, oldest first
	rawWindow []geo.Point // recent raw points for autocorrelation features
	arFeature []float64   // EMA-smoothed autocorrelation feature
}

// buildWorker is the per-goroutine scratch of the parallel Append phases.
// Each worker owns its fitting and feature workspaces, so the fan-out
// phases allocate nothing in steady state.
type buildWorker struct {
	fitter    predict.Fitter
	ar        predict.ARScratch
	rawFeat   []float64
	histories [][]geo.Point
	targets   []geo.Point
}

// appendScratch holds the per-column buffers Append reuses across calls.
type appendScratch struct {
	states  []*trajState           // per column index, nil for new trajectories
	trs     []*TrajSummary         // per column index, nil for new trajectories
	feats   [][]float64            // per-point partitioning features
	featBuf []float64              // backing array for feats
	preds   []geo.Point            // per-point predictions
	parts   []int32                // per-point partition labels
	errs    []geo.Point            // per-point prediction errors
	words   []int                  // per-point codeword indexes
	entries []PointEntry           // per-point stored codes
	finals  []geo.Point            // per-point final reconstructions
	coeffs  []predict.Coefficients // per-group fitted coefficients
}

// resize readies every per-point buffer for a column of n points.
func (sc *appendScratch) resize(n int) {
	if cap(sc.states) < n {
		sc.states = make([]*trajState, n)
		sc.trs = make([]*TrajSummary, n)
		sc.feats = make([][]float64, n)
		sc.preds = make([]geo.Point, n)
		sc.parts = make([]int32, n)
		sc.errs = make([]geo.Point, n)
		sc.words = make([]int, n)
		sc.entries = make([]PointEntry, n)
		sc.finals = make([]geo.Point, n)
	}
	sc.states = sc.states[:n]
	sc.trs = sc.trs[:n]
	sc.feats = sc.feats[:n]
	sc.preds = sc.preds[:n]
	sc.parts = sc.parts[:n]
	sc.errs = sc.errs[:n]
	sc.words = sc.words[:n]
	sc.entries = sc.entries[:n]
	sc.finals = sc.finals[:n]
}

// features readies the flat feature backing for n points of dim d and
// points feats[i] at its slot.
func (sc *appendScratch) features(n, d int) {
	if cap(sc.featBuf) < n*d {
		sc.featBuf = make([]float64, n*d)
	}
	sc.featBuf = sc.featBuf[:n*d]
	for i := 0; i < n; i++ {
		sc.feats[i] = sc.featBuf[i*d : (i+1)*d : (i+1)*d]
	}
}

// Builder consumes a trajectory stream one timestamp at a time
// (Algorithm 1's outer loop) and produces a Summary.
type Builder struct {
	opts    Options
	part    *partition.Partitioner
	inc     *quant.Incremental
	coder   *cqc.Coder
	sum     *Summary
	state   map[traj.ID]*trajState
	nw      int
	workers []buildWorker
	scratch appendScratch
}

// NewBuilder creates a Builder. It panics on inconsistent options
// (UseCQC without GS, non-positive ε₁ in incremental mode).
func NewBuilder(opts Options) *Builder {
	opts = opts.withDefaults()
	if opts.UseCQC && opts.GS <= 0 {
		panic("core: UseCQC requires GS > 0")
	}
	if opts.FixedWords <= 0 && opts.Epsilon1 <= 0 {
		panic("core: incremental mode requires Epsilon1 > 0")
	}
	b := &Builder{
		opts: opts,
		part: partition.New(partition.Options{
			Mode:          opts.Mode,
			EpsP:          opts.EpsilonP,
			MaxPartitions: opts.MaxPartitions,
			Seed:          opts.Seed,
		}),
		state: make(map[traj.ID]*trajState),
		sum: &Summary{
			Opts:  opts,
			Ticks: make(map[int]*TickSummary),
			Trajs: make(map[traj.ID]*TrajSummary),
		},
		nw: par.Workers(opts.Workers),
	}
	b.workers = make([]buildWorker, b.nw)
	if opts.FixedWords <= 0 {
		if opts.ClusterQuantizer {
			b.inc = quant.NewIncrementalClustered(opts.Epsilon1)
		} else {
			b.inc = quant.NewIncremental(opts.Epsilon1)
		}
		b.sum.Book = b.inc.Book
	}
	if opts.UseCQC {
		eps := opts.Epsilon1
		if opts.FixedWords > 0 && eps <= 0 {
			// Fixed-budget mode has no hard bound; size the CQC grid for
			// a generous multiple of the cell size (two extra code bits
			// per 2× radius, by the quadtree's log depth).
			eps = 16 * opts.GS
		}
		b.coder = cqc.NewCoder(eps, opts.GS)
		b.sum.Coder = b.coder
	}
	return b
}

// features fills the scratch feature slots for every column member.
// Each point's feature depends only on its own trajectory's state, so the
// Autocorr fan-out is safe and order-independent.
func (b *Builder) features(col *traj.Column) {
	sc := &b.scratch
	switch b.opts.Mode {
	case partition.Autocorr:
		// Per-trajectory Yule-Walker estimates over short windows are
		// noisy; an exponential moving average stabilizes the feature so
		// partitions do not churn tick to tick (churn would bloat both
		// the membership coding and the coefficient storage).
		const alpha = 0.1
		k := b.opts.K
		sc.features(col.Len(), k)
		par.For(b.nw, col.Len(), 16, func(w, lo, hi int) {
			wk := &b.workers[w]
			if cap(wk.rawFeat) < k {
				wk.rawFeat = make([]float64, k)
			}
			raw := wk.rawFeat[:k]
			for i := lo; i < hi; i++ {
				st := sc.states[i]
				var window []geo.Point
				if st != nil {
					window = st.rawWindow
				}
				wk.ar.FeatureInto(raw, window, col.Points[i], k)
				out := sc.feats[i]
				if st != nil && st.arFeature != nil {
					for d := range raw {
						st.arFeature[d] = (1-alpha)*st.arFeature[d] + alpha*raw[d]
					}
					copy(out, st.arFeature)
				} else {
					if st != nil {
						st.arFeature = append([]float64(nil), raw...)
					}
					copy(out, raw)
				}
			}
		})
	default:
		sc.features(col.Len(), 2)
		for i, p := range col.Points {
			sc.feats[i][0] = p.X
			sc.feats[i][1] = p.Y
		}
	}
}

// Append processes one timestamp column (Algorithm 1 lines 3–8 across all
// partitions). Columns must arrive in strictly increasing tick order.
//
// The three fan-out phases — feature extraction, per-partition model
// fitting/prediction, and CQC refinement — run on the builder's worker
// pool over fixed index ranges and merge in input order, so a parallel
// build is bit-identical to a sequential one (only the error quantization
// is inherently sequential: codebook growth order matters). All per-point
// buffers are builder-owned scratch; steady-state Append allocates only
// what the summary itself retains.
func (b *Builder) Append(col *traj.Column) {
	start := time.Now()
	defer func() { b.sum.BuildTime += time.Since(start) }()
	n := col.Len()
	if n == 0 {
		return
	}
	for i, p := range col.Points {
		if !p.IsFinite() {
			panic(fmt.Sprintf("core: non-finite position %v for trajectory %d at tick %d",
				p, col.IDs[i], col.Tick))
		}
	}
	sc := &b.scratch
	sc.resize(n)
	// One map pass resolves every per-trajectory pointer the later phases
	// need; the hot loops then index the scratch slices instead of
	// re-hashing IDs.
	for i, id := range col.IDs {
		sc.states[i] = b.state[id]
		sc.trs[i] = b.sum.Trajs[id]
	}

	b.features(col)
	res := b.part.Step(col.IDs, sc.feats)
	b.sum.QHistory = append(b.sum.QHistory, res.Q)

	k := b.opts.K
	tickSum := &TickSummary{Tick: col.Tick, Coeffs: make(map[int]predict.Coefficients, len(res.Groups))}
	b.sum.Ticks[col.Tick] = tickSum

	// Predictions per partition group: every group is independent (the fit
	// reads only member histories, predictions write disjoint slots).
	if cap(sc.coeffs) < len(res.Groups) {
		sc.coeffs = make([]predict.Coefficients, len(res.Groups))
	}
	sc.coeffs = sc.coeffs[:len(res.Groups)]
	par.For(b.nw, len(res.Groups), 1, func(w, glo, ghi int) {
		wk := &b.workers[w]
		for g := glo; g < ghi; g++ {
			members := res.Groups[g]
			var coeffs predict.Coefficients
			if !b.opts.NoPrediction {
				// Fit Equation 1 over the members with a full k-history.
				wk.histories = wk.histories[:0]
				wk.targets = wk.targets[:0]
				for _, i := range members {
					st := sc.states[i]
					if st != nil && len(st.history) >= k {
						wk.histories = append(wk.histories, st.history)
						wk.targets = append(wk.targets, col.Points[i])
					}
				}
				coeffs = wk.fitter.Fit(k, wk.histories, wk.targets)
				sc.coeffs[g] = coeffs
			}
			label := int32(res.Labels[g])
			for _, i := range members {
				sc.parts[i] = label
				if b.opts.NoPrediction {
					sc.preds[i] = geo.Point{} // prediction stays the origin
					continue
				}
				st := sc.states[i]
				switch {
				case st == nil || len(st.history) == 0:
					sc.preds[i] = geo.Point{} // origin
				case len(st.history) < k:
					sc.preds[i] = st.history[len(st.history)-1]
				default:
					sc.preds[i] = predict.Predict(coeffs, st.history)
				}
			}
		}
	})
	for g, label := range res.Labels {
		if label > b.sum.maxLabel {
			b.sum.maxLabel = label
		}
		if !b.opts.NoPrediction {
			tickSum.Coeffs[label] = sc.coeffs[g]
		}
	}

	// Quantize the prediction errors (Algorithm 1 line 6). Codebook growth
	// is order-dependent, so this phase stays sequential.
	for i := range sc.errs {
		sc.errs[i] = col.Points[i].Sub(sc.preds[i])
	}
	var book *quant.Codebook
	if b.opts.FixedWords > 0 {
		fixed := quant.FixedKMeans(sc.errs, b.opts.FixedWords, 20, b.opts.Seed+int64(col.Tick))
		copy(sc.words, fixed.Codes)
		book = fixed.Book
		tickSum.Book = book
	} else {
		b.inc.QuantizeInto(sc.words, sc.errs)
		book = b.inc.Book
	}

	// Reconstruct and refine: per-point, stateless, parallel.
	par.For(b.nw, n, 64, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			recon := sc.preds[i].Add(book.Word(sc.words[i]))
			entry := PointEntry{Part: sc.parts[i], Word: int32(sc.words[i])}
			final := recon
			if b.coder != nil {
				entry.CQC = b.coder.Encode(col.Points[i], recon)
				final = b.coder.Refine(recon, entry.CQC)
			}
			sc.entries[i] = entry
			sc.finals[i] = final
		}
	})

	// Record: sequential merge in input order.
	for i, id := range col.IDs {
		final := sc.finals[i]
		tr := sc.trs[i]
		if tr == nil {
			tr = &TrajSummary{Start: col.Tick}
			b.sum.Trajs[id] = tr
			b.sum.partChanges++ // initial label
		} else if len(tr.Entries) > 0 && tr.Entries[len(tr.Entries)-1].Part != sc.parts[i] {
			b.sum.partChanges++
		}
		tr.Entries = append(tr.Entries, sc.entries[i])
		tr.Recon = append(tr.Recon, final)

		st := sc.states[i]
		if st == nil {
			st = &trajState{history: make([]geo.Point, 0, k+1)}
			b.state[id] = st
		}
		// Bounded windows shift by copy instead of re-slicing so their
		// backing arrays never creep (re-slicing forces a reallocation
		// every few appends).
		if len(st.history) >= k {
			copy(st.history, st.history[1:])
			st.history = st.history[:len(st.history)-1]
		}
		st.history = append(st.history, final)
		if b.opts.Mode == partition.Autocorr {
			if len(st.rawWindow) >= b.opts.AutocorrWindow {
				copy(st.rawWindow, st.rawWindow[1:])
				st.rawWindow = st.rawWindow[:b.opts.AutocorrWindow-1]
			}
			st.rawWindow = append(st.rawWindow, col.Points[i])
		}

		dev := col.Points[i].Dist(final)
		b.sum.sumAbsErr += dev
		if dev > b.sum.ObservedMaxErr {
			b.sum.ObservedMaxErr = dev
		}
		b.sum.NumPoints++
	}
	b.sum.PartitionTime = b.part.Stats().Elapsed
}

// Summary finalizes and returns the summary. The builder can keep
// appending afterwards; the summary is live state, not a copy.
func (b *Builder) Summary() *Summary { return b.sum }

// PartitionStats exposes the partitioner's work counters (Figures 7–8).
func (b *Builder) PartitionStats() partition.Stats { return b.part.Stats() }

// Build runs the full stream of a dataset through a fresh builder — the
// common offline entry point.
func Build(d *traj.Dataset, opts Options) *Summary {
	b := NewBuilder(opts)
	_ = d.Stream(func(col *traj.Column) error {
		b.Append(col)
		return nil
	})
	return b.Summary()
}

// SortedTicks returns the processed tick values in increasing order.
func (s *Summary) SortedTicks() []int {
	out := make([]int, 0, len(s.Ticks))
	for t := range s.Ticks {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// StreamColumns feeds every reconstructed column to fn in ascending tick
// order, IDs ascending within a column — the query.Source contract. The
// whole sweep costs O(points + tick span): trajectories occupy contiguous
// tick ranges, so the columns are materialized with one counting sort
// over the tick axis instead of probing every (tick, id) pair. The slices
// passed to fn are valid only during the call.
func (s *Summary) StreamColumns(fn func(tick int, ids []traj.ID, pts []geo.Point) error) error {
	ticks := s.SortedTicks()
	if len(ticks) == 0 {
		return nil
	}
	minT := ticks[0]
	span := ticks[len(ticks)-1] - minT + 1
	offsets := make([]int, span+1)
	ids := s.TrajIDs()
	for _, id := range ids {
		tr := s.Trajs[id]
		for t := tr.Start; t < tr.End(); t++ {
			offsets[t-minT+1]++
		}
	}
	for t := 1; t <= span; t++ {
		offsets[t] += offsets[t-1]
	}
	fill := make([]int, span)
	idBuf := make([]traj.ID, s.NumPoints)
	ptBuf := make([]geo.Point, s.NumPoints)
	for _, id := range ids { // ascending IDs → each column comes out sorted
		tr := s.Trajs[id]
		for t := tr.Start; t < tr.End(); t++ {
			c := t - minT
			slot := offsets[c] + fill[c]
			fill[c]++
			idBuf[slot] = id
			ptBuf[slot] = tr.Recon[t-tr.Start]
		}
	}
	for c := 0; c < span; c++ {
		lo, hi := offsets[c], offsets[c+1]
		if lo == hi {
			continue
		}
		if err := fn(minT+c, idBuf[lo:hi], ptBuf[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// TrajIDs returns the summarized trajectory IDs in increasing order.
func (s *Summary) TrajIDs() []traj.ID {
	out := make([]traj.ID, 0, len(s.Trajs))
	for id := range s.Trajs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxDeviation returns the worst-case distance between a reconstructed
// point and its original: the observed maximum in FixedWords mode (which
// has no a-priori bound, and whose CQC encodes may clamp), otherwise the
// Lemma 3 bound under CQC, otherwise ε₁.
func (s *Summary) MaxDeviation() float64 {
	if s.Opts.FixedWords > 0 {
		return s.ObservedMaxErr
	}
	if s.Coder != nil {
		return s.Coder.MaxDeviation()
	}
	return s.Opts.Epsilon1
}
