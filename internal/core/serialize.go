package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"ppqtraj/internal/cqc"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/predict"
	"ppqtraj/internal/quant"
	"ppqtraj/internal/traj"
)

// Binary summary format. The reconstruction caches are NOT serialized —
// a loaded summary rebuilds them by running the decoder (Decode), which
// doubles as an integrity check: the summary on disk is exactly the
// self-contained parameter set ({P_j[t]}, C, {b_i^t}, CQC).
//
//	magic "PPQS" | version u16 | options | codebook | ticks | trajectories
//
// All integers are little-endian; varint is unsigned LEB128 via
// binary.AppendUvarint.

const (
	summaryMagic   = "PPQS"
	summaryVersion = 1
)

// ErrBadFormat is returned when a summary blob fails validation.
var ErrBadFormat = errors.New("core: malformed summary encoding")

type countingWriter struct {
	w *bufio.Writer
	n int
}

func (cw *countingWriter) u8(v uint8) { cw.w.WriteByte(v); cw.n++ }
func (cw *countingWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	cw.w.Write(b[:])
	cw.n += 2
}
func (cw *countingWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	cw.w.Write(b[:])
	cw.n += 4
}
func (cw *countingWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	cw.w.Write(b[:])
	cw.n += 8
}
func (cw *countingWriter) f64(v float64) { cw.u64(math.Float64bits(v)) }
func (cw *countingWriter) uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	cw.w.Write(b[:n])
	cw.n += n
}
func (cw *countingWriter) point(p geo.Point) { cw.f64(p.X); cw.f64(p.Y) }

type reader struct {
	r *bufio.Reader
}

func (rd *reader) u8() (uint8, error) { return rd.r.ReadByte() }
func (rd *reader) u16() (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(rd.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}
func (rd *reader) u32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(rd.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}
func (rd *reader) u64() (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(rd.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
func (rd *reader) f64() (float64, error) {
	v, err := rd.u64()
	return math.Float64frombits(v), err
}
func (rd *reader) uvarint() (uint64, error) { return binary.ReadUvarint(rd.r) }
func (rd *reader) point() (geo.Point, error) {
	x, err := rd.f64()
	if err != nil {
		return geo.Point{}, err
	}
	y, err := rd.f64()
	return geo.Point{X: x, Y: y}, err
}

func writeBook(cw *countingWriter, book *quant.Codebook) {
	if book == nil {
		cw.uvarint(0)
		return
	}
	cw.uvarint(uint64(book.Len() + 1))
	for _, wd := range book.Words {
		cw.point(wd)
	}
}

func readBook(rd *reader, cellSize float64) (*quant.Codebook, error) {
	n, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	book := quant.NewCodebook(cellSize)
	for i := uint64(0); i < n-1; i++ {
		p, err := rd.point()
		if err != nil {
			return nil, err
		}
		book.Add(p)
	}
	return book, nil
}

// WriteTo serializes the summary. It returns the bytes written.
func (s *Summary) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	cw.w.WriteString(summaryMagic)
	cw.n += len(summaryMagic)
	cw.u16(summaryVersion)

	// Options.
	o := s.Opts
	cw.uvarint(uint64(o.K))
	cw.f64(o.Epsilon1)
	cw.f64(o.EpsilonP)
	cw.u8(uint8(o.Mode))
	boolByte := func(b bool) uint8 {
		if b {
			return 1
		}
		return 0
	}
	cw.u8(boolByte(o.NoPrediction))
	cw.u8(boolByte(o.UseCQC))
	cw.f64(o.GS)
	cw.uvarint(uint64(o.FixedWords))
	cw.uvarint(uint64(o.AutocorrWindow))
	cw.uvarint(uint64(o.MaxPartitions))
	cw.u64(uint64(o.Seed))

	// Build statistics that feed the size accounting and MAE (they cannot
	// be recomputed without the original data).
	cw.uvarint(uint64(s.partChanges))
	cw.uvarint(uint64(s.maxLabel))
	cw.f64(s.sumAbsErr)
	cw.f64(s.ObservedMaxErr)

	// Global codebook.
	writeBook(cw, s.Book)

	// Ticks. Coefficients are on the Q5.10 grid
	// (predict.QuantizeCoefficients), so they serialize as zig-zag varints
	// of the grid index, not full floats.
	ticks := s.SortedTicks()
	cw.uvarint(uint64(len(ticks)))
	for _, t := range ticks {
		ts := s.Ticks[t]
		cw.uvarint(uint64(t))
		cw.uvarint(uint64(len(ts.Coeffs)))
		for _, label := range sortedCoeffLabels(ts.Coeffs) {
			cw.uvarint(uint64(label))
			cs := ts.Coeffs[label]
			cw.uvarint(uint64(len(cs)))
			for _, c := range cs {
				g := int64(math.Round(c * 1024))
				cw.uvarint(uint64((g << 1) ^ (g >> 63))) // zig-zag
			}
		}
		writeBook(cw, ts.Book)
	}

	// Trajectories.
	ids := s.TrajIDs()
	cw.uvarint(uint64(len(ids)))
	for _, id := range ids {
		tr := s.Trajs[id]
		cw.uvarint(uint64(id))
		cw.uvarint(uint64(tr.Start))
		cw.uvarint(uint64(len(tr.Entries)))
		for _, e := range tr.Entries {
			cw.uvarint(uint64(e.Part))
			cw.uvarint(uint64(e.Word))
			cw.u8(uint8(e.CQC.Len))
			cw.uvarint(e.CQC.Bits)
		}
	}
	if err := bw.Flush(); err != nil {
		return int64(cw.n), err
	}
	return int64(cw.n), nil
}

func sortedCoeffLabels(m map[int]predict.Coefficients) []int {
	out := make([]int, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	for i := 1; i < len(out); i++ { // insertion sort: label sets are small
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ReadSummary deserializes a summary written by WriteTo and rebuilds its
// reconstruction caches by replaying the decoder. Any inconsistency in
// the stored parameters surfaces as an error here.
func ReadSummary(r io.Reader) (*Summary, error) {
	rd := &reader{r: bufio.NewReader(r)}
	magic := make([]byte, len(summaryMagic))
	if _, err := io.ReadFull(rd.r, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != summaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	ver, err := rd.u16()
	if err != nil {
		return nil, err
	}
	if ver != summaryVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, ver)
	}

	var o Options
	k, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	o.K = int(k)
	if o.Epsilon1, err = rd.f64(); err != nil {
		return nil, err
	}
	if o.EpsilonP, err = rd.f64(); err != nil {
		return nil, err
	}
	mode, err := rd.u8()
	if err != nil {
		return nil, err
	}
	o.Mode = partition.Mode(mode)
	np, err := rd.u8()
	if err != nil {
		return nil, err
	}
	o.NoPrediction = np != 0
	uc, err := rd.u8()
	if err != nil {
		return nil, err
	}
	o.UseCQC = uc != 0
	if o.GS, err = rd.f64(); err != nil {
		return nil, err
	}
	fw, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	o.FixedWords = int(fw)
	aw, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	o.AutocorrWindow = int(aw)
	mp, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	o.MaxPartitions = int(mp)
	seed, err := rd.u64()
	if err != nil {
		return nil, err
	}
	o.Seed = int64(seed)

	s := &Summary{
		Opts:  o,
		Ticks: make(map[int]*TickSummary),
		Trajs: make(map[traj.ID]*TrajSummary),
	}
	pc, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	s.partChanges = int(pc)
	ml, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	s.maxLabel = int(ml)
	if s.sumAbsErr, err = rd.f64(); err != nil {
		return nil, err
	}
	if s.ObservedMaxErr, err = rd.f64(); err != nil {
		return nil, err
	}
	cell := o.Epsilon1
	if cell <= 0 {
		cell = 1
	}
	if s.Book, err = readBook(rd, cell); err != nil {
		return nil, err
	}
	if o.UseCQC {
		eps := o.Epsilon1
		if o.FixedWords > 0 && eps <= 0 {
			eps = 16 * o.GS
		}
		if o.GS <= 0 {
			return nil, fmt.Errorf("%w: UseCQC with GS=%v", ErrBadFormat, o.GS)
		}
		s.Coder = cqc.NewCoder(eps, o.GS)
	}

	nTicks, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nTicks; i++ {
		t, err := rd.uvarint()
		if err != nil {
			return nil, err
		}
		ts := &TickSummary{Tick: int(t), Coeffs: make(map[int]predict.Coefficients)}
		nc, err := rd.uvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nc; j++ {
			label, err := rd.uvarint()
			if err != nil {
				return nil, err
			}
			cl, err := rd.uvarint()
			if err != nil {
				return nil, err
			}
			cs := make(predict.Coefficients, cl)
			for c := range cs {
				z, err := rd.uvarint()
				if err != nil {
					return nil, err
				}
				g := int64(z>>1) ^ -int64(z&1) // un-zig-zag
				cs[c] = float64(g) / 1024
			}
			ts.Coeffs[int(label)] = cs
		}
		if ts.Book, err = readBook(rd, 1); err != nil {
			return nil, err
		}
		s.Ticks[ts.Tick] = ts
	}

	nTraj, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nTraj; i++ {
		id, err := rd.uvarint()
		if err != nil {
			return nil, err
		}
		start, err := rd.uvarint()
		if err != nil {
			return nil, err
		}
		n, err := rd.uvarint()
		if err != nil {
			return nil, err
		}
		tr := &TrajSummary{Start: int(start), Entries: make([]PointEntry, n)}
		for e := range tr.Entries {
			part, err := rd.uvarint()
			if err != nil {
				return nil, err
			}
			word, err := rd.uvarint()
			if err != nil {
				return nil, err
			}
			cl, err := rd.u8()
			if err != nil {
				return nil, err
			}
			bits, err := rd.uvarint()
			if err != nil {
				return nil, err
			}
			tr.Entries[e] = PointEntry{
				Part: int32(part), Word: int32(word),
				CQC: cqc.Code{Bits: bits, Len: cl},
			}
		}
		s.Trajs[traj.ID(id)] = tr
	}

	// Rebuild the reconstruction caches through the decoder — the loaded
	// summary must be fully self-contained.
	for _, id := range s.TrajIDs() {
		rec, err := s.Decode(id)
		if err != nil {
			return nil, fmt.Errorf("core: decoding trajectory %d after load: %w", id, err)
		}
		tr := s.Trajs[id]
		tr.Recon = rec
		s.NumPoints += len(rec)
	}
	return s, nil
}
