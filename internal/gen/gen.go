// Package gen synthesizes the evaluation workloads. The paper evaluates on
// Porto (1.2M taxi trajectories, 74.3M points) and GeoLife (17,932
// trajectories up to 92,645 points, 24.8M points); neither archive is
// available offline, so this package generates statistically similar
// datasets that preserve the structural properties the experiments depend
// on:
//
//   - Porto-like: many short-to-medium urban trips confined to a small
//     bounding box (~0.13° × 0.08°), smooth street-grid motion at taxi
//     speeds with a 15 s sampling interval. Strong lag correlation, small
//     spatial span.
//   - GeoLife-like: few but very long multi-modal trajectories over a much
//     larger region (> 2° span) with mode switches (walk/bike/car/train).
//     The large span is what blows up the non-predictive baselines in
//     Table 2, so the generator preserves it.
//   - sub-Porto: the paper's REST construction (§6.1) — base trajectories
//     plus four derived variants each (down-sampling + Gaussian noise,
//     procedure of [23]); most variants form the reference set, a random
//     subset is the compression target.
//
// All generators are deterministic for a given Config.Seed.
package gen

import (
	"math"
	"math/rand"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/traj"
)

// Config controls dataset synthesis.
type Config struct {
	// NumTrajectories is the number of trajectories to generate.
	NumTrajectories int
	// MinLen and MaxLen bound the per-trajectory sample count.
	MinLen, MaxLen int
	// Horizon is the tick range for trajectory start times; 0 means all
	// trajectories start at tick 0 (the fully-aligned stream used by the
	// per-timestamp experiments).
	Horizon int
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) withDefaults(def Config) Config {
	if c.NumTrajectories == 0 {
		c.NumTrajectories = def.NumTrajectories
	}
	if c.MinLen == 0 {
		c.MinLen = def.MinLen
	}
	if c.MaxLen == 0 {
		c.MaxLen = def.MaxLen
	}
	return c
}

// PortoRegion is the approximate bounding box of the Porto taxi dataset
// (the metro area — the real archive's trips span well beyond the city
// core, which is what makes ε_p = 0.1 produce multiple spatial partitions
// in Figures 7–8).
var PortoRegion = geo.NewRect(-8.75, 41.00, -8.35, 41.35)

// GeoLifeRegion is the approximate span of GeoLife's Beijing-centered data;
// intentionally much larger than PortoRegion.
var GeoLifeRegion = geo.NewRect(115.2, 39.0, 117.6, 41.0)

// degPerTick converts a speed in km/h to degrees per 15 s tick using the
// paper's flat 111 km/° conversion.
func degPerTick(kmh float64) float64 { return kmh / 3600 * 15 / 111 }

// walker produces one smooth random-walk trajectory inside region:
// a heading that drifts slowly (urban street curvature), occasional sharp
// turns (junctions), speed following an Ornstein–Uhlenbeck-like pull toward
// a cruise value. Reflection at the region boundary keeps trips inside.
type walker struct {
	rng       *rand.Rand
	region    geo.Rect
	pos       geo.Point
	heading   float64
	speed     float64 // degrees per tick
	cruise    float64
	turnProb  float64
	driftStd  float64
	jitterStd float64 // GPS noise, degrees
}

func (w *walker) step() geo.Point {
	// Speed reverts to cruise with noise; clamp at ≥ 0.
	w.speed += 0.3*(w.cruise-w.speed) + w.rng.NormFloat64()*w.cruise*0.15
	if w.speed < 0 {
		w.speed = 0
	}
	// Heading: slow drift plus occasional 90°-ish junction turns.
	w.heading += w.rng.NormFloat64() * w.driftStd
	if w.rng.Float64() < w.turnProb {
		turn := math.Pi / 2
		if w.rng.Intn(2) == 0 {
			turn = -turn
		}
		w.heading += turn + w.rng.NormFloat64()*0.1
	}
	w.pos.X += math.Cos(w.heading) * w.speed
	w.pos.Y += math.Sin(w.heading) * w.speed
	// Reflect at the boundary.
	if w.pos.X < w.region.MinX {
		w.pos.X = 2*w.region.MinX - w.pos.X
		w.heading = math.Pi - w.heading
	}
	if w.pos.X > w.region.MaxX {
		w.pos.X = 2*w.region.MaxX - w.pos.X
		w.heading = math.Pi - w.heading
	}
	if w.pos.Y < w.region.MinY {
		w.pos.Y = 2*w.region.MinY - w.pos.Y
		w.heading = -w.heading
	}
	if w.pos.Y > w.region.MaxY {
		w.pos.Y = 2*w.region.MaxY - w.pos.Y
		w.heading = -w.heading
	}
	// Clamp in case of extreme reflections near corners.
	w.pos.X = math.Max(w.region.MinX, math.Min(w.region.MaxX, w.pos.X))
	w.pos.Y = math.Max(w.region.MinY, math.Min(w.region.MaxY, w.pos.Y))
	return geo.Point{
		X: w.pos.X + w.rng.NormFloat64()*w.jitterStd,
		Y: w.pos.Y + w.rng.NormFloat64()*w.jitterStd,
	}
}

// Porto generates a Porto-like taxi dataset.
func Porto(cfg Config) *traj.Dataset {
	cfg = cfg.withDefaults(Config{NumTrajectories: 500, MinLen: 30, MaxLen: 200})
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x506f72746f)) // "Porto"
	trajs := make([]*traj.Trajectory, 0, cfg.NumTrajectories)
	// Hotspots emulate taxi ranks / popular origins spread over the metro
	// area.
	hotspots := make([]geo.Point, 12)
	for i := range hotspots {
		hotspots[i] = geo.Point{
			X: PortoRegion.MinX + rng.Float64()*PortoRegion.Width(),
			Y: PortoRegion.MinY + rng.Float64()*PortoRegion.Height(),
		}
	}
	for i := 0; i < cfg.NumTrajectories; i++ {
		n := cfg.MinLen + rng.Intn(cfg.MaxLen-cfg.MinLen+1)
		start := 0
		if cfg.Horizon > 0 {
			start = rng.Intn(cfg.Horizon)
		}
		origin := hotspots[rng.Intn(len(hotspots))]
		w := &walker{
			rng:    rng,
			region: PortoRegion,
			pos: geo.Point{
				X: origin.X + rng.NormFloat64()*0.004,
				Y: origin.Y + rng.NormFloat64()*0.004,
			},
			heading:   rng.Float64() * 2 * math.Pi,
			cruise:    degPerTick(25 + rng.Float64()*30), // 25–55 km/h taxi
			turnProb:  0.06,
			driftStd:  0.12,
			jitterStd: geo.MetersToDegrees(3), // ~3 m GPS noise
		}
		w.speed = w.cruise
		pts := make([]geo.Point, n)
		for j := range pts {
			pts[j] = w.step()
		}
		trajs = append(trajs, &traj.Trajectory{Start: start, Points: pts})
	}
	return traj.NewDataset(trajs)
}

// geoLifeMode describes a GeoLife transport mode.
type geoLifeMode struct {
	kmh      float64
	driftStd float64
	turnProb float64
}

var geoLifeModes = []geoLifeMode{
	{kmh: 5, driftStd: 0.4, turnProb: 0.10},   // walk
	{kmh: 15, driftStd: 0.2, turnProb: 0.06},  // bike
	{kmh: 45, driftStd: 0.1, turnProb: 0.04},  // car
	{kmh: 120, driftStd: 0.02, turnProb: 0.0}, // train: fast and straight
}

// GeoLife generates a GeoLife-like dataset: fewer, far longer trajectories
// over a much larger region with mode switches.
func GeoLife(cfg Config) *traj.Dataset {
	cfg = cfg.withDefaults(Config{NumTrajectories: 40, MinLen: 300, MaxLen: 3000})
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x47656f4c696665)) // "GeoLife"
	trajs := make([]*traj.Trajectory, 0, cfg.NumTrajectories)
	for i := 0; i < cfg.NumTrajectories; i++ {
		n := cfg.MinLen + rng.Intn(cfg.MaxLen-cfg.MinLen+1)
		start := 0
		if cfg.Horizon > 0 {
			start = rng.Intn(cfg.Horizon)
		}
		// Most users live near the center; some start far out so the full
		// span is exercised.
		cx, cy := 116.35, 39.95
		if rng.Float64() < 0.25 {
			cx = GeoLifeRegion.MinX + rng.Float64()*GeoLifeRegion.Width()
			cy = GeoLifeRegion.MinY + rng.Float64()*GeoLifeRegion.Height()
		}
		mode := geoLifeModes[rng.Intn(len(geoLifeModes))]
		w := &walker{
			rng:    rng,
			region: GeoLifeRegion,
			pos: geo.Point{
				X: math.Max(GeoLifeRegion.MinX, math.Min(GeoLifeRegion.MaxX, cx+rng.NormFloat64()*0.1)),
				Y: math.Max(GeoLifeRegion.MinY, math.Min(GeoLifeRegion.MaxY, cy+rng.NormFloat64()*0.1)),
			},
			heading:   rng.Float64() * 2 * math.Pi,
			cruise:    degPerTick(mode.kmh),
			turnProb:  mode.turnProb,
			driftStd:  mode.driftStd,
			jitterStd: geo.MetersToDegrees(5),
		}
		w.speed = w.cruise
		pts := make([]geo.Point, n)
		for j := range pts {
			// Mode switches: every ~200 ticks on average.
			if rng.Float64() < 1.0/200 {
				mode = geoLifeModes[rng.Intn(len(geoLifeModes))]
				w.cruise = degPerTick(mode.kmh)
				w.turnProb = mode.turnProb
				w.driftStd = mode.driftStd
			}
			pts[j] = w.step()
		}
		trajs = append(trajs, &traj.Trajectory{Start: start, Points: pts})
	}
	return traj.NewDataset(trajs)
}

// SubPorto holds the REST evaluation dataset: a reference pool and a
// compression target set, both drawn from the same base-plus-variants
// population (§6.1).
type SubPorto struct {
	// Reference is the pool REST builds its reference set from.
	Reference *traj.Dataset
	// Compress is the set to be compressed (2,000 of 100,000 in the paper,
	// scaled by Config here).
	Compress *traj.Dataset
}

// NewSubPorto generates numBase base trajectories, derives 4 variants of
// each (down-sampling + noise per [23]), then randomly selects compressN
// trajectories as the compression set; the rest form the reference pool.
func NewSubPorto(numBase, compressN int, seed int64) *SubPorto {
	if numBase < 1 {
		numBase = 50
	}
	rng := rand.New(rand.NewSource(seed ^ 0x737562506f72746f))
	base := Porto(Config{NumTrajectories: numBase, MinLen: 60, MaxLen: 180, Seed: seed})
	var pool []*traj.Trajectory
	for _, tr := range base.All() {
		pool = append(pool, &traj.Trajectory{Start: tr.Start, Points: append([]geo.Point(nil), tr.Points...)})
		for v := 0; v < 4; v++ {
			pool = append(pool, variant(rng, tr))
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if compressN < 1 || compressN >= len(pool) {
		compressN = len(pool) / 50
		if compressN < 1 {
			compressN = 1
		}
	}
	return &SubPorto{
		Compress:  traj.NewDataset(pool[:compressN]),
		Reference: traj.NewDataset(pool[compressN:]),
	}
}

// variant derives a similar trajectory from a base by down-sampling plus
// noise — the procedure of Li et al. [23] the paper follows for the
// sub-Porto construction. Down-sampling is a stochastic time warp: each
// step the variant advances one base sample and, with probability
// dropRate, skips another (a dropped point). The variant follows the
// base's route, but its per-tick alignment with the base drifts as a
// random walk, so reference-based matching (REST) finds finite runs
// rather than trivially matching whole trajectories.
func variant(rng *rand.Rand, tr *traj.Trajectory) *traj.Trajectory {
	src := tr.Points
	noise := geo.MetersToDegrees(10 + rng.Float64()*30)
	dropRate := 0.2 + rng.Float64()*0.2
	phase := rng.Float64() * 3 // fractional sample offset
	// interp evaluates the base path at fractional index u (clamped).
	interp := func(u float64) geo.Point {
		if u <= 0 {
			return src[0]
		}
		if u >= float64(len(src)-1) {
			return src[len(src)-1]
		}
		i := int(u)
		f := u - float64(i)
		return geo.Point{
			X: src[i].X + f*(src[i+1].X-src[i].X),
			Y: src[i].Y + f*(src[i+1].Y-src[i].Y),
		}
	}
	// A down-sampled trajectory is shorter than its base: emit until the
	// warped index runs off the base's end.
	out := make([]geo.Point, 0, len(src))
	u := phase
	for u < float64(len(src)-1) {
		p := interp(u)
		out = append(out, geo.Point{
			X: p.X + rng.NormFloat64()*noise,
			Y: p.Y + rng.NormFloat64()*noise,
		})
		u++
		if rng.Float64() < dropRate {
			u++ // a dropped base sample: the variant skips past it
		}
	}
	if len(out) < 2 { // degenerate base; keep the endpoints
		out = append([]geo.Point(nil), src[0], src[len(src)-1])
	}
	return &traj.Trajectory{Start: tr.Start, Points: out}
}
