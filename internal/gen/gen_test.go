package gen

import (
	"math"
	"testing"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/mat"
)

func TestPortoShape(t *testing.T) {
	d := Porto(Config{NumTrajectories: 50, MinLen: 30, MaxLen: 100, Seed: 1})
	if d.Len() != 50 {
		t.Fatalf("Len = %d", d.Len())
	}
	for _, tr := range d.All() {
		if tr.Len() < 30 || tr.Len() > 100 {
			t.Fatalf("trajectory length %d outside [30,100]", tr.Len())
		}
		for _, p := range tr.Points {
			if !p.IsFinite() {
				t.Fatal("non-finite point")
			}
		}
	}
	// GPS jitter can poke slightly outside; allow a small margin.
	r := d.BoundingRect()
	margin := geo.MetersToDegrees(50)
	if r.MinX < PortoRegion.MinX-margin || r.MaxX > PortoRegion.MaxX+margin ||
		r.MinY < PortoRegion.MinY-margin || r.MaxY > PortoRegion.MaxY+margin {
		t.Fatalf("porto data escapes region: %v vs %v", r, PortoRegion)
	}
}

func TestPortoDeterministic(t *testing.T) {
	a := Porto(Config{NumTrajectories: 5, Seed: 7})
	b := Porto(Config{NumTrajectories: 5, Seed: 7})
	for i := range a.All() {
		ta, tb := a.Get(uint32(i)), b.Get(uint32(i))
		if ta.Len() != tb.Len() {
			t.Fatal("lengths differ across identical seeds")
		}
		for j := range ta.Points {
			if ta.Points[j] != tb.Points[j] {
				t.Fatal("points differ across identical seeds")
			}
		}
	}
	c := Porto(Config{NumTrajectories: 5, Seed: 8})
	if c.Get(0).Points[5] == a.Get(0).Points[5] {
		t.Fatal("different seeds should give different data")
	}
}

func TestPortoSpeedsArePlausible(t *testing.T) {
	d := Porto(Config{NumTrajectories: 20, MinLen: 100, MaxLen: 100, Seed: 2})
	var sum float64
	var n int
	for _, tr := range d.All() {
		for i := 1; i < tr.Len(); i++ {
			stepM := geo.DegreesToMeters(tr.Points[i].Dist(tr.Points[i-1]))
			sum += stepM
			n++
			// 15 s at 150 km/h = 625 m; taxi should stay well below.
			if stepM > 700 {
				t.Fatalf("implausible step %v m", stepM)
			}
		}
	}
	mean := sum / float64(n)
	// 25–55 km/h → 104–229 m per 15 s tick.
	if mean < 40 || mean > 300 {
		t.Fatalf("mean step %v m outside plausible taxi range", mean)
	}
}

func TestPortoIsAutocorrelated(t *testing.T) {
	// The predictive quantizer exploits lag correlation; verify the
	// generator actually produces strongly autocorrelated coordinates.
	d := Porto(Config{NumTrajectories: 5, MinLen: 150, MaxLen: 150, Seed: 3})
	for _, tr := range d.All() {
		xs := make([]float64, tr.Len())
		for i, p := range tr.Points {
			xs[i] = p.X
		}
		g := mat.Autocovariance(xs, 1)
		if g[0] <= 0 {
			continue // stationary trajectory; skip
		}
		rho := g[1] / g[0]
		if rho < 0.8 {
			t.Fatalf("lag-1 autocorrelation %v too weak for a moving vehicle", rho)
		}
	}
}

func TestGeoLifeShape(t *testing.T) {
	d := GeoLife(Config{NumTrajectories: 10, MinLen: 200, MaxLen: 500, Seed: 4})
	if d.Len() != 10 {
		t.Fatalf("Len = %d", d.Len())
	}
	for _, tr := range d.All() {
		if tr.Len() < 200 || tr.Len() > 500 {
			t.Fatalf("length %d outside bounds", tr.Len())
		}
	}
	// GeoLife's defining property: a much larger spatial span than Porto.
	span := d.BoundingRect()
	if span.Width() < 3*PortoRegion.Width() {
		t.Fatalf("GeoLife span %v not much larger than Porto %v", span.Width(), PortoRegion.Width())
	}
}

func TestGeoLifeHorizonSpreadsStarts(t *testing.T) {
	d := GeoLife(Config{NumTrajectories: 20, MinLen: 50, MaxLen: 60, Horizon: 100, Seed: 5})
	starts := map[int]bool{}
	for _, tr := range d.All() {
		if tr.Start < 0 || tr.Start >= 100 {
			t.Fatalf("start %d outside horizon", tr.Start)
		}
		starts[tr.Start] = true
	}
	if len(starts) < 5 {
		t.Fatal("starts should be spread across the horizon")
	}
}

func TestSubPortoConstruction(t *testing.T) {
	sp := NewSubPorto(20, 10, 6)
	// 20 bases × (1 + 4 variants) = 100 total.
	total := sp.Reference.Len() + sp.Compress.Len()
	if total != 100 {
		t.Fatalf("total = %d, want 100", total)
	}
	if sp.Compress.Len() != 10 {
		t.Fatalf("compress set = %d, want 10", sp.Compress.Len())
	}
	for _, tr := range sp.Compress.All() {
		if tr.Len() < 2 {
			t.Fatal("degenerate compression trajectory")
		}
	}
}

func TestVariantStaysClose(t *testing.T) {
	// A variant follows its base's route, so near the start (before the
	// down-sampling time warp accumulates) some reference trajectory is
	// spatially close to each compress trajectory — REST matching depends
	// on this.
	sp := NewSubPorto(30, 5, 9)
	const prefix = 8
	found := 0
	for _, c := range sp.Compress.All() {
		best := math.Inf(1)
		for _, r := range sp.Reference.All() {
			n := prefix
			if c.Len() < n {
				n = c.Len()
			}
			if r.Len() < n {
				n = r.Len()
			}
			var s float64
			for i := 0; i < n; i++ {
				s += c.Points[i].Dist(r.Points[i])
			}
			if d := s / float64(n); d < best {
				best = d
			}
		}
		if geo.DegreesToMeters(best) < 400 {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no compress trajectory starts near a reference — REST would have nothing to match")
	}
}

func TestDegPerTick(t *testing.T) {
	// 111 km/h over 15 s is 462.5 m ≈ 0.004166°.
	got := degPerTick(111)
	if math.Abs(got-15.0/3600) > 1e-12 {
		t.Fatalf("degPerTick(111) = %v", got)
	}
}
